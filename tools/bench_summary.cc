// Diffs two secview metrics/trace JSON files (the output of a bench's
// --metrics-json flag, the CLI's --trace-json flag, or the engine's
// MetricsRegistry::ToJsonString) for bench trajectory tracking:
//
//   bench_summary OLD.json NEW.json     # old/new/delta table
//   bench_summary FILE.json             # flatten one file
//   bench_summary --fail-above 20 OLD.json NEW.json
//                                       # exit 3 if any metric grew >20%
//   bench_summary --fail-above 50 OLD.json BENCH_concurrent.json
//                                       # gate a bench_concurrent run
//                                       # (its qps gauges are wall-clock,
//                                       # so budget generously)
//
// Every numeric leaf is flattened to a dotted path (arrays indexed as
// [i]) and compared; keys present in only one file are shown as added
// or removed. Histogram-shaped objects ({"count","sum","buckets":
// [{"le","count"}...]}, as written by MetricsRegistry::ToJson and the
// snapshot writer) are summarized to .count/.sum/.p50/.p95/.p99 plus an
// .overflow leaf (the +Inf bucket's occupancy — nonzero means the .p*
// values are clamped lower bounds) instead of per-bucket leaves, so
// bucket boundary changes don't churn the diff.
//
// A metric that is absent from one side, or zero on the old side, has
// no meaningful growth percentage: such rows render as added/removed/
// "new" and are exempt from --fail-above (otherwise introducing an
// instrument — e.g. the per-axis eval.axis.* counters — would read as
// an infinite regression against any pre-instrument baseline).
// Exit code 0 on success, 1 on I/O or parse errors, 3 when --fail-above
// trips.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace secview {
namespace {

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// One histogram bucket: upper bound (+Inf for the overflow bucket) and
/// the number of samples that landed in it (non-cumulative).
struct Bucket {
  double le = 0;
  double count = 0;
};

/// Recognizes the histogram rendering shared by MetricsRegistry::ToJson
/// and the snapshot writer: {"count": N, "sum": S, "buckets":
/// [{"le": bound-or-"inf", "count": n}, ...]}. Fills `buckets` on match.
bool AsHistogram(const obs::Json& v, std::vector<Bucket>& buckets) {
  if (!v.is_object()) return false;
  const obs::Json* count = v.Find("count");
  const obs::Json* sum = v.Find("sum");
  const obs::Json* list = v.Find("buckets");
  if (count == nullptr || count->kind() != obs::Json::Kind::kNumber ||
      sum == nullptr || sum->kind() != obs::Json::Kind::kNumber ||
      list == nullptr || list->kind() != obs::Json::Kind::kArray) {
    return false;
  }
  buckets.clear();
  for (const obs::Json& entry : list->items()) {
    if (!entry.is_object()) return false;
    const obs::Json* le = entry.Find("le");
    const obs::Json* n = entry.Find("count");
    if (le == nullptr || n == nullptr ||
        n->kind() != obs::Json::Kind::kNumber) {
      return false;
    }
    Bucket b;
    if (le->kind() == obs::Json::Kind::kNumber) {
      b.le = le->AsNumber();
    } else if (le->kind() == obs::Json::Kind::kString &&
               (le->AsString() == "inf" || le->AsString() == "+Inf")) {
      b.le = std::numeric_limits<double>::infinity();
    } else {
      return false;
    }
    b.count = n->AsNumber();
    buckets.push_back(b);
  }
  return !buckets.empty();
}

/// Estimates the q-quantile (q in [0,1]) by linear interpolation within
/// the bucket the target rank falls into. Samples in the +Inf bucket are
/// clamped to the last finite bound — the histogram carries no upper
/// bound for them, so this is the tightest honest answer.
double HistogramPercentile(const std::vector<Bucket>& buckets, double q) {
  double total = 0;
  for (const Bucket& b : buckets) total += b.count;
  if (total <= 0) return 0;
  double target = q * total;
  double cumulative = 0;
  double lower = 0;
  double last_finite = 0;
  for (const Bucket& b : buckets) {
    if (std::isfinite(b.le)) last_finite = b.le;
    if (b.count > 0 && cumulative + b.count >= target) {
      if (!std::isfinite(b.le)) return last_finite;
      double frac = (target - cumulative) / b.count;
      return lower + frac * (b.le - lower);
    }
    cumulative += b.count;
    if (std::isfinite(b.le)) lower = b.le;
  }
  return last_finite;
}

/// Collects every numeric leaf of `v` into `out` under dotted paths.
/// Histogram-shaped subtrees are summarized (count/sum/percentiles)
/// rather than flattened bucket by bucket.
void Flatten(const obs::Json& v, const std::string& prefix,
             std::map<std::string, double>& out) {
  switch (v.kind()) {
    case obs::Json::Kind::kNumber:
      out[prefix.empty() ? "." : prefix] = v.AsNumber();
      break;
    case obs::Json::Kind::kObject: {
      std::vector<Bucket> buckets;
      if (!prefix.empty() && AsHistogram(v, buckets)) {
        out[prefix + ".count"] = v.Find("count")->AsNumber();
        out[prefix + ".sum"] = v.Find("sum")->AsNumber();
        out[prefix + ".p50"] = HistogramPercentile(buckets, 0.50);
        out[prefix + ".p95"] = HistogramPercentile(buckets, 0.95);
        out[prefix + ".p99"] = HistogramPercentile(buckets, 0.99);
        // Overflow-bucket occupancy, surfaced so a clamped percentile is
        // visible as such: when .overflow grows, the .p* values above are
        // lower bounds, not estimates.
        double overflow = 0;
        for (const Bucket& b : buckets) {
          if (!std::isfinite(b.le)) overflow += b.count;
        }
        out[prefix + ".overflow"] = overflow;
        break;
      }
      for (const auto& [key, child] : v.members()) {
        Flatten(child, prefix.empty() ? key : prefix + "." + key, out);
      }
      break;
    }
    case obs::Json::Kind::kArray: {
      size_t i = 0;
      for (const obs::Json& child : v.items()) {
        Flatten(child, prefix + "[" + std::to_string(i++) + "]", out);
      }
      break;
    }
    default:
      break;  // strings/bools/nulls are labels, not measurements
  }
}

int LoadFlat(const std::string& path, std::map<std::string, double>& out) {
  std::optional<std::string> text = ReadFile(path);
  if (!text) {
    std::fprintf(stderr, "bench_summary: cannot read %s\n", path.c_str());
    return 1;
  }
  Result<obs::Json> doc = obs::Json::Parse(*text);
  if (!doc.ok()) {
    std::fprintf(stderr, "bench_summary: %s: %s\n", path.c_str(),
                 doc.status().ToString().c_str());
    return 1;
  }
  Flatten(*doc, "", out);
  return 0;
}

std::string FormatNumber(double v) {
  char buffer[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buffer, sizeof buffer, "%.0f", v);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.3f", v);
  }
  return buffer;
}

int Run(int argc, char** argv) {
  double fail_above = -1;  // disabled until --fail-above is seen
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string pct;
    if (arg.rfind("--fail-above=", 0) == 0) {
      pct = arg.substr(13);
    } else if (arg == "--fail-above") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_summary: --fail-above needs a percent\n");
        return 1;
      }
      pct = argv[++i];
    } else {
      files.push_back(std::move(arg));
      continue;
    }
    char* end = nullptr;
    fail_above = std::strtod(pct.c_str(), &end);
    if (end != pct.c_str() + pct.size() || pct.empty() || fail_above < 0) {
      std::fprintf(stderr, "bench_summary: bad --fail-above value '%s'\n",
                   pct.c_str());
      return 1;
    }
  }
  if (files.size() != 1 && files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_summary [--fail-above PCT] OLD.json "
                 "[NEW.json]\n");
    return 1;
  }
  if (fail_above >= 0 && files.size() != 2) {
    std::fprintf(stderr, "bench_summary: --fail-above needs two files\n");
    return 1;
  }
  std::map<std::string, double> old_flat;
  if (LoadFlat(files[0], old_flat) != 0) return 1;
  if (files.size() == 1) {
    for (const auto& [key, value] : old_flat) {
      std::printf("%-56s %s\n", key.c_str(), FormatNumber(value).c_str());
    }
    return 0;
  }
  std::map<std::string, double> new_flat;
  if (LoadFlat(files[1], new_flat) != 0) return 1;

  std::vector<std::pair<std::string, double>> regressions;
  std::printf("%-56s %14s %14s %14s %9s\n", "metric", "old", "new", "delta",
              "pct");
  for (const auto& [key, old_value] : old_flat) {
    auto it = new_flat.find(key);
    if (it == new_flat.end()) {
      std::printf("%-56s %14s %14s %14s %9s\n", key.c_str(),
                  FormatNumber(old_value).c_str(), "-", "-", "removed");
      continue;
    }
    double delta = it->second - old_value;
    std::string pct = old_value != 0.0
                          ? FormatNumber(100.0 * delta / old_value) + "%"
                          : (delta == 0.0 ? "0%" : "new");
    if (fail_above >= 0 && delta > 0.0 && old_value != 0.0) {
      double growth = 100.0 * delta / old_value;
      if (growth > fail_above) regressions.emplace_back(key, growth);
    }
    std::printf("%-56s %14s %14s %14s %9s\n", key.c_str(),
                FormatNumber(old_value).c_str(),
                FormatNumber(it->second).c_str(), FormatNumber(delta).c_str(),
                pct.c_str());
  }
  for (const auto& [key, new_value] : new_flat) {
    if (old_flat.count(key)) continue;
    std::printf("%-56s %14s %14s %14s %9s\n", key.c_str(), "-",
                FormatNumber(new_value).c_str(), "-", "added");
  }
  if (!regressions.empty()) {
    for (const auto& [key, growth] : regressions) {
      std::printf("REGRESSION %-56s +%s%% (limit %s%%)\n", key.c_str(),
                  FormatNumber(growth).c_str(),
                  FormatNumber(fail_above).c_str());
    }
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace secview

int main(int argc, char** argv) { return secview::Run(argc, argv); }
