// Diffs two secview metrics/trace JSON files (the output of a bench's
// --metrics-json flag, the CLI's --trace-json flag, or the engine's
// MetricsRegistry::ToJsonString) for bench trajectory tracking:
//
//   bench_summary OLD.json NEW.json     # old/new/delta table
//   bench_summary FILE.json             # flatten one file
//
// Every numeric leaf is flattened to a dotted path (arrays indexed as
// [i]) and compared; keys present in only one file are shown as added
// or removed. Exit code 0 on success, 1 on I/O or parse errors.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace secview {
namespace {

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Collects every numeric leaf of `v` into `out` under dotted paths.
void Flatten(const obs::Json& v, const std::string& prefix,
             std::map<std::string, double>& out) {
  switch (v.kind()) {
    case obs::Json::Kind::kNumber:
      out[prefix.empty() ? "." : prefix] = v.AsNumber();
      break;
    case obs::Json::Kind::kObject:
      for (const auto& [key, child] : v.members()) {
        Flatten(child, prefix.empty() ? key : prefix + "." + key, out);
      }
      break;
    case obs::Json::Kind::kArray: {
      size_t i = 0;
      for (const obs::Json& child : v.items()) {
        Flatten(child, prefix + "[" + std::to_string(i++) + "]", out);
      }
      break;
    }
    default:
      break;  // strings/bools/nulls are labels, not measurements
  }
}

int LoadFlat(const std::string& path, std::map<std::string, double>& out) {
  std::optional<std::string> text = ReadFile(path);
  if (!text) {
    std::fprintf(stderr, "bench_summary: cannot read %s\n", path.c_str());
    return 1;
  }
  Result<obs::Json> doc = obs::Json::Parse(*text);
  if (!doc.ok()) {
    std::fprintf(stderr, "bench_summary: %s: %s\n", path.c_str(),
                 doc.status().ToString().c_str());
    return 1;
  }
  Flatten(*doc, "", out);
  return 0;
}

std::string FormatNumber(double v) {
  char buffer[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buffer, sizeof buffer, "%.0f", v);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.3f", v);
  }
  return buffer;
}

int Run(int argc, char** argv) {
  if (argc != 2 && argc != 3) {
    std::fprintf(stderr, "usage: bench_summary OLD.json [NEW.json]\n");
    return 1;
  }
  std::map<std::string, double> old_flat;
  if (LoadFlat(argv[1], old_flat) != 0) return 1;
  if (argc == 2) {
    for (const auto& [key, value] : old_flat) {
      std::printf("%-56s %s\n", key.c_str(), FormatNumber(value).c_str());
    }
    return 0;
  }
  std::map<std::string, double> new_flat;
  if (LoadFlat(argv[2], new_flat) != 0) return 1;

  std::printf("%-56s %14s %14s %14s %9s\n", "metric", "old", "new", "delta",
              "pct");
  for (const auto& [key, old_value] : old_flat) {
    auto it = new_flat.find(key);
    if (it == new_flat.end()) {
      std::printf("%-56s %14s %14s %14s %9s\n", key.c_str(),
                  FormatNumber(old_value).c_str(), "-", "-", "removed");
      continue;
    }
    double delta = it->second - old_value;
    std::string pct = old_value != 0.0
                          ? FormatNumber(100.0 * delta / old_value) + "%"
                          : (delta == 0.0 ? "0%" : "inf%");
    std::printf("%-56s %14s %14s %14s %9s\n", key.c_str(),
                FormatNumber(old_value).c_str(),
                FormatNumber(it->second).c_str(), FormatNumber(delta).c_str(),
                pct.c_str());
  }
  for (const auto& [key, new_value] : new_flat) {
    if (old_flat.count(key)) continue;
    std::printf("%-56s %14s %14s %14s %9s\n", key.c_str(), "-",
                FormatNumber(new_value).c_str(), "-", "added");
  }
  return 0;
}

}  // namespace
}  // namespace secview

int main(int argc, char** argv) { return secview::Run(argc, argv); }
