// Entry point for the `secview` command-line tool; all logic lives in
// cli/cli.h so tests can drive it.

#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) args.push_back("help");
  return secview::RunCli(args, std::cout, std::cerr);
}
