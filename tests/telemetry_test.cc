// Tests for the serving-observability pieces added with the telemetry
// endpoint: the sliding-window serving stats (deterministic via an
// injected clock), the bounded slow-query ring, and the TelemetryServer
// routes — both the pure Handle() routing and end to end over a socket
// against a live, sealed engine.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/alloc_tracker.h"
#include "common/failpoint.h"
#include "engine/engine.h"
#include "engine/worker_pool.h"
#include "net/http_client.h"
#include "net/telemetry_server.h"
#include "obs/health.h"
#include "obs/export.h"
#include "obs/heap_export.h"
#include "obs/json.h"
#include "obs/mem_ledger.h"
#include "obs/plan_profile.h"
#include "obs/policy_stats.h"
#include "obs/serving_stats.h"
#include "obs/slow_query_log.h"
#include "obs/trace_store.h"
#include "workload/hospital.h"

namespace secview {
namespace {

// ---------------------------------------------------------------------------
// ServeOutcomeForStatus

TEST(ServeOutcomeTest, MatchesAuditTaxonomy) {
  using obs::ServeOutcome;
  EXPECT_EQ(obs::ServeOutcomeForStatus(Status::OK()), ServeOutcome::kOk);
  EXPECT_EQ(obs::ServeOutcomeForStatus(Status::InvalidArgument("x")),
            ServeOutcome::kDenied);
  EXPECT_EQ(obs::ServeOutcomeForStatus(Status::NotFound("x")),
            ServeOutcome::kDenied);
  EXPECT_EQ(obs::ServeOutcomeForStatus(Status::DeadlineExceeded("x")),
            ServeOutcome::kTimeout);
  EXPECT_EQ(obs::ServeOutcomeForStatus(Status::ResourceExhausted("x")),
            ServeOutcome::kTimeout);
  EXPECT_EQ(obs::ServeOutcomeForStatus(Status::Cancelled("x")),
            ServeOutcome::kShed);
  EXPECT_STREQ(obs::ServeOutcomeName(ServeOutcome::kShed), "shed");
}

// ---------------------------------------------------------------------------
// SlidingWindowStats (injected clock; no sleeps)

class WindowTest : public ::testing::Test {
 protected:
  obs::SlidingWindowStats MakeStats(size_t window_seconds = 120) {
    obs::SlidingWindowStats::Options options;
    options.window_seconds = window_seconds;
    options.now_micros = [this] { return now_micros_; };
    return obs::SlidingWindowStats(std::move(options));
  }

  void AdvanceSeconds(uint64_t s) { now_micros_ += s * 1'000'000; }

  uint64_t now_micros_ = 1'000'000'000;  // arbitrary epoch
};

TEST_F(WindowTest, AggregatesCountsAndRates) {
  obs::SlidingWindowStats stats = MakeStats();
  for (int i = 0; i < 8; ++i) stats.Record(100, obs::ServeOutcome::kOk);
  stats.Record(100, obs::ServeOutcome::kDenied);
  stats.Record(100, obs::ServeOutcome::kShed);

  obs::SlidingWindowStats::Window w = stats.Snapshot(10);
  EXPECT_EQ(w.count, 10u);
  EXPECT_EQ(w.ok, 8u);
  EXPECT_EQ(w.denied, 1u);
  EXPECT_EQ(w.shed, 1u);
  EXPECT_DOUBLE_EQ(w.qps, 1.0);  // 10 queries over a 10s window
  EXPECT_DOUBLE_EQ(w.error_rate, 0.2);
  EXPECT_DOUBLE_EQ(w.shed_rate, 0.1);
  EXPECT_EQ(stats.total(), 10u);
}

TEST_F(WindowTest, OldSecondsFallOutOfTheWindow) {
  obs::SlidingWindowStats stats = MakeStats();
  stats.Record(100, obs::ServeOutcome::kOk);
  AdvanceSeconds(5);
  stats.Record(100, obs::ServeOutcome::kOk);

  EXPECT_EQ(stats.Snapshot(10).count, 2u);
  // A 3s window reaches back only to now-2s: the first record is gone.
  EXPECT_EQ(stats.Snapshot(3).count, 1u);
  AdvanceSeconds(100);
  EXPECT_EQ(stats.Snapshot(10).count, 0u);
  EXPECT_EQ(stats.total(), 2u) << "lifetime total never decays";
}

TEST_F(WindowTest, LappedBucketsAreNotDoubleCounted) {
  obs::SlidingWindowStats stats = MakeStats(/*window_seconds=*/4);
  stats.Record(100, obs::ServeOutcome::kOk);
  // Advance a full ring length plus one: the writer lands in the same
  // physical bucket as the first record and must reset it, not add.
  AdvanceSeconds(5);
  stats.Record(100, obs::ServeOutcome::kOk);
  EXPECT_EQ(stats.Snapshot(4).count, 1u);
}

TEST_F(WindowTest, PercentilesReadOffLatencyBuckets) {
  obs::SlidingWindowStats::Options options;
  options.latency_bounds = {10, 100, 1000};
  options.now_micros = [this] { return now_micros_; };
  obs::SlidingWindowStats stats(std::move(options));
  // 100 samples: ranks 1-89 land in the <=10 bucket, 90-98 in <=100,
  // 99-100 in <=1000; nearest-rank p50/p95/p99 are ranks 50/95/99.
  for (int i = 0; i < 89; ++i) stats.Record(5, obs::ServeOutcome::kOk);
  for (int i = 0; i < 9; ++i) stats.Record(50, obs::ServeOutcome::kOk);
  stats.Record(500, obs::ServeOutcome::kOk);
  stats.Record(500, obs::ServeOutcome::kOk);

  obs::SlidingWindowStats::Window w = stats.Snapshot(10);
  EXPECT_EQ(w.p50_micros, 10u);
  EXPECT_EQ(w.p95_micros, 100u);
  EXPECT_EQ(w.p99_micros, 1000u);
  EXPECT_FALSE(w.p99_overflow);
}

TEST_F(WindowTest, TailBeyondLastBoundIsFlaggedAsOverflow) {
  obs::SlidingWindowStats::Options options;
  options.latency_bounds = {10, 100};
  options.now_micros = [this] { return now_micros_; };
  obs::SlidingWindowStats stats(std::move(options));
  for (int i = 0; i < 10; ++i) stats.Record(50'000, obs::ServeOutcome::kOk);

  obs::SlidingWindowStats::Window w = stats.Snapshot(10);
  EXPECT_EQ(w.p99_micros, 100u) << "clamped to the last finite bound";
  EXPECT_TRUE(w.p99_overflow) << "but marked as a lower bound";
}

TEST_F(WindowTest, ConcurrentRecordAndSnapshot) {
  // Real clock here: this is the TSan-facing smoke for writer/reader
  // interleavings across bucket mutexes.
  obs::SlidingWindowStats stats;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stats, &stop] {
      while (!stop.load()) {
        stats.Record(42, obs::ServeOutcome::kOk);
      }
    });
  }
  // Don't start reading until at least one writer got scheduled, or the
  // 200 snapshots can finish before any Record lands.
  while (stats.total() == 0) std::this_thread::yield();
  uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    obs::SlidingWindowStats::Window w = stats.Snapshot(10);
    EXPECT_GE(w.count + 1, last);  // snapshots are non-garbled
    last = w.count;
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_GT(stats.total(), 0u);
}

// ---------------------------------------------------------------------------
// SlowQueryLog

obs::SlowQueryLog::Entry MakeEntry(const std::string& query,
                                   uint64_t latency_micros) {
  obs::SlowQueryLog::Entry entry;
  entry.policy = "nurse";
  entry.query = query;
  entry.latency_micros = latency_micros;
  return entry;
}

TEST(SlowQueryLogTest, ThresholdFiltersFastQueries) {
  obs::SlowQueryLog::Options options;
  options.threshold_micros = 1000;
  obs::SlowQueryLog log(options);
  log.MaybeRecord(MakeEntry("fast", 10));
  log.MaybeRecord(MakeEntry("slow", 5000));
  ASSERT_EQ(log.Snapshot().size(), 1u);
  EXPECT_EQ(log.Snapshot()[0].query, "slow");
  EXPECT_EQ(log.recorded(), 1u);
}

TEST(SlowQueryLogTest, ZeroThresholdLogsEverything) {
  obs::SlowQueryLog::Options options;
  options.threshold_micros = 0;
  obs::SlowQueryLog log(options);
  log.MaybeRecord(MakeEntry("q", 0));
  EXPECT_EQ(log.Snapshot().size(), 1u);
}

TEST(SlowQueryLogTest, RingKeepsNewestAndOrdersNewestFirst) {
  obs::SlowQueryLog::Options options;
  options.capacity = 3;
  options.threshold_micros = 0;
  obs::SlowQueryLog log(options);
  for (int i = 0; i < 5; ++i) {
    log.MaybeRecord(MakeEntry("q" + std::to_string(i), 100));
  }
  std::vector<obs::SlowQueryLog::Entry> entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].query, "q4");
  EXPECT_EQ(entries[1].query, "q3");
  EXPECT_EQ(entries[2].query, "q2");
  EXPECT_EQ(log.recorded(), 5u);
}

TEST(SlowQueryLogTest, ConcurrentRecordAndSnapshot) {
  obs::SlowQueryLog::Options options;
  options.threshold_micros = 0;
  options.capacity = 8;
  obs::SlowQueryLog log(options);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      std::vector<obs::SlowQueryLog::Entry> entries = log.Snapshot();
      EXPECT_LE(entries.size(), 8u);
      for (const auto& e : entries) EXPECT_EQ(e.policy, "nurse");
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&log, t] {
      for (int i = 0; i < 500; ++i) {
        log.MaybeRecord(MakeEntry("q" + std::to_string(t * 1000 + i), 100));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(log.recorded(), 2000u);
  EXPECT_EQ(log.Snapshot().size(), 8u);
}

// ---------------------------------------------------------------------------
// TelemetryServer routing + end to end against a live engine

constexpr char kNursePolicy[] = R"(
  ann(hospital, dept) = [*/patient/wardNo = $wardNo]
  ann(dept, clinicalTrial) = N
  ann(clinicalTrial, patientInfo) = Y
  ann(treatment, trial) = N
  ann(treatment, regular) = N
  ann(trial, bill) = Y
  ann(regular, bill) = Y
  ann(regular, medication) = Y
)";

class TelemetryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto engine = SecureQueryEngine::Create(MakeHospitalDtd());
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(engine).value();
    ASSERT_TRUE(engine_->RegisterPolicy("nurse", kNursePolicy).ok());
    auto doc = GenerateDocument(MakeHospitalDtd(),
                                HospitalGeneratorOptions(7, 20'000));
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = std::make_unique<XmlTree>(std::move(doc).value());

    obs::SlowQueryLog::Options slow_options;
    slow_options.threshold_micros = 0;  // log every execution
    slow_log_ = std::make_unique<obs::SlowQueryLog>(slow_options);
    window_ = std::make_unique<obs::SlidingWindowStats>();
    engine_->AttachServingObservers(window_.get(), slow_log_.get());

    policy_stats_ = std::make_unique<obs::PolicyStatsTable>();
    engine_->AttachPolicyStats(policy_stats_.get());
    obs::RequestTraceStore::Options trace_options;
    trace_options.sample_every = 1;  // trace every execution
    traces_ = std::make_unique<obs::RequestTraceStore>(trace_options);
    engine_->AttachTraceStore(traces_.get());
    plan_profiles_ = std::make_unique<obs::PlanProfileTable>();
    engine_->AttachPlanProfiles(plan_profiles_.get());

    net::TelemetryServer::Options options;
    options.ready = [this] { return engine_->sealed(); };
    options.window = window_.get();
    options.slow_log = slow_log_.get();
    options.policy_stats = policy_stats_.get();
    options.traces = traces_.get();
    options.plan_profiles = plan_profiles_.get();
    server_ = std::make_unique<net::TelemetryServer>(&engine_->metrics(),
                                                     options);
  }

  net::HttpRequest Get(const std::string& target) {
    net::HttpRequest request;
    request.method = "GET";
    request.target = target;
    request.version = "HTTP/1.1";
    return request;
  }

  void ExecuteSome() {
    ExecuteOptions options;
    options.bindings = {{"wardNo", "3"}};
    for (const char* q : {"//patient//bill", "//patient/name", "//bill"}) {
      auto result = engine_->Execute("nurse", *doc_, q, options);
      ASSERT_TRUE(result.ok()) << result.status();
    }
    // One denial, so error-rate surfaces are nonzero too.
    auto denied = engine_->Execute("nurse", *doc_, "//patient[", options);
    ASSERT_FALSE(denied.ok());
  }

  std::unique_ptr<SecureQueryEngine> engine_;
  std::unique_ptr<XmlTree> doc_;
  std::unique_ptr<obs::SlidingWindowStats> window_;
  std::unique_ptr<obs::SlowQueryLog> slow_log_;
  std::unique_ptr<obs::PolicyStatsTable> policy_stats_;
  std::unique_ptr<obs::RequestTraceStore> traces_;
  std::unique_ptr<obs::PlanProfileTable> plan_profiles_;
  std::unique_ptr<net::TelemetryServer> server_;
};

TEST_F(TelemetryServerTest, HealthzTracksEngineSealing) {
  EXPECT_EQ(server_->Handle(Get("/healthz")).status, 503);
  engine_->Seal();
  net::HttpResponse response = server_->Handle(Get("/healthz"));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "ok\n");
}

TEST_F(TelemetryServerTest, MetricsRouteRendersValidPrometheusText) {
  engine_->Seal();
  ExecuteSome();
  net::HttpResponse response = server_->Handle(Get("/metrics"));
  ASSERT_EQ(response.status, 200);
  Status valid = obs::ValidatePrometheusText(response.body);
  EXPECT_TRUE(valid.ok()) << valid;
  EXPECT_NE(response.body.find("secview_engine_queries_total"),
            std::string::npos);
  EXPECT_NE(response.body.find("secview_engine_execute_micros_bucket"),
            std::string::npos);
  EXPECT_NE(response.body.find("secview_build_info{"), std::string::npos);
  EXPECT_NE(response.body.find("secview_process_start_time_unix"),
            std::string::npos);
}

TEST_F(TelemetryServerTest, VarzRouteIsTheMetricsV1Document) {
  engine_->Seal();
  ExecuteSome();
  net::HttpResponse response = server_->Handle(Get("/varz"));
  ASSERT_EQ(response.status, 200);
  auto parsed = obs::Json::Parse(response.body);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const obs::Json* schema = parsed->Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->AsString(), "secview.metrics.v1");
  ASSERT_NE(parsed->Find("counters"), nullptr);
  ASSERT_NE(parsed->Find("histograms"), nullptr);
}

TEST_F(TelemetryServerTest, StatuszReportsServingStateAndSlowQueries) {
  engine_->Seal();
  ExecuteSome();
  net::HttpResponse response = server_->Handle(Get("/statusz"));
  ASSERT_EQ(response.status, 200);
  const std::string& body = response.body;
  EXPECT_NE(body.find("uptime:"), std::string::npos);
  EXPECT_NE(body.find("ready: yes"), std::string::npos);
  EXPECT_NE(body.find("last 10s:"), std::string::npos);
  EXPECT_NE(body.find("qps"), std::string::npos);
  EXPECT_NE(body.find("engine.cache.shard"), std::string::npos);
  // Threshold 0 logs every execution: the slow-query section must list
  // the queries just run, newest first, including the denied one.
  EXPECT_NE(body.find("query=//patient//bill"), std::string::npos);
  EXPECT_NE(body.find("[denied]"), std::string::npos);
  // Window saw 4 executions (3 ok + 1 denied) within the last 10s.
  EXPECT_EQ(window_->Snapshot(10).count, 4u);
  EXPECT_EQ(window_->Snapshot(10).denied, 1u);
}

TEST_F(TelemetryServerTest, StatuszReportsCompiledPlanResidency) {
  engine_->Seal();
  ExecuteSome();
  net::HttpResponse response = server_->Handle(Get("/statusz"));
  ASSERT_EQ(response.status, 200);
  const std::string& body = response.body;
  // The rewrite-cache section now reports byte footprints alongside
  // entry counts, plus the compiled-plan residency line.
  EXPECT_NE(body.find("total entries:"), std::string::npos) << body;
  EXPECT_NE(body.find("bytes)"), std::string::npos) << body;
  EXPECT_NE(body.find("plans: "), std::string::npos) << body;
  EXPECT_NE(body.find("compiles)"), std::string::npos) << body;
}

TEST_F(TelemetryServerTest, MetricsRouteIncludesPolicySeries) {
  engine_->Seal();
  ExecuteSome();
  net::HttpResponse response = server_->Handle(Get("/metrics"));
  ASSERT_EQ(response.status, 200);
  Status valid = obs::ValidatePrometheusText(response.body);
  EXPECT_TRUE(valid.ok()) << valid;
  EXPECT_NE(response.body.find("secview_policy_queries_total{policy=\"nurse\"}"),
            std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find(
                "secview_policy_outcome_total{policy=\"nurse\",outcome=\"ok\"}"),
            std::string::npos);
  EXPECT_NE(response.body.find("secview_policy_latency_micros{policy=\"nurse\","
                               "quantile=\"0.99\"}"),
            std::string::npos);
}

TEST_F(TelemetryServerTest, VarzCarriesPolicyStatsSection) {
  engine_->Seal();
  ExecuteSome();
  net::HttpResponse response = server_->Handle(Get("/varz"));
  ASSERT_EQ(response.status, 200);
  auto parsed = obs::Json::Parse(response.body);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const obs::Json* policies = parsed->Find("policy_stats");
  ASSERT_NE(policies, nullptr);
  const obs::Json* nurse = policies->Find("nurse");
  ASSERT_NE(nurse, nullptr);
  EXPECT_EQ(nurse->Find("queries")->AsNumber(), 4);  // 3 ok + 1 denied
  EXPECT_EQ(nurse->Find("denied")->AsNumber(), 1);
}

TEST_F(TelemetryServerTest, TracezServesTextAndJsonl) {
  engine_->Seal();
  ExecuteSome();

  net::HttpResponse text = server_->Handle(Get("/tracez"));
  ASSERT_EQ(text.status, 200);
  EXPECT_NE(text.body.find("request traces:"), std::string::npos);
  EXPECT_NE(text.body.find("//patient//bill"), std::string::npos);
  EXPECT_NE(text.body.find("evaluate"), std::string::npos) << text.body;

  net::HttpResponse jsonl = server_->Handle(Get("/tracez?format=json"));
  ASSERT_EQ(jsonl.status, 200);
  EXPECT_EQ(jsonl.content_type, "application/x-ndjson");
  size_t lines = 0;
  size_t pos = 0;
  while ((pos = jsonl.body.find('\n', pos)) != std::string::npos) {
    ++pos;
    ++lines;
  }
  EXPECT_EQ(lines, 4u);  // sample_every=1: all 4 executions retained
  auto first = obs::Json::Parse(jsonl.body.substr(0, jsonl.body.find('\n')));
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->Find("schema")->AsString(), "secview.trace.v1");
  EXPECT_EQ(first->Find("policy")->AsString(), "nurse");
  ASSERT_NE(first->Find("spans"), nullptr);

  // Same entries, same ids on a second scrape.
  net::HttpResponse again = server_->Handle(Get("/tracez?format=json"));
  EXPECT_EQ(again.body, jsonl.body);

  EXPECT_EQ(server_->Handle(Get("/tracez?format=xml")).status, 400);
}

TEST_F(TelemetryServerTest, ProfilezServesTopStepsTextAndJson) {
  engine_->Seal();
  ExecuteSome();

  net::HttpResponse text = server_->Handle(Get("/profilez"));
  ASSERT_EQ(text.status, 200);
  EXPECT_NE(text.body.find("plan profile:"), std::string::npos);
  // The engine profiles the rewritten plan, where descendant steps have
  // been replaced by explicit child chains over the view DTD.
  EXPECT_NE(text.body.find("child::"), std::string::npos) << text.body;
  EXPECT_EQ(plan_profiles_->queries(), 3u);  // the denied query never ran

  net::HttpResponse limited = server_->Handle(Get("/profilez?k=1"));
  ASSERT_EQ(limited.status, 200);
  EXPECT_LT(limited.body.size(), text.body.size());

  net::HttpResponse json = server_->Handle(Get("/profilez?format=json"));
  ASSERT_EQ(json.status, 200);
  EXPECT_EQ(json.content_type, "application/json");
  auto parsed = obs::Json::Parse(json.body);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Find("schema")->AsString(), "secview.profile.v1");
  EXPECT_EQ(parsed->Find("queries")->AsNumber(), 3);
  ASSERT_NE(parsed->Find("steps"), nullptr);
  EXPECT_FALSE(parsed->Find("steps")->items().empty());

  EXPECT_EQ(server_->Handle(Get("/profilez?k=abc")).status, 400);
  EXPECT_EQ(server_->Handle(Get("/profilez?format=xml")).status, 400);
}

TEST_F(TelemetryServerTest, ProfilezWithoutTableSaysNotAttached) {
  net::TelemetryServer::Options options;
  net::TelemetryServer bare(&engine_->metrics(), options);
  net::HttpResponse response = bare.Handle(Get("/profilez"));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("no plan-profile table attached"),
            std::string::npos);
}

TEST_F(TelemetryServerTest, SlowLogEntriesCarryHotStep) {
  engine_->Seal();
  ExecuteSome();
  // The plan-profile table being attached implies profiling on every
  // execution, so each logged entry names its hottest step.
  net::HttpResponse response = server_->Handle(Get("/statusz"));
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.body.find(" hot="), std::string::npos) << response.body;
  bool saw_hot_step = false;
  for (const obs::SlowQueryLog::Entry& e : slow_log_->Snapshot()) {
    if (!e.hot_step.empty()) {
      saw_hot_step = true;
      EXPECT_NE(e.hot_step.find(" nodes="), std::string::npos) << e.hot_step;
    }
  }
  EXPECT_TRUE(saw_hot_step);
}

TEST_F(TelemetryServerTest, StatuszShowsPolicyAndTraceSections) {
  engine_->Seal();
  ExecuteSome();
  net::HttpResponse response = server_->Handle(Get("/statusz"));
  ASSERT_EQ(response.status, 200);
  const std::string& body = response.body;
  EXPECT_NE(body.find("per-policy"), std::string::npos);
  EXPECT_NE(body.find("nurse: 4 queries"), std::string::npos) << body;
  EXPECT_NE(body.find("request traces"), std::string::npos);
  EXPECT_NE(body.find("sample 1/1"), std::string::npos);
  // The slow-query section now carries per-query allocation churn.
  EXPECT_NE(body.find("alloc="), std::string::npos);
}

TEST_F(TelemetryServerTest, UnknownRouteIs404) {
  EXPECT_EQ(server_->Handle(Get("/nope")).status, 404);
  EXPECT_EQ(server_->Handle(Get("/")).status, 200);
}

TEST_F(TelemetryServerTest, RootRouteListsHeapAndMemEndpoints) {
  net::HttpResponse response = server_->Handle(Get("/"));
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("/heapz"), std::string::npos) << response.body;
  EXPECT_NE(response.body.find("/memz"), std::string::npos) << response.body;
}

TEST_F(TelemetryServerTest, HeapzRendersTextJsonAndCollapsed) {
  net::HttpResponse text = server_->Handle(Get("/heapz"));
  ASSERT_EQ(text.status, 200);
  EXPECT_NE(text.body.find("heap profile:"), std::string::npos) << text.body;
  EXPECT_NE(text.body.find("process: live"), std::string::npos) << text.body;

  net::HttpResponse json = server_->Handle(Get("/heapz?format=json"));
  ASSERT_EQ(json.status, 200);
  EXPECT_EQ(json.content_type, "application/json");
  Status valid = obs::ValidateHeapProfileJson(json.body);
  EXPECT_TRUE(valid.ok()) << valid << "\n" << json.body;

  // Collapsed output may be empty (no sampler running in unit tests)
  // but the route itself must succeed.
  EXPECT_EQ(server_->Handle(Get("/heapz?format=collapsed")).status, 200);
  EXPECT_EQ(server_->Handle(Get("/heapz?k=5")).status, 200);
  EXPECT_EQ(server_->Handle(Get("/heapz?k=abc")).status, 400);
  EXPECT_EQ(server_->Handle(Get("/heapz?format=xml")).status, 400);
}

TEST_F(TelemetryServerTest, MemzReportsLedgerAndProcessCounters) {
  obs::MemLedger::Instance().ResetForTesting();
  obs::ScopedLedgerCharge charge("test.memz", 12345);

  net::HttpResponse text = server_->Handle(Get("/memz"));
  ASSERT_EQ(text.status, 200);
  EXPECT_NE(text.body.find("process: live"), std::string::npos) << text.body;
  EXPECT_NE(text.body.find("test.memz: 12345 B"), std::string::npos)
      << text.body;

  net::HttpResponse json = server_->Handle(Get("/memz?format=json"));
  ASSERT_EQ(json.status, 200);
  EXPECT_EQ(json.content_type, "application/json");
  auto parsed = obs::Json::Parse(json.body);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_NE(parsed->Find("schema"), nullptr);
  EXPECT_EQ(parsed->Find("schema")->AsString(), "secview.mem.v1");
  ASSERT_NE(parsed->Find("process"), nullptr);
  ASSERT_NE(parsed->Find("accounts"), nullptr);
  bool found = false;
  for (const obs::Json& account : parsed->Find("accounts")->items()) {
    if (account.Find("name")->AsString() == "test.memz") {
      EXPECT_EQ(account.Find("bytes")->AsNumber(), 12345);
      found = true;
    }
  }
  EXPECT_TRUE(found) << json.body;
  EXPECT_EQ(parsed->Find("ledger_total_bytes")->AsNumber(), 12345);

  EXPECT_EQ(server_->Handle(Get("/memz?format=xml")).status, 400);
}

TEST_F(TelemetryServerTest, StatuszHasMemorySection) {
  engine_->Seal();
  net::HttpResponse response = server_->Handle(Get("/statusz"));
  ASSERT_EQ(response.status, 200);
  const std::string& body = response.body;
  EXPECT_NE(body.find("\nmemory\n"), std::string::npos) << body;
  EXPECT_NE(body.find("rss: "), std::string::npos) << body;
  EXPECT_NE(body.find("ledger: "), std::string::npos) << body;
  EXPECT_NE(body.find("heap profiler:"), std::string::npos) << body;
}

TEST_F(TelemetryServerTest, MetricsRouteIncludesMemorySeries) {
  engine_->Seal();
  net::HttpResponse response = server_->Handle(Get("/metrics"));
  ASSERT_EQ(response.status, 200);
  Status valid = obs::ValidatePrometheusText(response.body);
  EXPECT_TRUE(valid.ok()) << valid;
  EXPECT_NE(response.body.find("secview_process_resident_memory_bytes"),
            std::string::npos);
  EXPECT_NE(response.body.find("secview_mem_ledger_total_bytes"),
            std::string::npos);
  if (LiveHeapTrackingAvailable()) {
    EXPECT_NE(response.body.find("secview_heap_live_bytes"),
              std::string::npos);
  }
}

TEST_F(TelemetryServerTest, EndToEndScrapeWhileServing) {
  ASSERT_TRUE(server_->Start().ok());
  ASSERT_NE(server_->port(), 0);

  QueryWorkerPool pool(*engine_);  // seals the engine

  // Scrape concurrently with batch execution: the acceptance shape for
  // the live-telemetry feature (and the unit-level TSan surface).
  std::atomic<bool> stop{false};
  std::atomic<int> good_scrapes{0};
  std::atomic<int> bad_scrapes{0};
  std::thread scraper([&] {
    while (!stop.load()) {
      auto response = net::HttpGet("127.0.0.1", server_->port(), "/metrics");
      if (response.ok() && response->status == 200 &&
          obs::ValidatePrometheusText(response->body).ok()) {
        good_scrapes.fetch_add(1);
      } else {
        bad_scrapes.fetch_add(1);
      }
      // /tracez races the workers Offering traces; every line must still
      // be a complete secview.trace.v1 object.
      auto tracez =
          net::HttpGet("127.0.0.1", server_->port(), "/tracez?format=json");
      if (!tracez.ok() || tracez->status != 200) {
        bad_scrapes.fetch_add(1);
        continue;
      }
      std::string_view rest = tracez->body;
      bool lines_ok = true;
      while (!rest.empty()) {
        size_t nl = rest.find('\n');
        if (nl == std::string_view::npos) break;
        lines_ok &= obs::Json::Parse(rest.substr(0, nl)).ok();
        rest.remove_prefix(nl + 1);
      }
      if (!lines_ok) bad_scrapes.fetch_add(1);
      // /profilez races the workers Recording flattened plans into the
      // striped table; the JSON document must always parse whole.
      auto profilez =
          net::HttpGet("127.0.0.1", server_->port(), "/profilez?format=json");
      if (!profilez.ok() || profilez->status != 200 ||
          !obs::Json::Parse(profilez->body).ok()) {
        bad_scrapes.fetch_add(1);
      }
      // /heapz and /memz race the workers' allocation churn (live-heap
      // atomics, eval-scratch publications); the documents must always
      // validate whole.
      auto heapz =
          net::HttpGet("127.0.0.1", server_->port(), "/heapz?format=json");
      if (!heapz.ok() || heapz->status != 200 ||
          !obs::ValidateHeapProfileJson(heapz->body).ok()) {
        bad_scrapes.fetch_add(1);
      }
      auto memz =
          net::HttpGet("127.0.0.1", server_->port(), "/memz?format=json");
      if (!memz.ok() || memz->status != 200 ||
          !obs::Json::Parse(memz->body).ok()) {
        bad_scrapes.fetch_add(1);
      }
    }
  });

  ExecuteOptions options;
  options.bindings = {{"wardNo", "3"}};
  std::vector<std::string> queries = {"//patient//bill", "//patient/name",
                                      "//bill", "//regular/medication"};
  for (int round = 0; round < 5; ++round) {
    for (const auto& result : pool.ExecuteBatch("nurse", *doc_, queries,
                                                options)) {
      ASSERT_TRUE(result.ok()) << result.status();
    }
  }
  stop.store(true);
  scraper.join();
  EXPECT_GT(good_scrapes.load(), 0);
  EXPECT_EQ(bad_scrapes.load(), 0);

  // The scrape saw a live engine: pool/cache counters are nonzero now.
  auto healthz = net::HttpGet("127.0.0.1", server_->port(), "/healthz");
  ASSERT_TRUE(healthz.ok()) << healthz.status();
  EXPECT_EQ(healthz->status, 200);
  auto statusz = net::HttpGet("127.0.0.1", server_->port(), "/statusz");
  ASSERT_TRUE(statusz.ok()) << statusz.status();
  EXPECT_NE(statusz->body.find("engine.pool.tasks"), std::string::npos);
  EXPECT_GT(window_->Snapshot(60).count, 0u);
  // The workers fed the trace ring, the policy table, and the plan-
  // profile table while we scraped.
  EXPECT_GT(traces_->retained(), 0u);
  EXPECT_EQ(policy_stats_->total(), window_->total());
  EXPECT_GT(plan_profiles_->queries(), 0u);
  EXPECT_GT(plan_profiles_->steps(), 0u);
  server_->Stop();
}

// --- Health state machine ---------------------------------------------

TEST(HealthTrackerTest, DegradesAtThresholdAndRecoversWithHysteresis) {
  uint64_t fake_now = 0;
  obs::HealthTracker::Options options;
  options.now_micros = [&fake_now] { return fake_now; };
  obs::HealthTracker health(options);
  EXPECT_EQ(health.state(), obs::HealthState::kOk);

  // 30 straight failures in one window: well past the 0.5 threshold and
  // the 20-event minimum.
  for (int i = 0; i < 30; ++i) health.RecordOutcome(false);
  EXPECT_EQ(health.state(), obs::HealthState::kDegraded);

  // A mixed window at exactly 50% keeps us degraded: recovery requires
  // the rate to fall to 0.1, not merely below 0.5.
  fake_now += 120 * 1'000'000ull;  // step past the 30s window
  for (int i = 0; i < 15; ++i) health.RecordOutcome(true);
  for (int i = 0; i < 15; ++i) health.RecordOutcome(false);
  EXPECT_EQ(health.state(), obs::HealthState::kDegraded);

  // A clean window recovers.
  fake_now += 120 * 1'000'000ull;
  for (int i = 0; i < 30; ++i) health.RecordOutcome(true);
  EXPECT_EQ(health.state(), obs::HealthState::kOk);
}

TEST(HealthTrackerTest, SparseTrafficNeverFlipsTheVerdict) {
  uint64_t fake_now = 0;
  obs::HealthTracker::Options options;
  options.now_micros = [&fake_now] { return fake_now; };
  obs::HealthTracker health(options);

  // 5 failures is 100% failure rate but below min_events: still ok.
  for (int i = 0; i < 5; ++i) health.RecordOutcome(false);
  EXPECT_EQ(health.state(), obs::HealthState::kOk);

  // Degrade for real, then go idle: an empty window keeps the degraded
  // verdict — recovery needs demonstrated healthy traffic.
  for (int i = 0; i < 25; ++i) health.RecordOutcome(false);
  EXPECT_EQ(health.state(), obs::HealthState::kDegraded);
  fake_now += 600 * 1'000'000ull;
  EXPECT_EQ(health.state(), obs::HealthState::kDegraded);
  for (int i = 0; i < 3; ++i) health.RecordOutcome(true);
  EXPECT_EQ(health.state(), obs::HealthState::kDegraded);  // < min_events
  for (int i = 0; i < 20; ++i) health.RecordOutcome(true);
  EXPECT_EQ(health.state(), obs::HealthState::kOk);
}

TEST(HealthTrackerTest, DropsCountAsFailuresAndWindowForgetsThem) {
  uint64_t fake_now = 0;
  obs::HealthTracker::Options options;
  options.now_micros = [&fake_now] { return fake_now; };
  obs::HealthTracker health(options);

  // Queries all answer ok, but every one also drops an audit record:
  // combined rate 20/(20+20) = 0.5 -> degraded.
  for (int i = 0; i < 20; ++i) {
    health.RecordOutcome(true);
    health.RecordDrop();
  }
  EXPECT_EQ(health.state(), obs::HealthState::kDegraded);
  obs::HealthTracker::Window w = health.Snapshot();
  EXPECT_EQ(w.ok, 20u);
  EXPECT_EQ(w.drops, 20u);
  EXPECT_DOUBLE_EQ(w.failure_rate, 0.5);

  // The window slides: the old drops age out and a healthy stretch of
  // fresh traffic recovers.
  fake_now += 31 * 1'000'000ull;
  for (int i = 0; i < 20; ++i) health.RecordOutcome(true);
  EXPECT_EQ(health.state(), obs::HealthState::kOk);
  w = health.Snapshot();
  EXPECT_EQ(w.drops, 0u);
}

TEST(HealthTrackerTest, StateNamesAreStable) {
  EXPECT_STREQ(obs::HealthStateName(obs::HealthState::kStarting), "starting");
  EXPECT_STREQ(obs::HealthStateName(obs::HealthState::kOk), "ok");
  EXPECT_STREQ(obs::HealthStateName(obs::HealthState::kDegraded), "degraded");
}

// --- Degraded-mode surfacing on /healthz and /statusz -----------------

TEST_F(TelemetryServerTest, HealthzReportsDegradedFromAttachedTracker) {
  engine_->Seal();
  uint64_t fake_now = 0;
  obs::HealthTracker::Options health_options;
  health_options.now_micros = [&fake_now] { return fake_now; };
  obs::HealthTracker health(health_options);

  net::TelemetryServer::Options options;
  options.ready = [this] { return engine_->sealed(); };
  options.health = &health;
  net::TelemetryServer server(&engine_->metrics(), options);

  auto ok = server.Handle(Get("/healthz"));
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.body, "ok\n");

  for (int i = 0; i < 30; ++i) health.RecordOutcome(false);
  auto degraded = server.Handle(Get("/healthz"));
  // Degraded is still 200: load balancers should deprioritize, not
  // eject, a server that is answering queries but shedding audit.
  EXPECT_EQ(degraded.status, 200);
  EXPECT_EQ(degraded.body, "degraded\n");

  fake_now += 120 * 1'000'000ull;
  for (int i = 0; i < 30; ++i) health.RecordOutcome(true);
  auto recovered = server.Handle(Get("/healthz"));
  EXPECT_EQ(recovered.status, 200);
  EXPECT_EQ(recovered.body, "ok\n");
}

TEST_F(TelemetryServerTest, StatuszRendersHealthAuditAndFailpointSections) {
  engine_->Seal();
  ExecuteSome();

  obs::HealthTracker health;
  health.RecordOutcome(true);

  net::TelemetryServer::Options options;
  options.ready = [this] { return engine_->sealed(); };
  options.health = &health;
  options.window = window_.get();
  net::TelemetryServer server(&engine_->metrics(), options);

  // Audit counters present, no drops yet: section renders without the
  // degradation banner.
  engine_->metrics().GetCounter("audit.events").Add(4);
  auto clean = server.Handle(Get("/statusz"));
  ASSERT_EQ(clean.status, 200);
  EXPECT_NE(clean.body.find("health: ok"), std::string::npos);
  EXPECT_NE(clean.body.find("4 events written, 0 dropped"),
            std::string::npos);
  EXPECT_EQ(clean.body.find("DEGRADED: audit trail"), std::string::npos);
  EXPECT_EQ(clean.body.find("\nfailpoints\n"), std::string::npos);

  // Drops and an armed failpoint surface their sections.
  engine_->metrics().GetCounter("audit.dropped").Add(2);
  auto& registry = FailPointRegistry::Instance();
  ASSERT_TRUE(registry.ArmFromSpec("audit.write=every:2").ok());
  registry.Get("audit.write").Fire();
  auto degraded = server.Handle(Get("/statusz"));
  registry.DisarmAll();
  ASSERT_EQ(degraded.status, 200);
  EXPECT_NE(degraded.body.find("2 dropped"), std::string::npos);
  EXPECT_NE(degraded.body.find("** DEGRADED: audit trail has gaps **"),
            std::string::npos);
  EXPECT_NE(degraded.body.find("\nfailpoints\n"), std::string::npos);
  EXPECT_NE(degraded.body.find("audit.write policy=every:2 fires="),
            std::string::npos);
  EXPECT_NE(degraded.body.find("io errors"), std::string::npos);
}

}  // namespace
}  // namespace secview
