#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/alloc_tracker.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace secview {
namespace {

TEST(AllocTrackerTest, ScopedCounterSeesHeapChurn) {
  if (!AllocTrackingAvailable()) GTEST_SKIP() << "tracker compiled out";
  uint64_t bytes = 0, count = 0;
  {
    ScopedAllocCounter counter(&bytes, &count);
    for (int i = 0; i < 16; ++i) {
      // Volatile sink so the allocation cannot be elided.
      auto p = std::make_unique<char[]>(1 << 12);
      volatile char c = p[0];
      (void)c;
    }
  }
  EXPECT_GE(count, 16u);
  EXPECT_GE(bytes, 16u << 12);
}

TEST(AllocTrackerTest, DeltaExcludesWorkOutsideScope) {
  if (!AllocTrackingAvailable()) GTEST_SKIP() << "tracker compiled out";
  auto before = std::make_unique<char[]>(1 << 20);
  uint64_t bytes = 0, count = 0;
  {
    ScopedAllocCounter counter(&bytes, &count);
    AllocCounts mid = counter.Delta();
    EXPECT_EQ(mid.bytes, bytes);  // Nothing allocated yet in scope.
  }
  volatile char c = before[0];
  (void)c;
  EXPECT_LT(bytes, 1u << 20);  // The pre-scope megabyte is not charged.
}

TEST(AllocTrackerTest, CountsAreThreadLocal) {
  if (!AllocTrackingAvailable()) GTEST_SKIP() << "tracker compiled out";
  uint64_t bytes = 0, count = 0;
  {
    ScopedAllocCounter counter(&bytes, &count);
    std::thread t([] {
      auto p = std::make_unique<char[]>(1 << 22);
      volatile char c = p[0];
      (void)c;
    });
    t.join();
  }
  // The 4MB allocated on the other thread is charged there, not here.
  // std::thread itself may allocate on this thread; allow that slack.
  EXPECT_LT(bytes, 1u << 22);
}

TEST(AllocTrackerTest, NewDeleteRoundTripUnderTracker) {
  // Exercises the full operator family (scalar, array, nothrow,
  // over-aligned) so ASan can vet the hooks' malloc/free pairing.
  uint64_t bytes = 0, count = 0;
  ScopedAllocCounter counter(&bytes, &count);
  int* scalar = new int(7);
  delete scalar;
  char* arr = new char[257];
  delete[] arr;
  int* soft = new (std::nothrow) int(9);
  EXPECT_NE(soft, nullptr);
  delete soft;
  struct alignas(64) Wide {
    char pad[64];
  };
  Wide* wide = new Wide();
  EXPECT_EQ(reinterpret_cast<uintptr_t>(wide) % 64, 0u);
  delete wide;
  std::vector<std::string> strings;
  for (int i = 0; i < 64; ++i) strings.push_back(std::string(100, 'x'));
  strings.clear();
  if (AllocTrackingAvailable()) {
    EXPECT_GT(counter.Delta().count, 0u);
  }
}

TEST(AllocTrackerTest, ThreadCountsMonotonic) {
  AllocCounts a = ThreadAllocCounts();
  auto p = std::make_unique<char[]>(128);
  volatile char c = p[0];
  (void)c;
  AllocCounts b = ThreadAllocCounts();
  EXPECT_GE(b.bytes, a.bytes);
  EXPECT_GE(b.count, a.count);
  if (AllocTrackingAvailable()) {
    EXPECT_GT(b.count, a.count);
  }
}

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad query");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad query");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad query");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
        StatusCode::kInternal, StatusCode::kUnimplemented,
        StatusCode::kAborted}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  SECVIEW_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(4).value(), 8);
  EXPECT_FALSE(Doubled(-4).ok());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, " | "), "a | b | c");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(Split("a,,c", ',')[1], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("<!ELEMENT", "<!"));
  EXPECT_FALSE(StartsWith("<", "<!"));
  EXPECT_TRUE(EndsWith("a.dtd", ".dtd"));
  EXPECT_FALSE(EndsWith("dtd", "a.dtd"));
}

TEST(StringUtilTest, XmlEscape) {
  EXPECT_EQ(XmlEscape("a<b>&'\""), "a&lt;b&gt;&amp;&apos;&quot;");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

TEST(StringUtilTest, XmlNames) {
  EXPECT_TRUE(IsValidXmlName("r-e.warranty"));
  EXPECT_TRUE(IsValidXmlName("_x1"));
  EXPECT_FALSE(IsValidXmlName(""));
  EXPECT_FALSE(IsValidXmlName("1abc"));
  EXPECT_FALSE(IsValidXmlName("-abc"));
  EXPECT_FALSE(IsValidXmlName("a b"));
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, BelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, RangeInclusiveCoversEndpoints) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int v = rng.RangeInclusive(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(9);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(RngTest, AlphaString) {
  Rng rng(11);
  std::string s = rng.AlphaString(20);
  EXPECT_EQ(s.size(), 20u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

}  // namespace
}  // namespace secview
