#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/alloc_tracker.h"
#include "common/crash_reporter.h"
#include "common/failpoint.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace secview {
namespace {

TEST(AllocTrackerTest, ScopedCounterSeesHeapChurn) {
  if (!AllocTrackingAvailable()) GTEST_SKIP() << "tracker compiled out";
  uint64_t bytes = 0, count = 0;
  {
    ScopedAllocCounter counter(&bytes, &count);
    for (int i = 0; i < 16; ++i) {
      // Volatile sink so the allocation cannot be elided.
      auto p = std::make_unique<char[]>(1 << 12);
      volatile char c = p[0];
      (void)c;
    }
  }
  EXPECT_GE(count, 16u);
  EXPECT_GE(bytes, 16u << 12);
}

TEST(AllocTrackerTest, DeltaExcludesWorkOutsideScope) {
  if (!AllocTrackingAvailable()) GTEST_SKIP() << "tracker compiled out";
  auto before = std::make_unique<char[]>(1 << 20);
  uint64_t bytes = 0, count = 0;
  {
    ScopedAllocCounter counter(&bytes, &count);
    AllocCounts mid = counter.Delta();
    EXPECT_EQ(mid.bytes, bytes);  // Nothing allocated yet in scope.
  }
  volatile char c = before[0];
  (void)c;
  EXPECT_LT(bytes, 1u << 20);  // The pre-scope megabyte is not charged.
}

TEST(AllocTrackerTest, CountsAreThreadLocal) {
  if (!AllocTrackingAvailable()) GTEST_SKIP() << "tracker compiled out";
  uint64_t bytes = 0, count = 0;
  {
    ScopedAllocCounter counter(&bytes, &count);
    std::thread t([] {
      auto p = std::make_unique<char[]>(1 << 22);
      volatile char c = p[0];
      (void)c;
    });
    t.join();
  }
  // The 4MB allocated on the other thread is charged there, not here.
  // std::thread itself may allocate on this thread; allow that slack.
  EXPECT_LT(bytes, 1u << 22);
}

TEST(AllocTrackerTest, NewDeleteRoundTripUnderTracker) {
  // Exercises the full operator family (scalar, array, nothrow,
  // over-aligned) so ASan can vet the hooks' malloc/free pairing.
  uint64_t bytes = 0, count = 0;
  ScopedAllocCounter counter(&bytes, &count);
  int* scalar = new int(7);
  delete scalar;
  char* arr = new char[257];
  delete[] arr;
  int* soft = new (std::nothrow) int(9);
  EXPECT_NE(soft, nullptr);
  delete soft;
  struct alignas(64) Wide {
    char pad[64];
  };
  Wide* wide = new Wide();
  EXPECT_EQ(reinterpret_cast<uintptr_t>(wide) % 64, 0u);
  delete wide;
  std::vector<std::string> strings;
  for (int i = 0; i < 64; ++i) strings.push_back(std::string(100, 'x'));
  strings.clear();
  if (AllocTrackingAvailable()) {
    EXPECT_GT(counter.Delta().count, 0u);
  }
}

TEST(AllocTrackerTest, ThreadCountsMonotonic) {
  AllocCounts a = ThreadAllocCounts();
  auto p = std::make_unique<char[]>(128);
  volatile char c = p[0];
  (void)c;
  AllocCounts b = ThreadAllocCounts();
  EXPECT_GE(b.bytes, a.bytes);
  EXPECT_GE(b.count, a.count);
  if (AllocTrackingAvailable()) {
    EXPECT_GT(b.count, a.count);
  }
}

/// Makes an allocation observable: the optimizer may elide a new/delete
/// pair whose pointer never escapes, which would dodge the counters this
/// suite is checking.
void EscapePointer(void* p) { asm volatile("" : : "g"(p) : "memory"); }

TEST(AllocTrackerTest, LiveHeapBalancesAcrossTheFullDeleteFamily) {
  if (!LiveHeapTrackingAvailable()) GTEST_SKIP() << "no free-side sizing";
  const HeapStats before = ProcessHeapStats();

  // Every operator-delete overload the standard names: scalar, array,
  // sized (the compiler emits it for delete of a complete type),
  // nothrow, over-aligned, and sized + over-aligned. Each pair must
  // charge and refund the exact same number of bytes.
  int* scalar = new int(1);
  EscapePointer(scalar);
  delete scalar;  // sized delete
  char* arr = new char[333];
  EscapePointer(arr);
  delete[] arr;  // sized array delete
  int* soft = new (std::nothrow) int(2);
  ASSERT_NE(soft, nullptr);
  EscapePointer(soft);
  delete soft;
  struct alignas(128) Wide {
    char pad[256];
  };
  Wide* wide = new Wide();  // aligned new
  EscapePointer(wide);
  delete wide;              // sized aligned delete
  Wide* wides = new Wide[3];
  EscapePointer(wides);
  delete[] wides;
  auto* soft_wide = new (std::nothrow) Wide();
  ASSERT_NE(soft_wide, nullptr);
  EscapePointer(soft_wide);
  delete soft_wide;

  const HeapStats after = ProcessHeapStats();
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  EXPECT_EQ(after.live_objects, before.live_objects);
  EXPECT_GE(after.total_allocs, before.total_allocs + 6);
  EXPECT_GE(after.total_frees, before.total_frees + 6);
}

TEST(AllocTrackerTest, LiveHeapSeesRequestedBytesOrMore) {
  if (!LiveHeapTrackingAvailable()) GTEST_SKIP() << "no free-side sizing";
  const HeapStats before = ProcessHeapStats();
  char* block = new char[1 << 20];
  volatile char sink = block[0];
  (void)sink;
  const HeapStats during = ProcessHeapStats();
  // Size-class mode charges malloc_usable_size: at least the request,
  // and never wildly more for a megabyte block.
  EXPECT_GE(during.live_bytes, before.live_bytes + (1u << 20));
  EXPECT_LE(during.live_bytes, before.live_bytes + (1u << 20) + 65536);
  EXPECT_EQ(during.live_objects, before.live_objects + 1);
  EXPECT_GE(during.peak_bytes, during.live_bytes);
  delete[] block;
  const HeapStats after = ProcessHeapStats();
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  EXPECT_GE(after.peak_bytes, before.live_bytes + (1u << 20))
      << "peak is a monotone high-water mark";
}

TEST(AllocTrackerTest, CrossThreadFreeBalancesTheLedger) {
  if (!LiveHeapTrackingAvailable()) GTEST_SKIP() << "no free-side sizing";
  const HeapStats before = ProcessHeapStats();
  {
    // Allocate here, free on another thread: the live ledger is
    // process-wide so the refund lands no matter which thread frees.
    std::vector<char*> blocks;
    for (int i = 0; i < 32; ++i) blocks.push_back(new char[4096]);
    std::thread reaper([&blocks] {
      for (char* b : blocks) delete[] b;
    });
    reaper.join();
  }
  const HeapStats after = ProcessHeapStats();
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  EXPECT_EQ(after.live_objects, before.live_objects);
}

TEST(AllocTrackerTest, ResidentBytesReadsProcStatm) {
#if defined(__linux__)
  EXPECT_GT(ProcessResidentBytes(), 0u);
#else
  (void)ProcessResidentBytes();  // portable fallback: 0 is acceptable
#endif
}

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad query");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad query");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad query");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
        StatusCode::kInternal, StatusCode::kUnimplemented,
        StatusCode::kAborted}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  SECVIEW_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(4).value(), 8);
  EXPECT_FALSE(Doubled(-4).ok());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, " | "), "a | b | c");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(Split("a,,c", ',')[1], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("<!ELEMENT", "<!"));
  EXPECT_FALSE(StartsWith("<", "<!"));
  EXPECT_TRUE(EndsWith("a.dtd", ".dtd"));
  EXPECT_FALSE(EndsWith("dtd", "a.dtd"));
}

TEST(StringUtilTest, XmlEscape) {
  EXPECT_EQ(XmlEscape("a<b>&'\""), "a&lt;b&gt;&amp;&apos;&quot;");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

TEST(StringUtilTest, XmlNames) {
  EXPECT_TRUE(IsValidXmlName("r-e.warranty"));
  EXPECT_TRUE(IsValidXmlName("_x1"));
  EXPECT_FALSE(IsValidXmlName(""));
  EXPECT_FALSE(IsValidXmlName("1abc"));
  EXPECT_FALSE(IsValidXmlName("-abc"));
  EXPECT_FALSE(IsValidXmlName("a b"));
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, BelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, RangeInclusiveCoversEndpoints) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int v = rng.RangeInclusive(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(9);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(RngTest, AlphaString) {
  Rng rng(11);
  std::string s = rng.AlphaString(20);
  EXPECT_EQ(s.size(), 20u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

// --- failpoints ---

class FailPointTest : public testing::Test {
 protected:
  void SetUp() override { FailPointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailPointRegistry::Instance().DisarmAll(); }
  FailPointRegistry& registry() { return FailPointRegistry::Instance(); }
};

TEST_F(FailPointTest, OffByDefaultAndNeverFires) {
  FailPoint& fp = registry().Get("test.off");
  EXPECT_EQ(fp.policy(), "off");
  const uint64_t before = fp.fires();
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(fp.Fire());
  EXPECT_EQ(fp.fires(), before);
}

TEST_F(FailPointTest, OnceFiresExactlyOnceThenDisarms) {
  ASSERT_TRUE(registry().Arm("test.once", "once").ok());
  FailPoint& fp = registry().Get("test.once");
  const uint64_t before = fp.fires();
  EXPECT_TRUE(fp.Fire());
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(fp.Fire());
  EXPECT_EQ(fp.fires(), before + 1);
  EXPECT_EQ(fp.policy(), "off");
}

TEST_F(FailPointTest, EveryNFiresOnExactMultiples) {
  ASSERT_TRUE(registry().Arm("test.every", "every:3").ok());
  FailPoint& fp = registry().Get("test.every");
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(fp.Fire());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
}

TEST_F(FailPointTest, ProbabilityIsDeterministicPerSeed) {
  auto run = [this](const std::string& policy) {
    FailPointRegistry::Instance().DisarmAll();
    EXPECT_TRUE(registry().Arm("test.prob", policy).ok());
    FailPoint& fp = registry().Get("test.prob");
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(fp.Fire());
    return fired;
  };
  std::vector<bool> a = run("prob:0.5:1234");
  std::vector<bool> b = run("prob:0.5:1234");
  std::vector<bool> c = run("prob:0.5:4321");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  size_t fires = 0;
  for (bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 16u);  // loose sanity band around p=0.5
  EXPECT_LT(fires, 48u);
}

TEST_F(FailPointTest, SpecGrammarParsesAndRejects) {
  ASSERT_TRUE(registry()
                  .ArmFromSpec("a.b=once,c.d=every:2,e.f=prob:0.25:9,g.h=off")
                  .ok());
  EXPECT_EQ(registry().Get("a.b").policy(), "once");
  EXPECT_EQ(registry().Get("c.d").policy(), "every:2");
  EXPECT_EQ(registry().Get("e.f").policy(), "prob:0.25:9");
  EXPECT_EQ(registry().Get("g.h").policy(), "off");

  EXPECT_FALSE(registry().ArmFromSpec("missing-equals").ok());
  EXPECT_FALSE(registry().ArmFromSpec("a.b=bogus").ok());
  EXPECT_FALSE(registry().ArmFromSpec("a.b=every:0").ok());
  EXPECT_FALSE(registry().ArmFromSpec("a.b=every:x").ok());
  EXPECT_FALSE(registry().ArmFromSpec("a.b=prob:1.5").ok());
  EXPECT_FALSE(registry().ArmFromSpec("a.b=prob:x").ok());
  EXPECT_FALSE(registry().ArmFromSpec("=once").ok());
  // Empty entries (trailing commas) are tolerated.
  EXPECT_TRUE(registry().ArmFromSpec("a.b=once,").ok());
  EXPECT_TRUE(registry().ArmFromSpec("").ok());
}

TEST_F(FailPointTest, ListReportsArmedPoints) {
  ASSERT_TRUE(registry().ArmFromSpec("list.x=every:2").ok());
  registry().Get("list.x").Fire();
  registry().Get("list.x").Fire();
  bool found = false;
  for (const auto& info : registry().List()) {
    if (info.name != "list.x") continue;
    found = true;
    EXPECT_EQ(info.policy, "every:2");
    EXPECT_GE(info.fires, 1u);
  }
  EXPECT_TRUE(found);
}

TEST_F(FailPointTest, ConcurrentFiresAreCountedExactly) {
  ASSERT_TRUE(registry().Arm("test.race", "every:2").ok());
  FailPoint& fp = registry().Get("test.race");
  const uint64_t before = fp.fires();
  constexpr int kThreads = 8;
  constexpr int kCalls = 1000;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> observed{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      uint64_t mine = 0;
      for (int i = 0; i < kCalls; ++i) {
        if (fp.Fire()) ++mine;
      }
      observed.fetch_add(mine);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(fp.fires() - before, observed.load());
  EXPECT_EQ(observed.load(), kThreads * kCalls / 2);
}

// --- crash reporter ---

TEST(CrashReporterTest, InstallIsIdempotentAndTracksActiveQueries) {
  InstallCrashReporter();
  EXPECT_TRUE(CrashReporterInstalled());
  InstallCrashReporter();  // second install is a no-op
  EXPECT_TRUE(CrashReporterInstalled());

  const int64_t before = CrashReporterActiveQueries();
  {
    ScopedActiveQuery a;
    ScopedActiveQuery b;
    EXPECT_EQ(CrashReporterActiveQueries(), before + 2);
  }
  EXPECT_EQ(CrashReporterActiveQueries(), before);
}

TEST(CrashReporterTest, LastSlowQueryIsTruncatedAndSanitized) {
  const std::string line = "slow\nquery\rwith newlines";
  CrashReporterSetLastSlowQuery(line.c_str(), line.size());
  // No direct accessor (the buffer is crash-handler state); setting a
  // fresh value and oversized values must simply not crash or overflow.
  std::string big(4096, 'x');
  CrashReporterSetLastSlowQuery(big.c_str(), big.size());
  CrashReporterSetLastSlowQuery("", 0);
}

TEST(CrashReporterDeathTest, SegfaultReportPrintsBannerAndCounts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        InstallCrashReporter();
        ScopedActiveQuery active;
        const char slow[] = "[ok] 123us policy=nurse query=//bill";
        CrashReporterSetLastSlowQuery(slow, sizeof(slow) - 1);
        raise(SIGSEGV);
      },
      "secview crash reporter");
}

}  // namespace
}  // namespace secview
