#include "obs/audit.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "engine/engine.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "workload/hospital.h"
#include "xml/parser.h"

namespace secview {
namespace {

using obs::AuditEvent;
using obs::JsonlAuditLog;
using obs::ValidateAuditLine;

constexpr char kNursePolicy[] = R"(
  ann(hospital, dept) = [*/patient/wardNo = $wardNo]
  ann(dept, clinicalTrial) = N
  ann(clinicalTrial, patientInfo) = Y
  ann(treatment, trial) = N
  ann(treatment, regular) = N
  ann(trial, bill) = Y
  ann(regular, bill) = Y
  ann(regular, medication) = Y
)";

constexpr char kDoc[] = R"(
  <hospital><dept>
    <patientInfo>
      <patient><name>dave</name><wardNo>3</wardNo>
        <treatment><regular><bill>120</bill><medication>m</medication></regular></treatment>
      </patient>
    </patientInfo>
    <staffInfo><staff><nurse>sue</nurse></staff></staffInfo>
  </dept></hospital>
)";

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

AuditEvent MakeOkEvent(const std::string& query) {
  AuditEvent event;
  event.unix_micros = AuditEvent::NowUnixMicros();
  event.policy = "nurse";
  event.query = query;
  event.rewritten = "dept/dummy1/patientInfo";
  event.evaluated = "dept/dummy1/patientInfo";
  event.results = 2;
  return event;
}

TEST(AuditLogTest, RecordsValidSchemaLines) {
  std::string path = TempPath("audit_basic.jsonl");
  std::filesystem::remove(path);
  auto log = JsonlAuditLog::Open(path);
  ASSERT_TRUE(log.ok()) << log.status();
  (*log)->Record(MakeOkEvent("//patient"));
  (*log)->Record(MakeOkEvent("//bill"));
  EXPECT_EQ((*log)->events(), 2u);
  EXPECT_EQ((*log)->rotations(), 0u);

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(ValidateAuditLine(line).ok())
        << ValidateAuditLine(line).ToString() << "\n" << line;
  }
  // The sink stamps a monotone sequence.
  auto first = obs::Json::Parse(lines[0]);
  auto second = obs::Json::Parse(lines[1]);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->Find("seq")->AsNumber(), 1);
  EXPECT_EQ(second->Find("seq")->AsNumber(), 2);
}

TEST(AuditLogTest, AppendsAcrossReopen) {
  std::string path = TempPath("audit_reopen.jsonl");
  std::filesystem::remove(path);
  {
    auto log = JsonlAuditLog::Open(path);
    ASSERT_TRUE(log.ok());
    (*log)->Record(MakeOkEvent("//patient"));
    (*log)->Record(MakeOkEvent("//bill"));
  }
  {
    auto log = JsonlAuditLog::Open(path);
    ASSERT_TRUE(log.ok());
    (*log)->Record(MakeOkEvent("//name"));
  }
  EXPECT_EQ(ReadLines(path).size(), 3u);
}

TEST(AuditLogTest, RotationKeepsEveryLineValid) {
  std::string path = TempPath("audit_rotate.jsonl");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  std::filesystem::remove(path + ".2");

  JsonlAuditLog::Options options;
  options.max_bytes = 600;  // a handful of events per file
  auto log = JsonlAuditLog::Open(path, options);
  ASSERT_TRUE(log.ok()) << log.status();
  for (int i = 0; i < 12; ++i) {
    (*log)->Record(MakeOkEvent("//patient[" + std::to_string(i) + "]"));
  }
  ASSERT_GT((*log)->rotations(), 0u);

  size_t total = 0;
  std::vector<std::string> files = {path};
  for (uint64_t r = 1; r <= (*log)->rotations(); ++r) {
    files.push_back(path + "." + std::to_string(r));
  }
  for (const std::string& file : files) {
    ASSERT_TRUE(std::filesystem::exists(file)) << file;
    std::vector<std::string> lines = ReadLines(file);
    EXPECT_FALSE(lines.empty()) << file;
    for (const std::string& line : lines) {
      EXPECT_TRUE(ValidateAuditLine(line).ok())
          << file << ": " << ValidateAuditLine(line).ToString();
    }
    // No file grows far past the rotation threshold (one event of slack).
    EXPECT_LE(std::filesystem::file_size(file), 2 * options.max_bytes) << file;
    total += lines.size();
  }
  EXPECT_EQ(total, 12u);
}

TEST(AuditLogTest, ConcurrentWritersNeverTearLines) {
  std::string path = TempPath("audit_threads.jsonl");
  std::filesystem::remove(path);
  auto log = JsonlAuditLog::Open(path);
  ASSERT_TRUE(log.ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        (*log)->Record(
            MakeOkEvent("//t" + std::to_string(t) + "_" + std::to_string(i)));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ((*log)->events(), uint64_t{kThreads * kPerThread});

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), size_t{kThreads * kPerThread});
  std::vector<bool> seen(kThreads * kPerThread + 1, false);
  for (const std::string& line : lines) {
    ASSERT_TRUE(ValidateAuditLine(line).ok())
        << ValidateAuditLine(line).ToString() << "\n" << line;
    auto parsed = obs::Json::Parse(line);
    ASSERT_TRUE(parsed.ok());
    int seq = static_cast<int>(parsed->Find("seq")->AsNumber());
    ASSERT_GE(seq, 1);
    ASSERT_LE(seq, kThreads * kPerThread);
    EXPECT_FALSE(seen[seq]) << "duplicate seq " << seq;
    seen[seq] = true;
  }
}

TEST(AuditLogTest, OpenRejectsBadArguments) {
  EXPECT_FALSE(JsonlAuditLog::Open("").ok());
  JsonlAuditLog::Options zero;
  zero.max_bytes = 0;
  EXPECT_FALSE(JsonlAuditLog::Open(TempPath("x.jsonl"), zero).ok());
}

TEST(AuditValidateTest, RejectsMalformedRecords) {
  // Build a known-good line, then derive broken variants from it.
  AuditEvent event = MakeOkEvent("//bill");
  event.seq = 1;
  std::string good = event.ToJson().Dump(/*pretty=*/false);
  ASSERT_TRUE(ValidateAuditLine(good).ok());

  EXPECT_FALSE(ValidateAuditLine("not json").ok());
  EXPECT_FALSE(ValidateAuditLine("[1,2]").ok());
  EXPECT_FALSE(ValidateAuditLine("{}").ok());

  auto mutate = [&event](auto&& change) {
    AuditEvent copy = event;
    change(copy);
    return copy.ToJson().Dump(/*pretty=*/false);
  };
  // outcome/status invariants
  EXPECT_FALSE(
      ValidateAuditLine(mutate([](AuditEvent& e) { e.outcome = "maybe"; }))
          .ok());
  EXPECT_FALSE(
      ValidateAuditLine(mutate([](AuditEvent& e) { e.status = "NOT_FOUND"; }))
          .ok());  // ok outcome with non-OK status
  EXPECT_FALSE(
      ValidateAuditLine(mutate([](AuditEvent& e) { e.error = "boom"; })).ok());
  EXPECT_FALSE(ValidateAuditLine(mutate([](AuditEvent& e) {
                 e.outcome = "error";  // error outcome needs non-OK status
               })).ok());
  EXPECT_FALSE(
      ValidateAuditLine(mutate([](AuditEvent& e) { e.seq = 0; })).ok());
  // An error event done right passes.
  EXPECT_TRUE(ValidateAuditLine(mutate([](AuditEvent& e) {
                e.outcome = "error";
                e.status = "FAILED_PRECONDITION";
                e.error = "unbound parameter $wardNo";
              })).ok());
  // wrong schema tag
  std::string wrong = good;
  size_t at = wrong.find("secview.audit.v1");
  ASSERT_NE(at, std::string::npos);
  wrong.replace(at, 16, "secview.audit.v9");
  EXPECT_FALSE(ValidateAuditLine(wrong).ok());
}

TEST(AuditEngineTest, ExecuteRecordsOkAndErrorOutcomes) {
  std::string path = TempPath("audit_engine.jsonl");
  std::filesystem::remove(path);
  auto log = JsonlAuditLog::Open(path);
  ASSERT_TRUE(log.ok());

  auto engine = SecureQueryEngine::Create(MakeHospitalDtd());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->RegisterPolicy("nurse", kNursePolicy).ok());
  auto doc = ParseXml(kDoc);
  ASSERT_TRUE(doc.ok());

  ExecuteOptions options;
  options.audit = log->get();
  options.bindings = {{"wardNo", "3"}};
  ASSERT_TRUE((*engine)->Execute("nurse", *doc, "//patient/name", options).ok());

  // A denied execution (missing binding) must also land in the trail.
  ExecuteOptions unbound;
  unbound.audit = log->get();
  auto denied = (*engine)->Execute("nurse", *doc, "//patient/name", unbound);
  ASSERT_FALSE(denied.ok());

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(ValidateAuditLine(line).ok())
        << ValidateAuditLine(line).ToString() << "\n" << line;
  }
  auto ok_record = obs::Json::Parse(lines[0]);
  ASSERT_TRUE(ok_record.ok());
  EXPECT_EQ(ok_record->Find("outcome")->AsString(), "ok");
  EXPECT_EQ(ok_record->Find("policy")->AsString(), "nurse");
  EXPECT_EQ(ok_record->Find("query")->AsString(), "//patient/name");
  EXPECT_EQ(ok_record->Find("results")->AsNumber(), 1);
  EXPECT_FALSE(ok_record->Find("rewritten")->AsString().empty());
  EXPECT_GT(ok_record->Find("dp")->Find("rewrite_entries")->AsNumber(), 0);

  auto err_record = obs::Json::Parse(lines[1]);
  ASSERT_TRUE(err_record.ok());
  EXPECT_EQ(err_record->Find("outcome")->AsString(), "denied");
  EXPECT_NE(err_record->Find("status")->AsString(), "OK");
  EXPECT_FALSE(err_record->Find("error")->AsString().empty());
  // The engine's audit counter saw both executions.
  EXPECT_EQ((*engine)->metrics().GetCounter("audit.events").value(), 2u);
}

// --- Degradation under injected write failures ------------------------

class AuditFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailPointRegistry::Instance().DisarmAll(); }

  // Microsecond backoffs keep the retry loop instant in tests.
  static JsonlAuditLog::Options FastRetries() {
    JsonlAuditLog::Options options;
    options.retry_backoff_micros = 1;
    options.retry_backoff_cap_micros = 2;
    return options;
  }
};

TEST_F(AuditFaultTest, TransientWriteFailureIsRetriedNotDropped) {
  std::string path = TempPath("audit_retry.jsonl");
  std::filesystem::remove(path);
  auto log = JsonlAuditLog::Open(path, FastRetries());
  ASSERT_TRUE(log.ok()) << log.status();

  // One injected failure: the first attempt fails, the retry lands the
  // record. Nothing is dropped and the line on disk validates.
  ASSERT_TRUE(
      FailPointRegistry::Instance().ArmFromSpec("audit.write=once").ok());
  (*log)->Record(MakeOkEvent("//patient/name"));
  EXPECT_EQ((*log)->events(), 1u);
  EXPECT_EQ((*log)->dropped(), 0u);

  auto lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(ValidateAuditLine(lines[0]).ok());
}

TEST_F(AuditFaultTest, ExhaustedRetriesDropAndCount) {
  std::string path = TempPath("audit_drop.jsonl");
  std::filesystem::remove(path);
  auto log = JsonlAuditLog::Open(path, FastRetries());
  ASSERT_TRUE(log.ok()) << log.status();

  obs::Counter drop_counter;
  obs::HealthTracker health;
  (*log)->AttachDropCounter(&drop_counter);
  (*log)->AttachHealth(&health);

  (*log)->Record(MakeOkEvent("//patient/name"));  // seq 1, written

  // Fail every attempt: initial write plus all retries. The record is
  // dropped, counted, and fed to the health tracker.
  ASSERT_TRUE(
      FailPointRegistry::Instance().ArmFromSpec("audit.write=every:1").ok());
  (*log)->Record(MakeOkEvent("//patient//bill"));  // seq 2, dropped
  FailPointRegistry::Instance().DisarmAll();

  (*log)->Record(MakeOkEvent("//bill"));  // seq 3, written

  EXPECT_EQ((*log)->events(), 2u);
  EXPECT_EQ((*log)->dropped(), 1u);
  EXPECT_EQ(drop_counter.value(), 1u);
  EXPECT_EQ(health.Snapshot().drops, 1u);

  // The dropped event consumed its sequence number before the write, so
  // the gap is detectable on disk: seq jumps 1 -> 3.
  auto lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  auto first = obs::Json::Parse(lines[0]);
  auto last = obs::Json::Parse(lines[1]);
  ASSERT_TRUE(first.ok() && last.ok());
  EXPECT_EQ(first->Find("seq")->AsNumber(), 1);
  EXPECT_EQ(last->Find("seq")->AsNumber(), 3);
}

TEST_F(AuditFaultTest, DropsNeverTearSurvivingLines) {
  std::string path = TempPath("audit_fault_concurrent.jsonl");
  std::filesystem::remove(path);
  auto log = JsonlAuditLog::Open(path, FastRetries());
  ASSERT_TRUE(log.ok()) << log.status();

  // Concurrent writers racing a probabilistic write fault: every line
  // that survives must still be a complete, schema-valid record.
  ASSERT_TRUE(FailPointRegistry::Instance()
                  .ArmFromSpec("audit.write=prob:0.5:7")
                  .ok());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        (*log)->Record(
            MakeOkEvent("//patient/q" + std::to_string(t * 100 + i)));
      }
    });
  }
  for (auto& w : writers) w.join();
  FailPointRegistry::Instance().DisarmAll();

  EXPECT_EQ((*log)->events() + (*log)->dropped(),
            static_cast<uint64_t>(kThreads * kPerThread));
  auto lines = ReadLines(path);
  EXPECT_EQ(lines.size(), (*log)->events());
  for (const auto& line : lines) {
    EXPECT_TRUE(ValidateAuditLine(line).ok()) << line;
  }
}

}  // namespace
}  // namespace secview
