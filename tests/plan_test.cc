// Differential correctness harness for the compiled-plan executor
// (xpath/plan.h + xpath/vm.cc): every test here runs the same query
// through the AST-walking evaluator and the compiled-plan VM and
// asserts the two paths are indistinguishable — identical NodeSets,
// identical statuses (code and message), and identical EvalCounters
// including budget_checks. The fuzz companion is fuzz/fuzz_plan_diff.cc.

#include "xpath/plan.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "obs/metrics.h"
#include "xml/label_index.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/profiler.h"

namespace secview {
namespace {

using Bindings = std::vector<std::pair<std::string, std::string>>;

/// A hospital instance with attributes, overlapping subtrees, and two
/// departments, so unions, predicates, and descendant steps all have
/// something to disagree about if either interpreter is wrong.
constexpr char kHostileDoc[] = R"(
  <hospital>
    <dept id="1">
      <clinicalTrial>
        <patientInfo>
          <patient vip="y"><name>carol</name><wardNo>3</wardNo>
            <treatment><trial><bill>900</bill></trial></treatment>
          </patient>
        </patientInfo>
        <test>blood</test>
      </clinicalTrial>
      <patientInfo>
        <patient><name>dave</name><wardNo>4</wardNo>
          <treatment><regular><bill>120</bill><medication>m</medication></regular></treatment>
        </patient>
      </patientInfo>
      <staffInfo><staff><nurse>sue</nurse></staff></staffInfo>
    </dept>
    <dept id="2">
      <patientInfo>
        <patient><name>erin</name><wardNo>3</wardNo>
          <treatment><regular><bill>55</bill></regular></treatment>
        </patient>
      </patientInfo>
    </dept>
  </hospital>
)";

/// The 27-case hostile corpus: one query per way the two interpreters
/// could diverge — repeated descendant closures, overlapping unions,
/// nested and boolean qualifiers, attribute tests, $parameters, absent
/// labels, and identity steps.
const std::vector<std::string>& HostileCorpus() {
  static const std::vector<std::string>* corpus =
      new std::vector<std::string>{
          "//patient//bill",
          "//dept//patientInfo//patient//treatment//bill",
          "//*",
          "//*//*",
          "*/*/*/*",
          "//nosuchlabel",
          "//patient[nosuch]",
          "//patient[wardNo = \"3\"]",
          "//patient[wardNo = \"nope\"]",
          "//patient[wardNo = $w]",
          "//dept[*/patient/wardNo = $w]//bill",
          "//patient[not(wardNo = \"3\")]/name",
          "//patient[wardNo = \"3\" and treatment//bill]",
          "//patient[wardNo = \"9\" or treatment/regular]/name",
          "//patient[not(not(name))]",
          "//bill | //bill",
          "//bill | //medication | //name",
          "dept/patientInfo/patient | //patient",
          "//patient[@vip]",
          "//patient[@vip = \"y\"]/name",
          "//dept[@id = \"2\"]//bill",
          "//patient[@vip = \"n\"]",
          ".",
          "dept/(clinicalTrial/patientInfo | patientInfo)/patient/name",
          "hospital",
          "//treatment[trial//bill | regular//bill]",
          "//dept[clinicalTrial]/patientInfo/"
          "patient[treatment[regular[bill = \"120\"]]]/name",
      };
  return *corpus;
}

/// The 17-query corpus of tests/profiler_test.cc (kept in sync by hand;
/// one query per evaluator dispatch arm).
const std::vector<std::string>& ProfilerCorpus() {
  static const std::vector<std::string>* corpus =
      new std::vector<std::string>{
          "dept",
          "dept/patientInfo/patient",
          "dept/patientInfo/patient/name",
          "//patient",
          "//patient/name",
          "//bill",
          "dept//bill",
          "*/*",
          "//patient[wardNo = \"3\"]",
          "//patient[wardNo = \"3\"]/name",
          "//patient[treatment/regular]",
          "//patient[wardNo = \"3\" and treatment/regular]/name",
          "//patient[wardNo = \"9\" or name]",
          "//bill | //medication",
          "dept/patientInfo/patient | //nurse",
          ".",
          "dept/.",
      };
  return *corpus;
}

XmlTree MustParseDoc(const char* text) {
  auto doc = ParseXml(text);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return std::move(doc).value();
}

PathPtr MustParsePath(const std::string& text) {
  auto p = ParseXPath(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status();
  return std::move(p).value();
}

/// A linear chain of `depth` nested <a> elements (the budget-tripping
/// pathological shape: one //a closure touches the whole document).
XmlTree MakeDeepChain(int depth) {
  XmlTree tree;
  NodeId cur = tree.CreateRoot("a");
  for (int i = 1; i < depth; ++i) cur = tree.AppendElement(cur, "a");
  return tree;
}

/// Everything one evaluation produced, for exact comparison.
struct DiffRun {
  Status status = Status::OK();
  NodeSet nodes;
  EvalCounters counters;
};

void ExpectSameRun(const DiffRun& ast, const DiffRun& compiled,
                   const std::string& context) {
  EXPECT_EQ(ast.status.code(), compiled.status.code()) << context;
  EXPECT_EQ(ast.status.message(), compiled.status.message()) << context;
  EXPECT_EQ(ast.nodes, compiled.nodes) << context;
  EXPECT_EQ(ast.counters.nodes_touched, compiled.counters.nodes_touched)
      << context;
  EXPECT_EQ(ast.counters.predicate_evals, compiled.counters.predicate_evals)
      << context;
  EXPECT_EQ(ast.counters.index_scans, compiled.counters.index_scans)
      << context;
  EXPECT_EQ(ast.counters.sort_skips, compiled.counters.sort_skips) << context;
  EXPECT_EQ(ast.counters.budget_checks, compiled.counters.budget_checks)
      << context;
}

DiffRun RunAst(const XmlTree& doc, const LabelIndex* index, const PathPtr& p,
               const Bindings& bindings, const BudgetLimits& limits = {},
               CancelToken cancel = CancelToken()) {
  XPathEvaluator evaluator =
      index != nullptr ? XPathEvaluator(doc, index) : XPathEvaluator(doc);
  QueryBudget budget(limits, cancel);
  if (budget.active()) evaluator.set_budget(&budget);
  PathPtr bound = bindings.empty() ? p : BindParams(p, bindings);
  auto result = evaluator.Evaluate(bound, doc.root());
  DiffRun run;
  run.status = result.status();
  if (result.ok()) run.nodes = std::move(result).value();
  run.counters = evaluator.counters();
  return run;
}

DiffRun RunCompiled(const XmlTree& doc, const LabelIndex* index,
                    const CompiledPlan& plan, const Bindings& bindings,
                    const BudgetLimits& limits = {},
                    CancelToken cancel = CancelToken()) {
  XPathEvaluator evaluator =
      index != nullptr ? XPathEvaluator(doc, index) : XPathEvaluator(doc);
  QueryBudget budget(limits, cancel);
  if (budget.active()) evaluator.set_budget(&budget);
  auto result = evaluator.EvaluateCompiled(plan, doc.root(), bindings);
  DiffRun run;
  run.status = result.status();
  if (result.ok()) run.nodes = std::move(result).value();
  run.counters = evaluator.counters();
  return run;
}

void DiffCorpus(const XmlTree& doc, const std::vector<std::string>& corpus,
                const Bindings& bindings) {
  for (const std::string& text : corpus) {
    PathPtr p = MustParsePath(text);
    auto plan = CompilePlan(p);
    ASSERT_NE(plan, nullptr) << text;
    ExpectSameRun(RunAst(doc, nullptr, p, bindings),
                  RunCompiled(doc, nullptr, *plan, bindings), text);
  }
}

TEST(PlanDifferentialTest, HostileCorpusMatchesAstWalk) {
  ASSERT_EQ(HostileCorpus().size(), 27u);
  XmlTree doc = MustParseDoc(kHostileDoc);
  DiffCorpus(doc, HostileCorpus(), {{"w", "3"}});
}

TEST(PlanDifferentialTest, ProfilerCorpusMatchesAstWalk) {
  ASSERT_EQ(ProfilerCorpus().size(), 17u);
  XmlTree doc = MustParseDoc(kHostileDoc);
  DiffCorpus(doc, ProfilerCorpus(), {});
}

TEST(PlanDifferentialTest, NodeBudgetsTripIdentically) {
  // A 5000-deep chain: //a touches every node, nested //a qualifiers
  // re-touch subtrees, so every budget below exhausts mid-evaluation at
  // a different op. Both paths must trip at the same checkpoint with
  // the same status and the same counter totals.
  XmlTree doc = MakeDeepChain(5000);
  PathPtr p = MustParsePath("//a[a//a[a//a]]");
  auto plan = CompilePlan(p);
  ASSERT_NE(plan, nullptr);
  for (uint64_t max_nodes : {1ull, 1000ull, 2048ull, 5000ull, 20000ull,
                             100000ull, 100000000ull}) {
    BudgetLimits limits;
    limits.max_nodes = max_nodes;
    ExpectSameRun(RunAst(doc, nullptr, p, {}, limits),
                  RunCompiled(doc, nullptr, *plan, {}, limits),
                  "max_nodes=" + std::to_string(max_nodes));
  }
}

TEST(PlanDifferentialTest, CancelledExecutionsMatch) {
  XmlTree doc = MakeDeepChain(5000);
  PathPtr p = MustParsePath("//a//a");
  auto plan = CompilePlan(p);
  ASSERT_NE(plan, nullptr);
  CancelSource source;
  CancelToken token(source);
  source.CancelAll();  // cancelled before evaluation starts
  DiffRun ast = RunAst(doc, nullptr, p, {}, {}, token);
  DiffRun compiled = RunCompiled(doc, nullptr, *plan, {}, {}, token);
  ExpectSameRun(ast, compiled, "pre-cancelled token");
  EXPECT_EQ(ast.status.code(), StatusCode::kCancelled);
}

TEST(PlanDifferentialTest, IndexedPlansMatchIndexedAstWalk) {
  XmlTree doc = MustParseDoc(kHostileDoc);
  LabelIndex index(doc);
  PlanCompileOptions options;
  options.use_index = true;
  for (const std::string& text :
       {std::string("//bill"), std::string("//patient[wardNo = \"3\"]"),
        std::string("dept//bill | //medication"),
        std::string("//patient[wardNo = $w]/name")}) {
    PathPtr p = MustParsePath(text);
    auto plan = CompilePlan(p, options);
    ASSERT_NE(plan, nullptr) << text;
    EXPECT_TRUE(plan->uses_index) << text;
    ExpectSameRun(RunAst(doc, &index, p, {{"w", "3"}}),
                  RunCompiled(doc, &index, *plan, {{"w", "3"}}), text);
  }
}

TEST(PlanDifferentialTest, IndexedPlanRequiresIndex) {
  XmlTree doc = MustParseDoc(kHostileDoc);
  PlanCompileOptions options;
  options.use_index = true;
  auto plan = CompilePlan(MustParsePath("//bill"), options);
  ASSERT_NE(plan, nullptr);
  ASSERT_TRUE(plan->uses_index);
  XPathEvaluator evaluator(doc);
  auto result = evaluator.EvaluateCompiled(*plan, doc.root());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PlanDifferentialTest, UnboundParameterStatusesMatch) {
  XmlTree doc = MustParseDoc(kHostileDoc);
  PathPtr p = MustParsePath("//patient[wardNo = $w]");
  auto plan = CompilePlan(p);
  ASSERT_NE(plan, nullptr);
  // No bindings at all, and bindings that miss the parameter.
  for (const Bindings& bindings :
       {Bindings{}, Bindings{{"other", "1"}, {"x", "2"}}}) {
    DiffRun ast = RunAst(doc, nullptr, p, bindings);
    DiffRun compiled = RunCompiled(doc, nullptr, *plan, bindings);
    ExpectSameRun(ast, compiled, "unbound $w");
    EXPECT_EQ(ast.status.code(), StatusCode::kFailedPrecondition);
  }
  // First-match-wins binding resolution, same as BindParams.
  ExpectSameRun(
      RunAst(doc, nullptr, p, {{"w", "3"}, {"w", "999"}}),
      RunCompiled(doc, nullptr, *plan, {{"w", "3"}, {"w", "999"}}),
      "duplicate bindings");
}

TEST(PlanDifferentialTest, CompiledProfilesKeepSumInvariant) {
  // The PR 7 acceptance invariant, now on the compiled path: tree-wide
  // per-step self sums must equal the aggregate counters exactly.
  XmlTree doc = MustParseDoc(kHostileDoc);
  for (const std::string& text : HostileCorpus()) {
    PathPtr p = MustParsePath(text);
    auto plan = CompilePlan(p);
    ASSERT_NE(plan, nullptr) << text;
    XPathEvaluator evaluator(doc);
    PlanProfiler profiler;
    evaluator.set_profiler(&profiler);
    auto result = evaluator.EvaluateCompiled(*plan, doc.root(), {{"w", "3"}});
    ASSERT_TRUE(result.ok()) << text;
    EvalCounters totals = ProfileTotals(profiler.root());
    const EvalCounters& agg = evaluator.counters();
    EXPECT_EQ(totals.nodes_touched, agg.nodes_touched) << text;
    EXPECT_EQ(totals.predicate_evals, agg.predicate_evals) << text;
    EXPECT_EQ(totals.index_scans, agg.index_scans) << text;
    EXPECT_EQ(totals.sort_skips, agg.sort_skips) << text;
  }
}

TEST(PlanCompilerTest, NullQueryCompilesToNull) {
  EXPECT_EQ(CompilePlan(nullptr), nullptr);
}

TEST(PlanCompilerTest, LoweringDeduplicatesLabelsAndSizesItself) {
  PathPtr p = MustParsePath("//patient[wardNo = \"3\"]/name | //patient");
  auto plan = CompilePlan(p);
  ASSERT_NE(plan, nullptr);
  EXPECT_GE(plan->ops.size(), 5u);
  EXPECT_EQ(plan->root, static_cast<int32_t>(plan->ops.size()) - 1);
  EXPECT_FALSE(plan->uses_index);
  EXPECT_EQ(plan->source.get(), p.get());
  EXPECT_GT(plan->byte_size(), sizeof(CompiledPlan));
  // "patient" occurs twice in the query but once in the label table.
  int patients = 0;
  for (const std::string& label : plan->labels) {
    if (label == "patient") ++patients;
  }
  EXPECT_EQ(patients, 1);
}

TEST(PlanCompilerTest, EmptyPlanIsRejectedByTheVm) {
  XmlTree doc = MustParseDoc(kHostileDoc);
  CompiledPlan empty;
  XPathEvaluator evaluator(doc);
  auto result = evaluator.EvaluateCompiled(empty, doc.root());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(EvalScratchTest, SteadyStateReusesPooledBuffers) {
  XmlTree doc = MustParseDoc(kHostileDoc);
  PathPtr p = MustParsePath(
      "//patient[wardNo = \"3\" and treatment//bill]/name | //medication");
  auto plan = CompilePlan(p);
  ASSERT_NE(plan, nullptr);
  EvalScratch scratch;
  NodeSet first;
  {
    XPathEvaluator evaluator(doc);
    auto r = evaluator.EvaluateCompiled(*plan, doc.root(), {}, &scratch);
    ASSERT_TRUE(r.ok()) << r.status();
    first = std::move(r).value();
  }
  // The pool's high-water mark is set by the first run; later runs of
  // the same plan must borrow, not allocate, new buffers.
  const size_t high_water = scratch.pooled_sets();
  EXPECT_GT(high_water, 0u);
  for (int i = 0; i < 16; ++i) {
    XPathEvaluator evaluator(doc);
    auto r = evaluator.EvaluateCompiled(*plan, doc.root(), {}, &scratch);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(*r, first);
  }
  EXPECT_EQ(scratch.pooled_sets(), high_water);
}

TEST(EvalScratchTest, CompiledQueriesCounterIsCharged) {
  XmlTree doc = MustParseDoc(kHostileDoc);
  auto plan = CompilePlan(MustParsePath("//bill"));
  ASSERT_NE(plan, nullptr);
  obs::MetricsRegistry metrics;
  XPathEvaluator evaluator(doc);
  evaluator.set_metrics(&metrics);
  ASSERT_TRUE(evaluator.EvaluateCompiled(*plan, doc.root()).ok());
  ASSERT_TRUE(evaluator.EvaluateCompiled(*plan, doc.root()).ok());
  EXPECT_EQ(metrics.GetCounter("eval.compiled_queries").value(), 2u);
  EXPECT_GT(metrics.GetCounter("eval.nodes_touched").value(), 0u);
}

}  // namespace
}  // namespace secview
