#include <algorithm>

#include <gtest/gtest.h>

#include "dtd/graph.h"
#include "dtd/validator.h"
#include "engine/engine.h"
#include "rewrite/rewriter.h"
#include "security/derive.h"
#include "security/materializer.h"
#include "workload/auction.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace secview {
namespace {

/// End-to-end coverage on a *recursive* document DTD — the regime where
/// the optimizer is unavailable and every '//' rewriting goes through
/// Section 4.2 unfolding.

TEST(AuctionFixtureTest, DtdIsRecursive) {
  Dtd dtd = MakeAuctionDtd();
  DtdGraph graph(dtd);
  EXPECT_TRUE(graph.IsRecursive());
  EXPECT_TRUE(graph.IsRecursiveType(dtd.FindType("description")));
  EXPECT_TRUE(graph.IsRecursiveType(dtd.FindType("parlist")));
  EXPECT_FALSE(graph.IsRecursiveType(dtd.FindType("person")));
}

TEST(AuctionFixtureTest, GeneratorProducesValidRecursiveDocs) {
  Dtd dtd = MakeAuctionDtd();
  auto doc = GenerateDocument(dtd, AuctionGeneratorOptions(5, 60'000));
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_TRUE(ValidateInstance(*doc, dtd).ok());
  // Recursion actually occurs: some parlist nests another description.
  auto q = ParseXPath("//listitem/description");
  ASSERT_TRUE(q.ok());
  auto nested = EvaluateAtRoot(*doc, *q);
  ASSERT_TRUE(nested.ok());
  EXPECT_FALSE(nested->empty());
}

TEST(AuctionFixtureTest, BidderViewShape) {
  Dtd dtd = MakeAuctionDtd();
  auto spec = MakeBidderSpec(dtd);
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok()) << view.status();
  // The view inherits the document recursion (description is visible).
  EXPECT_TRUE(view->IsRecursive());
  EXPECT_EQ(view->FindType("credit-card"), kNullViewType);
  EXPECT_EQ(view->FindType("reserve"), kNullViewType);
  EXPECT_EQ(view->FindType("closed_auctions"), kNullViewType);
  EXPECT_EQ(view->FindType("closed_auction"), kNullViewType);
  EXPECT_NE(view->FindType("description"), kNullViewType);
}

class AuctionEngineTest : public testing::Test {
 protected:
  void SetUp() override {
    Dtd dtd = MakeAuctionDtd();
    auto engine = SecureQueryEngine::Create(std::move(dtd));
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine).value();
    // Recursive document DTD: no optimizer, unfolding everywhere.
    EXPECT_FALSE(engine_->CanOptimize());

    auto bidder = MakeBidderSpec(engine_->dtd());
    ASSERT_TRUE(bidder.ok());
    ASSERT_TRUE(
        engine_->RegisterPolicy("bidder", std::move(bidder).value()).ok());
    auto auditor = MakeAuditorSpec(engine_->dtd());
    ASSERT_TRUE(auditor.ok());
    ASSERT_TRUE(
        engine_->RegisterPolicy("auditor", std::move(auditor).value()).ok());

    auto doc = GenerateDocument(engine_->dtd(),
                                AuctionGeneratorOptions(11, 80'000));
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = std::move(doc).value();
  }

  NodeSet Run(const std::string& policy, const std::string& query) {
    auto result = engine_->Execute(policy, doc_, query);
    EXPECT_TRUE(result.ok()) << policy << " / " << query << ": "
                             << result.status();
    return result.ok() ? result->nodes : NodeSet{};
  }

  std::unique_ptr<SecureQueryEngine> engine_;
  XmlTree doc_;
};

TEST_F(AuctionEngineTest, PoliciesEnforceTheirBoundaries) {
  // Bidders: no credit cards, no reserves, no closed auctions.
  EXPECT_TRUE(Run("bidder", "//credit-card").empty());
  EXPECT_TRUE(Run("bidder", "//reserve").empty());
  EXPECT_TRUE(Run("bidder", "//closed_auction").empty());
  EXPECT_TRUE(Run("bidder", "//buyer").empty());
  EXPECT_FALSE(Run("bidder", "//open_auction").empty());
  EXPECT_FALSE(Run("bidder", "//bid/bidder").empty());

  // Auditors: anonymous bids, but full money trail.
  EXPECT_TRUE(Run("auditor", "//bidder").empty());
  EXPECT_TRUE(Run("auditor", "//credit-card").empty());
  EXPECT_TRUE(Run("auditor", "//profile").empty());
  EXPECT_FALSE(Run("auditor", "//closed_auction/price").empty());
  EXPECT_FALSE(Run("auditor", "//bid/amount").empty());
}

TEST_F(AuctionEngineTest, RecursiveDescendantQueriesAgreeWithView) {
  auto view = engine_->View("bidder");
  ASSERT_TRUE(view.ok());
  auto spec = MakeBidderSpec(engine_->dtd());
  ASSERT_TRUE(spec.ok());
  auto tv = MaterializeView(doc_, **view, *spec);
  ASSERT_TRUE(tv.ok()) << tv.status();

  for (const char* query :
       {"//description", "//listitem//text", "//open_auction//text",
        "//parlist/listitem/description", "//item-desc//listitem",
        "//description[parlist]"}) {
    SCOPED_TRACE(query);
    NodeSet via_engine = Run("bidder", query);
    auto q = ParseXPath(query);
    ASSERT_TRUE(q.ok());
    auto on_view = EvaluateAtRoot(*tv, *q);
    ASSERT_TRUE(on_view.ok());
    std::vector<NodeId> expected;
    for (NodeId n : *on_view) expected.push_back(tv->origin(n));
    std::sort(expected.begin(), expected.end());
    expected.erase(std::unique(expected.begin(), expected.end()),
                   expected.end());
    EXPECT_EQ(via_engine, expected);
  }
}

TEST_F(AuctionEngineTest, ClosedItemDescriptionsInvisibleToBidders) {
  // Descriptions below closed auctions are pruned with the whole
  // closed_auctions subtree; the same //description query returns only
  // open-auction descriptions for bidders.
  NodeSet bidder = Run("bidder", "//description");
  NodeSet auditor = Run("auditor", "//description");
  EXPECT_LT(bidder.size(), auditor.size());
  // None of the bidder's descriptions sits under a closed auction.
  for (NodeId n : bidder) {
    for (NodeId a = n; a != kNullNode; a = doc_.parent(a)) {
      EXPECT_NE(doc_.label(a), "closed_auction");
    }
  }
}

}  // namespace
}  // namespace secview
