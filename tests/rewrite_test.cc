#include <algorithm>

#include <gtest/gtest.h>

#include "rewrite/rec_paths.h"
#include "rewrite/rewriter.h"
#include "security/derive.h"
#include "security/materializer.h"
#include "security/spec_parser.h"
#include "workload/adex.h"
#include "workload/generator.h"
#include "workload/hospital.h"
#include "workload/synthetic.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace secview {
namespace {

PathPtr MustParse(const std::string& text) {
  auto r = ParseXPath(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return r.ok() ? *r : MakeEmptySet();
}

/// End-to-end equivalence check: evaluating `query` over the materialized
/// view Tv equals evaluating its rewriting over the document, compared as
/// origin node sets (the identity the rewriting theorem states).
void ExpectEquivalent(const XmlTree& doc, const SecurityView& view,
                      const AccessSpec& spec, const std::string& query,
                      const std::vector<std::pair<std::string, std::string>>&
                          bindings) {
  MaterializeOptions options;
  options.bindings = bindings;
  auto tv = MaterializeView(doc, view, spec, options);
  ASSERT_TRUE(tv.ok()) << tv.status();

  PathPtr p = MustParse(query);
  auto view_result = EvaluateAtRoot(*tv, p);
  ASSERT_TRUE(view_result.ok()) << query << ": " << view_result.status();
  std::vector<NodeId> expected;
  for (NodeId n : *view_result) expected.push_back(tv->origin(n));
  std::sort(expected.begin(), expected.end());

  auto rewritten = RewriteForDocument(view, p, doc.Height());
  ASSERT_TRUE(rewritten.ok()) << query << ": " << rewritten.status();
  PathPtr bound = BindParams(*rewritten, bindings);
  auto doc_result = EvaluateAtRoot(doc, bound);
  ASSERT_TRUE(doc_result.ok())
      << query << " -> " << ToXPathString(bound) << ": "
      << doc_result.status();

  EXPECT_EQ(*doc_result, expected)
      << "query " << query << " rewritten to " << ToXPathString(bound);
}

// -- recProc / ViewReachability ------------------------------------------------

TEST(ViewReachabilityTest, HospitalReachAndRecRw) {
  Dtd dtd = MakeHospitalDtd();
  auto spec = MakeNurseSpec(dtd);
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());
  auto reach = ViewReachability::Compute(*view);
  ASSERT_TRUE(reach.ok()) << reach.status();

  ViewTypeId hospital = view->FindType("hospital");
  ViewTypeId bill = view->FindType("bill");
  ViewTypeId patient = view->FindType("patient");

  // reach(//, hospital) includes hospital itself and every view type.
  const auto& from_root = reach->ReachDescOrSelf(hospital);
  EXPECT_EQ(from_root[0], hospital);
  EXPECT_EQ(from_root.size(), static_cast<size_t>(view->NumTypes()));

  // recrw(hospital, hospital) is epsilon.
  EXPECT_EQ(ToXPathString(reach->RecRw(hospital, hospital)), ".");

  // recrw(patient, bill) goes through the treatment dummies.
  std::string to_bill = ToXPathString(reach->RecRw(patient, bill));
  EXPECT_NE(to_bill.find("treatment"), std::string::npos) << to_bill;
  EXPECT_NE(to_bill.find("trial"), std::string::npos) << to_bill;
  EXPECT_NE(to_bill.find("regular"), std::string::npos) << to_bill;

  // bill is not reachable upward.
  EXPECT_EQ(reach->RecRw(bill, patient), nullptr);
  EXPECT_EQ(reach->ReachDescOrSelf(bill).size(), 1u);
}

TEST(ViewReachabilityTest, SharedPrefixesAreNotDuplicated) {
  // A diamond: recrw must stay linear in the view size (the paper's Z_x
  // symbolic-variable argument). We check structural sharing indirectly:
  // the same subexpression object appears in both branches.
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("r", ContentModel::Sequence({"a"})).ok());
  ASSERT_TRUE(dtd.AddType("a", ContentModel::Sequence({"b", "c"})).ok());
  ASSERT_TRUE(dtd.AddType("b", ContentModel::Sequence({"d"})).ok());
  ASSERT_TRUE(dtd.AddType("c", ContentModel::Sequence({"d"})).ok());
  ASSERT_TRUE(dtd.AddType("d", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.SetRoot("r").ok());
  ASSERT_TRUE(dtd.Finalize().ok());
  AccessSpec spec(dtd);  // everything accessible: view == document DTD
  auto view = DeriveSecurityView(spec);
  ASSERT_TRUE(view.ok());
  auto reach = ViewReachability::Compute(*view);
  ASSERT_TRUE(reach.ok());
  PathPtr to_d = reach->RecRw(view->FindType("r"), view->FindType("d"));
  ASSERT_NE(to_d, nullptr);
  EXPECT_EQ(ToXPathString(to_d), "a/(b | c)/d");
}

TEST(ViewReachabilityTest, RejectsRecursiveViews) {
  RecursiveFixture fixture = MakeRecursiveFixture();
  auto spec = ParseAccessSpec(fixture.dtd, fixture.spec_text);
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());
  auto reach = ViewReachability::Compute(*view);
  EXPECT_FALSE(reach.ok());
  EXPECT_EQ(reach.status().code(), StatusCode::kFailedPrecondition);
}

// -- Rewriting over the hospital view -------------------------------------------

class HospitalRewriteTest : public testing::Test {
 protected:
  void SetUp() override {
    dtd_ = MakeHospitalDtd();
    auto spec = MakeNurseSpec(dtd_);
    ASSERT_TRUE(spec.ok());
    spec_ = std::make_unique<AccessSpec>(std::move(spec).value());
    auto view = DeriveSecurityView(*spec_);
    ASSERT_TRUE(view.ok());
    view_ = std::make_unique<SecurityView>(std::move(view).value());
    auto rewriter = QueryRewriter::Create(*view_);
    ASSERT_TRUE(rewriter.ok());
    rewriter_ = std::make_unique<QueryRewriter>(std::move(rewriter).value());

    auto doc = GenerateDocument(dtd_, HospitalGeneratorOptions(11, 60'000));
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = std::move(doc).value();
  }

  std::string Rewrite(const std::string& query) {
    auto r = rewriter_->Rewrite(MustParse(query));
    EXPECT_TRUE(r.ok()) << query << ": " << r.status();
    return r.ok() ? ToXPathString(*r) : "";
  }

  Dtd dtd_;
  std::unique_ptr<AccessSpec> spec_;
  std::unique_ptr<SecurityView> view_;
  std::unique_ptr<QueryRewriter> rewriter_;
  XmlTree doc_;
};

TEST_F(HospitalRewriteTest, Example41PatientBill) {
  // The paper's Example 4.1: //patient//bill.
  std::string rewritten = Rewrite("//patient//bill");
  // The rewriting must route through the hidden trial/regular labels and
  // keep the ward qualifier from sigma(hospital, dept).
  EXPECT_NE(rewritten.find("trial"), std::string::npos) << rewritten;
  EXPECT_NE(rewritten.find("regular"), std::string::npos) << rewritten;
  EXPECT_NE(rewritten.find("wardNo = $wardNo"), std::string::npos)
      << rewritten;
  EXPECT_NE(rewritten.find("clinicalTrial"), std::string::npos) << rewritten;
}

TEST_F(HospitalRewriteTest, LabelNotInViewRewritesToEmpty) {
  EXPECT_EQ(Rewrite("clinicalTrial"), ".[false()]");
  EXPECT_EQ(Rewrite("//test"), ".[false()]");
  EXPECT_EQ(Rewrite("dept/trial"), ".[false()]");
}

TEST_F(HospitalRewriteTest, DummyLabelsAreQueryable) {
  std::string rewritten = Rewrite("//dummy1/bill");
  EXPECT_NE(rewritten.find("trial"), std::string::npos) << rewritten;
}

struct EquivCase {
  const char* query;
};

class HospitalEquivalenceTest : public HospitalRewriteTest,
                                public testing::WithParamInterface<EquivCase> {
};

TEST_P(HospitalEquivalenceTest, ViewAndRewrittenAgree) {
  ExpectEquivalent(doc_, *view_, *spec_, GetParam().query,
                   {{"wardNo", "3"}});
}

INSTANTIATE_TEST_SUITE_P(
    Queries, HospitalEquivalenceTest,
    testing::Values(
        EquivCase{"."},
        EquivCase{"dept"},
        EquivCase{"dept/patientInfo"},
        EquivCase{"dept/patientInfo/patient"},
        EquivCase{"//patient"},
        EquivCase{"//patient/name"},
        EquivCase{"//dept//patientInfo/patient/name"},
        EquivCase{"//dept/patientInfo/patient/name"},
        EquivCase{"//patient//bill"},
        EquivCase{"//bill"},
        EquivCase{"//medication"},
        EquivCase{"//treatment/*"},
        EquivCase{"//treatment/*/bill"},
        EquivCase{"//dummy1 | //dummy2"},
        EquivCase{"*"},
        EquivCase{"*/*"},
        EquivCase{"//*"},
        EquivCase{"//patient[name]"},
        EquivCase{"//patient[//medication]"},
        EquivCase{"//patient[not(//medication)]/name"},
        EquivCase{"//patient[treatment/dummy2]"},
        EquivCase{"//staff | //patient"},
        EquivCase{"dept/staffInfo//nurse"},
        EquivCase{"//patient[wardNo = \"3\"]"},
        EquivCase{"//patient[name and treatment]"},
        EquivCase{"//patientInfo[patient]"},
        EquivCase{"//clinicalTrial"},
        EquivCase{"//patient[treatment/dummy1 or treatment/dummy2]/wardNo"}));

TEST_F(HospitalRewriteTest, EquivalenceAcrossWards) {
  for (const char* ward : {"1", "2", "5", "8"}) {
    ExpectEquivalent(doc_, *view_, *spec_, "//patient/name",
                     {{"wardNo", ward}});
    ExpectEquivalent(doc_, *view_, *spec_, "//bill", {{"wardNo", ward}});
  }
}

// -- The per-target soundness fix -----------------------------------------------

TEST(RewriteSoundnessTest, MixedTargetsDoNotLeakHiddenSiblings) {
  // View: r -> (a, c); a -> bill (visible); c's bill child is hidden.
  // The query */bill must NOT return c's bill. The paper's factored
  // rw(p1,A)/(U rw(p2,B)) form would; the per-target translation must not.
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("r", ContentModel::Sequence({"a", "c"})).ok());
  ASSERT_TRUE(dtd.AddType("a", ContentModel::Sequence({"bill"})).ok());
  ASSERT_TRUE(dtd.AddType("c", ContentModel::Sequence({"bill", "pub"})).ok());
  ASSERT_TRUE(dtd.AddType("bill", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.AddType("pub", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.SetRoot("r").ok());
  ASSERT_TRUE(dtd.Finalize().ok());
  auto spec = ParseAccessSpec(dtd, "ann(c, bill) = N");
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());

  auto doc = ParseXml("<r><a><bill>ok</bill></a>"
                      "<c><bill>SECRET</bill><pub>p</pub></c></r>");
  ASSERT_TRUE(doc.ok());

  auto rewriter = QueryRewriter::Create(*view);
  ASSERT_TRUE(rewriter.ok());
  auto rewritten = rewriter->Rewrite(MustParse("*/bill"));
  ASSERT_TRUE(rewritten.ok());
  auto result = EvaluateAtRoot(*doc, *rewritten);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(doc->CollectText((*result)[0]), "ok")
      << "leaked hidden node via " << ToXPathString(*rewritten);

  // Same through the descendant axis.
  auto rewritten2 = rewriter->Rewrite(MustParse("//bill"));
  ASSERT_TRUE(rewritten2.ok());
  auto result2 = EvaluateAtRoot(*doc, *rewritten2);
  ASSERT_TRUE(result2.ok());
  ASSERT_EQ(result2->size(), 1u);
  EXPECT_EQ(doc->CollectText((*result2)[0]), "ok");
}

TEST(RewriteSoundnessTest, HiddenTextEqualityDoesNotLeak) {
  // v's text is concealed (ann(v, str) = N). A view query [v = "secret"]
  // must not let users probe the hidden document text.
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("r", ContentModel::Sequence({"v", "w"})).ok());
  ASSERT_TRUE(dtd.AddType("v", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.AddType("w", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.SetRoot("r").ok());
  ASSERT_TRUE(dtd.Finalize().ok());
  auto spec = ParseAccessSpec(dtd, "ann(v, str) = N");
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());

  auto doc = ParseXml("<r><v>secret</v><w>x</w></r>");
  ASSERT_TRUE(doc.ok());
  auto rewriter = QueryRewriter::Create(*view);
  ASSERT_TRUE(rewriter.ok());

  auto probe = rewriter->Rewrite(MustParse(".[v = \"secret\"]"));
  ASSERT_TRUE(probe.ok());
  auto result = EvaluateAtRoot(*doc, *probe);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty())
      << "text-equality probe leaked via " << ToXPathString(*probe);

  // The empty-string comparison degenerates to existence, matching the
  // view's semantics (the view v element has no text).
  ExpectEquivalent(*doc, *view, *spec, ".[v = \"\"]", {});
  ExpectEquivalent(*doc, *view, *spec, ".[v = \"secret\"]", {});
}

// -- Adex rewriting ---------------------------------------------------------------

TEST(AdexRewriteTest, QueriesExpandToPreciseDocumentPaths) {
  Dtd dtd = MakeAdexDtd();
  auto spec = MakeAdexSpec(dtd);
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());
  auto rewriter = QueryRewriter::Create(*view);
  ASSERT_TRUE(rewriter.ok());
  auto queries = MakeAdexQueries();
  ASSERT_TRUE(queries.ok());

  // Q1 //buyer-info/contact-info expands through the hidden head.
  auto q1 = rewriter->Rewrite(queries->q1);
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(ToXPathString(*q1), "head/buyer-info/contact-info");

  // Q2's apartment branch vanishes: apartments have no warranty.
  auto q2 = rewriter->Rewrite(queries->q2);
  ASSERT_TRUE(q2.ok());
  std::string q2_text = ToXPathString(*q2);
  EXPECT_EQ(q2_text,
            "body/ad-instance/content/real-estate/house/r-e.warranty");
}

TEST(AdexRewriteTest, EquivalenceOnGeneratedData) {
  Dtd dtd = MakeAdexDtd();
  auto spec = MakeAdexSpec(dtd);
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());
  auto doc = GenerateDocument(dtd, AdexGeneratorOptions(3, 80'000, 4));
  ASSERT_TRUE(doc.ok()) << doc.status();
  auto queries = MakeAdexQueries();
  ASSERT_TRUE(queries.ok());
  for (const auto& [name, q] : queries->All()) {
    SCOPED_TRACE(name);
    ExpectEquivalent(*doc, *view, *spec, ToXPathString(q), {});
  }
}

}  // namespace
}  // namespace secview
