#include <gtest/gtest.h>

#include "dtd/validator.h"
#include "workload/hospital.h"
#include "xml/edit.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace secview {
namespace {

NodeId FindElement(const XmlTree& doc, std::string_view label) {
  for (NodeId n = 0; n < static_cast<NodeId>(doc.node_count()); ++n) {
    if (doc.IsElement(n) && doc.label(n) == label) return n;
  }
  return kNullNode;
}

TEST(EditTest, InsertAppendsAsLastChild) {
  auto doc = ParseXml("<r><a/><b x=\"1\">t</b></r>");
  auto fragment = ParseXml("<c><d>new</d></c>");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(fragment.ok());
  auto updated = InsertSubtree(*doc, doc->root(), *fragment);
  ASSERT_TRUE(updated.ok()) << updated.status();
  EXPECT_EQ(ToXmlString(*updated),
            "<r><a/><b x=\"1\">t</b><c><d>new</d></c></r>");
  // The original is untouched.
  EXPECT_EQ(doc->node_count(), 4u);
}

TEST(EditTest, InsertIntoNestedParent) {
  auto doc = ParseXml("<r><a><x/></a></r>");
  auto fragment = ParseXml("<y attr=\"v\"/>");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(fragment.ok());
  NodeId a = FindElement(*doc, "a");
  auto updated = InsertSubtree(*doc, a, *fragment);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(ToXmlString(*updated), "<r><a><x/><y attr=\"v\"/></a></r>");
}

TEST(EditTest, InsertErrors) {
  auto doc = ParseXml("<r>text</r>");
  auto fragment = ParseXml("<c/>");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(fragment.ok());
  EXPECT_FALSE(InsertSubtree(*doc, 999, *fragment).ok());
  EXPECT_FALSE(InsertSubtree(*doc, -5, *fragment).ok());
  // Text node as parent.
  NodeId text = doc->first_child(doc->root());
  ASSERT_TRUE(doc->IsText(text));
  EXPECT_FALSE(InsertSubtree(*doc, text, *fragment).ok());
}

TEST(EditTest, DeleteRemovesSubtree) {
  auto doc = ParseXml("<r><a><x/><y/></a><b/></r>");
  ASSERT_TRUE(doc.ok());
  NodeId a = FindElement(*doc, "a");
  auto updated = DeleteSubtree(*doc, a);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(ToXmlString(*updated), "<r><b/></r>");
  EXPECT_FALSE(DeleteSubtree(*doc, doc->root()).ok());
  EXPECT_FALSE(DeleteSubtree(*doc, 12345).ok());
}

TEST(EditTest, ReplaceTextSwapsContent) {
  auto doc = ParseXml("<r><v>old</v><w>keep</w></r>");
  ASSERT_TRUE(doc.ok());
  NodeId v = FindElement(*doc, "v");
  auto updated = ReplaceText(*doc, v, "new");
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(ToXmlString(*updated), "<r><v>new</v><w>keep</w></r>");
}

TEST(EditTest, EditedHospitalStillValidates) {
  Dtd dtd = MakeHospitalDtd();
  auto doc = ParseXml(
      "<hospital><dept>"
      "<clinicalTrial><patientInfo/><test>t</test></clinicalTrial>"
      "<patientInfo><patient><name>a</name><wardNo>1</wardNo>"
      "<treatment><trial><bill>5</bill></trial></treatment>"
      "</patient></patientInfo><staffInfo/></dept></hospital>");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(ValidateInstance(*doc, dtd).ok());

  // Insert another patient into the patientInfo star.
  auto patient = ParseXml(
      "<patient><name>b</name><wardNo>2</wardNo>"
      "<treatment><regular><bill>7</bill><medication>m</medication>"
      "</regular></treatment></patient>");
  ASSERT_TRUE(patient.ok());
  NodeId info = kNullNode;
  for (NodeId n = 0; n < static_cast<NodeId>(doc->node_count()); ++n) {
    if (doc->IsElement(n) && doc->label(n) == "patientInfo" &&
        doc->label(doc->parent(n)) == "dept") {
      info = n;
    }
  }
  ASSERT_NE(info, kNullNode);
  auto updated = InsertSubtree(*doc, info, *patient);
  ASSERT_TRUE(updated.ok());
  EXPECT_TRUE(ValidateInstance(*updated, dtd).ok())
      << ToXmlString(*updated);

  // Deleting a star child keeps validity too.
  NodeId inserted = FindElement(*updated, "patient");
  auto removed = DeleteSubtree(*updated, inserted);
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(ValidateInstance(*removed, dtd).ok());
}

}  // namespace
}  // namespace secview
