#include <gtest/gtest.h>

#include "optimize/image_graph.h"
#include "workload/hospital.h"
#include "xpath/parser.h"

namespace secview {
namespace {

PathPtr MustParse(const std::string& text) {
  auto r = ParseXPath(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return r.ok() ? *r : MakeEmptySet();
}

/// Direct structural checks of image-graph construction (paper
/// Section 5.1, Example 5.2 shapes).
class ImageGraphTest : public testing::Test {
 protected:
  ImageGraphTest() : dtd_(BuildFig9()), graph_(dtd_) {}

  static Dtd BuildFig9() {
    Dtd dtd;
    EXPECT_TRUE(dtd.AddType("a", ContentModel::Sequence({"b", "c"})).ok());
    EXPECT_TRUE(dtd.AddType("b", ContentModel::Sequence({"d"})).ok());
    EXPECT_TRUE(dtd.AddType("c", ContentModel::Sequence({"d"})).ok());
    EXPECT_TRUE(dtd.AddType("d", ContentModel::Choice({"e", "f"})).ok());
    EXPECT_TRUE(dtd.AddType("e", ContentModel::Sequence({"g"})).ok());
    EXPECT_TRUE(dtd.AddType("f", ContentModel::Sequence({"g"})).ok());
    EXPECT_TRUE(dtd.AddType("g", ContentModel::Text()).ok());
    EXPECT_TRUE(dtd.SetRoot("a").ok());
    EXPECT_TRUE(dtd.Finalize().ok());
    return dtd;
  }

  ImageGraph Build(const std::string& query) {
    return BuildImageGraph(graph_, MustParse(query), dtd_.FindType("a"));
  }

  int CountLabel(const ImageGraph& g, const char* name) {
    TypeId t = dtd_.FindType(name);
    int count = 0;
    for (const ImageGraph::Node& n : g.nodes) {
      if (n.label == t && !n.is_qual) ++count;
    }
    return count;
  }

  Dtd dtd_;
  DtdGraph graph_;
};

TEST_F(ImageGraphTest, EmptyWhenNothingReached) {
  EXPECT_TRUE(Build("zz").empty());
  EXPECT_TRUE(Build("b/zz").empty());
  EXPECT_TRUE(Build("g").empty());  // g is not a child of a
}

TEST_F(ImageGraphTest, WildcardChainMergesPerLayer) {
  // */d/*/g (the paper's p1): one node per type per layer.
  ImageGraph g = Build("*/d/*/g");
  EXPECT_FALSE(g.empty());
  EXPECT_EQ(CountLabel(g, "a"), 1);
  EXPECT_EQ(CountLabel(g, "b"), 1);
  EXPECT_EQ(CountLabel(g, "c"), 1);
  // d appears once per parent (b and c have separate d children).
  EXPECT_EQ(CountLabel(g, "d"), 2);
  ASSERT_EQ(g.frontier.size(), 4u);  // g under e and f, per d instance
  for (int n : g.frontier) {
    EXPECT_TRUE(g.nodes[n].is_frontier);
    EXPECT_EQ(g.nodes[n].label, dtd_.FindType("g"));
  }
}

TEST_F(ImageGraphTest, UnionKeepsBranchesApartWithQualifiers) {
  ImageGraph g = Build("b/d[e] | b/d[f]");
  EXPECT_FALSE(g.imprecise);
  // The two d's carry different qualifiers and must not merge.
  EXPECT_EQ(CountLabel(g, "d"), 2);
  int quals = 0;
  for (const ImageGraph::Node& n : g.nodes) {
    if (n.is_qual) ++quals;
  }
  EXPECT_EQ(quals, 2);
}

TEST_F(ImageGraphTest, QualifierOnSharedContextIsImprecise) {
  ImageGraph g = Build(".[b] | .[c]");
  EXPECT_TRUE(g.imprecise);
}

TEST_F(ImageGraphTest, EqualityTagsRecorded) {
  ImageGraph g = Build("b/d[e = \"42\"]");
  bool found = false;
  for (const ImageGraph::Node& n : g.nodes) {
    if (n.is_qual && n.tag == "=42") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(ImageGraphTest, DescendantLayerFollowsOnlyUsefulPaths) {
  // //e from a: the path layer must not contain f (no e below f).
  ImageGraph g = Build("//e");
  EXPECT_GT(CountLabel(g, "e"), 0);
  EXPECT_EQ(CountLabel(g, "f"), 0);
}

TEST_F(ImageGraphTest, DebugStringRendersStructure) {
  ImageGraph g = Build("b/d[e]");
  std::string text = ToDebugString(g, dtd_);
  EXPECT_NE(text.find("(root)"), std::string::npos) << text;
  EXPECT_NE(text.find("[]"), std::string::npos) << text;
  EXPECT_EQ(ToDebugString(ImageGraph{}, dtd_), "(empty image)\n");
}

TEST_F(ImageGraphTest, TypeLevelReachMatchesStructure) {
  TypeId a = dtd_.FindType("a");
  auto reach = TypeLevelReach(graph_, MustParse("*/d/*"), a);
  // e and f.
  EXPECT_EQ(reach.size(), 2u);
  EXPECT_TRUE(TypeLevelReach(graph_, MustParse("zz"), a).empty());
  auto self = TypeLevelReach(graph_, MustParse("."), a);
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self[0], a);
  // '//' reaches everything from the root.
  EXPECT_EQ(TypeLevelReach(graph_, MustParse("//."), a).size(), 7u);
}

TEST(ImageGraphHospitalTest, QualifierSubtreeBuilt) {
  Dtd dtd = MakeHospitalDtd();
  DtdGraph graph(dtd);
  PathPtr p = ParseXPath("dept[patientInfo/patient]").value();
  ImageGraph g = BuildImageGraph(graph, p, dtd.root());
  EXPECT_FALSE(g.empty());
  // The qualifier's path structure lives under the '[]' node.
  bool qual_with_children = false;
  for (const ImageGraph::Node& n : g.nodes) {
    if (n.is_qual && !n.children.empty()) qual_with_children = true;
  }
  EXPECT_TRUE(qual_with_children);
}

}  // namespace
}  // namespace secview
