// Randomized fault-injection coverage for the serving stack
// (docs/robustness.md): hundreds of seeded iterations arm random
// failpoint combinations over the concurrent batch path and assert the
// degradation contract every time — no crash or deadlock, non-injected
// queries answer byte-identically to a clean baseline, injected
// failures surface as ResourceExhausted (never a wrong answer), audit
// accounting stays exact (events + drops == attempts, seq gaps == the
// drop count), and every failpoint's fire count matches its mirrored
// engine.failpoint.* counter. Run under ASan and TSan (scripts/check.sh
// does both).

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "engine/worker_pool.h"
#include "net/http_client.h"
#include "net/telemetry_server.h"
#include "obs/audit.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "workload/hospital.h"
#include "workload/synthetic.h"
#include "xml/parser.h"

namespace secview {
namespace {

constexpr char kNursePolicy[] = R"(
  ann(hospital, dept) = [*/patient/wardNo = $wardNo]
  ann(dept, clinicalTrial) = N
  ann(clinicalTrial, patientInfo) = Y
  ann(treatment, trial) = N
  ann(treatment, regular) = N
  ann(trial, bill) = Y
  ann(regular, bill) = Y
  ann(regular, medication) = Y
)";

// Mixed hits and misses over the nurse view's exposed labels.
const char* kQueries[] = {
    "//patient/name",  "//bill",            "//patient//bill",
    "//patient/name",  "//wardNo",          "//patient[wardNo]/name",
    "//bill",          "patientInfo//name", "//medication",
    "//patient/name | //bill",
};

// The engine-side failpoints the randomized loop draws from (the
// net.* points get their own server-backed test below).
const char* kEnginePoints[] = {
    failpoints::kAuditWrite,  failpoints::kAllocEvaluate,
    failpoints::kPlanCompile, failpoints::kCacheInsert,
    failpoints::kPoolSubmit,
};

std::unique_ptr<SecureQueryEngine> MakeEngine() {
  auto engine = SecureQueryEngine::Create(MakeHospitalDtd());
  EXPECT_TRUE(engine.ok()) << engine.status();
  auto e = std::move(engine).value();
  EXPECT_TRUE(e->RegisterPolicy("nurse", kNursePolicy).ok());
  return e;
}

XmlTree MakeDoc() {
  auto doc = GenerateDocument(MakeHospitalDtd(),
                              HospitalGeneratorOptions(5, 20'000));
  EXPECT_TRUE(doc.ok()) << doc.status();
  return std::move(doc).value();
}

ExecuteOptions NurseOptions() {
  ExecuteOptions options;
  options.bindings = {{"wardNo", "3"}};
  return options;
}

uint64_t CounterValue(obs::MetricsRegistry& metrics, const std::string& name) {
  return metrics.GetCounter(name).value();
}

/// One randomized failpoint spec over the engine points; roughly half
/// the points stay off each round so injected and clean paths mix.
std::string RandomSpec(Rng& rng) {
  std::string spec;
  for (const char* point : kEnginePoints) {
    if (rng.Chance(0.45)) continue;
    if (!spec.empty()) spec += ',';
    spec += point;
    spec += '=';
    switch (rng.Below(3)) {
      case 0:
        spec += "once";
        break;
      case 1:
        spec += "every:" + std::to_string(rng.RangeInclusive(1, 4));
        break;
      default:
        spec += "prob:0." + std::to_string(rng.RangeInclusive(1, 8)) + ":" +
                std::to_string(rng.Next() % 100'000);
        break;
    }
  }
  return spec;
}

TEST(ChaosTest, RandomizedFailpointsKeepServingCorrectly) {
  auto engine = MakeEngine();
  XmlTree doc = MakeDoc();
  std::vector<std::string> queries(std::begin(kQueries), std::end(kQueries));

  FailPointRegistry& registry = FailPointRegistry::Instance();
  registry.DisarmAll();
  registry.AttachMetrics(&engine->metrics());

  // Clean baseline per query, computed with every point off.
  ExecuteOptions options = NurseOptions();
  std::vector<std::vector<NodeId>> baseline;
  for (const std::string& q : queries) {
    auto result = engine->Execute("nurse", doc, q, options);
    ASSERT_TRUE(result.ok()) << q << ": " << result.status();
    baseline.push_back(result->nodes);
  }

  QueryWorkerPool::Options pool_options;
  pool_options.threads = 4;
  QueryWorkerPool pool(*engine, pool_options);

  Rng master(20260809);
  constexpr int kIterations = 200;
  uint64_t total_failures = 0;
  uint64_t total_drops = 0;
  for (int iter = 0; iter < kIterations; ++iter) {
    Rng rng(master.Next());
    const std::string spec = RandomSpec(rng);
    ASSERT_TRUE(registry.ArmFromSpec(spec).ok()) << spec;

    std::map<std::string, uint64_t> fires_before;
    std::map<std::string, uint64_t> counter_before;
    for (const char* point : kEnginePoints) {
      fires_before[point] = registry.Get(point).fires();
      counter_before[point] = CounterValue(
          engine->metrics(), std::string("engine.failpoint.") + point);
    }

    const std::string audit_path = ::testing::TempDir() + "chaos_audit_" +
                                   std::to_string(iter) + ".jsonl";
    std::remove(audit_path.c_str());
    auto audit = obs::JsonlAuditLog::Open(audit_path);
    ASSERT_TRUE(audit.ok()) << audit.status();
    ExecuteOptions chaos_options = options;
    chaos_options.audit = audit->get();

    std::vector<Result<ExecuteResult>> results =
        pool.ExecuteBatch("nurse", doc, queries, chaos_options);
    registry.DisarmAll();

    // Result parity: an ok result is byte-identical to the clean
    // baseline; a failed one is an injected resource failure, never a
    // wrong answer or a leak.
    ASSERT_EQ(results.size(), queries.size());
    size_t ok_results = 0;
    size_t failed_results = 0;
    for (size_t i = 0; i < results.size(); ++i) {
      if (results[i].ok()) {
        EXPECT_EQ(results[i]->nodes, baseline[i])
            << "iteration " << iter << " spec '" << spec << "' query "
            << queries[i];
        ++ok_results;
      } else {
        EXPECT_EQ(results[i].status().code(), StatusCode::kResourceExhausted)
            << "iteration " << iter << " spec '" << spec << "' query "
            << queries[i] << ": " << results[i].status();
        ++failed_results;
      }
    }
    total_failures += failed_results;

    // Exact fire accounting: every fire since AttachMetrics is mirrored
    // into the engine registry, point by point.
    for (const char* point : kEnginePoints) {
      const uint64_t fires = registry.Get(point).fires() - fires_before[point];
      const uint64_t counted =
          CounterValue(engine->metrics(),
                       std::string("engine.failpoint.") + point) -
          counter_before[point];
      EXPECT_EQ(fires, counted) << "iteration " << iter << " point " << point;
    }

    // Audit accounting: one attempt per query (executed or shed), every
    // attempt either written or dropped, and each dropped event leaves
    // exactly one hole in the seq chain.
    const uint64_t events = (*audit)->events();
    const uint64_t dropped = (*audit)->dropped();
    EXPECT_EQ(events + dropped, queries.size())
        << "iteration " << iter << " spec '" << spec << "'";
    total_drops += dropped;

    std::ifstream in(audit_path, std::ios::binary);
    ASSERT_TRUE(in.good()) << audit_path;
    std::string line;
    std::set<uint64_t> seqs;
    size_t ok_lines = 0;
    size_t failed_lines = 0;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      ASSERT_TRUE(obs::ValidateAuditLine(line).ok())
          << "iteration " << iter << ": " << line;
      auto record = obs::Json::Parse(line);
      ASSERT_TRUE(record.ok());
      seqs.insert(static_cast<uint64_t>(record->Find("seq")->AsNumber()));
      const std::string& outcome = record->Find("outcome")->AsString();
      if (outcome == "ok") {
        ++ok_lines;
      } else {
        // Injected failures are all resource failures, so the audit
        // outcome taxonomy must say "timeout" — never a silent "ok".
        EXPECT_EQ(outcome, "timeout") << line;
        ++failed_lines;
      }
    }
    EXPECT_EQ(seqs.size(), events) << "iteration " << iter;
    EXPECT_LE(ok_lines, ok_results);
    EXPECT_LE(failed_lines, failed_results);
    if (!seqs.empty()) {
      EXPECT_LE(*seqs.rbegin(), queries.size());
      // Holes below the highest written seq + events dropped after it
      // account for every drop.
      const uint64_t holes_below = *seqs.rbegin() - seqs.size();
      EXPECT_LE(holes_below, dropped);
    }
    std::remove(audit_path.c_str());
  }
  registry.AttachMetrics(nullptr);

  // The loop must actually have exercised both paths; a chaos run where
  // nothing ever fired (or nothing ever succeeded) tests nothing.
  EXPECT_GT(total_failures, 0u);
  EXPECT_GT(total_drops, 0u);
}

TEST(ChaosTest, DisarmedFailpointsAreFreeAndInert) {
  auto engine = MakeEngine();
  XmlTree doc = MakeDoc();
  FailPointRegistry& registry = FailPointRegistry::Instance();
  registry.DisarmAll();

  ExecuteOptions options = NurseOptions();
  const uint64_t fires_before = registry.TotalFires();
  for (const char* q : kQueries) {
    auto result = engine->Execute("nurse", doc, q, options);
    EXPECT_TRUE(result.ok()) << q << ": " << result.status();
  }
  EXPECT_EQ(registry.TotalFires(), fires_before);
}

TEST(ChaosTest, PlanCompileFaultFallsBackToAstEvaluation) {
  auto engine = MakeEngine();
  XmlTree doc = MakeDoc();
  FailPointRegistry& registry = FailPointRegistry::Instance();
  registry.DisarmAll();
  ExecuteOptions options = NurseOptions();

  auto clean = engine->Execute("nurse", doc, "//patient//bill", options);
  ASSERT_TRUE(clean.ok()) << clean.status();

  ASSERT_TRUE(registry.ArmFromSpec("plan.compile=every:1").ok());
  const uint64_t fallbacks_before =
      CounterValue(engine->metrics(), "engine.plan.fallbacks");
  // A fresh query text forces a cache miss, hence a (failing) compile.
  auto degraded = engine->Execute("nurse", doc, "//patient//medication", options);
  registry.DisarmAll();
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_GT(CounterValue(engine->metrics(), "engine.plan.fallbacks"),
            fallbacks_before);
}

TEST(ChaosTest, SustainedInjectionDegradesHealthThenRecovers) {
  auto engine = MakeEngine();
  XmlTree doc = MakeDoc();
  FailPointRegistry& registry = FailPointRegistry::Instance();
  registry.DisarmAll();

  uint64_t fake_now = 0;
  obs::HealthTracker::Options hopts;
  hopts.now_micros = [&fake_now] { return fake_now; };
  obs::HealthTracker health(hopts);
  engine->AttachHealth(&health);

  ExecuteOptions options = NurseOptions();
  ASSERT_TRUE(registry.ArmFromSpec("alloc.evaluate=every:1").ok());
  for (int i = 0; i < 30; ++i) {
    auto result = engine->Execute("nurse", doc, "//bill", options);
    EXPECT_FALSE(result.ok());
  }
  registry.DisarmAll();
  EXPECT_EQ(health.state(), obs::HealthState::kDegraded);

  // A fresh window of clean traffic clears the verdict.
  fake_now += 120ull * 1'000'000;
  for (int i = 0; i < 30; ++i) {
    auto result = engine->Execute("nurse", doc, "//bill", options);
    EXPECT_TRUE(result.ok()) << result.status();
  }
  EXPECT_EQ(health.state(), obs::HealthState::kOk);
  engine->AttachHealth(nullptr);
}

TEST(ChaosTest, TelemetryServerSurvivesSocketFaults) {
  FailPointRegistry& registry = FailPointRegistry::Instance();
  registry.DisarmAll();

  obs::MetricsRegistry metrics;
  metrics.GetCounter("chaos.marker").Add(7);
  net::TelemetryServer::Options options;
  options.http.port = 0;
  net::TelemetryServer server(&metrics, options);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  // Accept, recv, and send all fail intermittently; the retrying client
  // must still get through, and the server must never die.
  ASSERT_TRUE(registry
                  .ArmFromSpec("net.accept=every:4,net.recv=prob:0.2:11,"
                               "net.send=prob:0.2:13")
                  .ok());
  net::HttpGetOptions get_options;
  get_options.timeout_ms = 2000;
  get_options.retries = 6;
  get_options.backoff_initial_ms = 1;
  get_options.backoff_cap_ms = 8;
  int ok = 0;
  for (int i = 0; i < 40; ++i) {
    auto response = net::HttpGet("127.0.0.1", port, "/varz", get_options);
    if (response.ok() && response->status == 200) ++ok;
  }
  registry.DisarmAll();
  // Most scrapes survive the faults thanks to the retry loop; a handful
  // may exhaust their budget, but the server itself must stay up.
  EXPECT_GE(ok, 20);

  // After disarming, service is fully clean again: the accept loop was
  // never lost to an injected failure.
  auto clean = net::HttpGet("127.0.0.1", port, "/varz", 2000);
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(clean->status, 200);
  EXPECT_NE(clean->body.find("chaos.marker"), std::string::npos);
  EXPECT_GT(server.http().io_errors(), 0u);
  server.Stop();
}

TEST(ChaosTest, ClientConnectFaultIsRetriedThenSucceeds) {
  FailPointRegistry& registry = FailPointRegistry::Instance();
  registry.DisarmAll();

  obs::MetricsRegistry metrics;
  net::TelemetryServer::Options options;
  options.http.port = 0;
  net::TelemetryServer server(&metrics, options);
  ASSERT_TRUE(server.Start().ok());

  // First connect fails (once), the retry succeeds.
  ASSERT_TRUE(registry.ArmFromSpec("net.connect=once").ok());
  net::HttpGetOptions get_options;
  get_options.retries = 2;
  get_options.backoff_initial_ms = 1;
  auto response =
      net::HttpGet("127.0.0.1", server.port(), "/healthz", get_options);
  registry.DisarmAll();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 200);

  // Without retries the injected connect failure surfaces to the caller
  // as a transport error — degraded, not wrong.
  ASSERT_TRUE(registry.ArmFromSpec("net.connect=once").ok());
  auto failed = net::HttpGet("127.0.0.1", server.port(), "/healthz", 2000);
  registry.DisarmAll();
  EXPECT_FALSE(failed.ok());
  server.Stop();
}

}  // namespace
}  // namespace secview
