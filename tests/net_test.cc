// Tests for the embedded HTTP layer (src/net): request parsing under
// the hostile-input limits, response serialization, and the socket
// server/client pair end to end on an ephemeral localhost port.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "net/http.h"
#include "net/http_client.h"
#include "net/http_server.h"

namespace secview::net {
namespace {

// ---------------------------------------------------------------------------
// ParseHttpRequest

TEST(HttpParseTest, ParsesSimpleGet) {
  auto parsed = ParseHttpRequest(
      "GET /metrics HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->method, "GET");
  EXPECT_EQ(parsed->target, "/metrics");
  EXPECT_EQ(parsed->version, "HTTP/1.1");
  EXPECT_EQ(parsed->Header("host"), "localhost");
  EXPECT_EQ(parsed->Header("accept"), "*/*");
  EXPECT_EQ(parsed->Header("absent"), "");
}

TEST(HttpParseTest, AcceptsHeadAndBareLfLines) {
  auto parsed = ParseHttpRequest("HEAD /healthz HTTP/1.0\nHost: x\n\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->method, "HEAD");
  EXPECT_EQ(parsed->version, "HTTP/1.0");
}

TEST(HttpParseTest, LowercasesHeaderNamesAndTrimsValues) {
  auto parsed =
      ParseHttpRequest("GET / HTTP/1.1\r\nX-Custom-Header:   padded \r\n\r\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Header("x-custom-header"), "padded");
}

TEST(HttpParseTest, RejectsNonGetMethods) {
  for (const char* method : {"POST", "PUT", "DELETE", "OPTIONS", "TRACE"}) {
    auto parsed = ParseHttpRequest(std::string(method) + " / HTTP/1.1\r\n\r\n");
    ASSERT_FALSE(parsed.ok()) << method;
    EXPECT_EQ(parsed.status().code(), StatusCode::kUnimplemented) << method;
  }
}

TEST(HttpParseTest, RejectsMalformedRequestLines) {
  for (const char* head :
       {"", "\r\n\r\n", "GET\r\n\r\n", "GET /\r\n\r\n",
        "GET / HTTP/1.1 extra\r\n\r\n", "GET / HTTP/2.0\r\n\r\n",
        "GET metrics HTTP/1.1\r\n\r\n"}) {
    auto parsed = ParseHttpRequest(head);
    EXPECT_FALSE(parsed.ok()) << "head: '" << head << "'";
  }
}

TEST(HttpParseTest, RejectsUnterminatedHead) {
  auto parsed = ParseHttpRequest("GET / HTTP/1.1\r\nHost: x\r\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(HttpParseTest, RejectsControlBytesInTarget) {
  auto parsed = ParseHttpRequest("GET /me\ttrics HTTP/1.1\r\n\r\n");
  EXPECT_FALSE(parsed.ok());
}

TEST(HttpParseTest, EnforcesHeaderCountCap) {
  HttpLimits limits;
  limits.max_headers = 4;
  std::string head = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 5; ++i) {
    head += "h" + std::to_string(i) + ": v\r\n";
  }
  head += "\r\n";
  auto parsed = ParseHttpRequest(head, limits);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(parsed.status().message().find("max_headers"), std::string::npos);
}

TEST(HttpParseTest, EnforcesTargetLengthCap) {
  HttpLimits limits;
  limits.max_target_bytes = 16;
  std::string head =
      "GET /" + std::string(32, 'a') + " HTTP/1.1\r\n\r\n";
  auto parsed = ParseHttpRequest(head, limits);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kOutOfRange);
}

TEST(HttpParseTest, EnforcesTotalSizeCap) {
  HttpLimits limits;
  limits.max_request_bytes = 64;
  std::string head = "GET / HTTP/1.1\r\nPadding: " + std::string(128, 'x') +
                     "\r\n\r\n";
  auto parsed = ParseHttpRequest(head, limits);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kOutOfRange);
}

TEST(HttpParseTest, RejectsRequestBodies) {
  auto with_length =
      ParseHttpRequest("GET / HTTP/1.1\r\nContent-Length: 4\r\n\r\n");
  EXPECT_FALSE(with_length.ok());
  auto chunked =
      ParseHttpRequest("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_FALSE(chunked.ok());
}

// ---------------------------------------------------------------------------
// SerializeHttpResponse

TEST(HttpSerializeTest, IncludesLengthAndConnectionClose) {
  HttpResponse response = HttpResponse::Text(200, "hello\n");
  std::string wire = SerializeHttpResponse(response);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 6\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 6), "hello\n");
}

TEST(HttpSerializeTest, HeadElidesBodyButKeepsLength) {
  HttpResponse response = HttpResponse::Text(200, "hello\n");
  std::string wire = SerializeHttpResponse(response, /*head_only=*/true);
  EXPECT_NE(wire.find("Content-Length: 6\r\n"), std::string::npos);
  EXPECT_EQ(wire.find("hello"), std::string::npos);
}

// ---------------------------------------------------------------------------
// HttpServer + HttpGet end to end

class HttpServerTest : public ::testing::Test {
 protected:
  /// Starts a server echoing the request target; fails the test on error.
  std::unique_ptr<HttpServer> StartEcho(HttpServer::Options options = {}) {
    auto server = std::make_unique<HttpServer>(
        [](const HttpRequest& request) {
          return HttpResponse::Text(200, "target=" + request.target + "\n");
        },
        options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started;
    EXPECT_NE(server->port(), 0);
    return server;
  }
};

TEST_F(HttpServerTest, ServesGetOnEphemeralPort) {
  auto server = StartEcho();
  auto response = HttpGet("127.0.0.1", server->port(), "/ping");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "target=/ping\n");
  EXPECT_GE(server->requests_handled(), 1u);
}

TEST_F(HttpServerTest, ServesManyConcurrentClients) {
  auto server = StartEcho();
  constexpr int kClients = 16;
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      auto response =
          HttpGet("127.0.0.1", server->port(), "/c" + std::to_string(i));
      if (response.ok() && response->status == 200 &&
          response->body == "target=/c" + std::to_string(i) + "\n") {
        ok.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients);
}

TEST_F(HttpServerTest, StopIsIdempotentAndRestartable) {
  auto server = StartEcho();
  uint16_t first_port = server->port();
  server->Stop();
  server->Stop();
  EXPECT_FALSE(server->running());
  // A fresh Start binds again (possibly a different ephemeral port).
  ASSERT_TRUE(server->Start().ok());
  EXPECT_TRUE(server->running());
  auto response = HttpGet("127.0.0.1", server->port(), "/again");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 200);
  (void)first_port;
}

TEST_F(HttpServerTest, RejectsOversizedAndMalformedRequests) {
  HttpServer::Options options;
  options.limits.max_request_bytes = 256;
  auto server = StartEcho(options);
  // The client helper only speaks well-formed GET, so drive the raw
  // socket through it with hostile paths instead: an over-long target
  // trips the byte cap at the parse layer.
  auto long_target =
      HttpGet("127.0.0.1", server->port(), "/" + std::string(2048, 'a'));
  ASSERT_TRUE(long_target.ok()) << long_target.status();
  EXPECT_EQ(long_target->status, 431);
  EXPECT_GE(server->requests_rejected(), 1u);
}

TEST_F(HttpServerTest, RefusesDoubleStart) {
  auto server = StartEcho();
  Status second = server->Start();
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.code(), StatusCode::kFailedPrecondition);
}

TEST(HttpClientTest, ReportsConnectionRefused) {
  // Bind-then-close to find a port that is very likely unused.
  HttpServer probe([](const HttpRequest&) { return HttpResponse::Text(200, ""); },
                   {});
  ASSERT_TRUE(probe.Start().ok());
  uint16_t dead_port = probe.port();
  probe.Stop();
  auto response = HttpGet("127.0.0.1", dead_port, "/", 500);
  EXPECT_FALSE(response.ok());
}

TEST(HttpClientTest, RejectsBadHost) {
  auto response = HttpGet("not-an-ip", 80, "/", 100);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace secview::net
