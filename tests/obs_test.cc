// Unit tests for the observability layer (src/obs/): metrics registry
// semantics, span-tree construction, and the JSON model both exporters
// share.

#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/plan_profile.h"
#include "obs/policy_stats.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "obs/trace_store.h"

namespace secview {
namespace obs {
namespace {

// -- Json ---------------------------------------------------------------

TEST(JsonTest, DumpParseRoundTrip) {
  Json doc = Json::Object();
  doc.Set("name", Json("phase.rewrite"));
  doc.Set("count", Json(uint64_t{42}));
  doc.Set("mean", Json(1.5));
  doc.Set("enabled", Json(true));
  doc.Set("none", Json());
  Json arr = Json::Array();
  arr.Append(Json(1)).Append(Json("two")).Append(Json::Object());
  doc.Set("items", std::move(arr));

  for (bool pretty : {false, true}) {
    auto parsed = Json::Parse(doc.Dump(pretty));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_TRUE(parsed->Equals(doc));
  }
}

TEST(JsonTest, ParseEscapesAndNumbers) {
  auto parsed = Json::Parse(R"({"s":"a\"b\\c\ndA","n":-1.25e2})");
  ASSERT_TRUE(parsed.ok());
  const Json* s = parsed->Find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->AsString(), "a\"b\\c\ndA");
  EXPECT_DOUBLE_EQ(parsed->Find("n")->AsNumber(), -125.0);
}

TEST(JsonTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(Json::Parse("nul").ok());
}

TEST(JsonTest, SetOverwritesAndPreservesOrder) {
  Json obj = Json::Object();
  obj.Set("b", Json(1)).Set("a", Json(2)).Set("b", Json(3));
  ASSERT_EQ(obj.members().size(), 2u);
  EXPECT_EQ(obj.members()[0].first, "b");
  EXPECT_DOUBLE_EQ(obj.members()[0].second.AsNumber(), 3.0);
  EXPECT_EQ(obj.members()[1].first, "a");
}

TEST(JsonTest, EscapesControlCharactersInDump) {
  Json doc = Json::Object();
  doc.Set("s", Json(std::string("a\x01" "b\x1f\tc")));
  std::string dumped = doc.Dump(/*pretty=*/false);
  // Raw control bytes must never appear in the output.
  for (char c : dumped) EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  EXPECT_NE(dumped.find("\\u0001"), std::string::npos) << dumped;
  EXPECT_NE(dumped.find("\\u001f"), std::string::npos);
  EXPECT_NE(dumped.find("\\t"), std::string::npos);
  auto parsed = Json::Parse(dumped);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("s")->AsString(), "a\x01" "b\x1f\tc");
}

TEST(JsonTest, RecombinesSurrogatePairs) {
  // U+1F600 as a surrogate pair must decode to 4-byte UTF-8, not CESU-8.
  auto parsed = Json::Parse("{\"s\":\"\\ud83d\\ude00\"}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("s")->AsString(), "\xf0\x9f\x98\x80");
  // Unpaired surrogates decode leniently to U+FFFD.
  auto lone_high = Json::Parse(R"({"s":"\ud83dx"})");
  ASSERT_TRUE(lone_high.ok());
  EXPECT_EQ(lone_high->Find("s")->AsString(), "\xef\xbf\xbdx");
  auto lone_low = Json::Parse(R"({"s":"\ude00"})");
  ASSERT_TRUE(lone_low.ok());
  EXPECT_EQ(lone_low->Find("s")->AsString(), "\xef\xbf\xbd");
}

// -- Metrics ------------------------------------------------------------

TEST(MetricsTest, CounterAndGaugeSemantics) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("engine.queries");
  c.Add();
  c.Add(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&registry.GetCounter("engine.queries"), &c);

  Gauge& g = registry.GetGauge("engine.policies");
  g.Set(3);
  g.Add(-1);
  EXPECT_EQ(g.value(), 2);

  registry.Reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
}

TEST(MetricsTest, HistogramBucketsAndPercentiles) {
  Histogram h({10, 100, 1000});
  for (uint64_t v : {1u, 5u, 10u, 50u, 500u, 5000u}) h.Observe(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 5566u);
  std::vector<uint64_t> buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(buckets[0], 3u);      // <= 10
  EXPECT_EQ(buckets[1], 1u);      // <= 100
  EXPECT_EQ(buckets[2], 1u);      // <= 1000
  EXPECT_EQ(buckets[3], 1u);      // overflow
  EXPECT_EQ(h.ApproxPercentile(0.5), 10u);
  // The overflow bucket has no upper bound; the estimate clamps to the
  // largest finite bound.
  EXPECT_EQ(h.ApproxPercentile(1.0), 1000u);
}

TEST(MetricsTest, PercentileEstimateFlagsOverflow) {
  Histogram h({10, 100});
  for (int i = 0; i < 9; ++i) h.Observe(5);
  h.Observe(50'000);  // lands in the +Inf bucket
  EXPECT_EQ(h.OverflowCount(), 1u);

  PercentileEstimate p50 = h.ApproxPercentileEstimate(0.5);
  EXPECT_EQ(p50.value, 10u);
  EXPECT_FALSE(p50.overflow);

  // The tail sample is in the overflow bucket: the clamped value is the
  // largest finite bound, and the flag says it is only a lower bound.
  PercentileEstimate p99 = h.ApproxPercentileEstimate(0.99);
  EXPECT_EQ(p99.value, 100u);
  EXPECT_TRUE(p99.overflow);
  // The legacy API still returns the clamped value alone.
  EXPECT_EQ(h.ApproxPercentile(0.99), 100u);
}

TEST(MetricsTest, PercentileEstimateOnEmptyAndAllOverflow) {
  Histogram empty({10});
  PercentileEstimate none = empty.ApproxPercentileEstimate(0.5);
  EXPECT_EQ(none.value, 0u);
  EXPECT_FALSE(none.overflow);

  Histogram tail({10});
  tail.Observe(1000);
  tail.Observe(2000);
  EXPECT_EQ(tail.OverflowCount(), 2u);
  PercentileEstimate p50 = tail.ApproxPercentileEstimate(0.5);
  EXPECT_EQ(p50.value, 10u);
  EXPECT_TRUE(p50.overflow);
}

TEST(MetricsTest, ToTextMarksOverflowedPercentiles) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("phase.tail.micros", {10, 100});
  for (int i = 0; i < 9; ++i) h.Observe(5);
  h.Observe(50'000);
  std::string text = registry.ToText();
  // p50 is a normal in-range estimate; p99 landed beyond the last bound,
  // so it carries the '>' lower-bound marker.
  EXPECT_NE(text.find("p50~10"), std::string::npos) << text;
  EXPECT_NE(text.find("p99~>100"), std::string::npos) << text;
}

TEST(MetricsTest, ConcurrentCounterUpdates) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter& c = registry.GetCounter("eval.nodes_touched");
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("eval.nodes_touched").value(),
            uint64_t{kThreads} * kPerThread);
}

TEST(MetricsTest, JsonExportRoundTrips) {
  MetricsRegistry registry;
  registry.GetCounter("rewrite.queries").Add(7);
  registry.GetGauge("policy.nurse.cache_size").Set(2);
  registry.GetHistogram("phase.rewrite.micros", {10, 100}).Observe(42);

  auto parsed = Json::Parse(registry.ToJsonString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->Equals(registry.ToJson()));

  const Json* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("rewrite.queries")->AsNumber(), 7.0);
  const Json* hist = parsed->Find("histograms")->Find("phase.rewrite.micros");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(hist->Find("sum")->AsNumber(), 42.0);
  // Buckets: le=10 (0), le=100 (1), le=inf (0).
  const Json* buckets = hist->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->items().size(), 3u);
  EXPECT_DOUBLE_EQ(buckets->items()[1].Find("count")->AsNumber(), 1.0);
  EXPECT_EQ(buckets->items()[2].Find("le")->AsString(), "inf");
}

TEST(MetricsTest, TextExportListsInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("engine.queries").Add(3);
  registry.GetHistogram("phase.parse.micros").Observe(5);
  std::string text = registry.ToText();
  EXPECT_NE(text.find("engine.queries = 3"), std::string::npos);
  EXPECT_NE(text.find("phase.parse.micros"), std::string::npos);
  EXPECT_NE(text.find("count=1"), std::string::npos);
}

TEST(MetricsTest, CollectTakesAConsistentSnapshot) {
  MetricsRegistry registry;
  registry.GetCounter("engine.queries").Add(3);
  registry.GetGauge("engine.policies").Set(2);
  registry.GetHistogram("phase.rewrite.micros", {10, 100}).Observe(42);

  MetricsSnapshot snapshot = registry.Collect();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].first, "engine.queries");
  EXPECT_EQ(snapshot.counters[0].second, 3u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].second, 2);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const MetricsSnapshot::HistogramSnapshot& h = snapshot.histograms[0];
  EXPECT_EQ(h.name, "phase.rewrite.micros");
  ASSERT_EQ(h.bounds.size(), 2u);
  ASSERT_EQ(h.buckets.size(), 3u);  // bounds + overflow
  EXPECT_EQ(h.count, 1u);
  EXPECT_EQ(h.sum, 42u);
  uint64_t bucket_total = 0;
  for (uint64_t b : h.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count);
  // The snapshot is detached: later updates do not alter it.
  registry.GetCounter("engine.queries").Add(10);
  EXPECT_EQ(snapshot.counters[0].second, 3u);
}

// -- Prometheus export --------------------------------------------------

TEST(ExportTest, PrometheusMetricNameSanitizes) {
  EXPECT_EQ(PrometheusMetricName("engine.queries"), "secview_engine_queries");
  EXPECT_EQ(PrometheusMetricName("policy.nurse.cache_size"),
            "secview_policy_nurse_cache_size");
  EXPECT_EQ(PrometheusMetricName("weird-name!", "ns"), "ns_weird_name_");
  // Without a namespace a leading digit gets an underscore prefix.
  EXPECT_EQ(PrometheusMetricName("9lives", ""), "_9lives");
}

TEST(ExportTest, RenderedTextValidatesAndCoversEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("engine.queries").Add(5);
  registry.GetGauge("engine.policies").Set(-1);
  Histogram& h = registry.GetHistogram("phase.rewrite.micros", {10, 100});
  h.Observe(7);
  h.Observe(5000);

  std::string text = RenderPrometheusText(registry.Collect());
  Status valid = ValidatePrometheusText(text);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << text;

  EXPECT_NE(text.find("# TYPE secview_engine_queries counter"),
            std::string::npos);
  EXPECT_NE(text.find("secview_engine_queries_total 5"), std::string::npos);
  EXPECT_NE(text.find("secview_engine_policies -1"), std::string::npos);
  // Histogram buckets are cumulative and end with +Inf; _sum and _count
  // follow.
  EXPECT_NE(text.find("secview_phase_rewrite_micros_bucket{le=\"10\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("secview_phase_rewrite_micros_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("secview_phase_rewrite_micros_sum 5007"),
            std::string::npos);
  EXPECT_NE(text.find("secview_phase_rewrite_micros_count 2"),
            std::string::npos);
}

TEST(ExportTest, ValidatorRejectsMalformedText) {
  EXPECT_TRUE(ValidatePrometheusText("").ok());
  EXPECT_TRUE(ValidatePrometheusText("# just a comment\n").ok());
  EXPECT_FALSE(ValidatePrometheusText("# TYPE m spaceship\n").ok());
  EXPECT_FALSE(ValidatePrometheusText("9bad_name 1\n").ok());
  EXPECT_FALSE(ValidatePrometheusText("name_without_value\n").ok());
  EXPECT_FALSE(ValidatePrometheusText("m{unclosed=\"x\" 1\n").ok());
  EXPECT_FALSE(ValidatePrometheusText("m not_a_number\n").ok());
  EXPECT_TRUE(ValidatePrometheusText("m{le=\"+Inf\"} 3\nm_sum 4\n").ok());
}

TEST(ExportTest, ValidatorRequiresTrailingNewline) {
  // A non-empty exposition must end in '\n'; scrapers treat a missing
  // terminator as a truncated response.
  EXPECT_FALSE(ValidatePrometheusText("m 1").ok());
  EXPECT_TRUE(ValidatePrometheusText("m 1\n").ok());
  EXPECT_FALSE(ValidatePrometheusText("m 1\nm2 2").ok());
}

TEST(ExportTest, ValidatorAcceptsEscapedLabelValues) {
  EXPECT_TRUE(
      ValidatePrometheusText("m{path=\"a\\\\b\",msg=\"say \\\"hi\\\"\"} 1\n")
          .ok());
  EXPECT_TRUE(ValidatePrometheusText("m{note=\"line\\nbreak\"} 1\n").ok());
  // An unescaped quote inside a value terminates it early and leaves
  // garbage before the closing brace.
  EXPECT_FALSE(ValidatePrometheusText("m{msg=\"say \"hi\"\"} 1\n").ok());
}

TEST(ExportTest, RenderIncludesProcessAndBuildInfo) {
  MetricsRegistry registry;
  registry.GetCounter("engine.queries").Add(1);
  std::string text = RenderPrometheusText(registry.Collect());
  Status valid = ValidatePrometheusText(text);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << text;

  // Every render carries the process-level series so any scrape can
  // detect a restart and identify the answering binary.
  EXPECT_NE(text.find("secview_process_start_time_unix "), std::string::npos);
  EXPECT_NE(text.find("secview_process_uptime_ms "), std::string::npos);
  EXPECT_NE(text.find("secview_build_info{version=\""), std::string::npos);
  EXPECT_NE(text.find("compiler=\""), std::string::npos);
  EXPECT_NE(text.find("std=\""), std::string::npos);
  EXPECT_EQ(text.back(), '\n');

  // The standalone process render validates on its own too, and its
  // start time is stable across calls (a scraper keys restarts off it).
  std::string info = RenderProcessInfoText();
  EXPECT_TRUE(ValidatePrometheusText(info).ok()) << info;
  std::string again = RenderProcessInfoText();
  auto start_line = [](const std::string& t) {
    size_t at = t.find("secview_process_start_time_unix ");
    return t.substr(at, t.find('\n', at) - at);
  };
  EXPECT_EQ(start_line(info), start_line(again));
}

TEST(ExportTest, MetricsV1DocumentMatchesRegistryExport) {
  MetricsRegistry registry;
  registry.GetCounter("engine.queries").Add(3);
  registry.GetGauge("engine.policies").Set(2);
  registry.GetHistogram("phase.eval.micros", {10, 100}).Observe(42);

  Json doc = MetricsV1Document(registry.Collect());
  EXPECT_EQ(doc.Find("schema")->AsString(), "secview.metrics.v1");
  EXPECT_DOUBLE_EQ(doc.Find("counters")->Find("engine.queries")->AsNumber(),
                   3.0);
  EXPECT_DOUBLE_EQ(doc.Find("gauges")->Find("engine.policies")->AsNumber(),
                   2.0);
  const Json* hist = doc.Find("histograms")->Find("phase.eval.micros");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(hist->Find("sum")->AsNumber(), 42.0);
  // bounds + the +Inf overflow bucket.
  EXPECT_EQ(hist->Find("buckets")->items().size(), 3u);
  // The document round-trips through the JSON parser.
  auto parsed = Json::Parse(doc.Dump(true));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->Equals(doc));
}

TEST(ExportTest, SnapshotWriterWritesBothFormatsAtomically) {
  MetricsRegistry registry;
  registry.GetCounter("engine.queries").Add(2);
  std::string dir = testing::TempDir() + "/secview_snap_once";
  std::filesystem::remove_all(dir);

  MetricsSnapshotWriter writer(&registry, dir);
  Status wrote = writer.WriteOnce();
  ASSERT_TRUE(wrote.ok()) << wrote.ToString();
  EXPECT_EQ(writer.writes(), 1u);

  std::ifstream prom(dir + "/metrics.prom");
  ASSERT_TRUE(prom.good());
  std::stringstream prom_text;
  prom_text << prom.rdbuf();
  EXPECT_TRUE(ValidatePrometheusText(prom_text.str()).ok());
  EXPECT_NE(prom_text.str().find("secview_engine_queries_total 2"),
            std::string::npos);

  std::ifstream json(dir + "/metrics.json");
  ASSERT_TRUE(json.good());
  std::stringstream json_text;
  json_text << json.rdbuf();
  auto parsed = Json::Parse(json_text.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("schema")->AsString(), "secview.metrics.v1");
  EXPECT_DOUBLE_EQ(
      parsed->Find("counters")->Find("engine.queries")->AsNumber(), 2.0);
  // No temp files survive the atomic rename.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp."),
              std::string::npos);
  }
}

TEST(ExportTest, SnapshotWriterBackgroundLoopAndFinalWrite) {
  MetricsRegistry registry;
  registry.GetCounter("engine.queries").Add(1);
  std::string dir = testing::TempDir() + "/secview_snap_loop";
  std::filesystem::remove_all(dir);

  MetricsSnapshotWriter::Options options;
  options.interval = std::chrono::milliseconds(5);
  MetricsSnapshotWriter writer(&registry, dir, options);
  writer.Start();
  // Let the loop tick at least once, then update and stop; Stop() must
  // flush a final snapshot carrying the latest values.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  registry.GetCounter("engine.queries").Add(41);
  writer.Stop();
  EXPECT_GE(writer.writes(), 1u);

  std::ifstream prom(dir + "/metrics.prom");
  ASSERT_TRUE(prom.good());
  std::stringstream text;
  text << prom.rdbuf();
  EXPECT_NE(text.str().find("secview_engine_queries_total 42"),
            std::string::npos)
      << text.str();
  // Stop is idempotent and Start/Stop can cycle.
  writer.Stop();
  writer.Start();
  writer.Stop();
}

TEST(ExportTest, SnapshotWriterReportsUnusableDirectory) {
  MetricsRegistry registry;
  registry.GetCounter("engine.queries").Add(1);
  // A regular file where the snapshot directory should go: the
  // create_directories step (or the write below it) must fail, and the
  // error must surface from WriteOnce rather than being swallowed.
  // (chmod-based setups don't work here — the suite may run as root.)
  std::string blocker = testing::TempDir() + "/secview_snap_blocker";
  std::filesystem::remove_all(blocker);
  std::ofstream(blocker) << "not a directory";

  MetricsSnapshotWriter writer(&registry, blocker + "/snapshots");
  Status wrote = writer.WriteOnce();
  EXPECT_FALSE(wrote.ok());
  EXPECT_EQ(writer.writes(), 0u);

  // The background loop and Stop()'s final flush tolerate the same
  // persistent failure: no crash, no partial files, still zero writes.
  writer.Start();
  writer.Stop();
  EXPECT_EQ(writer.writes(), 0u);
  EXPECT_FALSE(std::filesystem::exists(blocker + "/snapshots"));
  std::filesystem::remove(blocker);
}

// -- Trace --------------------------------------------------------------

TEST(TraceTest, SpanNesting) {
  Trace trace("query");
  {
    ScopedSpan rewrite(&trace, "rewrite");
    rewrite.SetAttr("dp_entries", uint64_t{26});
    { ScopedSpan unfold(&trace, "unfold"); }
  }
  { ScopedSpan evaluate(&trace, "evaluate"); }
  trace.Finish();

  const Span& root = trace.root();
  EXPECT_EQ(root.name, "query");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->name, "rewrite");
  ASSERT_EQ(root.children[0]->children.size(), 1u);
  EXPECT_EQ(root.children[0]->children[0]->name, "unfold");
  EXPECT_EQ(root.children[1]->name, "evaluate");
  EXPECT_EQ(root.TreeSize(), 4u);

  const Span* rewrite = root.FindSpan("rewrite");
  ASSERT_NE(rewrite, nullptr);
  const std::string* dp = rewrite->FindAttr("dp_entries");
  ASSERT_NE(dp, nullptr);
  EXPECT_EQ(*dp, "26");
  EXPECT_EQ(root.FindSpan("nope"), nullptr);
}

TEST(TraceTest, NullTraceIsNoOp) {
  ScopedSpan span(nullptr, "anything");
  span.SetAttr("k", "v");  // must not crash
  EXPECT_EQ(span.span(), nullptr);
}

TEST(TraceTest, JsonExportRoundTrips) {
  Trace trace("query");
  {
    ScopedSpan parse(&trace, "parse");
    parse.SetAttr("ast_size", 5);
  }
  { ScopedSpan evaluate(&trace, "evaluate"); }
  auto parsed = Json::Parse(trace.ToJsonString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("name")->AsString(), "query");
  const Json* children = parsed->Find("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->items().size(), 2u);
  EXPECT_EQ(children->items()[0].Find("name")->AsString(), "parse");
  EXPECT_EQ(children->items()[0].Find("attrs")->Find("ast_size")->AsString(),
            "5");
}

TEST(TraceTest, ScopedTimerAccumulates) {
  MetricsRegistry registry;
  Histogram& hist = registry.GetHistogram("phase.evaluate.micros");
  uint64_t total = 0;
  { ScopedTimer timer(&hist, &total); }
  { ScopedTimer timer(&total); }
  EXPECT_EQ(hist.count(), 1u);
  // Durations can legitimately round to 0us; the accumulator must at
  // least have been written without crashing.
  EXPECT_GE(total, hist.sum());
}

// -- PolicyStatsTable ---------------------------------------------------

TEST(PolicyStatsTest, RollsUpPerPolicy) {
  PolicyStatsTable table;
  table.Record("nurse", ServeOutcome::kOk, 100, 10, 4096);
  table.Record("nurse", ServeOutcome::kOk, 300, 20, 8192);
  table.Record("nurse", ServeOutcome::kDenied, 50, 0, 0);
  table.Record("admin", ServeOutcome::kTimeout, 9000, 5, 1024);
  EXPECT_EQ(table.policies(), 2u);
  EXPECT_EQ(table.total(), 4u);

  std::vector<PolicyStatsTable::PolicySnapshot> rows = table.Snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].policy, "admin");  // sorted by policy id
  EXPECT_EQ(rows[0].timeout, 1u);
  EXPECT_EQ(rows[1].policy, "nurse");
  EXPECT_EQ(rows[1].queries, 3u);
  EXPECT_EQ(rows[1].ok, 2u);
  EXPECT_EQ(rows[1].denied, 1u);
  EXPECT_EQ(rows[1].nodes_touched, 30u);
  EXPECT_EQ(rows[1].alloc_bytes, 12288u);
  EXPECT_EQ(rows[1].latency_sum_micros, 450u);
  EXPECT_GT(rows[1].p50_micros, 0u);
  EXPECT_GE(rows[1].p99_micros, rows[1].p50_micros);
}

TEST(PolicyStatsTest, PercentilesTrackBucketBounds) {
  PolicyStatsTable::Options options;
  options.latency_bounds = {10, 100, 1000};
  PolicyStatsTable table(options);
  for (int i = 0; i < 99; ++i) {
    table.Record("p", ServeOutcome::kOk, 5, 0, 0);  // first bucket
  }
  table.Record("p", ServeOutcome::kOk, 50'000, 0, 0);  // overflow
  std::vector<PolicyStatsTable::PolicySnapshot> rows = table.Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].p50_micros, 10u);
  EXPECT_EQ(rows[0].p99_micros, 10u);
  EXPECT_FALSE(rows[0].p99_overflow);
  // Push the tail into the overflow bucket: p99 becomes a lower bound.
  for (int i = 0; i < 30; ++i) {
    table.Record("p", ServeOutcome::kOk, 50'000, 0, 0);
  }
  rows = table.Snapshot();
  EXPECT_TRUE(rows[0].p99_overflow);
  EXPECT_EQ(rows[0].p99_micros, 1000u);
}

TEST(PolicyStatsTest, ManyPoliciesAcrossStripes) {
  PolicyStatsTable::Options options;
  options.stripes = 4;
  PolicyStatsTable table(options);
  for (int i = 0; i < 100; ++i) {
    table.Record("policy" + std::to_string(i), ServeOutcome::kOk, 10, 1, 1);
  }
  EXPECT_EQ(table.policies(), 100u);
  EXPECT_EQ(table.total(), 100u);
  std::vector<PolicyStatsTable::PolicySnapshot> rows = table.Snapshot();
  ASSERT_EQ(rows.size(), 100u);
  // Snapshot is globally sorted even though storage is striped.
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].policy, rows[i].policy);
  }
}

TEST(PolicyStatsTest, RenderedTextValidatesWithHostileIds) {
  PolicyStatsTable table;
  // Label-value torture: backslash, double quote, newline — the three
  // characters the Prometheus text format escapes.
  table.Record("role\\with\"quotes\"\nand newline", ServeOutcome::kOk, 100, 1,
               64);
  table.Record("plain", ServeOutcome::kDenied, 5, 0, 0);
  std::string text = RenderPolicyStatsText(table.Snapshot());
  Status status = ValidatePrometheusText(text);
  EXPECT_TRUE(status.ok()) << status.ToString() << "\n" << text;
  EXPECT_NE(text.find("policy=\"role\\\\with\\\"quotes\\\"\\nand newline\""),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("secview_policy_outcome_total{policy=\"plain\","
                      "outcome=\"denied\"} 1"),
            std::string::npos)
      << text;
}

TEST(PolicyStatsTest, EmptyTableRendersNothing) {
  PolicyStatsTable table;
  EXPECT_EQ(RenderPolicyStatsText(table.Snapshot()), "");
  Json doc = PolicyStatsJson(table.Snapshot());
  EXPECT_TRUE(doc.members().empty());
}

TEST(PolicyStatsTest, JsonSectionCarriesCounts) {
  PolicyStatsTable table;
  table.Record("nurse", ServeOutcome::kOk, 250, 12, 2048);
  Json doc = PolicyStatsJson(table.Snapshot());
  const Json* nurse = doc.Find("nurse");
  ASSERT_NE(nurse, nullptr);
  EXPECT_EQ(nurse->Find("queries")->AsNumber(), 1);
  EXPECT_EQ(nurse->Find("alloc_bytes")->AsNumber(), 2048);
  EXPECT_EQ(nurse->Find("nodes_touched")->AsNumber(), 12);
}

// -- RequestTraceStore --------------------------------------------------

// Trace is neither copyable nor movable; fill a caller-owned one.
void FillTrace(Trace& trace) {
  {
    ScopedSpan rewrite(&trace, "rewrite");
    rewrite.SetAttr("cache", "miss");
  }
  ScopedSpan evaluate(&trace, "evaluate");
}

TEST(TraceStoreTest, DisabledByDefault) {
  RequestTraceStore store;
  EXPECT_FALSE(store.enabled());
  Trace trace("q");
  FillTrace(trace);
  store.Offer("nurse", "//a", Status::OK(), 10, trace);
  EXPECT_TRUE(store.Snapshot().empty());
}

TEST(TraceStoreTest, SamplesEveryNth) {
  RequestTraceStore::Options options;
  options.sample_every = 3;
  options.slow_micros = 1'000'000;
  RequestTraceStore store(options);
  for (int i = 0; i < 9; ++i) {
    Trace trace("q");
    FillTrace(trace);
    store.Offer("nurse", "//a", Status::OK(), 10, trace);
  }
  EXPECT_EQ(store.offered(), 9u);
  std::vector<RequestTraceStore::Entry> entries = store.Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  for (const auto& e : entries) {
    EXPECT_EQ(e.reason, "sampled");
    EXPECT_EQ(e.outcome, ServeOutcome::kOk);
  }
}

TEST(TraceStoreTest, AlwaysKeepsSlowAndNonOk) {
  RequestTraceStore::Options options;
  options.sample_every = 1'000'000;  // head sampling essentially never
  options.slow_micros = 500;
  RequestTraceStore store(options);
  {
    // Request #0 always matches 1-in-N head sampling; burn it so the
    // assertions below isolate the always-keep rules.
    Trace t("warmup");
    FillTrace(t);
    store.Offer("p", "//warmup", Status::OK(), 10, t);
  }
  {
    Trace t("fast");
    FillTrace(t);
    store.Offer("p", "//fast", Status::OK(), 10, t);
  }
  {
    Trace t("slow");
    FillTrace(t);
    store.Offer("p", "//slow", Status::OK(), 900, t);
  }
  {
    Trace t("denied");
    FillTrace(t);
    store.Offer("p", "//denied", Status::InvalidArgument("no"), 20, t);
  }
  {
    Trace t("timeout");
    FillTrace(t);
    store.Offer("p", "//deadline", Status::DeadlineExceeded("late"), 30, t);
  }
  std::vector<RequestTraceStore::Entry> entries = store.Snapshot();
  ASSERT_EQ(entries.size(), 4u);  // newest first; "fast" dropped
  EXPECT_EQ(entries[0].reason, "timeout");
  EXPECT_EQ(entries[1].reason, "denied");
  EXPECT_EQ(entries[2].reason, "slow");
  EXPECT_EQ(entries[3].reason, "sampled");  // the warmup request
  EXPECT_EQ(entries[0].outcome, ServeOutcome::kTimeout);
  EXPECT_EQ(entries[1].outcome, ServeOutcome::kDenied);
}

TEST(TraceStoreTest, RingWrapsKeepingNewest) {
  RequestTraceStore::Options options;
  options.sample_every = 1;
  options.capacity = 4;
  RequestTraceStore store(options);
  for (int i = 0; i < 10; ++i) {
    Trace t("q");
    FillTrace(t);
    store.Offer("p", "//q" + std::to_string(i), Status::OK(), 10, t);
  }
  std::vector<RequestTraceStore::Entry> entries = store.Snapshot();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].query, "//q9");
  EXPECT_EQ(entries[3].query, "//q6");
  EXPECT_EQ(store.retained(), 10u);
}

TEST(TraceStoreTest, TraceIdsUniqueAndStableAcrossScrapes) {
  RequestTraceStore::Options options;
  options.sample_every = 1;
  RequestTraceStore store(options);
  for (int i = 0; i < 8; ++i) {
    Trace t("q");
    FillTrace(t);
    store.Offer("p", "//a", Status::OK(), 10, t);
  }
  std::vector<RequestTraceStore::Entry> first = store.Snapshot();
  std::vector<RequestTraceStore::Entry> second = store.Snapshot();
  ASSERT_EQ(first.size(), 8u);
  std::set<std::string> ids;
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].trace_id, second[i].trace_id);
    EXPECT_EQ(first[i].trace_id.size(), 16u);
    for (char c : first[i].trace_id) {
      EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
          << first[i].trace_id;
    }
    ids.insert(first[i].trace_id);
  }
  EXPECT_EQ(ids.size(), 8u);
}

TEST(TraceStoreTest, JsonlAndTextRenderings) {
  RequestTraceStore::Options options;
  options.sample_every = 1;
  RequestTraceStore store(options);
  Trace t("q");
  FillTrace(t);
  store.Offer("nurse", "//patient//bill", Status::OK(), 42, t);

  std::string jsonl = store.SnapshotJsonl();
  ASSERT_FALSE(jsonl.empty());
  EXPECT_EQ(jsonl.back(), '\n');
  auto parsed = Json::Parse(jsonl.substr(0, jsonl.size() - 1));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("schema")->AsString(), "secview.trace.v1");
  EXPECT_EQ(parsed->Find("policy")->AsString(), "nurse");
  EXPECT_EQ(parsed->Find("outcome")->AsString(), "ok");
  const Json* spans = parsed->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_NE(spans->Find("children"), nullptr);
  EXPECT_EQ(spans->Find("children")->items().size(), 2u);

  std::string text = store.SnapshotText();
  EXPECT_NE(text.find("//patient//bill"), std::string::npos);
  EXPECT_NE(text.find("rewrite"), std::string::npos);
  EXPECT_NE(text.find("evaluate"), std::string::npos);
}

// -- trace-export -------------------------------------------------------

std::string OneTraceJsonl() {
  RequestTraceStore::Options options;
  options.sample_every = 1;
  RequestTraceStore store(options);
  Trace t("q");
  FillTrace(t);
  store.Offer("nurse", "//patient//bill", Status::OK(), 42, t);
  Trace slow("q");
  FillTrace(slow);
  store.Offer("admin", "//audit", Status::InvalidArgument("x"), 10, slow);
  return store.SnapshotJsonl();
}

TEST(TraceExportTest, ValidatesStoreOutput) {
  std::string jsonl = OneTraceJsonl();
  auto traces = ParseTraceJsonl(jsonl);
  ASSERT_TRUE(traces.ok()) << traces.status().ToString();
  EXPECT_EQ(traces->size(), 2u);
}

TEST(TraceExportTest, RejectsWrongSchemaAndMissingFields) {
  EXPECT_FALSE(ValidateTraceLine("{\"schema\":\"other.v1\"}").ok());
  EXPECT_FALSE(ValidateTraceLine("not json").ok());
  EXPECT_FALSE(ParseTraceJsonl("{\"schema\":\"secview.trace.v1\"}\n").ok());
  // A full line minus one required field must fail too.
  std::string jsonl = OneTraceJsonl();
  std::string line = jsonl.substr(0, jsonl.find('\n'));
  auto doc = Json::Parse(line);
  ASSERT_TRUE(doc.ok());
  Json broken = *doc;
  broken.Set("latency_micros", Json("not a number"));
  EXPECT_FALSE(ValidateTraceLine(broken.Dump(false)).ok());
}

TEST(TraceExportTest, ChromeTraceIsStructurallyLoadable) {
  auto traces = ParseTraceJsonl(OneTraceJsonl());
  ASSERT_TRUE(traces.ok());
  auto chrome = ChromeTraceJson(*traces);
  ASSERT_TRUE(chrome.ok()) << chrome.status().ToString();
  const Json* events = chrome->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Per trace: 1 metadata event + 1 root span + 2 children = 4.
  ASSERT_EQ(events->items().size(), 8u);
  bool saw_meta = false, saw_complete = false;
  for (const Json& ev : events->items()) {
    const std::string ph = ev.Find("ph")->AsString();
    if (ph == "M") {
      saw_meta = true;
      EXPECT_EQ(ev.Find("name")->AsString(), "thread_name");
      ASSERT_NE(ev.Find("args"), nullptr);
      EXPECT_NE(ev.Find("args")->Find("name"), nullptr);
    } else {
      ASSERT_EQ(ph, "X");
      saw_complete = true;
      EXPECT_NE(ev.Find("name"), nullptr);
      EXPECT_NE(ev.Find("ts"), nullptr);
      EXPECT_NE(ev.Find("dur"), nullptr);
      EXPECT_NE(ev.Find("pid"), nullptr);
      EXPECT_NE(ev.Find("tid"), nullptr);
    }
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_complete);
  // Distinct traces land on distinct tids so Perfetto draws two rows.
  std::set<std::string> tids;
  for (const Json& ev : events->items()) {
    tids.insert(ev.Find("tid")->Dump(false));
  }
  EXPECT_EQ(tids.size(), 2u);
}

TEST(TraceExportTest, EmptyInputYieldsEmptyEventList) {
  auto traces = ParseTraceJsonl("");
  ASSERT_TRUE(traces.ok());
  EXPECT_TRUE(traces->empty());
  auto chrome = ChromeTraceJson(*traces);
  ASSERT_TRUE(chrome.ok());
  EXPECT_TRUE(chrome->Find("traceEvents")->items().empty());
}

// -- secview.profile.v1 validation --------------------------------------

/// A well-formed plan step with `nodes` exclusive node touches, all
/// other numeric fields 1, and no children.
Json MakePlanStep(const std::string& sig, const std::string& axis,
                  uint64_t nodes) {
  Json step = Json::Object();
  step.Set("step", Json(sig));
  step.Set("axis", Json(axis));
  for (const char* field :
       {"invocations", "in", "out", "preds", "index_scans", "sort_skips",
        "self_nanos", "total_nanos", "alloc_bytes", "alloc_count"}) {
    step.Set(field, Json(uint64_t{1}));
  }
  step.Set("nodes", Json(nodes));
  step.Set("children", Json::Array());
  return step;
}

/// A profile line whose plan holds descendant::bill (3 nodes) with a
/// nested child::name (2 nodes); valid iff `total_nodes` == 5.
Json MakeProfileLine(uint64_t total_nodes) {
  Json doc = Json::Object();
  doc.Set("schema", Json("secview.profile.v1"));
  doc.Set("unix_micros", Json(uint64_t{1700000000000000}));
  doc.Set("policy", Json("nurse"));
  doc.Set("query", Json("//bill"));
  doc.Set("hot_step", Json("descendant::bill nodes=3"));
  Json counters = Json::Object();
  counters.Set("nodes_touched", Json(total_nodes));
  counters.Set("predicate_evals", Json(uint64_t{0}));
  counters.Set("index_scans", Json(uint64_t{0}));
  counters.Set("sort_skips", Json(uint64_t{0}));
  doc.Set("counters", std::move(counters));
  Json outer = MakePlanStep("descendant::bill", "descendant", 3);
  Json children = Json::Array();
  children.Append(MakePlanStep("child::name", "child", 2));
  outer.Set("children", std::move(children));
  doc.Set("plan", Json::Array().Append(std::move(outer)));
  return doc;
}

TEST(PlanProfileValidatorTest, AcceptsWellFormedLine) {
  Status ok = ValidateProfileLine(MakeProfileLine(5).Dump(false));
  EXPECT_TRUE(ok.ok()) << ok.message();
}

TEST(PlanProfileValidatorTest, RejectsSchemaAndFieldViolations) {
  EXPECT_FALSE(ValidateProfileLine("not json").ok());
  EXPECT_FALSE(ValidateProfileLine("[1,2]").ok());

  Json wrong_schema = MakeProfileLine(5);
  wrong_schema.Set("schema", Json("secview.trace.v1"));
  EXPECT_FALSE(ValidateProfileLine(wrong_schema.Dump(false)).ok());

  Json missing_hot = MakeProfileLine(5);
  missing_hot.Set("hot_step", Json(uint64_t{3}));  // wrong type
  EXPECT_FALSE(ValidateProfileLine(missing_hot.Dump(false)).ok());

  Json negative = MakeProfileLine(5);
  Json bad_plan = Json::Array();
  Json bad_step = MakePlanStep("child::x", "child", 5);
  bad_step.Set("self_nanos", Json(-1.0));
  bad_plan.Append(std::move(bad_step));
  negative.Set("plan", std::move(bad_plan));
  EXPECT_FALSE(ValidateProfileLine(negative.Dump(false)).ok());

  Json no_children = MakeProfileLine(5);
  Json plan = Json::Array();
  Json step = MakePlanStep("child::x", "child", 5);
  step.Set("children", Json("nope"));
  plan.Append(std::move(step));
  no_children.Set("plan", std::move(plan));
  EXPECT_FALSE(ValidateProfileLine(no_children.Dump(false)).ok());
}

TEST(PlanProfileValidatorTest, EnforcesNodesSumInvariant) {
  Status mismatch = ValidateProfileLine(MakeProfileLine(6).Dump(false));
  ASSERT_FALSE(mismatch.ok());
  EXPECT_NE(mismatch.message().find("nodes"), std::string::npos);
}

TEST(PlanProfileValidatorTest, JsonlParserNamesTheOffendingLine) {
  std::string good = MakeProfileLine(5).Dump(false);
  auto parsed = ParseProfileJsonl(good + "\n\n" + good + "\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->size(), 2u);

  auto bad = ParseProfileJsonl(good + "\n" + MakeProfileLine(6).Dump(false));
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos)
      << bad.status().message();
}

TEST(PlanProfileFlattenTest, MergesPositionsAndCountsQueriesOnce) {
  std::vector<PlanStepRecord> rows;
  Json line = MakeProfileLine(5);
  const Json* plan = line.Find("plan");
  ASSERT_NE(plan, nullptr);
  ASSERT_TRUE(FlattenProfilePlanJson(*plan, &rows).ok());
  ASSERT_EQ(rows.size(), 2u);
  for (const PlanStepRecord& row : rows) {
    EXPECT_EQ(row.queries, 1u) << row.signature;
  }

  // A second query's plan merges into the same rows: costs add, and
  // each signature's query count rises by one (not per position).
  ASSERT_TRUE(FlattenProfilePlanJson(*plan, &rows).ok());
  ASSERT_EQ(rows.size(), 2u);
  for (const PlanStepRecord& row : rows) {
    EXPECT_EQ(row.queries, 2u) << row.signature;
  }
  uint64_t nodes = 0;
  for (const PlanStepRecord& row : rows) nodes += row.nodes_touched;
  EXPECT_EQ(nodes, 10u);
}

TEST(PlanProfileRenderTest, EmptyTableRendersHeaderOnly) {
  std::string text = RenderPlanProfileText({}, 10, 0);
  EXPECT_EQ(text, "plan profile: 0 step(s) across 0 profiled query(s)\n");
}

}  // namespace
}  // namespace obs
}  // namespace secview
