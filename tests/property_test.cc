#include <algorithm>

#include <gtest/gtest.h>

#include "dtd/graph.h"
#include "dtd/validator.h"
#include "optimize/image_graph.h"
#include "optimize/optimizer.h"
#include "optimize/simulation.h"
#include "rewrite/rewriter.h"
#include "security/annotator.h"
#include "security/derive.h"
#include "security/materializer.h"
#include "workload/generator.h"
#include "workload/synthetic.h"
#include "xpath/evaluator.h"
#include "xpath/printer.h"

namespace secview {
namespace {

/// Randomized end-to-end properties: random DTD -> random policy ->
/// derived view -> random documents -> random queries, checking the
/// paper's theorems on every draw:
///   * derive soundness/completeness: Tv's non-dummy origins == the
///     accessible elements (Theorem 3.2);
///   * rewrite equivalence: p over Tv == rw(p) over T (Theorem 4.1);
///   * optimize equivalence: p == optimize(p) over instances (Sec. 5).
/// Documents where materialization aborts (specs without sound & complete
/// views for that instance) are skipped, mirroring the theorem's "iff
/// such a view exists" proviso.

class RandomPipelineTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RandomPipelineTest, DeriveMaterializeRewriteAgree) {
  Rng rng(GetParam());
  int materialized = 0;

  for (int round = 0; round < 12 && materialized < 6; ++round) {
    Dtd dtd = MakeRandomDtd(rng, 4 + static_cast<int>(rng.Below(12)));
    AccessSpec spec = MakeRandomSpec(dtd, rng, /*p_no=*/0.25, /*p_yes=*/0.2,
                                     /*p_qual=*/0.1);
    auto view = DeriveSecurityView(spec);
    ASSERT_TRUE(view.ok()) << view.status() << "\n" << spec.ToString();

    GeneratorOptions gen;
    gen.seed = rng.Next();
    gen.min_branching = 0;
    gen.max_branching = 3;
    auto doc = GenerateDocument(dtd, gen);
    ASSERT_TRUE(doc.ok()) << doc.status();
    ASSERT_TRUE(ValidateInstance(*doc, dtd).ok());

    auto tv = MaterializeView(*doc, *view, spec);
    if (!tv.ok()) {
      // Aborted materialization: no sound & complete view for this
      // instance (e.g. a dropped choice alternative was taken).
      ASSERT_EQ(tv.status().code(), StatusCode::kAborted) << tv.status();
      continue;
    }
    ++materialized;

    // -- Soundness & completeness of derive --------------------------------
    auto labeling = ComputeAccessibility(*doc, spec);
    ASSERT_TRUE(labeling.ok());
    std::vector<NodeId> accessible;
    for (NodeId n = 0; n < static_cast<NodeId>(doc->node_count()); ++n) {
      if (doc->IsElement(n) && labeling->accessible[n]) {
        accessible.push_back(n);
      }
    }
    std::vector<NodeId> origins =
        CollectViewOrigins(*tv, *view, /*include_dummies=*/false);
    EXPECT_EQ(origins, accessible)
        << "sound/complete violation\nspec:\n"
        << spec.ToString() << "\nview:\n"
        << view->DebugString();

    // -- Rewriting equivalence ---------------------------------------------
    for (int qi = 0; qi < 8; ++qi) {
      PathPtr q = MakeRandomViewQuery(*view, rng,
                                      1 + static_cast<int>(rng.Below(5)));
      auto rewritten = RewriteForDocument(*view, q, doc->Height());
      ASSERT_TRUE(rewritten.ok())
          << ToXPathString(q) << ": " << rewritten.status();

      auto on_view = EvaluateAtRoot(*tv, q);
      ASSERT_TRUE(on_view.ok());
      std::vector<NodeId> expected;
      for (NodeId n : *on_view) expected.push_back(tv->origin(n));
      std::sort(expected.begin(), expected.end());
      expected.erase(std::unique(expected.begin(), expected.end()),
                     expected.end());

      auto on_doc = EvaluateAtRoot(*doc, *rewritten);
      ASSERT_TRUE(on_doc.ok());
      EXPECT_EQ(*on_doc, expected)
          << "query " << ToXPathString(q) << "\nrewritten "
          << ToXPathString(*rewritten) << "\nspec:\n"
          << spec.ToString() << "\nview:\n"
          << view->DebugString() << "\ndoc height " << doc->Height();
    }
  }
  EXPECT_GT(materialized, 0) << "no random draw materialized";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipelineTest,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                         144, 233));

class RandomOptimizerTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RandomOptimizerTest, OptimizePreservesSemantics) {
  Rng rng(GetParam() * 7919);
  for (int round = 0; round < 6; ++round) {
    Dtd dtd = MakeRandomDtd(rng, 4 + static_cast<int>(rng.Below(12)));
    auto optimizer = QueryOptimizer::Create(dtd);
    ASSERT_TRUE(optimizer.ok());

    GeneratorOptions gen;
    gen.seed = rng.Next();
    gen.max_branching = 3;
    auto doc = GenerateDocument(dtd, gen);
    ASSERT_TRUE(doc.ok());

    for (int qi = 0; qi < 10; ++qi) {
      PathPtr q = MakeRandomDocQuery(dtd, rng,
                                     1 + static_cast<int>(rng.Below(5)));
      auto optimized = optimizer->Optimize(q);
      ASSERT_TRUE(optimized.ok()) << ToXPathString(q);

      auto before = EvaluateAtRoot(*doc, q);
      auto after = EvaluateAtRoot(*doc, *optimized);
      ASSERT_TRUE(before.ok());
      ASSERT_TRUE(after.ok());
      EXPECT_EQ(*before, *after)
          << ToXPathString(q) << " optimized to "
          << ToXPathString(*optimized) << "\nDTD:\n"
          << dtd.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOptimizerTest,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

/// Soundness of the approximate containment test (Proposition 5.1): if
/// image(p1, root) is simulated by image(p2, root), then on every
/// instance the result of p1 is a subset of the result of p2. The
/// converse (completeness) is explicitly not claimed by the paper.
class SimulationSoundnessTest : public testing::TestWithParam<uint64_t> {};

TEST_P(SimulationSoundnessTest, ClaimedContainmentHoldsOnInstances) {
  Rng rng(GetParam() * 104729);
  int claims = 0;
  for (int round = 0; round < 15; ++round) {
    Dtd dtd = MakeRandomDtd(rng, 4 + static_cast<int>(rng.Below(10)));
    DtdGraph graph(dtd);
    if (graph.IsRecursive()) continue;

    std::vector<XmlTree> docs;
    for (int d = 0; d < 3; ++d) {
      GeneratorOptions gen;
      gen.seed = rng.Next();
      gen.max_branching = 3;
      auto doc = GenerateDocument(dtd, gen);
      ASSERT_TRUE(doc.ok());
      docs.push_back(std::move(doc).value());
    }

    for (int qi = 0; qi < 12; ++qi) {
      PathPtr p1 = MakeRandomDocQuery(dtd, rng,
                                      1 + static_cast<int>(rng.Below(4)));
      PathPtr p2 = MakeRandomDocQuery(dtd, rng,
                                      1 + static_cast<int>(rng.Below(4)));
      ImageGraph g1 = BuildImageGraph(graph, p1, dtd.root());
      ImageGraph g2 = BuildImageGraph(graph, p2, dtd.root());
      if (!Simulates(g1, g2)) continue;
      ++claims;
      for (const XmlTree& doc : docs) {
        auto r1 = EvaluateAtRoot(doc, p1);
        auto r2 = EvaluateAtRoot(doc, p2);
        ASSERT_TRUE(r1.ok());
        ASSERT_TRUE(r2.ok());
        EXPECT_TRUE(std::includes(r2->begin(), r2->end(), r1->begin(),
                                  r1->end()))
            << ToXPathString(p1) << " claimed contained in "
            << ToXPathString(p2) << "\nDTD:\n"
            << dtd.ToString();
      }
    }
  }
  // The test is vacuous if the simulation never claims anything.
  EXPECT_GT(claims, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulationSoundnessTest,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/// The optimizer must never *grow* structural work: its output, when it
/// differs, is evaluated with no more node touches than the input on the
/// same document (a sanity property for the Table 1 claims, checked on
/// the descendant-heavy query shapes the naive baseline produces).
TEST(OptimizerWorkTest, DescendantQueriesGetCheaperOrEqual) {
  Rng rng(99);
  Dtd dtd = MakeRandomDtd(rng, 12);
  auto optimizer = QueryOptimizer::Create(dtd);
  ASSERT_TRUE(optimizer.ok());
  GeneratorOptions gen;
  gen.seed = 1234;
  gen.max_branching = 4;
  auto doc = GenerateDocument(dtd, gen);
  ASSERT_TRUE(doc.ok());

  int improved = 0;
  for (int qi = 0; qi < 20; ++qi) {
    PathPtr q = MakeRandomDocQuery(dtd, rng, 1 + rng.Below(4));
    auto optimized = optimizer->Optimize(q);
    ASSERT_TRUE(optimized.ok());

    XPathEvaluator before_eval(*doc);
    ASSERT_TRUE(before_eval.Evaluate(q, doc->root()).ok());
    XPathEvaluator after_eval(*doc);
    ASSERT_TRUE(after_eval.Evaluate(*optimized, doc->root()).ok());
    if (after_eval.work() < before_eval.work()) ++improved;
  }
  EXPECT_GT(improved, 0);
}

}  // namespace
}  // namespace secview
