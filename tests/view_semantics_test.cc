#include <algorithm>

#include <gtest/gtest.h>

#include "rewrite/rewriter.h"
#include "security/derive.h"
#include "security/materializer.h"
#include "security/spec_parser.h"
#include "workload/hospital.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace secview {
namespace {

/// Deeper structural checks of the derive algorithm's output beyond the
/// hospital/adex shapes covered in derive_test.cc.

SecurityView MustDerive(const Dtd& dtd, const std::string& spec_text) {
  auto spec = ParseAccessSpec(dtd, spec_text);
  EXPECT_TRUE(spec.ok()) << spec.status();
  auto view = DeriveSecurityView(*spec);
  EXPECT_TRUE(view.ok()) << view.status();
  return std::move(view).value();
}

Dtd BuildDtd(std::initializer_list<std::pair<const char*, ContentModel>>
                 types,
             const char* root) {
  Dtd dtd;
  for (const auto& [name, cm] : types) {
    EXPECT_TRUE(dtd.AddType(name, cm).ok()) << name;
  }
  EXPECT_TRUE(dtd.SetRoot(root).ok());
  EXPECT_TRUE(dtd.Finalize().ok());
  return dtd;
}

TEST(ViewSemanticsTest, ConditionalEdgeInsideHiddenRegion) {
  // r -> h (hidden); h -> (x, y); x conditionally accessible. The
  // qualifier must survive into sigma through the shortcut path
  // (Fig. 5, Proc_InAcc step 9).
  Dtd dtd = BuildDtd({{"r", ContentModel::Sequence({"h"})},
                      {"h", ContentModel::Sequence({"x", "y"})},
                      {"x", ContentModel::Text()},
                      {"y", ContentModel::Text()}},
                     "r");
  SecurityView view = MustDerive(dtd, R"(
    ann(r, h) = N
    ann(h, x) = [. = "go"]
    ann(h, y) = Y
  )");
  ViewTypeId r = view.root();
  ViewTypeId x = view.FindType("x");
  ASSERT_NE(x, kNullViewType);
  EXPECT_EQ(ToXPathString(view.Sigma(r, x)), "h/x[. = \"go\"]");

  // Semantics: with the qualifier failing, materialization aborts (a One
  // field yields no node).
  auto spec = ParseAccessSpec(dtd, R"(
    ann(r, h) = N
    ann(h, x) = [. = "go"]
    ann(h, y) = Y
  )");
  ASSERT_TRUE(spec.ok());
  auto good = ParseXml("<r><h><x>go</x><y>t</y></h></r>");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(MaterializeView(*good, view, *spec).ok());
  auto bad = ParseXml("<r><h><x>stop</x><y>t</y></h></r>");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(MaterializeView(*bad, view, *spec).status().code(),
            StatusCode::kAborted);
}

TEST(ViewSemanticsTest, NestedHiddenRegionsComposePaths) {
  // r -> h1 -> h2 -> x with h1, h2 hidden: sigma(r, x) = h1/h2/x.
  Dtd dtd = BuildDtd({{"r", ContentModel::Sequence({"h1"})},
                      {"h1", ContentModel::Sequence({"h2"})},
                      {"h2", ContentModel::Sequence({"x"})},
                      {"x", ContentModel::Text()}},
                     "r");
  SecurityView view = MustDerive(dtd, R"(
    ann(r, h1) = N
    ann(h2, x) = Y
  )");
  EXPECT_EQ(view.NumTypes(), 2);
  EXPECT_EQ(ToXPathString(view.Sigma(view.root(), view.FindType("x"))),
            "h1/h2/x");
}

TEST(ViewSemanticsTest, HiddenStarOfHiddenStarCollapses) {
  // r -> h*; h -> g*; g -> x: hiding h and g exposes x* with the composed
  // path (case 3 shortcut through two levels).
  Dtd dtd = BuildDtd({{"r", ContentModel::Star("h")},
                      {"h", ContentModel::Star("g")},
                      {"g", ContentModel::Sequence({"x"})},
                      {"x", ContentModel::Text()}},
                     "r");
  SecurityView view = MustDerive(dtd, R"(
    ann(r, h) = N
    ann(g, x) = Y
  )");
  const ViewProduction& prod = view.Production(view.root());
  ASSERT_EQ(prod.kind, ViewProduction::Kind::kFields);
  ASSERT_EQ(prod.fields.size(), 1u);
  EXPECT_EQ(prod.fields[0].child, "x");
  EXPECT_EQ(prod.fields[0].mult, ViewField::Multiplicity::kStar);
  EXPECT_EQ(ToXPathString(prod.fields[0].sigma), "h/g/x");

  // Round trip through a document: all x's surface directly under r.
  auto spec = ParseAccessSpec(dtd, "ann(r, h) = N\nann(g, x) = Y");
  ASSERT_TRUE(spec.ok());
  auto doc = ParseXml(
      "<r><h><g><x>1</x></g><g><x>2</x></g></h><h><g><x>3</x></g></h></r>");
  ASSERT_TRUE(doc.ok());
  auto tv = MaterializeView(*doc, view, *spec);
  ASSERT_TRUE(tv.ok()) << tv.status();
  EXPECT_EQ(ToXmlString(*tv), "<r><x>1</x><x>2</x><x>3</x></r>");
}

TEST(ViewSemanticsTest, MixedAccessibleAndHiddenUnderChoice) {
  // r -> (a | h); a visible, h hidden with a choice body: the hidden
  // disjunction splices into the parent disjunction (Fig. 5 case 2).
  Dtd dtd = BuildDtd({{"r", ContentModel::Choice({"a", "h"})},
                      {"h", ContentModel::Choice({"x", "y"})},
                      {"a", ContentModel::Text()},
                      {"x", ContentModel::Text()},
                      {"y", ContentModel::Text()}},
                     "r");
  SecurityView view = MustDerive(dtd, R"(
    ann(r, h) = N
    ann(h, x) = Y
    ann(h, y) = Y
  )");
  const ViewProduction& prod = view.Production(view.root());
  ASSERT_EQ(prod.kind, ViewProduction::Kind::kChoice);
  ASSERT_EQ(prod.choice.alts.size(), 3u);
  EXPECT_EQ(prod.choice.alts[0].child, "a");
  EXPECT_EQ(prod.choice.alts[1].child, "x");
  EXPECT_EQ(ToXPathString(prod.choice.alts[1].sigma), "h/x");
  EXPECT_EQ(prod.choice.alts[2].child, "y");
}

TEST(ViewSemanticsTest, TypeBothAccessibleAndHidden) {
  // 'x' is accessible under a but hidden (with accessible child) under b:
  // the view has an 'x' type AND a dummy standing for the hidden x.
  Dtd dtd = BuildDtd({{"r", ContentModel::Sequence({"a", "b"})},
                      {"a", ContentModel::Sequence({"x"})},
                      {"b", ContentModel::Sequence({"x"})},
                      {"x", ContentModel::Choice({"u", "v"})},
                      {"u", ContentModel::Text()},
                      {"v", ContentModel::Text()}},
                     "r");
  SecurityView view = MustDerive(dtd, R"(
    ann(b, x) = N
    ann(x, u) = Y
    ann(x, v) = Y
  )");
  ViewTypeId x = view.FindType("x");
  ASSERT_NE(x, kNullViewType);
  EXPECT_FALSE(view.type(x).is_dummy);
  // b's production carries a dummy for the hidden x (its choice body
  // cannot be spliced into b's sequence).
  const ViewProduction& b = view.Production(view.FindType("b"));
  ASSERT_EQ(b.kind, ViewProduction::Kind::kFields);
  ASSERT_EQ(b.fields.size(), 1u);
  ViewTypeId dummy = view.FindType(b.fields[0].child);
  EXPECT_TRUE(view.type(dummy).is_dummy);
  EXPECT_EQ(view.type(dummy).doc_type, dtd.FindType("x"));
}

TEST(ViewSemanticsTest, SizeCountsTypesAndSlots) {
  Dtd dtd = MakeHospitalDtd();
  auto spec = MakeNurseSpec(dtd);
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());
  // 15 view types (13 named + 2 dummies) plus one slot per field/alt.
  EXPECT_EQ(view->NumTypes(), 15);
  EXPECT_GT(view->Size(), view->NumTypes());
}

TEST(ViewSemanticsTest, EdgesMatchSigma) {
  Dtd dtd = MakeHospitalDtd();
  auto spec = MakeNurseSpec(dtd);
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());
  for (ViewTypeId id = 0; id < view->NumTypes(); ++id) {
    for (const SecurityView::Edge& e : view->Edges(id)) {
      PathPtr sigma = view->Sigma(id, e.child);
      ASSERT_NE(sigma, nullptr);
      EXPECT_TRUE(PathEquals(sigma, e.sigma));
    }
  }
  // Sigma of a non-edge is null.
  EXPECT_EQ(view->Sigma(view->FindType("bill"), view->root()), nullptr);
}

TEST(ViewSemanticsTest, QualifierOnStarChildFiltersInsteadOfAborting) {
  // Conditional star children just filter (case 5 of the semantics).
  Dtd dtd = BuildDtd({{"r", ContentModel::Star("item")},
                      {"item", ContentModel::Text()}},
                     "r");
  auto spec = ParseAccessSpec(dtd, "ann(r, item) = [. = \"keep\"]");
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());
  auto doc = ParseXml(
      "<r><item>keep</item><item>drop</item><item>keep</item></r>");
  ASSERT_TRUE(doc.ok());
  auto tv = MaterializeView(*doc, *view, *spec);
  ASSERT_TRUE(tv.ok()) << tv.status();
  EXPECT_EQ(ToXmlString(*tv), "<r><item>keep</item><item>keep</item></r>");

  // And the rewritten query agrees.
  auto rewriter = QueryRewriter::Create(*view);
  ASSERT_TRUE(rewriter.ok());
  auto q = ParseXPath("item");
  ASSERT_TRUE(q.ok());
  auto rewritten = rewriter->Rewrite(*q);
  ASSERT_TRUE(rewritten.ok());
  auto result = EvaluateAtRoot(*doc, *rewritten);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(ViewSemanticsTest, RootOnlyViewAnswersEpsilonQueries) {
  Dtd dtd = BuildDtd({{"r", ContentModel::Star("s")},
                      {"s", ContentModel::Text()}},
                     "r");
  SecurityView view = MustDerive(dtd, "ann(r, s) = N");
  EXPECT_EQ(view.NumTypes(), 1);
  auto rewriter = QueryRewriter::Create(view);
  ASSERT_TRUE(rewriter.ok());
  auto dot = rewriter->Rewrite(ParseXPath(".").value());
  ASSERT_TRUE(dot.ok());
  EXPECT_EQ(ToXPathString(*dot), ".");
  auto s = rewriter->Rewrite(ParseXPath("//s").value());
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*s)->kind, PathKind::kEmptySet);
}

TEST(ViewSemanticsTest, DebugStringMentionsDummiesAndSigma) {
  Dtd dtd = MakeHospitalDtd();
  auto spec = MakeNurseSpec(dtd);
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());
  std::string text = view->DebugString();
  EXPECT_NE(text.find("(dummy for trial)"), std::string::npos) << text;
  EXPECT_NE(text.find("sigma(treatment,"), std::string::npos);
}

}  // namespace
}  // namespace secview
