#include <algorithm>

#include <gtest/gtest.h>

#include "dtd/validator.h"
#include "security/annotator.h"
#include "security/derive.h"
#include "security/materializer.h"
#include "security/spec_parser.h"
#include "workload/generator.h"
#include "workload/hospital.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace secview {
namespace {

class HospitalMaterializeTest : public testing::Test {
 protected:
  void SetUp() override {
    dtd_ = MakeHospitalDtd();
    auto spec = MakeNurseSpec(dtd_);
    ASSERT_TRUE(spec.ok());
    spec_ = std::make_unique<AccessSpec>(std::move(spec).value());
    auto view = DeriveSecurityView(*spec_);
    ASSERT_TRUE(view.ok()) << view.status();
    view_ = std::make_unique<SecurityView>(std::move(view).value());

    auto doc = ParseXml(R"(
      <hospital>
        <dept>
          <clinicalTrial>
            <patientInfo>
              <patient><name>carol</name><wardNo>3</wardNo>
                <treatment><trial><bill>90</bill></trial></treatment>
              </patient>
            </patientInfo>
            <test>blood</test>
          </clinicalTrial>
          <patientInfo>
            <patient><name>dave</name><wardNo>3</wardNo>
              <treatment><regular><bill>10</bill><medication>aspirin</medication></regular></treatment>
            </patient>
          </patientInfo>
          <staffInfo><staff><nurse>sue</nurse></staff></staffInfo>
        </dept>
        <dept>
          <clinicalTrial><patientInfo/><test>x</test></clinicalTrial>
          <patientInfo>
            <patient><name>erin</name><wardNo>7</wardNo>
              <treatment><trial><bill>55</bill></trial></treatment>
            </patient>
          </patientInfo>
          <staffInfo/>
        </dept>
      </hospital>
    )");
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = std::move(doc).value();
  }

  XmlTree Materialize(const std::string& ward) {
    MaterializeOptions options;
    options.bindings = {{"wardNo", ward}};
    auto tv = MaterializeView(doc_, *view_, *spec_, options);
    EXPECT_TRUE(tv.ok()) << tv.status();
    return std::move(tv).value();
  }

  Dtd dtd_;
  std::unique_ptr<AccessSpec> spec_;
  std::unique_ptr<SecurityView> view_;
  XmlTree doc_;
};

TEST_F(HospitalMaterializeTest, Ward3ViewKeepsOnlyWard3Dept) {
  XmlTree tv = Materialize("3");
  std::string xml = ToXmlString(tv);
  // Both ward-3 patients appear, including the trial patient.
  EXPECT_NE(xml.find("carol"), std::string::npos) << xml;
  EXPECT_NE(xml.find("dave"), std::string::npos);
  EXPECT_NE(xml.find("sue"), std::string::npos);
  // The other ward and all confidential labels are gone.
  EXPECT_EQ(xml.find("erin"), std::string::npos) << xml;
  EXPECT_EQ(xml.find("clinicalTrial"), std::string::npos);
  EXPECT_EQ(xml.find("<trial"), std::string::npos);
  EXPECT_EQ(xml.find("<regular"), std::string::npos);
  EXPECT_EQ(xml.find("<test"), std::string::npos);
  EXPECT_EQ(xml.find("blood"), std::string::npos);
  // Dummies hide the treatment kind, bills remain.
  EXPECT_NE(xml.find("dummy"), std::string::npos);
  EXPECT_NE(xml.find("<bill>90</bill>"), std::string::npos);
  EXPECT_NE(xml.find("<bill>10</bill>"), std::string::npos);
  EXPECT_EQ(xml.find("55"), std::string::npos);
}

TEST_F(HospitalMaterializeTest, Ward7ViewShowsOnlyErin) {
  XmlTree tv = Materialize("7");
  std::string xml = ToXmlString(tv);
  EXPECT_NE(xml.find("erin"), std::string::npos) << xml;
  EXPECT_EQ(xml.find("carol"), std::string::npos);
  EXPECT_EQ(xml.find("dave"), std::string::npos);
}

TEST_F(HospitalMaterializeTest, UnknownWardYieldsEmptyHospital) {
  XmlTree tv = Materialize("99");
  EXPECT_EQ(ToXmlString(tv), "<hospital/>");
}

TEST_F(HospitalMaterializeTest, OriginsPointIntoDocument) {
  XmlTree tv = Materialize("3");
  for (NodeId n = 0; n < static_cast<NodeId>(tv.node_count()); ++n) {
    NodeId origin = tv.origin(n);
    ASSERT_NE(origin, kNullNode) << "node " << n << " lacks an origin";
    ASSERT_LT(origin, static_cast<NodeId>(doc_.node_count()));
    if (tv.IsText(n)) {
      EXPECT_EQ(tv.text(n), doc_.text(origin));
    }
  }
}

TEST_F(HospitalMaterializeTest, SoundAndComplete) {
  // Tv consists of all and only the accessible nodes (Section 3.3),
  // modulo dummies which stand for hidden structural nodes.
  XmlTree tv = Materialize("3");
  AccessSpec bound = spec_->Bind({{"wardNo", "3"}});
  auto labeling = ComputeAccessibility(doc_, bound);
  ASSERT_TRUE(labeling.ok());

  std::vector<NodeId> accessible;
  for (NodeId n = 0; n < static_cast<NodeId>(doc_.node_count()); ++n) {
    if (labeling->accessible[n]) accessible.push_back(n);
  }
  std::vector<NodeId> origins =
      CollectViewOrigins(tv, *view_, /*include_dummies=*/false);
  // Text-node origins are not covered by CollectViewOrigins; compare
  // elements only.
  std::vector<NodeId> accessible_elems;
  for (NodeId n : accessible) {
    if (doc_.IsElement(n)) accessible_elems.push_back(n);
  }
  EXPECT_EQ(origins, accessible_elems);
}

TEST_F(HospitalMaterializeTest, DummyOriginsAreHiddenNodes) {
  XmlTree tv = Materialize("3");
  AccessSpec bound = spec_->Bind({{"wardNo", "3"}});
  auto labeling = ComputeAccessibility(doc_, bound);
  ASSERT_TRUE(labeling.ok());
  int dummies = 0;
  for (NodeId n = 0; n < static_cast<NodeId>(tv.node_count()); ++n) {
    if (!tv.IsElement(n)) continue;
    ViewTypeId type = view_->FindType(tv.label(n));
    if (type != kNullViewType && view_->type(type).is_dummy) {
      ++dummies;
      EXPECT_FALSE(labeling->accessible[tv.origin(n)]);
    }
  }
  EXPECT_EQ(dummies, 2);  // one treatment dummy per ward-3 patient
}

TEST_F(HospitalMaterializeTest, RequiresBindings) {
  MaterializeOptions options;  // no bindings
  auto tv = MaterializeView(doc_, *view_, *spec_, options);
  EXPECT_FALSE(tv.ok());
}

// -- Abort semantics -----------------------------------------------------------

TEST(MaterializeAbortTest, OneFieldWithoutNodeAborts) {
  // r -> (a, b); a hidden with no accessible descendants is fine (pruned),
  // but a conditionally accessible child in a sequence aborts when its
  // qualifier fails (paper Section 3.3, case 3).
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("r", ContentModel::Sequence({"a", "b"})).ok());
  ASSERT_TRUE(dtd.AddType("a", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.AddType("b", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.SetRoot("r").ok());
  ASSERT_TRUE(dtd.Finalize().ok());
  auto spec = ParseAccessSpec(dtd, "ann(r, a) = [. = \"yes\"]");
  ASSERT_TRUE(spec.ok()) << spec.status();
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());

  auto good = ParseXml("<r><a>yes</a><b>t</b></r>");
  ASSERT_TRUE(good.ok());
  auto tv = MaterializeView(*good, *view, *spec);
  EXPECT_TRUE(tv.ok()) << tv.status();

  auto bad = ParseXml("<r><a>no</a><b>t</b></r>");
  ASSERT_TRUE(bad.ok());
  auto tv2 = MaterializeView(*bad, *view, *spec);
  ASSERT_FALSE(tv2.ok());
  EXPECT_EQ(tv2.status().code(), StatusCode::kAborted);
}

TEST(MaterializeAbortTest, ChoiceWithDroppedAlternativeAborts) {
  // r -> (x | y) with y hidden and content-free: instances choosing y
  // cannot be represented in the view.
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("r", ContentModel::Choice({"x", "y"})).ok());
  ASSERT_TRUE(dtd.AddType("x", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.AddType("y", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.SetRoot("r").ok());
  ASSERT_TRUE(dtd.Finalize().ok());
  auto spec = ParseAccessSpec(dtd, "ann(r, y) = N");
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());

  auto chose_x = ParseXml("<r><x>1</x></r>");
  ASSERT_TRUE(chose_x.ok());
  EXPECT_TRUE(MaterializeView(*chose_x, *view, *spec).ok());

  auto chose_y = ParseXml("<r><y>1</y></r>");
  ASSERT_TRUE(chose_y.ok());
  auto tv = MaterializeView(*chose_y, *view, *spec);
  ASSERT_FALSE(tv.ok());
  EXPECT_EQ(tv.status().code(), StatusCode::kAborted);
}


TEST(MaterializeAbortTest, ChoiceWithTwoMatchesAborts) {
  // A conditional disjunction where both alternatives extract a node is
  // rejected (paper case 4: exactly one).
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("r", ContentModel::Choice({"x", "y"})).ok());
  ASSERT_TRUE(dtd.AddType("x", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.AddType("y", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.SetRoot("r").ok());
  ASSERT_TRUE(dtd.Finalize().ok());
  AccessSpec spec(dtd);
  auto view = DeriveSecurityView(spec);
  ASSERT_TRUE(view.ok());
  // Corrupt sigma: make both alternatives extract the same child kind.
  SecurityView hacked(dtd);
  hacked.AddType("r", false, dtd.root());
  hacked.AddType("x", false, dtd.FindType("x"));
  hacked.AddType("y", false, dtd.FindType("y"));
  ViewProduction prod;
  prod.kind = ViewProduction::Kind::kChoice;
  prod.choice.alts.push_back(ViewChoice::Alt{"x", MakeWildcard()});
  prod.choice.alts.push_back(ViewChoice::Alt{"y", MakeWildcard()});
  hacked.SetProduction(0, std::move(prod));
  ViewProduction text;
  text.kind = ViewProduction::Kind::kText;
  hacked.SetProduction(1, text);
  hacked.SetProduction(2, std::move(text));

  auto doc = ParseXml("<r><x>1</x></r>");
  ASSERT_TRUE(doc.ok());
  // The wildcard extracts one node for both alternatives -> abort.
  auto tv = MaterializeView(*doc, hacked, spec);
  ASSERT_FALSE(tv.ok());
  EXPECT_EQ(tv.status().code(), StatusCode::kAborted);
}

// -- Generated documents ---------------------------------------------------------

TEST(MaterializeGeneratedTest, GeneratedHospitalMaterializes) {
  Dtd dtd = MakeHospitalDtd();
  auto spec = MakeNurseSpec(dtd);
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());
  auto doc = GenerateDocument(dtd, HospitalGeneratorOptions(7, 50'000));
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_TRUE(ValidateInstance(*doc, dtd).ok());

  MaterializeOptions options;
  options.bindings = {{"wardNo", "3"}};
  auto tv = MaterializeView(*doc, *view, *spec, options);
  ASSERT_TRUE(tv.ok()) << tv.status();
  EXPECT_GT(tv->node_count(), 1u);
  EXPECT_LT(tv->node_count(), doc->node_count());
}

}  // namespace
}  // namespace secview
