#include <gtest/gtest.h>

#include "rewrite/rewriter.h"
#include "security/derive.h"
#include "security/materializer.h"
#include "security/spec_parser.h"
#include "dtd/normalizer.h"
#include "security/view_io.h"
#include "workload/adex.h"
#include "workload/hospital.h"
#include "workload/synthetic.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace secview {
namespace {

TEST(ViewIoTest, HospitalRoundTrip) {
  Dtd dtd = MakeHospitalDtd();
  auto spec = MakeNurseSpec(dtd);
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());

  std::string serialized = SerializeView(*view);
  EXPECT_NE(serialized.find("secview-definition 1"), std::string::npos);
  EXPECT_NE(serialized.find("dummy"), std::string::npos);

  auto loaded = ParseView(dtd, serialized);
  ASSERT_TRUE(loaded.ok()) << loaded.status() << "\n" << serialized;

  // Structural identity: same types, productions, sigma.
  ASSERT_EQ(loaded->NumTypes(), view->NumTypes());
  for (ViewTypeId id = 0; id < view->NumTypes(); ++id) {
    const auto& a = view->type(id);
    const auto& b = loaded->type(id);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.is_dummy, b.is_dummy);
    EXPECT_EQ(a.doc_type, b.doc_type);
    EXPECT_EQ(a.text_hidden, b.text_hidden);
    EXPECT_EQ(a.production.ToString(), b.production.ToString());
    for (const SecurityView::Edge& e : view->Edges(id)) {
      PathPtr sigma = loaded->Sigma(id, e.child);
      ASSERT_NE(sigma, nullptr);
      EXPECT_TRUE(PathEquals(sigma, e.sigma))
          << view->TypeName(id) << " -> " << view->TypeName(e.child);
    }
  }
  // And serializing again is a fixpoint.
  EXPECT_EQ(SerializeView(*loaded), serialized);
}

TEST(ViewIoTest, LoadedViewAnswersQueriesIdentically) {
  Dtd dtd = MakeHospitalDtd();
  auto spec = MakeNurseSpec(dtd);
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());
  auto loaded = ParseView(dtd, SerializeView(*view));
  ASSERT_TRUE(loaded.ok());

  auto r1 = QueryRewriter::Create(*view);
  auto r2 = QueryRewriter::Create(*loaded);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  for (const char* query :
       {"//patient//bill", "//dummy1 | //dummy2", "dept/patientInfo",
        "//patient[wardNo = \"3\"]/name"}) {
    auto a = r1->Rewrite(ParseXPath(query).value());
    auto b = r2->Rewrite(ParseXPath(query).value());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(PathEquals(*a, *b)) << query;
  }
}

TEST(ViewIoTest, RecursiveViewRoundTrip) {
  RecursiveFixture fixture = MakeRecursiveFixture();
  auto spec = ParseAccessSpec(fixture.dtd, fixture.spec_text);
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(view->IsRecursive());
  auto loaded = ParseView(fixture.dtd, SerializeView(*view));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->IsRecursive());
  EXPECT_EQ(SerializeView(*loaded), SerializeView(*view));
}

TEST(ViewIoTest, AdexRoundTripAndMaterializeAgrees) {
  Dtd dtd = MakeAdexDtd();
  auto spec = MakeAdexSpec(dtd);
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());
  auto loaded = ParseView(dtd, SerializeView(*view));
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  auto doc = GenerateDocument(dtd, AdexGeneratorOptions(71, 30'000, 3));
  ASSERT_TRUE(doc.ok());
  auto tv1 = MaterializeView(*doc, *view, *spec);
  auto tv2 = MaterializeView(*doc, *loaded, *spec);
  ASSERT_TRUE(tv1.ok());
  ASSERT_TRUE(tv2.ok());
  EXPECT_EQ(ToXmlString(*tv1), ToXmlString(*tv2));
}

TEST(ViewIoTest, RejectsMalformedInput) {
  Dtd dtd = MakeHospitalDtd();
  EXPECT_FALSE(ParseView(dtd, "").ok());
  EXPECT_FALSE(ParseView(dtd, "bogus header\n").ok());
  EXPECT_FALSE(
      ParseView(dtd, "secview-definition 1\ndoc-root nope\n").ok());
  EXPECT_FALSE(ParseView(dtd,
                         "secview-definition 1\ndoc-root hospital\n"
                         "type a kind=weird\n")
                   .ok());
  EXPECT_FALSE(ParseView(dtd,
                         "secview-definition 1\ndoc-root hospital\n"
                         "type a kind=fields doc=nosuchtype\n")
                   .ok());
  EXPECT_FALSE(ParseView(dtd,
                         "secview-definition 1\ndoc-root hospital\n"
                         "type a kind=fields\n  field b 1 sigma=[[[\n")
                   .ok());
  EXPECT_FALSE(ParseView(dtd,
                         "secview-definition 1\ndoc-root hospital\n"
                         "type a kind=fields\n  field ghost 1 sigma=x\n")
                   .ok());
  EXPECT_FALSE(ParseView(dtd,
                         "secview-definition 1\ndoc-root hospital\n"
                         "type a kind=fields\ntype a kind=empty\n")
                   .ok());
  // alt under fields / field under choice.
  EXPECT_FALSE(ParseView(dtd,
                         "secview-definition 1\ndoc-root hospital\n"
                         "type a kind=choice\n  field a 1 sigma=x\n")
                   .ok());
}

TEST(ViewIoTest, AttributeVisibilityRoundTrips) {
  auto parsed = ParseDtdText(R"(
    <!ELEMENT r (p)*>
    <!ELEMENT p (#PCDATA)>
    <!ATTLIST p id CDATA #REQUIRED pay CDATA #IMPLIED>
  )");
  ASSERT_TRUE(parsed.ok());
  auto normalized = NormalizeDtd(*parsed);
  ASSERT_TRUE(normalized.ok());
  auto spec = ParseAccessSpec(normalized->dtd, "ann(p, @pay) = N");
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());
  auto loaded = ParseView(normalized->dtd, SerializeView(*view));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ViewTypeId p = loaded->FindType("p");
  ASSERT_NE(p, kNullViewType);
  EXPECT_TRUE(loaded->IsAttributeHidden(p, "pay"));
  EXPECT_FALSE(loaded->IsAttributeHidden(p, "id"));
}

}  // namespace
}  // namespace secview
