#include "engine/explain.h"

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "security/derive.h"
#include "security/spec_parser.h"
#include "workload/hospital.h"
#include "workload/synthetic.h"
#include "xml/parser.h"

namespace secview {
namespace {

constexpr char kNursePolicy[] = R"(
  ann(hospital, dept) = [*/patient/wardNo = $wardNo]
  ann(dept, clinicalTrial) = N
  ann(clinicalTrial, patientInfo) = Y
  ann(treatment, trial) = N
  ann(treatment, regular) = N
  ann(trial, bill) = Y
  ann(regular, bill) = Y
  ann(regular, medication) = Y
)";

std::unique_ptr<SecureQueryEngine> MakeNurseEngine() {
  auto engine = SecureQueryEngine::Create(MakeHospitalDtd());
  if (!engine.ok()) std::abort();
  if (!(*engine)->RegisterPolicy("nurse", kNursePolicy).ok()) std::abort();
  return std::move(engine).value();
}

TEST(ExplainTest, NamesSigmaAnnotationsAndPrunes) {
  auto engine = MakeNurseEngine();
  // The explicit 'dept' label step makes the σ on the hospital->dept view
  // edge fire through the DP's label case (descendant steps go through the
  // precomputed recProc paths instead and leave no per-edge firing).
  auto explain = engine->Explain("nurse", "dept/patientInfo/patient/name");
  ASSERT_TRUE(explain.ok()) << explain.status();

  EXPECT_EQ(explain->policy, "nurse");
  EXPECT_EQ(explain->query, "dept/patientInfo/patient/name");
  EXPECT_FALSE(explain->view_recursive);
  EXPECT_EQ(explain->unfold_depth, 0);
  EXPECT_FALSE(explain->view_types.empty());
  EXPECT_FALSE(explain->rewritten_xpath.empty());
  EXPECT_FALSE(explain->final_xpath.empty());
  // The nurse view puts the $wardNo qualifier on the dept edge; reaching
  // patients must record at least one sigma firing carrying it.
  ASSERT_FALSE(explain->rewrite.sigma_firings.empty());
  bool qualifier_fired = false;
  for (const auto& firing : explain->rewrite.sigma_firings) {
    if (firing.sigma.find("$wardNo") != std::string::npos) {
      qualifier_fired = true;
    }
  }
  EXPECT_TRUE(qualifier_fired);

  std::string text = explain->ToText();
  EXPECT_NE(text.find("[rewrite/sigma]"), std::string::npos) << text;
  EXPECT_NE(text.find("$wardNo"), std::string::npos);
  EXPECT_NE(text.find("view dtd:"), std::string::npos);
  // Non-recursive DTD: the optimizer runs and is reported.
  EXPECT_TRUE(explain->optimizer_available);
  EXPECT_TRUE(explain->optimize_ran());
  EXPECT_NE(text.find("optimize:"), std::string::npos);
}

TEST(ExplainTest, HiddenLabelIsPrunedByNonexistence) {
  auto engine = MakeNurseEngine();
  // clinicalTrial is concealed in the nurse view, so the rewrite DP finds
  // no matching view edge anywhere — a nonexistence prune.
  auto explain = engine->Explain("nurse", "//clinicalTrial");
  ASSERT_TRUE(explain.ok()) << explain.status();
  ASSERT_FALSE(explain->rewrite.prunes.empty());
  bool nonexistence = false;
  for (const auto& prune : explain->rewrite.prunes) {
    if (prune.reason.find("nonexistence") != std::string::npos) {
      nonexistence = true;
    }
  }
  EXPECT_TRUE(nonexistence);
  std::string text = explain->ToText();
  EXPECT_NE(text.find("[rewrite/prune]"), std::string::npos) << text;
}

TEST(ExplainTest, TextAndJsonAreDeterministic) {
  // Same policy + query through two fresh engines must explain
  // byte-identically: the plan carries no timestamps or pointers.
  auto a = MakeNurseEngine()->Explain("nurse", "//patient//bill");
  auto b = MakeNurseEngine()->Explain("nurse", "//patient//bill");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->ToText(), b->ToText());
  EXPECT_EQ(a->ToJson().Dump(/*pretty=*/true),
            b->ToJson().Dump(/*pretty=*/true));
  // And explaining twice on one engine does not drift either.
  auto engine = MakeNurseEngine();
  auto first = engine->Explain("nurse", "//patient//bill");
  auto second = engine->Explain("nurse", "//patient//bill");
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->ToText(), second->ToText());
}

TEST(ExplainTest, JsonCarriesSchemaAndParses) {
  auto engine = MakeNurseEngine();
  auto explain = engine->Explain("nurse", "//bill");
  ASSERT_TRUE(explain.ok());
  std::string dumped = explain->ToJson().Dump(/*pretty=*/true);
  auto parsed = obs::Json::Parse(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("schema")->AsString(), "secview.explain.v1");
  EXPECT_EQ(parsed->Find("policy")->AsString(), "nurse");
  ASSERT_NE(parsed->Find("rewrite"), nullptr);
  EXPECT_NE(parsed->Find("rewrite")->Find("sigma_firings"), nullptr);
  EXPECT_NE(parsed->Find("optimize"), nullptr);
}

TEST(ExplainTest, NoOptimizeRequestedIsReported) {
  auto engine = MakeNurseEngine();
  ExplainOptions options;
  options.optimize = false;
  auto explain = engine->Explain("nurse", "//bill", options);
  ASSERT_TRUE(explain.ok());
  EXPECT_FALSE(explain->optimize_ran());
  EXPECT_EQ(explain->final_xpath, explain->rewritten_xpath);
  EXPECT_NE(explain->ToText().find("optimize: skipped (not requested)"),
            std::string::npos);
}

TEST(ExplainTest, RecursiveViewShowsUnfoldingAndRewriteLevelPrunes) {
  RecursiveFixture fixture = MakeRecursiveFixture();
  auto engine = SecureQueryEngine::Create(std::move(fixture.dtd));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->RegisterPolicy("outline", fixture.spec_text).ok());

  auto explain = (*engine)->Explain("outline", "//title | //meta");
  ASSERT_TRUE(explain.ok()) << explain.status();
  EXPECT_TRUE(explain->view_recursive);
  EXPECT_EQ(explain->unfold_depth, kDefaultExplainUnfoldDepth);
  EXPECT_TRUE(explain->depth_defaulted);
  // meta is concealed, so past the unfolding frontier the DP keeps
  // hitting nonexistence — the plan must name at least one such prune.
  EXPECT_FALSE(explain->rewrite.prunes.empty());
  EXPECT_FALSE(explain->rewrite.sigma_firings.empty());

  std::string text = explain->ToText();
  EXPECT_NE(text.find("unfold: depth=4 (default)"), std::string::npos) << text;
  EXPECT_NE(text.find("[rewrite/prune]"), std::string::npos);
  EXPECT_NE(text.find("[rewrite/sigma]"), std::string::npos);
  // The document DTD is recursive, so the DTD-based optimizer cannot run;
  // the plan says so instead of silently omitting the section.
  EXPECT_FALSE(explain->optimizer_available);
  EXPECT_NE(text.find("optimize: skipped (document DTD is recursive"),
            std::string::npos);

  // A supplied document height overrides the default depth.
  ExplainOptions options;
  options.doc_height = 7;
  auto deeper = (*engine)->Explain("outline", "//title", options);
  ASSERT_TRUE(deeper.ok());
  EXPECT_EQ(deeper->unfold_depth, 7);
  EXPECT_FALSE(deeper->depth_defaulted);
}

TEST(ExplainTest, ExecuteFillsExplainWhenRequested) {
  auto engine = MakeNurseEngine();
  auto doc = ParseXml(
      "<hospital><dept><patientInfo><patient><name>d</name>"
      "<wardNo>3</wardNo><treatment><regular><bill>1</bill>"
      "<medication>m</medication></regular></treatment>"
      "</patient></patientInfo>"
      "<staffInfo><staff><nurse>s</nurse></staff></staffInfo>"
      "</dept></hospital>");
  ASSERT_TRUE(doc.ok());
  QueryExplain explain;
  ExecuteOptions options;
  options.bindings = {{"wardNo", "3"}};
  options.explain = &explain;
  auto result = engine->Execute("nurse", *doc, "//bill", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(explain.policy, "nurse");
  EXPECT_EQ(explain.query, "//bill");
  EXPECT_FALSE(explain.final_xpath.empty());
  EXPECT_FALSE(explain.rewrite.sigma_firings.empty());
}

TEST(ExplainTest, UnknownPolicyIsNotFound) {
  auto engine = MakeNurseEngine();
  auto explain = engine->Explain("ghost", "//bill");
  ASSERT_FALSE(explain.ok());
  EXPECT_EQ(explain.status().code(), StatusCode::kNotFound);
}

TEST(ExplainTest, FreeFunctionWorksWithoutAnEngine) {
  Dtd dtd = MakeHospitalDtd();
  auto spec = ParseAccessSpec(dtd, kNursePolicy);
  ASSERT_TRUE(spec.ok()) << spec.status();
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());
  auto explain = ExplainQuery(dtd, *view, "//patient/name");
  ASSERT_TRUE(explain.ok()) << explain.status();
  EXPECT_TRUE(explain->policy.empty());
  EXPECT_FALSE(explain->rewritten_xpath.empty());
}

}  // namespace
}  // namespace secview
