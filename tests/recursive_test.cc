#include <algorithm>

#include <gtest/gtest.h>

#include "rewrite/rewriter.h"
#include "rewrite/unfold.h"
#include "security/derive.h"
#include "security/materializer.h"
#include "security/spec_parser.h"
#include "workload/synthetic.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace secview {
namespace {

PathPtr MustParse(const std::string& text) {
  auto r = ParseXPath(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return r.ok() ? *r : MakeEmptySet();
}

class RecursiveViewTest : public testing::Test {
 protected:
  void SetUp() override {
    fixture_ = MakeRecursiveFixture();
    auto spec = ParseAccessSpec(fixture_.dtd, fixture_.spec_text);
    ASSERT_TRUE(spec.ok()) << spec.status();
    spec_ = std::make_unique<AccessSpec>(std::move(spec).value());
    auto view = DeriveSecurityView(*spec_);
    ASSERT_TRUE(view.ok()) << view.status();
    view_ = std::make_unique<SecurityView>(std::move(view).value());

    auto doc = ParseXml(R"(
      <doc>
        <section><title>t1</title>
          <meta>
            <section><title>t1.1</title>
              <meta>
                <section><title>t1.1.1</title><meta/></section>
              </meta>
            </section>
            <section><title>t1.2</title><meta/></section>
          </meta>
        </section>
        <section><title>t2</title><meta/></section>
      </doc>
    )");
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = std::move(doc).value();
  }

  RecursiveFixture fixture_;
  std::unique_ptr<AccessSpec> spec_;
  std::unique_ptr<SecurityView> view_;
  XmlTree doc_;
};

TEST_F(RecursiveViewTest, ViewIsRecursive) {
  EXPECT_TRUE(view_->IsRecursive());
}

TEST_F(RecursiveViewTest, UnfoldProducesDag) {
  auto unfolded = UnfoldView(*view_, 6);
  ASSERT_TRUE(unfolded.ok()) << unfolded.status();
  EXPECT_FALSE(unfolded->IsRecursive());
  // Copies carry the original labels as base labels.
  ViewTypeId root = unfolded->root();
  EXPECT_EQ(unfolded->type(root).base_label, "doc");
  bool found_section_copy = false;
  for (ViewTypeId id = 0; id < unfolded->NumTypes(); ++id) {
    if (unfolded->type(id).base_label == "section") found_section_copy = true;
  }
  EXPECT_TRUE(found_section_copy);
}

TEST_F(RecursiveViewTest, UnfoldDepthZero) {
  auto unfolded = UnfoldView(*view_, 0);
  ASSERT_TRUE(unfolded.ok());
  EXPECT_EQ(unfolded->NumTypes(), 1);
  EXPECT_EQ(unfolded->Production(unfolded->root()).kind,
            ViewProduction::Kind::kEmpty);
  EXPECT_FALSE(UnfoldView(*view_, -1).ok());
}

TEST_F(RecursiveViewTest, RewriteRequiresUnfolding) {
  EXPECT_FALSE(QueryRewriter::Create(*view_).ok());
}

void ExpectRecursiveEquivalent(const XmlTree& doc, const SecurityView& view,
                               const AccessSpec& spec,
                               const std::string& query) {
  auto tv = MaterializeView(doc, view, spec);
  ASSERT_TRUE(tv.ok()) << tv.status();
  PathPtr p = MustParse(query);
  auto view_result = EvaluateAtRoot(*tv, p);
  ASSERT_TRUE(view_result.ok()) << view_result.status();
  std::vector<NodeId> expected;
  for (NodeId n : *view_result) expected.push_back(tv->origin(n));
  std::sort(expected.begin(), expected.end());

  auto rewritten = RewriteForDocument(view, p, doc.Height());
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();
  auto doc_result = EvaluateAtRoot(doc, *rewritten);
  ASSERT_TRUE(doc_result.ok()) << doc_result.status();
  EXPECT_EQ(*doc_result, expected)
      << query << " -> " << ToXPathString(*rewritten);
}

TEST_F(RecursiveViewTest, MaterializedViewHidesMeta) {
  auto tv = MaterializeView(doc_, *view_, *spec_);
  ASSERT_TRUE(tv.ok()) << tv.status();
  std::string xml = ToXmlString(*tv);
  EXPECT_EQ(xml.find("meta"), std::string::npos) << xml;
  EXPECT_NE(xml.find("t1.1.1"), std::string::npos) << xml;
}

TEST_F(RecursiveViewTest, DescendantQueryOverRecursiveView) {
  // //section cannot be rewritten over the cyclic view directly, but the
  // unfolding bounded by the document height is exact.
  ExpectRecursiveEquivalent(doc_, *view_, *spec_, "//section");
  ExpectRecursiveEquivalent(doc_, *view_, *spec_, "//title");
  ExpectRecursiveEquivalent(doc_, *view_, *spec_, "section/section");
  ExpectRecursiveEquivalent(doc_, *view_, *spec_, "//section/title");
  ExpectRecursiveEquivalent(doc_, *view_, *spec_,
                            "//section[section]/title");
  ExpectRecursiveEquivalent(doc_, *view_, *spec_, "section//title");
}

TEST_F(RecursiveViewTest, RewrittenQueryRoutesThroughMeta) {
  auto rewritten = RewriteForDocument(*view_, MustParse("section/section"),
                                      doc_.Height());
  ASSERT_TRUE(rewritten.ok());
  std::string text = ToXPathString(*rewritten);
  EXPECT_NE(text.find("meta/section"), std::string::npos) << text;
}

TEST_F(RecursiveViewTest, TallerDocumentNeedsDeeperUnfolding) {
  // Build a document deeper than a shallow unfold and check the shallow
  // rewrite misses the deep node while the correct one finds it.
  auto deep = ParseXml(
      "<doc><section><title>a</title><meta>"
      "<section><title>b</title><meta>"
      "<section><title>c</title><meta>"
      "<section><title>deep</title><meta/></section>"
      "</meta></section></meta></section></meta></section></doc>");
  ASSERT_TRUE(deep.ok());

  PathPtr q = MustParse("//title");
  auto full = RewriteForDocument(*view_, q, deep->Height());
  ASSERT_TRUE(full.ok());
  auto full_result = EvaluateAtRoot(*deep, *full);
  ASSERT_TRUE(full_result.ok());
  EXPECT_EQ(full_result->size(), 4u);

  auto shallow_view = UnfoldView(*view_, 3);
  ASSERT_TRUE(shallow_view.ok());
  auto shallow_rewriter = QueryRewriter::Create(*shallow_view);
  ASSERT_TRUE(shallow_rewriter.ok());
  auto shallow = shallow_rewriter->Rewrite(q);
  ASSERT_TRUE(shallow.ok());
  auto shallow_result = EvaluateAtRoot(*deep, *shallow);
  ASSERT_TRUE(shallow_result.ok());
  EXPECT_LT(shallow_result->size(), 4u);
}

TEST_F(RecursiveViewTest, UnfoldedMaterializationMatchesRecursive) {
  // The unfolded view materializes the same tree (labels modulo @level).
  auto tv = MaterializeView(doc_, *view_, *spec_);
  ASSERT_TRUE(tv.ok());
  auto unfolded = UnfoldView(*view_, doc_.Height());
  ASSERT_TRUE(unfolded.ok());
  auto tv2 = MaterializeView(doc_, *unfolded, *spec_);
  ASSERT_TRUE(tv2.ok()) << tv2.status();
  EXPECT_EQ(tv->node_count(), tv2->node_count());
}

}  // namespace
}  // namespace secview
