#include <algorithm>

#include <gtest/gtest.h>

#include "naive/naive.h"
#include "security/derive.h"
#include "security/materializer.h"
#include "workload/hospital.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace secview {
namespace {

PathPtr MustParse(const std::string& text) {
  auto r = ParseXPath(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return r.ok() ? *r : MakeEmptySet();
}

TEST(NaiveRewriteTest, WidensAxesAndAppendsFilter) {
  PathPtr p = MustParse("a/b");
  EXPECT_EQ(ToXPathString(NaiveRewrite(p)),
            "(//a//b)[@accessibility = \"1\"]");
}

TEST(NaiveRewriteTest, PaperExampleQ1) {
  // Q1 //buyer-info/contact-info becomes
  // //buyer-info//contact-info[@accessibility="1"] (Section 6).
  PathPtr p = MustParse("//buyer-info/contact-info");
  EXPECT_EQ(ToXPathString(NaiveRewrite(p)),
            "(//buyer-info//contact-info)[@accessibility = \"1\"]");
}

TEST(NaiveRewriteTest, WidensInsideQualifiersAndUnions) {
  PathPtr p = MustParse("a[b/c] | d");
  EXPECT_EQ(ToXPathString(NaiveRewrite(p)),
            "((//a)[//b//c] | //d)[@accessibility = \"1\"]");
}

TEST(NaiveRewriteTest, EpsilonUntouched) {
  PathPtr p = MustParse(".");
  EXPECT_EQ(ToXPathString(NaiveRewrite(p)), ".[@accessibility = \"1\"]");
}

class NaiveEnforcementTest : public testing::Test {
 protected:
  void SetUp() override {
    dtd_ = MakeHospitalDtd();
    auto spec = MakeNurseSpec(dtd_);
    ASSERT_TRUE(spec.ok());
    spec_ = std::make_unique<AccessSpec>(std::move(spec).value());
    auto doc = ParseXml(R"(
      <hospital>
        <dept>
          <clinicalTrial>
            <patientInfo>
              <patient><name>carol</name><wardNo>3</wardNo>
                <treatment><trial><bill>90</bill></trial></treatment>
              </patient>
            </patientInfo>
            <test>blood</test>
          </clinicalTrial>
          <patientInfo>
            <patient><name>dave</name><wardNo>3</wardNo>
              <treatment><regular><bill>10</bill><medication>m</medication></regular></treatment>
            </patient>
          </patientInfo>
          <staffInfo/>
        </dept>
      </hospital>
    )");
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = std::move(doc).value();
    ASSERT_TRUE(AnnotateAccessibilityAttributes(doc_, *spec_,
                                                {{"wardNo", "3"}})
                    .ok());
  }

  Dtd dtd_;
  std::unique_ptr<AccessSpec> spec_;
  XmlTree doc_;
};

TEST_F(NaiveEnforcementTest, EveryElementAnnotated) {
  for (NodeId n = 0; n < static_cast<NodeId>(doc_.node_count()); ++n) {
    if (!doc_.IsElement(n)) continue;
    auto attr = doc_.GetAttribute(n, kAccessibilityAttr);
    ASSERT_TRUE(attr.has_value()) << "node " << n;
    EXPECT_TRUE(*attr == "1" || *attr == "0");
  }
}

TEST_F(NaiveEnforcementTest, FilterKeepsOnlyAccessibleResults) {
  PathPtr naive = NaiveRewrite(MustParse("//patient/name"));
  auto result = EvaluateAtRoot(doc_, naive);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 2u);  // carol and dave

  // A query for the hidden trial nodes returns nothing.
  PathPtr trial = NaiveRewrite(MustParse("//trial"));
  auto none = EvaluateAtRoot(doc_, trial);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_F(NaiveEnforcementTest, MatchesViewSemanticsForAccessibleLabels) {
  // For queries over labels that exist in both the document and the view,
  // the naive result equals the view-based result (that is the baseline's
  // claim to correctness under unique element names).
  auto view = DeriveSecurityView(*spec_);
  ASSERT_TRUE(view.ok());
  MaterializeOptions options;
  options.bindings = {{"wardNo", "3"}};
  auto tv = MaterializeView(doc_, *view, *spec_, options);
  ASSERT_TRUE(tv.ok());

  for (const char* query : {"//patient", "//bill", "//name", "//staffInfo",
                            "//patientInfo/patient"}) {
    PathPtr p = MustParse(query);
    auto naive_result = EvaluateAtRoot(doc_, NaiveRewrite(p));
    ASSERT_TRUE(naive_result.ok()) << query;
    auto view_result = EvaluateAtRoot(*tv, p);
    ASSERT_TRUE(view_result.ok()) << query;
    std::vector<NodeId> view_origins;
    for (NodeId n : *view_result) view_origins.push_back(tv->origin(n));
    std::sort(view_origins.begin(), view_origins.end());
    EXPECT_EQ(*naive_result, view_origins) << query;
  }
}

TEST_F(NaiveEnforcementTest, NaiveCannotAnswerDummyQueries) {
  // The baseline exposes no dummy labels: queries using view-DTD dummies
  // return nothing (a functionality gap of element-level annotation).
  PathPtr p = NaiveRewrite(MustParse("//dummy1/bill"));
  auto result = EvaluateAtRoot(doc_, p);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(NaiveAnnotationTest, RequiresBoundSpec) {
  Dtd dtd = MakeHospitalDtd();
  auto spec = MakeNurseSpec(dtd);
  ASSERT_TRUE(spec.ok());
  auto doc = ParseXml("<hospital/>");
  ASSERT_TRUE(doc.ok());
  XmlTree tree = std::move(doc).value();
  EXPECT_FALSE(AnnotateAccessibilityAttributes(tree, *spec).ok());
}

}  // namespace
}  // namespace secview
