#include <gtest/gtest.h>

#include "common/rng.h"
#include "workload/adex.h"
#include "workload/generator.h"
#include "workload/hospital.h"
#include "workload/synthetic.h"
#include "xml/label_index.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace secview {
namespace {

TEST(LabelIndexTest, PostingsAreCompleteAndSorted) {
  auto doc = ParseXml("<r><a/><b><a/><a/></b><a/></r>");
  ASSERT_TRUE(doc.ok());
  LabelIndex index(*doc);
  EXPECT_EQ(index.TotalPostings(), 6u);  // r, 4 a's, b
  const auto& as = index.Nodes(doc->FindLabelId("a"));
  ASSERT_EQ(as.size(), 4u);
  for (size_t i = 1; i < as.size(); ++i) EXPECT_LT(as[i - 1], as[i]);
  EXPECT_TRUE(index.Nodes(-1).empty());
  EXPECT_TRUE(index.Nodes(999).empty());
}

TEST(LabelIndexTest, RangeSlicesSubtrees) {
  auto doc = ParseXml("<r><a/><b><a/><a/></b><a/></r>");
  ASSERT_TRUE(doc.ok());
  LabelIndex index(*doc);
  NodeId b = kNullNode;
  for (NodeId n = 0; n < static_cast<NodeId>(doc->node_count()); ++n) {
    if (doc->IsElement(n) && doc->label(n) == "b") b = n;
  }
  ASSERT_NE(b, kNullNode);
  auto [first, last] =
      index.Range(doc->FindLabelId("a"), b, doc->SubtreeEnd(b));
  EXPECT_EQ(last - first, 2);  // the two a's inside b
}

TEST(IndexedEvaluatorTest, MatchesUnindexedOnDescendantLabelSteps) {
  auto doc = ParseXml(
      "<r><a><b>1</b></a><c><a><b>2</b><b>3</b></a></c><b>4</b></r>");
  ASSERT_TRUE(doc.ok());
  LabelIndex index(*doc);
  for (const char* query :
       {"//b", "//a", "//a//b", "c//b", "//c/a/b", "//a[b]",
        "//b[. = \"2\"]", "//zz", "(//a)[b]/b", "//. | //b"}) {
    SCOPED_TRACE(query);
    auto p = ParseXPath(query);
    ASSERT_TRUE(p.ok());
    XPathEvaluator plain(*doc);
    XPathEvaluator indexed(*doc, &index);
    auto a = plain.Evaluate(*p, doc->root());
    auto b = indexed.Evaluate(*p, doc->root());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b);
  }
}

TEST(IndexedEvaluatorTest, SelfNodeExcludedLikeChildAxis) {
  // //a at an 'a' context must not return the context itself (it is not
  // a child of anything in its own closure).
  auto doc = ParseXml("<a><a/><b><a/></b></a>");
  ASSERT_TRUE(doc.ok());
  LabelIndex index(*doc);
  auto p = ParseXPath("//a");
  ASSERT_TRUE(p.ok());
  XPathEvaluator plain(*doc);
  XPathEvaluator indexed(*doc, &index);
  auto a = plain.Evaluate(*p, doc->root());
  auto b = indexed.Evaluate(*p, doc->root());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(a->size(), 2u);
}

TEST(IndexedEvaluatorTest, NestedContextsAgree) {
  auto doc = ParseXml("<r><a><a><x/></a><x/></a></r>");
  ASSERT_TRUE(doc.ok());
  LabelIndex index(*doc);
  // Context set containing both nested a's.
  auto ctx_query = ParseXPath("//a");
  ASSERT_TRUE(ctx_query.ok());
  XPathEvaluator plain(*doc);
  XPathEvaluator indexed(*doc, &index);
  auto ctx = plain.Evaluate(*ctx_query, doc->root());
  ASSERT_TRUE(ctx.ok());
  auto p = ParseXPath("//x");
  ASSERT_TRUE(p.ok());
  auto a = plain.Evaluate(*p, *ctx);
  auto b = indexed.Evaluate(*p, *ctx);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(IndexedEvaluatorTest, TouchesFarFewerNodes) {
  Dtd dtd = MakeAdexDtd();
  auto doc = GenerateDocument(dtd, AdexGeneratorOptions(7, 300'000, 3));
  ASSERT_TRUE(doc.ok());
  LabelIndex index(*doc);
  auto p = ParseXPath("//buyer-info");
  ASSERT_TRUE(p.ok());
  XPathEvaluator plain(*doc);
  XPathEvaluator indexed(*doc, &index);
  ASSERT_TRUE(plain.Evaluate(*p, doc->root()).ok());
  ASSERT_TRUE(indexed.Evaluate(*p, doc->root()).ok());
  EXPECT_LT(indexed.work() * 100, plain.work());
}

TEST(IndexedEvaluatorTest, RandomizedAgreement) {
  Rng rng(91);
  for (int round = 0; round < 8; ++round) {
    Dtd dtd = MakeRandomDtd(rng, 4 + static_cast<int>(rng.Below(10)));
    GeneratorOptions gen;
    gen.seed = rng.Next();
    gen.max_branching = 3;
    auto doc = GenerateDocument(dtd, gen);
    ASSERT_TRUE(doc.ok());
    LabelIndex index(*doc);
    for (int qi = 0; qi < 15; ++qi) {
      PathPtr q = MakeRandomDocQuery(dtd, rng,
                                     1 + static_cast<int>(rng.Below(5)));
      XPathEvaluator plain(*doc);
      XPathEvaluator indexed(*doc, &index);
      auto a = plain.Evaluate(q, doc->root());
      auto b = indexed.Evaluate(q, doc->root());
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(*a, *b) << ToXPathString(q) << "\nDTD:\n" << dtd.ToString();
    }
  }
}

}  // namespace
}  // namespace secview
