#include <gtest/gtest.h>

#include "dtd/graph.h"
#include "dtd/validator.h"
#include "workload/adex.h"
#include "workload/generator.h"
#include "workload/hospital.h"
#include "workload/synthetic.h"
#include "xml/serializer.h"

namespace secview {
namespace {

TEST(GeneratorTest, GeneratesConformingHospitalDocument) {
  Dtd dtd = MakeHospitalDtd();
  auto doc = GenerateDocument(dtd, HospitalGeneratorOptions(1, 20'000));
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_TRUE(ValidateInstance(*doc, dtd).ok());
  EXPECT_GE(doc->EstimateSerializedSize(), 20'000u);
}

TEST(GeneratorTest, GeneratesConformingAdexDocument) {
  Dtd dtd = MakeAdexDtd();
  auto doc = GenerateDocument(dtd, AdexGeneratorOptions(2, 30'000, 3));
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_TRUE(ValidateInstance(*doc, dtd).ok());
}

TEST(GeneratorTest, Deterministic) {
  Dtd dtd = MakeHospitalDtd();
  auto a = GenerateDocument(dtd, HospitalGeneratorOptions(5, 10'000));
  auto b = GenerateDocument(dtd, HospitalGeneratorOptions(5, 10'000));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ToXmlString(*a), ToXmlString(*b));
  auto c = GenerateDocument(dtd, HospitalGeneratorOptions(6, 10'000));
  ASSERT_TRUE(c.ok());
  EXPECT_NE(ToXmlString(*a), ToXmlString(*c));
}

TEST(GeneratorTest, TargetBytesScalesDocument) {
  Dtd dtd = MakeAdexDtd();
  auto small = GenerateDocument(dtd, AdexGeneratorOptions(3, 10'000, 3));
  auto large = GenerateDocument(dtd, AdexGeneratorOptions(3, 100'000, 3));
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(large->node_count(), 4 * small->node_count());
}

TEST(GeneratorTest, BranchingBoundsRespected) {
  Dtd dtd = MakeHospitalDtd();
  GeneratorOptions options;
  options.seed = 9;
  options.min_branching = 2;
  options.max_branching = 3;
  auto doc = GenerateDocument(dtd, options);
  ASSERT_TRUE(doc.ok());
  // Every star node (hospital, patientInfo, staffInfo) has 2..3 children.
  for (NodeId n = 0; n < static_cast<NodeId>(doc->node_count()); ++n) {
    if (!doc->IsElement(n)) continue;
    std::string_view label = doc->label(n);
    if (label == "hospital" || label == "patientInfo" ||
        label == "staffInfo") {
      int count = doc->ChildCount(n);
      EXPECT_GE(count, 2) << label;
      EXPECT_LE(count, 3) << label;
    }
  }
}

TEST(GeneratorTest, RecursiveDtdRespectsDepthBudget) {
  RecursiveFixture fixture = MakeRecursiveFixture();
  GeneratorOptions options;
  options.seed = 4;
  options.min_branching = 1;
  options.max_branching = 2;
  options.max_depth = 9;
  auto doc = GenerateDocument(fixture.dtd, options);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_TRUE(ValidateInstance(*doc, fixture.dtd).ok());
  EXPECT_LE(doc->Height(), 10);  // +1 for text leaves
}

TEST(GeneratorTest, InconsistentDtdRejected) {
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("a", ContentModel::Sequence({"b"})).ok());
  ASSERT_TRUE(dtd.AddType("b", ContentModel::Sequence({"a"})).ok());
  ASSERT_TRUE(dtd.SetRoot("a").ok());
  ASSERT_TRUE(dtd.Finalize().ok());
  auto doc = GenerateDocument(dtd, {});
  EXPECT_FALSE(doc.ok());
}

TEST(GeneratorTest, TextProviderUsed) {
  Dtd dtd = MakeHospitalDtd();
  auto doc = GenerateDocument(dtd, HospitalGeneratorOptions(8, 5'000));
  ASSERT_TRUE(doc.ok());
  bool saw_ward = false;
  for (NodeId n = 0; n < static_cast<NodeId>(doc->node_count()); ++n) {
    if (doc->IsElement(n) && doc->label(n) == "wardNo") {
      saw_ward = true;
      std::string text = doc->CollectText(n);
      ASSERT_FALSE(text.empty());
      int value = std::stoi(text);
      EXPECT_GE(value, 1);
      EXPECT_LE(value, 8);
    }
  }
  EXPECT_TRUE(saw_ward);
}

TEST(SyntheticTest, LayeredDtdShape) {
  Dtd dtd = MakeLayeredDtd(4, 3);
  EXPECT_EQ(dtd.NumTypes(), 13);  // root + 4 layers x 3
  DtdGraph graph(dtd);
  EXPECT_FALSE(graph.IsRecursive());
  EXPECT_TRUE(graph.UnreachableFromRoot().empty());
}

TEST(SyntheticTest, ChainDtd) {
  Dtd dtd = MakeChainDtd(10);
  EXPECT_EQ(dtd.NumTypes(), 10);
  DtdGraph graph(dtd);
  EXPECT_TRUE(graph.ReachableStrict(dtd.FindType("a0"), dtd.FindType("a9")));
}

TEST(SyntheticTest, RandomDtdIsConsistent) {
  Rng rng(123);
  for (int i = 0; i < 20; ++i) {
    Dtd dtd = MakeRandomDtd(rng, 3 + static_cast<int>(rng.Below(15)));
    EXPECT_TRUE(dtd.finalized());
    DtdGraph graph(dtd);
    EXPECT_FALSE(graph.IsRecursive());
    GeneratorOptions options;
    options.seed = rng.Next();
    auto doc = GenerateDocument(dtd, options);
    ASSERT_TRUE(doc.ok()) << doc.status();
    EXPECT_TRUE(ValidateInstance(*doc, dtd).ok());
  }
}

TEST(SyntheticTest, RandomSpecAnnotatesEdgesOnly) {
  Rng rng(55);
  Dtd dtd = MakeRandomDtd(rng, 12);
  AccessSpec spec = MakeRandomSpec(dtd, rng, 0.3, 0.2, 0.2);
  for (const auto& [parent, child, ann] : spec.AllAnnotations()) {
    (void)ann;
    EXPECT_TRUE(dtd.HasChild(parent, child));
  }
}

TEST(SyntheticTest, RandomQueriesParseablyPrint) {
  Rng rng(77);
  Dtd dtd = MakeRandomDtd(rng, 10);
  for (int i = 0; i < 50; ++i) {
    PathPtr q = MakeRandomDocQuery(dtd, rng, 1 + rng.Below(5));
    ASSERT_NE(q, nullptr);
    EXPECT_GE(PathSize(q), 1);
  }
}

}  // namespace
}  // namespace secview
