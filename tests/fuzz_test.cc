#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dtd/dtd_parser.h"
#include "security/spec_parser.h"
#include "security/view_io.h"
#include "workload/hospital.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace secview {
namespace {

/// Robustness sweeps: every parser must reject (or accept) arbitrary
/// garbage gracefully — no crashes, no hangs — and truncations of valid
/// inputs must never be mis-accepted as something structurally different.

std::string RandomBytes(Rng& rng, size_t length) {
  // Printable-heavy mix with structural characters over-represented.
  static constexpr char kChars[] =
      "<>/=\"'[]()|.*@$ \t\nabzA19-_&;#!?+,:{}\\";
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out += kChars[rng.Below(sizeof(kChars) - 1)];
  }
  return out;
}

TEST(FuzzTest, XPathParserSurvivesGarbage) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    std::string input = RandomBytes(rng, 1 + rng.Below(40));
    auto result = ParseXPath(input);
    if (result.ok()) {
      // Whatever parsed must print and re-parse.
      std::string printed = ToXPathString(*result);
      auto again = ParseXPath(printed);
      EXPECT_TRUE(again.ok()) << input << " -> " << printed;
    }
  }
}

TEST(FuzzTest, XPathParserSurvivesTruncations) {
  const std::string valid =
      "//dept[*/patient/wardNo = $w]/(clinicalTrial/patientInfo | "
      "patientInfo)/patient[not(@x = \"1\") and name]//bill";
  for (size_t len = 0; len <= valid.size(); ++len) {
    auto result = ParseXPath(valid.substr(0, len));
    if (result.ok()) {
      EXPECT_TRUE(ParseXPath(ToXPathString(*result)).ok()) << len;
    }
  }
}

TEST(FuzzTest, XmlParserSurvivesGarbage) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    std::string input = RandomBytes(rng, 1 + rng.Below(60));
    auto result = ParseXml(input);
    (void)result;  // must simply not crash or hang
  }
}

TEST(FuzzTest, XmlParserSurvivesTruncations) {
  const std::string valid =
      "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a (b)>]>"
      "<a x=\"1&amp;2\"><b><![CDATA[zz]]></b><!-- c --><b>t</b></a>";
  for (size_t len = 0; len <= valid.size(); ++len) {
    auto result = ParseXml(valid.substr(0, len));
    (void)result;
  }
}

TEST(FuzzTest, DtdParserSurvivesGarbage) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    std::string input = "<!ELEMENT " + RandomBytes(rng, 1 + rng.Below(40));
    auto result = ParseDtdText(input);
    (void)result;
  }
}

TEST(FuzzTest, DtdParserSurvivesTruncations) {
  const std::string valid =
      "<!ELEMENT a (b?, (c | d)+, e*)><!ELEMENT b (#PCDATA)>"
      "<!ATTLIST a x CDATA #REQUIRED y (u|v) \"u\">"
      "<!ELEMENT c EMPTY><!ELEMENT d (#PCDATA)><!ELEMENT e (b)>";
  for (size_t len = 0; len <= valid.size(); ++len) {
    auto result = ParseDtdText(valid.substr(0, len));
    (void)result;
  }
}

TEST(FuzzTest, SpecParserSurvivesGarbage) {
  Dtd dtd = MakeHospitalDtd();
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    std::string input = "ann(" + RandomBytes(rng, 1 + rng.Below(30));
    auto result = ParseAccessSpec(dtd, input);
    (void)result;
  }
}

TEST(FuzzTest, ViewIoSurvivesGarbageAndLineDeletions) {
  Dtd dtd = MakeHospitalDtd();
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    std::string input =
        "secview-definition 1\n" + RandomBytes(rng, 1 + rng.Below(80));
    auto result = ParseView(dtd, input);
    (void)result;
  }
}

TEST(FuzzTest, RandomlyMutatedXPathNeverCrashesEvaluator) {
  // Parseable mutants must also evaluate without crashing.
  Dtd dtd = MakeHospitalDtd();
  auto doc = ParseXml(
      "<hospital><dept><clinicalTrial><patientInfo/><test>t</test>"
      "</clinicalTrial><patientInfo/><staffInfo/></dept></hospital>");
  ASSERT_TRUE(doc.ok());
  Rng rng(6);
  std::string base = "//dept/patientInfo[patient]/patient/name";
  for (int i = 0; i < 1000; ++i) {
    std::string mutated = base;
    size_t pos = rng.Below(mutated.size());
    mutated[pos] = "</|[]*.@"[rng.Below(8)];
    auto parsed = ParseXPath(mutated);
    if (!parsed.ok()) continue;
    if (HasUnboundParams(*parsed)) continue;
    auto result = EvaluateAtRoot(*doc, *parsed);
    EXPECT_TRUE(result.ok()) << mutated;
  }
}

}  // namespace
}  // namespace secview
