#include <algorithm>

#include <gtest/gtest.h>

#include "optimize/constraints.h"
#include "optimize/image_graph.h"
#include "optimize/optimizer.h"
#include "optimize/simulation.h"
#include "workload/adex.h"
#include "workload/generator.h"
#include "workload/hospital.h"
#include "workload/synthetic.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace secview {
namespace {

PathPtr MustParse(const std::string& text) {
  auto r = ParseXPath(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return r.ok() ? *r : MakeEmptySet();
}

/// The example DTD of the paper's Fig. 9: a -> (b, c); b, c -> d;
/// d -> (e | f); e, f -> g; g -> PCDATA (shape chosen to reproduce the
/// containment examples 5.2 / 5.3).
Dtd MakeFig9Dtd() {
  Dtd dtd;
  EXPECT_TRUE(dtd.AddType("a", ContentModel::Sequence({"b", "c"})).ok());
  EXPECT_TRUE(dtd.AddType("b", ContentModel::Sequence({"d"})).ok());
  EXPECT_TRUE(dtd.AddType("c", ContentModel::Sequence({"d"})).ok());
  EXPECT_TRUE(dtd.AddType("d", ContentModel::Choice({"e", "f"})).ok());
  EXPECT_TRUE(dtd.AddType("e", ContentModel::Sequence({"g"})).ok());
  EXPECT_TRUE(dtd.AddType("f", ContentModel::Sequence({"g"})).ok());
  EXPECT_TRUE(dtd.AddType("g", ContentModel::Text()).ok());
  EXPECT_TRUE(dtd.SetRoot("a").ok());
  EXPECT_TRUE(dtd.Finalize().ok());
  return dtd;
}

// -- DtdPathIndex ---------------------------------------------------------------

TEST(DtdPathIndexTest, RecRwCapturesAllPaths) {
  Dtd dtd = MakeFig9Dtd();
  DtdGraph graph(dtd);
  auto index = DtdPathIndex::Compute(graph);
  ASSERT_TRUE(index.ok()) << index.status();
  TypeId a = dtd.FindType("a");
  TypeId g = dtd.FindType("g");
  // All four b/c x e/f paths, factored.
  EXPECT_EQ(ToXPathString(index->RecRw(a, g)), "(b | c)/d/(e | f)/g");
  EXPECT_EQ(ToXPathString(index->RecRw(a, a)), ".");
  EXPECT_EQ(index->RecRw(g, a), nullptr);
  EXPECT_EQ(index->ReachDescOrSelf(a).size(), 7u);
}

TEST(DtdPathIndexTest, RejectsRecursiveDtd) {
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("a", ContentModel::Star("a")).ok());
  ASSERT_TRUE(dtd.SetRoot("a").ok());
  ASSERT_TRUE(dtd.Finalize().ok());
  DtdGraph graph(dtd);
  EXPECT_FALSE(DtdPathIndex::Compute(graph).ok());
}

// -- DTD-constraint evaluation (Example 5.1) -------------------------------------

class ConstraintsTest : public testing::Test {
 protected:
  ConstraintsTest() : dtd_(MakeFig9Dtd()), graph_(dtd_) {}

  Tri EvalQ(const std::string& qual, const std::string& at) {
    auto q = ParseXPathQualifier(qual);
    EXPECT_TRUE(q.ok()) << qual << ": " << q.status();
    return EvaluateQualifierAtType(graph_, *q, dtd_.FindType(at));
  }

  Dtd dtd_;
  DtdGraph graph_;
};

TEST_F(ConstraintsTest, CoExistence) {
  // a -> (b, c): both children always exist.
  EXPECT_EQ(EvalQ("b", "a"), Tri::kTrue);
  EXPECT_EQ(EvalQ("c", "a"), Tri::kTrue);
  EXPECT_EQ(EvalQ("b and c", "a"), Tri::kTrue);
}

TEST_F(ConstraintsTest, Exclusive) {
  // d -> (e | f): never both.
  EXPECT_EQ(EvalQ("e and f", "d"), Tri::kFalse);
  EXPECT_EQ(EvalQ("e", "d"), Tri::kUnknown);
}

TEST_F(ConstraintsTest, NonExistence) {
  // b has no c child.
  EXPECT_EQ(EvalQ("c", "b"), Tri::kFalse);
  EXPECT_EQ(EvalQ("c/d", "b"), Tri::kFalse);
  EXPECT_EQ(EvalQ("//zz", "a"), Tri::kFalse);
}

TEST_F(ConstraintsTest, Wildcard) {
  EXPECT_EQ(EvalQ("*", "a"), Tri::kTrue);   // sequence
  EXPECT_EQ(EvalQ("*", "d"), Tri::kTrue);   // choice
  EXPECT_EQ(EvalQ("*", "g"), Tri::kFalse);  // PCDATA
}

TEST_F(ConstraintsTest, ComposedPaths) {
  EXPECT_EQ(EvalQ("b/d", "a"), Tri::kTrue);
  // d's child is e or f — existence of e specifically is unknown, but
  // reaching g is guaranteed through either.
  EXPECT_EQ(EvalQ("b/d/e", "a"), Tri::kUnknown);
  EXPECT_EQ(EvalQ("b/d/*", "a"), Tri::kTrue);
  EXPECT_EQ(EvalQ("//g", "a"), Tri::kTrue);
}

TEST_F(ConstraintsTest, BooleanConnectives) {
  EXPECT_EQ(EvalQ("b or zz", "a"), Tri::kTrue);
  EXPECT_EQ(EvalQ("not(b)", "a"), Tri::kFalse);
  EXPECT_EQ(EvalQ("not(e and f)", "d"), Tri::kTrue);
  EXPECT_EQ(EvalQ("zz or e", "d"), Tri::kUnknown);
  EXPECT_EQ(EvalQ("b = \"x\"", "a"), Tri::kUnknown);
  EXPECT_EQ(EvalQ("zz = \"x\"", "a"), Tri::kFalse);
}

TEST_F(ConstraintsTest, SimplifyDropsDecidedConjuncts) {
  auto q = ParseXPathQualifier("b and e");
  ASSERT_TRUE(q.ok());
  QualPtr simplified = SimplifyQualifier(graph_, *q, dtd_.FindType("a"));
  // [b] is implied by the co-existence constraint; [e] stays. (e is not a
  // child of a: actually folds false -> whole conjunction false.)
  EXPECT_EQ(simplified->kind, QualKind::kFalse);

  auto q2 = ParseXPathQualifier("b and b/d");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(SimplifyQualifier(graph_, *q2, dtd_.FindType("a"))->kind,
            QualKind::kTrue);
}

// -- Image graphs & simulation (Examples 5.2, 5.3) -------------------------------

class SimulationTest : public testing::Test {
 protected:
  SimulationTest() : dtd_(MakeFig9Dtd()), graph_(dtd_) {}

  bool Contained(const std::string& p1, const std::string& p2,
                 const std::string& at = "a") {
    TypeId t = dtd_.FindType(at);
    ImageGraph g1 = BuildImageGraph(graph_, MustParse(p1), t);
    ImageGraph g2 = BuildImageGraph(graph_, MustParse(p2), t);
    return Simulates(g1, g2);
  }

  Dtd dtd_;
  DtdGraph graph_;
};

TEST_F(SimulationTest, PaperExample53) {
  // p1 = *[.../ wildcards], p2 = explicit alternations, p3 = explicit
  // unions; p2, p3 contained in p1; p3 contained in p2.
  const std::string p1 = "*/d/*/g";
  const std::string p2 = "(b | c)/d/(e | f)/g";
  const std::string p3 = "b/d/e/g | b/d/f/g";
  EXPECT_TRUE(Contained(p2, p1));
  EXPECT_TRUE(Contained(p3, p1));
  EXPECT_TRUE(Contained(p3, p2));
  // The approximate test may miss p2 <= p3 (paper: image(p2) is NOT
  // simulated by image(p3)); it must not report the false direction.
  EXPECT_FALSE(Contained(p1, p3));
}

TEST_F(SimulationTest, SelfContainment) {
  EXPECT_TRUE(Contained("b/d", "b/d"));
  EXPECT_TRUE(Contained("//g", "//g"));
}

TEST_F(SimulationTest, EmptyImageContainedInAnything) {
  EXPECT_TRUE(Contained("zz", "b"));
  EXPECT_FALSE(Contained("b", "zz"));
}

TEST_F(SimulationTest, QualifierDirectionFlips) {
  // b/d[e] is contained in b/d; b/d is NOT contained in b/d[e].
  EXPECT_TRUE(Contained("b/d[e]", "b/d"));
  EXPECT_FALSE(Contained("b/d", "b/d[e]"));
  // Equal qualifiers match.
  EXPECT_TRUE(Contained("b/d[e]", "b/d[e]"));
  // Stronger qualifiers are contained in weaker ones.
  EXPECT_TRUE(Contained("b/d[e and e/g]", "b/d[e]"));
}

TEST_F(SimulationTest, EqualityTagsMustMatch) {
  EXPECT_TRUE(Contained("b/d[e = \"1\"]", "b/d[e = \"1\"]"));
  EXPECT_FALSE(Contained("b/d[e = \"1\"]", "b/d[e = \"2\"]"));
  EXPECT_TRUE(Contained("b/d[e = \"1\"]", "b/d[e]"));
}

TEST_F(SimulationTest, UnionBranchQualifiersDoNotMergeUnsoundly) {
  // d[e] U d[f] is NOT contained in d[e] (the f-branch escapes); the
  // epoch separation must prevent the false positive.
  EXPECT_FALSE(Contained("b/d[e] | b/d[f]", "b/d[e]"));
  EXPECT_TRUE(Contained("b/d[e] | b/d[f]", "b/d"));
}


TEST_F(SimulationTest, SharedContextQualifiersMarkImprecise) {
  // .[q1] | .[q2] attaches branch qualifiers to the same (shared) context
  // node; merging them would claim the union is contained in one branch.
  // The builder marks such graphs imprecise and the test says "no".
  EXPECT_FALSE(Contained(".[b] | .[c]", ".[b]"));
  EXPECT_FALSE(Contained(".[b]", ".[b] | .[c]"));
}

TEST_F(SimulationTest, EmptyAgainstEmpty) {
  EXPECT_TRUE(Contained("zz", "yy"));  // both empty images
}

TEST_F(SimulationTest, WildcardSimulatesNothingButItself) {
  // b/d <= */d and */d is (structurally) contained in itself.
  EXPECT_TRUE(Contained("b/d", "*/d"));
  EXPECT_FALSE(Contained("*/d", "b/d"));
}


TEST(ContainmentApiTest, PublicHelper) {
  Dtd dtd = MakeFig9Dtd();
  DtdGraph graph(dtd);
  TypeId a = dtd.FindType("a");
  auto contained = [&](const char* p1, const char* p2) {
    auto r = IsContainedIn(graph, MustParse(p1), MustParse(p2), a);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() && *r;
  };
  EXPECT_TRUE(contained("b/d[e]", "b/d"));
  EXPECT_FALSE(contained("b/d", "b/d[e]"));
  EXPECT_TRUE(contained("(b | c)/d", "*/d"));
  EXPECT_FALSE(contained("*/d", "b/d"));
  // Errors: bad context, recursive DTD.
  EXPECT_FALSE(
      IsContainedIn(graph, MustParse("b"), MustParse("b"), kNullType).ok());
  Dtd rec;
  ASSERT_TRUE(rec.AddType("a", ContentModel::Star("a")).ok());
  ASSERT_TRUE(rec.SetRoot("a").ok());
  ASSERT_TRUE(rec.Finalize().ok());
  DtdGraph rec_graph(rec);
  EXPECT_FALSE(
      IsContainedIn(rec_graph, MustParse("a"), MustParse("a"), 0).ok());
}

// -- Algorithm optimize ----------------------------------------------------------

class OptimizerTest : public testing::Test {
 protected:
  void SetUp() override {
    dtd_ = MakeAdexDtd();
    auto optimizer = QueryOptimizer::Create(dtd_);
    ASSERT_TRUE(optimizer.ok()) << optimizer.status();
    optimizer_ = std::make_unique<QueryOptimizer>(std::move(optimizer).value());
  }

  std::string Optimize(const std::string& query) {
    auto r = optimizer_->Optimize(MustParse(query));
    EXPECT_TRUE(r.ok()) << query << ": " << r.status();
    return r.ok() ? ToXPathString(*r) : "";
  }

  Dtd dtd_;
  std::unique_ptr<QueryOptimizer> optimizer_;
};

TEST_F(OptimizerTest, ExpandsDescendantsToLabelPaths) {
  EXPECT_EQ(Optimize("//buyer-info/contact-info"),
            "head/buyer-info/contact-info");
}

TEST_F(OptimizerTest, PrunesNonExistentBranches) {
  // Q2: the apartment branch dies (no r-e.warranty under apartment).
  EXPECT_EQ(Optimize("//house/r-e.warranty | //apartment/r-e.warranty"),
            "body/ad-instance/content/real-estate/house/r-e.warranty");
}

TEST_F(OptimizerTest, CoExistenceDropsQualifier) {
  // Q3: buyer-info always has both children.
  EXPECT_EQ(Optimize("//buyer-info[company-id and contact-info]"),
            "head/buyer-info");
}

TEST_F(OptimizerTest, NonExistenceEmptiesQuery) {
  // Q4: houses never have a unit type.
  EXPECT_EQ(Optimize("//house[//r-e.asking-price and //r-e.unit-type]"),
            ".[false()]");
}

TEST_F(OptimizerTest, ExclusiveConstraintEmptiesQuery) {
  EXPECT_EQ(Optimize("//real-estate[house and apartment]"), ".[false()]");
}

TEST_F(OptimizerTest, UnionContainmentPrunesRedundantBranch) {
  std::string out = Optimize("//house | //real-estate/house");
  EXPECT_EQ(out, "body/ad-instance/content/real-estate/house");
}

TEST_F(OptimizerTest, WildcardsBecomeLabels) {
  std::string out = Optimize("head/*");
  EXPECT_EQ(out, "head/(transaction-info | buyer-info)");
}


TEST_F(OptimizerTest, OptimizeAtNonRootContext) {
  TypeId house = dtd_.FindType("house");
  auto r = optimizer_->OptimizeAt(MustParse("*"), house);
  ASSERT_TRUE(r.ok());
  // The wildcard expands into house's concrete children.
  std::string text = ToXPathString(*r);
  EXPECT_NE(text.find("location"), std::string::npos) << text;
  EXPECT_NE(text.find("r-e.warranty"), std::string::npos) << text;
  EXPECT_EQ(text.find("r-e.unit-type"), std::string::npos) << text;

  EXPECT_FALSE(optimizer_->OptimizeAt(MustParse("*"), kNullType).ok());
  EXPECT_FALSE(optimizer_->OptimizeAt(MustParse("*"), 10'000).ok());
}

TEST_F(OptimizerTest, PassThroughHelperOnRecursiveDtd) {
  RecursiveFixture fixture = MakeRecursiveFixture();
  PathPtr q = MustParse("//title");
  EXPECT_EQ(OptimizeOrPassThrough(fixture.dtd, q), q);
  // And on a DAG it optimizes.
  EXPECT_NE(OptimizeOrPassThrough(dtd_, q), q);
}


// -- The paper's Example 5.4 over the hospital DTD --------------------------------

TEST(OptimizerHospitalTest, Example54UnionPruning) {
  // p = //patient U //(patient | staff)[//medication]: the second branch
  // is contained in the first (its staff arm dies — no medication below
  // staff — and the qualified patient arm is subsumed), so optimize
  // returns the expansion of //patient alone.
  Dtd dtd = MakeHospitalDtd();
  auto optimizer = QueryOptimizer::Create(dtd);
  ASSERT_TRUE(optimizer.ok());
  PathPtr p = MustParse(
      "//patient | //(patient | staff)[//medication]");
  auto optimized = optimizer->Optimize(p);
  ASSERT_TRUE(optimized.ok());
  auto reference = optimizer->Optimize(MustParse("//patient"));
  ASSERT_TRUE(reference.ok());
  EXPECT_TRUE(PathEquals(*optimized, *reference))
      << ToXPathString(*optimized) << " vs " << ToXPathString(*reference);
  // The expansion routes through both patientInfo paths, as in the
  // paper's p_o1/p_o2.
  std::string text = ToXPathString(*optimized);
  EXPECT_NE(text.find("clinicalTrial"), std::string::npos) << text;
  EXPECT_NE(text.find("patientInfo"), std::string::npos) << text;

  // And it is equivalent on instances.
  auto doc = GenerateDocument(dtd, HospitalGeneratorOptions(23, 40'000));
  ASSERT_TRUE(doc.ok());
  auto before = EvaluateAtRoot(*doc, p);
  auto after = EvaluateAtRoot(*doc, *optimized);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after);
}

TEST(OptimizerHospitalTest, StaffWithMedicationIsEmpty) {
  // staff never has medication below it (non-existence).
  Dtd dtd = MakeHospitalDtd();
  auto optimizer = QueryOptimizer::Create(dtd);
  ASSERT_TRUE(optimizer.ok());
  auto optimized = optimizer->Optimize(MustParse("//staff[//medication]"));
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(ToXPathString(*optimized), ".[false()]");
}

TEST(OptimizerHospitalTest, TreatmentExclusiveConstraint) {
  // treatment -> (trial | regular): never both.
  Dtd dtd = MakeHospitalDtd();
  auto optimizer = QueryOptimizer::Create(dtd);
  ASSERT_TRUE(optimizer.ok());
  auto optimized =
      optimizer->Optimize(MustParse("//treatment[trial and regular]"));
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(ToXPathString(*optimized), ".[false()]");
  // A single arm stays undecided.
  auto single = optimizer->Optimize(MustParse("//treatment[trial]"));
  ASSERT_TRUE(single.ok());
  EXPECT_NE(ToXPathString(*single), ".[false()]");
}

TEST(OptimizerHospitalTest, PatientCoExistence) {
  // patient -> (name, wardNo, treatment): all three guaranteed.
  Dtd dtd = MakeHospitalDtd();
  auto optimizer = QueryOptimizer::Create(dtd);
  ASSERT_TRUE(optimizer.ok());
  auto optimized = optimizer->Optimize(
      MustParse("//patient[name and wardNo and treatment]"));
  ASSERT_TRUE(optimized.ok());
  auto reference = optimizer->Optimize(MustParse("//patient"));
  ASSERT_TRUE(reference.ok());
  EXPECT_TRUE(PathEquals(*optimized, *reference));
}

/// Equivalence of optimized queries on concrete instances.
class OptimizerEquivalenceTest
    : public testing::TestWithParam<const char*> {};

TEST_P(OptimizerEquivalenceTest, OptimizedQueryReturnsSameNodes) {
  Dtd dtd = MakeAdexDtd();
  auto doc = GenerateDocument(dtd, AdexGeneratorOptions(17, 60'000, 3));
  ASSERT_TRUE(doc.ok()) << doc.status();
  auto optimizer = QueryOptimizer::Create(dtd);
  ASSERT_TRUE(optimizer.ok());

  PathPtr p = MustParse(GetParam());
  auto optimized = optimizer->Optimize(p);
  ASSERT_TRUE(optimized.ok()) << optimized.status();

  auto before = EvaluateAtRoot(*doc, p);
  auto after = EvaluateAtRoot(*doc, *optimized);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after)
      << GetParam() << " optimized to " << ToXPathString(*optimized);
}

INSTANTIATE_TEST_SUITE_P(
    Queries, OptimizerEquivalenceTest,
    testing::Values("//buyer-info/contact-info",
                    "//house/r-e.warranty | //apartment/r-e.warranty",
                    "//buyer-info[company-id and contact-info]",
                    "//house[//r-e.asking-price and //r-e.unit-type]",
                    "//real-estate[house and apartment]",
                    "//house | //real-estate/house",
                    "head/*",
                    "//location",
                    "body/*/*/real-estate/*",
                    "//real-estate[house]",
                    "//real-estate[house or apartment]",
                    "//house[bedrooms = \"3\"]",
                    "//*[r-e.unit-type]",
                    "//content//house | //house",
                    "body//apartment/r-e.unit-type"));

}  // namespace
}  // namespace secview
