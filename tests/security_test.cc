#include <gtest/gtest.h>

#include "security/access_spec.h"
#include "security/annotator.h"
#include "security/spec_parser.h"
#include "workload/hospital.h"
#include "xml/parser.h"

namespace secview {
namespace {

class AccessSpecTest : public testing::Test {
 protected:
  Dtd dtd_ = MakeHospitalDtd();
};

TEST_F(AccessSpecTest, AnnotateAndGet) {
  AccessSpec spec(dtd_);
  ASSERT_TRUE(spec.Annotate("dept", "clinicalTrial", Annotation::No()).ok());
  TypeId dept = dtd_.FindType("dept");
  TypeId ct = dtd_.FindType("clinicalTrial");
  auto ann = spec.Get(dept, ct);
  ASSERT_TRUE(ann.has_value());
  EXPECT_EQ(ann->kind, AnnotationKind::kNo);
  EXPECT_FALSE(spec.Get(dept, dtd_.FindType("patientInfo")).has_value());
}

TEST_F(AccessSpecTest, RejectsUnknownTypesAndNonEdges) {
  AccessSpec spec(dtd_);
  EXPECT_EQ(spec.Annotate("nope", "dept", Annotation::Yes()).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(spec.Annotate("dept", "nope", Annotation::Yes()).code(),
            StatusCode::kNotFound);
  // bill is not a child of dept.
  EXPECT_EQ(spec.Annotate("dept", "bill", Annotation::Yes()).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(AccessSpecTest, TextAnnotations) {
  AccessSpec spec(dtd_);
  ASSERT_TRUE(spec.AnnotateText("bill", Annotation::No()).ok());
  EXPECT_TRUE(spec.GetText(dtd_.FindType("bill")).has_value());
  // dept has no PCDATA content.
  EXPECT_FALSE(spec.AnnotateText("dept", Annotation::No()).ok());
  // Text annotations must be Y/N.
  EXPECT_FALSE(
      spec.AnnotateText("test", Annotation::If(MakeQualTrue())).ok());
}

TEST_F(AccessSpecTest, BindReplacesParameters) {
  auto spec = MakeNurseSpec(dtd_);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_TRUE(spec->HasUnboundParams());
  AccessSpec bound = spec->Bind({{"wardNo", "3"}});
  EXPECT_FALSE(bound.HasUnboundParams());
  // The qualifier now compares against the constant.
  auto ann = bound.Get(dtd_.FindType("hospital"), dtd_.FindType("dept"));
  ASSERT_TRUE(ann.has_value());
  EXPECT_NE(ann->ToString().find("\"3\""), std::string::npos)
      << ann->ToString();
}

TEST_F(AccessSpecTest, ToStringListsAnnotationsDeterministically) {
  auto spec = MakeNurseSpec(dtd_);
  ASSERT_TRUE(spec.ok());
  std::string text = spec->ToString();
  EXPECT_NE(text.find("ann(dept, clinicalTrial) = N"), std::string::npos);
  EXPECT_NE(text.find("ann(trial, bill) = Y"), std::string::npos);
  EXPECT_EQ(text, spec->ToString());
}

// -- Spec parser --------------------------------------------------------------

TEST_F(AccessSpecTest, ParserAcceptsPaperSyntax) {
  auto spec = ParseAccessSpec(dtd_, R"(
    # a comment
    ann(dept, clinicalTrial) = N
    ann(clinicalTrial, patientInfo) = Y   # trailing comment
    ann(hospital, dept) = [*/patient/wardNo = $wardNo]
  )");
  ASSERT_TRUE(spec.ok()) << spec.status();
  auto ann = spec->Get(dtd_.FindType("hospital"), dtd_.FindType("dept"));
  ASSERT_TRUE(ann.has_value());
  EXPECT_EQ(ann->kind, AnnotationKind::kQualifier);
}

TEST_F(AccessSpecTest, ParserRejectsBadLines) {
  EXPECT_FALSE(ParseAccessSpec(dtd_, "nonsense").ok());
  EXPECT_FALSE(ParseAccessSpec(dtd_, "ann(dept) = N").ok());
  EXPECT_FALSE(ParseAccessSpec(dtd_, "ann(dept, clinicalTrial) = X").ok());
  EXPECT_FALSE(ParseAccessSpec(dtd_, "ann(dept, clinicalTrial) N").ok());
  EXPECT_FALSE(ParseAccessSpec(dtd_, "ann(dept, clinicalTrial) = [").ok());
  EXPECT_FALSE(ParseAccessSpec(dtd_, "ann(dept, bogus) = N").ok());
}

TEST_F(AccessSpecTest, ParserHandlesTextAnnotations) {
  auto spec = ParseAccessSpec(dtd_, "ann(bill, str) = N");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_TRUE(spec->GetText(dtd_.FindType("bill")).has_value());
}

// -- Annotator (node-level accessibility) --------------------------------------

class AnnotatorTest : public testing::Test {
 protected:
  void SetUp() override {
    dtd_ = MakeHospitalDtd();
    auto doc = ParseXml(R"(
      <hospital>
        <dept>
          <clinicalTrial>
            <patientInfo>
              <patient><name>carol</name><wardNo>3</wardNo>
                <treatment><trial><bill>90</bill></trial></treatment>
              </patient>
            </patientInfo>
            <test>blood</test>
          </clinicalTrial>
          <patientInfo>
            <patient><name>dave</name><wardNo>3</wardNo>
              <treatment><regular><bill>10</bill><medication>aspirin</medication></regular></treatment>
            </patient>
          </patientInfo>
          <staffInfo><staff><nurse>sue</nurse></staff></staffInfo>
        </dept>
        <dept>
          <clinicalTrial><patientInfo/><test>x</test></clinicalTrial>
          <patientInfo>
            <patient><name>erin</name><wardNo>7</wardNo>
              <treatment><trial><bill>55</bill></trial></treatment>
            </patient>
          </patientInfo>
          <staffInfo/>
        </dept>
      </hospital>
    )");
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = std::move(doc).value();
  }

  NodeId FindByText(const std::string& label, const std::string& text) {
    for (NodeId n = 0; n < static_cast<NodeId>(doc_.node_count()); ++n) {
      if (doc_.IsElement(n) && doc_.label(n) == label &&
          doc_.CollectText(n) == text) {
        return n;
      }
    }
    return kNullNode;
  }

  Dtd dtd_;
  XmlTree doc_;
};

TEST_F(AnnotatorTest, RequiresBoundParams) {
  auto spec = MakeNurseSpec(dtd_);
  ASSERT_TRUE(spec.ok());
  auto labeling = ComputeAccessibility(doc_, *spec);
  EXPECT_FALSE(labeling.ok());
  EXPECT_EQ(labeling.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(AnnotatorTest, NurseWard3Labeling) {
  auto spec = MakeNurseSpec(dtd_);
  ASSERT_TRUE(spec.ok());
  AccessSpec bound = spec->Bind({{"wardNo", "3"}});
  auto labeling = ComputeAccessibility(doc_, bound);
  ASSERT_TRUE(labeling.ok()) << labeling.status();
  const auto& acc = labeling->accessible;

  // The root is always accessible.
  EXPECT_TRUE(acc[doc_.root()]);

  // Ward 3's patients are accessible, including the clinical-trial
  // patient (carol) whose trial membership is hidden.
  NodeId carol = FindByText("name", "carol");
  NodeId dave = FindByText("name", "dave");
  ASSERT_NE(carol, kNullNode);
  ASSERT_NE(dave, kNullNode);
  EXPECT_TRUE(acc[carol]);
  EXPECT_TRUE(acc[dave]);
  EXPECT_TRUE(acc[doc_.parent(carol)]);  // the patient node

  // The ward-7 dept fails the ward qualifier: all below is inaccessible.
  NodeId erin = FindByText("name", "erin");
  ASSERT_NE(erin, kNullNode);
  EXPECT_FALSE(acc[erin]);
  EXPECT_FALSE(acc[doc_.parent(erin)]);

  // clinicalTrial / trial / regular / test nodes are never accessible.
  for (NodeId n = 0; n < static_cast<NodeId>(doc_.node_count()); ++n) {
    if (!doc_.IsElement(n)) continue;
    std::string_view label = doc_.label(n);
    if (label == "clinicalTrial" || label == "trial" || label == "regular" ||
        label == "test") {
      EXPECT_FALSE(acc[n]) << label << " node #" << n;
    }
  }

  // bill under ward 3's trial is accessible (explicit Y overrides the
  // hidden trial); bill under ward 7 is not (ancestor qualifier fails).
  NodeId bill90 = FindByText("bill", "90");
  NodeId bill55 = FindByText("bill", "55");
  ASSERT_NE(bill90, kNullNode);
  ASSERT_NE(bill55, kNullNode);
  EXPECT_TRUE(acc[bill90]);
  EXPECT_FALSE(acc[bill55]);
}

TEST_F(AnnotatorTest, UnannotatedChildrenInherit) {
  auto spec = MakeNurseSpec(dtd_);
  ASSERT_TRUE(spec.ok());
  AccessSpec bound = spec->Bind({{"wardNo", "3"}});
  auto labeling = ComputeAccessibility(doc_, bound);
  ASSERT_TRUE(labeling.ok());
  // staffInfo has no annotation anywhere: inherits dept accessibility.
  NodeId sue = FindByText("nurse", "sue");
  ASSERT_NE(sue, kNullNode);
  EXPECT_TRUE(labeling->accessible[sue]);
}

TEST_F(AnnotatorTest, TextNodesFollowTextAnnotations) {
  AccessSpec spec(dtd_);
  ASSERT_TRUE(spec.AnnotateText("bill", Annotation::No()).ok());
  auto labeling = ComputeAccessibility(doc_, spec);
  ASSERT_TRUE(labeling.ok());
  NodeId bill = FindByText("bill", "90");
  ASSERT_NE(bill, kNullNode);
  NodeId text = doc_.first_child(bill);
  ASSERT_TRUE(doc_.IsText(text));
  EXPECT_FALSE(labeling->accessible[text]);
  // The bill element itself stays accessible (inherits).
  EXPECT_TRUE(labeling->accessible[bill]);
}

TEST_F(AnnotatorTest, EmptySpecMakesEverythingAccessible) {
  AccessSpec spec(dtd_);
  auto labeling = ComputeAccessibility(doc_, spec);
  ASSERT_TRUE(labeling.ok());
  EXPECT_EQ(labeling->CountAccessible(),
            static_cast<int>(doc_.node_count()));
}

TEST_F(AnnotatorTest, CountAccessible) {
  AccessSpec spec(dtd_);
  ASSERT_TRUE(spec.Annotate("dept", "clinicalTrial", Annotation::No()).ok());
  auto labeling = ComputeAccessibility(doc_, spec);
  ASSERT_TRUE(labeling.ok());
  EXPECT_LT(labeling->CountAccessible(),
            static_cast<int>(doc_.node_count()));
  EXPECT_GT(labeling->CountAccessible(), 0);
}

}  // namespace
}  // namespace secview
