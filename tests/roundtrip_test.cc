#include <gtest/gtest.h>

#include "common/rng.h"
#include "dtd/normalizer.h"
#include "engine/engine.h"
#include "security/spec_parser.h"
#include "workload/hospital.h"
#include "workload/synthetic.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace secview {
namespace {

/// Round-trip and cross-cutting invariants that tie several modules
/// together.

TEST(RoundTripTest, SpecToStringReparsesToEqualSpec) {
  Dtd dtd = MakeHospitalDtd();
  auto spec = MakeNurseSpec(dtd);
  ASSERT_TRUE(spec.ok());
  std::string text = spec->ToString();
  auto again = ParseAccessSpec(dtd, text);
  ASSERT_TRUE(again.ok()) << again.status() << "\n" << text;
  EXPECT_EQ(again->ToString(), text);
}

TEST(RoundTripTest, RandomSpecsToStringReparse) {
  Rng rng(7);
  for (int round = 0; round < 10; ++round) {
    Dtd dtd = MakeRandomDtd(rng, 4 + static_cast<int>(rng.Below(10)));
    AccessSpec spec = MakeRandomSpec(dtd, rng, 0.3, 0.3, 0.15);
    std::string text = spec.ToString();
    auto again = ParseAccessSpec(dtd, text);
    ASSERT_TRUE(again.ok()) << again.status() << "\n" << text;
    EXPECT_EQ(again->ToString(), text);
  }
}

TEST(RoundTripTest, DtdToStringReparsesEquivalently) {
  Dtd dtd = MakeHospitalDtd();
  auto again = ParseAndNormalizeDtd(dtd.ToString());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE(again->aux_types.empty());
  EXPECT_EQ(again->dtd.ToString(), dtd.ToString());
}

TEST(RoundTripTest, RandomQueryPrintParseFixpoint) {
  Rng rng(13);
  Dtd dtd = MakeRandomDtd(rng, 10);
  for (int i = 0; i < 200; ++i) {
    PathPtr q = MakeRandomDocQuery(dtd, rng, 1 + rng.Below(6));
    std::string printed = ToXPathString(q);
    auto parsed = ParseXPath(printed);
    ASSERT_TRUE(parsed.ok()) << printed;
    // Printing the parse of the print is a fixpoint.
    EXPECT_EQ(ToXPathString(*parsed), printed);
  }
}

TEST(RoundTripTest, GeneratedDocumentSerializeParseIdentity) {
  Rng rng(17);
  for (int round = 0; round < 5; ++round) {
    Dtd dtd = MakeRandomDtd(rng, 4 + static_cast<int>(rng.Below(8)));
    GeneratorOptions gen;
    gen.seed = rng.Next();
    auto doc = GenerateDocument(dtd, gen);
    ASSERT_TRUE(doc.ok());
    auto again = ParseXml(ToXmlString(*doc));
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(ToXmlString(*again), ToXmlString(*doc));
    EXPECT_EQ(again->node_count(), doc->node_count());
  }
}

TEST(EngineHeightTest, RecursiveEngineServesDocumentsOfDifferentHeights) {
  RecursiveFixture fixture = MakeRecursiveFixture();
  auto engine = SecureQueryEngine::Create(std::move(fixture.dtd));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->RegisterPolicy("p", fixture.spec_text).ok());

  auto shallow = ParseXml(
      "<doc><section><title>a</title><meta/></section></doc>");
  auto deep = ParseXml(
      "<doc><section><title>a</title><meta>"
      "<section><title>b</title><meta>"
      "<section><title>c</title><meta/></section>"
      "</meta></section></meta></section></doc>");
  ASSERT_TRUE(shallow.ok());
  ASSERT_TRUE(deep.ok());

  // The same engine must pick per-document unfolding depths; caching by
  // depth must not leak a shallow rewriting into the deep document.
  auto deep_result = (*engine)->Execute("p", *deep, "//title");
  ASSERT_TRUE(deep_result.ok());
  EXPECT_EQ(deep_result->nodes.size(), 3u);
  auto shallow_result = (*engine)->Execute("p", *shallow, "//title");
  ASSERT_TRUE(shallow_result.ok());
  EXPECT_EQ(shallow_result->nodes.size(), 1u);
  // And repeating the deep query after the shallow one still finds all 3.
  auto again = (*engine)->Execute("p", *deep, "//title");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->nodes.size(), 3u);
}

TEST(DeepDocumentTest, ParserSerializerEvaluatorHandleDepth10k) {
  // Pathologically deep documents: the parser and evaluator are
  // iterative; serializer/edit recursion stays within stack limits at
  // this depth (documented bound).
  constexpr int kDepth = 10'000;
  std::string xml;
  for (int i = 0; i < kDepth; ++i) xml += "<a>";
  xml += "<leaf/>";
  for (int i = 0; i < kDepth; ++i) xml += "</a>";

  auto doc = ParseXml(xml);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->Height(), kDepth);

  auto q = ParseXPath("//leaf");
  ASSERT_TRUE(q.ok());
  auto result = EvaluateAtRoot(*doc, *q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);

  EXPECT_EQ(ToXmlString(*doc).size(), xml.size());
}

}  // namespace
}  // namespace secview
