#include <algorithm>

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xpath/ast.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace secview {
namespace {

PathPtr MustParse(const std::string& text) {
  auto r = ParseXPath(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return r.ok() ? *r : MakeEmptySet();
}

// -- AST factories / simplifications ------------------------------------------

TEST(AstTest, SlashSimplifications) {
  PathPtr a = MakeLabel("a");
  EXPECT_EQ(MakeSlash(MakeEmptySet(), a)->kind, PathKind::kEmptySet);
  EXPECT_EQ(MakeSlash(a, MakeEmptySet())->kind, PathKind::kEmptySet);
  EXPECT_EQ(MakeSlash(MakeEpsilon(), a), a);
  EXPECT_EQ(MakeSlash(a, MakeEpsilon()), a);
}

TEST(AstTest, UnionSimplifications) {
  PathPtr a = MakeLabel("a");
  EXPECT_EQ(MakeUnion(MakeEmptySet(), a), a);
  EXPECT_EQ(MakeUnion(a, MakeEmptySet()), a);
  EXPECT_EQ(MakeUnion(a, MakeLabel("a")), a);  // structural dedup
  EXPECT_EQ(MakeUnion(a, MakeLabel("b"))->kind, PathKind::kUnion);
}

TEST(AstTest, QualifierSimplifications) {
  PathPtr a = MakeLabel("a");
  EXPECT_EQ(MakeQualified(a, MakeQualTrue()), a);
  EXPECT_EQ(MakeQualified(a, MakeQualFalse())->kind, PathKind::kEmptySet);
  EXPECT_EQ(MakeQualified(MakeEmptySet(), MakeQualPath(a))->kind,
            PathKind::kEmptySet);
  EXPECT_EQ(MakeQualAnd(MakeQualTrue(), MakeQualPath(a))->kind,
            QualKind::kPath);
  EXPECT_EQ(MakeQualOr(MakeQualFalse(), MakeQualPath(a))->kind,
            QualKind::kPath);
  EXPECT_EQ(MakeQualNot(MakeQualNot(MakeQualPath(a)))->kind, QualKind::kPath);
  EXPECT_EQ(MakeQualPath(MakeEmptySet())->kind, QualKind::kFalse);
}

TEST(AstTest, DescOrSelfCollapses) {
  PathPtr a = MakeLabel("a");
  PathPtr d = MakeDescOrSelf(a);
  EXPECT_EQ(MakeDescOrSelf(d), d);
  EXPECT_EQ(MakeDescOrSelf(MakeEmptySet())->kind, PathKind::kEmptySet);
}

TEST(AstTest, PathSizeCountsNodes) {
  EXPECT_EQ(PathSize(MakeLabel("a")), 1);
  EXPECT_EQ(PathSize(MustParse("a/b")), 3);
  EXPECT_EQ(PathSize(MustParse("//a")), 2);
  EXPECT_GT(PathSize(MustParse("a[b and c]/d")), 5);
}

TEST(AstTest, EqualsIsStructural) {
  EXPECT_TRUE(PathEquals(MustParse("a/b[c]"), MustParse("a/b[c]")));
  EXPECT_FALSE(PathEquals(MustParse("a/b[c]"), MustParse("a/b[d]")));
  EXPECT_FALSE(PathEquals(MustParse("a/b"), MustParse("a//b")));
}

TEST(AstTest, BindParams) {
  PathPtr p = MustParse("a[b = $ward]");
  EXPECT_TRUE(HasUnboundParams(p));
  PathPtr bound = BindParams(p, {{"ward", "3"}});
  EXPECT_FALSE(HasUnboundParams(bound));
  EXPECT_EQ(ToXPathString(bound), "a[b = \"3\"]");
  // Unknown parameters stay.
  PathPtr still = BindParams(p, {{"other", "3"}});
  EXPECT_TRUE(HasUnboundParams(still));
}

TEST(AstTest, NormalizeQualifierSteps) {
  PathPtr p = MustParse("a/b[c]/d");
  PathPtr n = NormalizeQualifierSteps(p);
  // b[c] becomes b/.[c].
  EXPECT_EQ(ToXPathString(n), "a/b/.[c]/d");
}

// -- Parser & printer ---------------------------------------------------------

struct RoundTripCase {
  const char* input;
  const char* printed;  // expected canonical rendering
};

class XPathRoundTripTest : public testing::TestWithParam<RoundTripCase> {};

TEST_P(XPathRoundTripTest, PrintedFormReparsesIdentically) {
  const RoundTripCase& c = GetParam();
  PathPtr p = MustParse(c.input);
  EXPECT_EQ(ToXPathString(p), c.printed);
  // Printing then parsing is the identity on the canonical form.
  PathPtr again = MustParse(ToXPathString(p));
  EXPECT_TRUE(PathEquals(p, again))
      << c.input << " -> " << ToXPathString(p) << " -> "
      << ToXPathString(again);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, XPathRoundTripTest,
    testing::Values(
        RoundTripCase{"a", "a"},
        RoundTripCase{".", "."},
        RoundTripCase{"*", "*"},
        RoundTripCase{"a/b/c", "a/b/c"},
        RoundTripCase{"//a", "//a"},
        RoundTripCase{"a//b", "a//b"},
        RoundTripCase{"//a//b", "//a//b"},
        RoundTripCase{"a | b", "a | b"},
        RoundTripCase{"(a | b)/c", "(a | b)/c"},
        RoundTripCase{"a[b]", "a[b]"},
        RoundTripCase{"a[b = \"x\"]", "a[b = \"x\"]"},
        RoundTripCase{"a[b = $w]", "a[b = $w]"},
        RoundTripCase{"a[b and c]", "a[b and c]"},
        RoundTripCase{"a[b or c and d]", "a[b or c and d]"},
        RoundTripCase{"a[not(b)]", "a[not(b)]"},
        RoundTripCase{"a[not(b or c)]", "a[not(b or c)]"},
        RoundTripCase{"a[@accessibility = \"1\"]",
                      "a[@accessibility = \"1\"]"},
        RoundTripCase{"*[*]", "*[*]"},
        RoundTripCase{"a[b/c]", "a[b/c]"},
        RoundTripCase{"a[//b]", "a[//b]"},
        RoundTripCase{"(a/b)[c]", "(a/b)[c]"},
        RoundTripCase{"r-e.warranty", "r-e.warranty"},
        RoundTripCase{"a[true()]", "a"},
        RoundTripCase{"a[false()]", ".[false()]"},
        RoundTripCase{"a[(b) and c]", "a[b and c]"}));

TEST(XPathParserTest, RejectsBadSyntax) {
  EXPECT_FALSE(ParseXPath("").ok());
  EXPECT_FALSE(ParseXPath("/a").ok());  // absolute paths unsupported
  EXPECT_FALSE(ParseXPath("a/").ok());
  EXPECT_FALSE(ParseXPath("a[").ok());
  EXPECT_FALSE(ParseXPath("a[]").ok());
  EXPECT_FALSE(ParseXPath("a[b=]").ok());
  EXPECT_FALSE(ParseXPath("a b").ok());
  EXPECT_FALSE(ParseXPath("a[@]").ok());  // attribute tests need a name
  EXPECT_FALSE(ParseXPath("(a").ok());
}

TEST(XPathParserTest, PrecedenceUnionVsSlash) {
  // a/b | c parses as (a/b) | c.
  PathPtr p = MustParse("a/b | c");
  ASSERT_EQ(p->kind, PathKind::kUnion);
  EXPECT_EQ(p->left->kind, PathKind::kSlash);
}

TEST(XPathParserTest, QualifierBindsToStep) {
  // a/b[c] qualifies b, not a/b.
  PathPtr p = MustParse("a/b[c]");
  ASSERT_EQ(p->kind, PathKind::kSlash);
  EXPECT_EQ(p->right->kind, PathKind::kQualified);
}

TEST(XPathParserTest, NamesContainingKeywords) {
  // 'android' must not be cut at 'and'.
  PathPtr p = MustParse("a[android or orb]");
  EXPECT_EQ(ToXPathString(p), "a[android or orb]");
}

TEST(XPathParserTest, DoubleSlashAtStart) {
  PathPtr p = MustParse("//a/b");
  ASSERT_EQ(p->kind, PathKind::kSlash);
  EXPECT_EQ(p->left->kind, PathKind::kDescOrSelf);
}

// -- Evaluator ----------------------------------------------------------------

class EvaluatorTest : public testing::Test {
 protected:
  void SetUp() override {
    auto doc = ParseXml(R"(
      <r>
        <a><b>one</b><c><b>two</b></c></a>
        <a><b>three</b></a>
        <d><a><b>four</b></a></d>
      </r>
    )");
    ASSERT_TRUE(doc.ok()) << doc.status();
    tree_ = std::move(doc).value();
  }

  NodeSet Eval(const std::string& query) {
    auto p = ParseXPath(query);
    EXPECT_TRUE(p.ok()) << query << ": " << p.status();
    auto r = EvaluateAtRoot(tree_, *p);
    EXPECT_TRUE(r.ok()) << query << ": " << r.status();
    return r.ok() ? *r : NodeSet{};
  }

  std::vector<std::string> Texts(const NodeSet& nodes) {
    std::vector<std::string> out;
    for (NodeId n : nodes) out.push_back(tree_.CollectText(n));
    return out;
  }

  XmlTree tree_;
};

TEST_F(EvaluatorTest, ChildStep) {
  EXPECT_EQ(Eval("a").size(), 2u);
  EXPECT_EQ(Eval("d").size(), 1u);
  EXPECT_EQ(Eval("b").size(), 0u);  // b is not a child of the root
  EXPECT_EQ(Eval("zz").size(), 0u);
}

TEST_F(EvaluatorTest, Epsilon) {
  NodeSet r = Eval(".");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], tree_.root());
}

TEST_F(EvaluatorTest, Wildcard) {
  EXPECT_EQ(Eval("*").size(), 3u);
  EXPECT_EQ(Eval("*/b").size(), 2u);
}

TEST_F(EvaluatorTest, Slash) {
  EXPECT_EQ(Texts(Eval("a/b")), (std::vector<std::string>{"one", "three"}));
  EXPECT_EQ(Texts(Eval("a/c/b")), (std::vector<std::string>{"two"}));
}

TEST_F(EvaluatorTest, DescendantOrSelf) {
  EXPECT_EQ(Eval("//b").size(), 4u);
  EXPECT_EQ(Eval("//a").size(), 3u);
  EXPECT_EQ(Eval("//a//b").size(), 4u);
  EXPECT_EQ(Eval("d//b").size(), 1u);
  // //. returns every element.
  EXPECT_EQ(Eval("//.").size(), 10u);
}

TEST_F(EvaluatorTest, DescendantResultsSortedUnique) {
  NodeSet r = Eval("//a/b | a/b");
  for (size_t i = 1; i < r.size(); ++i) EXPECT_LT(r[i - 1], r[i]);
  EXPECT_EQ(r.size(), 3u);
}

TEST_F(EvaluatorTest, Union) {
  EXPECT_EQ(Eval("a | d").size(), 3u);
  EXPECT_EQ(Eval("a | a").size(), 2u);
}

TEST_F(EvaluatorTest, Qualifiers) {
  EXPECT_EQ(Eval("a[c]").size(), 1u);
  EXPECT_EQ(Eval("a[not(c)]").size(), 1u);
  EXPECT_EQ(Eval("a[b and c]").size(), 1u);
  EXPECT_EQ(Eval("a[b or c]").size(), 2u);
  EXPECT_EQ(Eval("a[zz]").size(), 0u);
  EXPECT_EQ(Eval("*[b]").size(), 2u);  // d's b is a grandchild
}

TEST_F(EvaluatorTest, TextEquality) {
  EXPECT_EQ(Eval("a[b = \"one\"]").size(), 1u);
  EXPECT_EQ(Eval("a[b = \"nope\"]").size(), 0u);
  EXPECT_EQ(Eval("//a[b = \"four\"]").size(), 1u);
  EXPECT_EQ(Eval("a[c/b = \"two\"]").size(), 1u);
}

TEST_F(EvaluatorTest, QualifierWithDescendant) {
  EXPECT_EQ(Eval("a[//b = \"two\"]").size(), 1u);
  EXPECT_EQ(Eval("*[//b]").size(), 3u);
}

TEST_F(EvaluatorTest, EmptySetQuery) {
  auto r = EvaluateAtRoot(tree_, MakeEmptySet());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST_F(EvaluatorTest, UnboundParamsRejected) {
  auto p = ParseXPath("a[b = $ward]");
  ASSERT_TRUE(p.ok());
  auto r = EvaluateAtRoot(tree_, *p);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  // After binding it evaluates.
  auto bound = BindParams(*p, {{"ward", "one"}});
  auto r2 = EvaluateAtRoot(tree_, bound);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 1u);
}

TEST_F(EvaluatorTest, AttributeQualifier) {
  XmlTree t;
  NodeId root = t.CreateRoot("r");
  NodeId x = t.AppendElement(root, "x");
  NodeId y = t.AppendElement(root, "x");
  t.SetAttribute(x, "accessibility", "1");
  t.SetAttribute(y, "accessibility", "0");
  auto p = ParseXPath("x[@accessibility = \"1\"]");
  ASSERT_TRUE(p.ok());
  auto r = EvaluateAtRoot(t, *p);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0], x);
}

TEST_F(EvaluatorTest, WorkCounterGrows) {
  XPathEvaluator evaluator(tree_);
  ASSERT_TRUE(evaluator.Evaluate(MustParse("//b"), tree_.root()).ok());
  uint64_t work_desc = evaluator.work();
  evaluator.ResetWork();
  ASSERT_TRUE(evaluator.Evaluate(MustParse("a/b"), tree_.root()).ok());
  uint64_t work_child = evaluator.work();
  EXPECT_GT(work_desc, work_child);
}

TEST_F(EvaluatorTest, NestedContextsNoDuplicates) {
  // Context set where one node contains the other: d and d/a.
  XPathEvaluator evaluator(tree_);
  auto d = Eval("d");
  auto da = Eval("d/a");
  NodeSet ctx = d;
  ctx.insert(ctx.end(), da.begin(), da.end());
  std::sort(ctx.begin(), ctx.end());
  auto r = evaluator.Evaluate(MustParse("//b"), ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
}

}  // namespace
}  // namespace secview
