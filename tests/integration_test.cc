#include <algorithm>

#include <gtest/gtest.h>

#include "naive/naive.h"
#include "security/annotator.h"
#include "optimize/optimizer.h"
#include "rewrite/rewriter.h"
#include "security/derive.h"
#include "security/materializer.h"
#include "workload/adex.h"
#include "workload/generator.h"
#include "workload/hospital.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace secview {
namespace {

PathPtr MustParse(const std::string& text) {
  auto r = ParseXPath(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return r.ok() ? *r : MakeEmptySet();
}

/// Example 1.1: with DTD-wide access control that merely blocks the
/// clinicalTrial label, the *difference* between
///   p1 = //dept//patientInfo/patient/name   (all patients) and
///   p2 = //dept/patientInfo/patient/name    (non-trial patients)
/// reveals exactly who is in a clinical trial. Under security views both
/// queries are answered over the view, where patientInfo children of dept
/// include the trial patients with their location concealed — the two
/// results coincide and the inference channel is closed.
TEST(InferenceAttackTest, Example11ChannelClosed) {
  Dtd dtd = MakeHospitalDtd();
  auto spec = MakeNurseSpec(dtd);
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());
  auto doc = GenerateDocument(dtd, HospitalGeneratorOptions(21, 80'000));
  ASSERT_TRUE(doc.ok());

  auto rewriter = QueryRewriter::Create(*view);
  ASSERT_TRUE(rewriter.ok());

  PathPtr p1 = MustParse("//dept//patientInfo/patient/name");
  PathPtr p2 = MustParse("//dept/patientInfo/patient/name");

  auto r1 = rewriter->Rewrite(p1);
  auto r2 = rewriter->Rewrite(p2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  std::vector<std::pair<std::string, std::string>> binding = {
      {"wardNo", "3"}};
  auto result1 = EvaluateAtRoot(*doc, BindParams(*r1, binding));
  auto result2 = EvaluateAtRoot(*doc, BindParams(*r2, binding));
  ASSERT_TRUE(result1.ok());
  ASSERT_TRUE(result2.ok());

  // Identical answers: the attack of Example 1.1 learns nothing.
  EXPECT_EQ(*result1, *result2);

  // Yet the answers are not trivial — trial patients of the ward ARE
  // included (only their trial membership is hidden).
  AccessSpec bound = spec->Bind(binding);
  auto doc_eval = EvaluateAtRoot(
      *doc, MustParse("dept//patientInfo/patient/name"));
  ASSERT_TRUE(doc_eval.ok());
  EXPECT_FALSE(result1->empty());
  EXPECT_LT(result1->size(), doc_eval->size());  // other wards excluded
}

/// The full pipeline of Fig. 3 on the Adex policy: derive -> rewrite ->
/// optimize -> evaluate, checking all three enforcement paths agree.
TEST(PipelineTest, AdexThreeWayAgreement) {
  Dtd dtd = MakeAdexDtd();
  auto spec = MakeAdexSpec(dtd);
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());
  auto doc = GenerateDocument(dtd, AdexGeneratorOptions(31, 120'000, 4));
  ASSERT_TRUE(doc.ok());
  auto queries = MakeAdexQueries();
  ASSERT_TRUE(queries.ok());

  auto rewriter = QueryRewriter::Create(*view);
  ASSERT_TRUE(rewriter.ok());
  auto optimizer = QueryOptimizer::Create(dtd);
  ASSERT_TRUE(optimizer.ok());

  // Naive path: annotated copy of the document.
  XmlTree annotated = doc->Clone();
  ASSERT_TRUE(AnnotateAccessibilityAttributes(annotated, *spec).ok());

  // View path: materialized view for reference.
  auto tv = MaterializeView(*doc, *view, *spec);
  ASSERT_TRUE(tv.ok());

  for (const auto& [name, q] : queries->All()) {
    SCOPED_TRACE(name);
    auto rewritten = rewriter->Rewrite(q);
    ASSERT_TRUE(rewritten.ok());
    auto optimized = optimizer->Optimize(*rewritten);
    ASSERT_TRUE(optimized.ok());

    auto ref = EvaluateAtRoot(*tv, q);
    ASSERT_TRUE(ref.ok());
    std::vector<NodeId> expected;
    for (NodeId n : *ref) expected.push_back(tv->origin(n));
    std::sort(expected.begin(), expected.end());

    auto via_rewrite = EvaluateAtRoot(*doc, *rewritten);
    auto via_optimize = EvaluateAtRoot(*doc, *optimized);
    auto via_naive = EvaluateAtRoot(annotated, NaiveRewrite(q));
    ASSERT_TRUE(via_rewrite.ok());
    ASSERT_TRUE(via_optimize.ok());
    ASSERT_TRUE(via_naive.ok());

    EXPECT_EQ(*via_rewrite, expected) << ToXPathString(*rewritten);
    EXPECT_EQ(*via_optimize, expected) << ToXPathString(*optimized);
    EXPECT_EQ(*via_naive, expected);
  }
}

/// Sensitive data never escapes: any query over the view returns only
/// accessible nodes.
TEST(PipelineTest, RewrittenQueriesReturnOnlyAccessibleNodes) {
  Dtd dtd = MakeHospitalDtd();
  auto spec = MakeNurseSpec(dtd);
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());
  auto doc = GenerateDocument(dtd, HospitalGeneratorOptions(41, 50'000));
  ASSERT_TRUE(doc.ok());
  auto rewriter = QueryRewriter::Create(*view);
  ASSERT_TRUE(rewriter.ok());

  std::vector<std::pair<std::string, std::string>> binding = {
      {"wardNo", "5"}};
  AccessSpec bound = spec->Bind(binding);
  auto labeling = ComputeAccessibility(*doc, bound);
  ASSERT_TRUE(labeling.ok());

  // Aggressive probes, including ones that name hidden labels.
  for (const char* probe :
       {"//*", "//name", "//bill", "//test", "//trial", "//clinicalTrial",
        "//patientInfo//*", "*/*/*", "//wardNo", "//dummy1//*",
        "//patient[//bill]/name"}) {
    SCOPED_TRACE(probe);
    auto rewritten = rewriter->Rewrite(MustParse(probe));
    ASSERT_TRUE(rewritten.ok());
    auto result = EvaluateAtRoot(*doc, BindParams(*rewritten, binding));
    ASSERT_TRUE(result.ok());
    for (NodeId n : *result) {
      // Dummy-mapped hidden nodes are allowed: they carry no label/data in
      // the view. Everything else must be accessible.
      std::string_view label = doc->label(n);
      bool is_hidden_structural = (label == "trial" || label == "regular");
      EXPECT_TRUE(labeling->accessible[n] || is_hidden_structural)
          << "leaked node " << n << " <" << label << ">";
    }
  }
}

/// Multiple user groups, one document: distinct bindings see disjoint
/// departments.
TEST(PipelineTest, PerWardIsolation) {
  Dtd dtd = MakeHospitalDtd();
  auto spec = MakeNurseSpec(dtd);
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());
  auto doc = GenerateDocument(dtd, HospitalGeneratorOptions(51, 60'000));
  ASSERT_TRUE(doc.ok());
  auto rewriter = QueryRewriter::Create(*view);
  ASSERT_TRUE(rewriter.ok());
  auto rewritten = rewriter->Rewrite(MustParse("//patient/name"));
  ASSERT_TRUE(rewritten.ok());

  std::vector<NodeId> all;
  for (int ward = 1; ward <= 8; ++ward) {
    auto result = EvaluateAtRoot(
        *doc,
        BindParams(*rewritten, {{"wardNo", std::to_string(ward)}}));
    ASSERT_TRUE(result.ok());
    all.insert(all.end(), result->begin(), result->end());
  }
  // A name can appear under several wards only if its dept has patients
  // in multiple wards — with per-dept wardNo qualifiers the same name
  // node may satisfy several bindings; de-duplicate before comparing.
  std::sort(all.begin(), all.end());
  size_t with_dups = all.size();
  all.erase(std::unique(all.begin(), all.end()), all.end());
  EXPECT_LE(all.size(), with_dups);
  // Together the wards cover every patient name in the document.
  auto everything = EvaluateAtRoot(*doc, MustParse("//patient/name"));
  ASSERT_TRUE(everything.ok());
  EXPECT_EQ(all.size(), everything->size());
}

}  // namespace
}  // namespace secview
