#include "xpath/profiler.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/plan_profile.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/plan.h"

namespace secview {
namespace {

constexpr char kDoc[] = R"(
  <hospital>
    <dept>
      <clinicalTrial>
        <patientInfo>
          <patient><name>carol</name><wardNo>3</wardNo>
            <treatment><trial><bill>900</bill></trial></treatment>
          </patient>
        </patientInfo>
        <test>blood</test>
      </clinicalTrial>
      <patientInfo>
        <patient><name>dave</name><wardNo>3</wardNo>
          <treatment><regular><bill>120</bill><medication>m</medication></regular></treatment>
        </patient>
      </patientInfo>
      <staffInfo><staff><nurse>sue</nurse></staff></staffInfo>
    </dept>
  </hospital>
)";

/// The query corpus every attribution test runs: child chains, both
/// descendant shapes, wildcards, unions, and predicates (path, equality,
/// boolean connectives) — one query per evaluator dispatch arm.
const std::vector<std::string>& Corpus() {
  static const std::vector<std::string>* corpus = new std::vector<std::string>{
      "dept",
      "dept/patientInfo/patient",
      "dept/patientInfo/patient/name",
      "//patient",
      "//patient/name",
      "//bill",
      "dept//bill",
      "*/*",
      "//patient[wardNo = \"3\"]",
      "//patient[wardNo = \"3\"]/name",
      "//patient[treatment/regular]",
      "//patient[wardNo = \"3\" and treatment/regular]/name",
      "//patient[wardNo = \"9\" or name]",
      "//bill | //medication",
      "dept/patientInfo/patient | //nurse",
      ".",
      "dept/.",
  };
  return *corpus;
}

XmlTree MustParseDoc() {
  auto doc = ParseXml(kDoc);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return std::move(doc).value();
}

PathPtr MustParsePath(const std::string& text) {
  auto p = ParseXPath(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status();
  return std::move(p).value();
}

TEST(PlanProfilerTest, PerStepCostsSumToAggregateCounters) {
  XmlTree doc = MustParseDoc();
  for (const std::string& text : Corpus()) {
    PathPtr p = MustParsePath(text);
    XPathEvaluator evaluator(doc);
    PlanProfiler profiler;
    evaluator.set_profiler(&profiler);
    auto result = evaluator.Evaluate(p, doc.root());
    ASSERT_TRUE(result.ok()) << text;

    EvalCounters totals = ProfileTotals(profiler.root());
    const EvalCounters& agg = evaluator.counters();
    EXPECT_EQ(totals.nodes_touched, agg.nodes_touched) << text;
    EXPECT_EQ(totals.predicate_evals, agg.predicate_evals) << text;
    EXPECT_EQ(totals.index_scans, agg.index_scans) << text;
    EXPECT_EQ(totals.sort_skips, agg.sort_skips) << text;
  }
}

TEST(PlanProfilerTest, ProfiledAndUnprofiledRunsAgreeOnResults) {
  XmlTree doc = MustParseDoc();
  for (const std::string& text : Corpus()) {
    PathPtr p = MustParsePath(text);
    XPathEvaluator plain(doc);
    auto expected = plain.Evaluate(p, doc.root());
    ASSERT_TRUE(expected.ok()) << text;

    XPathEvaluator profiled(doc);
    PlanProfiler profiler;
    profiled.set_profiler(&profiler);
    auto actual = profiled.Evaluate(p, doc.root());
    ASSERT_TRUE(actual.ok()) << text;
    EXPECT_EQ(*actual, *expected) << text;
    // Profiling must observe costs, not change them.
    EXPECT_EQ(profiled.counters().nodes_touched, plain.counters().nodes_touched)
        << text;
  }
}

TEST(PlanProfilerTest, CompiledPathKeepsSumInvariant) {
  // The same invariant on the compiled-plan VM (xpath/vm.cc): per-step
  // self sums must equal the aggregate counters on that path too.
  XmlTree doc = MustParseDoc();
  for (const std::string& text : Corpus()) {
    PathPtr p = MustParsePath(text);
    auto plan = CompilePlan(p);
    ASSERT_NE(plan, nullptr) << text;
    XPathEvaluator evaluator(doc);
    PlanProfiler profiler;
    evaluator.set_profiler(&profiler);
    auto result = evaluator.EvaluateCompiled(*plan, doc.root());
    ASSERT_TRUE(result.ok()) << text;

    EvalCounters totals = ProfileTotals(profiler.root());
    const EvalCounters& agg = evaluator.counters();
    EXPECT_EQ(totals.nodes_touched, agg.nodes_touched) << text;
    EXPECT_EQ(totals.predicate_evals, agg.predicate_evals) << text;
    EXPECT_EQ(totals.index_scans, agg.index_scans) << text;
    EXPECT_EQ(totals.sort_skips, agg.sort_skips) << text;
  }
}

TEST(PlanProfilerTest, CompiledAndAstProfilesAgree) {
  // Both interpreters must attribute identical costs to identical step
  // signatures: flatten each profile and compare signature-keyed rows.
  XmlTree doc = MustParseDoc();
  for (const std::string& text : Corpus()) {
    PathPtr p = MustParsePath(text);

    XPathEvaluator ast_eval(doc);
    PlanProfiler ast_profiler;
    ast_eval.set_profiler(&ast_profiler);
    auto ast_result = ast_eval.Evaluate(p, doc.root());
    ASSERT_TRUE(ast_result.ok()) << text;

    auto plan = CompilePlan(p);
    ASSERT_NE(plan, nullptr) << text;
    XPathEvaluator vm_eval(doc);
    PlanProfiler vm_profiler;
    vm_eval.set_profiler(&vm_profiler);
    auto vm_result = vm_eval.EvaluateCompiled(*plan, doc.root());
    ASSERT_TRUE(vm_result.ok()) << text;

    EXPECT_EQ(*vm_result, *ast_result) << text;
    std::vector<obs::PlanStepRecord> ast_rows =
        FlattenStepProfile(ast_profiler.root());
    std::vector<obs::PlanStepRecord> vm_rows =
        FlattenStepProfile(vm_profiler.root());
    ASSERT_EQ(ast_rows.size(), vm_rows.size()) << text;
    for (size_t i = 0; i < ast_rows.size(); ++i) {
      EXPECT_EQ(ast_rows[i].signature, vm_rows[i].signature) << text;
      EXPECT_EQ(ast_rows[i].invocations, vm_rows[i].invocations) << text;
      EXPECT_EQ(ast_rows[i].nodes_touched, vm_rows[i].nodes_touched) << text;
      EXPECT_EQ(ast_rows[i].in_cardinality, vm_rows[i].in_cardinality) << text;
      EXPECT_EQ(ast_rows[i].out_cardinality, vm_rows[i].out_cardinality)
          << text;
    }
  }
}

TEST(PlanProfilerTest, RootShapeAndInvocations) {
  XmlTree doc = MustParseDoc();
  PathPtr p = MustParsePath("dept/patientInfo/patient");
  XPathEvaluator evaluator(doc);
  PlanProfiler profiler;
  evaluator.set_profiler(&profiler);
  ASSERT_TRUE(evaluator.Evaluate(p, doc.root()).ok());

  const StepProfile& root = profiler.root();
  EXPECT_EQ(root.signature, "query");
  EXPECT_EQ(root.axis, "query");
  ASSERT_FALSE(root.children.empty());
  // The outermost step (the compose chain) ran exactly once.
  EXPECT_EQ(root.children[0]->invocations, 1u);
  EXPECT_GT(root.children[0]->total_nanos, 0u);
}

TEST(PlanProfilerTest, SignaturesNameAxesAndLabels) {
  XmlTree doc = MustParseDoc();
  PathPtr p =
      MustParsePath("//patient[wardNo = \"3\"]/name | dept/staffInfo/*");
  XPathEvaluator evaluator(doc);
  PlanProfiler profiler;
  evaluator.set_profiler(&profiler);
  ASSERT_TRUE(evaluator.Evaluate(p, doc.root()).ok());

  std::vector<obs::PlanStepRecord> rows = FlattenStepProfile(profiler.root());
  ASSERT_FALSE(rows.empty());
  auto has = [&rows](const std::string& signature) {
    for (const auto& row : rows) {
      if (row.signature == signature) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("union"));
  EXPECT_TRUE(has("child::name"));
  EXPECT_TRUE(has("child::*"));
  EXPECT_TRUE(has("pred::eq")) << "equality predicate step missing";
  for (const auto& row : rows) {
    EXPECT_NE(row.signature, "query") << "synthetic root must not flatten";
    EXPECT_FALSE(row.axis.empty()) << row.signature;
  }
}

TEST(PlanProfilerTest, HottestStepAndHotLine) {
  XmlTree doc = MustParseDoc();
  PathPtr p = MustParsePath("//bill");
  XPathEvaluator evaluator(doc);
  PlanProfiler profiler;
  evaluator.set_profiler(&profiler);
  ASSERT_TRUE(evaluator.Evaluate(p, doc.root()).ok());

  const StepProfile* hottest = HottestStep(profiler.root());
  ASSERT_NE(hottest, nullptr);
  EXPECT_GT(hottest->nodes_touched, 0u);
  std::string line = HotStepLine(profiler.root());
  EXPECT_EQ(line, hottest->signature + " nodes=" +
                      std::to_string(hottest->nodes_touched));
  // An untouched profiler has no hot step.
  PlanProfiler empty;
  EXPECT_EQ(HottestStep(empty.root()), nullptr);
  EXPECT_TRUE(HotStepLine(empty.root()).empty());
}

TEST(PlanProfilerTest, AccumulatesAcrossCallsAndTakeRootResets) {
  XmlTree doc = MustParseDoc();
  PathPtr p = MustParsePath("//patient");
  XPathEvaluator evaluator(doc);
  PlanProfiler profiler;
  evaluator.set_profiler(&profiler);
  ASSERT_TRUE(evaluator.Evaluate(p, doc.root()).ok());
  uint64_t once = ProfileTotals(profiler.root()).nodes_touched;
  ASSERT_TRUE(evaluator.Evaluate(p, doc.root()).ok());
  EXPECT_EQ(ProfileTotals(profiler.root()).nodes_touched, 2 * once);

  std::unique_ptr<StepProfile> taken = profiler.TakeRoot();
  EXPECT_EQ(ProfileTotals(*taken).nodes_touched, 2 * once);
  EXPECT_TRUE(profiler.root().children.empty());
  EXPECT_EQ(ProfileTotals(profiler.root()).nodes_touched, 0u);
}

TEST(PlanProfilerTest, TextRenderingListsEverySignature) {
  XmlTree doc = MustParseDoc();
  PathPtr p = MustParsePath("//patient[wardNo = \"3\"]/name");
  XPathEvaluator evaluator(doc);
  PlanProfiler profiler;
  evaluator.set_profiler(&profiler);
  ASSERT_TRUE(evaluator.Evaluate(p, doc.root()).ok());

  std::string text = StepProfileText(profiler.root());
  for (const auto& row : FlattenStepProfile(profiler.root())) {
    EXPECT_NE(text.find(row.signature), std::string::npos) << row.signature;
  }
  EXPECT_NE(text.find("hot step:"), std::string::npos);
}

TEST(PlanProfilerTest, FlushStepProfileMetricsFeedsPerAxisInstruments) {
  XmlTree doc = MustParseDoc();
  PathPtr p = MustParsePath("//patient/name");
  XPathEvaluator evaluator(doc);
  PlanProfiler profiler;
  evaluator.set_profiler(&profiler);
  ASSERT_TRUE(evaluator.Evaluate(p, doc.root()).ok());

  obs::MetricsRegistry metrics;
  FlushStepProfileMetrics(profiler.root(), metrics);
  uint64_t descendant =
      metrics.GetCounter("eval.axis.descendant.nodes").value();
  uint64_t child = metrics.GetCounter("eval.axis.child.nodes").value();
  EXPECT_GT(descendant + child, 0u);
  EXPECT_EQ(descendant + child +
                metrics.GetCounter("eval.axis.compose.nodes").value() +
                metrics.GetCounter("eval.axis.self.nodes").value() +
                metrics.GetCounter("eval.axis.predicate.nodes").value() +
                metrics.GetCounter("eval.axis.filter.nodes").value() +
                metrics.GetCounter("eval.axis.union.nodes").value() +
                metrics.GetCounter("eval.axis.empty.nodes").value(),
            evaluator.counters().nodes_touched);
}

TEST(PlanProfileTableTest, RecordsMergeAndRankBySelfNodes) {
  obs::PlanProfileTable table;
  obs::PlanStepRecord hot;
  hot.signature = "descendant::patient";
  hot.axis = "descendant";
  hot.invocations = 1;
  hot.nodes_touched = 100;
  obs::PlanStepRecord cold;
  cold.signature = "child::name";
  cold.axis = "child";
  cold.invocations = 2;
  cold.nodes_touched = 5;
  table.Record({hot, cold});
  table.Record({hot});

  EXPECT_EQ(table.queries(), 2u);
  EXPECT_EQ(table.steps(), 2u);
  std::vector<obs::PlanStepRecord> rows = table.Snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].signature, "descendant::patient");
  EXPECT_EQ(rows[0].nodes_touched, 200u);
  EXPECT_EQ(rows[0].queries, 2u);
  EXPECT_EQ(rows[1].queries, 1u);
  ASSERT_EQ(table.TopK(1).size(), 1u);
  EXPECT_EQ(table.TopK(1)[0].signature, "descendant::patient");

  std::string text = obs::RenderPlanProfileText(rows, 10, table.queries());
  EXPECT_NE(text.find("descendant::patient"), std::string::npos);
  EXPECT_NE(text.find("2 profiled quer"), std::string::npos);
}

TEST(PlanProfilerTest, ProfileLineJsonRoundTripsThroughValidator) {
  XmlTree doc = MustParseDoc();
  for (const std::string& text : Corpus()) {
    PathPtr p = MustParsePath(text);
    XPathEvaluator evaluator(doc);
    PlanProfiler profiler;
    evaluator.set_profiler(&profiler);
    ASSERT_TRUE(evaluator.Evaluate(p, doc.root()).ok());

    obs::Json line = ProfileLineJson(profiler.root(), "nurse", text,
                                     /*unix_micros=*/1234567);
    std::string dumped = line.Dump(false);
    Status valid = obs::ValidateProfileLine(dumped);
    EXPECT_TRUE(valid.ok()) << text << ": " << valid.message();

    auto parsed = obs::ParseProfileJsonl(dumped + "\n\n");
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed->size(), 1u);
  }
}

TEST(PlanProfilerTest, ValidatorRejectsBrokenSumInvariant) {
  XmlTree doc = MustParseDoc();
  PathPtr p = MustParsePath("//patient/name");
  XPathEvaluator evaluator(doc);
  PlanProfiler profiler;
  evaluator.set_profiler(&profiler);
  ASSERT_TRUE(evaluator.Evaluate(p, doc.root()).ok());
  obs::Json line =
      ProfileLineJson(profiler.root(), "nurse", "//patient/name", 1);
  auto* counters = const_cast<obs::Json*>(line.Find("counters"));
  ASSERT_NE(counters, nullptr);
  counters->Set("nodes_touched",
                obs::Json(counters->Find("nodes_touched")->AsNumber() + 1));
  EXPECT_FALSE(obs::ValidateProfileLine(line.Dump(false)).ok());
}

}  // namespace
}  // namespace secview
