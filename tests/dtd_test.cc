#include <gtest/gtest.h>

#include "dtd/content_model.h"
#include "dtd/dtd.h"
#include "dtd/dtd_parser.h"
#include "dtd/graph.h"
#include "dtd/normalizer.h"
#include "dtd/validator.h"
#include "workload/hospital.h"
#include "xml/parser.h"

namespace secview {
namespace {

TEST(ContentModelTest, ToStringForms) {
  EXPECT_EQ(ContentModel::Empty().ToString(), "EMPTY");
  EXPECT_EQ(ContentModel::Text().ToString(), "(#PCDATA)");
  EXPECT_EQ(ContentModel::Sequence({"a", "b"}).ToString(), "(a, b)");
  EXPECT_EQ(ContentModel::Choice({"a", "b"}).ToString(), "(a | b)");
  EXPECT_EQ(ContentModel::Star("a").ToString(), "(a)*");
}

TEST(ContentModelTest, Mentions) {
  ContentModel cm = ContentModel::Sequence({"a", "b"});
  EXPECT_TRUE(cm.Mentions("a"));
  EXPECT_FALSE(cm.Mentions("c"));
}

TEST(DtdTest, BuildAndQuery) {
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("r", ContentModel::Sequence({"a", "b"})).ok());
  ASSERT_TRUE(dtd.AddType("a", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.AddType("b", ContentModel::Star("a")).ok());
  ASSERT_TRUE(dtd.SetRoot("r").ok());
  ASSERT_TRUE(dtd.Finalize().ok());

  EXPECT_EQ(dtd.NumTypes(), 3);
  EXPECT_EQ(dtd.TypeName(dtd.root()), "r");
  TypeId a = dtd.FindType("a");
  TypeId b = dtd.FindType("b");
  EXPECT_TRUE(dtd.HasChild(dtd.root(), a));
  EXPECT_TRUE(dtd.HasChild(b, a));
  EXPECT_FALSE(dtd.HasChild(a, b));
  EXPECT_EQ(dtd.FindType("zz"), kNullType);
  EXPECT_GT(dtd.Size(), dtd.NumTypes());
}

TEST(DtdTest, RejectsDuplicatesAndDanglingRefs) {
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("r", ContentModel::Star("a")).ok());
  EXPECT_FALSE(dtd.AddType("r", ContentModel::Empty()).ok());
  ASSERT_TRUE(dtd.SetRoot("r").ok());
  EXPECT_FALSE(dtd.Finalize().ok());  // 'a' undefined
}

TEST(DtdTest, RejectsMissingRoot) {
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("r", ContentModel::Empty()).ok());
  EXPECT_FALSE(dtd.Finalize().ok());
  ASSERT_TRUE(dtd.SetRoot("nope").ok());
  EXPECT_FALSE(dtd.Finalize().ok());
}

TEST(DtdTest, RejectsDuplicateChoiceAlternative) {
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("r", ContentModel::Choice({"a", "a"})).ok());
  ASSERT_TRUE(dtd.AddType("a", ContentModel::Empty()).ok());
  ASSERT_TRUE(dtd.SetRoot("r").ok());
  EXPECT_FALSE(dtd.Finalize().ok());
}

TEST(DtdTest, RejectsInvalidName) {
  Dtd dtd;
  EXPECT_FALSE(dtd.AddType("9bad", ContentModel::Empty()).ok());
}


TEST(DtdTest, SizeCountsTypesAndProductionSymbols) {
  Dtd dtd = MakeHospitalDtd();
  // 17 types; production symbols: hospital(1) dept(3) clinicalTrial(2)
  // patientInfo(1) patient(3) treatment(2) trial(1) regular(2)
  // staffInfo(1) staff(2) + 7 text types(0) = 18.
  EXPECT_EQ(dtd.NumTypes(), 17);
  EXPECT_EQ(dtd.Size(), 17 + 18);
}

TEST(DtdGraphTest, HospitalStructure) {
  Dtd dtd = MakeHospitalDtd();
  DtdGraph graph(dtd);
  EXPECT_FALSE(graph.IsRecursive());
  TypeId hospital = dtd.FindType("hospital");
  TypeId bill = dtd.FindType("bill");
  TypeId staff = dtd.FindType("staff");
  EXPECT_TRUE(graph.ReachableStrict(hospital, bill));
  EXPECT_FALSE(graph.ReachableStrict(bill, hospital));
  EXPECT_TRUE(graph.Reachable(bill, bill));  // or-self
  EXPECT_FALSE(graph.ReachableStrict(staff, bill));
  EXPECT_EQ(graph.TopologicalOrder().size(), size_t(dtd.NumTypes()));
  EXPECT_TRUE(graph.UnreachableFromRoot().empty());
}

TEST(DtdGraphTest, DetectsRecursion) {
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("a", ContentModel::Star("b")).ok());
  ASSERT_TRUE(dtd.AddType("b", ContentModel::Choice({"a", "c"})).ok());
  ASSERT_TRUE(dtd.AddType("c", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.SetRoot("a").ok());
  ASSERT_TRUE(dtd.Finalize().ok());
  DtdGraph graph(dtd);
  EXPECT_TRUE(graph.IsRecursive());
  EXPECT_TRUE(graph.IsRecursiveType(dtd.FindType("a")));
  EXPECT_TRUE(graph.IsRecursiveType(dtd.FindType("b")));
  EXPECT_FALSE(graph.IsRecursiveType(dtd.FindType("c")));
  EXPECT_TRUE(graph.ReachableStrict(dtd.FindType("a"), dtd.FindType("a")));
}

TEST(DtdGraphTest, SelfLoop) {
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("a", ContentModel::Star("a")).ok());
  ASSERT_TRUE(dtd.SetRoot("a").ok());
  ASSERT_TRUE(dtd.Finalize().ok());
  DtdGraph graph(dtd);
  EXPECT_TRUE(graph.IsRecursive());
  EXPECT_TRUE(graph.IsRecursiveType(0));
}

TEST(DtdGraphTest, ParentsAndChildren) {
  Dtd dtd = MakeHospitalDtd();
  DtdGraph graph(dtd);
  TypeId patient_info = dtd.FindType("patientInfo");
  // patientInfo appears under both dept and clinicalTrial.
  EXPECT_EQ(graph.Parents(patient_info).size(), 2u);
  EXPECT_EQ(graph.Children(patient_info).size(), 1u);
}

// -- DTD parser ---------------------------------------------------------------

TEST(DtdParserTest, ParsesDeclarations) {
  auto r = ParseDtdText(R"(
    <!-- a comment -->
    <!ELEMENT a (b, c?)>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT c (d | e)+>
    <!ELEMENT d EMPTY>
    <!ELEMENT e (#PCDATA)>
    <!ATTLIST a x CDATA #IMPLIED>
  )");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->elements.size(), 5u);
  EXPECT_EQ(r->root, "a");
  EXPECT_EQ(r->elements[0].content->ToString(), "(b, c?)");
  EXPECT_EQ(r->elements[2].content->ToString(), "(d | e)+");
}

TEST(DtdParserTest, MixedContent) {
  auto r = ParseDtdText("<!ELEMENT a (#PCDATA | b)*> <!ELEMENT b EMPTY>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->elements[0].content->kind, ContentRegex::Kind::kStar);
}

TEST(DtdParserTest, RejectsAnyAndGarbage) {
  EXPECT_FALSE(ParseDtdText("<!ELEMENT a ANY>").ok());
  EXPECT_FALSE(ParseDtdText("<!ELEMENT a (b,>").ok());
  EXPECT_FALSE(ParseDtdText("nonsense").ok());
  EXPECT_FALSE(ParseDtdText("").ok());
}

TEST(DtdParserTest, NestedGroups) {
  auto r = ParseDtdText("<!ELEMENT a ((b, c) | (d, e))*>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->elements[0].content->ToString(), "((b, c) | (d, e))*");
}

// -- Normalizer ---------------------------------------------------------------

TEST(NormalizerTest, AlreadyNormalFormsPassThrough) {
  auto r = ParseAndNormalizeDtd(R"(
    <!ELEMENT r (a, b)>
    <!ELEMENT a (#PCDATA)>
    <!ELEMENT b (c | d)>
    <!ELEMENT c EMPTY>
    <!ELEMENT d (d2)*>
    <!ELEMENT d2 (#PCDATA)>
  )");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->aux_types.empty());
  EXPECT_EQ(r->dtd.NumTypes(), 6);
  EXPECT_EQ(r->dtd.Content(r->dtd.FindType("b")).kind(),
            ContentKind::kChoice);
}

TEST(NormalizerTest, OptionalBecomesStarByDefault) {
  auto r = ParseAndNormalizeDtd(
      "<!ELEMENT r (a?, b)> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>");
  ASSERT_TRUE(r.ok()) << r.status();
  // (a?, b) => (aux, b) with aux -> a*.
  const Dtd& dtd = r->dtd;
  const ContentModel& root = dtd.Content(dtd.root());
  ASSERT_EQ(root.kind(), ContentKind::kSequence);
  ASSERT_EQ(root.types().size(), 2u);
  ASSERT_EQ(r->aux_types.size(), 1u);
  TypeId aux = dtd.FindType(r->aux_types[0]);
  EXPECT_EQ(dtd.Content(aux).kind(), ContentKind::kStar);
  EXPECT_EQ(dtd.Content(aux).types()[0], "a");
}

TEST(NormalizerTest, PlusKeepsAtLeastOne) {
  auto r = ParseAndNormalizeDtd("<!ELEMENT r (a)+> <!ELEMENT a EMPTY>");
  ASSERT_TRUE(r.ok()) << r.status();
  const ContentModel& root = r->dtd.Content(r->dtd.root());
  ASSERT_EQ(root.kind(), ContentKind::kSequence);
  ASSERT_EQ(root.types().size(), 2u);
  EXPECT_EQ(root.types()[0], "a");
  EXPECT_EQ(r->dtd.Content(r->dtd.FindType(root.types()[1])).kind(),
            ContentKind::kStar);
}

TEST(NormalizerTest, StarOfAlternationGetsAuxType) {
  auto r = ParseAndNormalizeDtd(
      "<!ELEMENT r (a | b)*> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>");
  ASSERT_TRUE(r.ok()) << r.status();
  const ContentModel& root = r->dtd.Content(r->dtd.root());
  ASSERT_EQ(root.kind(), ContentKind::kStar);
  TypeId aux = r->dtd.FindType(root.types()[0]);
  ASSERT_NE(aux, kNullType);
  EXPECT_EQ(r->dtd.Content(aux).kind(), ContentKind::kChoice);
}

TEST(NormalizerTest, FinalizedAndConsistent) {
  auto r = ParseAndNormalizeDtd(R"(
    <!ELEMENT book (title, (chapter | appendix)+, index?)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT chapter (title, para*)>
    <!ELEMENT appendix (para+)>
    <!ELEMENT para (#PCDATA)>
    <!ELEMENT index (#PCDATA)>
  )");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->dtd.finalized());
  EXPECT_GT(r->aux_types.size(), 0u);
}

// -- Validator ----------------------------------------------------------------

class ValidatorTest : public testing::Test {
 protected:
  Dtd dtd_ = MakeHospitalDtd();
};

TEST_F(ValidatorTest, AcceptsConformingDocument) {
  auto doc = ParseXml(R"(
    <hospital>
      <dept>
        <clinicalTrial><patientInfo/><test>t</test></clinicalTrial>
        <patientInfo>
          <patient><name>n</name><wardNo>3</wardNo>
            <treatment><trial><bill>10</bill></trial></treatment>
          </patient>
        </patientInfo>
        <staffInfo><staff><nurse>sue</nurse></staff></staffInfo>
      </dept>
    </hospital>
  )");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_TRUE(ValidateInstance(*doc, dtd_).ok());
}

TEST_F(ValidatorTest, RejectsWrongRoot) {
  auto doc = ParseXml("<dept/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(ValidateInstance(*doc, dtd_).ok());
}

TEST_F(ValidatorTest, RejectsSequenceViolation) {
  // dept missing staffInfo.
  auto doc = ParseXml(
      "<hospital><dept><clinicalTrial><patientInfo/><test>t</test>"
      "</clinicalTrial><patientInfo/></dept></hospital>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(ValidateInstance(*doc, dtd_).ok());
}

TEST_F(ValidatorTest, RejectsChoiceWithBothAlternatives) {
  auto doc = ParseXml(
      "<hospital><dept>"
      "<clinicalTrial><patientInfo/><test>t</test></clinicalTrial>"
      "<patientInfo><patient><name>n</name><wardNo>1</wardNo>"
      "<treatment><trial><bill>1</bill></trial>"
      "<regular><bill>1</bill><medication>m</medication></regular>"
      "</treatment></patient></patientInfo>"
      "<staffInfo/></dept></hospital>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(ValidateInstance(*doc, dtd_).ok());
}

TEST_F(ValidatorTest, RejectsTextUnderNonTextElement) {
  auto doc = ParseXml("<hospital>oops</hospital>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(ValidateInstance(*doc, dtd_).ok());
}

TEST_F(ValidatorTest, RejectsUndeclaredElement) {
  auto doc = ParseXml("<hospital><mystery/></hospital>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(ValidateInstance(*doc, dtd_).ok());
}

TEST_F(ValidatorTest, StarAcceptsZeroChildren) {
  auto doc = ParseXml("<hospital/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(ValidateInstance(*doc, dtd_).ok());
}

}  // namespace
}  // namespace secview
