#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "cli/cli.h"
#include "common/failpoint.h"
#include "obs/audit.h"
#include "obs/json.h"
#include "obs/plan_profile.h"
#include "obs/trace.h"
#include "obs/trace_store.h"

namespace secview {
namespace {

constexpr char kHospitalDtdText[] = R"(
  <!ELEMENT hospital (dept)*>
  <!ELEMENT dept (clinicalTrial, patientInfo, staffInfo)>
  <!ELEMENT clinicalTrial (patientInfo, test)>
  <!ELEMENT patientInfo (patient)*>
  <!ELEMENT patient (name, wardNo, treatment)>
  <!ELEMENT treatment (trial | regular)>
  <!ELEMENT trial (bill)>
  <!ELEMENT regular (bill, medication)>
  <!ELEMENT staffInfo (staff)*>
  <!ELEMENT staff (doctor | nurse)>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT wardNo (#PCDATA)>
  <!ELEMENT test (#PCDATA)>
  <!ELEMENT bill (#PCDATA)>
  <!ELEMENT medication (#PCDATA)>
  <!ELEMENT doctor (#PCDATA)>
  <!ELEMENT nurse (#PCDATA)>
)";

constexpr char kNurseSpecText[] = R"(
  ann(hospital, dept) = [*/patient/wardNo = $wardNo]
  ann(dept, clinicalTrial) = N
  ann(clinicalTrial, patientInfo) = Y
  ann(treatment, trial) = N
  ann(treatment, regular) = N
  ann(trial, bill) = Y
  ann(regular, bill) = Y
  ann(regular, medication) = Y
)";

constexpr char kDocText[] = R"(
  <hospital>
    <dept>
      <clinicalTrial>
        <patientInfo>
          <patient><name>carol</name><wardNo>3</wardNo>
            <treatment><trial><bill>900</bill></trial></treatment>
          </patient>
        </patientInfo>
        <test>blood</test>
      </clinicalTrial>
      <patientInfo>
        <patient><name>dave</name><wardNo>3</wardNo>
          <treatment><regular><bill>120</bill><medication>m</medication></regular></treatment>
        </patient>
      </patientInfo>
      <staffInfo/>
    </dept>
  </hospital>
)";

class CliTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/secview_cli";
    WriteFile("hospital.dtd", kHospitalDtdText);
    WriteFile("nurse.spec", kNurseSpecText);
    WriteFile("doc.xml", kDocText);
  }

  void WriteFile(const std::string& name, const std::string& content) {
    std::string path = Path(name);
    // TempDir exists; create our subdirectory lazily via ofstream by
    // writing into TempDir directly (flat names). Write to a
    // process-unique temp name and rename into place: ctest runs each
    // case as its own process, and a plain truncate-rewrite lets a
    // concurrent case read a half-written fixture.
    std::string tmp = path + ".tmp." + std::to_string(::getpid());
    {
      std::ofstream out(tmp, std::ios::binary);
      ASSERT_TRUE(out.is_open()) << tmp;
      out << content;
    }
    ASSERT_EQ(std::rename(tmp.c_str(), path.c_str()), 0) << path;
  }

  std::string Path(const std::string& name) {
    return testing::TempDir() + "/secview_cli_" + name;
  }

  int Run(std::vector<std::string> args) {
    out_.str("");
    err_.str("");
    return RunCli(args, out_, err_);
  }

  std::string dir_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliTest, Help) {
  EXPECT_EQ(Run({"help"}), 0);
  EXPECT_NE(out_.str().find("usage:"), std::string::npos);
}

TEST_F(CliTest, HelpListsObservabilityFlags) {
  EXPECT_EQ(Run({"help"}), 0);
  std::string text = out_.str();
  EXPECT_NE(text.find("--stats"), std::string::npos);
  EXPECT_NE(text.find("--trace-json"), std::string::npos);
}

TEST_F(CliTest, QueryStats) {
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//patient//bill", "--bind", "wardNo=3", "--stats"}),
            0);
  std::string text = out_.str();
  // Nonzero counters for the rewrite, optimize, and evaluate phases.
  EXPECT_NE(text.find("# stats:"), std::string::npos) << text;
  EXPECT_NE(text.find("rewrite.queries = 2"), std::string::npos) << text;
  EXPECT_NE(text.find("optimize.queries = 1"), std::string::npos) << text;
  EXPECT_NE(text.find("eval.nodes_touched = "), std::string::npos);
  EXPECT_EQ(text.find("eval.nodes_touched = 0"), std::string::npos);
  EXPECT_NE(text.find("phase.evaluate.micros count=1"), std::string::npos);
}

TEST_F(CliTest, QueryTraceJson) {
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//patient//bill", "--bind", "wardNo=3", "--trace-json",
                 Path("trace.json")}),
            0);
  std::ifstream in(Path("trace.json"), std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto trace = obs::Json::Parse(buffer.str());
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();

  // The span tree must contain at least 4 distinct pipeline phases.
  std::function<void(const obs::Json&, std::set<std::string>&)> collect =
      [&](const obs::Json& span, std::set<std::string>& names) {
        if (const obs::Json* name = span.Find("name")) {
          names.insert(name->AsString());
        }
        if (const obs::Json* children = span.Find("children")) {
          for (const obs::Json& child : children->items()) {
            collect(child, names);
          }
        }
      };
  std::set<std::string> names;
  collect(*trace, names);
  int phases = 0;
  for (const char* phase :
       {"parse", "rewrite", "optimize", "bind", "evaluate", "unfold"}) {
    if (names.count(phase)) ++phases;
  }
  EXPECT_GE(phases, 4) << "phases seen: " << names.size();
}

TEST_F(CliTest, QueryTraceJsonToStdout) {
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//patient//bill", "--bind", "wardNo=3", "--trace-json",
                 "-"}),
            0);
  EXPECT_NE(out_.str().find("\"name\": \"execute\""), std::string::npos);
}

TEST_F(CliTest, QueryStatsWithSavedView) {
  ASSERT_EQ(Run({"derive", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--out", Path("nurse.view")}),
            0);
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--view",
                 Path("nurse.view"), "--xml", Path("doc.xml"), "--query",
                 "//patient//bill", "--bind", "wardNo=3", "--stats",
                 "--trace-json", "-"}),
            0);
  std::string text = out_.str();
  EXPECT_NE(text.find("rewrite.queries = 1"), std::string::npos) << text;
  EXPECT_NE(text.find("eval.nodes_touched = "), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"evaluate\""), std::string::npos);
}

TEST_F(CliTest, QueryProfilePrintsStepTable) {
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//patient//bill", "--bind", "wardNo=3", "--profile"}),
            0);
  std::string text = out_.str();
  EXPECT_NE(text.find("hot step:"), std::string::npos) << text;
  // The view rewrite replaces descendant steps with explicit child chains,
  // so the plan is all child/compose/union steps.
  EXPECT_NE(text.find("child::bill"), std::string::npos) << text;
  EXPECT_NE(text.find("self_us"), std::string::npos) << text;
  // Profiling must not change the answer relative to a plain run.
  std::string results_line = text.substr(text.find("# results:"));
  results_line = results_line.substr(0, results_line.find('\n'));
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//patient//bill", "--bind", "wardNo=3"}),
            0);
  EXPECT_NE(out_.str().find(results_line), std::string::npos);
}

TEST_F(CliTest, QueryProfileJsonValidatesAndAggregates) {
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//patient//bill", "--bind", "wardNo=3", "--profile-json",
                 Path("profile.jsonl")}),
            0);
  std::ifstream in(Path("profile.jsonl"), std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Status valid = obs::ValidateProfileLine(
      buffer.str().substr(0, buffer.str().find('\n')));
  EXPECT_TRUE(valid.ok()) << valid.message();

  // profile-top renders the aggregated hottest steps off the same file.
  EXPECT_EQ(Run({"profile-top", "--in", Path("profile.jsonl"), "--k", "3"}),
            0);
  std::string text = out_.str();
  EXPECT_NE(text.find("plan profile:"), std::string::npos) << text;
  EXPECT_NE(text.find("1 profiled query(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("nodes="), std::string::npos);
}

TEST_F(CliTest, QueryProfileJsonToStdout) {
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//patient//bill", "--bind", "wardNo=3", "--profile-json",
                 "-"}),
            0);
  EXPECT_NE(out_.str().find("\"schema\":\"secview.profile.v1\""),
            std::string::npos)
      << out_.str();
}

TEST_F(CliTest, QueryProfileWithSavedView) {
  ASSERT_EQ(Run({"derive", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--out", Path("nurse.view")}),
            0);
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--view",
                 Path("nurse.view"), "--xml", Path("doc.xml"), "--query",
                 "//patient//bill", "--bind", "wardNo=3", "--profile"}),
            0);
  EXPECT_NE(out_.str().find("hot step:"), std::string::npos) << out_.str();
}

TEST_F(CliTest, ProfileTopRejectsCorruptInput) {
  WriteFile("bad_profile.jsonl", "{\"schema\":\"secview.profile.v1\"}\n");
  EXPECT_EQ(Run({"profile-top", "--in", Path("bad_profile.jsonl")}), 1);
  EXPECT_NE(err_.str().find("line 1"), std::string::npos) << err_.str();
}

TEST_F(CliTest, UnknownCommand) {
  EXPECT_EQ(Run({"frobnicate"}), 2);
  EXPECT_NE(err_.str().find("unknown command"), std::string::npos);
}

TEST_F(CliTest, MissingFlags) {
  EXPECT_EQ(Run({"validate", "--dtd", Path("hospital.dtd")}), 2);
  EXPECT_NE(err_.str().find("--xml"), std::string::npos);
}

TEST_F(CliTest, Validate) {
  EXPECT_EQ(Run({"validate", "--dtd", Path("hospital.dtd"), "--xml",
                 Path("doc.xml")}),
            0);
  EXPECT_NE(out_.str().find("valid"), std::string::npos);
}

TEST_F(CliTest, ValidateRejectsNonConforming) {
  WriteFile("bad.xml", "<hospital><bogus/></hospital>");
  EXPECT_EQ(Run({"validate", "--dtd", Path("hospital.dtd"), "--xml",
                 Path("bad.xml")}),
            1);
}

TEST_F(CliTest, DeriveShowsViewDtd) {
  EXPECT_EQ(Run({"derive", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec")}),
            0);
  std::string text = out_.str();
  EXPECT_NE(text.find("<!ELEMENT hospital"), std::string::npos) << text;
  EXPECT_EQ(text.find("clinicalTrial"), std::string::npos);
  EXPECT_EQ(text.find("sigma"), std::string::npos);
}

TEST_F(CliTest, DeriveShowSigma) {
  EXPECT_EQ(Run({"derive", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--show-sigma"}),
            0);
  EXPECT_NE(out_.str().find("sigma("), std::string::npos);
  EXPECT_NE(out_.str().find("clinicalTrial"), std::string::npos);
}

TEST_F(CliTest, RewriteQuery) {
  EXPECT_EQ(Run({"rewrite", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--query", "//patient//bill"}),
            0);
  EXPECT_NE(out_.str().find("trial"), std::string::npos) << out_.str();
  EXPECT_NE(out_.str().find("$wardNo"), std::string::npos);
}

TEST_F(CliTest, QueryWithBindings) {
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//patient/name", "--bind", "wardNo=3"}),
            0);
  std::string text = out_.str();
  EXPECT_NE(text.find("# results: 2"), std::string::npos) << text;
  EXPECT_NE(text.find("carol"), std::string::npos);
}

TEST_F(CliTest, QueryWithoutBindingFails) {
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//patient/name"}),
            1);
  EXPECT_NE(err_.str().find("unbound"), std::string::npos);
}

TEST_F(CliTest, QueryExtract) {
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//patient", "--bind", "wardNo=3", "--extract"}),
            0);
  std::string text = out_.str();
  EXPECT_NE(text.find("<results>"), std::string::npos) << text;
  EXPECT_NE(text.find("dummy"), std::string::npos);
  EXPECT_EQ(text.find("<trial"), std::string::npos);
}

TEST_F(CliTest, Materialize) {
  EXPECT_EQ(Run({"materialize", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--bind",
                 "wardNo=3"}),
            0);
  std::string text = out_.str();
  EXPECT_NE(text.find("<hospital>"), std::string::npos) << text;
  EXPECT_EQ(text.find("clinicalTrial"), std::string::npos);
  EXPECT_NE(text.find("carol"), std::string::npos);
}

TEST_F(CliTest, GenerateProducesValidDocument) {
  EXPECT_EQ(Run({"generate", "--dtd", Path("hospital.dtd"), "--bytes",
                 "5000", "--seed", "7"}),
            0);
  WriteFile("generated.xml", out_.str());
  EXPECT_EQ(Run({"validate", "--dtd", Path("hospital.dtd"), "--xml",
                 Path("generated.xml")}),
            0);
}

TEST_F(CliTest, GenerateDeterministicPerSeed) {
  ASSERT_EQ(Run({"generate", "--dtd", Path("hospital.dtd"), "--seed", "5"}),
            0);
  std::string first = out_.str();
  ASSERT_EQ(Run({"generate", "--dtd", Path("hospital.dtd"), "--seed", "5"}),
            0);
  EXPECT_EQ(out_.str(), first);
  ASSERT_EQ(Run({"generate", "--dtd", Path("hospital.dtd"), "--seed", "6"}),
            0);
  EXPECT_NE(out_.str(), first);
}


TEST_F(CliTest, DeriveOutAndViewRoundTrip) {
  // derive --out saves the definition; rewrite/query --view load it.
  EXPECT_EQ(Run({"derive", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--out", Path("nurse.view")}),
            0);
  EXPECT_NE(out_.str().find("wrote view definition"), std::string::npos);

  EXPECT_EQ(Run({"rewrite", "--dtd", Path("hospital.dtd"), "--view",
                 Path("nurse.view"), "--query", "//patient//bill"}),
            0);
  std::string via_view = out_.str();
  EXPECT_EQ(Run({"rewrite", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--query", "//patient//bill"}),
            0);
  EXPECT_EQ(out_.str(), via_view);

  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--view",
                 Path("nurse.view"), "--xml", Path("doc.xml"), "--query",
                 "//patient/name", "--bind", "wardNo=3"}),
            0);
  EXPECT_NE(out_.str().find("# results: 2"), std::string::npos)
      << out_.str();
}

TEST_F(CliTest, ViewFileErrorsSurface) {
  WriteFile("broken.view", "not a view definition");
  EXPECT_EQ(Run({"rewrite", "--dtd", Path("hospital.dtd"), "--view",
                 Path("broken.view"), "--query", "//bill"}),
            1);
}


TEST_F(CliTest, NonNormalFormDtdEndToEnd) {
  // A real-world-style DTD with ?, +, and groups: the CLI normalizes the
  // DTD, rewrites the document to match (aux wrappers), and the whole
  // pipeline works on top.
  WriteFile("book.dtd", R"(
    <!ELEMENT book (title, (chapter | appendix)+, price?)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT chapter (title, para*)>
    <!ELEMENT appendix (para+)>
    <!ELEMENT para (#PCDATA)>
    <!ELEMENT price (#PCDATA)>
  )");
  WriteFile("book.xml",
            "<book><title>t</title>"
            "<chapter><title>c1</title><para>p1</para></chapter>"
            "<appendix><para>ap</para></appendix>"
            "<price>9.99</price></book>");
  WriteFile("book.spec", "ann(book, price) = N\n");

  EXPECT_EQ(Run({"validate", "--dtd", Path("book.dtd"), "--xml",
                 Path("book.xml")}),
            0);
  EXPECT_NE(out_.str().find("auxiliary"), std::string::npos) << out_.str();

  EXPECT_EQ(Run({"query", "--dtd", Path("book.dtd"), "--spec",
                 Path("book.spec"), "--xml", Path("book.xml"), "--query",
                 "//para"}),
            0);
  EXPECT_NE(out_.str().find("# results: 2"), std::string::npos)
      << out_.str();

  // The hidden price is unreachable.
  EXPECT_EQ(Run({"query", "--dtd", Path("book.dtd"), "--spec",
                 Path("book.spec"), "--xml", Path("book.xml"), "--query",
                 "//price"}),
            0);
  EXPECT_NE(out_.str().find("# results: 0"), std::string::npos)
      << out_.str();

  EXPECT_EQ(Run({"materialize", "--dtd", Path("book.dtd"), "--spec",
                 Path("book.spec"), "--xml", Path("book.xml")}),
            0);
  EXPECT_EQ(out_.str().find("price"), std::string::npos) << out_.str();
  EXPECT_NE(out_.str().find("c1"), std::string::npos);
}

TEST_F(CliTest, DeriveWarnsAboutIncompletePolicies) {
  WriteFile("choice.dtd",
            "<!ELEMENT r (x | y)> <!ELEMENT x (#PCDATA)>"
            "<!ELEMENT y (#PCDATA)>");
  WriteFile("choice.spec", "ann(r, y) = N\n");
  EXPECT_EQ(Run({"derive", "--dtd", Path("choice.dtd"), "--spec",
                 Path("choice.spec")}),
            0);
  EXPECT_NE(out_.str().find("warning:"), std::string::npos) << out_.str();
}

TEST_F(CliTest, MissingFilesReported) {
  EXPECT_EQ(Run({"derive", "--dtd", "/nonexistent.dtd", "--spec",
                 Path("nurse.spec")}),
            1);
  EXPECT_NE(err_.str().find("cannot open"), std::string::npos);
}

TEST_F(CliTest, QueryAuditLogRecordsOkAndDeniedThenVerifies) {
  std::string log = Path("audit.jsonl");
  std::remove(log.c_str());

  // A successful query appends an "ok" record and reports the count.
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//patient/name", "--bind", "wardNo=3", "--audit-log", log}),
            0);
  EXPECT_NE(out_.str().find("# audit: 1 event(s) appended to"),
            std::string::npos)
      << out_.str();

  // A denied query (missing binding) still exits 1 AND lands in the same
  // log as an "error" record.
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//patient/name", "--audit-log", log}),
            1);

  std::ifstream in(log, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string trail = buffer.str();
  EXPECT_NE(trail.find("\"outcome\":\"ok\""), std::string::npos) << trail;
  EXPECT_NE(trail.find("\"outcome\":\"denied\""), std::string::npos);
  EXPECT_NE(trail.find("\"schema\":\"secview.audit.v1\""), std::string::npos);

  EXPECT_EQ(Run({"audit-verify", "--log", log}), 0);
  EXPECT_NE(out_.str().find("ok: 2 audit events validated"),
            std::string::npos)
      << out_.str();
}

TEST_F(CliTest, AuditVerifyRejectsCorruptLogs) {
  WriteFile("bad_audit.jsonl", "{\"schema\":\"secview.audit.v1\"}\n");
  EXPECT_EQ(Run({"audit-verify", "--log", Path("bad_audit.jsonl")}), 1);
  EXPECT_NE(err_.str().find(":1:"), std::string::npos) << err_.str();
}

TEST_F(CliTest, AuditLogRequiresEnginePath) {
  ASSERT_EQ(Run({"derive", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--out", Path("nurse.view")}),
            0);
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--view",
                 Path("nurse.view"), "--xml", Path("doc.xml"), "--query",
                 "//bill", "--bind", "wardNo=3", "--audit-log",
                 Path("nope.jsonl")}),
            1);
  EXPECT_NE(err_.str().find("--spec"), std::string::npos) << err_.str();
}

TEST_F(CliTest, ExplainTextNamesSigmaAndPrunes) {
  EXPECT_EQ(Run({"explain", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--query",
                 "dept/patientInfo/patient/name | //clinicalTrial"}),
            0);
  std::string text = out_.str();
  EXPECT_NE(text.find("explain secview.explain.v1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("[rewrite/sigma]"), std::string::npos) << text;
  EXPECT_NE(text.find("$wardNo"), std::string::npos);
  EXPECT_NE(text.find("[rewrite/prune]"), std::string::npos);
  EXPECT_NE(text.find("nonexistence"), std::string::npos);
  EXPECT_NE(text.find("final query"), std::string::npos);
}

TEST_F(CliTest, ExplainJsonParses) {
  EXPECT_EQ(Run({"explain", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--query", "//patient//bill",
                 "--json"}),
            0);
  auto parsed = obs::Json::Parse(out_.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("schema")->AsString(), "secview.explain.v1");
  ASSERT_NE(parsed->Find("rewrite"), nullptr);
  EXPECT_NE(parsed->Find("rewrite")->Find("dp_cells"), nullptr);
}

TEST_F(CliTest, ExplainIsDeterministic) {
  ASSERT_EQ(Run({"explain", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--query", "//patient//bill"}),
            0);
  std::string first = out_.str();
  ASSERT_EQ(Run({"explain", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--query", "//patient//bill"}),
            0);
  EXPECT_EQ(out_.str(), first);
}

TEST_F(CliTest, QueryMetricsPromToStdout) {
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//patient/name", "--bind", "wardNo=3", "--metrics-prom",
                 "-"}),
            0);
  std::string text = out_.str();
  EXPECT_NE(text.find("# TYPE secview_engine_queries counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("secview_engine_queries_total 1"), std::string::npos);
  EXPECT_NE(text.find("secview_phase_evaluate_micros_bucket"),
            std::string::npos);
}

TEST_F(CliTest, QueryMetricsSnapshotDir) {
  std::string dir = testing::TempDir() + "/secview_cli_snapdir";
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//patient/name", "--bind", "wardNo=3",
                 "--metrics-snapshot-dir", dir}),
            0);
  EXPECT_NE(out_.str().find("# metrics snapshot: " + dir),
            std::string::npos)
      << out_.str();
  std::ifstream prom(dir + "/metrics.prom");
  EXPECT_TRUE(prom.good());
  std::ifstream json(dir + "/metrics.json");
  EXPECT_TRUE(json.good());
}

TEST_F(CliTest, HelpListsAuditAndExplain) {
  EXPECT_EQ(Run({"help"}), 0);
  std::string text = out_.str();
  EXPECT_NE(text.find("--audit-log"), std::string::npos);
  EXPECT_NE(text.find("audit-verify"), std::string::npos);
  EXPECT_NE(text.find("explain"), std::string::npos);
  EXPECT_NE(text.find("--metrics-prom"), std::string::npos);
  EXPECT_NE(text.find("--metrics-snapshot-dir"), std::string::npos);
}

TEST_F(CliTest, BadBindSyntax) {
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//name", "--bind", "wardNo"}),
            2);
}

TEST_F(CliTest, BenchServeReportsThroughputAndCacheHits) {
  WriteFile("queries.txt",
            "# mixed serving workload\n"
            "//name\n"
            "//patient\n"
            "//patient/wardNo\n"
            "\n"
            "  //bill  \n");
  EXPECT_EQ(Run({"bench-serve", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--queries",
                 Path("queries.txt"), "--threads", "2", "--repeat", "3",
                 "--bind", "wardNo=3"}),
            0)
      << err_.str();
  std::string text = out_.str();
  EXPECT_NE(text.find("threads: 2"), std::string::npos) << text;
  EXPECT_NE(text.find("queries: 4 (4 ok, 0 failing), repeated 3x"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("queries/sec"), std::string::npos);
  // The warm-up batch populates the cache; the 3 measured batches hit.
  EXPECT_NE(text.find("cache: 24 hits, 8 misses"), std::string::npos) << text;
}

TEST_F(CliTest, BenchServeRejectsEmptyQueriesFile) {
  WriteFile("empty.txt", "# only comments\n\n");
  EXPECT_EQ(Run({"bench-serve", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--queries",
                 Path("empty.txt"), "--threads", "1"}),
            1);
}

TEST_F(CliTest, HelpListsBenchServe) {
  EXPECT_EQ(Run({"help"}), 0);
  std::string text = out_.str();
  EXPECT_NE(text.find("bench-serve"), std::string::npos);
  EXPECT_NE(text.find("--threads"), std::string::npos);
  EXPECT_NE(text.find("--queries"), std::string::npos);
}

// --- Defensive serving flags (docs/robustness.md) ---

TEST_F(CliTest, HelpListsDefensiveServingFlags) {
  EXPECT_EQ(Run({"help"}), 0);
  std::string text = out_.str();
  EXPECT_NE(text.find("--deadline-ms"), std::string::npos);
  EXPECT_NE(text.find("--max-nodes"), std::string::npos);
  EXPECT_NE(text.find("--max-parse-depth"), std::string::npos);
  EXPECT_NE(text.find("--queue-cap"), std::string::npos);
}

TEST_F(CliTest, QueryZeroLimitsMeanUnlimited) {
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//patient//bill", "--bind", "wardNo=3", "--deadline-ms", "0",
                 "--max-nodes", "0", "--max-parse-depth", "0"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("900"), std::string::npos);
}

TEST_F(CliTest, QueryNodeBudgetExhaustionExitsFive) {
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//patient//bill", "--bind", "wardNo=3", "--max-nodes", "1"}),
            5);
  EXPECT_NE(err_.str().find("node-visit budget exhausted"), std::string::npos)
      << err_.str();
}

TEST_F(CliTest, QueryDeadlineExceededExitsFour) {
  // A generated multi-megabyte document makes the evaluate phase far
  // exceed a 1 ms wall-clock deadline; the stride-checked budget turns
  // that into a clean DeadlineExceeded instead of an unbounded stall.
  ASSERT_EQ(Run({"generate", "--dtd", Path("hospital.dtd"), "--bytes",
                 "4000000", "--seed", "7"}),
            0);
  WriteFile("big.xml", out_.str());
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("big.xml"), "--query",
                 "//dept//patient//bill", "--bind", "wardNo=3",
                 "--deadline-ms", "1"}),
            4);
  EXPECT_NE(err_.str().find("deadline of 1 ms exceeded"), std::string::npos)
      << err_.str();
}

TEST_F(CliTest, QueryMaxParseDepthBoundsDocumentNesting) {
  // The fixture document nests eight elements deep; a limit of 4 must
  // reject it at parse time with OutOfRange (generic failure, exit 1).
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//patient//bill", "--bind", "wardNo=3", "--max-parse-depth",
                 "4"}),
            1);
  EXPECT_NE(err_.str().find("XML limit exceeded"), std::string::npos)
      << err_.str();
}

TEST_F(CliTest, QueryMaxParseDepthBoundsQueryNesting) {
  // Depth 10 admits the document (depth 8) but not a query whose
  // qualifiers nest eleven deep, so the rejection is the XPath parser's.
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//dept[patientInfo[patient[name[a[b[c[d[e[f[g]]]]]]]]]]",
                 "--bind", "wardNo=3", "--max-parse-depth", "10"}),
            1);
  EXPECT_NE(err_.str().find("XPath nesting depth exceeds limit"),
            std::string::npos)
      << err_.str();
}

TEST_F(CliTest, QueryRejectsNonNumericLimitFlag) {
  EXPECT_NE(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//patient//bill", "--bind", "wardNo=3", "--deadline-ms",
                 "garbage"}),
            0);
  EXPECT_NE(err_.str().find("--deadline-ms needs a non-negative integer"),
            std::string::npos)
      << err_.str();
}

TEST_F(CliTest, BenchServeQueueCapShedsAndReportsRejections) {
  // One worker and a queue cap of 1: each 6-query batch admits one
  // query and sheds five, deterministically (the whole batch is
  // enqueued under a single lock hold; see docs/robustness.md).
  WriteFile("six.txt",
            "//name\n//patient\n//bill\n//wardNo\n//patient/name\n"
            "//patient/wardNo\n");
  EXPECT_EQ(Run({"bench-serve", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--queries",
                 Path("six.txt"), "--threads", "1", "--queue-cap", "1",
                 "--repeat", "1", "--bind", "wardNo=3"}),
            0)
      << err_.str();
  std::string text = out_.str();
  EXPECT_NE(text.find("queries: 6 (1 ok, 5 failing)"), std::string::npos)
      << text;
  // Warm-up plus one measured round: 5 shed in each.
  EXPECT_NE(text.find("rejected: 10 shed, 0 deadline, 0 budget"),
            std::string::npos)
      << text;
}

// --- Live telemetry endpoint (docs/observability.md) ---

TEST_F(CliTest, HelpListsTelemetryCommands) {
  EXPECT_EQ(Run({"help"}), 0);
  std::string text = out_.str();
  EXPECT_NE(text.find("serve"), std::string::npos);
  EXPECT_NE(text.find("scrape"), std::string::npos);
  EXPECT_NE(text.find("--telemetry-addr"), std::string::npos);
  EXPECT_NE(text.find("--port-file"), std::string::npos);
  EXPECT_NE(text.find("--slow-query-micros"), std::string::npos);
  EXPECT_NE(text.find("--validate-prom"), std::string::npos);
  EXPECT_NE(text.find("/metrics"), std::string::npos);
}

TEST_F(CliTest, ScrapeRequiresAddress) {
  EXPECT_EQ(Run({"scrape"}), 1);
  EXPECT_NE(err_.str().find("--addr"), std::string::npos) << err_.str();
}

TEST_F(CliTest, BenchServeStartsTelemetryWhenRequested) {
  WriteFile("queries.txt", "//name\n//patient\n");
  std::string port_file = Path("bench.port");
  std::remove(port_file.c_str());
  EXPECT_EQ(Run({"bench-serve", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--queries",
                 Path("queries.txt"), "--threads", "2", "--repeat", "2",
                 "--bind", "wardNo=3", "--telemetry-addr", "127.0.0.1:0",
                 "--port-file", port_file}),
            0)
      << err_.str();
  std::string text = out_.str();
  // The bound (ephemeral) address is announced up front and the summary
  // reports the window the live endpoints were serving from.
  EXPECT_NE(text.find("# telemetry: http://127.0.0.1:"), std::string::npos)
      << text;
  EXPECT_NE(text.find("window(60s)"), std::string::npos) << text;
  std::ifstream in(port_file);
  int port = 0;
  ASSERT_TRUE(in >> port);
  EXPECT_GT(port, 0);
  EXPECT_LE(port, 65535);
  std::remove(port_file.c_str());
}

// --- trace-export ---

std::string TwoTraceJsonl() {
  obs::RequestTraceStore::Options options;
  options.sample_every = 1;
  obs::RequestTraceStore store(options);
  for (const char* q : {"//patient//bill", "//name"}) {
    obs::Trace trace("secview.request");
    {
      obs::ScopedSpan span(&trace, "evaluate");
      span.SetAttr("nodes_touched", 42);
    }
    store.Offer("nurse", q, Status::OK(), 120, trace);
  }
  return store.SnapshotJsonl();
}

TEST_F(CliTest, TraceExportValidateReportsCount) {
  WriteFile("traces.jsonl", TwoTraceJsonl());
  EXPECT_EQ(Run({"trace-export", "--in", Path("traces.jsonl"), "--validate"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("ok: 2 trace(s) validated"), std::string::npos)
      << out_.str();
}

TEST_F(CliTest, TraceExportChromeWritesLoadableJson) {
  WriteFile("traces.jsonl", TwoTraceJsonl());
  std::string out_path = Path("chrome.json");
  EXPECT_EQ(Run({"trace-export", "--in", Path("traces.jsonl"), "--chrome",
                 "--out", out_path}),
            0)
      << err_.str();
  std::ifstream in(out_path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  auto chrome = obs::Json::Parse(buf.str());
  ASSERT_TRUE(chrome.ok()) << chrome.status().ToString();
  const obs::Json* events = chrome->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // 2 traces x (metadata + root + evaluate child) = 6 events.
  EXPECT_EQ(events->items().size(), 6u);
  for (const obs::Json& ev : events->items()) {
    const obs::Json* ph = ev.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_TRUE(ph->AsString() == "M" || ph->AsString() == "X");
  }
  std::remove(out_path.c_str());
}

TEST_F(CliTest, TraceExportRejectsCorruptInput) {
  std::string jsonl = TwoTraceJsonl();
  WriteFile("bad.jsonl", jsonl + "{\"schema\":\"nope\"}\n");
  EXPECT_EQ(Run({"trace-export", "--in", Path("bad.jsonl"), "--validate"}), 1);
  EXPECT_NE(err_.str().find("schema"), std::string::npos) << err_.str();
  // Neither flag: the command refuses to silently do nothing.
  WriteFile("ok.jsonl", jsonl);
  EXPECT_EQ(Run({"trace-export", "--in", Path("ok.jsonl")}), 1);
}

TEST_F(CliTest, HelpListsTraceExport) {
  EXPECT_EQ(Run({"help"}), 0);
  std::string text = out_.str();
  EXPECT_NE(text.find("trace-export"), std::string::npos);
  EXPECT_NE(text.find("--trace-sample"), std::string::npos);
  EXPECT_NE(text.find("--chrome"), std::string::npos);
}

TEST_F(CliTest, ServeExposesLiveEndpointsEndToEnd) {
  WriteFile("queries.txt", "//name\n//patient//bill\n");
  std::string port_file = Path("serve.port");
  std::remove(port_file.c_str());

  // `serve` blocks until --max-seconds, so it runs on its own thread
  // with its own streams while this thread scrapes it over HTTP.
  std::ostringstream serve_out;
  std::ostringstream serve_err;
  int serve_rc = -1;
  std::thread server([&] {
    serve_rc = RunCli(
        {"serve", "--dtd", Path("hospital.dtd"), "--spec",
         Path("nurse.spec"), "--xml", Path("doc.xml"), "--queries",
         Path("queries.txt"), "--bind", "wardNo=3", "--replay-delay-ms",
         "10", "--max-seconds", "3", "--slow-query-micros", "0",
         "--trace-sample", "1", "--port-file", port_file},
        serve_out, serve_err);
  });

  // The port file is written atomically once the listener is up.
  int port = 0;
  for (int i = 0; i < 200 && port == 0; ++i) {
    std::ifstream in(port_file);
    if (!(in >> port)) {
      port = 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
  ASSERT_GT(port, 0) << serve_err.str();
  std::string port_text = std::to_string(port);

  // The engine is sealed by the worker pool, so /healthz reports ready
  // once the replay loop is serving.
  int health_rc = 1;
  for (int i = 0; i < 100; ++i) {
    health_rc =
        Run({"scrape", "--port", port_text, "--path", "/healthz"});
    if (health_rc == 0 && out_.str().find("ok") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  EXPECT_EQ(health_rc, 0) << err_.str();

  // A validated /metrics scrape shows live engine series.
  EXPECT_EQ(Run({"scrape", "--port", port_text, "--validate-prom"}), 0)
      << err_.str();
  std::string metrics = out_.str();
  EXPECT_NE(metrics.find("secview_engine_queries_total"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("secview_build_info{"), std::string::npos);

  // /statusz folds in the sliding window and the slow-query ring (the
  // zero threshold logs every replayed query).
  EXPECT_EQ(Run({"scrape", "--port", port_text, "--path", "/statusz"}), 0)
      << err_.str();
  std::string statusz = out_.str();
  EXPECT_NE(statusz.find("ready: yes"), std::string::npos) << statusz;
  EXPECT_NE(statusz.find("last 10s:"), std::string::npos);
  EXPECT_NE(statusz.find("query=//name"), std::string::npos) << statusz;

  // /varz serves the same document schema the snapshot writer emits.
  EXPECT_EQ(Run({"scrape", "--port", port_text, "--path", "/varz"}), 0);
  auto varz = obs::Json::Parse(out_.str());
  ASSERT_TRUE(varz.ok()) << varz.status().ToString();
  EXPECT_EQ(varz->Find("schema")->AsString(), "secview.metrics.v1");
  ASSERT_NE(varz->Find("policy_stats"), nullptr) << out_.str();
  EXPECT_NE(varz->Find("policy_stats")->Find("policy"), nullptr);

  // --trace-sample 1 traces every replayed query: the human page lists
  // them and the JSONL page round-trips through trace-export.
  EXPECT_EQ(Run({"scrape", "--port", port_text, "--path", "/tracez"}), 0)
      << err_.str();
  EXPECT_NE(out_.str().find("request traces:"), std::string::npos)
      << out_.str();
  EXPECT_NE(out_.str().find("evaluate"), std::string::npos);
  EXPECT_EQ(
      Run({"scrape", "--port", port_text, "--path", "/tracez?format=json"}),
      0)
      << err_.str();
  std::string jsonl = out_.str();
  EXPECT_NE(jsonl.find("secview.trace.v1"), std::string::npos) << jsonl;
  WriteFile("live.jsonl", jsonl);
  EXPECT_EQ(Run({"trace-export", "--in", Path("live.jsonl"), "--validate"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("trace(s) validated"), std::string::npos);
  EXPECT_EQ(Run({"trace-export", "--in", Path("live.jsonl"), "--chrome"}), 0)
      << err_.str();
  auto chrome = obs::Json::Parse(out_.str());
  ASSERT_TRUE(chrome.ok()) << chrome.status().ToString();
  EXPECT_FALSE(chrome->Find("traceEvents")->items().empty());

  server.join();
  EXPECT_EQ(serve_rc, 0) << serve_err.str();
  EXPECT_NE(serve_out.str().find("# served"), std::string::npos)
      << serve_out.str();
  std::remove(port_file.c_str());
}

TEST_F(CliTest, ServeRemovesPortFileOnGracefulShutdownAndOverwritesStale) {
  std::string port_file = Path("stale.port");
  // A stale file from a dead process: the restarted server must replace
  // it with its own port (overwrite, not append) and delete it again on
  // graceful shutdown so nothing ever scrapes a dead port.
  WriteFile("stale.port", "65000\n");

  std::ostringstream serve_out;
  std::ostringstream serve_err;
  int serve_rc = -1;
  std::thread server([&] {
    serve_rc = RunCli({"serve", "--dtd", Path("hospital.dtd"), "--spec",
                       Path("nurse.spec"), "--xml", Path("doc.xml"),
                       "--max-seconds", "1", "--port-file", port_file},
                      serve_out, serve_err);
  });
  int port = 0;
  bool replaced = false;
  for (int i = 0; i < 200 && !replaced; ++i) {
    std::ifstream in(port_file);
    if (in >> port && port != 65000) {
      replaced = true;
      // Overwritten, not appended: the file holds exactly one port.
      int second = 0;
      EXPECT_FALSE(in >> second) << "port file has more than one line";
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  server.join();
  EXPECT_EQ(serve_rc, 0) << serve_err.str();
  EXPECT_TRUE(replaced) << "server never overwrote the stale port file";
  EXPECT_GT(port, 0);
  // Graceful shutdown removed the file.
  std::ifstream after(port_file);
  EXPECT_FALSE(after.good()) << "port file survived graceful shutdown";
}

TEST_F(CliTest, FailpointsFlagRejectsBadSpecAsUsageError) {
  EXPECT_EQ(Run({"help", "--failpoints", "no-equals-sign"}), 2);
  EXPECT_NE(err_.str().find("--failpoints"), std::string::npos) << err_.str();
  EXPECT_EQ(Run({"help", "--failpoints", "audit.write=banana"}), 2);
  EXPECT_EQ(Run({"help", "--failpoints", "audit.write=every:0"}), 2);
  // A well-formed spec arms fine for any command.
  EXPECT_EQ(Run({"help", "--failpoints", "audit.write=off"}), 0);
}

TEST_F(CliTest, HelpDocumentsFailpoints) {
  EXPECT_EQ(Run({"help"}), 0);
  std::string text = out_.str();
  EXPECT_NE(text.find("--failpoints"), std::string::npos);
  EXPECT_NE(text.find("SECVIEW_FAILPOINTS"), std::string::npos);
  EXPECT_NE(text.find("--retries"), std::string::npos);
  EXPECT_NE(text.find("--audit-log"), std::string::npos);
}

TEST_F(CliTest, QueryWithInjectedAllocFaultDegradesNotCrashes) {
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//name", "--bind", "wardNo=3", "--failpoints",
                 "alloc.evaluate=every:1"}),
            5);  // ResourceExhausted maps to the budget-exhausted code
  EXPECT_NE(err_.str().find("injected"), std::string::npos) << err_.str();
  // The arming was scoped to that invocation: the same query now runs
  // clean in this process.
  EXPECT_EQ(Run({"query", "--dtd", Path("hospital.dtd"), "--spec",
                 Path("nurse.spec"), "--xml", Path("doc.xml"), "--query",
                 "//name", "--bind", "wardNo=3"}),
            0)
      << err_.str();
}

TEST_F(CliTest, AuditVerifyReportsSeqGapsFromDroppedEvents) {
  std::string log_path = Path("gapped.jsonl");
  std::remove(log_path.c_str());
  {
    obs::JsonlAuditLog::Options options;
    options.retry_backoff_micros = 1;
    options.retry_backoff_cap_micros = 2;
    auto log = obs::JsonlAuditLog::Open(log_path, options);
    ASSERT_TRUE(log.ok()) << log.status();
    obs::AuditEvent event;
    event.unix_micros = obs::AuditEvent::NowUnixMicros();
    event.policy = "nurse";
    event.query = "//name";
    event.rewritten = "//name";
    event.evaluated = "//name";
    (*log)->Record(event);  // seq 1, written
    ASSERT_TRUE(FailPointRegistry::Instance()
                    .ArmFromSpec("audit.write=every:1")
                    .ok());
    (*log)->Record(event);  // seq 2, dropped after retries
    FailPointRegistry::Instance().DisarmAll();
    (*log)->Record(event);  // seq 3, written
    EXPECT_EQ((*log)->events(), 2u);
    EXPECT_EQ((*log)->dropped(), 1u);
  }
  EXPECT_EQ(Run({"audit-verify", "--log", log_path}), 0) << err_.str();
  std::string text = out_.str();
  EXPECT_NE(text.find("2 audit events validated"), std::string::npos) << text;
  EXPECT_NE(text.find("1 dropped across 1 seq gap(s)"), std::string::npos)
      << text;
  EXPECT_NE(text.find("seq jumps 1 -> 3"), std::string::npos) << text;
  std::remove(log_path.c_str());
}

TEST_F(CliTest, ServeWritesAuditTrailWithSummary) {
  WriteFile("queries.txt", "//name\n");
  std::string log_path = Path("serve_audit.jsonl");
  std::remove(log_path.c_str());
  std::ostringstream serve_out;
  std::ostringstream serve_err;
  int serve_rc = -1;
  std::thread server([&] {
    serve_rc = RunCli({"serve", "--dtd", Path("hospital.dtd"), "--spec",
                       Path("nurse.spec"), "--xml", Path("doc.xml"),
                       "--queries", Path("queries.txt"), "--bind", "wardNo=3",
                       "--replay-delay-ms", "10", "--max-seconds", "1",
                       "--audit-log", log_path},
                      serve_out, serve_err);
  });
  server.join();
  ASSERT_EQ(serve_rc, 0) << serve_err.str();
  EXPECT_NE(serve_out.str().find("# audit:"), std::string::npos)
      << serve_out.str();
  EXPECT_EQ(Run({"audit-verify", "--log", log_path}), 0) << err_.str();
  EXPECT_NE(out_.str().find("audit events validated"), std::string::npos);
  std::remove(log_path.c_str());
}

}  // namespace
}  // namespace secview
