// Tests for the memory observatory: the sampled allocation-site heap
// profiler (obs/heap_profile), the secview.heap.v1 exporters and
// validator (obs/heap_export), the subsystem memory ledger
// (obs/mem_ledger), and the end-to-end reconciliation invariant — after
// a full engine setup/serve/teardown cycle the ledger balances exactly
// and the sampled site table agrees with the live-heap counters within
// sampling error.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/alloc_tracker.h"
#include "common/build_info.h"
#include "engine/engine.h"
#include "obs/export.h"
#include "obs/heap_export.h"
#include "obs/heap_profile.h"
#include "obs/json.h"
#include "obs/mem_ledger.h"
#include "workload/hospital.h"
#include "xml/tree.h"
#include "xpath/plan.h"

namespace secview {
namespace {

bool UnderSanitizer() { return GetBuildInfo().sanitizer != "none"; }

// ---------------------------------------------------------------------------
// HeapProfiler lifecycle and sampling

TEST(HeapProfilerTest, RefusesToStartUnderSanitizerBuilds) {
  if (!AllocTrackingAvailable()) GTEST_SKIP() << "tracker compiled out";
  if (!UnderSanitizer()) {
    GTEST_SKIP() << "not a sanitizer build; refusal path not reachable";
  }
  Status refused = obs::HeapProfiler::Instance().Start();
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition) << refused;
  EXPECT_NE(refused.message().find("sanitizer"), std::string::npos) << refused;
  EXPECT_FALSE(obs::HeapProfiler::Instance().running());
}

TEST(HeapProfilerTest, RejectsZeroInterval) {
  if (!AllocTrackingAvailable()) GTEST_SKIP() << "tracker compiled out";
  obs::HeapProfileOptions options;
  options.sample_interval_bytes = 0;
  options.allow_under_sanitizers = true;
  EXPECT_FALSE(obs::HeapProfiler::Instance().Start(options).ok());
  EXPECT_FALSE(obs::HeapProfiler::Instance().running());
}

TEST(HeapProfilerTest, StartStopLifecycle) {
  if (!AllocTrackingAvailable()) GTEST_SKIP() << "tracker compiled out";
  if (UnderSanitizer()) GTEST_SKIP() << "frame-pointer walk vs sanitizer";
  obs::HeapProfiler& profiler = obs::HeapProfiler::Instance();
  obs::HeapProfileOptions options;
  options.sample_interval_bytes = 1024;
  ASSERT_TRUE(profiler.Start(options).ok());
  EXPECT_TRUE(profiler.running());
  EXPECT_FALSE(profiler.Start(options).ok()) << "double start must refuse";

  // Enough churn to guarantee samples at a 1KiB interval.
  std::vector<std::unique_ptr<char[]>> blocks;
  for (int i = 0; i < 64; ++i) blocks.push_back(std::make_unique<char[]>(8192));
  obs::HeapProfileSnapshot live = profiler.Snapshot(/*symbolize=*/false);
  EXPECT_TRUE(live.running);
  EXPECT_EQ(live.sample_interval_bytes, 1024u);
  EXPECT_GT(live.samples, 0u);
  EXPECT_FALSE(live.sites.empty());

  profiler.Stop();
  EXPECT_FALSE(profiler.running());
  obs::HeapProfileSnapshot stopped = profiler.Snapshot(/*symbolize=*/false);
  EXPECT_FALSE(stopped.running);
  EXPECT_EQ(stopped.samples, 0u);
  EXPECT_TRUE(stopped.sites.empty()) << "Stop discards all samples";
}

TEST(HeapProfilerTest, SnapshotTotalsAreTheSumOverSites) {
  if (!AllocTrackingAvailable()) GTEST_SKIP() << "tracker compiled out";
  if (UnderSanitizer()) GTEST_SKIP() << "frame-pointer walk vs sanitizer";
  obs::HeapProfiler& profiler = obs::HeapProfiler::Instance();
  obs::HeapProfileOptions options;
  options.sample_interval_bytes = 2048;
  ASSERT_TRUE(profiler.Start(options).ok());
  std::vector<std::string> strings;
  for (int i = 0; i < 200; ++i) strings.emplace_back(1000, 'x');

  obs::HeapProfileSnapshot snapshot = profiler.Snapshot(/*symbolize=*/false);
  uint64_t live_bytes = 0, live_objects = 0, alloc_bytes = 0, samples = 0;
  for (const obs::HeapSiteSnapshot& site : snapshot.sites) {
    live_bytes += site.live_bytes;
    live_objects += site.live_objects;
    alloc_bytes += site.alloc_bytes;
    samples += site.samples;
    EXPECT_FALSE(site.frames.empty());
  }
  EXPECT_EQ(snapshot.live_bytes, live_bytes);
  EXPECT_EQ(snapshot.live_objects, live_objects);
  EXPECT_EQ(snapshot.alloc_bytes, alloc_bytes);
  // Every raw sample event lands in exactly one site: the global event
  // counter and the per-site counters must agree.
  EXPECT_EQ(snapshot.samples, samples);
  for (size_t i = 1; i < snapshot.sites.size(); ++i) {
    EXPECT_GE(snapshot.sites[i - 1].live_bytes, snapshot.sites[i].live_bytes);
  }
  profiler.Stop();
}

TEST(HeapProfilerTest, SampledLiveBytesTrackAllocationsWithinSamplingError) {
  if (!AllocTrackingAvailable()) GTEST_SKIP() << "tracker compiled out";
  if (UnderSanitizer()) GTEST_SKIP() << "frame-pointer walk vs sanitizer";
  obs::HeapProfiler& profiler = obs::HeapProfiler::Instance();
  obs::HeapProfileOptions options;
  // Interval far below the allocation size: every block is sampled with
  // weight ~= its own size, so the estimate is tight.
  options.sample_interval_bytes = 4096;
  ASSERT_TRUE(profiler.Start(options).ok());

  constexpr size_t kBlock = 64 * 1024;
  constexpr size_t kCount = 64;
  std::vector<char*> blocks;
  blocks.reserve(kCount);
  for (size_t i = 0; i < kCount; ++i) {
    blocks.push_back(new char[kBlock]);
    blocks.back()[0] = static_cast<char>(i);
  }
  const uint64_t expected = kBlock * kCount;
  obs::HeapProfileSnapshot held = profiler.Snapshot(/*symbolize=*/false);
  // Relative error ~ sqrt(N/B) is far under 25% at these sizes; the
  // estimate must bracket the truth.
  EXPECT_GT(held.live_bytes, expected * 3 / 4) << "sampled estimate too low";
  EXPECT_LT(held.live_bytes, expected * 5 / 4) << "sampled estimate too high";
  EXPECT_GE(held.samples, kCount)
      << "every 64KiB block crosses a 4KiB sampling interval";

  // Freeing sampled pointers must drain the estimated live bytes; the
  // cumulative churn statistics survive.
  for (char* block : blocks) delete[] block;
  obs::HeapProfileSnapshot drained = profiler.Snapshot(/*symbolize=*/false);
  EXPECT_LT(drained.live_bytes, expected / 10)
      << "frees of sampled blocks must decrement their sites";
  EXPECT_GE(drained.alloc_bytes, held.live_bytes)
      << "cumulative attribution never shrinks";
  profiler.Stop();
}

// Populates every stack-hash stripe by allocating from a family of
// distinct call depths, so the snapshot loop below has to copy sites
// out of each stripe it locks.
__attribute__((noinline)) void ChurnAtDepth(int depth,
                                            std::vector<std::string>* sink) {
  if (depth > 0) {
    ChurnAtDepth(depth - 1, sink);
  }
  sink->push_back(std::string(512, static_cast<char>('a' + depth % 26)));
}

TEST(HeapProfilerTest, SnapshotUnderFullSamplingDoesNotSelfDeadlock) {
  if (!AllocTrackingAvailable()) GTEST_SKIP() << "tracker compiled out";
  if (UnderSanitizer()) GTEST_SKIP() << "frame-pointer walk vs sanitizer";
  obs::HeapProfiler& profiler = obs::HeapProfiler::Instance();
  obs::HeapProfileOptions options;
  // Interval 1 samples every allocation — including, before the hook
  // shield existed, Snapshot's own copies made while it held a site
  // stripe lock, which self-deadlocked whenever such a copy's stack
  // hashed to the held stripe. This test hangs (and times out) on a
  // regression instead of failing an assertion.
  options.sample_interval_bytes = 1;
  ASSERT_TRUE(profiler.Start(options).ok());
  std::vector<std::string> sink;
  for (int round = 0; round < 50; ++round) {
    for (int depth = 1; depth <= 24; ++depth) {
      ChurnAtDepth(depth, &sink);
    }
    obs::HeapProfileSnapshot snapshot = profiler.Snapshot(/*symbolize=*/false);
    EXPECT_GT(snapshot.samples, 0u);
    sink.clear();
  }
  profiler.Stop();
}

TEST(HeapProfilerTest, SymbolizePcProducesAName) {
  // dladdr on an address inside our own (-rdynamic, exported) code; the
  // worst case falls back to a bare hex string, never empty.
  std::string name = obs::SymbolizePc(
      reinterpret_cast<uintptr_t>(&obs::SymbolizePc) + 1);
  EXPECT_FALSE(name.empty());
}

// ---------------------------------------------------------------------------
// secview.heap.v1 export, validation, parse round-trip

obs::HeapProfileSnapshot MakeFakeSnapshot() {
  obs::HeapProfileSnapshot snapshot;
  snapshot.running = true;
  snapshot.sample_interval_bytes = 65536;
  snapshot.samples = 3;
  obs::HeapSiteSnapshot site;
  site.frames = {0x401234, 0x401000};
  site.symbols = {"ParseXml(char const*)", "main"};
  site.live_bytes = 131072;
  site.live_objects = 2;
  site.alloc_bytes = 262144;
  site.alloc_objects = 4;
  site.samples = 3;
  snapshot.sites.push_back(site);
  snapshot.live_bytes = site.live_bytes;
  snapshot.live_objects = site.live_objects;
  snapshot.alloc_bytes = site.alloc_bytes;
  snapshot.alloc_objects = site.alloc_objects;
  return snapshot;
}

TEST(HeapExportTest, JsonValidatesAndParsesBackLossless) {
  obs::HeapProfileSnapshot snapshot = MakeFakeSnapshot();
  obs::Json doc = obs::HeapProfileJson(snapshot);
  std::string text = doc.Dump(true);
  Status valid = obs::ValidateHeapProfileJson(text);
  ASSERT_TRUE(valid.ok()) << valid;

  auto parsed = obs::ParseHeapProfileJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->running, snapshot.running);
  EXPECT_EQ(parsed->sample_interval_bytes, snapshot.sample_interval_bytes);
  EXPECT_EQ(parsed->samples, snapshot.samples);
  EXPECT_EQ(parsed->live_bytes, snapshot.live_bytes);
  ASSERT_EQ(parsed->sites.size(), 1u);
  EXPECT_EQ(parsed->sites[0].frames, snapshot.sites[0].frames);
  EXPECT_EQ(parsed->sites[0].symbols, snapshot.sites[0].symbols);
  EXPECT_EQ(parsed->sites[0].live_bytes, snapshot.sites[0].live_bytes);

  // Re-rendering the parsed snapshot reproduces the sampled data
  // byte-for-byte. (The process section is freshly sampled from the
  // live counters each render, so only the sampled half is stable.)
  obs::Json again = obs::HeapProfileJson(*parsed);
  EXPECT_EQ(again.Find("sampled")->Dump(), doc.Find("sampled")->Dump());
  EXPECT_EQ(again.Find("sites")->Dump(), doc.Find("sites")->Dump());
}

TEST(HeapExportTest, TopKBoundsTheSiteList) {
  obs::HeapProfileSnapshot snapshot = MakeFakeSnapshot();
  snapshot.sites.push_back(snapshot.sites[0]);
  snapshot.sites.push_back(snapshot.sites[0]);
  obs::Json doc = obs::HeapProfileJson(snapshot, /*top_k=*/2);
  ASSERT_NE(doc.Find("sites"), nullptr);
  EXPECT_EQ(doc.Find("sites")->items().size(), 2u);
  // The "sampled" section still reports the full site count.
  EXPECT_EQ(doc.Find("sampled")->Find("sites")->AsNumber(), 3);
}

TEST(HeapExportTest, CollapsedLinesAreRootFirstAndSanitized) {
  obs::HeapProfileSnapshot snapshot = MakeFakeSnapshot();
  snapshot.sites[0].symbols = {"leaf fn(int; long)", "root"};
  std::string folded = obs::RenderHeapProfileCollapsed(snapshot);
  // Root-first, ';'-joined, space, live bytes. Separator characters in
  // frame names are squeezed out.
  EXPECT_EQ(folded, "root;leaf_fn(int:_long) 131072\n");

  // Sites with zero live bytes produce no line.
  snapshot.sites[0].live_bytes = 0;
  EXPECT_EQ(obs::RenderHeapProfileCollapsed(snapshot), "");
}

TEST(HeapExportTest, TextRenderShowsProcessAndSites) {
  std::string text = obs::RenderHeapProfileText(MakeFakeSnapshot(), 10);
  EXPECT_NE(text.find("heap profile:"), std::string::npos) << text;
  EXPECT_NE(text.find("process: live"), std::string::npos) << text;
  EXPECT_NE(text.find("ParseXml"), std::string::npos) << text;
}

TEST(HeapExportTest, ValidatorRejectsMalformedDocuments) {
  EXPECT_FALSE(obs::ValidateHeapProfileJson("not json").ok());
  EXPECT_FALSE(obs::ValidateHeapProfileJson("{}").ok());
  EXPECT_FALSE(
      obs::ValidateHeapProfileJson(R"({"schema":"secview.trace.v1"})").ok());

  // A well-formed document, broken one field at a time.
  obs::Json doc = obs::HeapProfileJson(MakeFakeSnapshot());
  obs::Json no_process = obs::Json::Parse(doc.Dump()).value();
  no_process.Set("process", 42);
  EXPECT_FALSE(obs::ValidateHeapProfileJson(no_process.Dump()).ok());

  obs::Json bad_site = obs::Json::Parse(doc.Dump()).value();
  obs::Json site = obs::Json::Object();
  site.Set("live_bytes", 1);
  obs::Json sites = obs::Json::Array();
  sites.Append(std::move(site));
  bad_site.Set("sites", std::move(sites));
  EXPECT_FALSE(obs::ValidateHeapProfileJson(bad_site.Dump()).ok());
}

// ---------------------------------------------------------------------------
// MemLedger

TEST(MemLedgerTest, AccountsChargeAndBalance) {
  obs::MemLedger& ledger = obs::MemLedger::Instance();
  ledger.ResetForTesting();
  obs::MemLedger::Account& account = ledger.GetAccount("test.subsystem");
  EXPECT_EQ(account.bytes(), 0);
  account.Add(1024);
  account.Add(2048);
  EXPECT_EQ(account.bytes(), 3072);
  EXPECT_EQ(account.charges(), 2u);
  account.Add(-3072);
  EXPECT_EQ(account.bytes(), 0);
  account.Set(500);
  EXPECT_EQ(account.bytes(), 500);
  // Same name, same account: references are stable.
  EXPECT_EQ(&ledger.GetAccount("test.subsystem"), &account);
  ledger.ResetForTesting();
}

TEST(MemLedgerTest, ScopedChargeAlwaysRefunds) {
  obs::MemLedger& ledger = obs::MemLedger::Instance();
  ledger.ResetForTesting();
  {
    obs::ScopedLedgerCharge charge("test.doc", 4096);
    EXPECT_EQ(ledger.GetAccount("test.doc").bytes(), 4096);
    EXPECT_EQ(ledger.TotalBytes(), 4096);
  }
  EXPECT_EQ(ledger.GetAccount("test.doc").bytes(), 0) << "exact balance";
  ledger.ResetForTesting();
}

TEST(MemLedgerTest, ProvidersAreLiveAndWinOverAccounts) {
  obs::MemLedger& ledger = obs::MemLedger::Instance();
  ledger.ResetForTesting();
  std::atomic<int64_t> footprint{100};
  ledger.GetAccount("test.cache").Set(7);  // stale charged value
  {
    obs::ScopedLedgerProvider provider(
        "test.cache", [&footprint] { return footprint.load(); });
    std::vector<obs::MemLedger::Row> rows = ledger.Snapshot();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].name, "test.cache");
    EXPECT_EQ(rows[0].bytes, 100) << "provider beats the charged account";
    EXPECT_TRUE(rows[0].live);
    footprint.store(250);
    EXPECT_EQ(ledger.Snapshot()[0].bytes, 250) << "providers read live state";
    EXPECT_EQ(ledger.TotalBytes(), 250);
  }
  // Provider unregistered: the charged account shows through again.
  std::vector<obs::MemLedger::Row> rows = ledger.Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].bytes, 7);
  EXPECT_FALSE(rows[0].live);
  ledger.ResetForTesting();
}

TEST(MemLedgerTest, SnapshotIsNameSorted) {
  obs::MemLedger& ledger = obs::MemLedger::Instance();
  ledger.ResetForTesting();
  ledger.GetAccount("zeta").Set(1);
  ledger.GetAccount("alpha").Set(2);
  ledger.GetAccount("mid").Set(3);
  std::vector<obs::MemLedger::Row> rows = ledger.Snapshot();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].name, "alpha");
  EXPECT_EQ(rows[1].name, "mid");
  EXPECT_EQ(rows[2].name, "zeta");
  ledger.ResetForTesting();
}

TEST(MemLedgerTest, RendersTextAndValidPrometheus) {
  obs::MemLedger& ledger = obs::MemLedger::Instance();
  ledger.ResetForTesting();
  ledger.GetAccount("xml.doc").Set(12345);
  obs::ScopedLedgerProvider provider("test.ring", [] { return int64_t{99}; });

  std::string text = RenderMemLedgerText(ledger);
  EXPECT_NE(text.find("xml.doc: 12345 B"), std::string::npos) << text;
  EXPECT_NE(text.find("test.ring: 99 B (live)"), std::string::npos) << text;
  EXPECT_NE(text.find("total: 12444 B"), std::string::npos) << text;

  std::string prom = RenderMemLedgerPrometheus(ledger, "secview");
  Status valid = obs::ValidatePrometheusText(prom);
  EXPECT_TRUE(valid.ok()) << valid << "\n" << prom;
  EXPECT_NE(prom.find("secview_mem_ledger_bytes{account=\"xml.doc\"} 12345"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("secview_mem_ledger_total_bytes 12444"),
            std::string::npos)
      << prom;
  ledger.ResetForTesting();
}

TEST(MemLedgerTest, ConcurrentChargesAndSnapshotsAreCoherent) {
  obs::MemLedger& ledger = obs::MemLedger::Instance();
  ledger.ResetForTesting();
  std::atomic<bool> stop{false};
  std::thread scraper([&ledger, &stop] {
    while (!stop.load()) {
      for (const obs::MemLedger::Row& row : ledger.Snapshot()) {
        volatile int64_t sink = row.bytes;
        (void)sink;
      }
    }
  });
  std::vector<std::thread> chargers;
  for (int t = 0; t < 4; ++t) {
    chargers.emplace_back([&ledger, t] {
      obs::MemLedger::Account& mine =
          ledger.GetAccount("worker." + std::to_string(t));
      for (int i = 0; i < 2000; ++i) {
        obs::ScopedLedgerCharge charge("shared.pool", 64);
        mine.Add(8);
        mine.Add(-8);
      }
    });
  }
  for (std::thread& t : chargers) t.join();
  stop.store(true);
  scraper.join();
  // Every scope balanced: all accounts must read zero.
  for (const obs::MemLedger::Row& row : ledger.Snapshot()) {
    EXPECT_EQ(row.bytes, 0) << row.name;
  }
  ledger.ResetForTesting();
}

// ---------------------------------------------------------------------------
// EvalScratch footprint publication

TEST(EvalScratchFootprintTest, PublishedBytesFeedTheProcessTotal) {
  const size_t before = EvalScratch::TotalPublishedBytes();
  {
    EvalScratch scratch;
    std::vector<NodeId>* set = scratch.AcquireSet();
    set->resize(10000);
    scratch.ReleaseSet(set);
    scratch.PublishFootprint();
    EXPECT_GE(scratch.FootprintBytes(), 10000 * sizeof(NodeId));
    EXPECT_GE(EvalScratch::TotalPublishedBytes(),
              before + 10000 * sizeof(NodeId));
  }
  // A destroyed scratch leaves the registry; the total drops back.
  EXPECT_EQ(EvalScratch::TotalPublishedBytes(), before);
}

// ---------------------------------------------------------------------------
// The reconciliation invariant: engine setup / serve / teardown

constexpr char kNursePolicy[] = R"(
  ann(hospital, dept) = [*/patient/wardNo = $wardNo]
  ann(dept, clinicalTrial) = N
  ann(clinicalTrial, patientInfo) = Y
  ann(treatment, trial) = N
  ann(treatment, regular) = N
  ann(trial, bill) = Y
  ann(regular, bill) = Y
  ann(regular, medication) = Y
)";

TEST(HeapObservatoryTest, LedgerAndCountersReconcileAcrossEngineLifecycle) {
  if (!LiveHeapTrackingAvailable()) GTEST_SKIP() << "no free-side sizing";
  obs::MemLedger& ledger = obs::MemLedger::Instance();
  ledger.ResetForTesting();

  const bool sample = !UnderSanitizer();
  if (sample) {
    obs::HeapProfileOptions options;
    options.sample_interval_bytes = 8192;
    ASSERT_TRUE(obs::HeapProfiler::Instance().Start(options).ok());
  }

  const HeapStats before = ProcessHeapStats();
  {
    auto engine = SecureQueryEngine::Create(MakeHospitalDtd());
    ASSERT_TRUE(engine.ok()) << engine.status();
    ASSERT_TRUE((*engine)->RegisterPolicy("nurse", kNursePolicy).ok());
    auto doc = GenerateDocument(MakeHospitalDtd(),
                                HospitalGeneratorOptions(5, 20'000));
    ASSERT_TRUE(doc.ok()) << doc.status();
    const size_t doc_bytes = doc->MemoryFootprintBytes();
    ASSERT_GT(doc_bytes, 0u);

    // The document charge is exact by construction: the scope charges
    // the measured footprint and refunds the same number.
    obs::ScopedLedgerCharge doc_charge("xml.doc",
                                       static_cast<int64_t>(doc_bytes));
    EXPECT_EQ(ledger.GetAccount("xml.doc").bytes(),
              static_cast<int64_t>(doc_bytes));
    // The document's node/string storage is real live heap: the global
    // counters must carry at least a large fraction of what the ledger
    // attributes to it.
    const HeapStats serving = ProcessHeapStats();
    EXPECT_GE(serving.live_bytes, before.live_bytes + doc_bytes / 2)
        << "tree footprint must be visible in the live counters";

    (*engine)->Seal();
    ExecuteOptions exec;
    exec.bindings = {{"wardNo", "3"}};
    for (int i = 0; i < 20; ++i) {
      auto result = (*engine)->Execute("nurse", *doc, "//patient//bill", exec);
      ASSERT_TRUE(result.ok()) << result.status();
    }

    if (sample) {
      obs::HeapProfileSnapshot snapshot =
          obs::HeapProfiler::Instance().Snapshot(/*symbolize=*/false);
      EXPECT_GT(snapshot.samples, 0u) << "engine setup allocates enough "
                                         "to cross the sampling interval";
      // The sampled estimate covers a subset of the live heap (only
      // allocations since Start); it can exceed the precise counter only
      // by sampling error.
      EXPECT_LT(snapshot.live_bytes,
                ProcessHeapStats().live_bytes * 5 / 4 + 65536);
    }
  }

  // Teardown: the scoped charge balanced exactly.
  EXPECT_EQ(ledger.GetAccount("xml.doc").bytes(), 0);
  EXPECT_EQ(ledger.TotalBytes(), 0);
  if (sample) obs::HeapProfiler::Instance().Stop();

  // The live counters return to the neighborhood of the baseline. Not
  // exact: interned statics, thread-local eval-scratch pools, and
  // lazily-grown library caches legitimately survive the scope — but
  // the multi-megabyte document and engine must not.
  const HeapStats after = ProcessHeapStats();
  EXPECT_LT(after.live_bytes, before.live_bytes + (4u << 20))
      << "engine teardown must return its heap";
  ledger.ResetForTesting();
}

}  // namespace
}  // namespace secview
