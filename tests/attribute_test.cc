#include <gtest/gtest.h>

#include "dtd/graph.h"
#include "dtd/normalizer.h"
#include "dtd/validator.h"
#include "optimize/constraints.h"
#include "optimize/optimizer.h"
#include "rewrite/rewriter.h"
#include "security/derive.h"
#include "security/materializer.h"
#include "security/spec_parser.h"
#include "workload/generator.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace secview {
namespace {

/// Attribute-level access control — the extension Section 2 of the paper
/// points at. A small personnel DTD with attributes at several levels.
constexpr char kStaffDtd[] = R"(
  <!ELEMENT roster (person)*>
  <!ELEMENT person (name, assignment)>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT assignment (#PCDATA)>
  <!ATTLIST person id CDATA #REQUIRED
                   salary CDATA #IMPLIED
                   grade (junior | senior) "junior">
  <!ATTLIST assignment unit CDATA #REQUIRED
                       classified (yes | no) #FIXED "no">
)";

constexpr char kDoc[] = R"(
  <roster>
    <person id="p1" salary="90000" grade="senior">
      <name>ada</name>
      <assignment unit="alpha" classified="no">compilers</assignment>
    </person>
    <person id="p2" grade="junior">
      <name>bob</name>
      <assignment unit="beta" classified="no">runtime</assignment>
    </person>
  </roster>
)";

class AttributeTest : public testing::Test {
 protected:
  void SetUp() override {
    auto normalized = ParseAndNormalizeDtd(kStaffDtd);
    ASSERT_TRUE(normalized.ok()) << normalized.status();
    ASSERT_TRUE(normalized->aux_types.empty());
    dtd_ = std::make_unique<Dtd>(std::move(normalized->dtd));
    auto doc = ParseXml(kDoc);
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = std::move(doc).value();
  }

  std::unique_ptr<Dtd> dtd_;
  XmlTree doc_;
};

TEST_F(AttributeTest, AttlistParsed) {
  TypeId person = dtd_->FindType("person");
  ASSERT_EQ(dtd_->Attributes(person).size(), 3u);
  const AttributeDef* id = dtd_->FindAttribute(person, "id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->presence, AttributeDef::Presence::kRequired);
  const AttributeDef* grade = dtd_->FindAttribute(person, "grade");
  ASSERT_NE(grade, nullptr);
  EXPECT_EQ(grade->value_type, AttributeDef::ValueType::kEnumerated);
  EXPECT_EQ(grade->presence, AttributeDef::Presence::kDefault);
  EXPECT_EQ(grade->default_value, "junior");
  const AttributeDef* classified =
      dtd_->FindAttribute(dtd_->FindType("assignment"), "classified");
  ASSERT_NE(classified, nullptr);
  EXPECT_EQ(classified->presence, AttributeDef::Presence::kFixed);
  EXPECT_EQ(dtd_->FindAttribute(person, "nope"), nullptr);
}

TEST_F(AttributeTest, AttlistRoundTripsThroughToString) {
  std::string text = dtd_->ToString();
  EXPECT_NE(text.find("<!ATTLIST person id CDATA #REQUIRED"),
            std::string::npos)
      << text;
  auto again = ParseAndNormalizeDtd(text);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->dtd.Attributes(again->dtd.FindType("person")).size(), 3u);
}

TEST_F(AttributeTest, ValidatorChecksAttributes) {
  EXPECT_TRUE(ValidateInstance(doc_, *dtd_).ok());
  // Missing #REQUIRED id.
  auto missing = ParseXml(
      "<roster><person grade=\"junior\"><name>x</name>"
      "<assignment unit=\"u\">a</assignment></person></roster>");
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(ValidateInstance(*missing, *dtd_).ok());
  // Value outside the enumeration.
  auto bad_enum = ParseXml(
      "<roster><person id=\"p\" grade=\"chief\"><name>x</name>"
      "<assignment unit=\"u\">a</assignment></person></roster>");
  ASSERT_TRUE(bad_enum.ok());
  EXPECT_FALSE(ValidateInstance(*bad_enum, *dtd_).ok());
  // Wrong #FIXED value.
  auto bad_fixed = ParseXml(
      "<roster><person id=\"p\"><name>x</name>"
      "<assignment unit=\"u\" classified=\"yes\">a</assignment>"
      "</person></roster>");
  ASSERT_TRUE(bad_fixed.ok());
  EXPECT_FALSE(ValidateInstance(*bad_fixed, *dtd_).ok());
  // Undeclared attribute.
  auto undeclared = ParseXml(
      "<roster><person id=\"p\" ssn=\"123\"><name>x</name>"
      "<assignment unit=\"u\">a</assignment></person></roster>");
  ASSERT_TRUE(undeclared.ok());
  EXPECT_FALSE(ValidateInstance(*undeclared, *dtd_).ok());
}

TEST_F(AttributeTest, GeneratorEmitsDeclaredAttributes) {
  GeneratorOptions gen;
  gen.seed = 3;
  gen.min_branching = 2;
  gen.max_branching = 4;
  auto generated = GenerateDocument(*dtd_, gen);
  ASSERT_TRUE(generated.ok()) << generated.status();
  EXPECT_TRUE(ValidateInstance(*generated, *dtd_).ok())
      << ToXmlString(*generated);
  bool saw_person = false;
  for (NodeId n = 0; n < static_cast<NodeId>(generated->node_count()); ++n) {
    if (!generated->IsElement(n) || generated->label(n) != "person") continue;
    saw_person = true;
    EXPECT_TRUE(generated->GetAttribute(n, "id").has_value());
    auto grade = generated->GetAttribute(n, "grade");
    ASSERT_TRUE(grade.has_value());
    EXPECT_TRUE(*grade == "junior" || *grade == "senior");
  }
  EXPECT_TRUE(saw_person);
}

TEST_F(AttributeTest, SpecAnnotatesAttributes) {
  auto spec = ParseAccessSpec(*dtd_, "ann(person, @salary) = N");
  ASSERT_TRUE(spec.ok()) << spec.status();
  TypeId person = dtd_->FindType("person");
  EXPECT_TRUE(spec->IsAttributeHidden(person, "salary"));
  EXPECT_FALSE(spec->IsAttributeHidden(person, "id"));
  EXPECT_EQ(spec->HiddenAttributes(person),
            std::vector<std::string>{"salary"});
  EXPECT_NE(spec->ToString().find("ann(person, @salary) = N"),
            std::string::npos);

  EXPECT_FALSE(ParseAccessSpec(*dtd_, "ann(person, @nope) = N").ok());
  EXPECT_FALSE(ParseAccessSpec(*dtd_, "ann(person, @salary) = [x]").ok());
}

class AttributePolicyTest : public AttributeTest {
 protected:
  void SetUp() override {
    AttributeTest::SetUp();
    auto spec = ParseAccessSpec(*dtd_, "ann(person, @salary) = N");
    ASSERT_TRUE(spec.ok());
    spec_ = std::make_unique<AccessSpec>(std::move(spec).value());
    auto view = DeriveSecurityView(*spec_);
    ASSERT_TRUE(view.ok()) << view.status();
    view_ = std::make_unique<SecurityView>(std::move(view).value());
  }

  std::unique_ptr<AccessSpec> spec_;
  std::unique_ptr<SecurityView> view_;
};

TEST_F(AttributePolicyTest, ViewDtdOmitsHiddenAttribute) {
  std::string text = view_->ViewDtdString();
  EXPECT_NE(text.find("id CDATA #REQUIRED"), std::string::npos) << text;
  EXPECT_EQ(text.find("salary"), std::string::npos) << text;
}

TEST_F(AttributePolicyTest, MaterializedViewOmitsHiddenAttribute) {
  auto tv = MaterializeView(doc_, *view_, *spec_);
  ASSERT_TRUE(tv.ok()) << tv.status();
  std::string xml = ToXmlString(*tv);
  EXPECT_EQ(xml.find("salary"), std::string::npos) << xml;
  EXPECT_NE(xml.find("id=\"p1\""), std::string::npos) << xml;
  EXPECT_NE(xml.find("grade=\"senior\""), std::string::npos);
}

TEST_F(AttributePolicyTest, AttributeProbeChannelClosed) {
  // A user probing the hidden salary through a qualifier must learn
  // nothing: the rewritten query is empty, not a document probe.
  auto rewriter = QueryRewriter::Create(*view_);
  ASSERT_TRUE(rewriter.ok());
  for (const char* probe :
       {"person[@salary]", "person[@salary = \"90000\"]",
        "//person[@salary]/name"}) {
    SCOPED_TRACE(probe);
    auto q = ParseXPath(probe);
    ASSERT_TRUE(q.ok());
    auto rewritten = rewriter->Rewrite(*q);
    ASSERT_TRUE(rewritten.ok());
    auto result = EvaluateAtRoot(doc_, *rewritten);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->empty())
        << "salary probe leaked via " << ToXPathString(*rewritten);
  }
  // Visible attributes still work.
  auto q = ParseXPath("person[@grade = \"senior\"]/name");
  ASSERT_TRUE(q.ok());
  auto rewritten = rewriter->Rewrite(*q);
  ASSERT_TRUE(rewritten.ok());
  auto result = EvaluateAtRoot(doc_, *rewritten);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(doc_.CollectText((*result)[0]), "ada");
}

TEST_F(AttributePolicyTest, MaterializedAndRewrittenAgreeOnAttributeQueries) {
  auto rewriter = QueryRewriter::Create(*view_);
  ASSERT_TRUE(rewriter.ok());
  auto tv = MaterializeView(doc_, *view_, *spec_);
  ASSERT_TRUE(tv.ok());
  for (const char* query :
       {"person[@grade = \"junior\"]", "person[@salary]",
        "//assignment[@unit = \"alpha\"]", "person[@id = \"p2\"]/name"}) {
    SCOPED_TRACE(query);
    auto q = ParseXPath(query);
    ASSERT_TRUE(q.ok());
    auto on_view = EvaluateAtRoot(*tv, *q);
    ASSERT_TRUE(on_view.ok());
    std::vector<NodeId> expected;
    for (NodeId n : *on_view) expected.push_back(tv->origin(n));
    std::sort(expected.begin(), expected.end());
    auto rewritten = rewriter->Rewrite(*q);
    ASSERT_TRUE(rewritten.ok());
    auto on_doc = EvaluateAtRoot(doc_, *rewritten);
    ASSERT_TRUE(on_doc.ok());
    EXPECT_EQ(*on_doc, expected) << ToXPathString(*rewritten);
  }
}

TEST_F(AttributePolicyTest, DummiesConcealAllAttributes) {
  // Hide assignment behind a dummy by concealing its label via a choice…
  // simpler: check the flag directly on a dummy from the hospital view.
  for (ViewTypeId id = 0; id < view_->NumTypes(); ++id) {
    if (view_->type(id).is_dummy) {
      EXPECT_TRUE(view_->type(id).all_attributes_hidden);
    }
  }
}

// -- Optimizer uses attribute declarations ---------------------------------------

TEST_F(AttributeTest, ConstraintFoldingOnAttributes) {
  DtdGraph graph(*dtd_);
  TypeId person = dtd_->FindType("person");
  TypeId assignment = dtd_->FindType("assignment");
  auto tri = [&](const char* qual, TypeId at) {
    auto q = ParseXPathQualifier(qual);
    EXPECT_TRUE(q.ok()) << qual;
    return EvaluateQualifierAtType(graph, *q, at);
  };
  // #REQUIRED and defaulted attributes always exist.
  EXPECT_EQ(tri("@id", person), Tri::kTrue);
  EXPECT_EQ(tri("@grade", person), Tri::kTrue);
  // #IMPLIED: unknown.
  EXPECT_EQ(tri("@salary", person), Tri::kUnknown);
  // Undeclared: never.
  EXPECT_EQ(tri("@ssn", person), Tri::kFalse);
  // #FIXED decides equalities.
  EXPECT_EQ(tri("@classified = \"no\"", assignment), Tri::kTrue);
  EXPECT_EQ(tri("@classified = \"yes\"", assignment), Tri::kFalse);
  // Enumerations refute impossible values.
  EXPECT_EQ(tri("@grade = \"chief\"", person), Tri::kFalse);
  EXPECT_EQ(tri("@grade = \"senior\"", person), Tri::kUnknown);
}

TEST_F(AttributeTest, OptimizerFoldsAttributeQualifiers) {
  auto optimizer = QueryOptimizer::Create(*dtd_);
  ASSERT_TRUE(optimizer.ok());
  auto optimize = [&](const char* text) {
    auto q = ParseXPath(text);
    EXPECT_TRUE(q.ok());
    auto r = optimizer->Optimize(*q);
    EXPECT_TRUE(r.ok());
    return ToXPathString(*r);
  };
  EXPECT_EQ(optimize("person[@id]"), "person");
  EXPECT_EQ(optimize("person[@ssn]"), ".[false()]");
  EXPECT_EQ(optimize("//assignment[@classified = \"yes\"]"), ".[false()]");
  EXPECT_EQ(optimize("person[@grade = \"chief\"]/name"), ".[false()]");
  EXPECT_EQ(optimize("person[@salary]"), "person/.[@salary]");  // kept (normalized form)
}

}  // namespace
}  // namespace secview
