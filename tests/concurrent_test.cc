// Concurrency coverage for the serve phase: many threads x mixed
// policies x cache hits/misses/evictions x recursive-view depth keys,
// always asserting byte-identical results against a serial engine, plus
// worker-pool batch semantics (input order, per-slot failures) and
// EXPLAIN-while-serving. Run these under -DSECVIEW_SANITIZE=thread
// (scripts/check.sh does) — a passing race-free run is the point.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/explain.h"
#include "engine/rewrite_cache.h"
#include "engine/worker_pool.h"
#include "obs/plan_profile.h"
#include "obs/policy_stats.h"
#include "obs/trace.h"
#include "obs/trace_store.h"
#include "workload/hospital.h"
#include "workload/synthetic.h"
#include "xml/parser.h"
#include "xpath/parser.h"
#include "xpath/plan.h"
#include "xpath/printer.h"

namespace secview {
namespace {

constexpr char kNursePolicy[] = R"(
  ann(hospital, dept) = [*/patient/wardNo = $wardNo]
  ann(dept, clinicalTrial) = N
  ann(clinicalTrial, patientInfo) = Y
  ann(treatment, trial) = N
  ann(treatment, regular) = N
  ann(trial, bill) = Y
  ann(regular, bill) = Y
  ann(regular, medication) = Y
)";

constexpr char kResearcherPolicy[] = R"(
  # Researchers see clinical-trial data of every ward, nothing else.
  ann(dept, patientInfo) = N
  ann(dept, staffInfo) = N
)";

// A mixed query set: repeats make cache hits, distinct texts make
// misses, and all are valid over both views' exposed labels.
const char* kQueries[] = {
    "//patient/name",  "//bill",           "//patient//bill",
    "//patient/name",  "//wardNo",         "//patient[wardNo]/name",
    "//bill",          "patientInfo//name", "//medication",
    "//patient/name | //bill",
};

std::unique_ptr<SecureQueryEngine> MakeHospitalEngine(
    const EngineOptions& options = EngineOptions{}) {
  auto engine = SecureQueryEngine::Create(MakeHospitalDtd(), options);
  EXPECT_TRUE(engine.ok()) << engine.status();
  auto e = std::move(engine).value();
  EXPECT_TRUE(e->RegisterPolicy("nurse", kNursePolicy).ok());
  EXPECT_TRUE(e->RegisterPolicy("researcher", kResearcherPolicy).ok());
  return e;
}

XmlTree MakeHospitalDoc() {
  auto doc = GenerateDocument(MakeHospitalDtd(),
                              HospitalGeneratorOptions(7, 60'000));
  EXPECT_TRUE(doc.ok()) << doc.status();
  return std::move(doc).value();
}

ExecuteOptions NurseOptions() {
  ExecuteOptions options;
  options.bindings = {{"wardNo", "3"}};
  return options;
}

TEST(ShardedRewriteCacheTest, LookupInsertEvict) {
  ShardedRewriteCache::Options options;
  options.shards = 2;
  options.capacity = 4;
  ShardedRewriteCache cache(options);
  EXPECT_EQ(cache.shard_count(), 2u);
  EXPECT_EQ(cache.shard_capacity(), 2u);
  EXPECT_FALSE(cache.Lookup("missing").has_value());

  // Insert more keys than the budget; every shard stays within its
  // capacity, evictions are counted, and the byte accounting shrinks
  // along with the entries.
  for (int i = 0; i < 20; ++i) {
    auto r = ParseXPath("//bill");
    ASSERT_TRUE(r.ok());
    cache.Insert("key" + std::to_string(i), CachedQuery{*r, nullptr});
  }
  EXPECT_LE(cache.ShardSize(0), cache.shard_capacity());
  EXPECT_LE(cache.ShardSize(1), cache.shard_capacity());
  EXPECT_LE(cache.size(), 4u);
  EXPECT_GE(cache.evictions(), 16u);
  EXPECT_GT(cache.bytes(), 0u);
  EXPECT_EQ(cache.ShardBytes(0) + cache.ShardBytes(1), cache.bytes());

  // A key collision keeps the resident value.
  auto a = ParseXPath("//bill");
  auto b = ParseXPath("//wardNo");
  ASSERT_TRUE(a.ok() && b.ok());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  auto first = cache.Insert("k", CachedQuery{*a, nullptr});
  EXPECT_TRUE(first.inserted);
  EXPECT_EQ(first.bytes_delta,
            static_cast<int64_t>(
                ShardedRewriteCache::EntryFootprintBytes(
                    "k", CachedQuery{*a, nullptr})));
  auto second = cache.Insert("k", CachedQuery{*b, nullptr});
  EXPECT_FALSE(second.inserted);
  EXPECT_EQ(second.value.query.get(), a->get());
  EXPECT_EQ(second.bytes_delta, 0);
  EXPECT_EQ(cache.Lookup("k")->query.get(), a->get());
}

TEST(ShardedRewriteCacheTest, LruIshEvictionKeepsRecentlyUsed) {
  ShardedRewriteCache::Options options;
  options.shards = 1;  // one shard makes the eviction order deterministic
  options.capacity = 3;
  ShardedRewriteCache cache(options);
  auto q = ParseXPath("//bill");
  ASSERT_TRUE(q.ok());
  cache.Insert("a", CachedQuery{*q, nullptr});
  cache.Insert("b", CachedQuery{*q, nullptr});
  cache.Insert("c", CachedQuery{*q, nullptr});
  // Touch "a" so "b" is now the least recently used.
  EXPECT_TRUE(cache.Lookup("a").has_value());
  cache.Insert("d", CachedQuery{*q, nullptr});
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_TRUE(cache.Lookup("d").has_value());
}

TEST(ShardedRewriteCacheTest, CompiledPlanEvictionKeepsAccountingExact) {
  // Entries with compiled plans attached must evict with their byte and
  // plan counts subtracted exactly.
  ShardedRewriteCache::Options options;
  options.shards = 1;
  options.capacity = 2;
  ShardedRewriteCache cache(options);
  auto q = ParseXPath("//bill");
  ASSERT_TRUE(q.ok());
  auto plan = CompilePlan(*q);
  ASSERT_NE(plan, nullptr);

  auto first = cache.Insert("a", CachedQuery{*q, plan});
  EXPECT_EQ(first.plans_delta, 1);
  EXPECT_EQ(first.plan_bytes_delta, static_cast<int64_t>(plan->byte_size()));
  cache.Insert("b", CachedQuery{*q, nullptr});
  EXPECT_EQ(cache.plans(), 1u);
  EXPECT_EQ(cache.ShardPlans(0), 1u);

  // AttachPlan on the plan-less entry; a second attach is a no-op that
  // returns the resident plan.
  auto attach = cache.AttachPlan("b", CompilePlan(*q));
  EXPECT_TRUE(attach.attached);
  EXPECT_EQ(attach.plans_delta, 1);
  auto again = cache.AttachPlan("b", CompilePlan(*q));
  EXPECT_FALSE(again.attached);
  EXPECT_EQ(again.plan.get(), attach.plan.get());
  EXPECT_EQ(cache.plans(), 2u);

  // Filling past capacity evicts plan-carrying entries; the deltas and
  // totals must return to exactly what the resident entries account for.
  cache.Lookup("b");  // make "a" the LRU victim
  auto evicting = cache.Insert("c", CachedQuery{*q, CompilePlan(*q)});
  EXPECT_TRUE(evicting.evicted);
  EXPECT_EQ(evicting.plans_delta, 0);  // evicted one with a plan, added one
  EXPECT_EQ(cache.plans(), 2u);
  EXPECT_FALSE(cache.Lookup("a").has_value());

  // An insert colliding with a plan-less resident grafts its plan on.
  ShardedRewriteCache graft_cache(options);
  graft_cache.Insert("k", CachedQuery{*q, nullptr});
  EXPECT_EQ(graft_cache.plans(), 0u);
  auto graft = graft_cache.Insert("k", CachedQuery{*q, CompilePlan(*q)});
  EXPECT_FALSE(graft.inserted);
  EXPECT_EQ(graft.plans_delta, 1);
  EXPECT_NE(graft.value.plan, nullptr);
  EXPECT_EQ(graft_cache.plans(), 1u);
}

TEST(ConcurrentEngineTest, CompiledPlanEvictionUnderContentionIsRaceFree) {
  // A tiny cache and a query stream wider than it: every thread drives
  // compiles, plan attaches, grafts, and evictions of entries whose
  // bytecode other threads are concurrently executing. TSan-clean is
  // the point; results must still match the serial engine.
  XmlTree doc = MakeHospitalDoc();
  auto serial = MakeHospitalEngine();
  std::vector<std::vector<NodeId>> expected;
  for (const char* q : kQueries) {
    auto r = serial->Execute("nurse", doc, q, NurseOptions());
    ASSERT_TRUE(r.ok()) << q << ": " << r.status();
    expected.push_back(r->nodes);
  }

  EngineOptions tiny;
  tiny.cache_shards = 2;
  tiny.cache_capacity = 4;  // far fewer entries than distinct keys
  auto engine = MakeHospitalEngine(tiny);
  engine->Seal();

  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const int qi = (t + round) % static_cast<int>(std::size(kQueries));
        auto r = engine->Execute("nurse", doc, kQueries[qi], NurseOptions());
        if (!r.ok() || r->nodes != expected[qi]) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(engine->metrics().GetCounter("engine.cache.evictions").value(),
            0u);
  EXPECT_GT(engine->metrics().GetCounter("engine.plan.compiles").value(), 0u);
  // Gauges must stay balanced after the dust settles: every insert,
  // evict, and attach delta netted out against resident entries.
  const int64_t plan_count =
      engine->metrics().GetGauge("engine.plan.cached").value();
  const int64_t plan_bytes =
      engine->metrics().GetGauge("engine.plan.cache_bytes").value();
  EXPECT_GE(plan_count, 0);
  EXPECT_GT(plan_bytes, 0);
  EXPECT_GT(engine->metrics().GetGauge("engine.cache.bytes").value(), 0);
}

TEST(ConcurrentEngineTest, SealStopsRegistration) {
  auto engine = MakeHospitalEngine();
  EXPECT_FALSE(engine->sealed());
  engine->Seal();
  EXPECT_TRUE(engine->sealed());
  Status late = engine->RegisterPolicy("late", kResearcherPolicy);
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(late.code(), StatusCode::kFailedPrecondition);
  // Serving still works after sealing.
  XmlTree doc = MakeHospitalDoc();
  EXPECT_TRUE(engine->Execute("nurse", doc, "//bill", NurseOptions()).ok());
}

TEST(ConcurrentEngineTest, PoolConstructionSealsEngine) {
  auto engine = MakeHospitalEngine();
  QueryWorkerPool::Options options;
  options.threads = 2;
  QueryWorkerPool pool(*engine, options);
  EXPECT_EQ(pool.threads(), 2u);
  EXPECT_TRUE(engine->sealed());
  EXPECT_EQ(engine->metrics().GetGauge("engine.pool.threads").value(), 2);
}

// The central identity check: a multi-threaded engine must return
// byte-identical results (node ids, order, rewritten queries) to a
// serial engine for the same query stream.
TEST(ConcurrentEngineTest, ManyThreadsMatchSerialResults) {
  XmlTree doc = MakeHospitalDoc();

  // Serial baseline on its own engine.
  auto serial = MakeHospitalEngine();
  std::vector<std::vector<NodeId>> nurse_expected;
  std::vector<std::vector<NodeId>> researcher_expected;
  std::vector<std::string> nurse_rewritten;
  for (const char* q : kQueries) {
    auto rn = serial->Execute("nurse", doc, q, NurseOptions());
    ASSERT_TRUE(rn.ok()) << q << ": " << rn.status();
    nurse_expected.push_back(rn->nodes);
    nurse_rewritten.push_back(ToXPathString(rn->rewritten));
    auto rr = serial->Execute("researcher", doc, q);
    ASSERT_TRUE(rr.ok()) << q << ": " << rr.status();
    researcher_expected.push_back(rr->nodes);
  }

  // Shared concurrent engine with a small sharded cache so hits,
  // misses, collisions, and evictions all happen under contention.
  EngineOptions small;
  small.cache_shards = 4;
  small.cache_capacity = 8;
  auto engine = MakeHospitalEngine(small);
  engine->Seal();

  constexpr int kThreads = 8;
  constexpr int kRounds = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const int num_queries = static_cast<int>(std::size(kQueries));
      for (int round = 0; round < kRounds; ++round) {
        // Each thread walks the query list at its own offset so threads
        // collide on some keys and diverge on others.
        int i = (t + round) % num_queries;
        const char* q = kQueries[i];
        if (t % 2 == 0) {
          auto r = engine->Execute("nurse", doc, q, NurseOptions());
          if (!r.ok() || r->nodes != nurse_expected[i] ||
              ToXPathString(r->rewritten) != nurse_rewritten[i]) {
            failures.fetch_add(1);
          }
        } else {
          auto r = engine->Execute("researcher", doc, q);
          if (!r.ok() || r->nodes != researcher_expected[i]) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  obs::MetricsRegistry& metrics = engine->metrics();
  EXPECT_GT(metrics.GetCounter("engine.cache.hits").value(), 0u);
  EXPECT_GT(metrics.GetCounter("engine.cache.misses").value(), 0u);
  // The tiny capacity guarantees the eviction path ran under load.
  EXPECT_GT(metrics.GetCounter("engine.cache.evictions").value(), 0u);
  EXPECT_LE(metrics.GetGauge("engine.cache.size").value(),
            2 * static_cast<int64_t>(small.cache_capacity));
}

// Plan profiling under contention: many threads feed the lock-striped
// PlanProfileTable while results stay identical to unprofiled runs, and
// the table's exclusive rows stay additive against the aggregate
// node-touch counter.
TEST(ConcurrentEngineTest, PlanProfilingUnderConcurrencyStaysConsistent) {
  XmlTree doc = MakeHospitalDoc();
  auto serial = MakeHospitalEngine();
  std::vector<std::vector<NodeId>> expected;
  for (const char* q : kQueries) {
    auto r = serial->Execute("nurse", doc, q, NurseOptions());
    ASSERT_TRUE(r.ok()) << q << ": " << r.status();
    expected.push_back(r->nodes);
  }

  auto engine = MakeHospitalEngine();
  obs::PlanProfileTable table;
  engine->AttachPlanProfiles(&table);  // implies profiling on every query
  engine->Seal();

  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const int num_queries = static_cast<int>(std::size(kQueries));
      for (int round = 0; round < kRounds; ++round) {
        int i = (t + round) % num_queries;
        auto r = engine->Execute("nurse", doc, kQueries[i], NurseOptions());
        if (!r.ok() || r->nodes != expected[i] || r->profile == nullptr ||
            r->stats.hot_step.empty()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  EXPECT_EQ(table.queries(),
            static_cast<uint64_t>(kThreads) * static_cast<uint64_t>(kRounds));
  uint64_t table_nodes = 0;
  for (const obs::PlanStepRecord& row : table.Snapshot()) {
    table_nodes += row.nodes_touched;
  }
  EXPECT_EQ(table_nodes,
            engine->metrics().GetCounter("eval.nodes_touched").value());
}

// Recursive views key the cache by unfolding depth; concurrent queries
// against documents of different heights must stay isolated.
TEST(ConcurrentEngineTest, RecursiveDepthKeysUnderConcurrency) {
  RecursiveFixture fixture = MakeRecursiveFixture();
  auto engine = SecureQueryEngine::Create(std::move(fixture.dtd));
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE((*engine)->RegisterPolicy("p", fixture.spec_text).ok());

  auto shallow = ParseXml(
      "<doc><section><title>t</title><meta/></section></doc>");
  auto deep = ParseXml(R"(
    <doc>
      <section><title>t1</title>
        <meta>
          <section><title>t1.1</title>
            <meta>
              <section><title>t1.1.1</title><meta/></section>
            </meta>
          </section>
        </meta>
      </section>
    </doc>
  )");
  ASSERT_TRUE(shallow.ok() && deep.ok());

  auto expected_shallow = (*engine)->Execute("p", *shallow, "//title");
  auto expected_deep = (*engine)->Execute("p", *deep, "//title");
  ASSERT_TRUE(expected_shallow.ok() && expected_deep.ok());
  ASSERT_NE(expected_shallow->nodes.size(), expected_deep->nodes.size());

  (*engine)->Seal();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 20; ++round) {
        const bool use_deep = (t + round) % 2 == 0;
        const XmlTree& doc = use_deep ? *deep : *shallow;
        const auto& expected =
            use_deep ? expected_deep->nodes : expected_shallow->nodes;
        auto r = (*engine)->Execute("p", doc, "//title");
        if (!r.ok() || r->nodes != expected) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrentEngineTest, ExecuteBatchPreservesInputOrder) {
  auto engine = MakeHospitalEngine();
  XmlTree doc = MakeHospitalDoc();

  std::vector<std::string> queries;
  for (int round = 0; round < 5; ++round) {
    for (const char* q : kQueries) queries.push_back(q);
  }
  // Serial expectations, in input order.
  auto serial = MakeHospitalEngine();
  std::vector<std::vector<NodeId>> expected;
  for (const std::string& q : queries) {
    auto r = serial->Execute("nurse", doc, q, NurseOptions());
    ASSERT_TRUE(r.ok()) << q;
    expected.push_back(r->nodes);
  }

  QueryWorkerPool::Options pool_options;
  pool_options.threads = 4;
  QueryWorkerPool pool(*engine, pool_options);
  auto results = pool.ExecuteBatch("nurse", doc, queries, NurseOptions());
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << queries[i] << ": " << results[i].status();
    EXPECT_EQ(results[i]->nodes, expected[i]) << "slot " << i;
  }
  EXPECT_GE(engine->metrics().GetCounter("engine.pool.tasks").value(),
            queries.size());
  EXPECT_GE(engine->metrics().GetCounter("engine.pool.batches").value(), 1u);
}

TEST(ConcurrentEngineTest, ExecuteBatchReportsPerSlotFailures) {
  auto engine = MakeHospitalEngine();
  XmlTree doc = MakeHospitalDoc();
  std::vector<std::string> queries = {"//bill", "//(((", "//wardNo"};
  auto results = engine->ExecuteBatch("nurse", doc, queries, NurseOptions(),
                                      /*threads=*/2);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
  EXPECT_TRUE(engine->sealed());
}

TEST(ConcurrentEngineTest, EngineExecuteBatchSerialPathMatchesPool) {
  auto engine = MakeHospitalEngine();
  XmlTree doc = MakeHospitalDoc();
  std::vector<std::string> queries(kQueries, std::end(kQueries));
  auto serial = engine->ExecuteBatch("nurse", doc, queries, NurseOptions(),
                                     /*threads=*/1);
  auto pooled = engine->ExecuteBatch("nurse", doc, queries, NurseOptions(),
                                     /*threads=*/3);
  ASSERT_EQ(serial.size(), pooled.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok() && pooled[i].ok());
    EXPECT_EQ(serial[i]->nodes, pooled[i]->nodes) << "slot " << i;
    EXPECT_EQ(ToXPathString(serial[i]->evaluated),
              ToXPathString(pooled[i]->evaluated));
  }
}

// Explain runs the same prepared rewriter/optimizer the serving threads
// use; it must neither race with them nor disturb the cache.
TEST(ConcurrentEngineTest, ExplainWhileServing) {
  auto engine = MakeHospitalEngine();
  XmlTree doc = MakeHospitalDoc();
  engine->Seal();

  auto baseline = engine->Explain("nurse", "//patient//bill");
  ASSERT_TRUE(baseline.ok());
  const std::string baseline_text = baseline->ToText();

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> servers;
  for (int t = 0; t < 4; ++t) {
    servers.emplace_back([&] {
      while (!stop.load()) {
        auto r = engine->Execute("nurse", doc, "//patient//bill",
                                 NurseOptions());
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    auto explain = engine->Explain("nurse", "//patient//bill");
    if (!explain.ok() || explain->ToText() != baseline_text) {
      failures.fetch_add(1);
    }
  }
  stop.store(true);
  for (std::thread& t : servers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Execute-with-explain agrees with the standalone Explain while the
  // cache is warm (the explain pass must not be poisoned by caching).
  ExecuteOptions options = NurseOptions();
  QueryExplain via_execute;
  options.explain = &via_execute;
  ASSERT_TRUE(
      engine->Execute("nurse", doc, "//patient//bill", options).ok());
  QueryExplain expected = std::move(baseline).value();
  EXPECT_EQ(via_execute.ToText(), expected.ToText());
}

// The EvalLabel/EvalWildcard fast path (single context node skips
// SortUnique) must fire and be observable.
TEST(ConcurrentEngineTest, SortSkipCounterFires) {
  auto engine = MakeHospitalEngine();
  XmlTree doc = MakeHospitalDoc();
  ASSERT_TRUE(engine->Execute("nurse", doc, "//bill", NurseOptions()).ok());
  EXPECT_GT(engine->metrics().GetCounter("eval.sort_skips").value(), 0u);
}

// ---------------------------------------------------------------------------
// New observability state under concurrency (the TSan surface for the
// per-policy table and the request-trace ring).

TEST(ConcurrentObsTest, PolicyStatsRecordAndSnapshotRace) {
  obs::PolicyStatsTable table;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      for (const auto& row : table.Snapshot()) {
        // Each stripe is locked during copy: a row is always internally
        // consistent (outcome parts never exceed the query count).
        EXPECT_LE(row.ok + row.denied + row.timeout + row.shed, row.queries);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&table, t] {
      for (int i = 0; i < kPerWriter; ++i) {
        table.Record("policy" + std::to_string(i % 7),
                     i % 11 == 0 ? obs::ServeOutcome::kDenied
                                 : obs::ServeOutcome::kOk,
                     static_cast<uint64_t>(i % 500), 3, 128);
        (void)t;
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(table.total(), uint64_t{kWriters} * kPerWriter);
  uint64_t sum = 0;
  for (const auto& row : table.Snapshot()) sum += row.queries;
  EXPECT_EQ(sum, uint64_t{kWriters} * kPerWriter);
}

TEST(ConcurrentObsTest, TraceStoreOfferAndSnapshotRace) {
  obs::RequestTraceStore::Options options;
  options.sample_every = 2;
  options.slow_micros = 400;
  options.capacity = 16;
  obs::RequestTraceStore store(options);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 500;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      for (const auto& entry : store.Snapshot()) {
        EXPECT_EQ(entry.trace_id.size(), 16u);
        EXPECT_FALSE(entry.reason.empty());
      }
      std::string jsonl = store.SnapshotJsonl();
      EXPECT_TRUE(jsonl.empty() || jsonl.back() == '\n');
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&store, t] {
      for (int i = 0; i < kPerWriter; ++i) {
        obs::Trace trace("secview.request");
        {
          obs::ScopedSpan span(&trace, "evaluate");
          span.SetAttr("writer", t);
        }
        store.Offer("policy" + std::to_string(t), "//q", Status::OK(),
                    static_cast<uint64_t>(i), trace);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(store.offered(), uint64_t{kWriters} * kPerWriter);
  EXPECT_GT(store.retained(), 0u);
  EXPECT_EQ(store.Snapshot().size(), 16u);
}

TEST(ConcurrentEngineTest, BatchExecutionFeedsPolicyAndTraceStores) {
  auto engine = MakeHospitalEngine();
  XmlTree doc = MakeHospitalDoc();
  obs::PolicyStatsTable policy_stats;
  engine->AttachPolicyStats(&policy_stats);
  obs::RequestTraceStore::Options trace_options;
  trace_options.sample_every = 1;
  obs::RequestTraceStore traces(trace_options);
  engine->AttachTraceStore(&traces);

  QueryWorkerPool pool(*engine);
  std::vector<std::string> queries(kQueries, kQueries + 10);
  for (int round = 0; round < 3; ++round) {
    for (const auto& result :
         pool.ExecuteBatch("nurse", doc, queries, NurseOptions())) {
      ASSERT_TRUE(result.ok()) << result.status();
    }
  }
  EXPECT_EQ(policy_stats.total(), 30u);
  std::vector<obs::PolicyStatsTable::PolicySnapshot> rows =
      policy_stats.Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].policy, "nurse");
  EXPECT_EQ(rows[0].ok, 30u);
  EXPECT_EQ(traces.offered(), 30u);
  EXPECT_GT(traces.retained(), 0u);
  // Worker threads each built their own trace; the retained span trees
  // are complete (root with at least an evaluate child).
  for (const auto& entry : traces.Snapshot()) {
    const obs::Json* children = entry.spans.Find("children");
    ASSERT_NE(children, nullptr);
    EXPECT_FALSE(children->items().empty());
  }
}

// CancelAll racing batch admission racing pool teardown, repeatedly.
// Several client threads submit batches while a canceller spams
// CancelAll, so cancellation hits batches before, during, and after the
// admission loop's single lock hold; the pool is then destroyed (drain +
// join) the moment the batches return. Every slot must be filled with a
// definite outcome — a cancelled batch reports Cancelled (or a
// late-stage resource failure), never a hang, a missing slot, or a torn
// result. Run under TSan (scripts/check.sh does).
TEST(ConcurrentEngineTest, CancelAllRacesAdmissionAndShutdown) {
  auto engine = MakeHospitalEngine();
  XmlTree doc = MakeHospitalDoc();
  std::vector<std::string> queries(kQueries, kQueries + 10);
  ExecuteOptions options = NurseOptions();

  for (int iter = 0; iter < 20; ++iter) {
    QueryWorkerPool::Options pool_options;
    pool_options.threads = 2;  // keep the queue populated mid-batch
    QueryWorkerPool pool(*engine, pool_options);

    constexpr int kSubmitters = 3;
    std::vector<std::vector<Result<ExecuteResult>>> outcomes(kSubmitters);
    std::atomic<bool> stop_cancelling{false};
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        outcomes[t] = pool.ExecuteBatch("nurse", doc, queries, options);
      });
    }
    std::thread canceller([&] {
      while (!stop_cancelling.load()) {
        pool.CancelAll();
        std::this_thread::yield();
      }
    });
    for (std::thread& t : submitters) t.join();
    stop_cancelling.store(true);
    canceller.join();
    // Pool destruction (drain + join) runs here, immediately after the
    // last batch returned — the shutdown edge the test is about.

    for (const auto& batch : outcomes) {
      ASSERT_EQ(batch.size(), queries.size());
      for (const Result<ExecuteResult>& r : batch) {
        if (r.ok()) continue;
        const StatusCode code = r.status().code();
        EXPECT_TRUE(code == StatusCode::kCancelled ||
                    code == StatusCode::kResourceExhausted ||
                    code == StatusCode::kDeadlineExceeded)
            << r.status();
        // The placeholder a batch slot is initialized with must never
        // leak out as a result.
        EXPECT_EQ(r.status().message().find("batch slot not filled"),
                  std::string::npos);
      }
    }
  }
}

}  // namespace
}  // namespace secview
