#include <gtest/gtest.h>

#include "security/analysis.h"
#include "security/derive.h"
#include "security/materializer.h"
#include "security/spec_parser.h"
#include "workload/adex.h"
#include "workload/hospital.h"
#include "xml/parser.h"

namespace secview {
namespace {

SecurityView Derive(const Dtd& dtd, const std::string& spec_text) {
  auto spec = ParseAccessSpec(dtd, spec_text);
  EXPECT_TRUE(spec.ok()) << spec.status();
  auto view = DeriveSecurityView(*spec);
  EXPECT_TRUE(view.ok()) << view.status();
  return std::move(view).value();
}

TEST(AnalysisTest, NurseViewWarnsOnlyAboutTheWardQualifier) {
  // The hospital nurse policy is complete except for the star-filtered
  // dept qualifier — which is a star slot, so no warning; the view has
  // no conditional One slots and no dropped alternatives.
  Dtd dtd = MakeHospitalDtd();
  auto spec = MakeNurseSpec(dtd);
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(AnalyzeViewCompleteness(*view).empty());
}

TEST(AnalysisTest, AdexViewIsComplete) {
  Dtd dtd = MakeAdexDtd();
  auto spec = MakeAdexSpec(dtd);
  ASSERT_TRUE(spec.ok());
  auto view = DeriveSecurityView(*spec);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(AnalyzeViewCompleteness(*view).empty());
}

TEST(AnalysisTest, FlagsDroppedChoiceAlternative) {
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("r", ContentModel::Choice({"x", "y"})).ok());
  ASSERT_TRUE(dtd.AddType("x", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.AddType("y", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.SetRoot("r").ok());
  ASSERT_TRUE(dtd.Finalize().ok());
  SecurityView view = Derive(dtd, "ann(r, y) = N");
  auto warnings = AnalyzeViewCompleteness(view);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].view_type, "r");
  EXPECT_NE(warnings[0].description.find("alternative"), std::string::npos);

  // The warning corresponds to a real abort.
  auto spec = ParseAccessSpec(dtd, "ann(r, y) = N");
  ASSERT_TRUE(spec.ok());
  auto chose_y = ParseXml("<r><y>1</y></r>");
  ASSERT_TRUE(chose_y.ok());
  EXPECT_EQ(MaterializeView(*chose_y, view, *spec).status().code(),
            StatusCode::kAborted);
}

TEST(AnalysisTest, FlagsConditionalRequiredField) {
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("r", ContentModel::Sequence({"a", "b"})).ok());
  ASSERT_TRUE(dtd.AddType("a", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.AddType("b", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.SetRoot("r").ok());
  ASSERT_TRUE(dtd.Finalize().ok());
  SecurityView view = Derive(dtd, "ann(r, a) = [. = \"go\"]");
  auto warnings = AnalyzeViewCompleteness(view);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].slot, "a");
  EXPECT_NE(warnings[0].description.find("conditional"), std::string::npos);
}

TEST(AnalysisTest, StarQualifiersDoNotWarn) {
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("r", ContentModel::Star("item")).ok());
  ASSERT_TRUE(dtd.AddType("item", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.SetRoot("r").ok());
  ASSERT_TRUE(dtd.Finalize().ok());
  SecurityView view = Derive(dtd, "ann(r, item) = [. = \"keep\"]");
  EXPECT_TRUE(AnalyzeViewCompleteness(view).empty());
}

TEST(AnalysisTest, WarningToString) {
  CompletenessWarning warning{"t", "s", "something can abort"};
  EXPECT_EQ(warning.ToString(), "t: something can abort");
}

}  // namespace
}  // namespace secview
