#include <algorithm>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "security/annotator.h"
#include "security/derive.h"
#include "security/materializer.h"
#include "workload/hospital.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/parser.h"
#include "xpath/evaluator.h"
#include "xpath/printer.h"

namespace secview {
namespace {

/// Adversarial probes against the nurse view: every query a user can
/// write must return exactly what the (virtual) view semantics say —
/// nothing about hidden structure, content, or membership may be
/// inferable from answers. Each test expresses an attack strategy from
/// the access-control literature the paper discusses.

constexpr char kNursePolicy[] = R"(
  ann(hospital, dept) = [*/patient/wardNo = $wardNo]
  ann(dept, clinicalTrial) = N
  ann(clinicalTrial, patientInfo) = Y
  ann(treatment, trial) = N
  ann(treatment, regular) = N
  ann(trial, bill) = Y
  ann(regular, bill) = Y
  ann(regular, medication) = Y
)";

class AttackTest : public testing::Test {
 protected:
  void SetUp() override {
    auto engine = SecureQueryEngine::Create(MakeHospitalDtd());
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine).value();
    ASSERT_TRUE(engine_->RegisterPolicy("nurse", kNursePolicy).ok());
    auto doc = ParseXml(R"(
      <hospital>
        <dept>
          <clinicalTrial>
            <patientInfo>
              <patient><name>carol</name><wardNo>3</wardNo>
                <treatment><trial><bill>900</bill></trial></treatment>
              </patient>
            </patientInfo>
            <test>secret-trial-data</test>
          </clinicalTrial>
          <patientInfo>
            <patient><name>dave</name><wardNo>3</wardNo>
              <treatment><regular><bill>120</bill><medication>m</medication></regular></treatment>
            </patient>
          </patientInfo>
          <staffInfo/>
        </dept>
      </hospital>
    )");
    ASSERT_TRUE(doc.ok());
    doc_ = std::move(doc).value();
    options_.bindings = {{"wardNo", "3"}};
  }

  NodeSet Run(const std::string& query) {
    auto result = engine_->Execute("nurse", doc_, query, options_);
    EXPECT_TRUE(result.ok()) << query << ": " << result.status();
    return result.ok() ? result->nodes : NodeSet{};
  }

  std::unique_ptr<SecureQueryEngine> engine_;
  XmlTree doc_;
  ExecuteOptions options_;
};

TEST_F(AttackTest, HiddenLabelsInStepsReturnNothing) {
  for (const char* probe :
       {"//clinicalTrial", "//trial", "//regular", "//test",
        "dept/clinicalTrial/patientInfo", "//clinicalTrial//name"}) {
    EXPECT_TRUE(Run(probe).empty()) << probe;
  }
}

TEST_F(AttackTest, HiddenLabelsInQualifiersBehaveAsViewSemantics) {
  // [//trial] is false everywhere on the view (no trial elements exist
  // there) — so the positive probe selects nothing and the negated probe
  // selects everything, for trial and non-trial patients alike.
  EXPECT_TRUE(Run("//patient[//trial]").empty());
  EXPECT_EQ(Run("//patient[not(//trial)]").size(), 2u);
  EXPECT_EQ(Run("//patient[not(//clinicalTrial)]/name").size(), 2u);
  // Both answers are independent of actual trial membership: carol (in a
  // trial) and dave (not) are indistinguishable.
}

TEST_F(AttackTest, TextOfHiddenElementsNotComparable) {
  // The test element's content must not be probeable through any path.
  EXPECT_TRUE(Run(".[//test = \"secret-trial-data\"]").empty());
  EXPECT_TRUE(Run("//dept[clinicalTrial/test = \"secret-trial-data\"]")
                  .empty());
}

TEST_F(AttackTest, CountingAttackOnDescendantVsChild) {
  // Example 1.1 generalized: for every pair (child-axis path,
  // descendant-axis variant) over exposed labels, the answers coincide —
  // the view has no hidden intermediate levels to diff against.
  const std::pair<const char*, const char*> pairs[] = {
      {"dept/patientInfo/patient", "dept//patientInfo/patient"},
      {"//dept/patientInfo/patient/name", "//dept//patientInfo/patient/name"},
      {"//patient/treatment", "//patient//treatment"},
  };
  for (const auto& [child_axis, desc_axis] : pairs) {
    EXPECT_EQ(Run(child_axis), Run(desc_axis))
        << child_axis << " vs " << desc_axis;
  }
}

TEST_F(AttackTest, DummiesExposeStructureButNotLabels) {
  // The user can count treatment alternatives through the dummies but
  // cannot tell which dummy is 'trial': both carry only a bill (dummy2
  // additionally medication), and their document labels never appear in
  // any answer.
  NodeSet d1 = Run("//treatment/dummy1");
  NodeSet d2 = Run("//treatment/dummy2");
  EXPECT_EQ(d1.size(), 1u);
  EXPECT_EQ(d2.size(), 1u);
  // Serialized answers relabel hidden nodes by their dummy names.
  auto answer = engine_->ExtractResults("nurse", doc_, Run("//treatment"),
                                        options_.bindings);
  ASSERT_TRUE(answer.ok());
  std::string xml = ToXmlString(*answer);
  EXPECT_EQ(xml.find("trial"), std::string::npos) << xml;
  EXPECT_EQ(xml.find("regular"), std::string::npos) << xml;
}

TEST_F(AttackTest, OtherWardInvisibleEvenByExistence) {
  // A ward-5 nurse gets an empty hospital; existence probes about other
  // wards' data return nothing rather than failing differently.
  ExecuteOptions other;
  other.bindings = {{"wardNo", "5"}};
  for (const char* probe : {"dept", "//patient", ".[//patient]",
                            "//bill", "//name"}) {
    auto result = engine_->Execute("nurse", doc_, probe, other);
    ASSERT_TRUE(result.ok()) << probe;
    EXPECT_TRUE(result->nodes.empty()) << probe;
  }
}

TEST_F(AttackTest, EveryProbeReturnsOnlyAccessibleOrStructuralNodes) {
  auto spec = MakeNurseSpec(engine_->dtd());
  ASSERT_TRUE(spec.ok());
  AccessSpec bound = spec->Bind(options_.bindings);
  auto labeling = ComputeAccessibility(doc_, bound);
  ASSERT_TRUE(labeling.ok());

  for (const char* probe :
       {"//*", "//*/*", "//*[*]", "//*[not(*)]", "*//*",
        "//dummy1/* | //dummy2/*", "//*[bill]",
        "//*[wardNo = \"3\"]"}) {
    SCOPED_TRACE(probe);
    for (NodeId n : Run(probe)) {
      std::string_view label = doc_.label(n);
      bool structural = label == "trial" || label == "regular";
      EXPECT_TRUE(labeling->accessible[n] || structural)
          << "leak: node #" << n << " <" << label << ">";
    }
  }
}

TEST_F(AttackTest, ViewAgreementUnderAdversarialProbes) {
  // Ground truth: whatever the probe, answers equal evaluation over the
  // materialized view (origins compared).
  auto view = engine_->View("nurse");
  ASSERT_TRUE(view.ok());
  MaterializeOptions m;
  m.bindings = options_.bindings;
  auto spec = MakeNurseSpec(engine_->dtd());
  ASSERT_TRUE(spec.ok());
  auto tv = MaterializeView(doc_, **view, *spec, m);
  ASSERT_TRUE(tv.ok());

  for (const char* probe :
       {"//patient[treatment/dummy1]", "//patient[treatment/dummy2]/name",
        "//*[dummy1 or dummy2]", "//patient[bill]",  // bill not a child
        "//patient[treatment/*/bill = \"900\"]/name"}) {
    SCOPED_TRACE(probe);
    NodeSet via_engine = Run(probe);
    auto q = ParseXPath(probe);
    ASSERT_TRUE(q.ok());
    auto on_view = EvaluateAtRoot(*tv, *q);
    ASSERT_TRUE(on_view.ok());
    std::vector<NodeId> expected;
    for (NodeId n : *on_view) expected.push_back(tv->origin(n));
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(via_engine, expected);
  }
}

}  // namespace
}  // namespace secview
