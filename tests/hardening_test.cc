#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "dtd/dtd_parser.h"
#include "engine/engine.h"
#include "engine/worker_pool.h"
#include "obs/audit.h"
#include "workload/hospital.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace secview {
namespace {

/// Hostile-input hardening and defensive-serving harness
/// (docs/robustness.md): every input below is adversarial — deeply
/// nested documents, billion-laughs-shaped DTDs, giant XPath
/// expressions, queries engineered to run forever — and every assertion
/// is that the library answers with a clean non-OK Status instead of a
/// crash, a hang, or unbounded allocation. Run under ASan/TSan via
/// scripts/check.sh.

// ---------------------------------------------------------------------------
// XML parser limits

TEST(HostileXmlTest, NestingBeyondDefaultDepthIsRejected) {
  constexpr int kDepth = 20'000;  // > the 16384 default
  std::string xml;
  xml.reserve(kDepth * 8);
  for (int i = 0; i < kDepth; ++i) xml += "<a>";
  for (int i = 0; i < kDepth; ++i) xml += "</a>";
  auto result = ParseXml(xml);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange)
      << result.status();
}

TEST(HostileXmlTest, CustomDepthLimitIsEnforcedExactly) {
  XmlParseOptions options;
  options.max_depth = 16;
  std::string deep, ok;
  for (int i = 0; i < 32; ++i) deep += "<a>";
  for (int i = 0; i < 32; ++i) deep += "</a>";
  for (int i = 0; i < 8; ++i) ok += "<a>";
  for (int i = 0; i < 8; ++i) ok += "</a>";
  EXPECT_EQ(ParseXml(deep, options).status().code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(ParseXml(ok, options).ok());
  // 0 = unlimited restores the old behavior.
  options.max_depth = 0;
  EXPECT_TRUE(ParseXml(deep, options).ok());
}

TEST(HostileXmlTest, GiantNamesAttributesAndTextAreRejected) {
  std::string giant_name = "<" + std::string(8192, 'a') + "/>";
  EXPECT_EQ(ParseXml(giant_name).status().code(), StatusCode::kOutOfRange);

  std::string many_attrs = "<a";
  for (int i = 0; i < 2000; ++i) {  // > the 1024 default
    many_attrs += " x" + std::to_string(i) + "=\"1\"";
  }
  many_attrs += "/>";
  EXPECT_EQ(ParseXml(many_attrs).status().code(), StatusCode::kOutOfRange);

  XmlParseOptions tiny_text;
  tiny_text.max_text_bytes = 16;
  EXPECT_EQ(
      ParseXml("<a>" + std::string(64, 't') + "</a>", tiny_text).status().code(),
      StatusCode::kOutOfRange);
  XmlParseOptions tiny_attr;
  tiny_attr.max_attr_value_bytes = 16;
  EXPECT_EQ(ParseXml("<a x=\"" + std::string(64, 'v') + "\"/>", tiny_attr)
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST(HostileXmlTest, TruncationsOfHostileInputStayClean) {
  std::string xml = "<a x=\"1\">";
  for (int i = 0; i < 40; ++i) xml += "<b y=\"&amp;\"><![CDATA[z]]>";
  for (size_t len = 0; len <= xml.size(); ++len) {
    auto result = ParseXml(xml.substr(0, len));
    (void)result;  // must not crash, hang, or leak (ASan-checked)
  }
}

// ---------------------------------------------------------------------------
// DTD parser limits

TEST(HostileDtdTest, BillionLaughsShapedEntityFloodIsRejected) {
  // The classic shape: each entity references the previous one many
  // times. The normalizer never inline-expands references, so the
  // declaration-count limit is what bounds the damage.
  std::string dtd = "<!ELEMENT a (#PCDATA)>";
  for (int i = 0; i < 200; ++i) {
    dtd += "<!ENTITY e" + std::to_string(i) + " \"&e" + std::to_string(i - 1) +
           ";&e" + std::to_string(i - 1) + ";\">";
  }
  DtdParseLimits limits;
  limits.max_decls = 100;
  auto result = ParseDtdText(dtd, limits);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange)
      << result.status();
  // Under the default (generous) limit the same text parses fine — the
  // entities are skipped, not expanded.
  EXPECT_TRUE(ParseDtdText(dtd).ok());
}

TEST(HostileDtdTest, OversizedInputIsRejectedUpfront) {
  std::string giant(9 << 20, 'x');  // > the 8 MB default
  EXPECT_EQ(ParseDtdText(giant).status().code(), StatusCode::kOutOfRange);
}

TEST(HostileDtdTest, DeeplyNestedContentModelIsRejected) {
  std::string dtd = "<!ELEMENT a ";
  for (int i = 0; i < 200; ++i) dtd += "(";  // > the 128 default
  dtd += "b";
  for (int i = 0; i < 200; ++i) dtd += ")";
  dtd += ">";
  auto result = ParseDtdText(dtd);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange)
      << result.status();
}

TEST(HostileDtdTest, RegexNodeFloodIsRejected) {
  std::string dtd = "<!ELEMENT a (b";
  for (int i = 0; i < 64; ++i) dtd += ", b";
  dtd += ")><!ELEMENT b (#PCDATA)>";
  DtdParseLimits limits;
  limits.max_regex_nodes = 16;
  EXPECT_EQ(ParseDtdText(dtd, limits).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(ParseDtdText(dtd).ok());
}

// ---------------------------------------------------------------------------
// XPath parser limits

TEST(HostileXPathTest, DeepNestingIsRejectedNotStackOverflowed) {
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += "(";  // > the 256 default
  deep += "a";
  for (int i = 0; i < 2000; ++i) deep += ")";
  auto result = ParseXPath(deep);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange)
      << result.status();

  std::string quals = "a";
  for (int i = 0; i < 2000; ++i) quals += "[a";
  for (int i = 0; i < 2000; ++i) quals += "]";
  EXPECT_EQ(ParseXPath(quals).status().code(), StatusCode::kOutOfRange);
}

TEST(HostileXPathTest, GiantPredicateIsRejectedByTokenBudget) {
  std::string query = "a[b = \"1\"";
  for (int i = 0; i < 200; ++i) query += " and b = \"1\"";
  query += "]";
  XPathParseLimits limits;
  limits.max_tokens = 64;
  EXPECT_EQ(ParseXPath(query, limits).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(ParseXPath(query).ok());
}

TEST(HostileXPathTest, OversizedInputIsRejectedUpfront) {
  std::string giant(2 << 20, 'a');  // > the 1 MB default
  EXPECT_EQ(ParseXPath(giant).status().code(), StatusCode::kOutOfRange);
}

TEST(HostileXPathTest, TruncationsUnderLimitsStayClean) {
  const std::string valid =
      "//dept[*/patient/wardNo = $w]/(a | b)[not(@x = \"1\")]//bill";
  XPathParseLimits limits;
  limits.max_depth = 8;
  limits.max_tokens = 32;
  for (size_t len = 0; len <= valid.size(); ++len) {
    auto result = ParseXPath(valid.substr(0, len), limits);
    (void)result;  // clean Status either way
  }
}

// ---------------------------------------------------------------------------
// Evaluator budgets (deadline / node visits / cancellation)

/// A chain document deep enough that `//a//a//a` visits tens of
/// millions of nodes — effectively unbounded work at test timescales.
class EvaluatorBudgetTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    constexpr int kDepth = 5'000;
    std::string xml;
    xml.reserve(kDepth * 8);
    for (int i = 0; i < kDepth; ++i) xml += "<a>";
    for (int i = 0; i < kDepth; ++i) xml += "</a>";
    auto doc = ParseXml(xml);
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = new XmlTree(std::move(doc).value());
    // Nested descendant *qualifiers* defeat the evaluator's
    // covered-subtree dedup (each qualifier evaluates from a single
    // context node), making the work cubic in the chain depth.
    auto query = ParseXPath("//a[a//a[a//a]]");
    ASSERT_TRUE(query.ok());
    query_ = new PathPtr(std::move(query).value());
  }
  static void TearDownTestSuite() {
    delete doc_;
    delete query_;
    doc_ = nullptr;
    query_ = nullptr;
  }

  static XmlTree* doc_;
  static PathPtr* query_;
};

XmlTree* EvaluatorBudgetTest::doc_ = nullptr;
PathPtr* EvaluatorBudgetTest::query_ = nullptr;

TEST_F(EvaluatorBudgetTest, DeadlineTripsWithinSmallMultipleOfDeadline) {
  constexpr uint64_t kDeadlineMs = 50;
  BudgetLimits limits;
  limits.deadline_ms = kDeadlineMs;
  QueryBudget budget(limits);
  XPathEvaluator evaluator(*doc_);
  evaluator.set_budget(&budget);

  auto start = std::chrono::steady_clock::now();
  auto result = evaluator.Evaluate(*query_, doc_->root());
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();

  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status();
  // The evaluator checks the clock every kNodeStride visits, so the
  // overshoot is microseconds; the bound below is a scheduler-safe 5x.
  EXPECT_LT(elapsed_ms, static_cast<int64_t>(5 * kDeadlineMs))
      << "took " << elapsed_ms << " ms against a " << kDeadlineMs
      << " ms deadline";
}

TEST_F(EvaluatorBudgetTest, NodeBudgetTripsResourceExhausted) {
  BudgetLimits limits;
  limits.max_nodes = 10'000;
  QueryBudget budget(limits);
  XPathEvaluator evaluator(*doc_);
  evaluator.set_budget(&budget);
  auto result = evaluator.Evaluate(*query_, doc_->root());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();
  EXPECT_GT(evaluator.counters().budget_checks, 0u);
}

TEST_F(EvaluatorBudgetTest, SmallNodeBudgetTripsDeterministically) {
  // Budgets below one stride must still trip: the final sub-stride tail
  // is charged when evaluation finishes.
  BudgetLimits limits;
  limits.max_nodes = 10;
  QueryBudget budget(limits);
  XPathEvaluator evaluator(*doc_);
  evaluator.set_budget(&budget);
  std::string chain = "a";
  for (int i = 0; i < 19; ++i) chain += "/a";  // ~20 visits, far below one stride
  auto small_query = ParseXPath(chain);
  ASSERT_TRUE(small_query.ok());
  auto result = evaluator.Evaluate(*small_query, doc_->root());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();
}

TEST_F(EvaluatorBudgetTest, CancelledTokenUnwindsWithCancelled) {
  CancelSource source;
  CancelToken token(source);
  source.CancelAll();
  QueryBudget budget(BudgetLimits{}, token);
  ASSERT_TRUE(budget.active());
  XPathEvaluator evaluator(*doc_);
  evaluator.set_budget(&budget);
  auto result = evaluator.Evaluate(*query_, doc_->root());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status();
}

TEST_F(EvaluatorBudgetTest, BudgetChecksFlushIntoMetrics) {
  obs::MetricsRegistry metrics;
  BudgetLimits limits;
  limits.max_nodes = 10'000;
  QueryBudget budget(limits);
  XPathEvaluator evaluator(*doc_);
  evaluator.set_metrics(&metrics);
  evaluator.set_budget(&budget);
  (void)evaluator.Evaluate(*query_, doc_->root());
  EXPECT_GT(metrics.GetCounter("xpath.budget_checks").value(), 0u);
}

// ---------------------------------------------------------------------------
// Engine budgets, audit outcomes, metrics

/// Thread-safe in-memory audit sink for outcome assertions.
class CaptureSink : public obs::AuditSink {
 public:
  void Record(const obs::AuditEvent& event) override {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
  }
  std::vector<obs::AuditEvent> events() {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

 private:
  std::mutex mu_;
  std::vector<obs::AuditEvent> events_;
};

constexpr char kNursePolicy[] = R"(
  ann(hospital, dept) = [*/patient/wardNo = $wardNo]
  ann(dept, clinicalTrial) = N
  ann(clinicalTrial, patientInfo) = Y
  ann(treatment, trial) = N
  ann(treatment, regular) = N
  ann(trial, bill) = Y
  ann(regular, bill) = Y
  ann(regular, medication) = Y
)";

/// A hospital document with thousands of departments, so one rewritten
/// query visits close to a million nodes — far more than any budget or
/// millisecond deadline the tests below grant it.
class EngineBudgetTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    constexpr int kDepts = 20'000;
    std::string xml = "<hospital>";
    for (int i = 0; i < kDepts; ++i) {
      xml +=
          "<dept><clinicalTrial><patientInfo/><test>t</test></clinicalTrial>"
          "<patientInfo><patient><name>n</name><wardNo>3</wardNo>"
          "<treatment><regular><bill>1</bill><medication>m</medication>"
          "</regular></treatment></patient></patientInfo>"
          "<staffInfo/></dept>";
    }
    xml += "</hospital>";
    auto doc = ParseXml(xml);
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = new XmlTree(std::move(doc).value());
  }
  static void TearDownTestSuite() {
    delete doc_;
    doc_ = nullptr;
  }

  void SetUp() override {
    auto engine = SecureQueryEngine::Create(MakeHospitalDtd());
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(engine).value();
    ASSERT_TRUE(engine_->RegisterPolicy("nurse", kNursePolicy).ok());
  }

  ExecuteOptions BoundOptions() {
    ExecuteOptions options;
    options.bindings = {{"wardNo", "3"}};
    return options;
  }

  static constexpr char kHeavyQuery[] = "//dept//patient//bill";

  static XmlTree* doc_;
  std::unique_ptr<SecureQueryEngine> engine_;
};

XmlTree* EngineBudgetTest::doc_ = nullptr;

TEST_F(EngineBudgetTest, NodeBudgetRejectsWithResourceExhausted) {
  CaptureSink sink;
  ExecuteOptions options = BoundOptions();
  options.limits.max_nodes = 1'000;
  options.audit = &sink;
  auto result = engine_->Execute("nurse", *doc_, kHeavyQuery, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();
  EXPECT_EQ(engine_->metrics().GetCounter("engine.rejected.budget").value(),
            1u);
  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_EQ(sink.events()[0].outcome, "timeout");
}

TEST_F(EngineBudgetTest, DeadlineRejectsWithDeadlineExceeded) {
  CaptureSink sink;
  ExecuteOptions options = BoundOptions();
  options.limits.deadline_ms = 1;
  options.audit = &sink;
  auto result = engine_->Execute("nurse", *doc_, kHeavyQuery, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status();
  EXPECT_EQ(engine_->metrics().GetCounter("engine.rejected.deadline").value(),
            1u);
  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_EQ(sink.events()[0].outcome, "timeout");
}

TEST_F(EngineBudgetTest, MemoryBudgetBoundsPreparationDp) {
  ExecuteOptions options = BoundOptions();
  options.limits.max_memory = 1;  // one DP cell, then trip
  auto result = engine_->Execute("nurse", *doc_, kHeavyQuery, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();
}

TEST_F(EngineBudgetTest, CancelledTokenRejectsWithCancelled) {
  CaptureSink sink;
  CancelSource source;
  CancelToken token(source);
  source.CancelAll();
  ExecuteOptions options = BoundOptions();
  options.cancel = token;
  options.audit = &sink;
  auto result = engine_->Execute("nurse", *doc_, kHeavyQuery, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status();
  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_EQ(sink.events()[0].outcome, "shed");
}

TEST_F(EngineBudgetTest, UnlimitedBudgetStillAnswers) {
  // All-zero limits must behave exactly like no limits at all.
  ExecuteOptions options = BoundOptions();
  auto baseline = engine_->Execute("nurse", *doc_, "//patient/name", options);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  options.limits = BudgetLimits{};
  auto limited = engine_->Execute("nurse", *doc_, "//patient/name", options);
  ASSERT_TRUE(limited.ok()) << limited.status();
  EXPECT_EQ(baseline->nodes, limited->nodes);
}

TEST_F(EngineBudgetTest, ParseLimitsRejectHostileQueryText) {
  ExecuteOptions options = BoundOptions();
  options.parse_limits.max_depth = 4;
  std::string deep = "//dept";
  for (int i = 0; i < 16; ++i) deep += "[patientInfo";
  for (int i = 0; i < 16; ++i) deep += "]";
  auto result = engine_->Execute("nurse", *doc_, deep, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange)
      << result.status();
}

// ---------------------------------------------------------------------------
// Worker-pool shedding, queued deadlines, CancelAll

TEST_F(EngineBudgetTest, PoolShedsDeterministicallyBeyondQueueCap) {
  QueryWorkerPool::Options pool_options;
  pool_options.threads = 1;
  pool_options.queue_cap = 1;
  QueryWorkerPool pool(*engine_, pool_options);

  std::vector<std::string> queries(6, "//patient/name");
  auto results =
      pool.ExecuteBatch("nurse", *doc_, queries, BoundOptions());
  ASSERT_EQ(results.size(), queries.size());
  // The whole batch is enqueued under one lock hold against an empty
  // queue of cap 1: exactly the first query runs, the rest shed.
  EXPECT_TRUE(results[0].ok()) << results[0].status();
  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_FALSE(results[i].ok()) << i;
    EXPECT_TRUE(results[i].status().IsResourceExhausted())
        << results[i].status();
  }
  EXPECT_EQ(engine_->metrics().GetCounter("engine.pool.shed").value(), 5u);
}

TEST_F(EngineBudgetTest, PoolShedRecordsAuditEvents) {
  CaptureSink sink;
  QueryWorkerPool::Options pool_options;
  pool_options.threads = 1;
  pool_options.queue_cap = 1;
  QueryWorkerPool pool(*engine_, pool_options);
  ExecuteOptions options = BoundOptions();
  options.audit = &sink;
  std::vector<std::string> queries(3, "//patient/name");
  pool.ExecuteBatch("nurse", *doc_, queries, options);
  size_t shed_events = 0;
  for (const obs::AuditEvent& event : sink.events()) {
    if (event.outcome == "timeout") ++shed_events;
  }
  EXPECT_EQ(shed_events, 2u);  // shed = ResourceExhausted = "timeout"
}

TEST_F(EngineBudgetTest, PoolDeadlineCoversQueueWait) {
  QueryWorkerPool::Options pool_options;
  pool_options.threads = 1;
  QueryWorkerPool pool(*engine_, pool_options);
  ExecuteOptions options = BoundOptions();
  options.limits.deadline_ms = 1;
  std::vector<std::string> queries(2, kHeavyQuery);
  auto results = pool.ExecuteBatch("nurse", *doc_, queries, options);
  ASSERT_EQ(results.size(), 2u);
  // The first trips inside evaluation; the second either expired while
  // queued behind it or trips the same way. Both are DeadlineExceeded.
  for (const auto& r : results) {
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status();
  }
  EXPECT_GE(engine_->metrics().GetCounter("engine.rejected.deadline").value(),
            2u);
}

TEST_F(EngineBudgetTest, CancelAllAbortsInFlightBatchOnly) {
  QueryWorkerPool::Options pool_options;
  pool_options.threads = 1;
  QueryWorkerPool pool(*engine_, pool_options);
  std::vector<std::string> queries(8, kHeavyQuery);

  std::vector<Result<ExecuteResult>> results;
  std::thread submitter([&] {
    results = pool.ExecuteBatch("nurse", *doc_, queries, BoundOptions());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  pool.CancelAll();
  submitter.join();

  ASSERT_EQ(results.size(), queries.size());
  for (const auto& r : results) {
    // Every slot resolves cleanly: answered before the cancel, or
    // cancelled (queued tasks when dequeued, the running execution at
    // its next budget checkpoint).
    EXPECT_TRUE(r.ok() || r.status().IsCancelled()) << r.status();
  }

  // Batches submitted after CancelAll run clean (generation counting:
  // only tokens snapshotted before the bump are cancelled).
  auto after = pool.ExecuteBatch("nurse", *doc_,
                                 {std::string("//patient/name")},
                                 BoundOptions());
  ASSERT_EQ(after.size(), 1u);
  EXPECT_TRUE(after[0].ok()) << after[0].status();
}

}  // namespace
}  // namespace secview
