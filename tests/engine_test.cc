#include <algorithm>

#include <gtest/gtest.h>

#include "common/alloc_tracker.h"
#include "engine/engine.h"
#include "obs/policy_stats.h"
#include "obs/trace_store.h"
#include "workload/hospital.h"
#include "workload/synthetic.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/printer.h"
#include "xpath/profiler.h"

namespace secview {
namespace {

constexpr char kNursePolicy[] = R"(
  ann(hospital, dept) = [*/patient/wardNo = $wardNo]
  ann(dept, clinicalTrial) = N
  ann(clinicalTrial, patientInfo) = Y
  ann(treatment, trial) = N
  ann(treatment, regular) = N
  ann(trial, bill) = Y
  ann(regular, bill) = Y
  ann(regular, medication) = Y
)";

constexpr char kResearcherPolicy[] = R"(
  # Researchers see clinical-trial data of every ward, nothing else.
  ann(dept, patientInfo) = N
  ann(dept, staffInfo) = N
)";

constexpr char kDoc[] = R"(
  <hospital>
    <dept>
      <clinicalTrial>
        <patientInfo>
          <patient><name>carol</name><wardNo>3</wardNo>
            <treatment><trial><bill>900</bill></trial></treatment>
          </patient>
        </patientInfo>
        <test>blood</test>
      </clinicalTrial>
      <patientInfo>
        <patient><name>dave</name><wardNo>3</wardNo>
          <treatment><regular><bill>120</bill><medication>m</medication></regular></treatment>
        </patient>
      </patientInfo>
      <staffInfo><staff><nurse>sue</nurse></staff></staffInfo>
    </dept>
  </hospital>
)";

class EngineTest : public testing::Test {
 protected:
  void SetUp() override {
    auto engine = SecureQueryEngine::Create(MakeHospitalDtd());
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(engine).value();
    ASSERT_TRUE(engine_->RegisterPolicy("nurse", kNursePolicy).ok());
    auto doc = ParseXml(kDoc);
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = std::move(doc).value();
  }

  std::unique_ptr<SecureQueryEngine> engine_;
  XmlTree doc_;
};

TEST_F(EngineTest, RegisterAndListPolicies) {
  EXPECT_EQ(engine_->PolicyNames(), std::vector<std::string>{"nurse"});
  ASSERT_TRUE(engine_->RegisterPolicy("researcher", kResearcherPolicy).ok());
  EXPECT_EQ(engine_->PolicyNames(),
            (std::vector<std::string>{"nurse", "researcher"}));
}

TEST_F(EngineTest, RejectsDuplicateAndBadPolicies) {
  EXPECT_FALSE(engine_->RegisterPolicy("nurse", kNursePolicy).ok());
  EXPECT_FALSE(engine_->RegisterPolicy("", kNursePolicy).ok());
  EXPECT_FALSE(engine_->RegisterPolicy("bad", "ann(zzz, qqq) = N").ok());
}

TEST_F(EngineTest, PublishedViewDtdHidesConfidentialLabels) {
  auto dtd_text = engine_->PublishedViewDtd("nurse");
  ASSERT_TRUE(dtd_text.ok());
  EXPECT_EQ(dtd_text->find("clinicalTrial"), std::string::npos);
  EXPECT_NE(dtd_text->find("dummy"), std::string::npos);
  EXPECT_FALSE(engine_->PublishedViewDtd("ghost").ok());
}

TEST_F(EngineTest, ExecuteEnforcesPolicy) {
  ExecuteOptions options;
  options.bindings = {{"wardNo", "3"}};
  auto result = engine_->Execute("nurse", doc_, "//patient/name", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->nodes.size(), 2u);  // carol + dave
  EXPECT_GT(result->work(), 0u);

  options.bindings = {{"wardNo", "7"}};
  auto other_ward = engine_->Execute("nurse", doc_, "//patient/name",
                                     options);
  ASSERT_TRUE(other_ward.ok());
  EXPECT_TRUE(other_ward->nodes.empty());
}

TEST_F(EngineTest, ExecuteReportsStructuredStats) {
  ExecuteOptions options;
  options.bindings = {{"wardNo", "3"}};
  auto result = engine_->Execute("nurse", doc_, "//patient/name", options);
  ASSERT_TRUE(result.ok()) << result.status();
  const ExecuteStats& stats = result->stats;
  EXPECT_GT(stats.nodes_touched, 0u);
  EXPECT_EQ(stats.nodes_touched, result->work());
  EXPECT_EQ(stats.result_count, result->nodes.size());
  EXPECT_FALSE(stats.cache_hit);  // first time this query is prepared
  EXPECT_EQ(stats.unfold_depth, 0);  // hospital DTD is non-recursive
  EXPECT_EQ(stats.ast_size_rewritten, PathSize(result->rewritten));
  EXPECT_EQ(stats.ast_size_evaluated, PathSize(result->evaluated));
  EXPECT_GT(stats.predicate_evals, 0u);  // the $wardNo qualifier ran

  auto again = engine_->Execute("nurse", doc_, "//patient/name", options);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->stats.cache_hit);
}

TEST_F(EngineTest, CompiledAndAstPathsReturnIdenticalResults) {
  ExecuteOptions compiled;
  compiled.bindings = {{"wardNo", "3"}};
  ExecuteOptions ast = compiled;
  ast.use_compiled = false;
  for (const char* q : {"//patient/name", "//bill", "//patient//bill",
                        "//patient[wardNo]/name", "//bill | //medication"}) {
    for (bool optimize : {true, false}) {
      compiled.optimize = optimize;
      ast.optimize = optimize;
      auto with_plan = engine_->Execute("nurse", doc_, q, compiled);
      auto with_ast = engine_->Execute("nurse", doc_, q, ast);
      ASSERT_TRUE(with_plan.ok()) << q << ": " << with_plan.status();
      ASSERT_TRUE(with_ast.ok()) << q << ": " << with_ast.status();
      EXPECT_EQ(with_plan->nodes, with_ast->nodes) << q;
      EXPECT_EQ(with_plan->stats.nodes_touched, with_ast->stats.nodes_touched)
          << q;
      EXPECT_TRUE(with_plan->stats.compiled) << q;
      EXPECT_FALSE(with_ast->stats.compiled) << q;
    }
  }
}

TEST_F(EngineTest, PlanCompilesOncePerEntryAndMetricsTrackResidency) {
  ExecuteOptions options;
  options.bindings = {{"wardNo", "3"}};
  auto& metrics = engine_->metrics();
  ASSERT_TRUE(engine_->Execute("nurse", doc_, "//bill", options).ok());
  EXPECT_EQ(metrics.GetCounter("engine.plan.compiles").value(), 1u);
  EXPECT_EQ(metrics.GetCounter("eval.compiled_queries").value(), 1u);
  EXPECT_EQ(metrics.GetGauge("engine.plan.cached").value(), 1);
  EXPECT_GT(metrics.GetGauge("engine.plan.cache_bytes").value(), 0);
  EXPECT_GT(metrics.GetGauge("engine.cache.bytes").value(), 0);

  // A cache hit reuses the resident plan without recompiling.
  ASSERT_TRUE(engine_->Execute("nurse", doc_, "//bill", options).ok());
  EXPECT_EQ(metrics.GetCounter("engine.plan.compiles").value(), 1u);
  EXPECT_EQ(metrics.GetCounter("eval.compiled_queries").value(), 2u);
  EXPECT_EQ(metrics.GetGauge("engine.plan.cached").value(), 1);

  // Rewrite() primes an entry without a plan; the first compiled
  // execution lazily attaches one to it.
  ASSERT_TRUE(engine_->Rewrite("nurse", "//medication", true).ok());
  EXPECT_EQ(metrics.GetCounter("engine.plan.compiles").value(), 1u);
  ASSERT_TRUE(engine_->Execute("nurse", doc_, "//medication", options).ok());
  EXPECT_EQ(metrics.GetCounter("engine.plan.compiles").value(), 2u);
  EXPECT_EQ(metrics.GetGauge("engine.plan.cached").value(), 2);

  // An AST-path execution neither compiles nor runs the VM.
  ExecuteOptions ast = options;
  ast.use_compiled = false;
  ASSERT_TRUE(engine_->Execute("nurse", doc_, "//wardNo", ast).ok());
  EXPECT_EQ(metrics.GetCounter("engine.plan.compiles").value(), 2u);
  EXPECT_EQ(metrics.GetCounter("eval.compiled_queries").value(), 3u);
}

TEST_F(EngineTest, ProfileOptionYieldsStepTreeWithExactAttribution) {
  ExecuteOptions options;
  options.bindings = {{"wardNo", "3"}};
  auto plain = engine_->Execute("nurse", doc_, "//patient/name", options);
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_EQ(plain->profile, nullptr);
  EXPECT_TRUE(plain->stats.hot_step.empty());

  options.profile = true;
  auto profiled = engine_->Execute("nurse", doc_, "//patient/name", options);
  ASSERT_TRUE(profiled.ok()) << profiled.status();
  // Profiling observes the execution without changing it.
  EXPECT_EQ(profiled->nodes, plain->nodes);
  ASSERT_NE(profiled->profile, nullptr);
  // Per-step exclusive costs sum to the aggregate evaluator counters.
  EvalCounters totals = ProfileTotals(*profiled->profile);
  EXPECT_EQ(totals.nodes_touched, profiled->stats.nodes_touched);
  EXPECT_EQ(totals.predicate_evals, profiled->stats.predicate_evals);
  // The hottest step is named for slow-log / trace correlation.
  EXPECT_NE(profiled->stats.hot_step.find(" nodes="), std::string::npos)
      << profiled->stats.hot_step;
  // The flush fed per-axis instruments in the engine registry.
  obs::MetricsRegistry& metrics = engine_->metrics();
  EXPECT_GT(metrics.GetCounter("eval.axis.descendant.nodes").value() +
                metrics.GetCounter("eval.axis.child.nodes").value(),
            0u);
}

TEST_F(EngineTest, AttachedPlanProfileTableImpliesProfiling) {
  obs::PlanProfileTable table;
  engine_->AttachPlanProfiles(&table);
  ExecuteOptions options;
  options.bindings = {{"wardNo", "3"}};
  ASSERT_TRUE(engine_->Execute("nurse", doc_, "//bill", options).ok());
  ASSERT_TRUE(engine_->Execute("nurse", doc_, "//patient/name", options).ok());
  EXPECT_EQ(table.queries(), 2u);
  EXPECT_GT(table.steps(), 0u);
  // Exclusive rows are additive: the table total matches the registry's
  // aggregate node-touch counter.
  uint64_t table_nodes = 0;
  for (const obs::PlanStepRecord& row : table.Snapshot()) {
    table_nodes += row.nodes_touched;
  }
  EXPECT_EQ(table_nodes,
            engine_->metrics().GetCounter("eval.nodes_touched").value());
}

TEST_F(EngineTest, MetricsTrackCacheHitsAndQueryCounts) {
  ExecuteOptions options;
  options.bindings = {{"wardNo", "3"}};
  // Each Execute prepares the unoptimized (provenance) and optimized
  // entries, so a cold query costs two misses and a warm one two hits.
  ASSERT_TRUE(engine_->Execute("nurse", doc_, "//bill", options).ok());
  obs::MetricsRegistry& metrics = engine_->metrics();
  EXPECT_EQ(metrics.GetCounter("engine.cache.misses").value(), 2u);
  EXPECT_EQ(metrics.GetCounter("engine.cache.hits").value(), 0u);

  ASSERT_TRUE(engine_->Execute("nurse", doc_, "//bill", options).ok());
  EXPECT_EQ(metrics.GetCounter("engine.cache.misses").value(), 2u);
  EXPECT_EQ(metrics.GetCounter("engine.cache.hits").value(), 2u);

  EXPECT_EQ(metrics.GetCounter("engine.queries").value(), 2u);
  EXPECT_EQ(metrics.GetCounter("policy.nurse.queries").value(), 2u);
  EXPECT_GT(metrics.GetCounter("eval.nodes_touched").value(), 0u);
  EXPECT_GT(metrics.GetCounter("rewrite.queries").value(), 0u);
  EXPECT_GT(metrics.GetCounter("optimize.queries").value(), 0u);
}

TEST_F(EngineTest, TraceRecordsPhaseSpans) {
  obs::Trace trace("test.query");
  ExecuteOptions options;
  options.bindings = {{"wardNo", "3"}};
  options.trace = &trace;
  ASSERT_TRUE(engine_->Execute("nurse", doc_, "//bill", options).ok());
  trace.Finish();

  const obs::Span& root = trace.root();
  const obs::Span* execute = root.FindSpan("execute");
  ASSERT_NE(execute, nullptr);
  for (const char* phase : {"parse", "rewrite", "optimize", "bind",
                            "evaluate"}) {
    EXPECT_NE(execute->FindSpan(phase), nullptr) << phase;
  }
  const std::string* cache = execute->FindAttr("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(*cache, "miss");
  const obs::Span* evaluate = execute->FindSpan("evaluate");
  EXPECT_NE(evaluate->FindAttr("nodes_touched"), nullptr);

  // The whole tree exports as valid JSON.
  auto parsed = obs::Json::Parse(trace.ToJsonString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST_F(EngineTest, ExecuteReportsAllocationStats) {
  if (!AllocTrackingAvailable()) GTEST_SKIP() << "tracker compiled out";
  ExecuteOptions options;
  options.bindings = {{"wardNo", "3"}};
  auto result = engine_->Execute("nurse", doc_, "//patient//bill", options);
  ASSERT_TRUE(result.ok()) << result.status();
  const ExecuteStats& stats = result->stats;
  EXPECT_GT(stats.alloc_bytes, 0u);
  EXPECT_GT(stats.alloc_count, 0u);
  // A cold query runs parse + rewrite; both phases allocate.
  EXPECT_GT(stats.parse_alloc_count, 0u);
  EXPECT_GT(stats.rewrite_alloc_count, 0u);
  EXPECT_GT(stats.evaluate_alloc_count, 0u);
  // Phase charges are a subset of the whole-query charge.
  EXPECT_LE(stats.parse_alloc_bytes + stats.rewrite_alloc_bytes +
                stats.optimize_alloc_bytes + stats.evaluate_alloc_bytes,
            stats.alloc_bytes);

  // A cache hit skips parse/rewrite: those phase charges drop to zero.
  auto again = engine_->Execute("nurse", doc_, "//patient//bill", options);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->stats.cache_hit);
  EXPECT_EQ(again->stats.parse_alloc_count, 0u);
  EXPECT_EQ(again->stats.rewrite_alloc_count, 0u);
  EXPECT_GT(again->stats.evaluate_alloc_count, 0u);

  // The registry saw the same activity.
  EXPECT_GT(engine_->metrics().GetCounter("alloc.evaluate.count").value(), 0u);
}

TEST_F(EngineTest, AttachedTraceStoreSamplesExecutions) {
  obs::RequestTraceStore::Options trace_options;
  trace_options.sample_every = 1;
  obs::RequestTraceStore store(trace_options);
  engine_->AttachTraceStore(&store);
  obs::PolicyStatsTable policy_stats;
  engine_->AttachPolicyStats(&policy_stats);

  ExecuteOptions options;
  options.bindings = {{"wardNo", "3"}};
  ASSERT_TRUE(engine_->Execute("nurse", doc_, "//bill", options).ok());
  auto denied = engine_->Execute("nurse", doc_, "//bill[", options);
  ASSERT_FALSE(denied.ok());

  std::vector<obs::RequestTraceStore::Entry> entries = store.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].outcome, obs::ServeOutcome::kDenied);  // newest first
  EXPECT_EQ(entries[1].outcome, obs::ServeOutcome::kOk);
  EXPECT_EQ(entries[1].policy, "nurse");
  EXPECT_EQ(entries[1].query, "//bill");
  // The engine's own span tree rides along: root "secview.request" with
  // the execute phases beneath it.
  const obs::Json* name = entries[1].spans.Find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->AsString(), "secview.request");
  EXPECT_NE(entries[1].spans.Dump(false).find("evaluate"), std::string::npos);
  if (AllocTrackingAvailable()) {
    // The root span carries the query's allocation charge.
    const obs::Json* attrs = entries[1].spans.Find("attrs");
    ASSERT_NE(attrs, nullptr);
    EXPECT_NE(attrs->Find("alloc_bytes"), nullptr);
  }

  std::vector<obs::PolicyStatsTable::PolicySnapshot> rows =
      policy_stats.Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].queries, 2u);
  EXPECT_EQ(rows[0].ok, 1u);
  EXPECT_EQ(rows[0].denied, 1u);
}

TEST_F(EngineTest, CallerTraceWinsOverAttachedStore) {
  obs::RequestTraceStore::Options trace_options;
  trace_options.sample_every = 1;
  obs::RequestTraceStore store(trace_options);
  engine_->AttachTraceStore(&store);

  obs::Trace mine("caller.trace");
  ExecuteOptions options;
  options.bindings = {{"wardNo", "3"}};
  options.trace = &mine;
  ASSERT_TRUE(engine_->Execute("nurse", doc_, "//bill", options).ok());
  // The caller's trace got the spans; the store did not hijack it.
  EXPECT_NE(mine.root().FindSpan("evaluate"), nullptr);
  EXPECT_TRUE(store.Snapshot().empty());
}

TEST(EngineOptimizeStatsTest, OptimizedExecutionTouchesFewerNodes) {
  // On a document big enough for evaluation cost to matter, the DTD-based
  // optimizer (paper Section 5) must strictly reduce the evaluator's
  // node-touch count for a descendant query over the nurse view.
  auto engine = SecureQueryEngine::Create(MakeHospitalDtd());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->RegisterPolicy("nurse", kNursePolicy).ok());
  auto doc = GenerateDocument(MakeHospitalDtd(),
                              HospitalGeneratorOptions(3, 200'000));
  ASSERT_TRUE(doc.ok()) << doc.status();

  ExecuteOptions optimized;
  optimized.bindings = {{"wardNo", "3"}};
  optimized.optimize = true;
  ExecuteOptions unoptimized = optimized;
  unoptimized.optimize = false;

  auto fast = (*engine)->Execute("nurse", *doc, "//patient//bill", optimized);
  auto slow = (*engine)->Execute("nurse", *doc, "//patient//bill",
                                 unoptimized);
  ASSERT_TRUE(fast.ok()) << fast.status();
  ASSERT_TRUE(slow.ok()) << slow.status();
  EXPECT_EQ(fast->nodes, slow->nodes);
  EXPECT_LT(fast->stats.nodes_touched, slow->stats.nodes_touched);
}

TEST_F(EngineTest, ExecuteRequiresBindings) {
  auto result = engine_->Execute("nurse", doc_, "//patient/name");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EngineTest, ExecuteRejectsForeignDocuments) {
  auto other = ParseXml("<library/>");
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(engine_->Execute("nurse", *other, "//x").ok());
}

TEST_F(EngineTest, ExecuteUnknownPolicyOrBadQuery) {
  EXPECT_EQ(engine_->Execute("ghost", doc_, "//x").status().code(),
            StatusCode::kNotFound);
  ExecuteOptions options;
  options.bindings = {{"wardNo", "3"}};
  EXPECT_FALSE(engine_->Execute("nurse", doc_, "//x[", options).ok());
}

TEST_F(EngineTest, OptimizeToggleAgrees) {
  ExecuteOptions with;
  with.bindings = {{"wardNo", "3"}};
  with.optimize = true;
  ExecuteOptions without = with;
  without.optimize = false;
  for (const char* q : {"//bill", "//patient[name]/wardNo", "//dummy2"}) {
    auto a = engine_->Execute("nurse", doc_, q, with);
    auto b = engine_->Execute("nurse", doc_, q, without);
    ASSERT_TRUE(a.ok()) << q;
    ASSERT_TRUE(b.ok()) << q;
    EXPECT_EQ(a->nodes, b->nodes) << q;
  }
}

TEST_F(EngineTest, RewriteIsCached) {
  auto first = engine_->Rewrite("nurse", "//patient//bill", true);
  auto second = engine_->Rewrite("nurse", "//patient//bill", true);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // same cached object
}

TEST_F(EngineTest, MultiplePoliciesSeeDifferentData) {
  ASSERT_TRUE(engine_->RegisterPolicy("researcher", kResearcherPolicy).ok());

  ExecuteOptions nurse_options;
  nurse_options.bindings = {{"wardNo", "3"}};
  auto nurse = engine_->Execute("nurse", doc_, "//patient/name",
                                nurse_options);
  auto researcher = engine_->Execute("researcher", doc_, "//patient/name");
  ASSERT_TRUE(nurse.ok());
  ASSERT_TRUE(researcher.ok()) << researcher.status();
  EXPECT_EQ(nurse->nodes.size(), 2u);
  // Researchers see only the clinical-trial patient.
  ASSERT_EQ(researcher->nodes.size(), 1u);
  EXPECT_EQ(doc_.CollectText(researcher->nodes[0]), "carol");

  // Researchers can see the test element nurses cannot.
  auto tests = engine_->Execute("researcher", doc_, "//test");
  ASSERT_TRUE(tests.ok());
  EXPECT_EQ(tests->nodes.size(), 1u);
  auto nurse_tests = engine_->Execute("nurse", doc_, "//test", nurse_options);
  ASSERT_TRUE(nurse_tests.ok());
  EXPECT_TRUE(nurse_tests->nodes.empty());
}

TEST_F(EngineTest, ExtractResultsServesViewSubtrees) {
  ExecuteOptions options;
  options.bindings = {{"wardNo", "3"}};
  auto result = engine_->Execute("nurse", doc_, "//patient", options);
  ASSERT_TRUE(result.ok());
  auto answer = engine_->ExtractResults("nurse", doc_, result->nodes,
                                        options.bindings);
  ASSERT_TRUE(answer.ok()) << answer.status();
  std::string xml = ToXmlString(*answer);
  EXPECT_NE(xml.find("<results>"), std::string::npos);
  EXPECT_NE(xml.find("carol"), std::string::npos);
  // The serialized answer hides treatment kinds behind dummies and never
  // contains hidden labels, even though trial nodes sit below patients in
  // the raw document.
  EXPECT_EQ(xml.find("<trial"), std::string::npos) << xml;
  EXPECT_EQ(xml.find("<regular"), std::string::npos);
  EXPECT_NE(xml.find("dummy"), std::string::npos);
  EXPECT_NE(xml.find("<bill>900</bill>"), std::string::npos);
}

TEST_F(EngineTest, ExtractResultsSkipsInvisibleNodes) {
  // Asking to extract a node outside the view yields nothing for it.
  ExecuteOptions options;
  options.bindings = {{"wardNo", "7"}};  // nothing visible
  NodeSet everything;
  for (NodeId n = 0; n < static_cast<NodeId>(doc_.node_count()); ++n) {
    if (doc_.IsElement(n) && doc_.label(n) == "patient") {
      everything.push_back(n);
    }
  }
  auto answer = engine_->ExtractResults("nurse", doc_, everything,
                                        options.bindings);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(ToXmlString(*answer), "<results/>");
}


TEST_F(EngineTest, ExtractResultsRequiresBindingsForParamPolicies) {
  ExecuteOptions options;
  options.bindings = {{"wardNo", "3"}};
  auto result = engine_->Execute("nurse", doc_, "//patient", options);
  ASSERT_TRUE(result.ok());
  // Without bindings the accessibility filter cannot be evaluated.
  auto answer = engine_->ExtractResults("nurse", doc_, result->nodes);
  EXPECT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineRecursiveTest, RecursiveViewsWorkThroughTheEngine) {
  RecursiveFixture fixture = MakeRecursiveFixture();
  auto engine = SecureQueryEngine::Create(std::move(fixture.dtd));
  ASSERT_TRUE(engine.ok());
  // The recursive document DTD disables the optimizer but not querying.
  EXPECT_FALSE((*engine)->CanOptimize());
  ASSERT_TRUE((*engine)->RegisterPolicy("outline", fixture.spec_text).ok());

  auto doc = ParseXml(
      "<doc><section><title>a</title><meta>"
      "<section><title>b</title><meta/></section>"
      "</meta></section></doc>");
  ASSERT_TRUE(doc.ok());
  auto result = (*engine)->Execute("outline", *doc, "//title");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->nodes.size(), 2u);
}

TEST(EngineRecursiveTest, CacheIsKeyedByUnfoldDepth) {
  // Regression test for the rewrite-cache key (engine.h): a recursive
  // view's rewriting is unfolded to the document height, so the same
  // query over documents of different heights must NOT share a cache
  // entry — reusing a shallow unfolding on a taller document would
  // silently drop the deeper matches.
  RecursiveFixture fixture = MakeRecursiveFixture();
  auto engine = SecureQueryEngine::Create(std::move(fixture.dtd));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->RegisterPolicy("outline", fixture.spec_text).ok());

  auto shallow = ParseXml(
      "<doc><section><title>a</title><meta/></section></doc>");
  auto deep = ParseXml(
      "<doc><section><title>a</title><meta>"
      "<section><title>b</title><meta>"
      "<section><title>c</title><meta/></section>"
      "</meta></section>"
      "</meta></section></doc>");
  ASSERT_TRUE(shallow.ok());
  ASSERT_TRUE(deep.ok());

  auto first = (*engine)->Execute("outline", *shallow, "//title");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->nodes.size(), 1u);
  EXPECT_FALSE(first->stats.cache_hit);

  // The taller document must be a cache MISS (different depth key) and
  // must see every nested title.
  auto second = (*engine)->Execute("outline", *deep, "//title");
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->nodes.size(), 3u);
  EXPECT_FALSE(second->stats.cache_hit);
  EXPECT_GT(second->stats.unfold_depth, first->stats.unfold_depth);

  // Same height again: now it is a hit, and still correct.
  auto third = (*engine)->Execute("outline", *deep, "//title");
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->nodes.size(), 3u);
  EXPECT_TRUE(third->stats.cache_hit);
}

TEST(EngineCreateTest, UnfinalizedDtdIsFinalized) {
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("r", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.SetRoot("r").ok());
  auto engine = SecureQueryEngine::Create(std::move(dtd));
  EXPECT_TRUE(engine.ok());
}

TEST(EngineCreateTest, BrokenDtdRejected) {
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("r", ContentModel::Star("missing")).ok());
  ASSERT_TRUE(dtd.SetRoot("r").ok());
  auto engine = SecureQueryEngine::Create(std::move(dtd));
  EXPECT_FALSE(engine.ok());
}

}  // namespace
}  // namespace secview
