#include <algorithm>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "workload/hospital.h"
#include "workload/synthetic.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/printer.h"

namespace secview {
namespace {

constexpr char kNursePolicy[] = R"(
  ann(hospital, dept) = [*/patient/wardNo = $wardNo]
  ann(dept, clinicalTrial) = N
  ann(clinicalTrial, patientInfo) = Y
  ann(treatment, trial) = N
  ann(treatment, regular) = N
  ann(trial, bill) = Y
  ann(regular, bill) = Y
  ann(regular, medication) = Y
)";

constexpr char kResearcherPolicy[] = R"(
  # Researchers see clinical-trial data of every ward, nothing else.
  ann(dept, patientInfo) = N
  ann(dept, staffInfo) = N
)";

constexpr char kDoc[] = R"(
  <hospital>
    <dept>
      <clinicalTrial>
        <patientInfo>
          <patient><name>carol</name><wardNo>3</wardNo>
            <treatment><trial><bill>900</bill></trial></treatment>
          </patient>
        </patientInfo>
        <test>blood</test>
      </clinicalTrial>
      <patientInfo>
        <patient><name>dave</name><wardNo>3</wardNo>
          <treatment><regular><bill>120</bill><medication>m</medication></regular></treatment>
        </patient>
      </patientInfo>
      <staffInfo><staff><nurse>sue</nurse></staff></staffInfo>
    </dept>
  </hospital>
)";

class EngineTest : public testing::Test {
 protected:
  void SetUp() override {
    auto engine = SecureQueryEngine::Create(MakeHospitalDtd());
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(engine).value();
    ASSERT_TRUE(engine_->RegisterPolicy("nurse", kNursePolicy).ok());
    auto doc = ParseXml(kDoc);
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = std::move(doc).value();
  }

  std::unique_ptr<SecureQueryEngine> engine_;
  XmlTree doc_;
};

TEST_F(EngineTest, RegisterAndListPolicies) {
  EXPECT_EQ(engine_->PolicyNames(), std::vector<std::string>{"nurse"});
  ASSERT_TRUE(engine_->RegisterPolicy("researcher", kResearcherPolicy).ok());
  EXPECT_EQ(engine_->PolicyNames(),
            (std::vector<std::string>{"nurse", "researcher"}));
}

TEST_F(EngineTest, RejectsDuplicateAndBadPolicies) {
  EXPECT_FALSE(engine_->RegisterPolicy("nurse", kNursePolicy).ok());
  EXPECT_FALSE(engine_->RegisterPolicy("", kNursePolicy).ok());
  EXPECT_FALSE(engine_->RegisterPolicy("bad", "ann(zzz, qqq) = N").ok());
}

TEST_F(EngineTest, PublishedViewDtdHidesConfidentialLabels) {
  auto dtd_text = engine_->PublishedViewDtd("nurse");
  ASSERT_TRUE(dtd_text.ok());
  EXPECT_EQ(dtd_text->find("clinicalTrial"), std::string::npos);
  EXPECT_NE(dtd_text->find("dummy"), std::string::npos);
  EXPECT_FALSE(engine_->PublishedViewDtd("ghost").ok());
}

TEST_F(EngineTest, ExecuteEnforcesPolicy) {
  ExecuteOptions options;
  options.bindings = {{"wardNo", "3"}};
  auto result = engine_->Execute("nurse", doc_, "//patient/name", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->nodes.size(), 2u);  // carol + dave
  EXPECT_GT(result->work, 0u);

  options.bindings = {{"wardNo", "7"}};
  auto other_ward = engine_->Execute("nurse", doc_, "//patient/name",
                                     options);
  ASSERT_TRUE(other_ward.ok());
  EXPECT_TRUE(other_ward->nodes.empty());
}

TEST_F(EngineTest, ExecuteRequiresBindings) {
  auto result = engine_->Execute("nurse", doc_, "//patient/name");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EngineTest, ExecuteRejectsForeignDocuments) {
  auto other = ParseXml("<library/>");
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(engine_->Execute("nurse", *other, "//x").ok());
}

TEST_F(EngineTest, ExecuteUnknownPolicyOrBadQuery) {
  EXPECT_EQ(engine_->Execute("ghost", doc_, "//x").status().code(),
            StatusCode::kNotFound);
  ExecuteOptions options;
  options.bindings = {{"wardNo", "3"}};
  EXPECT_FALSE(engine_->Execute("nurse", doc_, "//x[", options).ok());
}

TEST_F(EngineTest, OptimizeToggleAgrees) {
  ExecuteOptions with;
  with.bindings = {{"wardNo", "3"}};
  with.optimize = true;
  ExecuteOptions without = with;
  without.optimize = false;
  for (const char* q : {"//bill", "//patient[name]/wardNo", "//dummy2"}) {
    auto a = engine_->Execute("nurse", doc_, q, with);
    auto b = engine_->Execute("nurse", doc_, q, without);
    ASSERT_TRUE(a.ok()) << q;
    ASSERT_TRUE(b.ok()) << q;
    EXPECT_EQ(a->nodes, b->nodes) << q;
  }
}

TEST_F(EngineTest, RewriteIsCached) {
  auto first = engine_->Rewrite("nurse", "//patient//bill", true);
  auto second = engine_->Rewrite("nurse", "//patient//bill", true);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // same cached object
}

TEST_F(EngineTest, MultiplePoliciesSeeDifferentData) {
  ASSERT_TRUE(engine_->RegisterPolicy("researcher", kResearcherPolicy).ok());

  ExecuteOptions nurse_options;
  nurse_options.bindings = {{"wardNo", "3"}};
  auto nurse = engine_->Execute("nurse", doc_, "//patient/name",
                                nurse_options);
  auto researcher = engine_->Execute("researcher", doc_, "//patient/name");
  ASSERT_TRUE(nurse.ok());
  ASSERT_TRUE(researcher.ok()) << researcher.status();
  EXPECT_EQ(nurse->nodes.size(), 2u);
  // Researchers see only the clinical-trial patient.
  ASSERT_EQ(researcher->nodes.size(), 1u);
  EXPECT_EQ(doc_.CollectText(researcher->nodes[0]), "carol");

  // Researchers can see the test element nurses cannot.
  auto tests = engine_->Execute("researcher", doc_, "//test");
  ASSERT_TRUE(tests.ok());
  EXPECT_EQ(tests->nodes.size(), 1u);
  auto nurse_tests = engine_->Execute("nurse", doc_, "//test", nurse_options);
  ASSERT_TRUE(nurse_tests.ok());
  EXPECT_TRUE(nurse_tests->nodes.empty());
}

TEST_F(EngineTest, ExtractResultsServesViewSubtrees) {
  ExecuteOptions options;
  options.bindings = {{"wardNo", "3"}};
  auto result = engine_->Execute("nurse", doc_, "//patient", options);
  ASSERT_TRUE(result.ok());
  auto answer = engine_->ExtractResults("nurse", doc_, result->nodes,
                                        options.bindings);
  ASSERT_TRUE(answer.ok()) << answer.status();
  std::string xml = ToXmlString(*answer);
  EXPECT_NE(xml.find("<results>"), std::string::npos);
  EXPECT_NE(xml.find("carol"), std::string::npos);
  // The serialized answer hides treatment kinds behind dummies and never
  // contains hidden labels, even though trial nodes sit below patients in
  // the raw document.
  EXPECT_EQ(xml.find("<trial"), std::string::npos) << xml;
  EXPECT_EQ(xml.find("<regular"), std::string::npos);
  EXPECT_NE(xml.find("dummy"), std::string::npos);
  EXPECT_NE(xml.find("<bill>900</bill>"), std::string::npos);
}

TEST_F(EngineTest, ExtractResultsSkipsInvisibleNodes) {
  // Asking to extract a node outside the view yields nothing for it.
  ExecuteOptions options;
  options.bindings = {{"wardNo", "7"}};  // nothing visible
  NodeSet everything;
  for (NodeId n = 0; n < static_cast<NodeId>(doc_.node_count()); ++n) {
    if (doc_.IsElement(n) && doc_.label(n) == "patient") {
      everything.push_back(n);
    }
  }
  auto answer = engine_->ExtractResults("nurse", doc_, everything,
                                        options.bindings);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(ToXmlString(*answer), "<results/>");
}


TEST_F(EngineTest, ExtractResultsRequiresBindingsForParamPolicies) {
  ExecuteOptions options;
  options.bindings = {{"wardNo", "3"}};
  auto result = engine_->Execute("nurse", doc_, "//patient", options);
  ASSERT_TRUE(result.ok());
  // Without bindings the accessibility filter cannot be evaluated.
  auto answer = engine_->ExtractResults("nurse", doc_, result->nodes);
  EXPECT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineRecursiveTest, RecursiveViewsWorkThroughTheEngine) {
  RecursiveFixture fixture = MakeRecursiveFixture();
  auto engine = SecureQueryEngine::Create(std::move(fixture.dtd));
  ASSERT_TRUE(engine.ok());
  // The recursive document DTD disables the optimizer but not querying.
  EXPECT_FALSE((*engine)->CanOptimize());
  ASSERT_TRUE((*engine)->RegisterPolicy("outline", fixture.spec_text).ok());

  auto doc = ParseXml(
      "<doc><section><title>a</title><meta>"
      "<section><title>b</title><meta/></section>"
      "</meta></section></doc>");
  ASSERT_TRUE(doc.ok());
  auto result = (*engine)->Execute("outline", *doc, "//title");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->nodes.size(), 2u);
}

TEST(EngineCreateTest, UnfinalizedDtdIsFinalized) {
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("r", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.SetRoot("r").ok());
  auto engine = SecureQueryEngine::Create(std::move(dtd));
  EXPECT_TRUE(engine.ok());
}

TEST(EngineCreateTest, BrokenDtdRejected) {
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("r", ContentModel::Star("missing")).ok());
  ASSERT_TRUE(dtd.SetRoot("r").ok());
  auto engine = SecureQueryEngine::Create(std::move(dtd));
  EXPECT_FALSE(engine.ok());
}

}  // namespace
}  // namespace secview
