#include <gtest/gtest.h>

#include "security/derive.h"
#include "security/spec_parser.h"
#include "workload/adex.h"
#include "workload/hospital.h"
#include "workload/synthetic.h"
#include "xpath/printer.h"

namespace secview {
namespace {

SecurityView MustDerive(const AccessSpec& spec) {
  auto view = DeriveSecurityView(spec);
  EXPECT_TRUE(view.ok()) << view.status();
  return std::move(view).value();
}

std::string SigmaString(const SecurityView& view, const std::string& parent,
                        const std::string& child) {
  ViewTypeId p = view.FindType(parent);
  ViewTypeId c = view.FindType(child);
  if (p == kNullViewType || c == kNullViewType) return "<no such type>";
  PathPtr sigma = view.Sigma(p, c);
  return sigma ? ToXPathString(sigma) : "<no edge>";
}

// -- The paper's running example (Example 3.2 / 3.4) ---------------------------

class HospitalDeriveTest : public testing::Test {
 protected:
  void SetUp() override {
    dtd_ = MakeHospitalDtd();
    auto spec = MakeNurseSpec(dtd_);
    ASSERT_TRUE(spec.ok()) << spec.status();
    spec_ = std::make_unique<AccessSpec>(std::move(spec).value());
    view_ = std::make_unique<SecurityView>(MustDerive(*spec_));
  }

  Dtd dtd_;
  std::unique_ptr<AccessSpec> spec_;
  std::unique_ptr<SecurityView> view_;
};

TEST_F(HospitalDeriveTest, HidesConfidentialTypes) {
  // clinicalTrial, trial, regular, test must not be exposed.
  EXPECT_EQ(view_->FindType("clinicalTrial"), kNullViewType);
  EXPECT_EQ(view_->FindType("trial"), kNullViewType);
  EXPECT_EQ(view_->FindType("regular"), kNullViewType);
  EXPECT_EQ(view_->FindType("test"), kNullViewType);
}

TEST_F(HospitalDeriveTest, ExposesAccessibleTypes) {
  for (const char* name : {"hospital", "dept", "patientInfo", "patient",
                           "name", "wardNo", "treatment", "bill",
                           "medication", "staffInfo", "staff", "doctor",
                           "nurse"}) {
    EXPECT_NE(view_->FindType(name), kNullViewType) << name;
  }
  EXPECT_EQ(view_->TypeName(view_->root()), "hospital");
}

TEST_F(HospitalDeriveTest, RootSigmaKeepsWardQualifier) {
  // sigma(hospital, dept) = dept[*/patient/wardNo = $wardNo]  (p1).
  EXPECT_EQ(SigmaString(*view_, "hospital", "dept"),
            "dept[*/patient/wardNo = $wardNo]");
}

TEST_F(HospitalDeriveTest, DeptShortcutsClinicalTrial) {
  // The paper's compact form: dept -> (patientInfo*, staffInfo), with
  // sigma(dept, patientInfo) covering both the hidden path and the direct
  // child (p2 = (clinicalTrial U .)/patientInfo, written as a union).
  const ViewProduction& prod =
      view_->Production(view_->FindType("dept"));
  ASSERT_EQ(prod.kind, ViewProduction::Kind::kFields);
  ASSERT_EQ(prod.fields.size(), 2u);
  EXPECT_EQ(prod.fields[0].child, "patientInfo");
  EXPECT_EQ(prod.fields[0].mult, ViewField::Multiplicity::kStar);
  EXPECT_EQ(prod.fields[1].child, "staffInfo");
  EXPECT_EQ(prod.fields[1].mult, ViewField::Multiplicity::kOne);

  std::string sigma = SigmaString(*view_, "dept", "patientInfo");
  EXPECT_NE(sigma.find("clinicalTrial/patientInfo"), std::string::npos)
      << sigma;
  EXPECT_NE(sigma.find("| patientInfo"), std::string::npos) << sigma;
}

TEST_F(HospitalDeriveTest, TreatmentDisjunctionBecomesDummies) {
  ViewTypeId treatment = view_->FindType("treatment");
  ASSERT_NE(treatment, kNullViewType);
  const ViewProduction& prod = view_->Production(treatment);
  ASSERT_EQ(prod.kind, ViewProduction::Kind::kChoice);
  ASSERT_EQ(prod.choice.alts.size(), 2u);
  // Both alternatives are dummies hiding trial / regular.
  for (const ViewChoice::Alt& alt : prod.choice.alts) {
    ViewTypeId t = view_->FindType(alt.child);
    ASSERT_NE(t, kNullViewType);
    EXPECT_TRUE(view_->type(t).is_dummy) << alt.child;
  }
  // sigma maps the dummies to the hidden labels.
  EXPECT_EQ(ToXPathString(prod.choice.alts[0].sigma), "trial");
  EXPECT_EQ(ToXPathString(prod.choice.alts[1].sigma), "regular");
}

TEST_F(HospitalDeriveTest, DummyProductions) {
  // dummy for trial -> (bill); dummy for regular -> (bill, medication).
  ViewTypeId treatment = view_->FindType("treatment");
  const ViewProduction& prod = view_->Production(treatment);
  ViewTypeId d1 = view_->FindType(prod.choice.alts[0].child);
  ViewTypeId d2 = view_->FindType(prod.choice.alts[1].child);

  const ViewProduction& p1 = view_->Production(d1);
  ASSERT_EQ(p1.kind, ViewProduction::Kind::kFields);
  ASSERT_EQ(p1.fields.size(), 1u);
  EXPECT_EQ(p1.fields[0].child, "bill");
  EXPECT_EQ(ToXPathString(p1.fields[0].sigma), "bill");

  const ViewProduction& p2 = view_->Production(d2);
  ASSERT_EQ(p2.kind, ViewProduction::Kind::kFields);
  ASSERT_EQ(p2.fields.size(), 2u);
  EXPECT_EQ(p2.fields[0].child, "bill");
  EXPECT_EQ(p2.fields[1].child, "medication");
}

TEST_F(HospitalDeriveTest, UntouchedSubtreesKeepIdentitySigma) {
  EXPECT_EQ(SigmaString(*view_, "dept", "staffInfo"), "staffInfo");
  EXPECT_EQ(SigmaString(*view_, "staffInfo", "staff"), "staff");
  EXPECT_EQ(SigmaString(*view_, "patient", "name"), "name");
  EXPECT_EQ(SigmaString(*view_, "patient", "treatment"), "treatment");
}

TEST_F(HospitalDeriveTest, ViewIsNotRecursive) {
  EXPECT_FALSE(view_->IsRecursive());
}

TEST_F(HospitalDeriveTest, ViewDtdStringOmitsSigma) {
  std::string text = view_->ViewDtdString();
  EXPECT_NE(text.find("<!ELEMENT hospital (dept*)"), std::string::npos)
      << text;
  EXPECT_EQ(text.find("clinicalTrial"), std::string::npos) << text;
  EXPECT_EQ(text.find("sigma"), std::string::npos);
}

// -- Adex policy ---------------------------------------------------------------

class AdexDeriveTest : public testing::Test {
 protected:
  void SetUp() override {
    dtd_ = MakeAdexDtd();
    auto spec = MakeAdexSpec(dtd_);
    ASSERT_TRUE(spec.ok()) << spec.status();
    view_ = std::make_unique<SecurityView>(MustDerive(*spec));
  }

  Dtd dtd_;
  std::unique_ptr<SecurityView> view_;
};

TEST_F(AdexDeriveTest, OnlyRealEstateAndBuyerSubtreesExposed) {
  for (const char* hidden : {"head", "body", "ad-instance", "content",
                             "transaction-info", "automotive", "employment",
                             "merchandise", "ad-id", "categories"}) {
    EXPECT_EQ(view_->FindType(hidden), kNullViewType) << hidden;
  }
  for (const char* exposed :
       {"adex", "buyer-info", "company-id", "contact-info", "real-estate",
        "house", "apartment", "r-e.warranty", "r-e.asking-price",
        "r-e.unit-type"}) {
    EXPECT_NE(view_->FindType(exposed), kNullViewType) << exposed;
  }
}

TEST_F(AdexDeriveTest, RootProductionSplicesThroughHiddenRegion) {
  // adex ->(view) (buyer-info, real-estate*) with deep sigma paths.
  const ViewProduction& prod = view_->Production(view_->root());
  ASSERT_EQ(prod.kind, ViewProduction::Kind::kFields);
  ASSERT_EQ(prod.fields.size(), 2u);
  EXPECT_EQ(prod.fields[0].child, "buyer-info");
  EXPECT_EQ(prod.fields[0].mult, ViewField::Multiplicity::kOne);
  EXPECT_EQ(ToXPathString(prod.fields[0].sigma), "head/buyer-info");
  EXPECT_EQ(prod.fields[1].child, "real-estate");
  EXPECT_EQ(prod.fields[1].mult, ViewField::Multiplicity::kStar);
  EXPECT_EQ(ToXPathString(prod.fields[1].sigma),
            "body/ad-instance/content/real-estate");
}

TEST_F(AdexDeriveTest, NoDummiesNeeded) {
  for (ViewTypeId id = 0; id < view_->NumTypes(); ++id) {
    EXPECT_FALSE(view_->type(id).is_dummy) << view_->TypeName(id);
  }
}

// -- Structural corner cases ----------------------------------------------------

Dtd SmallDtd(const std::string& root_content) {
  Dtd dtd;
  EXPECT_TRUE(dtd.AddType("r", ContentModel::Sequence({"h"})).ok());
  if (root_content == "choice") {
    EXPECT_TRUE(dtd.AddType("h", ContentModel::Choice({"x", "y"})).ok());
  } else if (root_content == "star") {
    EXPECT_TRUE(dtd.AddType("h", ContentModel::Star("x")).ok());
  } else {
    EXPECT_TRUE(dtd.AddType("h", ContentModel::Sequence({"x", "y"})).ok());
  }
  EXPECT_TRUE(dtd.AddType("x", ContentModel::Text()).ok());
  EXPECT_TRUE(dtd.AddType("y", ContentModel::Text()).ok());
  EXPECT_TRUE(dtd.SetRoot("r").ok());
  EXPECT_TRUE(dtd.Finalize().ok());
  return dtd;
}

TEST(DeriveCornersTest, PruneRegionWithNoAccessibleDescendants) {
  Dtd dtd = SmallDtd("seq");
  auto spec = ParseAccessSpec(dtd, "ann(r, h) = N");
  ASSERT_TRUE(spec.ok());
  SecurityView view = MustDerive(*spec);
  // Everything below r is hidden: the view is just the root, empty.
  EXPECT_EQ(view.NumTypes(), 1);
  EXPECT_EQ(view.Production(view.root()).kind, ViewProduction::Kind::kEmpty);
}

TEST(DeriveCornersTest, ShortcutHiddenSequence) {
  Dtd dtd = SmallDtd("seq");
  auto spec = ParseAccessSpec(dtd, R"(
    ann(r, h) = N
    ann(h, x) = Y
    ann(h, y) = Y
  )");
  ASSERT_TRUE(spec.ok());
  SecurityView view = MustDerive(*spec);
  const ViewProduction& prod = view.Production(view.root());
  ASSERT_EQ(prod.kind, ViewProduction::Kind::kFields);
  ASSERT_EQ(prod.fields.size(), 2u);
  EXPECT_EQ(ToXPathString(prod.fields[0].sigma), "h/x");
  EXPECT_EQ(ToXPathString(prod.fields[1].sigma), "h/y");
}

TEST(DeriveCornersTest, HiddenChoiceUnderSequenceBecomesDummy) {
  Dtd dtd = SmallDtd("choice");
  auto spec = ParseAccessSpec(dtd, R"(
    ann(r, h) = N
    ann(h, x) = Y
    ann(h, y) = Y
  )");
  ASSERT_TRUE(spec.ok());
  SecurityView view = MustDerive(*spec);
  const ViewProduction& prod = view.Production(view.root());
  ASSERT_EQ(prod.kind, ViewProduction::Kind::kFields);
  ASSERT_EQ(prod.fields.size(), 1u);
  ViewTypeId dummy = view.FindType(prod.fields[0].child);
  EXPECT_TRUE(view.type(dummy).is_dummy);
  EXPECT_EQ(view.Production(dummy).kind, ViewProduction::Kind::kChoice);
}

TEST(DeriveCornersTest, HiddenStarUnderSequenceSplicesAsStar) {
  Dtd dtd = SmallDtd("star");
  auto spec = ParseAccessSpec(dtd, R"(
    ann(r, h) = N
    ann(h, x) = Y
  )");
  ASSERT_TRUE(spec.ok());
  SecurityView view = MustDerive(*spec);
  const ViewProduction& prod = view.Production(view.root());
  ASSERT_EQ(prod.kind, ViewProduction::Kind::kFields);
  ASSERT_EQ(prod.fields.size(), 1u);
  EXPECT_EQ(prod.fields[0].child, "x");
  EXPECT_EQ(prod.fields[0].mult, ViewField::Multiplicity::kStar);
  EXPECT_EQ(ToXPathString(prod.fields[0].sigma), "h/x");
}

TEST(DeriveCornersTest, HiddenTextWithExplicitYesBecomesTextDummy) {
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("r", ContentModel::Sequence({"secret"})).ok());
  ASSERT_TRUE(dtd.AddType("secret", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.SetRoot("r").ok());
  ASSERT_TRUE(dtd.Finalize().ok());
  auto spec = ParseAccessSpec(dtd, R"(
    ann(r, secret) = N
    ann(secret, str) = Y
  )");
  ASSERT_TRUE(spec.ok()) << spec.status();
  SecurityView view = MustDerive(*spec);
  const ViewProduction& prod = view.Production(view.root());
  ASSERT_EQ(prod.kind, ViewProduction::Kind::kFields);
  ViewTypeId dummy = view.FindType(prod.fields[0].child);
  EXPECT_TRUE(view.type(dummy).is_dummy);
  EXPECT_EQ(view.Production(dummy).kind, ViewProduction::Kind::kText);
}

TEST(DeriveCornersTest, HiddenTextWithExplicitNoOnAccessibleElement) {
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("r", ContentModel::Sequence({"v"})).ok());
  ASSERT_TRUE(dtd.AddType("v", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.SetRoot("r").ok());
  ASSERT_TRUE(dtd.Finalize().ok());
  auto spec = ParseAccessSpec(dtd, "ann(v, str) = N");
  ASSERT_TRUE(spec.ok());
  SecurityView view = MustDerive(*spec);
  ViewTypeId v = view.FindType("v");
  ASSERT_NE(v, kNullViewType);
  // v stays visible but its PCDATA is concealed.
  EXPECT_EQ(view.Production(v).kind, ViewProduction::Kind::kEmpty);
  EXPECT_TRUE(view.type(v).text_hidden);
}

TEST(DeriveCornersTest, RecursiveHiddenTypeYieldsRecursiveView) {
  RecursiveFixture fixture = MakeRecursiveFixture();
  auto spec = ParseAccessSpec(fixture.dtd, fixture.spec_text);
  ASSERT_TRUE(spec.ok()) << spec.status();
  SecurityView view = MustDerive(*spec);
  EXPECT_TRUE(view.IsRecursive());
  EXPECT_EQ(view.FindType("meta"), kNullViewType);
  // section ->(view) (title, section*) with sigma = meta/section.
  ViewTypeId section = view.FindType("section");
  ASSERT_NE(section, kNullViewType);
  const ViewProduction& prod = view.Production(section);
  ASSERT_EQ(prod.kind, ViewProduction::Kind::kFields);
  ASSERT_EQ(prod.fields.size(), 2u);
  EXPECT_EQ(prod.fields[0].child, "title");
  EXPECT_EQ(prod.fields[1].child, "section");
  EXPECT_EQ(prod.fields[1].mult, ViewField::Multiplicity::kStar);
  EXPECT_EQ(ToXPathString(prod.fields[1].sigma), "meta/section");
}

TEST(DeriveCornersTest, ConditionalChildKeepsQualifierInSigma) {
  Dtd dtd = SmallDtd("seq");
  auto spec = ParseAccessSpec(dtd, "ann(r, h) = [x = \"1\"]");
  ASSERT_TRUE(spec.ok());
  SecurityView view = MustDerive(*spec);
  EXPECT_EQ(SigmaString(view, "r", "h"), "h[x = \"1\"]");
}

TEST(DeriveCornersTest, DummyNamesAvoidDocumentTypeNames) {
  Dtd dtd;
  ASSERT_TRUE(dtd.AddType("r", ContentModel::Sequence({"dummy1"})).ok());
  ASSERT_TRUE(dtd.AddType("dummy1", ContentModel::Choice({"x", "y"})).ok());
  ASSERT_TRUE(dtd.AddType("x", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.AddType("y", ContentModel::Text()).ok());
  ASSERT_TRUE(dtd.SetRoot("r").ok());
  ASSERT_TRUE(dtd.Finalize().ok());
  auto spec = ParseAccessSpec(dtd, R"(
    ann(r, dummy1) = N
    ann(dummy1, x) = Y
    ann(dummy1, y) = Y
  )");
  ASSERT_TRUE(spec.ok());
  SecurityView view = MustDerive(*spec);
  const ViewProduction& prod = view.Production(view.root());
  ASSERT_EQ(prod.fields.size(), 1u);
  // The generated dummy must not collide with the document's "dummy1".
  EXPECT_NE(prod.fields[0].child, "dummy1");
}

}  // namespace
}  // namespace secview
