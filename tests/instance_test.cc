#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dtd/generic_validator.h"
#include "dtd/instance_normalizer.h"
#include "dtd/normalizer.h"
#include "dtd/validator.h"
#include "workload/generator.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace secview {
namespace {

constexpr char kBookDtd[] = R"(
  <!ELEMENT book (title, (chapter | appendix)+, index?)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT chapter (title, para*)>
  <!ELEMENT appendix (para+)>
  <!ELEMENT para (#PCDATA)>
  <!ELEMENT index (#PCDATA)>
)";

class InstanceNormalizerTest : public testing::Test {
 protected:
  void Load(const char* dtd_text) {
    auto generic = ParseDtdText(dtd_text);
    ASSERT_TRUE(generic.ok()) << generic.status();
    generic_ = std::move(generic).value();
    auto normalized = NormalizeDtd(generic_);
    ASSERT_TRUE(normalized.ok()) << normalized.status();
    normalized_ = std::make_unique<NormalizeResult>(
        std::move(normalized).value());
  }

  Result<XmlTree> NormalizeDoc(const char* xml) {
    auto doc = ParseXml(xml);
    EXPECT_TRUE(doc.ok()) << doc.status();
    InstanceNormalizer normalizer = InstanceNormalizer::For(*normalized_);
    return normalizer.Normalize(*doc);
  }

  GenericDtd generic_;
  std::unique_ptr<NormalizeResult> normalized_;
};

TEST_F(InstanceNormalizerTest, BookRoundTrip) {
  Load(kBookDtd);
  const char* xml =
      "<book><title>t</title>"
      "<chapter><title>c1</title><para>p</para><para>q</para></chapter>"
      "<appendix><para>a</para></appendix>"
      "<index>i</index></book>";
  auto doc = ParseXml(xml);
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(ValidateGenericInstance(*doc, generic_).ok());

  auto normalized = NormalizeDoc(xml);
  ASSERT_TRUE(normalized.ok()) << normalized.status();
  // The normalized instance conforms to the normalized DTD.
  EXPECT_TRUE(ValidateInstance(*normalized, normalized_->dtd).ok())
      << ToXmlString(*normalized);
  // Original data is still there, under wrappers.
  std::string out = ToXmlString(*normalized);
  EXPECT_NE(out.find("<title>c1</title>"), std::string::npos) << out;
  EXPECT_NE(out.find("<index>i</index>"), std::string::npos);
  EXPECT_GT(normalized->node_count(), doc->node_count());
}

TEST_F(InstanceNormalizerTest, OptionalAbsent) {
  Load(kBookDtd);
  auto normalized = NormalizeDoc(
      "<book><title>t</title><chapter><title>c</title></chapter></book>");
  ASSERT_TRUE(normalized.ok()) << normalized.status();
  EXPECT_TRUE(ValidateInstance(*normalized, normalized_->dtd).ok());
}

TEST_F(InstanceNormalizerTest, RejectsMissingRequiredGroup) {
  Load(kBookDtd);
  // (chapter | appendix)+ demands at least one.
  auto normalized = NormalizeDoc("<book><title>t</title></book>");
  EXPECT_FALSE(normalized.ok());
}

TEST_F(InstanceNormalizerTest, RejectsWrongOrder) {
  Load(kBookDtd);
  auto normalized = NormalizeDoc(
      "<book><chapter><title>c</title></chapter><title>t</title></book>");
  EXPECT_FALSE(normalized.ok());
}

TEST_F(InstanceNormalizerTest, RejectsUndeclaredElement) {
  Load(kBookDtd);
  auto normalized = NormalizeDoc(
      "<book><title>t</title><mystery/></book>");
  EXPECT_FALSE(normalized.ok());
}

TEST_F(InstanceNormalizerTest, IdentityForNormalFormDtds) {
  Load("<!ELEMENT r (a, b)> <!ELEMENT a (#PCDATA)> <!ELEMENT b EMPTY>");
  InstanceNormalizer normalizer = InstanceNormalizer::For(*normalized_);
  EXPECT_TRUE(normalizer.IsIdentity());
  auto normalized = NormalizeDoc("<r><a>x</a><b/></r>");
  ASSERT_TRUE(normalized.ok());
  EXPECT_EQ(normalized->node_count(), 4u);
}

TEST_F(InstanceNormalizerTest, OriginsPointToSource) {
  Load(kBookDtd);
  const char* xml =
      "<book><title>t</title><chapter><title>c</title></chapter></book>";
  auto doc = ParseXml(xml);
  ASSERT_TRUE(doc.ok());
  InstanceNormalizer normalizer = InstanceNormalizer::For(*normalized_);
  auto normalized = normalizer.Normalize(*doc);
  ASSERT_TRUE(normalized.ok());
  for (NodeId n = 0; n < static_cast<NodeId>(normalized->node_count());
       ++n) {
    NodeId origin = normalized->origin(n);
    ASSERT_NE(origin, kNullNode);
    if (normalized->IsElement(n) &&
        doc->FindLabelId(normalized->label(n)) != -1) {
      // Original elements map to the same-labeled source node.
      EXPECT_EQ(doc->label(origin), normalized->label(n));
    }
  }
}

TEST_F(InstanceNormalizerTest, AlternationStar) {
  Load("<!ELEMENT r (a | b)*> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>");
  auto normalized = NormalizeDoc("<r><a/><b/><b/><a/></r>");
  ASSERT_TRUE(normalized.ok()) << normalized.status();
  EXPECT_TRUE(ValidateInstance(*normalized, normalized_->dtd).ok())
      << ToXmlString(*normalized);
  // One wrapper per item.
  int wrappers = 0;
  for (NodeId n = 0; n < static_cast<NodeId>(normalized->node_count());
       ++n) {
    if (normalized->IsElement(n) &&
        std::string(normalized->label(n)).find("._") != std::string::npos) {
      ++wrappers;
    }
  }
  EXPECT_EQ(wrappers, 4);
}

TEST_F(InstanceNormalizerTest, NestedGroups) {
  Load("<!ELEMENT r ((a, b) | (b, a))+>"
       "<!ELEMENT a EMPTY> <!ELEMENT b EMPTY>");
  for (const char* xml :
       {"<r><a/><b/></r>", "<r><b/><a/></r>", "<r><a/><b/><b/><a/></r>"}) {
    auto normalized = NormalizeDoc(xml);
    ASSERT_TRUE(normalized.ok()) << xml << ": " << normalized.status();
    EXPECT_TRUE(ValidateInstance(*normalized, normalized_->dtd).ok())
        << xml << " -> " << ToXmlString(*normalized);
  }
  EXPECT_FALSE(NormalizeDoc("<r><a/><a/></r>").ok());
}

// -- Generic validator -----------------------------------------------------------

class GenericValidatorTest : public testing::Test {
 protected:
  void Load(const char* dtd_text) {
    auto generic = ParseDtdText(dtd_text);
    ASSERT_TRUE(generic.ok()) << generic.status();
    generic_ = std::move(generic).value();
  }

  Status Validate(const char* xml) {
    auto doc = ParseXml(xml);
    EXPECT_TRUE(doc.ok()) << doc.status();
    return ValidateGenericInstance(*doc, generic_);
  }

  GenericDtd generic_;
};

TEST_F(GenericValidatorTest, AcceptsValidBooks) {
  Load(kBookDtd);
  EXPECT_TRUE(Validate("<book><title>t</title>"
                       "<chapter><title>c</title></chapter></book>")
                  .ok());
  EXPECT_TRUE(Validate("<book><title>t</title>"
                       "<appendix><para>p</para></appendix>"
                       "<chapter><title>c</title></chapter>"
                       "<index>i</index></book>")
                  .ok());
}

TEST_F(GenericValidatorTest, RejectsViolations) {
  Load(kBookDtd);
  // Missing the required group.
  EXPECT_FALSE(Validate("<book><title>t</title></book>").ok());
  // appendix requires at least one para.
  EXPECT_FALSE(Validate("<book><title>t</title><appendix/></book>").ok());
  // Wrong root.
  EXPECT_FALSE(Validate("<chapter><title>t</title></chapter>").ok());
  // Text where elements are expected.
  EXPECT_FALSE(
      Validate("<book>hello<title>t</title>"
               "<chapter><title>c</title></chapter></book>")
          .ok());
  // Element inside PCDATA content.
  EXPECT_FALSE(Validate("<book><title><para>x</para></title>"
                        "<chapter><title>c</title></chapter></book>")
                   .ok());
}

TEST_F(GenericValidatorTest, OptionalAndStar) {
  Load("<!ELEMENT r (a?, b*)> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>");
  EXPECT_TRUE(Validate("<r/>").ok());
  EXPECT_TRUE(Validate("<r><a/></r>").ok());
  EXPECT_TRUE(Validate("<r><b/><b/><b/></r>").ok());
  EXPECT_TRUE(Validate("<r><a/><b/></r>").ok());
  EXPECT_FALSE(Validate("<r><a/><a/></r>").ok());
  EXPECT_FALSE(Validate("<r><b/><a/></r>").ok());
}

// -- Cross-check property: Strip o Normalize == identity ---------------------------

/// Removes aux wrapper elements, promoting their children (the inverse
/// of instance normalization).
XmlTree StripWrappers(const XmlTree& doc, const NormalizeResult& result) {
  XmlTree out;
  std::function<void(NodeId, NodeId)> copy = [&](NodeId n, NodeId parent) {
    if (doc.IsText(n)) {
      out.AppendText(parent, doc.text(n));
      return;
    }
    bool is_aux = false;
    for (const std::string& aux : result.aux_types) {
      if (doc.label(n) == aux) {
        is_aux = true;
        break;
      }
    }
    NodeId target = parent;
    if (!is_aux) {
      target = parent == kNullNode ? out.CreateRoot(doc.label(n))
                                   : out.AppendElement(parent, doc.label(n));
    }
    for (NodeId c = doc.first_child(n); c != kNullNode;
         c = doc.next_sibling(c)) {
      copy(c, target);
    }
  };
  copy(doc.root(), kNullNode);
  return out;
}

TEST(InstanceNormalizerPropertyTest, StripThenNormalizeIsIdentity) {
  // Generate instances of the *normalized* DTD, strip the wrappers to get
  // an "original" document, validate it against the generic DTD, and
  // re-normalize: the result must equal the generated instance.
  //
  // Requires the exact (opt_as_star = false) normalization: the default
  // relaxation turns `a?` into `a*`, whose instances may not conform to
  // the original DTD.
  constexpr const char* kDtds[] = {
      kBookDtd,
      "<!ELEMENT r (a?, (b | c)*, d)> <!ELEMENT a EMPTY>"
      "<!ELEMENT b (#PCDATA)> <!ELEMENT c EMPTY> <!ELEMENT d (a+)>",
      "<!ELEMENT r ((a, b)+ | c)> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>"
      "<!ELEMENT c EMPTY>",
  };
  Rng rng(2024);
  for (const char* dtd_text : kDtds) {
    SCOPED_TRACE(dtd_text);
    auto generic = ParseDtdText(dtd_text);
    ASSERT_TRUE(generic.ok());
    NormalizeOptions exact;
    exact.opt_as_star = false;
    auto normalized = NormalizeDtd(*generic, exact);
    ASSERT_TRUE(normalized.ok());
    InstanceNormalizer normalizer = InstanceNormalizer::For(*normalized);

    for (int round = 0; round < 10; ++round) {
      GeneratorOptions gen;
      gen.seed = rng.Next();
      gen.max_branching = 3;
      auto doc = GenerateDocument(normalized->dtd, gen);
      ASSERT_TRUE(doc.ok()) << doc.status();

      XmlTree stripped = StripWrappers(*doc, *normalized);
      EXPECT_TRUE(ValidateGenericInstance(stripped, *generic).ok())
          << ToXmlString(stripped);

      auto renormalized = normalizer.Normalize(stripped);
      ASSERT_TRUE(renormalized.ok())
          << renormalized.status() << "\nstripped: " << ToXmlString(stripped);
      EXPECT_EQ(ToXmlString(*renormalized), ToXmlString(*doc));
    }
  }
}

}  // namespace
}  // namespace secview
