#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/tree.h"

namespace secview {
namespace {

TEST(XmlTreeTest, BuildSmallTree) {
  XmlTree t;
  NodeId root = t.CreateRoot("a");
  NodeId b = t.AppendElement(root, "b");
  NodeId c = t.AppendElement(root, "c");
  NodeId text = t.AppendText(b, "hello");

  EXPECT_EQ(t.node_count(), 4u);
  EXPECT_EQ(t.root(), root);
  EXPECT_EQ(t.label(root), "a");
  EXPECT_EQ(t.parent(b), root);
  EXPECT_EQ(t.parent(c), root);
  EXPECT_EQ(t.first_child(root), b);
  EXPECT_EQ(t.next_sibling(b), c);
  EXPECT_EQ(t.next_sibling(c), kNullNode);
  EXPECT_TRUE(t.IsText(text));
  EXPECT_EQ(t.text(text), "hello");
  EXPECT_EQ(t.ChildCount(root), 2);
}

TEST(XmlTreeTest, DocumentOrderIsIdOrder) {
  XmlTree t;
  NodeId root = t.CreateRoot("r");
  NodeId a = t.AppendElement(root, "a");
  NodeId a1 = t.AppendElement(a, "x");
  NodeId b = t.AppendElement(root, "b");
  EXPECT_LT(root, a);
  EXPECT_LT(a, a1);
  EXPECT_LT(a1, b);
}

TEST(XmlTreeTest, SubtreeEnd) {
  XmlTree t;
  NodeId root = t.CreateRoot("r");
  NodeId a = t.AppendElement(root, "a");
  t.AppendElement(a, "x");
  NodeId b = t.AppendElement(root, "b");
  EXPECT_EQ(t.SubtreeEnd(a), b);
  EXPECT_EQ(t.SubtreeEnd(root), static_cast<NodeId>(t.node_count()));
}

TEST(XmlTreeTest, ForEachDescendantOrSelf) {
  XmlTree t;
  NodeId root = t.CreateRoot("r");
  NodeId a = t.AppendElement(root, "a");
  t.AppendElement(a, "x");
  t.AppendElement(root, "b");
  std::vector<NodeId> visited;
  t.ForEachDescendantOrSelf(a, [&](NodeId n) { visited.push_back(n); });
  EXPECT_EQ(visited.size(), 2u);
  EXPECT_EQ(visited[0], a);
}

TEST(XmlTreeTest, Attributes) {
  XmlTree t;
  NodeId root = t.CreateRoot("r");
  EXPECT_FALSE(t.GetAttribute(root, "x").has_value());
  t.SetAttribute(root, "x", "1");
  t.SetAttribute(root, "y", "2");
  EXPECT_EQ(*t.GetAttribute(root, "x"), "1");
  t.SetAttribute(root, "x", "3");  // overwrite
  EXPECT_EQ(*t.GetAttribute(root, "x"), "3");
  EXPECT_EQ(t.Attributes(root).size(), 2u);
}

TEST(XmlTreeTest, HeightAndText) {
  XmlTree t;
  NodeId root = t.CreateRoot("r");
  NodeId a = t.AppendElement(root, "a");
  NodeId b = t.AppendElement(a, "b");
  t.AppendText(b, "x");
  t.AppendText(b, "y");
  EXPECT_EQ(t.Height(), 3);
  EXPECT_EQ(t.CollectText(b), "xy");
  EXPECT_EQ(t.CollectText(root), "");
}

TEST(XmlTreeTest, OriginTracking) {
  XmlTree t;
  NodeId root = t.CreateRoot("r");
  EXPECT_EQ(t.origin(root), kNullNode);
  t.SetOrigin(root, 42);
  EXPECT_EQ(t.origin(root), 42);
}

TEST(XmlTreeTest, CloneIsDeep) {
  XmlTree t;
  NodeId root = t.CreateRoot("r");
  t.AppendElement(root, "a");
  XmlTree copy = t.Clone();
  copy.AppendElement(copy.root(), "b");
  EXPECT_EQ(t.node_count(), 2u);
  EXPECT_EQ(copy.node_count(), 3u);
}

TEST(XmlTreeTest, LabelInterning) {
  XmlTree t;
  NodeId root = t.CreateRoot("r");
  NodeId a1 = t.AppendElement(root, "a");
  NodeId a2 = t.AppendElement(root, "a");
  EXPECT_EQ(t.label_id(a1), t.label_id(a2));
  EXPECT_EQ(t.FindLabelId("a"), t.label_id(a1));
  EXPECT_EQ(t.FindLabelId("zz"), -1);
}

// -- Parser -------------------------------------------------------------------

TEST(XmlParserTest, ParsesSimpleDocument) {
  auto r = ParseXml("<a><b>hi</b><c/></a>");
  ASSERT_TRUE(r.ok()) << r.status();
  const XmlTree& t = *r;
  EXPECT_EQ(t.label(t.root()), "a");
  EXPECT_EQ(t.ChildCount(t.root()), 2);
  NodeId b = t.first_child(t.root());
  EXPECT_EQ(t.label(b), "b");
  EXPECT_EQ(t.CollectText(b), "hi");
}

TEST(XmlParserTest, SkipsPrologDoctypeAndComments) {
  auto r = ParseXml(
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE a [ <!ELEMENT a (b)> ]>\n"
      "<!-- comment -->\n"
      "<a><!-- inner --><b/></a>\n"
      "<!-- trailing -->");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->label(r->root()), "a");
  EXPECT_EQ(r->ChildCount(r->root()), 1);
}

TEST(XmlParserTest, DecodesEntities) {
  auto r = ParseXml("<a>x &lt;&amp;&gt; &#65;&#x42;</a>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->CollectText(r->root()), "x <&> AB");
}

TEST(XmlParserTest, ParsesAttributes) {
  auto r = ParseXml("<a x=\"1\" y='two &amp; three'><b z=\"3\"/></a>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r->GetAttribute(r->root(), "x"), "1");
  EXPECT_EQ(*r->GetAttribute(r->root(), "y"), "two & three");
  EXPECT_EQ(*r->GetAttribute(r->first_child(r->root()), "z"), "3");
}

TEST(XmlParserTest, CdataBecomesText) {
  auto r = ParseXml("<a><![CDATA[<not> & parsed]]></a>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->CollectText(r->root()), "<not> & parsed");
}

TEST(XmlParserTest, WhitespaceTextDroppedByDefault) {
  auto r = ParseXml("<a>\n  <b/>\n</a>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->ChildCount(r->root()), 1);

  XmlParseOptions keep;
  keep.keep_whitespace_text = true;
  auto r2 = ParseXml("<a>\n  <b/>\n</a>", keep);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->ChildCount(r2->root()), 3);
}

TEST(XmlParserTest, RejectsMismatchedTags) {
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("<a></a></a>").ok());
  EXPECT_FALSE(ParseXml("</a>").ok());
}

TEST(XmlParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("just text").ok());
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());
  EXPECT_FALSE(ParseXml("<a>&bogus;</a>").ok());
  EXPECT_FALSE(ParseXml("<a x=1></a>").ok());
}

TEST(XmlParserTest, RejectsDuplicateAttributes) {
  EXPECT_FALSE(ParseXml("<a x=\"1\" x=\"2\"/>").ok());
  EXPECT_TRUE(ParseXml("<a x=\"1\" y=\"2\"/>").ok());
}

TEST(XmlParserTest, ReportsLineNumbers) {
  auto r = ParseXml("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status();
}

// -- Serializer ---------------------------------------------------------------

TEST(XmlSerializerTest, RoundTrip) {
  const char* source = "<a x=\"1\"><b>hi &amp; ho</b><c/></a>";
  auto tree = ParseXml(source);
  ASSERT_TRUE(tree.ok());
  std::string out = ToXmlString(*tree);
  auto again = ParseXml(out);
  ASSERT_TRUE(again.ok()) << again.status() << " for: " << out;
  EXPECT_EQ(ToXmlString(*again), out);
  EXPECT_EQ(again->node_count(), tree->node_count());
}

TEST(XmlSerializerTest, EmptyElementUsesSelfClosingForm) {
  XmlTree t;
  t.CreateRoot("a");
  EXPECT_EQ(ToXmlString(t), "<a/>");
}

TEST(XmlSerializerTest, EscapesTextAndAttributes) {
  XmlTree t;
  NodeId root = t.CreateRoot("a");
  t.SetAttribute(root, "k", "<v>");
  t.AppendText(root, "1 < 2");
  std::string out = ToXmlString(t);
  EXPECT_EQ(out, "<a k=\"&lt;v&gt;\">1 &lt; 2</a>");
}

TEST(XmlSerializerTest, IndentedOutputReparses) {
  auto tree = ParseXml("<a><b>t</b><c><d/></c></a>");
  ASSERT_TRUE(tree.ok());
  XmlWriteOptions options;
  options.indent = true;
  std::ostringstream os;
  WriteXml(*tree, tree->root(), os, options);
  auto again = ParseXml(os.str());
  ASSERT_TRUE(again.ok()) << again.status() << " for: " << os.str();
  EXPECT_EQ(again->node_count(), tree->node_count());
}

TEST(XmlSerializerTest, FileRoundTrip) {
  XmlTree t;
  NodeId root = t.CreateRoot("doc");
  t.AppendText(t.AppendElement(root, "v"), "42");
  std::string path = testing::TempDir() + "/secview_roundtrip.xml";
  ASSERT_TRUE(WriteXmlFile(t, path).ok());
  auto back = ParseXmlFile(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(ToXmlString(*back), ToXmlString(t));
}

TEST(XmlParserTest, ParseFileMissing) {
  auto r = ParseXmlFile("/nonexistent/definitely_missing.xml");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace secview
