#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/budget.h"
#include "xml/label_index.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/plan.h"

/// Differential fuzzer for the compiled-plan VM (xpath/vm.cc): every
/// query the parser accepts is lowered with CompilePlan and executed
/// through both the AST-walking evaluator and the bytecode interpreter
/// over a fixed hospital document — plain, with a label index, and
/// under a node budget small enough to trip mid-query. Any divergence
/// in status code, status message, result NodeSet, or EvalCounters
/// traps. The deterministic companion is tests/plan_test.cc; the seed
/// corpus is shared with fuzz_xpath (tests/corpus/xpath/).

namespace {

constexpr char kDoc[] = R"(
  <hospital>
    <dept id="1">
      <clinicalTrial>
        <patientInfo>
          <patient vip="y"><name>carol</name><wardNo>3</wardNo>
            <treatment><trial><bill>900</bill></trial></treatment>
          </patient>
        </patientInfo>
        <test>blood</test>
      </clinicalTrial>
      <patientInfo>
        <patient><name>dave</name><wardNo>4</wardNo>
          <treatment><regular><bill>120</bill><medication>m</medication></regular></treatment>
        </patient>
      </patientInfo>
      <staffInfo><staff><nurse>sue</nurse></staff></staffInfo>
    </dept>
    <dept id="2">
      <patientInfo>
        <patient><name>erin</name><wardNo>3</wardNo>
          <treatment><regular><bill>55</bill></regular></treatment>
        </patient>
      </patientInfo>
    </dept>
  </hospital>
)";

struct Run {
  secview::Status status = secview::Status::OK();
  secview::NodeSet nodes;
  secview::EvalCounters counters;
};

const std::vector<std::pair<std::string, std::string>>& Bindings() {
  static const auto* bindings =
      new std::vector<std::pair<std::string, std::string>>{
          {"w", "3"}, {"name", "carol"}};
  return *bindings;
}

Run RunAst(const secview::XmlTree& doc, const secview::LabelIndex* index,
           const secview::PathPtr& p, const secview::BudgetLimits& limits) {
  secview::XPathEvaluator evaluator = index != nullptr
                                          ? secview::XPathEvaluator(doc, index)
                                          : secview::XPathEvaluator(doc);
  secview::QueryBudget budget(limits, secview::CancelToken());
  if (budget.active()) evaluator.set_budget(&budget);
  auto result =
      evaluator.Evaluate(secview::BindParams(p, Bindings()), doc.root());
  Run run;
  run.status = result.status();
  if (result.ok()) run.nodes = std::move(result).value();
  run.counters = evaluator.counters();
  return run;
}

Run RunCompiled(const secview::XmlTree& doc, const secview::LabelIndex* index,
                const secview::CompiledPlan& plan,
                const secview::BudgetLimits& limits) {
  secview::XPathEvaluator evaluator = index != nullptr
                                          ? secview::XPathEvaluator(doc, index)
                                          : secview::XPathEvaluator(doc);
  secview::QueryBudget budget(limits, secview::CancelToken());
  if (budget.active()) evaluator.set_budget(&budget);
  auto result = evaluator.EvaluateCompiled(plan, doc.root(), Bindings());
  Run run;
  run.status = result.status();
  if (result.ok()) run.nodes = std::move(result).value();
  run.counters = evaluator.counters();
  return run;
}

void CheckSame(const Run& ast, const Run& compiled) {
  if (ast.status.code() != compiled.status.code()) __builtin_trap();
  if (ast.status.message() != compiled.status.message()) __builtin_trap();
  if (ast.nodes != compiled.nodes) __builtin_trap();
  if (ast.counters.nodes_touched != compiled.counters.nodes_touched)
    __builtin_trap();
  if (ast.counters.predicate_evals != compiled.counters.predicate_evals)
    __builtin_trap();
  if (ast.counters.index_scans != compiled.counters.index_scans)
    __builtin_trap();
  if (ast.counters.sort_skips != compiled.counters.sort_skips)
    __builtin_trap();
  if (ast.counters.budget_checks != compiled.counters.budget_checks)
    __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const secview::XmlTree* doc = [] {
    auto parsed = secview::ParseXml(kDoc);
    if (!parsed.ok()) __builtin_trap();
    return new secview::XmlTree(std::move(parsed).value());
  }();
  static const secview::LabelIndex* index = new secview::LabelIndex(*doc);

  std::string_view input(reinterpret_cast<const char*>(data), size);
  secview::XPathParseLimits limits;
  limits.max_depth = 64;
  limits.max_tokens = 4096;
  auto parsed = secview::ParseXPath(input, limits);
  if (!parsed.ok()) return 0;
  secview::PathPtr p = std::move(parsed).value();

  auto plan = secview::CompilePlan(p);
  if (plan == nullptr) __builtin_trap();  // parser accepted, compiler must too
  secview::PlanCompileOptions indexed_options;
  indexed_options.use_index = true;
  auto indexed_plan = secview::CompilePlan(p, indexed_options);
  if (indexed_plan == nullptr) __builtin_trap();

  secview::BudgetLimits unlimited;
  CheckSame(RunAst(*doc, nullptr, p, unlimited),
            RunCompiled(*doc, nullptr, *plan, unlimited));
  CheckSame(RunAst(*doc, index, p, unlimited),
            RunCompiled(*doc, index, *indexed_plan, unlimited));

  // A budget small enough that hostile closures trip mid-evaluation:
  // both paths must stop at the same strided checkpoint.
  secview::BudgetLimits tight;
  tight.max_nodes = 64;
  CheckSame(RunAst(*doc, nullptr, p, tight),
            RunCompiled(*doc, nullptr, *plan, tight));
  return 0;
}
