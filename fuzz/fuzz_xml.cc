#include <cstddef>
#include <cstdint>
#include <string_view>

#include "xml/parser.h"

/// libFuzzer entry point for the XML parser (docs/robustness.md). Tight
/// limits keep each hostile input cheap, so the fuzzer spends its time
/// on structural coverage rather than on legitimately large documents.
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  secview::XmlParseOptions options;
  options.max_depth = 128;
  options.max_name_bytes = 256;
  options.max_attrs = 64;
  options.max_attr_value_bytes = 1024;
  options.max_text_bytes = 4096;
  auto result = secview::ParseXml(input, options);
  (void)result;  // any Status is fine; crashes and leaks are not
  return 0;
}
