#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "xpath/parser.h"
#include "xpath/printer.h"

/// libFuzzer entry point for the XPath parser (docs/robustness.md).
/// Checks the print/re-parse round trip on accepted inputs, the same
/// property tests/fuzz_test.cc sweeps randomly.
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  secview::XPathParseLimits limits;
  limits.max_depth = 64;
  limits.max_tokens = 4096;
  auto result = secview::ParseXPath(input, limits);
  if (result.ok()) {
    std::string printed = secview::ToXPathString(*result);
    auto again = secview::ParseXPath(printed, limits);
    if (!again.ok()) __builtin_trap();  // round-trip property violated
  }
  return 0;
}
