#include <cstddef>
#include <cstdint>
#include <string_view>

#include "dtd/dtd_parser.h"
#include "dtd/normalizer.h"

/// libFuzzer entry point for the DTD parser + normalizer
/// (docs/robustness.md). Inputs that parse are also normalized, since
/// the normalizer consumes attacker-shaped content models too.
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  secview::DtdParseLimits limits;
  limits.max_depth = 32;
  limits.max_decls = 256;
  limits.max_regex_nodes = 4096;
  auto parsed = secview::ParseDtdText(input, limits);
  if (parsed.ok()) {
    auto normalized = secview::NormalizeDtd(*parsed);
    (void)normalized;
  }
  return 0;
}
