// Standalone replay driver, used when the toolchain has no libFuzzer
// (e.g. plain gcc): runs LLVMFuzzerTestOneInput over every file named
// on the command line, plus every prefix truncation of each file —
// enough for the check.sh smoke pass over the seed corpus. With a
// clang toolchain the fuzz targets link the real fuzzer runtime
// instead and this file is not compiled in.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " CORPUS_FILE...\n";
    return 2;
  }
  size_t executions = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::cerr << "cannot open corpus file: " << argv[i] << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = buffer.str();
    const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
    for (size_t len = 0; len <= bytes.size(); ++len) {
      LLVMFuzzerTestOneInput(data, len);
      ++executions;
    }
  }
  std::cout << argv[0] << ": " << executions << " executions, no crashes\n";
  return 0;
}
