// The paper's evaluation scenario (Section 6) end to end: the Adex
// classified-ads DTD, the real-estate + buyer security view, and the four
// evaluation queries Q1-Q4 executed through all three enforcement paths
// (naive annotation, view rewriting, rewriting + DTD optimization).

#include <chrono>
#include <cstdio>

#include "naive/naive.h"
#include "optimize/optimizer.h"
#include "rewrite/rewriter.h"
#include "security/derive.h"
#include "workload/adex.h"
#include "xpath/evaluator.h"
#include "xpath/printer.h"

int main() {
  using namespace secview;

  Dtd dtd = MakeAdexDtd();
  auto spec = MakeAdexSpec(dtd);
  auto view = DeriveSecurityView(*spec);
  if (!spec.ok() || !view.ok()) return 1;

  std::printf("=== Adex security view (published) ===\n%s\n",
              view->ViewDtdString().c_str());

  auto doc = GenerateDocument(dtd, AdexGeneratorOptions(42, 2'000'000, 4));
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  std::printf("generated document: %zu nodes (~%.1f MB)\n\n",
              doc->node_count(),
              static_cast<double>(doc->EstimateSerializedSize()) / 1e6);

  XmlTree annotated = doc->Clone();
  if (!AnnotateAccessibilityAttributes(annotated, *spec).ok()) return 1;

  auto rewriter = QueryRewriter::Create(*view);
  auto optimizer = QueryOptimizer::Create(dtd);
  auto queries = MakeAdexQueries();
  if (!rewriter.ok() || !optimizer.ok() || !queries.ok()) return 1;

  for (const auto& [name, q] : queries->All()) {
    auto rewritten = rewriter->Rewrite(q);
    if (!rewritten.ok()) return 1;
    auto optimized = optimizer->Optimize(*rewritten);
    if (!optimized.ok()) return 1;
    PathPtr naive = NaiveRewrite(q);

    std::printf("%s: %s\n", name, ToXPathString(q).c_str());
    std::printf("  naive    : %s\n", ToXPathString(naive).c_str());
    std::printf("  rewrite  : %s\n", ToXPathString(*rewritten).c_str());
    std::printf("  optimize : %s\n", ToXPathString(*optimized).c_str());

    auto time_it = [](const XmlTree& tree, const PathPtr& p,
                      size_t& count) {
      auto start = std::chrono::steady_clock::now();
      auto result = EvaluateAtRoot(tree, p);
      auto end = std::chrono::steady_clock::now();
      count = result.ok() ? result->size() : 0;
      return std::chrono::duration<double, std::milli>(end - start).count();
    };
    size_t n_naive = 0, n_rewrite = 0, n_optimize = 0;
    double t_naive = time_it(annotated, naive, n_naive);
    double t_rewrite = time_it(*doc, *rewritten, n_rewrite);
    double t_optimize = time_it(*doc, *optimized, n_optimize);
    std::printf(
        "  results: %zu (all paths agree: %s); times: naive %.2fms, "
        "rewrite %.2fms, optimize %.2fms\n\n",
        n_rewrite,
        (n_naive == n_rewrite && n_rewrite == n_optimize) ? "yes" : "NO",
        t_naive, t_rewrite, t_optimize);
  }
  return 0;
}
