// An XMark-style auction site with a *recursive* document DTD
// (description/parlist): recursive DTDs disable the DTD-based optimizer,
// and every '//' rewriting is answered through Section 4.2 unfolding —
// transparently, via the engine. Two user groups share one store:
// bidders (no credit cards, no reserve prices, no closed auctions) and
// auditors (full money trail, anonymous bids).

#include <cstdio>

#include "engine/engine.h"
#include "workload/auction.h"
#include "xpath/printer.h"

int main() {
  using namespace secview;

  auto engine = SecureQueryEngine::Create(MakeAuctionDtd());
  if (!engine.ok()) return 1;
  std::printf("document DTD recursive -> optimizer available: %s\n\n",
              (*engine)->CanOptimize() ? "yes" : "no");

  auto bidder = MakeBidderSpec((*engine)->dtd());
  auto auditor = MakeAuditorSpec((*engine)->dtd());
  if (!bidder.ok() || !auditor.ok()) return 1;
  if (!(*engine)->RegisterPolicy("bidder", std::move(bidder).value()).ok()) {
    return 1;
  }
  if (!(*engine)
           ->RegisterPolicy("auditor", std::move(auditor).value())
           .ok()) {
    return 1;
  }

  auto doc = GenerateDocument((*engine)->dtd(),
                              AuctionGeneratorOptions(42, 120'000));
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  std::printf("generated auction site: %zu nodes, height %d\n\n",
              doc->node_count(), doc->Height());

  struct Probe {
    const char* what;
    const char* query;
  };
  for (const Probe& probe :
       {Probe{"open auctions", "//open_auction"},
        Probe{"reserve prices", "//reserve"},
        Probe{"bidder identities", "//bid/bidder"},
        Probe{"closed sale prices", "//closed_auction/price"},
        Probe{"nested item descriptions", "//listitem//text"},
        Probe{"credit cards", "//credit-card"}}) {
    std::printf("%-26s %s\n", probe.what, probe.query);
    for (const char* policy : {"bidder", "auditor"}) {
      auto result = (*engine)->Execute(policy, *doc, probe.query);
      if (!result.ok()) {
        std::fprintf(stderr, "  %-8s error: %s\n", policy,
                     result.status().ToString().c_str());
        continue;
      }
      std::printf("  %-8s -> %4zu result(s)\n", policy,
                  result->nodes.size());
    }
  }

  // Show one unfolded rewriting: '//' over the recursive view.
  auto rewritten = (*engine)->Rewrite("bidder", "//listitem//text",
                                      /*optimize=*/false, doc->Height());
  if (rewritten.ok()) {
    std::printf(
        "\n'//listitem//text' unfolds (height %d) into a query of size %d\n",
        doc->Height(), PathSize(*rewritten));
  }
  return 0;
}
