// Demonstrates the inference attack of the paper's Example 1.1 and how
// security views close it.
//
// Under label-blocking access control (block "clinicalTrial" but publish
// the full DTD), a nurse can run two individually-innocent queries
//   p1 = //dept//patientInfo/patient/name   (all patients)
//   p2 = //dept/patientInfo/patient/name    (patients NOT in trials)
// and diff the answers to learn exactly who is in a clinical trial.
//
// With a security view, both queries are posed against the view DTD, where
// every patient of the nurse's ward — trial or not — is a patientInfo
// child of dept. The two rewritten queries return identical answers.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "rewrite/rewriter.h"
#include "security/annotator.h"
#include "security/derive.h"
#include "workload/hospital.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace {

std::vector<std::string> Names(const secview::XmlTree& doc,
                               const secview::NodeSet& nodes) {
  std::vector<std::string> out;
  for (secview::NodeId n : nodes) out.push_back(doc.CollectText(n));
  std::sort(out.begin(), out.end());
  return out;
}

void Print(const char* label, const std::vector<std::string>& names) {
  std::printf("%s: {", label);
  for (size_t i = 0; i < names.size(); ++i) {
    std::printf("%s%s", i ? ", " : "", names[i].c_str());
  }
  std::printf("}\n");
}

}  // namespace

int main() {
  using namespace secview;

  auto doc = ParseXml(R"(
    <hospital>
      <dept>
        <clinicalTrial>
          <patientInfo>
            <patient><name>carol</name><wardNo>3</wardNo>
              <treatment><trial><bill>900</bill></trial></treatment>
            </patient>
          </patientInfo>
          <test>double-blind</test>
        </clinicalTrial>
        <patientInfo>
          <patient><name>dave</name><wardNo>3</wardNo>
            <treatment><regular><bill>120</bill><medication>aspirin</medication></regular></treatment>
          </patient>
          <patient><name>fran</name><wardNo>3</wardNo>
            <treatment><regular><bill>80</bill><medication>ibuprofen</medication></regular></treatment>
          </patient>
        </patientInfo>
        <staffInfo/>
      </dept>
    </hospital>
  )");
  if (!doc.ok()) return 1;

  PathPtr p1 = ParseXPath("//dept//patientInfo/patient/name").value();
  PathPtr p2 = ParseXPath("//dept/patientInfo/patient/name").value();

  // --- The attack against naive label blocking -----------------------------
  // Queries evaluated directly over the document (the attacker cannot
  // *name* clinicalTrial, but doesn't need to).
  auto all = EvaluateAtRoot(*doc, p1);
  auto direct = EvaluateAtRoot(*doc, p2);
  if (!all.ok() || !direct.ok()) return 1;
  std::printf("== Label-blocking access control (full DTD exposed) ==\n");
  Print("p1 (//dept//patientInfo/...)", Names(*doc, *all));
  Print("p2 (//dept/patientInfo/...) ", Names(*doc, *direct));
  std::printf("difference reveals the clinical-trial patient: ");
  std::vector<std::string> diff;
  auto a = Names(*doc, *all), b = Names(*doc, *direct);
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(diff));
  for (const std::string& name : diff) std::printf("%s ", name.c_str());
  std::printf("  <-- LEAK\n\n");

  // --- The same two queries under the security view ------------------------
  Dtd dtd = MakeHospitalDtd();
  auto spec = MakeNurseSpec(dtd);
  auto view = DeriveSecurityView(*spec);
  auto rewriter = QueryRewriter::Create(*view);
  if (!spec.ok() || !view.ok() || !rewriter.ok()) return 1;

  std::printf("== Security views ==\n");
  for (auto [label, q] : {std::pair{"p1", p1}, {"p2", p2}}) {
    auto rewritten = rewriter->Rewrite(q);
    if (!rewritten.ok()) return 1;
    PathPtr bound = BindParams(*rewritten, {{"wardNo", "3"}});
    auto result = EvaluateAtRoot(*doc, bound);
    if (!result.ok()) return 1;
    std::printf("%s rewritten: %s\n", label,
                ToXPathString(*rewritten).c_str());
    Print(label, Names(*doc, *result));
  }
  std::printf(
      "identical answers: the inference channel is closed, while trial\n"
      "patients (carol) remain queryable — only their membership is "
      "hidden.\n");
  return 0;
}
