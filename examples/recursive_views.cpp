// Recursive security views (paper Section 4.2): when the hidden region
// participates in recursion, the derived view DTD is itself recursive and
// '//' cannot be rewritten once and for all — the view is unfolded to the
// height of the concrete document first.

#include <cstdio>

#include "rewrite/rewriter.h"
#include "rewrite/unfold.h"
#include "security/derive.h"
#include "security/materializer.h"
#include "security/spec_parser.h"
#include "workload/synthetic.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

int main() {
  using namespace secview;

  RecursiveFixture fixture = MakeRecursiveFixture();
  std::printf("=== Document DTD (recursive) ===\n%s\n",
              fixture.dtd.ToString().c_str());
  std::printf("=== Policy ===\n%s\n", fixture.spec_text.c_str());

  auto spec = ParseAccessSpec(fixture.dtd, fixture.spec_text);
  auto view = DeriveSecurityView(*spec);
  if (!spec.ok() || !view.ok()) return 1;
  std::printf("=== Derived view (recursive: %s) ===\n%s\n",
              view->IsRecursive() ? "yes" : "no",
              view->DebugString().c_str());

  auto doc = ParseXml(R"(
    <doc>
      <section><title>intro</title>
        <meta>
          <section><title>background</title><meta/></section>
          <section><title>related</title>
            <meta><section><title>deep-dive</title><meta/></section></meta>
          </section>
        </meta>
      </section>
    </doc>
  )");
  if (!doc.ok()) return 1;

  auto tv = MaterializeView(*doc, *view, *spec);
  if (!tv.ok()) return 1;
  XmlWriteOptions pretty;
  pretty.indent = true;
  std::printf("=== Materialized view (meta wrappers gone) ===\n%s\n",
              ToXmlString(*tv, pretty).c_str());

  // Rewriting //title requires unfolding to the document height.
  PathPtr q = ParseXPath("//title").value();
  std::printf("document height: %d\n", doc->Height());
  auto rewritten = RewriteForDocument(*view, q, doc->Height());
  if (!rewritten.ok()) {
    std::fprintf(stderr, "%s\n", rewritten.status().ToString().c_str());
    return 1;
  }
  std::printf("//title rewritten over the unfolded view:\n  %s\n",
              ToXPathString(*rewritten).c_str());

  auto result = EvaluateAtRoot(*doc, *rewritten);
  if (!result.ok()) return 1;
  std::printf("titles visible through the view:\n");
  for (NodeId n : *result) {
    std::printf("  %s\n", doc->CollectText(n).c_str());
  }

  // Direct rewriting over the cyclic view is (correctly) refused.
  auto direct = QueryRewriter::Create(*view);
  std::printf("direct rewrite over the cyclic view: %s\n",
              direct.ok() ? "accepted (?)"
                          : direct.status().ToString().c_str());
  return 0;
}
