// Quickstart: the full security-view pipeline on the paper's running
// hospital example (Figs. 1-4) in ~80 lines of user code.
//
//   1. define the document DTD and the nurse access policy,
//   2. derive the security view (view DTD + hidden sigma annotations),
//   3. rewrite a nurse's XPath query over the view into an equivalent
//      query over the document,
//   4. evaluate it — no view is ever materialized.

#include <cstdio>

#include "rewrite/rewriter.h"
#include "security/derive.h"
#include "security/spec_parser.h"
#include "workload/hospital.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

int main() {
  using namespace secview;

  // 1. Document DTD (paper Fig. 1) and access policy (Example 3.1).
  Dtd dtd = MakeHospitalDtd();
  std::printf("=== Document DTD ===\n%s\n", dtd.ToString().c_str());

  auto spec = MakeNurseSpec(dtd);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Nurse access policy ===\n%s\n", spec->ToString().c_str());

  // 2. Derive the security view (Fig. 2). The view DTD is published to
  //    nurses; the sigma annotations stay with the server.
  auto view = DeriveSecurityView(*spec);
  if (!view.ok()) {
    std::fprintf(stderr, "%s\n", view.status().ToString().c_str());
    return 1;
  }
  std::printf("=== View DTD exposed to nurses ===\n%s\n",
              view->ViewDtdString().c_str());
  std::printf("=== Internal sigma annotations (hidden) ===\n%s\n",
              view->DebugString().c_str());

  // 3. A nurse (ward 3) asks for the bills of her patients.
  auto query = ParseXPath("//patient//bill");
  auto rewriter = QueryRewriter::Create(*view);
  if (!query.ok() || !rewriter.ok()) return 1;
  auto rewritten = rewriter->Rewrite(*query);
  if (!rewritten.ok()) {
    std::fprintf(stderr, "%s\n", rewritten.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Query rewriting (Example 4.1) ===\n");
  std::printf("view query     : %s\n", ToXPathString(*query).c_str());
  std::printf("document query : %s\n", ToXPathString(*rewritten).c_str());

  // 4. Evaluate over a concrete document.
  auto doc = ParseXml(R"(
    <hospital>
      <dept>
        <clinicalTrial>
          <patientInfo>
            <patient><name>carol</name><wardNo>3</wardNo>
              <treatment><trial><bill>900</bill></trial></treatment>
            </patient>
          </patientInfo>
          <test>confidential</test>
        </clinicalTrial>
        <patientInfo>
          <patient><name>dave</name><wardNo>3</wardNo>
            <treatment><regular><bill>120</bill><medication>aspirin</medication></regular></treatment>
          </patient>
        </patientInfo>
        <staffInfo><staff><nurse>sue</nurse></staff></staffInfo>
      </dept>
      <dept>
        <clinicalTrial><patientInfo/><test>x</test></clinicalTrial>
        <patientInfo>
          <patient><name>erin</name><wardNo>7</wardNo>
            <treatment><trial><bill>550</bill></trial></treatment>
          </patient>
        </patientInfo>
        <staffInfo/>
      </dept>
    </hospital>
  )");
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  PathPtr bound = BindParams(*rewritten, {{"wardNo", "3"}});
  auto result = EvaluateAtRoot(*doc, bound);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\n=== Bills visible to the ward-3 nurse ===\n");
  for (NodeId n : *result) {
    std::printf("  <bill>%s</bill>\n", doc->CollectText(n).c_str());
  }
  std::printf("(erin's 550 bill is in ward 7 and stays hidden)\n");
  return 0;
}
