// Attribute-level access control through the SecureQueryEngine facade —
// the extension Section 2 of the paper points at ("Attributes ... can be
// easily incorporated"), combined with multiple policies over one
// document store.
//
// Two user groups query the same personnel roster:
//   * "hr"      sees everything;
//   * "manager" sees people but not their salary attribute, and not the
//     performance-review subtree.

#include <cstdio>

#include "dtd/normalizer.h"
#include "engine/engine.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/printer.h"

int main() {
  using namespace secview;

  auto normalized = ParseAndNormalizeDtd(R"(
    <!ELEMENT roster (person)*>
    <!ELEMENT person (name, review)>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT review (rating, notes)>
    <!ELEMENT rating (#PCDATA)>
    <!ELEMENT notes (#PCDATA)>
    <!ATTLIST person id CDATA #REQUIRED
                     salary CDATA #IMPLIED
                     grade (junior | senior) "junior">
  )");
  if (!normalized.ok()) {
    std::fprintf(stderr, "%s\n", normalized.status().ToString().c_str());
    return 1;
  }

  auto engine = SecureQueryEngine::Create(std::move(normalized->dtd));
  if (!engine.ok()) return 1;

  if (!(*engine)->RegisterPolicy("hr", "").ok()) return 1;
  Status manager = (*engine)->RegisterPolicy("manager", R"(
    ann(person, @salary) = N
    ann(person, review)  = N
  )");
  if (!manager.ok()) {
    std::fprintf(stderr, "%s\n", manager.ToString().c_str());
    return 1;
  }

  auto doc = ParseXml(R"(
    <roster>
      <person id="p1" salary="90000" grade="senior">
        <name>ada</name>
        <review><rating>5</rating><notes>ship it</notes></review>
      </person>
      <person id="p2" salary="60000">
        <name>bob</name>
        <review><rating>3</rating><notes>steady</notes></review>
      </person>
    </roster>
  )");
  if (!doc.ok()) return 1;

  for (const std::string& policy : (*engine)->PolicyNames()) {
    std::printf("=== view DTD published to '%s' ===\n%s\n", policy.c_str(),
                (*engine)->PublishedViewDtd(policy).value().c_str());
  }

  struct Probe {
    const char* description;
    const char* query;
  };
  for (const Probe& probe :
       {Probe{"senior staff", "person[@grade = \"senior\"]/name"},
        Probe{"salary probe", "person[@salary = \"90000\"]/name"},
        Probe{"review probe", "person[review/rating = \"5\"]/name"}}) {
    std::printf("query: %s  (%s)\n", probe.query, probe.description);
    for (const std::string& policy : (*engine)->PolicyNames()) {
      auto result = (*engine)->Execute(policy, *doc, probe.query);
      if (!result.ok()) {
        std::fprintf(stderr, "  %-8s error: %s\n", policy.c_str(),
                     result.status().ToString().c_str());
        continue;
      }
      std::printf("  %-8s -> %zu result(s), evaluated as %s\n",
                  policy.c_str(), result->nodes.size(),
                  ToXPathString(result->evaluated).c_str());
      for (NodeId n : result->nodes) {
        std::printf("           %s\n", doc->CollectText(n).c_str());
      }
    }
  }
  std::printf(
      "\nmanagers can filter by the visible grade attribute, but their\n"
      "salary and review probes rewrite to empty queries: the document is\n"
      "never consulted, so nothing can be inferred.\n");
  return 0;
}
