#!/usr/bin/env bash
# Walkthrough of the observability surface on the hospital example:
# audit trail, EXPLAIN plans, span traces, and the Prometheus exporter.
# Everything runs against a throwaway directory; nothing is left behind.
#
# Usage: examples/observability_walkthrough.sh [BUILD_DIR]  (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
SECVIEW="$BUILD_DIR/src/cli/secview"
if [[ ! -x "$SECVIEW" ]]; then
  SECVIEW="$(find "$BUILD_DIR" -name secview -type f -perm -u+x | head -1)"
fi
if [[ -z "$SECVIEW" || ! -x "$SECVIEW" ]]; then
  echo "walkthrough: build the project first (cmake --build $BUILD_DIR)" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

cat > "$WORK/hospital.dtd" <<'EOF'
<!ELEMENT hospital (dept)*>
<!ELEMENT dept (clinicalTrial, patientInfo, staffInfo)>
<!ELEMENT clinicalTrial (patientInfo, test)>
<!ELEMENT patientInfo (patient)*>
<!ELEMENT patient (name, wardNo, treatment)>
<!ELEMENT treatment (trial | regular)>
<!ELEMENT trial (bill)>
<!ELEMENT regular (bill, medication)>
<!ELEMENT staffInfo (staff)*>
<!ELEMENT staff (doctor | nurse)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT wardNo (#PCDATA)>
<!ELEMENT test (#PCDATA)>
<!ELEMENT bill (#PCDATA)>
<!ELEMENT medication (#PCDATA)>
<!ELEMENT doctor (#PCDATA)>
<!ELEMENT nurse (#PCDATA)>
EOF

cat > "$WORK/nurse.spec" <<'EOF'
ann(hospital, dept) = [*/patient/wardNo = $wardNo]
ann(dept, clinicalTrial) = N
ann(clinicalTrial, patientInfo) = Y
ann(treatment, trial) = N
ann(treatment, regular) = N
ann(trial, bill) = Y
ann(regular, bill) = Y
ann(regular, medication) = Y
EOF

cat > "$WORK/doc.xml" <<'EOF'
<hospital><dept>
  <clinicalTrial>
    <patientInfo><patient><name>carol</name><wardNo>3</wardNo>
      <treatment><trial><bill>900</bill></trial></treatment>
    </patient></patientInfo>
    <test>blood</test>
  </clinicalTrial>
  <patientInfo><patient><name>dave</name><wardNo>3</wardNo>
    <treatment><regular><bill>120</bill><medication>m</medication></regular></treatment>
  </patient></patientInfo>
  <staffInfo/>
</dept></hospital>
EOF

banner() { printf '\n======== %s ========\n' "$*"; }

banner "1. EXPLAIN: why does '//patient//bill' return what it returns?"
# No document, no evaluation — just the rewrite decision trail: which
# sigma annotations fire, what gets pruned (and why), what the optimizer
# does on top.
"$SECVIEW" explain --dtd "$WORK/hospital.dtd" --spec "$WORK/nurse.spec" \
  --query 'dept/patientInfo/patient/name | //clinicalTrial'

banner "2. Audited query with a span trace"
# --audit-log appends one secview.audit.v1 record; --trace-json dumps the
# per-phase span tree ('-' = stdout).
"$SECVIEW" query --dtd "$WORK/hospital.dtd" --spec "$WORK/nurse.spec" \
  --xml "$WORK/doc.xml" --query '//patient/name' --bind wardNo=3 \
  --audit-log "$WORK/audit.jsonl" --trace-json "$WORK/trace.json"
echo "trace spans written to trace.json:"
head -c 300 "$WORK/trace.json"; echo " ..."

banner "3. A denied query is audited too"
"$SECVIEW" query --dtd "$WORK/hospital.dtd" --spec "$WORK/nurse.spec" \
  --xml "$WORK/doc.xml" --query '//patient/name' \
  --audit-log "$WORK/audit.jsonl" || true

banner "4. The audit trail"
cat "$WORK/audit.jsonl"
"$SECVIEW" audit-verify --log "$WORK/audit.jsonl"

banner "5. Prometheus metrics"
"$SECVIEW" query --dtd "$WORK/hospital.dtd" --spec "$WORK/nurse.spec" \
  --xml "$WORK/doc.xml" --query '//bill' --bind wardNo=3 \
  --metrics-prom - --metrics-snapshot-dir "$WORK/snap" | tail -30
echo "snapshot dir contents:"; ls "$WORK/snap"

banner "done"
