#include "rewrite/unfold.h"

#include <deque>
#include <unordered_map>

namespace secview {

Result<SecurityView> UnfoldView(const SecurityView& view, int depth) {
  if (depth < 0) {
    return Status::InvalidArgument("unfold depth must be non-negative");
  }

  SecurityView out(view.doc_dtd());

  // BFS over (type, level) pairs, creating one copy per pair.
  auto key = [&](ViewTypeId t, int level) {
    return static_cast<int64_t>(t) * (depth + 2) + level;
  };
  std::unordered_map<int64_t, ViewTypeId> copies;
  std::deque<std::pair<ViewTypeId, int>> queue;

  auto get_copy = [&](ViewTypeId t, int level) {
    auto it = copies.find(key(t, level));
    if (it != copies.end()) return it->second;
    const SecurityView::ViewType& src = view.type(t);
    std::string name = src.name + "@" + std::to_string(level);
    ViewTypeId id = out.AddType(std::move(name), src.is_dummy, src.doc_type,
                                src.base_label);
    out.SetTextHidden(id, src.text_hidden);
    out.SetHiddenAttributes(id, src.hidden_attributes);
    if (src.all_attributes_hidden) out.SetAllAttributesHidden(id);
    copies.emplace(key(t, level), id);
    queue.emplace_back(t, level);
    return id;
  };

  get_copy(view.root(), 0);

  while (!queue.empty()) {
    auto [t, level] = queue.front();
    queue.pop_front();
    ViewTypeId copy_id = copies.at(key(t, level));
    const ViewProduction& src = view.Production(t);
    ViewProduction prod;

    if (level >= depth) {
      // Leaf level: children would live below the document's height.
      prod.kind = src.kind == ViewProduction::Kind::kText
                      ? ViewProduction::Kind::kText
                      : ViewProduction::Kind::kEmpty;
      out.SetProduction(copy_id, std::move(prod));
      continue;
    }

    switch (src.kind) {
      case ViewProduction::Kind::kEmpty:
      case ViewProduction::Kind::kText:
        prod.kind = src.kind;
        break;
      case ViewProduction::Kind::kFields: {
        prod.kind = ViewProduction::Kind::kFields;
        for (const ViewField& f : src.fields) {
          ViewTypeId child = view.FindType(f.child);
          ViewTypeId child_copy = get_copy(child, level + 1);
          prod.fields.push_back(
              ViewField{out.TypeName(child_copy), f.mult, f.sigma});
        }
        break;
      }
      case ViewProduction::Kind::kChoice: {
        prod.kind = ViewProduction::Kind::kChoice;
        for (const ViewChoice::Alt& alt : src.choice.alts) {
          ViewTypeId child = view.FindType(alt.child);
          ViewTypeId child_copy = get_copy(child, level + 1);
          prod.choice.alts.push_back(
              ViewChoice::Alt{out.TypeName(child_copy), alt.sigma});
        }
        break;
      }
    }
    out.SetProduction(copy_id, std::move(prod));
  }

  return out;
}

}  // namespace secview
