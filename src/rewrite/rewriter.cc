#include "rewrite/rewriter.h"

#include <unordered_map>
#include <vector>

#include "rewrite/unfold.h"
#include "xpath/printer.h"

namespace secview {

namespace {

/// rw(p', A) as a per-target map: target view type -> document query
/// landing exactly on that type's nodes. Sorted by target id.
struct Translation {
  std::vector<std::pair<ViewTypeId, PathPtr>> by_target;

  bool empty() const { return by_target.empty(); }

  PathPtr Total() const {
    std::vector<PathPtr> parts;
    parts.reserve(by_target.size());
    for (const auto& [target, q] : by_target) {
      (void)target;
      parts.push_back(q);
    }
    return MakeUnionAll(std::move(parts));
  }

  void Add(ViewTypeId target, PathPtr q) {
    for (auto& [t, existing] : by_target) {
      if (t == target) {
        existing = MakeUnion(existing, std::move(q));
        return;
      }
    }
    by_target.emplace_back(target, std::move(q));
  }
};

/// The memoized dynamic program. Keyed on AST node identity — shared
/// subexpressions (common after parsing) are rewritten once per view
/// type, giving the O(|p| * |Dv|^2) bound.
class RewriteDp {
 public:
  RewriteDp(const SecurityView& view, const ViewReachability& reach)
      : view_(view), reach_(reach) {}

  Result<PathPtr> Run(const PathPtr& p, RewriteStats* stats,
                      QueryBudget* budget) {
    stats_ = stats;
    budget_ = budget;
    explain_ = stats != nullptr && stats->collect_explain;
    PathPtr normalized = NormalizeQualifierSteps(p);
    const Translation& t = Rw(normalized, view_.root());
    if (!budget_status_.ok()) return budget_status_;
    PathPtr out = t.Total();
    if (stats != nullptr) {
      stats->dp_path_nodes = path_memo_.size();
      stats->dp_entries = 0;
      for (const auto& [expr, per_type] : path_memo_) {
        (void)expr;
        stats->dp_entries += per_type.size();
      }
      stats->output_size = PathSize(out);
    }
    return out;
  }

 private:
  const Translation& Rw(const PathPtr& p, ViewTypeId a) {
    auto& per_type = path_memo_[p.get()];
    auto it = per_type.find(a);
    if (it != per_type.end()) return it->second;
    Translation t = Compute(p, a);
    return per_type.emplace(a, std::move(t)).first->second;
  }

  Translation Compute(const PathPtr& p, ViewTypeId a) {
    // One DP cell = one allocation unit. Once the budget trips, cells
    // compute to empty so the whole table drains quickly; Run discards
    // the bogus result and returns the budget's error.
    if (budget_ != nullptr && budget_status_.ok()) {
      budget_status_ = budget_->ChargeMemory(1);
    }
    if (!budget_status_.ok()) return Translation{};
    Translation t = ComputeImpl(p, a);
    if (explain_) {
      RewriteStats::DpCell cell;
      cell.view_type = view_.type(a).name;
      cell.subquery = ToXPathString(p);
      cell.targets.reserve(t.by_target.size());
      for (const auto& [target, q] : t.by_target) {
        (void)q;
        cell.targets.push_back(view_.type(target).name);
      }
      stats_->dp_cells.push_back(std::move(cell));
    }
    return t;
  }

  Translation ComputeImpl(const PathPtr& p, ViewTypeId a) {
    Translation t;
    switch (p->kind) {
      case PathKind::kEmptySet:
        return t;
      case PathKind::kEpsilon:
        t.Add(a, MakeEpsilon());
        return t;
      case PathKind::kLabel: {
        // Case 2: l is a child type of A -> sigma(A, l), else empty.
        for (const SecurityView::Edge& e : view_.Edges(a)) {
          if (view_.type(e.child).base_label == p->label) {
            t.Add(e.child, e.sigma);
            if (explain_) {
              stats_->sigma_firings.push_back({p->label, view_.type(a).name,
                                               view_.type(e.child).name,
                                               ToXPathString(e.sigma)});
            }
          }
        }
        if (explain_ && t.empty()) {
          stats_->prunes.push_back(
              {p->label, view_.type(a).name,
               "no view edge of '" + view_.type(a).name + "' matches label '" +
                   p->label + "' (nonexistence)"});
        }
        return t;
      }
      case PathKind::kWildcard: {
        // Case 3: union of sigma(A, v) over all child types v.
        for (const SecurityView::Edge& e : view_.Edges(a)) {
          t.Add(e.child, e.sigma);
          if (explain_) {
            stats_->sigma_firings.push_back({"*", view_.type(a).name,
                                             view_.type(e.child).name,
                                             ToXPathString(e.sigma)});
          }
        }
        if (explain_ && t.empty()) {
          stats_->prunes.push_back(
              {"*", view_.type(a).name,
               "view type '" + view_.type(a).name + "' has no child types"});
        }
        return t;
      }
      case PathKind::kSlash: {
        // Case 4, per target: U_B rw(p1,A)[B] / rw(p2,B)[.].
        const Translation first = Rw(p->left, a);
        for (const auto& [mid, q1] : first.by_target) {
          const Translation& second = Rw(p->right, mid);
          for (const auto& [target, q2] : second.by_target) {
            t.Add(target, MakeSlash(q1, q2));
          }
        }
        return t;
      }
      case PathKind::kDescOrSelf: {
        // Case 5: precomputed reach(//, A) and recrw(A, B).
        for (ViewTypeId b : reach_.ReachDescOrSelf(a)) {
          const Translation& inner = Rw(p->left, b);
          if (inner.empty()) continue;
          PathPtr prefix = reach_.RecRw(a, b);
          for (const auto& [target, q] : inner.by_target) {
            t.Add(target, MakeSlash(prefix, q));
          }
        }
        return t;
      }
      case PathKind::kUnion: {
        const Translation left = Rw(p->left, a);
        const Translation right = Rw(p->right, a);
        for (const auto& [target, q] : left.by_target) t.Add(target, q);
        for (const auto& [target, q] : right.by_target) t.Add(target, q);
        return t;
      }
      case PathKind::kQualified: {
        // After normalization the qualified path is always epsilon
        // (case 7): .[q] stays at A with the qualifier rewritten at A.
        QualPtr rewritten = RwQual(p->qualifier, a);
        t.Add(a, MakeQualified(MakeEpsilon(), std::move(rewritten)));
        return t;
      }
    }
    return t;
  }

  /// Cases 8-12: qualifier translation at view type `a`.
  QualPtr RwQual(const QualPtr& q, ViewTypeId a) {
    switch (q->kind) {
      case QualKind::kTrue:
      case QualKind::kFalse:
        return q;
      case QualKind::kAttrEq:
      case QualKind::kAttrExists:
        // Attributes the view conceals do not exist for its users: the
        // test is false on the view, so it must not consult the document.
        if (view_.type(a).all_attributes_hidden ||
            view_.IsAttributeHidden(a, q->attr)) {
          if (explain_) {
            stats_->prunes.push_back(
                {"[@" + q->attr + "]", view_.type(a).name,
                 "attribute '" + q->attr +
                     "' is hidden in the view; the test is false"});
          }
          return MakeQualFalse();
        }
        return q;
      case QualKind::kPath: {
        const Translation& t = Rw(q->path, a);
        return MakeQualPath(t.Total());
      }
      case QualKind::kPathEqConst: {
        // Per target: types whose text the view conceals must be compared
        // against the view's (empty) text, not the document's.
        const Translation& t = Rw(q->path, a);
        QualPtr out = MakeQualFalse();
        for (const auto& [target, path] : t.by_target) {
          QualPtr piece;
          if (!view_.type(target).text_hidden) {
            piece = MakeQualEq(path, q->constant, q->is_param);
          } else if (q->constant.empty() && !q->is_param) {
            // The view node's text is always ""; equality degenerates to
            // existence.
            piece = MakeQualPath(path);
          } else {
            if (explain_) {
              stats_->prunes.push_back(
                  {ToXPathString(q->path), view_.type(target).name,
                   "text of '" + view_.type(target).name +
                       "' is concealed in the view; the equality can never "
                       "hold"});
            }
            continue;  // can never hold in the view
          }
          out = MakeQualOr(std::move(out), std::move(piece));
        }
        return out;
      }
      case QualKind::kAnd:
        return MakeQualAnd(RwQual(q->left, a), RwQual(q->right, a));
      case QualKind::kOr:
        return MakeQualOr(RwQual(q->left, a), RwQual(q->right, a));
      case QualKind::kNot:
        return MakeQualNot(RwQual(q->left, a));
    }
    return q;
  }

  const SecurityView& view_;
  const ViewReachability& reach_;
  RewriteStats* stats_ = nullptr;
  QueryBudget* budget_ = nullptr;
  Status budget_status_;
  bool explain_ = false;
  std::unordered_map<const PathExpr*, std::unordered_map<ViewTypeId, Translation>>
      path_memo_;
};

}  // namespace

Result<QueryRewriter> QueryRewriter::Create(const SecurityView& view) {
  SECVIEW_ASSIGN_OR_RETURN(ViewReachability reach,
                           ViewReachability::Compute(view));
  return QueryRewriter(view, std::move(reach));
}

Result<PathPtr> QueryRewriter::Rewrite(const PathPtr& p, RewriteStats* stats,
                                       QueryBudget* budget) const {
  if (!p) return Status::InvalidArgument("null query");
  RewriteDp dp(*view_, reach_);
  return dp.Run(p, stats, budget);
}

Result<PathPtr> RewriteForDocument(const SecurityView& view, const PathPtr& p,
                                   int doc_height) {
  if (!view.IsRecursive()) {
    SECVIEW_ASSIGN_OR_RETURN(QueryRewriter rewriter,
                             QueryRewriter::Create(view));
    return rewriter.Rewrite(p);
  }
  SECVIEW_ASSIGN_OR_RETURN(SecurityView unfolded,
                           UnfoldView(view, doc_height));
  SECVIEW_ASSIGN_OR_RETURN(QueryRewriter rewriter,
                           QueryRewriter::Create(unfolded));
  return rewriter.Rewrite(p);
}

}  // namespace secview
