#ifndef SECVIEW_REWRITE_REWRITER_H_
#define SECVIEW_REWRITE_REWRITER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/result.h"
#include "rewrite/rec_paths.h"
#include "security/security_view.h"
#include "xpath/ast.h"

namespace secview {

/// Size of the rewriting dynamic program, for observability: how many
/// distinct (sub-query, view type) cells the memo table filled, over how
/// many distinct sub-query AST nodes. When `collect_explain` is set
/// before the run, the rewriter additionally records its decision trail
/// (which σ annotations fired, which sub-queries it pruned and why, the
/// DP cells it filled) for EXPLAIN rendering — see engine/explain.h.
struct RewriteStats {
  size_t dp_path_nodes = 0;  ///< distinct sub-queries memoized
  size_t dp_entries = 0;     ///< filled (sub-query, view type) cells
  int output_size = 0;       ///< |rw(p)| (AST nodes of the result)

  /// Opt-in: the trail below allocates strings per DP decision, so the
  /// hot path leaves it off.
  bool collect_explain = false;

  /// One σ annotation substituted for a query step (the paper's case 2/3:
  /// a label or wildcard step at view type `at` resolving to child type
  /// `child` through the view edge's extraction query σ(at, child)).
  struct SigmaFiring {
    std::string step;   ///< the view-query step ("ward", "*")
    std::string at;     ///< view type the step was rewritten at
    std::string child;  ///< view type the σ annotation leads to
    std::string sigma;  ///< serialized σ(at, child)
  };

  /// One sub-query dropped during rewriting: a step no view edge matches
  /// (the view-level analogue of the optimizer's non-existence pruning),
  /// or a qualifier the view decides to false (hidden attribute,
  /// concealed text).
  struct Prune {
    std::string step;    ///< the pruned step / qualifier
    std::string at;      ///< view type it was being rewritten at
    std::string reason;
  };

  /// One filled rw(p', A) cell with its reachable target types, in the
  /// (deterministic) order the DP first computed them.
  struct DpCell {
    std::string view_type;             ///< context type A
    std::string subquery;              ///< serialized sub-query p'
    std::vector<std::string> targets;  ///< reach(p', A)
  };

  std::vector<SigmaFiring> sigma_firings;
  std::vector<Prune> prunes;
  std::vector<DpCell> dp_cells;
};

/// Algorithm rewrite (paper Fig. 6): transforms an XPath query p posed
/// over a security view into an equivalent query p_t over the original
/// document, in O(|p| * |Dv|^2) time, so that p over the (virtual) view
/// and p_t over the document return the same nodes.
///
/// The dynamic program computes, for each sub-query p' and view type A,
/// the local translation rw(p', A) together with reach(p', A). Two
/// faithful-but-careful deviations from the paper's pseudo-code:
///
///  * Qualified steps p[q] are normalized to p / .[q] first, so qualifiers
///    are always rewritten at a definite view type (the paper's case 7).
///  * The translation is kept *per target type*: rw(p', A) maps each
///    B in reach(p', A) to a document query landing exactly on B-typed
///    nodes. The paper's factored form rw(p1,A)/(U_B rw(p2,B)) can leak:
///    a sub-query rewritten for type B may, when evaluated at a node of a
///    different type B', match document nodes that are hidden in the
///    view. Keeping targets separate composes only exact translations and
///    preserves the complexity bound.
///
///  * [p = c] qualifiers whose path reaches a view type that conceals the
///    document's text content (SecurityView::ViewType::text_hidden) are
///    rewritten against the *view's* text semantics (no text), not the
///    document's, closing a text-equality inference channel.
class QueryRewriter {
 public:
  /// Fails on recursive views — unfold first (rewrite/unfold.h) or use
  /// RewriteForDocument below.
  static Result<QueryRewriter> Create(const SecurityView& view);

  QueryRewriter(QueryRewriter&&) = default;
  QueryRewriter& operator=(QueryRewriter&&) = default;

  /// Rewrites a query over the view into the equivalent query over the
  /// document, to be evaluated at the document root. When `stats` is
  /// non-null it receives the DP-table sizes of this run. When `budget`
  /// is non-null, every filled DP cell charges one allocation unit to it
  /// and the run aborts with the budget's error once it trips — bounding
  /// the memo table a hostile query can force the rewriter to build.
  Result<PathPtr> Rewrite(const PathPtr& p, RewriteStats* stats = nullptr,
                          QueryBudget* budget = nullptr) const;

  const SecurityView& view() const { return *view_; }
  const ViewReachability& reachability() const { return reach_; }

 private:
  QueryRewriter(const SecurityView& view, ViewReachability reach)
      : view_(&view), reach_(std::move(reach)) {}

  const SecurityView* view_;
  ViewReachability reach_;
};

/// Convenience for possibly-recursive views: when `view` is recursive it
/// is first unfolded to `doc_height` levels (Section 4.2 — the height of
/// the concrete document bounds the unfolding), then rewritten.
Result<PathPtr> RewriteForDocument(const SecurityView& view, const PathPtr& p,
                                   int doc_height);

}  // namespace secview

#endif  // SECVIEW_REWRITE_REWRITER_H_
