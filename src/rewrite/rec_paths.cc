#include "rewrite/rec_paths.h"

#include <deque>

namespace secview {

namespace {

/// Topological order of the view DTD graph (parents before children).
/// Returns an empty vector when the graph has a cycle.
std::vector<ViewTypeId> TopologicalOrder(const SecurityView& view) {
  const int n = view.NumTypes();
  std::vector<int> indeg(n, 0);
  for (ViewTypeId v = 0; v < n; ++v) {
    for (const SecurityView::Edge& e : view.Edges(v)) ++indeg[e.child];
  }
  std::deque<ViewTypeId> queue;
  for (ViewTypeId v = 0; v < n; ++v) {
    if (indeg[v] == 0) queue.push_back(v);
  }
  std::vector<ViewTypeId> topo;
  topo.reserve(n);
  while (!queue.empty()) {
    ViewTypeId v = queue.front();
    queue.pop_front();
    topo.push_back(v);
    for (const SecurityView::Edge& e : view.Edges(v)) {
      if (--indeg[e.child] == 0) queue.push_back(e.child);
    }
  }
  if (static_cast<int>(topo.size()) != n) topo.clear();  // cycle
  return topo;
}

}  // namespace

Result<ViewReachability> ViewReachability::Compute(const SecurityView& view) {
  std::vector<ViewTypeId> topo = TopologicalOrder(view);
  if (topo.empty() && view.NumTypes() > 0) {
    return Status::FailedPrecondition(
        "recProc requires a non-recursive (DAG) view DTD; unfold the "
        "recursive view first (rewrite/unfold.h)");
  }

  const int n = view.NumTypes();
  ViewReachability result;
  result.reach_.resize(n);
  result.recrw_.assign(n, std::vector<PathPtr>(n));

  for (ViewTypeId a = 0; a < n; ++a) {
    std::vector<PathPtr>& expr = result.recrw_[a];
    expr[a] = MakeEpsilon();
    // One pass in topological order: every reachable node's expression is
    // final before its children consume it.
    for (ViewTypeId x : topo) {
      if (!expr[x]) continue;
      for (const SecurityView::Edge& e : view.Edges(x)) {
        PathPtr step = MakeSlash(expr[x], e.sigma);
        expr[e.child] = expr[e.child] ? MakeUnion(expr[e.child], step)
                                      : std::move(step);
      }
    }
    result.reach_[a].push_back(a);
    for (ViewTypeId b = 0; b < n; ++b) {
      if (b != a && expr[b]) result.reach_[a].push_back(b);
    }
  }
  return result;
}

}  // namespace secview
