#ifndef SECVIEW_REWRITE_REC_PATHS_H_
#define SECVIEW_REWRITE_REC_PATHS_H_

#include <vector>

#include "common/result.h"
#include "security/security_view.h"

namespace secview {

/// Precomputation for the fixed query '//' over a non-recursive (DAG)
/// view DTD — the paper's procedure recProc (Fig. 6). For every view
/// type A it computes
///
///   * reach(//, A): the view types reachable from A via zero or more
///     edges (descendant-or-self, so A itself is included), and
///   * recrw(A, B): an XPath query over the *document* that captures all
///     label paths from A to B in the view DTD, with the sigma
///     annotations substituted along the way. recrw(A, A) = epsilon.
///
/// The paper avoids path-enumeration blowup with symbolic Z_x variables
/// plus a topological substitution pass; the equivalent formulation used
/// here processes types in topological order and reuses the already-built
/// (shared, immutable) expression of each intermediate node:
///
///   expr(A) = epsilon;  expr(y) = U_{x -> y} expr(x) / sigma(x, y)
///
/// so each intermediate node's prefix expression is included once and the
/// result is DAG-shared, keeping recrw(A, B) linear in |Dv|.
class ViewReachability {
 public:
  /// Fails with FailedPrecondition on recursive views (unfold them first;
  /// see rewrite/unfold.h).
  static Result<ViewReachability> Compute(const SecurityView& view);

  /// Descendant-or-self set of `a` (a first, then BFS order).
  const std::vector<ViewTypeId>& ReachDescOrSelf(ViewTypeId a) const {
    return reach_[a];
  }

  /// recrw(a, b); null when b is not reachable from a.
  PathPtr RecRw(ViewTypeId a, ViewTypeId b) const { return recrw_[a][b]; }

 private:
  ViewReachability() = default;

  std::vector<std::vector<ViewTypeId>> reach_;
  std::vector<std::vector<PathPtr>> recrw_;  // [a][b], null if unreachable
};

}  // namespace secview

#endif  // SECVIEW_REWRITE_REC_PATHS_H_
