#ifndef SECVIEW_REWRITE_UNFOLD_H_
#define SECVIEW_REWRITE_UNFOLD_H_

#include "common/result.h"
#include "security/security_view.h"

namespace secview {

/// Unfolds a (recursive) security view into a non-recursive DAG view of
/// `depth` levels (paper Section 4.2). A view type T reachable at level k
/// becomes a copy named "T@k" whose base_label stays T, so user queries
/// still match by the original labels; sigma annotations are unchanged
/// (they are document queries). Edges from level `depth` are cut — a
/// document of height <= depth has no nodes below that level, so the
/// unfolded view is equivalent over such documents.
///
/// The root is at level 0. `depth` must be >= 0; pass the concrete
/// document's height (XmlTree::Height).
Result<SecurityView> UnfoldView(const SecurityView& view, int depth);

}  // namespace secview

#endif  // SECVIEW_REWRITE_UNFOLD_H_
