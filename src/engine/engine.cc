#include "engine/engine.h"

#include <algorithm>

#include "rewrite/unfold.h"
#include "security/derive.h"
#include "security/materializer.h"
#include "security/spec_parser.h"
#include "xpath/parser.h"

namespace secview {

Result<std::unique_ptr<SecureQueryEngine>> SecureQueryEngine::Create(Dtd dtd) {
  if (!dtd.finalized()) {
    SECVIEW_RETURN_IF_ERROR(dtd.Finalize());
  }
  auto owned = std::make_unique<Dtd>(std::move(dtd));
  std::unique_ptr<SecureQueryEngine> engine(
      new SecureQueryEngine(std::move(owned)));
  Result<QueryOptimizer> optimizer = QueryOptimizer::Create(*engine->dtd_);
  if (optimizer.ok()) {
    engine->optimizer_.emplace(std::move(optimizer).value());
  }
  // A recursive document DTD simply disables optimization; everything
  // else still works.
  return engine;
}

Status SecureQueryEngine::RegisterPolicy(const std::string& name,
                                         std::string_view spec_text) {
  SECVIEW_ASSIGN_OR_RETURN(AccessSpec spec,
                           ParseAccessSpec(*dtd_, spec_text));
  return RegisterPolicy(name, std::move(spec));
}

Status SecureQueryEngine::RegisterPolicy(const std::string& name,
                                         AccessSpec spec) {
  if (name.empty()) {
    return Status::InvalidArgument("policy name must not be empty");
  }
  if (policies_.count(name)) {
    return Status::InvalidArgument("policy '" + name +
                                   "' is already registered");
  }
  if (&spec.dtd() != dtd_.get()) {
    return Status::InvalidArgument(
        "specification was built against a different DTD instance");
  }
  SECVIEW_ASSIGN_OR_RETURN(SecurityView view, DeriveSecurityView(spec));

  auto policy = std::make_unique<Policy>(
      Policy{std::move(spec), std::move(view), std::nullopt, {}});
  if (!policy->view.IsRecursive()) {
    SECVIEW_ASSIGN_OR_RETURN(QueryRewriter rewriter,
                             QueryRewriter::Create(policy->view));
    policy->rewriter.emplace(std::move(rewriter));
  }
  policies_.emplace(name, std::move(policy));
  return Status::OK();
}

std::vector<std::string> SecureQueryEngine::PolicyNames() const {
  std::vector<std::string> names;
  names.reserve(policies_.size());
  for (const auto& [name, policy] : policies_) {
    (void)policy;
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

Result<SecureQueryEngine::Policy*> SecureQueryEngine::FindPolicy(
    const std::string& name) {
  auto it = policies_.find(name);
  if (it == policies_.end()) {
    return Status::NotFound("no policy named '" + name + "'");
  }
  return it->second.get();
}

Result<const SecureQueryEngine::Policy*> SecureQueryEngine::FindPolicy(
    const std::string& name) const {
  auto it = policies_.find(name);
  if (it == policies_.end()) {
    return Status::NotFound("no policy named '" + name + "'");
  }
  return static_cast<const Policy*>(it->second.get());
}

Result<const SecurityView*> SecureQueryEngine::View(
    const std::string& policy) const {
  SECVIEW_ASSIGN_OR_RETURN(const Policy* p, FindPolicy(policy));
  return &p->view;
}

Result<std::string> SecureQueryEngine::PublishedViewDtd(
    const std::string& policy) const {
  SECVIEW_ASSIGN_OR_RETURN(const Policy* p, FindPolicy(policy));
  return p->view.ViewDtdString();
}

Result<PathPtr> SecureQueryEngine::Rewrite(const std::string& policy_name,
                                           std::string_view query_text,
                                           bool optimize, int doc_height) {
  SECVIEW_ASSIGN_OR_RETURN(Policy* policy, FindPolicy(policy_name));

  const bool recursive = !policy->rewriter.has_value();
  const int depth = recursive ? doc_height : 0;
  std::string cache_key = std::string(query_text) + "\x1f" +
                          (optimize ? "1" : "0") + "\x1f" +
                          std::to_string(depth);
  auto cached = policy->cache.find(cache_key);
  if (cached != policy->cache.end()) return cached->second;

  SECVIEW_ASSIGN_OR_RETURN(PathPtr query, ParseXPath(query_text));

  PathPtr rewritten;
  if (recursive) {
    SECVIEW_ASSIGN_OR_RETURN(rewritten,
                             RewriteForDocument(policy->view, query, depth));
  } else {
    SECVIEW_ASSIGN_OR_RETURN(rewritten, policy->rewriter->Rewrite(query));
  }
  if (optimize && optimizer_.has_value()) {
    SECVIEW_ASSIGN_OR_RETURN(rewritten, optimizer_->Optimize(rewritten));
  }
  policy->cache.emplace(std::move(cache_key), rewritten);
  return rewritten;
}

Result<ExecuteResult> SecureQueryEngine::Execute(
    const std::string& policy_name, const XmlTree& doc,
    std::string_view query_text, const ExecuteOptions& options) {
  if (doc.empty()) return Status::InvalidArgument("empty document");
  if (doc.label(doc.root()) != dtd_->TypeName(dtd_->root())) {
    return Status::InvalidArgument(
        "document root does not match the engine's DTD");
  }
  // The document height (an O(N) scan) is only needed to pick the
  // unfolding depth of recursive views.
  SECVIEW_ASSIGN_OR_RETURN(Policy* policy, FindPolicy(policy_name));
  const int doc_height = policy->rewriter.has_value() ? 0 : doc.Height();
  SECVIEW_ASSIGN_OR_RETURN(
      PathPtr rewritten,
      Rewrite(policy_name, query_text, /*optimize=*/false, doc_height));

  ExecuteResult result;
  result.rewritten = rewritten;
  PathPtr to_run = rewritten;
  if (options.optimize) {
    SECVIEW_ASSIGN_OR_RETURN(
        to_run,
        Rewrite(policy_name, query_text, /*optimize=*/true, doc_height));
  }
  to_run = BindParams(to_run, options.bindings);
  if (HasUnboundParams(to_run)) {
    return Status::FailedPrecondition(
        "the policy's qualifiers have unbound $parameters; pass them in "
        "ExecuteOptions::bindings");
  }
  result.evaluated = to_run;

  XPathEvaluator evaluator(doc);
  SECVIEW_ASSIGN_OR_RETURN(result.nodes,
                           evaluator.Evaluate(to_run, doc.root()));
  result.work = evaluator.work();
  return result;
}

namespace {

/// Copies the view subtree rooted at `node` under `parent` in `out`.
void CopyViewSubtree(const XmlTree& view_tree, NodeId node, XmlTree& out,
                     NodeId parent) {
  NodeId copy = view_tree.IsText(node)
                    ? out.AppendText(parent, view_tree.text(node))
                    : out.AppendElement(parent, view_tree.label(node));
  out.SetOrigin(copy, view_tree.origin(node));
  for (NodeId c = view_tree.first_child(node); c != kNullNode;
       c = view_tree.next_sibling(c)) {
    CopyViewSubtree(view_tree, c, out, copy);
  }
}

}  // namespace

Result<XmlTree> SecureQueryEngine::ExtractResults(
    const std::string& policy, const XmlTree& doc, const NodeSet& nodes,
    const std::vector<std::pair<std::string, std::string>>& bindings) const {
  SECVIEW_ASSIGN_OR_RETURN(const Policy* p, FindPolicy(policy));
  MaterializeOptions options;
  options.bindings = bindings;
  SECVIEW_ASSIGN_OR_RETURN(XmlTree tv,
                           MaterializeView(doc, p->view, p->spec, options));

  // Map each requested document node to its view node(s).
  std::unordered_map<NodeId, std::vector<NodeId>> by_origin;
  for (NodeId v = 0; v < static_cast<NodeId>(tv.node_count()); ++v) {
    if (tv.IsElement(v)) by_origin[tv.origin(v)].push_back(v);
  }

  XmlTree out;
  NodeId root = out.CreateRoot("results");
  for (NodeId n : nodes) {
    auto it = by_origin.find(n);
    if (it == by_origin.end()) continue;  // not visible in the view
    for (NodeId v : it->second) CopyViewSubtree(tv, v, out, root);
  }
  return out;
}

}  // namespace secview
