#include "engine/engine.h"

#include <algorithm>
#include <chrono>

#include "common/alloc_tracker.h"
#include "common/crash_reporter.h"
#include "common/failpoint.h"
#include "engine/explain.h"
#include "obs/audit.h"
#include "obs/health.h"
#include "obs/plan_profile.h"
#include "obs/policy_stats.h"
#include "obs/serving_stats.h"
#include "obs/slow_query_log.h"
#include "obs/trace_store.h"
#include "rewrite/unfold.h"
#include "security/derive.h"
#include "security/materializer.h"
#include "security/spec_parser.h"
#include "xpath/parser.h"
#include "xpath/plan.h"
#include "xpath/printer.h"
#include "xpath/profiler.h"

namespace secview {

namespace {

/// RAII companion of ScopedTimer for allocation: on destruction charges
/// the phase's thread-local allocation delta into the pre-resolved
/// registry counters and the optional ExecuteStats accumulators (+=, so
/// repeated phases within one execution sum). All four sinks may be
/// null; with the alloc tracker compiled out the delta is zero and the
/// guard is two TLS struct reads.
class ScopedPhaseAlloc {
 public:
  ScopedPhaseAlloc(obs::Counter* bytes_counter, obs::Counter* count_counter,
                   uint64_t* stats_bytes, uint64_t* stats_count)
      : bytes_counter_(bytes_counter),
        count_counter_(count_counter),
        stats_bytes_(stats_bytes),
        stats_count_(stats_count),
        start_(ThreadAllocCounts()) {}
  ~ScopedPhaseAlloc() {
    const AllocCounts now = ThreadAllocCounts();
    const uint64_t bytes = now.bytes - start_.bytes;
    const uint64_t count = now.count - start_.count;
    if (bytes_counter_ != nullptr) bytes_counter_->Add(bytes);
    if (count_counter_ != nullptr) count_counter_->Add(count);
    if (stats_bytes_ != nullptr) *stats_bytes_ += bytes;
    if (stats_count_ != nullptr) *stats_count_ += count;
  }
  ScopedPhaseAlloc(const ScopedPhaseAlloc&) = delete;
  ScopedPhaseAlloc& operator=(const ScopedPhaseAlloc&) = delete;

 private:
  obs::Counter* bytes_counter_;
  obs::Counter* count_counter_;
  uint64_t* stats_bytes_;
  uint64_t* stats_count_;
  AllocCounts start_;
};

}  // namespace

SecureQueryEngine::SecureQueryEngine(std::unique_ptr<Dtd> dtd,
                                     const EngineOptions& options)
    : dtd_(std::move(dtd)), options_(options) {
  hot_.queries = &metrics_.GetCounter("engine.queries");
  hot_.results_returned = &metrics_.GetCounter("engine.results_returned");
  hot_.execute_errors = &metrics_.GetCounter("engine.execute_errors");
  hot_.rejected_deadline = &metrics_.GetCounter("engine.rejected.deadline");
  hot_.rejected_budget = &metrics_.GetCounter("engine.rejected.budget");
  hot_.cache_hits = &metrics_.GetCounter("engine.cache.hits");
  hot_.cache_misses = &metrics_.GetCounter("engine.cache.misses");
  hot_.cache_evictions = &metrics_.GetCounter("engine.cache.evictions");
  hot_.cache_size = &metrics_.GetGauge("engine.cache.size");
  hot_.cache_bytes = &metrics_.GetGauge("engine.cache.bytes");
  hot_.plan_compiles = &metrics_.GetCounter("engine.plan.compiles");
  hot_.plan_fallbacks = &metrics_.GetCounter("engine.plan.fallbacks");
  hot_.plan_cached = &metrics_.GetGauge("engine.plan.cached");
  hot_.plan_cache_bytes = &metrics_.GetGauge("engine.plan.cache_bytes");
  hot_.execute_micros = &metrics_.GetHistogram("engine.execute.micros");
  hot_.alloc_bytes = &metrics_.GetHistogram(
      "engine.alloc.bytes", obs::MetricsRegistry::DefaultByteBounds());
  hot_.alloc_count = &metrics_.GetHistogram(
      "engine.alloc.count", obs::MetricsRegistry::DefaultCountBounds());
  hot_.alloc_parse_bytes = &metrics_.GetCounter("alloc.parse.bytes");
  hot_.alloc_parse_count = &metrics_.GetCounter("alloc.parse.count");
  hot_.alloc_rewrite_bytes = &metrics_.GetCounter("alloc.rewrite.bytes");
  hot_.alloc_rewrite_count = &metrics_.GetCounter("alloc.rewrite.count");
  hot_.alloc_optimize_bytes = &metrics_.GetCounter("alloc.optimize.bytes");
  hot_.alloc_optimize_count = &metrics_.GetCounter("alloc.optimize.count");
  hot_.alloc_evaluate_bytes = &metrics_.GetCounter("alloc.evaluate.bytes");
  hot_.alloc_evaluate_count = &metrics_.GetCounter("alloc.evaluate.count");
  const size_t shards = std::max<size_t>(1, options_.cache_shards);
  hot_.shard_size.reserve(shards);
  hot_.shard_bytes.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    hot_.shard_size.push_back(&metrics_.GetGauge(
        "engine.cache.shard_" + std::to_string(i) + ".size"));
    hot_.shard_bytes.push_back(&metrics_.GetGauge(
        "engine.cache.shard_" + std::to_string(i) + ".bytes"));
  }
}

Result<std::unique_ptr<SecureQueryEngine>> SecureQueryEngine::Create(Dtd dtd) {
  return Create(std::move(dtd), EngineOptions{});
}

Result<std::unique_ptr<SecureQueryEngine>> SecureQueryEngine::Create(
    Dtd dtd, const EngineOptions& options) {
  if (!dtd.finalized()) {
    SECVIEW_RETURN_IF_ERROR(dtd.Finalize());
  }
  auto owned = std::make_unique<Dtd>(std::move(dtd));
  std::unique_ptr<SecureQueryEngine> engine(
      new SecureQueryEngine(std::move(owned), options));
  Result<QueryOptimizer> optimizer = QueryOptimizer::Create(*engine->dtd_);
  if (optimizer.ok()) {
    engine->optimizer_.emplace(std::move(optimizer).value());
  }
  // A recursive document DTD simply disables optimization; everything
  // else still works.
  return engine;
}

Status SecureQueryEngine::RegisterPolicy(const std::string& name,
                                         std::string_view spec_text) {
  SECVIEW_ASSIGN_OR_RETURN(AccessSpec spec,
                           ParseAccessSpec(*dtd_, spec_text));
  return RegisterPolicy(name, std::move(spec));
}

Status SecureQueryEngine::RegisterPolicy(const std::string& name,
                                         AccessSpec spec) {
  if (sealed()) {
    return Status::FailedPrecondition(
        "the engine is sealed (serve phase); register every policy "
        "before Seal() / before attaching a QueryWorkerPool");
  }
  if (name.empty()) {
    return Status::InvalidArgument("policy name must not be empty");
  }
  if (policies_.count(name)) {
    return Status::InvalidArgument("policy '" + name +
                                   "' is already registered");
  }
  if (&spec.dtd() != dtd_.get()) {
    return Status::InvalidArgument(
        "specification was built against a different DTD instance");
  }
  Result<SecurityView> derived = [&]() -> Result<SecurityView> {
    obs::ScopedTimer timer(&metrics_.GetHistogram("phase.derive.micros"));
    return DeriveSecurityView(spec);
  }();
  SECVIEW_ASSIGN_OR_RETURN(SecurityView view, std::move(derived));

  ShardedRewriteCache::Options cache_options;
  cache_options.shards = options_.cache_shards;
  cache_options.capacity = options_.cache_capacity;
  auto policy = std::make_unique<Policy>(std::move(spec), std::move(view),
                                         cache_options);
  if (!policy->view.IsRecursive()) {
    SECVIEW_ASSIGN_OR_RETURN(QueryRewriter rewriter,
                             QueryRewriter::Create(policy->view));
    policy->rewriter.emplace(std::move(rewriter));
  }
  policy->queries_counter =
      &metrics_.GetCounter("policy." + name + ".queries");
  policy->cache_size_gauge =
      &metrics_.GetGauge("policy." + name + ".cache_size");
  policies_.emplace(name, std::move(policy));
  metrics_.GetCounter("engine.policies_registered").Add();
  metrics_.GetGauge("engine.policies")
      .Set(static_cast<int64_t>(policies_.size()));
  return Status::OK();
}

std::vector<std::string> SecureQueryEngine::PolicyNames() const {
  std::vector<std::string> names;
  names.reserve(policies_.size());
  for (const auto& [name, policy] : policies_) {
    (void)policy;
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

Result<SecureQueryEngine::Policy*> SecureQueryEngine::FindPolicy(
    const std::string& name) {
  auto it = policies_.find(name);
  if (it == policies_.end()) {
    return Status::NotFound("no policy named '" + name + "'");
  }
  return it->second.get();
}

Result<const SecureQueryEngine::Policy*> SecureQueryEngine::FindPolicy(
    const std::string& name) const {
  auto it = policies_.find(name);
  if (it == policies_.end()) {
    return Status::NotFound("no policy named '" + name + "'");
  }
  return static_cast<const Policy*>(it->second.get());
}

Result<const SecurityView*> SecureQueryEngine::View(
    const std::string& policy) const {
  SECVIEW_ASSIGN_OR_RETURN(const Policy* p, FindPolicy(policy));
  return &p->view;
}

Result<std::string> SecureQueryEngine::PublishedViewDtd(
    const std::string& policy) const {
  SECVIEW_ASSIGN_OR_RETURN(const Policy* p, FindPolicy(policy));
  return p->view.ViewDtdString();
}

std::shared_ptr<const CompiledPlan> SecureQueryEngine::CompileQueryPlan(
    const PathPtr& query, obs::Trace* trace) {
  static FailPoint& compile_fault =
      FailPointRegistry::Instance().Get(failpoints::kPlanCompile);
  if (compile_fault.Fire()) {
    // Simulated compiler failure: no plan. The evaluator falls back to
    // the AST walk, which returns identical results — degraded speed,
    // never degraded answers (counted in engine.plan.fallbacks).
    return nullptr;
  }
  obs::ScopedSpan span(trace, "compile");
  obs::ScopedTimer timer(&metrics_.GetHistogram("phase.compile.micros"));
  std::shared_ptr<const CompiledPlan> plan = CompilePlan(query);
  if (plan != nullptr) {
    hot_.plan_compiles->Add();
    span.SetAttr("ops", static_cast<uint64_t>(plan->ops.size()));
    span.SetAttr("bytes", static_cast<uint64_t>(plan->byte_size()));
  }
  return plan;
}

void SecureQueryEngine::ApplyPlanCacheDeltas(size_t shard, int64_t bytes_delta,
                                             int64_t plan_bytes_delta,
                                             int64_t plans_delta) {
  if (bytes_delta != 0) {
    hot_.cache_bytes->Add(bytes_delta);
    hot_.shard_bytes[shard % hot_.shard_bytes.size()]->Add(bytes_delta);
  }
  if (plan_bytes_delta != 0) hot_.plan_cache_bytes->Add(plan_bytes_delta);
  if (plans_delta != 0) hot_.plan_cached->Add(plans_delta);
}

Result<CachedQuery> SecureQueryEngine::Prepare(
    Policy& policy, std::string_view query_text, bool optimize, int depth,
    bool compile, obs::Trace* trace, ExecuteStats* stats,
    const XPathParseLimits& parse_limits, QueryBudget* budget) {
  const bool recursive = !policy.rewriter.has_value();
  std::string cache_key = std::string(query_text) + "\x1f" +
                          (optimize ? "1" : "0") + "\x1f" +
                          std::to_string(depth);
  if (std::optional<CachedQuery> cached = policy.cache.Lookup(cache_key)) {
    hot_.cache_hits->Add();
    if (stats != nullptr) stats->cache_hit = true;
    if (compile && cached->plan == nullptr) {
      // First evaluation of a resident entry: pay the compile once and
      // attach the plan so every later hit reuses it.
      ShardedRewriteCache::AttachOutcome attach = policy.cache.AttachPlan(
          cache_key, CompileQueryPlan(cached->query, trace));
      ApplyPlanCacheDeltas(attach.shard, attach.bytes_delta,
                           attach.plan_bytes_delta, attach.plans_delta);
      cached->plan = std::move(attach.plan);
    }
    return *cached;
  }
  hot_.cache_misses->Add();
  if (stats != nullptr) stats->cache_hit = false;

  PathPtr query;
  {
    obs::ScopedSpan span(trace, "parse");
    obs::ScopedTimer timer(&metrics_.GetHistogram("phase.parse.micros"),
                           stats != nullptr ? &stats->parse_micros : nullptr);
    ScopedPhaseAlloc alloc(
        hot_.alloc_parse_bytes, hot_.alloc_parse_count,
        stats != nullptr ? &stats->parse_alloc_bytes : nullptr,
        stats != nullptr ? &stats->parse_alloc_count : nullptr);
    SECVIEW_ASSIGN_OR_RETURN(query, ParseXPath(query_text, parse_limits));
    span.SetAttr("ast_size", PathSize(query));
  }
  if (budget != nullptr) SECVIEW_RETURN_IF_ERROR(budget->Check());

  // Recursive views: unfold to the document height first, then rewrite
  // over the unfolded (now non-recursive) view.
  std::optional<SecurityView> unfolded;
  if (recursive) {
    obs::ScopedSpan span(trace, "unfold");
    obs::ScopedTimer timer(&metrics_.GetHistogram("phase.unfold.micros"));
    SECVIEW_ASSIGN_OR_RETURN(SecurityView u, UnfoldView(policy.view, depth));
    unfolded.emplace(std::move(u));
    span.SetAttr("depth", depth);
    metrics_.GetCounter("rewrite.unfolds").Add();
  }

  PathPtr rewritten;
  {
    obs::ScopedSpan span(trace, "rewrite");
    obs::ScopedTimer timer(
        &metrics_.GetHistogram("phase.rewrite.micros"),
        stats != nullptr ? &stats->rewrite_micros : nullptr);
    ScopedPhaseAlloc alloc(
        hot_.alloc_rewrite_bytes, hot_.alloc_rewrite_count,
        stats != nullptr ? &stats->rewrite_alloc_bytes : nullptr,
        stats != nullptr ? &stats->rewrite_alloc_count : nullptr);
    RewriteStats rstats;
    if (recursive) {
      SECVIEW_ASSIGN_OR_RETURN(QueryRewriter rewriter,
                               QueryRewriter::Create(*unfolded));
      SECVIEW_ASSIGN_OR_RETURN(rewritten,
                               rewriter.Rewrite(query, &rstats, budget));
    } else {
      SECVIEW_ASSIGN_OR_RETURN(
          rewritten, policy.rewriter->Rewrite(query, &rstats, budget));
    }
    span.SetAttr("dp_entries", static_cast<uint64_t>(rstats.dp_entries));
    span.SetAttr("ast_size", rstats.output_size);
    metrics_.GetCounter("rewrite.queries").Add();
    metrics_.GetCounter("rewrite.dp_entries")
        .Add(static_cast<uint64_t>(rstats.dp_entries));
    if (stats != nullptr) {
      stats->rewrite_dp_entries += static_cast<uint64_t>(rstats.dp_entries);
    }
  }

  if (optimize && optimizer_.has_value()) {
    obs::ScopedSpan span(trace, "optimize");
    obs::ScopedTimer timer(
        &metrics_.GetHistogram("phase.optimize.micros"),
        stats != nullptr ? &stats->optimize_micros : nullptr);
    ScopedPhaseAlloc alloc(
        hot_.alloc_optimize_bytes, hot_.alloc_optimize_count,
        stats != nullptr ? &stats->optimize_alloc_bytes : nullptr,
        stats != nullptr ? &stats->optimize_alloc_count : nullptr);
    span.SetAttr("ast_before", PathSize(rewritten));
    OptimizeStats ostats;
    SECVIEW_ASSIGN_OR_RETURN(rewritten,
                             optimizer_->Optimize(rewritten, &ostats, budget));
    span.SetAttr("ast_after", ostats.output_size);
    span.SetAttr("union_prunes", static_cast<uint64_t>(ostats.union_prunes));
    metrics_.GetCounter("optimize.queries").Add();
    metrics_.GetCounter("optimize.dp_entries")
        .Add(static_cast<uint64_t>(ostats.dp_entries));
    metrics_.GetCounter("optimize.nonexistence_prunes")
        .Add(static_cast<uint64_t>(ostats.nonexistence_prunes));
    metrics_.GetCounter("optimize.simulation_tests")
        .Add(static_cast<uint64_t>(ostats.simulation_tests));
    metrics_.GetCounter("optimize.union_prunes")
        .Add(static_cast<uint64_t>(ostats.union_prunes));
    if (stats != nullptr) {
      stats->optimize_dp_entries += static_cast<uint64_t>(ostats.dp_entries);
      stats->nonexistence_prunes +=
          static_cast<uint64_t>(ostats.nonexistence_prunes);
      stats->simulation_tests +=
          static_cast<uint64_t>(ostats.simulation_tests);
      stats->union_prunes += static_cast<uint64_t>(ostats.union_prunes);
    }
  }
  CachedQuery value;
  value.query = std::move(rewritten);
  if (compile) value.plan = CompileQueryPlan(value.query, trace);
  static FailPoint& insert_fault =
      FailPointRegistry::Instance().Get(failpoints::kCacheInsert);
  if (insert_fault.Fire()) {
    // Simulated cache-insert failure (e.g. allocation inside the shard):
    // serve this execution from the locally built entry and simply skip
    // caching it — the next miss recomputes. Degraded hit rate, same
    // answer.
    return value;
  }
  // Two threads that missed on the same key both computed the (same,
  // deterministic) rewriting; Insert keeps whichever landed first and
  // returns the resident value so every caller shares one AST (and, via
  // plan grafting, one compiled plan).
  ShardedRewriteCache::InsertOutcome outcome =
      policy.cache.Insert(cache_key, std::move(value));
  if (outcome.evicted) hot_.cache_evictions->Add();
  if (outcome.inserted) {
    // Size gauges track the insert/evict delta; an eviction and an
    // insert land in the same shard, so they cancel there too.
    if (!outcome.evicted) {
      hot_.cache_size->Add(1);
      hot_.shard_size[outcome.shard % hot_.shard_size.size()]->Add(1);
    }
    policy.cache_size_gauge->Set(static_cast<int64_t>(policy.cache.size()));
  }
  ApplyPlanCacheDeltas(outcome.shard, outcome.bytes_delta,
                       outcome.plan_bytes_delta, outcome.plans_delta);
  return outcome.value;
}

Result<PathPtr> SecureQueryEngine::Rewrite(const std::string& policy_name,
                                           std::string_view query_text,
                                           bool optimize, int doc_height) {
  SECVIEW_ASSIGN_OR_RETURN(Policy* policy, FindPolicy(policy_name));
  const int depth = policy->rewriter.has_value() ? 0 : doc_height;
  SECVIEW_ASSIGN_OR_RETURN(
      CachedQuery prepared,
      Prepare(*policy, query_text, optimize, depth, /*compile=*/false,
              /*trace=*/nullptr, /*stats=*/nullptr, XPathParseLimits{},
              /*budget=*/nullptr));
  return prepared.query;
}

Status SecureQueryEngine::ExecuteInto(const std::string& policy_name,
                                      const XmlTree& doc,
                                      std::string_view query_text,
                                      const ExecuteOptions& options,
                                      ExecuteResult& result) {
  obs::ScopedSpan exec_span(options.trace, "execute");
  exec_span.SetAttr("policy", policy_name);
  exec_span.SetAttr("query", std::string(query_text));

  if (doc.empty()) return Status::InvalidArgument("empty document");
  if (doc.label(doc.root()) != dtd_->TypeName(dtd_->root())) {
    return Status::InvalidArgument(
        "document root does not match the engine's DTD");
  }
  // The document height (an O(N) scan) is only needed to pick the
  // unfolding depth of recursive views.
  SECVIEW_ASSIGN_OR_RETURN(Policy* policy, FindPolicy(policy_name));
  hot_.queries->Add();
  policy->queries_counter->Add();

  // One budget spans the whole execution; it is only installed when a
  // limit or a cancellation token is present, so unlimited executions
  // pay nothing beyond this stack object.
  QueryBudget budget(options.limits, options.cancel);
  QueryBudget* budget_ptr = budget.active() ? &budget : nullptr;

  const int doc_height = policy->rewriter.has_value() ? 0 : doc.Height();

  result.stats.unfold_depth = doc_height;
  // Only the entry that gets *evaluated* carries a compiled plan: with
  // optimization on, that is the second (optimized) preparation.
  SECVIEW_ASSIGN_OR_RETURN(
      CachedQuery prepared,
      Prepare(*policy, query_text, /*optimize=*/false, doc_height,
              /*compile=*/options.use_compiled && !options.optimize,
              options.trace, &result.stats, options.parse_limits, budget_ptr));
  result.rewritten = prepared.query;
  PathPtr to_run = prepared.query;
  std::shared_ptr<const CompiledPlan> plan = std::move(prepared.plan);
  if (options.optimize) {
    // stats.cache_hit ends up describing this (the evaluated) entry.
    SECVIEW_ASSIGN_OR_RETURN(
        prepared,
        Prepare(*policy, query_text, /*optimize=*/true, doc_height,
                /*compile=*/options.use_compiled, options.trace, &result.stats,
                options.parse_limits, budget_ptr));
    to_run = prepared.query;
    plan = std::move(prepared.plan);
  }
  // A cached entry may carry a plan attached by an earlier compiled run;
  // --no-compiled must force the AST walk even then.
  if (!options.use_compiled) plan = nullptr;
  if (budget_ptr != nullptr) SECVIEW_RETURN_IF_ERROR(budget_ptr->Check());
  {
    obs::ScopedSpan span(options.trace, "bind");
    to_run = BindParams(to_run, options.bindings);
  }
  if (HasUnboundParams(to_run)) {
    return Status::FailedPrecondition(
        "the policy's qualifiers have unbound $parameters; pass them in "
        "ExecuteOptions::bindings");
  }
  result.evaluated = to_run;
  result.stats.ast_size_rewritten = PathSize(result.rewritten);
  result.stats.ast_size_evaluated = PathSize(to_run);

  if (options.use_compiled && plan == nullptr) {
    // The caller asked for the compiled path but no plan exists (query
    // not compilable, compile failed or was injected to fail, budget
    // tripped the preparation). The AST walk below returns the same
    // nodes; account the fallback so operators can see the lost speed.
    hot_.plan_fallbacks->Add();
  }
  static FailPoint& alloc_fault =
      FailPointRegistry::Instance().Get(failpoints::kAllocEvaluate);
  if (alloc_fault.Fire()) {
    // Simulated allocation failure entering the evaluate phase. Refuse
    // the query with the same status class a tripped resource budget
    // uses — a correct degraded answer ("try again"), never a partial
    // node set.
    return Status::ResourceExhausted(
        "allocation failure entering evaluation (injected)");
  }
  {
    obs::ScopedSpan span(options.trace, "evaluate");
    obs::ScopedTimer timer(&metrics_.GetHistogram("phase.evaluate.micros"),
                           &result.stats.evaluate_micros);
    ScopedPhaseAlloc alloc(hot_.alloc_evaluate_bytes, hot_.alloc_evaluate_count,
                           &result.stats.evaluate_alloc_bytes,
                           &result.stats.evaluate_alloc_count);
    XPathEvaluator evaluator(doc);
    evaluator.set_metrics(&metrics_);
    evaluator.set_budget(budget_ptr);
    // EXPLAIN ANALYZE mode: opt-in per execution, or always-on while a
    // cross-query /profilez table is attached.
    const bool profile_on = options.profile || plan_profiles_ != nullptr;
    std::optional<PlanProfiler> profiler;
    if (profile_on) {
      profiler.emplace();
      evaluator.set_profiler(&*profiler);
    }
    if (plan != nullptr) {
      // Compiled path: the plan was lowered from the *unbound* AST;
      // $parameters resolve against options.bindings per execution, so
      // one cached plan serves every binding. Pooled per-thread scratch
      // buffers keep the steady state allocation-free.
      SECVIEW_ASSIGN_OR_RETURN(
          result.nodes,
          evaluator.EvaluateCompiled(*plan, doc.root(), options.bindings));
      result.stats.compiled = true;
    } else {
      SECVIEW_ASSIGN_OR_RETURN(result.nodes,
                               evaluator.Evaluate(to_run, doc.root()));
    }
    result.stats.nodes_touched = evaluator.counters().nodes_touched;
    result.stats.predicate_evals = evaluator.counters().predicate_evals;
    span.SetAttr("plan", plan != nullptr ? "compiled" : "ast");
    span.SetAttr("nodes_touched", result.stats.nodes_touched);
    span.SetAttr("predicate_evals", result.stats.predicate_evals);
    span.SetAttr("results", static_cast<uint64_t>(result.nodes.size()));
    if (profile_on) {
      std::shared_ptr<const StepProfile> profile = profiler->TakeRoot();
      result.stats.hot_step = HotStepLine(*profile);
      FlushStepProfileMetrics(*profile, metrics_);
      if (plan_profiles_ != nullptr) {
        plan_profiles_->Record(FlattenStepProfile(*profile));
      }
      if (!result.stats.hot_step.empty()) {
        span.SetAttr("hot_step", result.stats.hot_step);
      }
      result.profile = std::move(profile);
    }
  }
  result.stats.result_count = result.nodes.size();
  hot_.results_returned->Add(static_cast<uint64_t>(result.nodes.size()));
  exec_span.SetAttr("cache",
                    result.stats.cache_hit ? "hit" : "miss");
  return Status::OK();
}

void SecureQueryEngine::AttachServingObservers(obs::SlidingWindowStats* window,
                                               obs::SlowQueryLog* slow_log) {
  window_stats_ = window;
  slow_log_ = slow_log;
}

void SecureQueryEngine::AttachPolicyStats(obs::PolicyStatsTable* policy_stats) {
  policy_stats_ = policy_stats;
}

void SecureQueryEngine::AttachPlanProfiles(
    obs::PlanProfileTable* plan_profiles) {
  plan_profiles_ = plan_profiles;
}

void SecureQueryEngine::AttachTraceStore(obs::RequestTraceStore* traces) {
  trace_store_ = traces;
}

void SecureQueryEngine::AttachHealth(obs::HealthTracker* health) {
  health_ = health;
}

void SecureQueryEngine::RecordServingOutcome(const std::string& policy,
                                             std::string_view query_text,
                                             const Status& status,
                                             uint64_t latency_micros) {
  obs::ServeOutcome outcome = obs::ServeOutcomeForStatus(status);
  if (health_ != nullptr) health_->RecordOutcome(status.ok());
  if (window_stats_ != nullptr) {
    window_stats_->Record(latency_micros, outcome);
  }
  if (policy_stats_ != nullptr) {
    policy_stats_->Record(policy, outcome, latency_micros,
                          /*nodes_touched=*/0, /*alloc_bytes=*/0);
  }
  if (slow_log_ != nullptr) {
    obs::SlowQueryLog::Entry entry;
    entry.unix_micros = obs::AuditEvent::NowUnixMicros();
    entry.policy = policy;
    entry.query = std::string(query_text);
    entry.outcome = outcome;
    entry.latency_micros = latency_micros;
    slow_log_->MaybeRecord(std::move(entry));
  }
}

Result<ExecuteResult> SecureQueryEngine::Execute(
    const std::string& policy_name, const XmlTree& doc,
    std::string_view query_text, const ExecuteOptions& options) {
  ExecuteResult result;
  // Crash-report context: how many queries were in flight when we died.
  ScopedActiveQuery active_query;
  const auto exec_start = std::chrono::steady_clock::now();
  // Serve-mode request tracing: when a trace store is attached and
  // enabled and the caller did not bring its own trace, build a span
  // tree for this request and offer it to the store afterwards. The
  // Trace lives on this stack frame, so worker-pool threads each trace
  // their own requests without synchronization.
  std::optional<obs::Trace> request_trace;
  ExecuteOptions traced_options;
  const ExecuteOptions* opts = &options;
  if (options.trace == nullptr && trace_store_ != nullptr &&
      trace_store_->enabled()) {
    request_trace.emplace("secview.request");
    traced_options = options;
    traced_options.trace = &*request_trace;
    opts = &traced_options;
  }
  Status status;
  {
    ScopedAllocCounter alloc(&result.stats.alloc_bytes,
                             &result.stats.alloc_count);
    status = ExecuteInto(policy_name, doc, query_text, *opts, result);
  }
  const uint64_t latency_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - exec_start)
          .count());
  hot_.execute_micros->Observe(latency_micros);
  hot_.alloc_bytes->Observe(result.stats.alloc_bytes);
  hot_.alloc_count->Observe(result.stats.alloc_count);
  if (health_ != nullptr) health_->RecordOutcome(status.ok());
  if (window_stats_ != nullptr || slow_log_ != nullptr ||
      policy_stats_ != nullptr) {
    obs::ServeOutcome outcome = obs::ServeOutcomeForStatus(status);
    if (window_stats_ != nullptr) {
      window_stats_->Record(latency_micros, outcome);
    }
    if (policy_stats_ != nullptr) {
      policy_stats_->Record(policy_name, outcome, latency_micros,
                            result.stats.nodes_touched,
                            result.stats.alloc_bytes);
    }
    if (slow_log_ != nullptr) {
      obs::SlowQueryLog::Entry entry;
      entry.unix_micros = obs::AuditEvent::NowUnixMicros();
      entry.policy = policy_name;
      entry.query = std::string(query_text);
      entry.outcome = outcome;
      entry.latency_micros = latency_micros;
      entry.cache_hit = result.stats.cache_hit;
      entry.nodes_touched = result.stats.nodes_touched;
      entry.predicate_evals = result.stats.predicate_evals;
      entry.results = static_cast<uint64_t>(result.stats.result_count);
      entry.alloc_bytes = result.stats.alloc_bytes;
      entry.hot_step = result.stats.hot_step;
      slow_log_->MaybeRecord(std::move(entry));
    }
  }
  if (request_trace.has_value()) {
    request_trace->root().SetAttr("alloc_bytes", result.stats.alloc_bytes);
    request_trace->root().SetAttr("alloc_count", result.stats.alloc_count);
    if (!result.stats.hot_step.empty()) {
      request_trace->root().SetAttr("hot_step", result.stats.hot_step);
    }
    trace_store_->Offer(policy_name, query_text, status, latency_micros,
                        *request_trace);
  }
  if (options.audit != nullptr) {
    obs::AuditEvent event;
    event.unix_micros = obs::AuditEvent::NowUnixMicros();
    event.policy = policy_name;
    event.query = std::string(query_text);
    if (!status.ok()) {
      event.outcome = obs::AuditOutcomeForStatus(status);
      event.status = StatusCodeToString(status.code());
      event.error = status.message();
    }
    // A failed execution still reports whatever provenance it produced
    // before failing (e.g. the rewritten query when binding failed).
    if (result.rewritten != nullptr) {
      event.rewritten = ToXPathString(result.rewritten);
    }
    if (result.evaluated != nullptr) {
      event.evaluated = ToXPathString(result.evaluated);
    }
    const ExecuteStats& s = result.stats;
    event.results = static_cast<uint64_t>(s.result_count);
    event.cache_hit = s.cache_hit;
    event.unfold_depth = s.unfold_depth;
    event.ast_size_rewritten = s.ast_size_rewritten;
    event.ast_size_evaluated = s.ast_size_evaluated;
    event.parse_micros = s.parse_micros;
    event.rewrite_micros = s.rewrite_micros;
    event.optimize_micros = s.optimize_micros;
    event.evaluate_micros = s.evaluate_micros;
    event.nodes_touched = s.nodes_touched;
    event.predicate_evals = s.predicate_evals;
    event.rewrite_dp_entries = s.rewrite_dp_entries;
    event.optimize_dp_entries = s.optimize_dp_entries;
    event.nonexistence_prunes = s.nonexistence_prunes;
    event.simulation_tests = s.simulation_tests;
    event.union_prunes = s.union_prunes;
    options.audit->Record(event);
    metrics_.GetCounter("audit.events").Add();
  }
  if (!status.ok()) {
    hot_.execute_errors->Add();
    if (status.IsDeadlineExceeded()) hot_.rejected_deadline->Add();
    if (status.IsResourceExhausted()) hot_.rejected_budget->Add();
    return status;
  }
  if (options.explain != nullptr) {
    ExplainOptions explain_options;
    explain_options.optimize = options.optimize;
    // Same depth selection as the Prepare path: the document height is
    // only meaningful (and only worth the O(N) scan) for recursive
    // views, and it makes the explain's reported unfold depth match
    // result.stats.unfold_depth.
    SECVIEW_ASSIGN_OR_RETURN(Policy * policy, FindPolicy(policy_name));
    explain_options.doc_height =
        policy->rewriter.has_value() ? 0 : doc.Height();
    SECVIEW_ASSIGN_OR_RETURN(
        *options.explain, Explain(policy_name, query_text, explain_options));
  }
  return result;
}

Result<QueryExplain> SecureQueryEngine::Explain(const std::string& policy,
                                                std::string_view query_text) {
  return Explain(policy, query_text, ExplainOptions{});
}

Result<QueryExplain> SecureQueryEngine::Explain(
    const std::string& policy_name, std::string_view query_text,
    const ExplainOptions& options) {
  SECVIEW_ASSIGN_OR_RETURN(Policy* policy, FindPolicy(policy_name));
  metrics_.GetCounter("engine.explains").Add();
  // Reuse the Prepare path's rewriter/optimizer: no per-explain rebuild,
  // and EXPLAIN describes exactly the objects Execute runs with. Safe
  // while serving — both are const, and the sharded cache is never
  // touched (the trail must re-run the DP with collect_explain anyway).
  PreparedExplainInputs prepared;
  prepared.rewriter =
      policy->rewriter.has_value() ? &*policy->rewriter : nullptr;
  prepared.optimizer = optimizer_.has_value() ? &*optimizer_ : nullptr;
  SECVIEW_ASSIGN_OR_RETURN(
      QueryExplain explain,
      ExplainQuery(*dtd_, policy->view, query_text, options, prepared));
  explain.policy = policy_name;
  return explain;
}

namespace {

/// Copies the view subtree rooted at `node` under `parent` in `out`.
void CopyViewSubtree(const XmlTree& view_tree, NodeId node, XmlTree& out,
                     NodeId parent) {
  NodeId copy = view_tree.IsText(node)
                    ? out.AppendText(parent, view_tree.text(node))
                    : out.AppendElement(parent, view_tree.label(node));
  out.SetOrigin(copy, view_tree.origin(node));
  for (NodeId c = view_tree.first_child(node); c != kNullNode;
       c = view_tree.next_sibling(c)) {
    CopyViewSubtree(view_tree, c, out, copy);
  }
}

}  // namespace

Result<XmlTree> SecureQueryEngine::ExtractResults(
    const std::string& policy, const XmlTree& doc, const NodeSet& nodes,
    const std::vector<std::pair<std::string, std::string>>& bindings) const {
  SECVIEW_ASSIGN_OR_RETURN(const Policy* p, FindPolicy(policy));
  MaterializeOptions options;
  options.bindings = bindings;
  SECVIEW_ASSIGN_OR_RETURN(XmlTree tv,
                           MaterializeView(doc, p->view, p->spec, options));

  // Map each requested document node to its view node(s).
  std::unordered_map<NodeId, std::vector<NodeId>> by_origin;
  for (NodeId v = 0; v < static_cast<NodeId>(tv.node_count()); ++v) {
    if (tv.IsElement(v)) by_origin[tv.origin(v)].push_back(v);
  }

  XmlTree out;
  NodeId root = out.CreateRoot("results");
  for (NodeId n : nodes) {
    auto it = by_origin.find(n);
    if (it == by_origin.end()) continue;  // not visible in the view
    for (NodeId v : it->second) CopyViewSubtree(tv, v, out, root);
  }
  return out;
}

}  // namespace secview
