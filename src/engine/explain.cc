#include "engine/explain.h"

#include <optional>

#include "rewrite/unfold.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace secview {

namespace {

void AppendIndented(std::string& out, const std::string& text,
                    const char* indent) {
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    out += indent;
    out.append(text, start, end - start);
    out += '\n';
    start = end + 1;
  }
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace

std::string QueryExplain::ToText() const {
  std::string out;
  out += "explain secview.explain.v1\n";
  out += "policy: " + (policy.empty() ? std::string("-") : policy) + "\n";
  out += "query: " + query + "\n";
  out += "view: " + std::to_string(view_types.size()) +
         " types, recursive=" + (view_recursive ? "yes" : "no") + "\n";
  if (view_recursive) {
    out += "unfold: depth=" + std::to_string(unfold_depth) +
           (depth_defaulted ? " (default)" : " (document height)") + "\n";
  }

  out += "rewrite:\n";
  out += "  dp: " + std::to_string(rewrite.dp_path_nodes) + " subqueries, " +
         std::to_string(rewrite.dp_entries) + " (subquery, view type) cells\n";
  out += "  sigma annotations fired (" +
         std::to_string(rewrite.sigma_firings.size()) + "):\n";
  for (const RewriteStats::SigmaFiring& f : rewrite.sigma_firings) {
    out += "    [rewrite/sigma] step '" + f.step + "' at '" + f.at + "' -> '" +
           f.child + "' via " + f.sigma + "\n";
  }
  out += "  prunes (" + std::to_string(rewrite.prunes.size()) + "):\n";
  for (const RewriteStats::Prune& p : rewrite.prunes) {
    out += "    [rewrite/prune] step '" + p.step + "' at '" + p.at + "': " +
           p.reason + "\n";
  }
  out += "  dp cells (" + std::to_string(rewrite.dp_cells.size()) + "):\n";
  for (const RewriteStats::DpCell& c : rewrite.dp_cells) {
    out += "    rw(" + c.subquery + ", " + c.view_type + ") -> {" +
           JoinNames(c.targets) + "}\n";
  }
  out += "rewritten query (size " + std::to_string(rewrite.output_size) +
         "):\n";
  out += "  " + rewritten_xpath + "\n";

  if (!optimize_requested) {
    out += "optimize: skipped (not requested)\n";
  } else if (!optimizer_available) {
    out += "optimize: skipped (document DTD is recursive; prunes happen at "
           "the rewrite level above)\n";
  } else {
    out += "optimize:\n";
    out += "  dp: " + std::to_string(optimize.dp_path_nodes) +
           " subqueries, " + std::to_string(optimize.dp_entries) +
           " (subquery, type) cells\n";
    out += "  counts: nonexistence=" +
           std::to_string(optimize.nonexistence_prunes) +
           " simulation_tests=" + std::to_string(optimize.simulation_tests) +
           " union=" + std::to_string(optimize.union_prunes) + "\n";
    out += "  prunes (" + std::to_string(optimize.prune_trail.size()) + "):\n";
    for (const OptimizeStats::Prune& p : optimize.prune_trail) {
      out += "    [optimize/" + p.kind + "] at '" + p.at + "': " + p.detail +
             "\n";
    }
  }

  const int final_size =
      optimize_ran() ? optimize.output_size : rewrite.output_size;
  out += "final query (size " + std::to_string(final_size) + "):\n";
  out += "  " + final_xpath + "\n";
  out += "view dtd:\n";
  AppendIndented(out, view_dtd, "  ");
  return out;
}

obs::Json QueryExplain::ToJson() const {
  obs::Json j = obs::Json::Object();
  j.Set("schema", obs::Json("secview.explain.v1"));
  j.Set("policy", policy);
  j.Set("query", query);

  obs::Json view = obs::Json::Object();
  view.Set("recursive", view_recursive);
  view.Set("num_types", static_cast<uint64_t>(view_types.size()));
  obs::Json types = obs::Json::Array();
  for (const std::string& name : view_types) types.Append(obs::Json(name));
  view.Set("types", std::move(types));
  view.Set("dtd", view_dtd);
  j.Set("view", std::move(view));

  if (view_recursive) {
    j.Set("unfold", obs::Json::Object()
                        .Set("depth", unfold_depth)
                        .Set("defaulted", depth_defaulted));
  }

  obs::Json rw = obs::Json::Object();
  rw.Set("dp_path_nodes", static_cast<uint64_t>(rewrite.dp_path_nodes));
  rw.Set("dp_entries", static_cast<uint64_t>(rewrite.dp_entries));
  rw.Set("output_size", rewrite.output_size);
  obs::Json firings = obs::Json::Array();
  for (const RewriteStats::SigmaFiring& f : rewrite.sigma_firings) {
    firings.Append(obs::Json::Object()
                       .Set("step", f.step)
                       .Set("at", f.at)
                       .Set("child", f.child)
                       .Set("sigma", f.sigma));
  }
  rw.Set("sigma_firings", std::move(firings));
  obs::Json rprunes = obs::Json::Array();
  for (const RewriteStats::Prune& p : rewrite.prunes) {
    rprunes.Append(obs::Json::Object()
                       .Set("step", p.step)
                       .Set("at", p.at)
                       .Set("reason", p.reason));
  }
  rw.Set("prunes", std::move(rprunes));
  obs::Json cells = obs::Json::Array();
  for (const RewriteStats::DpCell& c : rewrite.dp_cells) {
    obs::Json targets = obs::Json::Array();
    for (const std::string& t : c.targets) targets.Append(obs::Json(t));
    cells.Append(obs::Json::Object()
                     .Set("at", c.view_type)
                     .Set("subquery", c.subquery)
                     .Set("targets", std::move(targets)));
  }
  rw.Set("dp_cells", std::move(cells));
  j.Set("rewrite", std::move(rw));
  j.Set("rewritten", rewritten_xpath);

  obs::Json opt = obs::Json::Object();
  opt.Set("available", optimizer_available);
  opt.Set("requested", optimize_requested);
  opt.Set("ran", optimize_ran());
  if (optimize_ran()) {
    opt.Set("dp_path_nodes", static_cast<uint64_t>(optimize.dp_path_nodes));
    opt.Set("dp_entries", static_cast<uint64_t>(optimize.dp_entries));
    opt.Set("nonexistence_prunes",
            static_cast<uint64_t>(optimize.nonexistence_prunes));
    opt.Set("simulation_tests",
            static_cast<uint64_t>(optimize.simulation_tests));
    opt.Set("union_prunes", static_cast<uint64_t>(optimize.union_prunes));
    opt.Set("output_size", optimize.output_size);
    obs::Json oprunes = obs::Json::Array();
    for (const OptimizeStats::Prune& p : optimize.prune_trail) {
      oprunes.Append(obs::Json::Object()
                         .Set("kind", p.kind)
                         .Set("at", p.at)
                         .Set("detail", p.detail));
    }
    opt.Set("prunes", std::move(oprunes));
  }
  j.Set("optimize", std::move(opt));
  j.Set("final", final_xpath);
  return j;
}

namespace {

/// Shared body of the two ExplainQuery overloads. `prepared_rewriter`
/// and `prepared_optimizer` are reused when given; when
/// `optimizer_known` is true their availability is taken as-is instead
/// of probing QueryOptimizer::Create (the engine already knows).
Result<QueryExplain> ExplainQueryImpl(const Dtd& dtd, const SecurityView& view,
                                      std::string_view query_text,
                                      const ExplainOptions& options,
                                      const QueryRewriter* prepared_rewriter,
                                      const QueryOptimizer* prepared_optimizer,
                                      bool optimizer_known) {
  QueryExplain out;
  out.query = std::string(query_text);
  out.optimize_requested = options.optimize;
  SECVIEW_ASSIGN_OR_RETURN(PathPtr query, ParseXPath(query_text));

  out.view_recursive = view.IsRecursive();
  const SecurityView* effective = &view;
  std::optional<SecurityView> unfolded;
  if (out.view_recursive) {
    out.depth_defaulted = options.doc_height <= 0;
    out.unfold_depth =
        out.depth_defaulted ? kDefaultExplainUnfoldDepth : options.doc_height;
    SECVIEW_ASSIGN_OR_RETURN(SecurityView u,
                             UnfoldView(view, out.unfold_depth));
    unfolded.emplace(std::move(u));
    effective = &*unfolded;
  }
  out.view_dtd = effective->ViewDtdString();
  out.view_types.reserve(effective->NumTypes());
  for (ViewTypeId id = 0; id < effective->NumTypes(); ++id) {
    out.view_types.push_back(effective->TypeName(id));
  }

  out.rewrite.collect_explain = true;
  PathPtr rewritten;
  // A prepared rewriter only applies to non-recursive views (recursive
  // ones are rewritten over the per-depth unfolded view built above).
  if (!out.view_recursive && prepared_rewriter != nullptr) {
    SECVIEW_ASSIGN_OR_RETURN(rewritten,
                             prepared_rewriter->Rewrite(query, &out.rewrite));
  } else {
    SECVIEW_ASSIGN_OR_RETURN(QueryRewriter rewriter,
                             QueryRewriter::Create(*effective));
    SECVIEW_ASSIGN_OR_RETURN(rewritten, rewriter.Rewrite(query, &out.rewrite));
  }
  out.rewritten_xpath = ToXPathString(rewritten);
  out.final_xpath = out.rewritten_xpath;

  std::optional<QueryOptimizer> local_optimizer;
  const QueryOptimizer* optimizer = prepared_optimizer;
  if (optimizer_known) {
    out.optimizer_available = optimizer != nullptr;
  } else {
    Result<QueryOptimizer> created = QueryOptimizer::Create(dtd);
    out.optimizer_available = created.ok();
    if (created.ok()) {
      local_optimizer.emplace(std::move(created).value());
      optimizer = &*local_optimizer;
    }
  }
  if (out.optimize_ran()) {
    out.optimize.collect_explain = true;
    SECVIEW_ASSIGN_OR_RETURN(PathPtr optimized,
                             optimizer->Optimize(rewritten, &out.optimize));
    out.final_xpath = ToXPathString(optimized);
  }
  return out;
}

}  // namespace

Result<QueryExplain> ExplainQuery(const Dtd& dtd, const SecurityView& view,
                                  std::string_view query_text,
                                  const ExplainOptions& options) {
  return ExplainQueryImpl(dtd, view, query_text, options,
                          /*prepared_rewriter=*/nullptr,
                          /*prepared_optimizer=*/nullptr,
                          /*optimizer_known=*/false);
}

Result<QueryExplain> ExplainQuery(const Dtd& dtd, const SecurityView& view,
                                  std::string_view query_text,
                                  const ExplainOptions& options,
                                  const PreparedExplainInputs& prepared) {
  return ExplainQueryImpl(dtd, view, query_text, options, prepared.rewriter,
                          prepared.optimizer, /*optimizer_known=*/true);
}

}  // namespace secview
