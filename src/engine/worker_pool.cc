#include "engine/worker_pool.h"

#include <algorithm>
#include <memory>

namespace secview {

QueryWorkerPool::QueryWorkerPool(SecureQueryEngine& engine)
    : QueryWorkerPool(engine, Options{}) {}

QueryWorkerPool::QueryWorkerPool(SecureQueryEngine& engine,
                                 const Options& options)
    : engine_(engine),
      tasks_counter_(&engine.metrics().GetCounter("engine.pool.tasks")),
      batches_counter_(&engine.metrics().GetCounter("engine.pool.batches")),
      queue_depth_gauge_(&engine.metrics().GetGauge("engine.pool.queue_depth")),
      threads_gauge_(&engine.metrics().GetGauge("engine.pool.threads")) {
  // Serving from many threads requires the policy set to be fixed.
  engine.Seal();
  size_t n = options.threads;
  if (n == 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  threads_gauge_->Set(static_cast<int64_t>(n));
}

QueryWorkerPool::~QueryWorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
  threads_gauge_->Set(0);
}

void QueryWorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_depth_gauge_->Add(-1);
    tasks_counter_->Add();
    task();
  }
}

std::vector<Result<ExecuteResult>> QueryWorkerPool::ExecuteBatch(
    const std::string& policy, const XmlTree& doc,
    const std::vector<std::string>& queries, const ExecuteOptions& options) {
  batches_counter_->Add();

  // Per-batch completion state, shared with the task closures. A
  // shared_ptr keeps it alive even if a caller could abandon the wait
  // (it cannot today, but the tasks must never dangle).
  struct BatchState {
    std::vector<Result<ExecuteResult>> results;
    std::mutex mu;
    std::condition_variable done_cv;
    size_t remaining = 0;
  };
  auto state = std::make_shared<BatchState>();
  state->results.resize(queries.size(),
                        Status::Internal("batch slot not filled"));
  state->remaining = queries.size();
  if (queries.empty()) return std::move(state->results);

  // Trace and explain are single-execution outputs; a batch would write
  // them from many threads at once, so they are dropped here (the
  // bindings/optimize/audit parts of the options apply per task).
  ExecuteOptions task_options = options;
  task_options.trace = nullptr;
  task_options.explain = nullptr;

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < queries.size(); ++i) {
      queue_.emplace_back([this, state, &policy, &doc, &queries, task_options,
                           i] {
        Result<ExecuteResult> result =
            engine_.Execute(policy, doc, queries[i], task_options);
        std::lock_guard<std::mutex> slot_lock(state->mu);
        state->results[i] = std::move(result);
        if (--state->remaining == 0) state->done_cv.notify_all();
      });
    }
  }
  queue_depth_gauge_->Add(static_cast<int64_t>(queries.size()));
  work_available_.notify_all();

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->remaining == 0; });
  return std::move(state->results);
}

std::vector<Result<ExecuteResult>> SecureQueryEngine::ExecuteBatch(
    const std::string& policy, const XmlTree& doc,
    const std::vector<std::string>& queries, const ExecuteOptions& options,
    size_t threads) {
  Seal();
  if (threads == 1) {
    // Inline serial path: same semantics (input order, per-slot
    // failures, trace/explain dropped) without thread startup.
    ExecuteOptions task_options = options;
    task_options.trace = nullptr;
    task_options.explain = nullptr;
    std::vector<Result<ExecuteResult>> results;
    results.reserve(queries.size());
    for (const std::string& query : queries) {
      results.push_back(Execute(policy, doc, query, task_options));
    }
    return results;
  }
  QueryWorkerPool::Options pool_options;
  pool_options.threads = threads;
  QueryWorkerPool pool(*this, pool_options);
  return pool.ExecuteBatch(policy, doc, queries, options);
}

}  // namespace secview
