#include "engine/worker_pool.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "common/failpoint.h"
#include "obs/audit.h"

namespace secview {

namespace {

/// Audit record for a task the pool disposed of *without* executing it
/// (shed at submission, expired or cancelled in the queue). The engine
/// never saw the query, so the pool writes the trail entry itself,
/// through the same outcome mapping Execute uses.
void RecordPoolAudit(obs::AuditSink* sink, const std::string& policy,
                     const std::string& query, const Status& status) {
  if (sink == nullptr) return;
  obs::AuditEvent event;
  event.unix_micros = obs::AuditEvent::NowUnixMicros();
  event.policy = policy;
  event.query = query;
  event.outcome = obs::AuditOutcomeForStatus(status);
  event.status = StatusCodeToString(status.code());
  event.error = status.message();
  sink->Record(event);
}

}  // namespace

QueryWorkerPool::QueryWorkerPool(SecureQueryEngine& engine)
    : QueryWorkerPool(engine, Options{}) {}

QueryWorkerPool::QueryWorkerPool(SecureQueryEngine& engine,
                                 const Options& options)
    : engine_(engine),
      options_(options),
      tasks_counter_(&engine.metrics().GetCounter("engine.pool.tasks")),
      batches_counter_(&engine.metrics().GetCounter("engine.pool.batches")),
      shed_counter_(&engine.metrics().GetCounter("engine.pool.shed")),
      queue_depth_gauge_(&engine.metrics().GetGauge("engine.pool.queue_depth")),
      threads_gauge_(&engine.metrics().GetGauge("engine.pool.threads")) {
  // Serving from many threads requires the policy set to be fixed.
  engine.Seal();
  size_t n = options.threads;
  if (n == 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  threads_gauge_->Set(static_cast<int64_t>(n));
}

QueryWorkerPool::~QueryWorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
  threads_gauge_->Set(0);
}

void QueryWorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_depth_gauge_->Add(-1);
    tasks_counter_->Add();
    task();
  }
}

std::vector<Result<ExecuteResult>> QueryWorkerPool::ExecuteBatch(
    const std::string& policy, const XmlTree& doc,
    const std::vector<std::string>& queries, const ExecuteOptions& options) {
  batches_counter_->Add();

  // Per-batch completion state, shared with the task closures. A
  // shared_ptr keeps it alive even if a caller could abandon the wait
  // (it cannot today, but the tasks must never dangle).
  struct BatchState {
    std::vector<Result<ExecuteResult>> results;
    std::mutex mu;
    std::condition_variable done_cv;
    size_t remaining = 0;
  };
  auto state = std::make_shared<BatchState>();
  state->results.resize(queries.size(),
                        Status::Internal("batch slot not filled"));
  state->remaining = queries.size();
  if (queries.empty()) return std::move(state->results);

  // Trace and explain are single-execution outputs; a batch would write
  // them from many threads at once, so they are dropped here (the
  // bindings/optimize/audit parts of the options apply per task).
  ExecuteOptions task_options = options;
  task_options.trace = nullptr;
  task_options.explain = nullptr;

  // The deadline is absolute from here on: time a task spends queued
  // counts against it. The pool's own cancellation token replaces any
  // caller-provided one (CancelAll must reach every task it fans out).
  const uint64_t deadline_ms = options.limits.deadline_ms;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
  task_options.cancel = CancelToken(cancel_source_);

  auto run_task = [this, state, &policy, &doc, &queries, task_options,
                   deadline_ms, deadline](size_t i) {
    ExecuteOptions opts = task_options;
    Result<ExecuteResult> result = [&]() -> Result<ExecuteResult> {
      if (opts.cancel.cancelled()) {
        Status st = Status::Cancelled("query cancelled while queued");
        RecordPoolAudit(opts.audit, policy, queries[i], st);
        engine_.RecordServingOutcome(policy, queries[i], st, 0);
        return st;
      }
      if (deadline_ms > 0) {
        auto now = std::chrono::steady_clock::now();
        if (now >= deadline) {
          engine_.metrics().GetCounter("engine.rejected.deadline").Add();
          Status st = Status::DeadlineExceeded(
              "deadline of " + std::to_string(deadline_ms) +
              " ms expired while the query was queued");
          RecordPoolAudit(opts.audit, policy, queries[i], st);
          engine_.RecordServingOutcome(policy, queries[i], st, 0);
          return st;
        }
        auto remaining_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                deadline - now)
                                .count();
        opts.limits.deadline_ms =
            std::max<uint64_t>(1, static_cast<uint64_t>(remaining_ms));
      }
      return engine_.Execute(policy, doc, queries[i], opts);
    }();
    std::lock_guard<std::mutex> slot_lock(state->mu);
    state->results[i] = std::move(result);
    if (--state->remaining == 0) state->done_cv.notify_all();
  };

  // Enqueue under one lock hold, so shedding is deterministic: with a
  // cap of C and a queue already holding Q tasks, exactly the first
  // max(0, C - Q) tasks of this batch enqueue and the rest shed. The
  // pool.submit failpoint sheds individual submissions the same way a
  // full queue would (simulating enqueue-time allocation failure).
  static FailPoint& submit_fault =
      FailPointRegistry::Instance().Get(failpoints::kPoolSubmit);
  std::vector<size_t> shed;
  std::vector<bool> shed_injected;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < queries.size(); ++i) {
      if (options_.queue_cap != 0 && queue_.size() >= options_.queue_cap) {
        shed.push_back(i);
        shed_injected.push_back(false);
        continue;
      }
      if (submit_fault.Fire()) {
        shed.push_back(i);
        shed_injected.push_back(true);
        continue;
      }
      queue_.emplace_back([run_task, i] { run_task(i); });
      queue_depth_gauge_->Add(1);
    }
  }
  work_available_.notify_all();

  for (size_t s = 0; s < shed.size(); ++s) {
    const size_t i = shed[s];
    shed_counter_->Add();
    Status st = shed_injected[s]
                    ? Status::ResourceExhausted(
                          "query shed: task submission failed (injected)")
                    : Status::ResourceExhausted(
                          "query shed: the pool's submission queue is full "
                          "(cap " +
                          std::to_string(options_.queue_cap) + ")");
    RecordPoolAudit(task_options.audit, policy, queries[i], st);
    engine_.RecordServingOutcome(policy, queries[i], st, 0);
    std::lock_guard<std::mutex> slot_lock(state->mu);
    state->results[i] = std::move(st);
    if (--state->remaining == 0) state->done_cv.notify_all();
  }

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->remaining == 0; });
  return std::move(state->results);
}

std::vector<Result<ExecuteResult>> SecureQueryEngine::ExecuteBatch(
    const std::string& policy, const XmlTree& doc,
    const std::vector<std::string>& queries, const ExecuteOptions& options,
    size_t threads) {
  Seal();
  if (threads == 1) {
    // Inline serial path: same semantics (input order, per-slot
    // failures, trace/explain dropped) without thread startup.
    ExecuteOptions task_options = options;
    task_options.trace = nullptr;
    task_options.explain = nullptr;
    std::vector<Result<ExecuteResult>> results;
    results.reserve(queries.size());
    for (const std::string& query : queries) {
      results.push_back(Execute(policy, doc, query, task_options));
    }
    return results;
  }
  QueryWorkerPool::Options pool_options;
  pool_options.threads = threads;
  QueryWorkerPool pool(*this, pool_options);
  return pool.ExecuteBatch(policy, doc, queries, options);
}

}  // namespace secview
