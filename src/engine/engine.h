#ifndef SECVIEW_ENGINE_ENGINE_H_
#define SECVIEW_ENGINE_ENGINE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/budget.h"
#include "common/result.h"
#include "dtd/dtd.h"
#include "engine/rewrite_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimize/optimizer.h"
#include "rewrite/rewriter.h"
#include "security/access_spec.h"
#include "security/security_view.h"
#include "xml/tree.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace secview {

namespace obs {
class AuditSink;
class HealthTracker;
class PlanProfileTable;
class PolicyStatsTable;
class RequestTraceStore;
class SlidingWindowStats;
class SlowQueryLog;
}  // namespace obs

struct QueryExplain;
struct ExplainOptions;
struct StepProfile;

/// Engine-construction knobs (defaults fit tests and the CLI; servers
/// tune them once at startup).
struct EngineOptions {
  /// Lock stripes of each policy's rewrite cache. More shards = less
  /// contention between concurrent cache hits/inserts.
  size_t cache_shards = 8;
  /// Entry budget of each policy's rewrite cache. Every distinct
  /// (query text, optimize flag, unfold depth) triple is one entry, so
  /// the bound is what keeps a hostile query stream from growing the
  /// cache without limit.
  size_t cache_capacity = 1024;
};

/// Per-execution options.
struct ExecuteOptions {
  /// Bindings for the policy's $parameters (e.g. {"wardNo", "3"}).
  std::vector<std::pair<std::string, std::string>> bindings;

  /// Run the DTD-based optimizer over the rewritten query (Section 5).
  /// Ignored (treated as false) when the document DTD is recursive.
  bool optimize = true;

  /// When non-null, Execute records its phase-span tree (parse, unfold,
  /// rewrite, optimize, bind, evaluate) into this trace.
  obs::Trace* trace = nullptr;

  /// When non-null, Execute records exactly one audit event into this
  /// sink — for successes *and* failures. Failed executions carry an
  /// outcome distinguishing "denied" (policy/input failures), "timeout"
  /// (deadline or budget exhausted), and "shed" (cancelled / rejected
  /// under load). See obs/audit.h.
  obs::AuditSink* audit = nullptr;

  /// Per-execution resource budget (all-zero = unlimited, the default).
  /// Enforced cooperatively through rewrite, optimize, and evaluate;
  /// tripping returns kDeadlineExceeded / kResourceExhausted. The
  /// deadline is relative to the start of Execute.
  BudgetLimits limits;

  /// Cooperative cancellation token (common/budget.h). A cancelled
  /// execution returns kCancelled at its next budget checkpoint.
  /// QueryWorkerPool installs its own token for queued tasks.
  CancelToken cancel;

  /// Hardening limits applied when parsing the query text.
  XPathParseLimits parse_limits;

  /// When non-null, Execute additionally fills this with the rewrite
  /// decision trail (see engine/explain.h). Adds a non-cached explain
  /// pass on top of the normal preparation.
  QueryExplain* explain = nullptr;

  /// Collect a per-step plan profile (EXPLAIN ANALYZE) for this
  /// execution: ExecuteResult::profile carries the StepProfile tree,
  /// ExecuteStats::hot_step the hottest step's one-liner, and the
  /// per-axis eval.axis.* metrics are charged. Results are identical
  /// with and without profiling; the off path costs one pointer compare
  /// per plan-node invocation. Profiling is also implied (regardless of
  /// this flag) while a PlanProfileTable is attached.
  bool profile = false;

  /// Evaluate through the compiled query plan (xpath/plan.h): the
  /// rewritten AST is lowered once into flat step bytecode, cached next
  /// to the AST, and executed over pooled scratch buffers. Results,
  /// statuses, counters, budget charging, and profiles are identical to
  /// the AST walk (guarded by tests/plan_test.cc); turn this off
  /// (`--no-compiled` in the CLI) only to A/B the interpreter paths.
  bool use_compiled = true;
};

/// Structured per-execution statistics (the successor of the old bare
/// `work` counter). Phase durations are wall-clock microseconds; when a
/// phase runs more than once per execution (e.g. parse, for both the
/// provenance and the optimized preparation) the durations sum.
struct ExecuteStats {
  /// Evaluator node touches (machine-independent cost).
  uint64_t nodes_touched = 0;
  /// Qualifier evaluations during evaluation.
  uint64_t predicate_evals = 0;
  /// Number of result nodes.
  size_t result_count = 0;
  /// True iff the *evaluated* query came out of the rewrite cache.
  bool cache_hit = false;
  /// True iff evaluation ran the compiled plan rather than the AST walk
  /// (ExecuteOptions::use_compiled and compilation succeeded).
  bool compiled = false;
  /// Unfolding depth used (0 for non-recursive views).
  int unfold_depth = 0;
  /// |p| after rewriting, before optimization.
  int ast_size_rewritten = 0;
  /// |p| of the query actually evaluated.
  int ast_size_evaluated = 0;
  uint64_t parse_micros = 0;
  uint64_t rewrite_micros = 0;
  uint64_t optimize_micros = 0;
  uint64_t evaluate_micros = 0;

  /// Heap allocation charged to this execution and its phases
  /// (common/alloc_tracker): bytes/calls requested through operator new
  /// on the executing thread — churn, not live memory. All zero when the
  /// tracker is compiled out (AllocTrackingAvailable() == false). Like
  /// the phase durations, repeated phases sum; the whole-execution
  /// totals also cover work between phases, so they exceed the phase sum.
  uint64_t alloc_bytes = 0;
  uint64_t alloc_count = 0;
  uint64_t parse_alloc_bytes = 0;
  uint64_t parse_alloc_count = 0;
  uint64_t rewrite_alloc_bytes = 0;
  uint64_t rewrite_alloc_count = 0;
  uint64_t optimize_alloc_bytes = 0;
  uint64_t optimize_alloc_count = 0;
  uint64_t evaluate_alloc_bytes = 0;
  uint64_t evaluate_alloc_count = 0;

  /// DP table sizes and optimizer prune counts, accumulated across the
  /// (up to two) preparations of one execution. All zero when every
  /// preparation was served from the rewrite cache — the work literally
  /// did not happen again.
  uint64_t rewrite_dp_entries = 0;
  uint64_t optimize_dp_entries = 0;
  uint64_t nonexistence_prunes = 0;
  uint64_t simulation_tests = 0;
  uint64_t union_prunes = 0;

  /// Hottest plan step when this execution was profiled (e.g.
  /// "descendant::patient nodes=1234"); empty otherwise. Rides along on
  /// slow-query-log entries and sampled request traces.
  std::string hot_step;
};

/// Execution outcome with provenance, for auditing and the CLI.
struct ExecuteResult {
  /// Result nodes in the *document*, in document order.
  NodeSet nodes;
  /// The query after rewriting over the view (unbound).
  PathPtr rewritten;
  /// The query actually evaluated (optimized + bound).
  PathPtr evaluated;
  /// Per-execution cost and provenance statistics.
  ExecuteStats stats;

  /// Per-step plan profile (xpath/profiler.h); non-null only when the
  /// execution ran with ExecuteOptions::profile (or an attached
  /// PlanProfileTable) and evaluation succeeded.
  std::shared_ptr<const StepProfile> profile;

  /// Evaluator node touches — backward-compatible accessor for the old
  /// `work` field.
  uint64_t work() const { return stats.nodes_touched; }
};

/// The secure query-answering framework of the paper's Fig. 3: one
/// document DTD, any number of named access-control policies, and a
/// query interface that enforces each policy by query rewriting — views
/// stay virtual.
///
/// Typical use:
///
///   auto engine = SecureQueryEngine::Create(MakeHospitalDtd());
///   engine->RegisterPolicy("nurse", nurse_spec_text);
///   auto result = engine->Execute("nurse", doc, "//patient//bill",
///                                 {.bindings = {{"wardNo", "3"}}});
///
/// Rewritten/optimized queries are cached per (policy, query text,
/// optimize flag). For *recursive* views the cache key additionally
/// includes the unfolding depth — the rewritten query is only equivalent
/// over documents of height <= depth, so two documents of different
/// heights must not share a cache entry (Section 4.2; the depth is
/// derived from each document's height and is 0 for non-recursive
/// views). engine_test.cc guards this keying with a regression test.
/// The cache is sharded, lock-striped, and bounded (EngineOptions);
/// evictions are LRU-ish per shard.
///
/// The engine keeps a lifetime obs::MetricsRegistry (see metrics()):
/// per-policy query counts, rewrite-cache hits/misses, rewriter/optimizer
/// DP sizes and prune counts, evaluator node touches, and per-phase
/// latency histograms. Pass an obs::Trace in ExecuteOptions to capture a
/// per-query span tree.
///
/// Threading contract (details: docs/concurrency.md). The engine's
/// lifetime splits into a *setup* phase and a *serve* phase:
///
///  * Setup — Create + RegisterPolicy calls — is single-threaded and
///    must complete before any concurrent use. Seal() ends it
///    explicitly (later registrations fail); QueryWorkerPool seals on
///    construction.
///  * Serve — Rewrite, Execute, ExecuteBatch, Explain, View,
///    PublishedViewDtd, metrics() — is safe from any number of threads
///    against the sealed policy set. The document, DTD, views, prepared
///    rewriter/optimizer, and cached ASTs are all immutable; the only
///    mutable shared state is the sharded cache (internally locked) and
///    the metrics instruments (atomics).
///
/// Per-execution scratch state (the XPathEvaluator and its counters)
/// lives on the calling thread's stack and flushes into the shared
/// atomic metrics at the end of each call.
class SecureQueryEngine {
 public:
  /// Takes ownership of the (finalized) document DTD.
  static Result<std::unique_ptr<SecureQueryEngine>> Create(Dtd dtd);
  static Result<std::unique_ptr<SecureQueryEngine>> Create(
      Dtd dtd, const EngineOptions& options);

  const Dtd& dtd() const { return *dtd_; }

  /// True iff the document DTD admits the optimizer (non-recursive).
  bool CanOptimize() const { return optimizer_.has_value(); }

  /// Engine-lifetime metrics (metric catalog: docs/observability.md).
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Attaches serving-time observers: every Execute (and every query a
  /// QueryWorkerPool disposes of without executing) is recorded into
  /// `window` (sliding-window QPS/latency aggregates) and offered to
  /// `slow_log` (bounded slow-query ring). Either may be null. The
  /// observers must outlive the engine's serve phase; attach them during
  /// setup, before concurrent serving starts — the pointers themselves
  /// are not synchronized.
  void AttachServingObservers(obs::SlidingWindowStats* window,
                              obs::SlowQueryLog* slow_log);

  /// Attaches the per-policy rollup table: every Execute and every
  /// RecordServingOutcome is additionally charged to its policy id
  /// (queries, outcome mix, nodes touched, alloc bytes, latency). Same
  /// lifetime/attachment discipline as AttachServingObservers.
  void AttachPolicyStats(obs::PolicyStatsTable* policy_stats);

  /// Attaches the cross-query hot-step rollup (the /profilez table):
  /// every Execute runs with plan profiling on and merges its flattened
  /// StepProfile into the table, keyed by canonical step signature.
  /// Same lifetime/attachment discipline as AttachServingObservers.
  void AttachPlanProfiles(obs::PlanProfileTable* plan_profiles);

  /// Attaches the sampled request-trace store. When the store is enabled
  /// (sample_every > 0) and the caller did not pass its own trace,
  /// Execute records a span tree for the request and offers it to the
  /// store, which retains 1-in-N plus every slow/denied/timeout/shed
  /// request (see obs/trace_store.h). Attach before serving starts.
  void AttachTraceStore(obs::RequestTraceStore* traces);

  /// Attaches the serving-health state machine (/healthz): every Execute
  /// and RecordServingOutcome reports its ok/failed verdict so sustained
  /// error rates flip the tracker to degraded. Same lifetime/attachment
  /// discipline as AttachServingObservers.
  void AttachHealth(obs::HealthTracker* health);

  /// Records a query outcome that bypassed Execute (e.g. shed at a
  /// worker pool's queue) into the attached serving observers, keeping
  /// /statusz rates in line with the audit trail.
  void RecordServingOutcome(const std::string& policy,
                            std::string_view query_text, const Status& status,
                            uint64_t latency_micros);

  // -- Policies -------------------------------------------------------------

  /// Registers a policy from the textual annotation syntax
  /// (security/spec_parser.h). Fails on parse errors, duplicate names,
  /// derivation failure, or after Seal(). Setup-phase only: must not run
  /// concurrently with any other engine call.
  Status RegisterPolicy(const std::string& name, std::string_view spec_text);

  /// Registers an already-built specification.
  Status RegisterPolicy(const std::string& name, AccessSpec spec);

  /// Ends the setup phase: subsequent RegisterPolicy calls fail with
  /// FailedPrecondition. Idempotent. Sealing is what makes concurrent
  /// serving sound — the policy map is only read from then on.
  void Seal() { sealed_.store(true, std::memory_order_release); }
  bool sealed() const { return sealed_.load(std::memory_order_acquire); }

  std::vector<std::string> PolicyNames() const;

  /// The derived security view of a policy.
  Result<const SecurityView*> View(const std::string& policy) const;

  /// The view DTD text published to the policy's users (sigma hidden).
  Result<std::string> PublishedViewDtd(const std::string& policy) const;

  // -- Querying -------------------------------------------------------------

  /// Rewrites (and optionally optimizes) a view query for the policy,
  /// without evaluating it. `doc_height` selects the unfolding depth for
  /// recursive views; pass the height of the target document (ignored
  /// for non-recursive views).
  Result<PathPtr> Rewrite(const std::string& policy,
                          std::string_view query_text, bool optimize,
                          int doc_height = 0);

  /// Full enforcement path: parse, rewrite, optimize, bind, evaluate.
  /// `doc` must be an instance of the engine's DTD; results are nodes of
  /// `doc` the policy's users are allowed to see.
  Result<ExecuteResult> Execute(const std::string& policy, const XmlTree& doc,
                                std::string_view query_text,
                                const ExecuteOptions& options = {});

  /// Fans a batch of queries out over `threads` worker threads (0 picks
  /// the hardware concurrency, 1 runs inline) and returns per-query
  /// results in input order. Seals the engine. `options` applies to
  /// every query of the batch; its `trace`/`explain` outputs are ignored
  /// (see QueryWorkerPool::ExecuteBatch, which this wraps — servers that
  /// serve many batches should hold a long-lived QueryWorkerPool
  /// instead of paying thread startup per call).
  std::vector<Result<ExecuteResult>> ExecuteBatch(
      const std::string& policy, const XmlTree& doc,
      const std::vector<std::string>& queries,
      const ExecuteOptions& options = {}, size_t threads = 0);

  /// Renders the rewrite decision trail for a query without evaluating
  /// it: the (unfolded) view, which σ annotations fired at which steps,
  /// which subqueries were pruned and why, and what the optimizer did.
  /// Deterministic — the output carries no timestamps or durations (see
  /// engine/explain.h). The overload without options uses the defaults
  /// (optimize on, default unfolding depth for recursive views).
  Result<QueryExplain> Explain(const std::string& policy,
                               std::string_view query_text);
  Result<QueryExplain> Explain(const std::string& policy,
                               std::string_view query_text,
                               const ExplainOptions& options);

  /// Builds a serialization-safe answer document: the *view* subtrees of
  /// the result nodes, copied under a fresh <results> root. Answers never
  /// contain concealed labels or inaccessible descendants because they
  /// are taken from the (internally materialized) view, not from the raw
  /// document — returning raw document subtrees would leak hidden nodes
  /// nested below accessible ones. This is a convenience for serving
  /// serialized answers; it costs one view materialization per call.
  Result<XmlTree> ExtractResults(
      const std::string& policy, const XmlTree& doc, const NodeSet& nodes,
      const std::vector<std::pair<std::string, std::string>>& bindings =
          {}) const;

 private:
  struct Policy {
    AccessSpec spec;
    SecurityView view;
    /// Prepared rewriter for non-recursive views. Rewrite() is const
    /// and stateless per call, so many threads may share it.
    std::optional<QueryRewriter> rewriter;
    /// Cache key: query text + "\x1f" + optimize flag + "\x1f" + unfold
    /// depth. The depth component matters for recursive views only — a
    /// rewriting unfolded to depth d is valid for documents of height
    /// <= d, so entries for different heights must stay distinct. For
    /// non-recursive views the depth is always 0.
    ShardedRewriteCache cache;
    /// Pre-resolved instruments (resolving a name takes the registry
    /// lock; the serve path must not).
    obs::Counter* queries_counter = nullptr;
    obs::Gauge* cache_size_gauge = nullptr;

    Policy(AccessSpec s, SecurityView v,
           const ShardedRewriteCache::Options& cache_options)
        : spec(std::move(s)), view(std::move(v)), cache(cache_options) {}
  };

  /// Engine-wide instruments resolved once at construction so the serve
  /// path updates them lock-free (obs/metrics.h documents this pattern).
  struct HotMetrics {
    obs::Counter* queries = nullptr;
    obs::Counter* results_returned = nullptr;
    obs::Counter* execute_errors = nullptr;
    /// Executions that failed with kDeadlineExceeded.
    obs::Counter* rejected_deadline = nullptr;
    /// Executions that failed with kResourceExhausted.
    obs::Counter* rejected_budget = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* cache_evictions = nullptr;
    obs::Gauge* cache_size = nullptr;
    /// engine.cache.bytes — byte footprint of all rewrite-cache entries
    /// (keys + AST estimates + compiled-plan tables), across policies.
    /// engine.cache.size counts entries only, which stopped being a
    /// proxy for memory once entries started carrying bytecode.
    obs::Gauge* cache_bytes = nullptr;
    /// engine.plan.compiles — plan compilations performed (a cache hit
    /// on an entry that already has a plan does not compile).
    obs::Counter* plan_compiles = nullptr;
    /// engine.plan.cached — compiled plans resident in the caches.
    obs::Gauge* plan_cached = nullptr;
    /// engine.plan.cache_bytes — bytes of resident compiled plans
    /// (subset of engine.cache.bytes).
    obs::Gauge* plan_cache_bytes = nullptr;
    /// engine.plan.fallbacks — executions that asked for the compiled
    /// path but ran the AST walk because no plan was available (query
    /// not compilable, injected plan.compile fault, or a budget-tripped
    /// preparation). Results are identical either way; this counts the
    /// lost speed, not lost correctness.
    obs::Counter* plan_fallbacks = nullptr;
    /// engine.execute.micros — end-to-end Execute latency (all phases,
    /// successes and failures alike).
    obs::Histogram* execute_micros = nullptr;
    /// engine.alloc.bytes / engine.alloc.count — per-execution heap
    /// allocation churn (observed once per Execute; flat zeros when the
    /// alloc tracker is compiled out).
    obs::Histogram* alloc_bytes = nullptr;
    obs::Histogram* alloc_count = nullptr;
    /// alloc.<phase>.{bytes,count} — cumulative per-phase allocation,
    /// charged by Prepare/ExecuteInto alongside the phase timers.
    obs::Counter* alloc_parse_bytes = nullptr;
    obs::Counter* alloc_parse_count = nullptr;
    obs::Counter* alloc_rewrite_bytes = nullptr;
    obs::Counter* alloc_rewrite_count = nullptr;
    obs::Counter* alloc_optimize_bytes = nullptr;
    obs::Counter* alloc_optimize_count = nullptr;
    obs::Counter* alloc_evaluate_bytes = nullptr;
    obs::Counter* alloc_evaluate_count = nullptr;
    /// engine.cache.shard_<i>.size, aggregated across policies.
    std::vector<obs::Gauge*> shard_size;
    /// engine.cache.shard_<i>.bytes, aggregated across policies.
    std::vector<obs::Gauge*> shard_bytes;
  };

  SecureQueryEngine(std::unique_ptr<Dtd> dtd, const EngineOptions& options);

  Result<Policy*> FindPolicy(const std::string& name);
  Result<const Policy*> FindPolicy(const std::string& name) const;

  /// The instrumented preparation path behind Rewrite, Execute, and the
  /// explain pass: sharded-cache lookup, then parse -> [unfold ->]
  /// rewrite -> [optimize ->] cache insert. Safe from many threads
  /// (serve phase). `trace`, `stats`, and `budget` may be null. A
  /// budget-tripped preparation is never cached. With `compile` set the
  /// returned entry additionally carries the compiled plan — compiled
  /// now if needed (and attached to the cache entry), reused from the
  /// entry otherwise.
  Result<CachedQuery> Prepare(Policy& policy, std::string_view query_text,
                              bool optimize, int depth, bool compile,
                              obs::Trace* trace, ExecuteStats* stats,
                              const XPathParseLimits& parse_limits,
                              QueryBudget* budget);

  /// Lowers a rewritten query to bytecode under the "compile" span /
  /// phase.compile.micros timer and bumps engine.plan.compiles.
  std::shared_ptr<const CompiledPlan> CompileQueryPlan(const PathPtr& query,
                                                       obs::Trace* trace);

  /// Feeds a cache operation's signed byte/plan deltas into the
  /// engine.cache.bytes / engine.plan.* gauges.
  void ApplyPlanCacheDeltas(size_t shard, int64_t bytes_delta,
                            int64_t plan_bytes_delta, int64_t plans_delta);

  /// Execute minus the audit bookkeeping; fills `result` as far as the
  /// execution got, so a failing run still exposes partial provenance
  /// (e.g. the rewritten query when binding failed) to the audit event.
  Status ExecuteInto(const std::string& policy_name, const XmlTree& doc,
                     std::string_view query_text,
                     const ExecuteOptions& options, ExecuteResult& result);

  std::unique_ptr<Dtd> dtd_;
  EngineOptions options_;
  std::optional<QueryOptimizer> optimizer_;
  std::unordered_map<std::string, std::unique_ptr<Policy>> policies_;
  obs::MetricsRegistry metrics_;
  HotMetrics hot_;
  /// Serving observers (AttachServingObservers); null until attached.
  obs::SlidingWindowStats* window_stats_ = nullptr;
  obs::SlowQueryLog* slow_log_ = nullptr;
  obs::PolicyStatsTable* policy_stats_ = nullptr;
  obs::PlanProfileTable* plan_profiles_ = nullptr;
  obs::RequestTraceStore* trace_store_ = nullptr;
  obs::HealthTracker* health_ = nullptr;
  std::atomic<bool> sealed_{false};
};

}  // namespace secview

#endif  // SECVIEW_ENGINE_ENGINE_H_
