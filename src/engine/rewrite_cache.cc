#include "engine/rewrite_cache.h"

#include <algorithm>
#include <functional>
#include <mutex>

#include "xpath/plan.h"

namespace secview {

namespace {

size_t StringHeapBytes(const std::string& s) {
  return s.capacity() > sizeof(std::string) ? s.capacity() : 0;
}

size_t QualBytes(const QualPtr& q);

/// Estimated heap footprint of an AST: node structs plus out-of-line
/// string payloads. Shared subexpressions are counted once per
/// occurrence — an overestimate for heavily shared rewrites, which errs
/// on the safe side for a gauge that exists to bound memory.
size_t PathBytes(const PathPtr& p) {
  if (!p) return 0;
  size_t bytes = sizeof(PathExpr) + StringHeapBytes(p->label);
  bytes += PathBytes(p->left);
  bytes += PathBytes(p->right);
  bytes += QualBytes(p->qualifier);
  return bytes;
}

size_t QualBytes(const QualPtr& q) {
  if (!q) return 0;
  size_t bytes = sizeof(Qualifier) + StringHeapBytes(q->constant) +
                 StringHeapBytes(q->attr);
  bytes += PathBytes(q->path);
  bytes += QualBytes(q->left);
  bytes += QualBytes(q->right);
  return bytes;
}

}  // namespace

size_t ShardedRewriteCache::EntryFootprintBytes(const std::string& key,
                                                const CachedQuery& value) {
  size_t bytes = key.size() + sizeof(Entry) + PathBytes(value.query);
  if (value.plan != nullptr) bytes += value.plan->byte_size();
  return bytes;
}

ShardedRewriteCache::ShardedRewriteCache() : ShardedRewriteCache(Options{}) {}

ShardedRewriteCache::ShardedRewriteCache(const Options& options) {
  const size_t shard_count = std::max<size_t>(1, options.shards);
  const size_t capacity = std::max<size_t>(1, options.capacity);
  // Round the per-shard budget up so the total is never below the
  // requested capacity (a shard always holds at least one entry).
  shard_capacity_ = (capacity + shard_count - 1) / shard_count;
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

size_t ShardedRewriteCache::ShardIndex(const std::string& key) const {
  return std::hash<std::string>{}(key) % shards_.size();
}

std::optional<CachedQuery> ShardedRewriteCache::Lookup(const std::string& key) {
  Shard& shard = *shards_[ShardIndex(key)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return std::nullopt;
  it->second->last_used.store(NextTick(), std::memory_order_relaxed);
  return it->second->value;
}

ShardedRewriteCache::InsertOutcome ShardedRewriteCache::Insert(
    const std::string& key, CachedQuery value) {
  InsertOutcome outcome;
  outcome.shard = ShardIndex(key);
  Shard& shard = *shards_[outcome.shard];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // Another thread prepared the same key concurrently; keep its entry
    // (the rewrite is deterministic, so the values are equivalent). If
    // this thread also compiled a plan the resident entry lacks, graft
    // it on so the compile is not wasted.
    Entry& entry = *it->second;
    entry.last_used.store(NextTick(), std::memory_order_relaxed);
    if (entry.value.plan == nullptr && value.plan != nullptr) {
      entry.value.plan = std::move(value.plan);
      const size_t plan_bytes = entry.value.plan->byte_size();
      entry.bytes += plan_bytes;
      entry.plan_bytes = plan_bytes;
      shard.bytes += plan_bytes;
      shard.plan_bytes += plan_bytes;
      shard.plans += 1;
      outcome.bytes_delta = static_cast<int64_t>(plan_bytes);
      outcome.plan_bytes_delta = static_cast<int64_t>(plan_bytes);
      outcome.plans_delta = 1;
    }
    outcome.value = entry.value;
    return outcome;
  }
  if (shard.map.size() >= shard_capacity_) {
    auto victim = shard.map.begin();
    uint64_t oldest = victim->second->last_used.load(std::memory_order_relaxed);
    for (auto cand = shard.map.begin(); cand != shard.map.end(); ++cand) {
      uint64_t stamp = cand->second->last_used.load(std::memory_order_relaxed);
      if (stamp < oldest) {
        oldest = stamp;
        victim = cand;
      }
    }
    const Entry& evicted = *victim->second;
    shard.bytes -= evicted.bytes;
    shard.plan_bytes -= evicted.plan_bytes;
    if (evicted.value.plan != nullptr) {
      shard.plans -= 1;
      outcome.plans_delta -= 1;
    }
    outcome.bytes_delta -= static_cast<int64_t>(evicted.bytes);
    outcome.plan_bytes_delta -= static_cast<int64_t>(evicted.plan_bytes);
    shard.map.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    outcome.evicted = true;
  }
  auto entry = std::make_unique<Entry>();
  entry->value = value;
  entry->bytes = EntryFootprintBytes(key, value);
  entry->plan_bytes = value.plan != nullptr ? value.plan->byte_size() : 0;
  entry->last_used.store(NextTick(), std::memory_order_relaxed);
  shard.bytes += entry->bytes;
  shard.plan_bytes += entry->plan_bytes;
  outcome.bytes_delta += static_cast<int64_t>(entry->bytes);
  outcome.plan_bytes_delta += static_cast<int64_t>(entry->plan_bytes);
  if (value.plan != nullptr) {
    shard.plans += 1;
    outcome.plans_delta += 1;
  }
  shard.map.emplace(key, std::move(entry));
  outcome.value = std::move(value);
  outcome.inserted = true;
  return outcome;
}

ShardedRewriteCache::AttachOutcome ShardedRewriteCache::AttachPlan(
    const std::string& key, std::shared_ptr<const CompiledPlan> plan) {
  AttachOutcome outcome;
  outcome.shard = ShardIndex(key);
  if (plan == nullptr) {
    // Compilation produced nothing (e.g. an injected plan.compile
    // fault); leave the entry plan-less so a later execution can retry.
    return outcome;
  }
  Shard& shard = *shards_[outcome.shard];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    // Evicted between the caller's lookup and now; the plan is still
    // valid for this execution, it just does not get cached.
    outcome.plan = std::move(plan);
    return outcome;
  }
  Entry& entry = *it->second;
  if (entry.value.plan != nullptr) {
    outcome.plan = entry.value.plan;
    return outcome;
  }
  entry.value.plan = std::move(plan);
  const size_t plan_bytes = entry.value.plan->byte_size();
  entry.bytes += plan_bytes;
  entry.plan_bytes = plan_bytes;
  shard.bytes += plan_bytes;
  shard.plan_bytes += plan_bytes;
  shard.plans += 1;
  outcome.plan = entry.value.plan;
  outcome.attached = true;
  outcome.bytes_delta = static_cast<int64_t>(plan_bytes);
  outcome.plan_bytes_delta = static_cast<int64_t>(plan_bytes);
  outcome.plans_delta = 1;
  return outcome;
}

void ShardedRewriteCache::Clear() {
  for (auto& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard->mu);
    shard->map.clear();
    shard->bytes = 0;
    shard->plan_bytes = 0;
    shard->plans = 0;
  }
}

size_t ShardedRewriteCache::ShardSize(size_t i) const {
  const Shard& shard = *shards_[i];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  return shard.map.size();
}

size_t ShardedRewriteCache::ShardBytes(size_t i) const {
  const Shard& shard = *shards_[i];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  return shard.bytes;
}

size_t ShardedRewriteCache::ShardPlans(size_t i) const {
  const Shard& shard = *shards_[i];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  return shard.plans;
}

size_t ShardedRewriteCache::size() const {
  size_t total = 0;
  for (size_t i = 0; i < shards_.size(); ++i) total += ShardSize(i);
  return total;
}

size_t ShardedRewriteCache::bytes() const {
  size_t total = 0;
  for (size_t i = 0; i < shards_.size(); ++i) total += ShardBytes(i);
  return total;
}

size_t ShardedRewriteCache::plans() const {
  size_t total = 0;
  for (size_t i = 0; i < shards_.size(); ++i) total += ShardPlans(i);
  return total;
}

}  // namespace secview
