#include "engine/rewrite_cache.h"

#include <algorithm>
#include <functional>
#include <mutex>

namespace secview {

ShardedRewriteCache::ShardedRewriteCache() : ShardedRewriteCache(Options{}) {}

ShardedRewriteCache::ShardedRewriteCache(const Options& options) {
  const size_t shard_count = std::max<size_t>(1, options.shards);
  const size_t capacity = std::max<size_t>(1, options.capacity);
  // Round the per-shard budget up so the total is never below the
  // requested capacity (a shard always holds at least one entry).
  shard_capacity_ = (capacity + shard_count - 1) / shard_count;
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

size_t ShardedRewriteCache::ShardIndex(const std::string& key) const {
  return std::hash<std::string>{}(key) % shards_.size();
}

PathPtr ShardedRewriteCache::Lookup(const std::string& key) {
  Shard& shard = *shards_[ShardIndex(key)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return nullptr;
  it->second->last_used.store(NextTick(), std::memory_order_relaxed);
  return it->second->value;
}

ShardedRewriteCache::InsertOutcome ShardedRewriteCache::Insert(
    const std::string& key, PathPtr value) {
  InsertOutcome outcome;
  outcome.shard = ShardIndex(key);
  Shard& shard = *shards_[outcome.shard];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // Another thread prepared the same key concurrently; keep its entry
    // (the rewrite is deterministic, so the values are equivalent).
    it->second->last_used.store(NextTick(), std::memory_order_relaxed);
    outcome.value = it->second->value;
    return outcome;
  }
  if (shard.map.size() >= shard_capacity_) {
    auto victim = shard.map.begin();
    uint64_t oldest = victim->second->last_used.load(std::memory_order_relaxed);
    for (auto cand = shard.map.begin(); cand != shard.map.end(); ++cand) {
      uint64_t stamp = cand->second->last_used.load(std::memory_order_relaxed);
      if (stamp < oldest) {
        oldest = stamp;
        victim = cand;
      }
    }
    shard.map.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    outcome.evicted = true;
  }
  auto entry = std::make_unique<Entry>();
  entry->value = value;
  entry->last_used.store(NextTick(), std::memory_order_relaxed);
  shard.map.emplace(key, std::move(entry));
  outcome.value = std::move(value);
  outcome.inserted = true;
  return outcome;
}

void ShardedRewriteCache::Clear() {
  for (auto& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard->mu);
    shard->map.clear();
  }
}

size_t ShardedRewriteCache::ShardSize(size_t i) const {
  const Shard& shard = *shards_[i];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  return shard.map.size();
}

size_t ShardedRewriteCache::size() const {
  size_t total = 0;
  for (size_t i = 0; i < shards_.size(); ++i) total += ShardSize(i);
  return total;
}

}  // namespace secview
