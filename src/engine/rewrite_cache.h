#ifndef SECVIEW_ENGINE_REWRITE_CACHE_H_
#define SECVIEW_ENGINE_REWRITE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "xpath/ast.h"

namespace secview {

struct CompiledPlan;

/// What the rewrite cache stores per key: the rewritten (and optionally
/// optimized) AST, plus — once some execution needed it — the compiled
/// plan lowered from that AST (xpath/plan.h). Both are shared_ptr<const>
/// immutables, so one entry serves any number of threads without
/// copying; the plan is attached lazily (AttachPlan) because only the
/// entry that gets *evaluated* pays the compile.
struct CachedQuery {
  PathPtr query;
  std::shared_ptr<const CompiledPlan> plan;  // null until attached
};

/// Thread-safe bounded cache for rewritten queries, striped into N
/// shards so concurrent lookups of different keys never contend on one
/// lock. Each shard is guarded by its own shared_mutex: cache hits take
/// the lock shared (many readers in parallel), inserts take it
/// exclusive. Values are shared_ptr<const> ASTs and compiled plans —
/// immutable after construction — so a cached query can be handed to
/// any number of threads without copying.
///
/// Capacity is bounded per shard (total capacity / shard count, at
/// least one entry per shard) with LRU-ish eviction: every hit stamps
/// the entry with a global relaxed tick, and an insert into a full
/// shard evicts the entry with the smallest stamp. The stamp is an
/// atomic field updated under the *shared* lock, so hits stay
/// reader-parallel; eviction scans the shard, which is cheap because a
/// shard holds capacity/shards entries. The bound makes the cache safe
/// against hostile query streams (each distinct query text is a new
/// key) in single- and multi-threaded use alike.
///
/// Alongside the entry count, every shard tracks the byte footprint of
/// its entries (key + AST estimate + compiled-plan tables), maintained
/// exactly across insert/evict/attach from the footprint recorded at
/// admission — entries carry bytecode now, so "N entries" alone no
/// longer says how big the cache is.
class ShardedRewriteCache {
 public:
  struct Options {
    /// Number of lock stripes. More shards = less contention; sizes are
    /// rounded up so every shard exists even for tiny capacities.
    size_t shards = 8;
    /// Total entry budget across all shards.
    size_t capacity = 1024;
  };

  /// What an Insert did, so the owner can maintain metrics without the
  /// cache knowing about any registry. The byte/plan deltas are signed
  /// net changes (inserted minus evicted), so the owner can feed them
  /// straight into gauges.
  struct InsertOutcome {
    /// The resident value: the inserted one, or the already-present one
    /// when another thread inserted the same key first (both threads
    /// computed the same deterministic rewrite; sharing maximizes AST
    /// reuse). On such a collision, an incoming compiled plan is grafted
    /// onto the plan-less resident entry rather than dropped.
    CachedQuery value;
    /// True iff this call added a new entry.
    bool inserted = false;
    /// True iff this call evicted an entry to make room.
    bool evicted = false;
    /// Shard the key mapped to (for per-shard gauges).
    size_t shard = 0;
    /// Net entry-footprint change in bytes.
    int64_t bytes_delta = 0;
    /// Net compiled-plan bytes change.
    int64_t plan_bytes_delta = 0;
    /// Net resident compiled-plan count change.
    int64_t plans_delta = 0;
  };

  /// What an AttachPlan did.
  struct AttachOutcome {
    /// The resident plan after the call: the attached one, the one that
    /// was already there, or the caller's own plan when the key had
    /// been evicted in the meantime (still usable, just not cached).
    std::shared_ptr<const CompiledPlan> plan;
    /// True iff this call stored the plan on an existing entry.
    bool attached = false;
    size_t shard = 0;
    int64_t bytes_delta = 0;
    int64_t plan_bytes_delta = 0;
    int64_t plans_delta = 0;
  };

  ShardedRewriteCache();
  explicit ShardedRewriteCache(const Options& options);

  ShardedRewriteCache(const ShardedRewriteCache&) = delete;
  ShardedRewriteCache& operator=(const ShardedRewriteCache&) = delete;

  /// Returns the cached entry or nullopt. A hit refreshes the entry's
  /// recency stamp.
  std::optional<CachedQuery> Lookup(const std::string& key);

  /// Inserts `value` under `key`, evicting the least-recently-used
  /// entry of the target shard when it is full. Keeps the existing
  /// value on a key collision (see InsertOutcome::value).
  InsertOutcome Insert(const std::string& key, CachedQuery value);

  /// Stores a compiled plan on the existing entry for `key` (a no-op
  /// when the entry already has one, or was evicted since the lookup).
  AttachOutcome AttachPlan(const std::string& key,
                           std::shared_ptr<const CompiledPlan> plan);

  /// Drops every entry (all shards locked exclusively, one at a time).
  void Clear();

  size_t shard_count() const { return shards_.size(); }
  size_t shard_capacity() const { return shard_capacity_; }
  /// Entries currently held by shard `i`.
  size_t ShardSize(size_t i) const;
  /// Byte footprint of shard `i` (keys + AST estimates + plan tables).
  size_t ShardBytes(size_t i) const;
  /// Resident compiled plans in shard `i`.
  size_t ShardPlans(size_t i) const;
  /// Total entries across shards (each shard read under its own lock;
  /// the sum is approximate while writers are active, exact at rest).
  size_t size() const;
  /// Total byte footprint across shards (same caveat as size()).
  size_t bytes() const;
  /// Total resident compiled plans across shards (same caveat).
  size_t plans() const;
  /// Lifetime evictions across shards.
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// Shard a key maps to (exposed for tests and metric labelling).
  size_t ShardIndex(const std::string& key) const;

  /// Footprint estimate an entry is admitted with: key bytes + AST node
  /// estimate (shared subexpressions counted once per occurrence) +
  /// compiled-plan byte_size(). Exposed for tests.
  static size_t EntryFootprintBytes(const std::string& key,
                                    const CachedQuery& value);

 private:
  struct Entry {
    CachedQuery value;
    /// Footprint recorded at admission (updated by AttachPlan), so
    /// eviction subtracts exactly what insertion added.
    size_t bytes = 0;
    size_t plan_bytes = 0;
    /// Recency stamp; atomic so hits can refresh it under the shared
    /// lock while other readers race on the same entry.
    std::atomic<uint64_t> last_used{0};
  };

  struct Shard {
    mutable std::shared_mutex mu;
    /// unique_ptr values keep Entry (with its atomic) stable across
    /// rehashes.
    std::unordered_map<std::string, std::unique_ptr<Entry>> map;
    /// Byte/plan accounting, written under the exclusive lock and read
    /// under the shared lock.
    size_t bytes = 0;
    size_t plan_bytes = 0;
    size_t plans = 0;
  };

  uint64_t NextTick() { return tick_.fetch_add(1, std::memory_order_relaxed); }

  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> tick_{1};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace secview

#endif  // SECVIEW_ENGINE_REWRITE_CACHE_H_
