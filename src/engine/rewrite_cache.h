#ifndef SECVIEW_ENGINE_REWRITE_CACHE_H_
#define SECVIEW_ENGINE_REWRITE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "xpath/ast.h"

namespace secview {

/// Thread-safe bounded cache for rewritten queries, striped into N
/// shards so concurrent lookups of different keys never contend on one
/// lock. Each shard is guarded by its own shared_mutex: cache hits take
/// the lock shared (many readers in parallel), inserts take it
/// exclusive. Values are shared_ptr<const> ASTs — immutable after
/// construction — so a cached query can be handed to any number of
/// threads without copying.
///
/// Capacity is bounded per shard (total capacity / shard count, at
/// least one entry per shard) with LRU-ish eviction: every hit stamps
/// the entry with a global relaxed tick, and an insert into a full
/// shard evicts the entry with the smallest stamp. The stamp is an
/// atomic field updated under the *shared* lock, so hits stay
/// reader-parallel; eviction scans the shard, which is cheap because a
/// shard holds capacity/shards entries. The bound makes the cache safe
/// against hostile query streams (each distinct query text is a new
/// key) in single- and multi-threaded use alike.
class ShardedRewriteCache {
 public:
  struct Options {
    /// Number of lock stripes. More shards = less contention; sizes are
    /// rounded up so every shard exists even for tiny capacities.
    size_t shards = 8;
    /// Total entry budget across all shards.
    size_t capacity = 1024;
  };

  /// What an Insert did, so the owner can maintain metrics without the
  /// cache knowing about any registry.
  struct InsertOutcome {
    /// The resident value: the inserted one, or the already-present one
    /// when another thread inserted the same key first (both threads
    /// computed the same deterministic rewrite; sharing maximizes AST
    /// reuse).
    PathPtr value;
    /// True iff this call added a new entry.
    bool inserted = false;
    /// True iff this call evicted an entry to make room.
    bool evicted = false;
    /// Shard the key mapped to (for per-shard gauges).
    size_t shard = 0;
  };

  ShardedRewriteCache();
  explicit ShardedRewriteCache(const Options& options);

  ShardedRewriteCache(const ShardedRewriteCache&) = delete;
  ShardedRewriteCache& operator=(const ShardedRewriteCache&) = delete;

  /// Returns the cached query or nullptr. A hit refreshes the entry's
  /// recency stamp.
  PathPtr Lookup(const std::string& key);

  /// Inserts `value` under `key`, evicting the least-recently-used
  /// entry of the target shard when it is full. Keeps the existing
  /// value on a key collision (see InsertOutcome::value).
  InsertOutcome Insert(const std::string& key, PathPtr value);

  /// Drops every entry (all shards locked exclusively, one at a time).
  void Clear();

  size_t shard_count() const { return shards_.size(); }
  size_t shard_capacity() const { return shard_capacity_; }
  /// Entries currently held by shard `i`.
  size_t ShardSize(size_t i) const;
  /// Total entries across shards (each shard read under its own lock;
  /// the sum is approximate while writers are active, exact at rest).
  size_t size() const;
  /// Lifetime evictions across shards.
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// Shard a key maps to (exposed for tests and metric labelling).
  size_t ShardIndex(const std::string& key) const;

 private:
  struct Entry {
    PathPtr value;
    /// Recency stamp; atomic so hits can refresh it under the shared
    /// lock while other readers race on the same entry.
    std::atomic<uint64_t> last_used{0};
  };

  struct Shard {
    mutable std::shared_mutex mu;
    /// unique_ptr values keep Entry (with its atomic) stable across
    /// rehashes.
    std::unordered_map<std::string, std::unique_ptr<Entry>> map;
  };

  uint64_t NextTick() { return tick_.fetch_add(1, std::memory_order_relaxed); }

  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> tick_{1};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace secview

#endif  // SECVIEW_ENGINE_REWRITE_CACHE_H_
