#ifndef SECVIEW_ENGINE_WORKER_POOL_H_
#define SECVIEW_ENGINE_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "engine/engine.h"

namespace secview {

/// Fixed-size thread pool that fans query batches out over a
/// SecureQueryEngine. Construction seals the engine (policy
/// registration is a setup-phase activity; see docs/concurrency.md) and
/// starts the worker threads; destruction drains the queue and joins.
///
/// Each queued task runs one SecureQueryEngine::Execute on a worker
/// thread. The evaluator an execution uses lives on that worker's stack
/// (engine executions construct their own XPathEvaluator), so evaluator
/// counters are per-execution and flush into the engine's shared atomic
/// metrics — no evaluator state ever crosses threads.
///
/// Pool activity is visible in the engine's registry:
///   engine.pool.threads      gauge    worker threads of the live pool
///   engine.pool.queue_depth  gauge    tasks enqueued but not started
///   engine.pool.tasks        counter  tasks executed (lifetime)
///   engine.pool.batches      counter  ExecuteBatch calls (lifetime)
///   engine.pool.shed         counter  tasks rejected at submission
///                                     because the queue was full
///
/// ExecuteBatch may be called from several client threads at once; each
/// batch tracks its own completion state.
///
/// Defensive serving (docs/robustness.md):
///
///  * `Options::queue_cap` bounds the submission queue. A batch whose
///    tasks would push the queue past the cap has the overflow *shed*:
///    those slots return ResourceExhausted immediately, without
///    executing, and engine.pool.shed counts them. The whole batch is
///    enqueued under one lock hold, so shedding is deterministic —
///    exactly the tasks beyond the cap are rejected.
///  * `ExecuteOptions::limits.deadline_ms` is fixed at *submission*:
///    queue wait counts against it. A task whose deadline expired while
///    queued returns DeadlineExceeded without executing; one that starts
///    in time runs with the remaining milliseconds.
///  * CancelAll() aborts everything submitted so far — queued tasks
///    return Cancelled when dequeued, running executions trip at their
///    next budget checkpoint. Batches submitted afterwards run clean.
///    The pool installs its own CancelToken into every task, replacing
///    any caller-provided token.
class QueryWorkerPool {
 public:
  struct Options {
    /// Worker threads; 0 picks std::thread::hardware_concurrency()
    /// (minimum 1).
    size_t threads = 0;
    /// Maximum tasks enqueued-but-not-started before submissions shed.
    /// 0 = unbounded (the historical behavior).
    size_t queue_cap = 0;
  };

  explicit QueryWorkerPool(SecureQueryEngine& engine);
  QueryWorkerPool(SecureQueryEngine& engine, const Options& options);
  ~QueryWorkerPool();

  QueryWorkerPool(const QueryWorkerPool&) = delete;
  QueryWorkerPool& operator=(const QueryWorkerPool&) = delete;

  size_t threads() const { return workers_.size(); }

  /// Cancels every task submitted before this call (queued or running);
  /// see the class comment. Thread-safe; later batches are unaffected.
  void CancelAll() { cancel_source_.CancelAll(); }

  /// Executes every query of `queries` against (`policy`, `doc`) on the
  /// pool and blocks until all are done. Results are returned in input
  /// order: result[i] belongs to queries[i], whatever order the workers
  /// finished in. Per-query failures (denied, malformed) are per-slot
  /// Results — one bad query never aborts the rest of the batch.
  ///
  /// `options` is shared by all tasks of the batch: `bindings`,
  /// `optimize`, and `audit` apply to each query (the audit sink must be
  /// thread-safe — obs::JsonlAuditLog is). `trace` and `explain` are
  /// per-execution outputs and are ignored for batches (a span tree or
  /// explain written by many threads at once would interleave).
  std::vector<Result<ExecuteResult>> ExecuteBatch(
      const std::string& policy, const XmlTree& doc,
      const std::vector<std::string>& queries,
      const ExecuteOptions& options = {});

 private:
  void WorkerLoop();

  SecureQueryEngine& engine_;
  Options options_;
  std::vector<std::thread> workers_;
  CancelSource cancel_source_;

  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;

  obs::Counter* tasks_counter_;
  obs::Counter* batches_counter_;
  obs::Counter* shed_counter_;
  obs::Gauge* queue_depth_gauge_;
  obs::Gauge* threads_gauge_;
};

}  // namespace secview

#endif  // SECVIEW_ENGINE_WORKER_POOL_H_
