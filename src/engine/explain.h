#ifndef SECVIEW_ENGINE_EXPLAIN_H_
#define SECVIEW_ENGINE_EXPLAIN_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "dtd/dtd.h"
#include "obs/json.h"
#include "optimize/optimizer.h"
#include "rewrite/rewriter.h"
#include "security/security_view.h"

namespace secview {

/// Unfolding depth used by EXPLAIN for recursive views when the caller
/// does not supply a document height: deep enough to show the per-level
/// structure, small enough to keep the plan readable.
inline constexpr int kDefaultExplainUnfoldDepth = 4;

struct ExplainOptions {
  /// Also run (and explain) the DTD-based optimizer. Silently skipped —
  /// and reported as skipped — when the document DTD is recursive.
  bool optimize = true;
  /// Height of the target document, selecting the unfolding depth for
  /// recursive views; <= 0 picks kDefaultExplainUnfoldDepth. Ignored for
  /// non-recursive views.
  int doc_height = 0;
};

/// The rewrite decision trail for one query against one policy, without
/// evaluating anything: the (unfolded) view the query was rewritten
/// over, which σ annotations fired at which steps, which sub-queries
/// were pruned and why (at the rewrite level and, for non-recursive
/// DTDs, the optimizer level), and the resulting document queries.
///
/// Deliberately deterministic — no timestamps, durations, or pointers —
/// so the same engine state explains the same query byte-identically
/// (explain_test.cc relies on this).
struct QueryExplain {
  /// Policy name; empty when produced by the free ExplainQuery.
  std::string policy;
  std::string query;

  bool view_recursive = false;
  /// Unfolding depth used (0 for non-recursive views).
  int unfold_depth = 0;
  /// True when unfold_depth fell back to kDefaultExplainUnfoldDepth.
  bool depth_defaulted = false;

  /// Type names of the (unfolded) view, in view-type-id order.
  std::vector<std::string> view_types;
  /// The (unfolded) view DTD as published to users.
  std::string view_dtd;

  /// Rewrite DP sizes plus the full decision trail (collect_explain).
  RewriteStats rewrite;
  std::string rewritten_xpath;

  bool optimizer_available = false;
  bool optimize_requested = true;
  /// Meaningful iff optimize_ran().
  OptimizeStats optimize;
  /// The query that would be evaluated (== rewritten_xpath when the
  /// optimizer did not run).
  std::string final_xpath;

  bool optimize_ran() const { return optimize_requested && optimizer_available; }

  /// Indented text plan (the `secview explain` default rendering).
  std::string ToText() const;
  /// The secview.explain.v1 document.
  obs::Json ToJson() const;
};

/// Explains how `query_text` would be enforced against `view` (derived
/// from `dtd`): parses, unfolds recursive views, rewrites with the trail
/// enabled, and optionally optimizes. Nothing is evaluated and no engine
/// cache is touched.
Result<QueryExplain> ExplainQuery(const Dtd& dtd, const SecurityView& view,
                                  std::string_view query_text,
                                  const ExplainOptions& options = {});

/// Already-prepared query machinery the engine's Prepare path holds, so
/// an EXPLAIN run while serving reuses the very objects the executing
/// threads use — no per-explain QueryRewriter/QueryOptimizer rebuild
/// (rebuilding the optimizer re-derives the whole DTD graph), and no
/// divergence between what EXPLAIN reports and what Execute runs. Both
/// objects are const and stateless per call, so explaining concurrently
/// with serving is safe and never touches (or bypasses the locking of)
/// the sharded rewrite cache.
struct PreparedExplainInputs {
  /// The policy's prepared rewriter; null for recursive views (those
  /// are rewritten over a per-depth unfolded view, rebuilt per call).
  const QueryRewriter* rewriter = nullptr;
  /// The engine's prepared optimizer; null when the document DTD is
  /// recursive. Its presence *defines* optimizer availability here —
  /// this overload never constructs one.
  const QueryOptimizer* optimizer = nullptr;
};

/// The engine path: identical output to the overload above (explain
/// determinism is a contract; explain_test.cc compares the two), but
/// reusing `prepared` instead of rebuilding.
Result<QueryExplain> ExplainQuery(const Dtd& dtd, const SecurityView& view,
                                  std::string_view query_text,
                                  const ExplainOptions& options,
                                  const PreparedExplainInputs& prepared);

}  // namespace secview

#endif  // SECVIEW_ENGINE_EXPLAIN_H_
