#ifndef SECVIEW_XPATH_PLAN_H_
#define SECVIEW_XPATH_PLAN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "xml/tree.h"
#include "xpath/ast.h"

namespace secview {

/// A query plan compiled once from a rewritten (and optionally
/// optimized) AST: the tree of shared_ptr-linked PathExpr/Qualifier
/// nodes lowered into two flat, contiguous op arrays (`ops` for path
/// steps, `quals` for qualifier sub-programs) that reference each other
/// by index instead of by pointer. Labels, comparison constants, and
/// attribute names are hoisted into per-plan tables so the executor
/// resolves each of them exactly once per evaluation (per tree / per
/// binding set) instead of once per step invocation.
///
/// A CompiledPlan is immutable after CompilePlan returns and carries no
/// document- or binding-specific state:
///
///  * label ids are interned *per tree*, so the plan stores label
///    strings and the VM resolves them to this tree's ids at the start
///    of each EvaluateCompiled call;
///  * `[p = $param]` constants are stored unresolved (`is_param`) and
///    looked up in the caller's bindings per execution, so one cached
///    plan serves every binding set.
///
/// This is what makes it safe to cache the plan next to the rewritten
/// AST in ShardedRewriteCache and share it, read-only, across all
/// serving threads (docs/concurrency.md).
struct CompiledPlan {
  /// Path-step opcodes, one per PathKind the evaluator dispatches on,
  /// plus kDescLabelIndexed: the pre-decided index-scan form of
  /// '//label' / '//label[q]' emitted when the plan is compiled for a
  /// LabelIndex (PlanCompileOptions::use_index). Bytecode op reference:
  /// docs/observability.md, "Plan compilation".
  enum class OpCode : uint8_t {
    kEmptySet,          ///< push the empty set
    kEpsilon,           ///< copy the context set
    kLabel,             ///< child step by interned label
    kWildcard,          ///< child step, any element
    kSlash,             ///< compose: left then right
    kDescOrSelf,        ///< descendant-or-self closure, then left
    kDescLabelIndexed,  ///< '//label[q]?' answered from the label index
    kUnion,             ///< left ∪ right (sorted merge)
    kQualified,         ///< left filtered by qualifier program `qual`
  };

  /// One flat path step. Children are `ops` indices (compiled before
  /// their parent, so every reference points backwards); `ast` is the
  /// source AST node, used only as the PlanProfiler's position key and
  /// kept alive by `source`.
  struct Op {
    OpCode code;
    int32_t label = -1;  ///< labels[] index (kLabel, kDescLabelIndexed)
    int32_t left = -1;   ///< ops[] index (kSlash/kUnion lhs, unary operand)
    int32_t right = -1;  ///< ops[] index (kSlash/kUnion rhs)
    int32_t qual = -1;   ///< quals[] index (kQualified, kDescLabelIndexed)
    const PathExpr* ast = nullptr;
  };

  /// One flat qualifier step (the inlined sub-program of a filter op).
  struct Qual {
    QualKind kind;
    int32_t path = -1;      ///< ops[] index (kPath, kPathEqConst)
    int32_t constant = -1;  ///< consts[] index (kPathEqConst, kAttrEq)
    int32_t attr = -1;      ///< attrs[] index (kAttrEq, kAttrExists)
    int32_t left = -1;      ///< quals[] index (kAnd/kOr lhs, kNot operand)
    int32_t right = -1;     ///< quals[] index (kAnd/kOr rhs)
    const Qualifier* ast = nullptr;
  };

  /// A comparison constant, or (is_param) the name of a $parameter the
  /// VM resolves from the caller's bindings at execution time.
  struct Const {
    std::string value;
    bool is_param = false;
  };

  /// Entry op (always the last op compiled; the arrays are post-order).
  int32_t root = -1;
  std::vector<Op> ops;
  std::vector<Qual> quals;
  /// Deduplicated label strings, resolved to this-tree ids per call.
  std::vector<std::string> labels;
  std::vector<Const> consts;
  std::vector<std::string> attrs;
  /// True iff '//label' steps were lowered to kDescLabelIndexed; such a
  /// plan requires an evaluator with a LabelIndex attached.
  bool uses_index = false;
  /// The AST the plan was compiled from. Keeps the profiler's per-op
  /// `ast` position keys alive for the plan's lifetime.
  PathPtr source;

  /// Approximate resident footprint (tables + strings + this struct),
  /// cached at compile time; drives the engine.plan.cache_bytes gauge
  /// and the rewrite cache's per-shard byte accounting.
  size_t byte_size() const { return byte_size_; }
  size_t byte_size_ = 0;
};

struct PlanCompileOptions {
  /// Lower '//label' (and '//label[q]') steps to index scans. The
  /// resulting plan can only run on an evaluator with a LabelIndex
  /// attached; the engine compiles with the default (false) because it
  /// evaluates against arbitrary caller documents.
  bool use_index = false;
};

/// Lowers `p` into a CompiledPlan. Returns nullptr for a null query.
/// Deterministic and side-effect free; the plan shares (and retains)
/// the AST but never mutates it.
std::shared_ptr<const CompiledPlan> CompilePlan(
    const PathPtr& p, const PlanCompileOptions& options = {});

/// Reusable evaluation scratch: a pool of NodeSet buffers plus the
/// per-execution label/constant resolution slots, so steady-state
/// compiled evaluation performs no per-step heap allocation — every
/// intermediate context/result set is borrowed from the pool and
/// returned with its capacity intact.
///
/// Not thread-safe: one scratch per thread, like the evaluator itself.
/// EvaluateCompiled defaults to a thread_local instance, which is what
/// gives each QueryWorkerPool worker its own warm arena. Buffers are
/// retained for the lifetime of the scratch (bounded by the deepest
/// plan evaluated on the thread); lifecycle details are documented in
/// docs/observability.md, "Plan compilation".
class EvalScratch {
 public:
  EvalScratch();
  ~EvalScratch();
  EvalScratch(const EvalScratch&) = delete;
  EvalScratch& operator=(const EvalScratch&) = delete;

  /// The calling thread's shared scratch arena.
  static EvalScratch& ThreadLocal();

  /// Borrows a cleared buffer (capacity retained from earlier use).
  std::vector<NodeId>* AcquireSet() {
    if (free_.empty()) {
      owned_.push_back(std::make_unique<std::vector<NodeId>>());
      return owned_.back().get();
    }
    std::vector<NodeId>* set = free_.back();
    free_.pop_back();
    set->clear();
    return set;
  }

  /// Returns a borrowed buffer to the pool.
  void ReleaseSet(std::vector<NodeId>* set) { free_.push_back(set); }

  /// Per-execution resolution slots (plan label -> this tree's interned
  /// id; plan const -> bound string). Reused across calls.
  std::vector<int>& label_slots() { return label_slots_; }
  std::vector<const std::string*>& const_slots() { return const_slots_; }

  /// Buffers ever created (pool high-water mark, for tests).
  size_t pooled_sets() const { return owned_.size(); }

  /// Retained heap behind this scratch (pooled buffer capacities plus
  /// the slot vectors), computed by walking owned_ — owner thread only.
  size_t FootprintBytes() const;

  /// Publishes FootprintBytes() to a cross-thread-readable atomic. The
  /// evaluator calls this once per compiled evaluation (cheap: the pool
  /// is bounded by the deepest plan), so the memory ledger can sum all
  /// threads' warm arenas without racing their owners.
  void PublishFootprint() {
    published_bytes_.store(FootprintBytes(), std::memory_order_relaxed);
  }

  /// Sum of every live scratch's last published footprint, process-wide.
  /// Feeds the "xpath.eval_scratch" memory-ledger provider.
  static size_t TotalPublishedBytes();

 private:
  std::vector<std::unique_ptr<std::vector<NodeId>>> owned_;
  std::vector<std::vector<NodeId>*> free_;
  std::vector<int> label_slots_;
  std::vector<const std::string*> const_slots_;
  /// Owner-written (relaxed), scraper-read; see PublishFootprint.
  std::atomic<size_t> published_bytes_{0};
};

}  // namespace secview

#endif  // SECVIEW_XPATH_PLAN_H_
