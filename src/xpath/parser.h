#ifndef SECVIEW_XPATH_PARSER_H_
#define SECVIEW_XPATH_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xpath/ast.h"

namespace secview {

/// Parses an XPath expression in the paper's fragment C (Section 2):
///
///   p ::= '.' | name | '*' | p '/' p | '//' p | p '|' p | p '[' q ']'
///   q ::= p | p '=' literal | q 'and' q | q 'or' q | 'not(' q ')'
///         | 'true()' | 'false()' | '@'name '=' literal
///   literal ::= '"'chars'"' | "'"chars"'" | '$'name
///
/// `$name` literals are query parameters (the paper's $wardNo); bind them
/// with BindParams() before evaluation. Expressions are relative to the
/// context node; a leading '//' is allowed, a leading single '/' is not
/// (the library evaluates queries at the root element, so absolute paths
/// are expressed by omitting the root step).
Result<PathPtr> ParseXPath(std::string_view input);

/// Parses a bare qualifier (the part between '[' and ']').
Result<QualPtr> ParseXPathQualifier(std::string_view input);

}  // namespace secview

#endif  // SECVIEW_XPATH_PARSER_H_
