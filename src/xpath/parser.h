#ifndef SECVIEW_XPATH_PARSER_H_
#define SECVIEW_XPATH_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xpath/ast.h"

namespace secview {

/// Parses an XPath expression in the paper's fragment C (Section 2):
///
///   p ::= '.' | name | '*' | p '/' p | '//' p | p '|' p | p '[' q ']'
///   q ::= p | p '=' literal | q 'and' q | q 'or' q | 'not(' q ')'
///         | 'true()' | 'false()' | '@'name '=' literal
///   literal ::= '"'chars'"' | "'"chars"'" | '$'name
///
/// `$name` literals are query parameters (the paper's $wardNo); bind them
/// with BindParams() before evaluation. Expressions are relative to the
/// context node; a leading '//' is allowed, a leading single '/' is not
/// (the library evaluates queries at the root element, so absolute paths
/// are expressed by omitting the root step).

/// Hostile-input hardening limits for the recursive-descent parser.
/// Queries come from untrusted users, so the defaults are *on*: a 10 MB
/// query string or a qualifier nested a thousand parentheses deep is
/// rejected with kOutOfRange instead of exhausting the stack or heap.
/// Zero means unlimited for any individual field (restoring the
/// pre-hardening behavior); all defaults are far beyond what any
/// legitimate query in the paper's fragment needs.
struct XPathParseLimits {
  /// Maximum query text length in bytes.
  size_t max_input_bytes = 1 << 20;
  /// Maximum nesting depth (parentheses, qualifiers, not(...)): bounds
  /// the parser's recursion and the depth of the resulting AST.
  size_t max_depth = 256;
  /// Maximum number of tokens (steps, literals, operators) parsed:
  /// bounds the AST node count.
  size_t max_tokens = 262144;
};

Result<PathPtr> ParseXPath(std::string_view input);
Result<PathPtr> ParseXPath(std::string_view input,
                           const XPathParseLimits& limits);

/// Parses a bare qualifier (the part between '[' and ']').
Result<QualPtr> ParseXPathQualifier(std::string_view input);
Result<QualPtr> ParseXPathQualifier(std::string_view input,
                                    const XPathParseLimits& limits);

}  // namespace secview

#endif  // SECVIEW_XPATH_PARSER_H_
