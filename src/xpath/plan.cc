#include "xpath/plan.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace secview {

namespace {

/// Lowers one AST into the flat arrays. Children are compiled before
/// their parent is appended, so every index reference points backwards
/// and the entry op is the last element.
class PlanBuilder {
 public:
  explicit PlanBuilder(bool use_index) : use_index_(use_index) {}

  int32_t CompilePath(const PathPtr& p) {
    CompiledPlan::Op op;
    op.ast = p.get();
    switch (p->kind) {
      case PathKind::kEmptySet:
        op.code = CompiledPlan::OpCode::kEmptySet;
        break;
      case PathKind::kEpsilon:
        op.code = CompiledPlan::OpCode::kEpsilon;
        break;
      case PathKind::kLabel:
        op.code = CompiledPlan::OpCode::kLabel;
        op.label = InternLabel(p->label);
        break;
      case PathKind::kWildcard:
        op.code = CompiledPlan::OpCode::kWildcard;
        break;
      case PathKind::kSlash:
        op.code = CompiledPlan::OpCode::kSlash;
        op.left = CompilePath(p->left);
        op.right = CompilePath(p->right);
        break;
      case PathKind::kDescOrSelf: {
        // Pre-decide the evaluator's runtime index check: '//label' and
        // '//label[q]' become one index-scan op (the inner label — and
        // for the qualified form the filter — never get ops of their
        // own, mirroring the interpreter's frame structure exactly).
        if (use_index_) {
          const PathPtr& step = p->left;
          const PathPtr* label_part = &step;
          if (step->kind == PathKind::kQualified) label_part = &step->left;
          if ((*label_part)->kind == PathKind::kLabel) {
            plan_.uses_index = true;
            op.code = CompiledPlan::OpCode::kDescLabelIndexed;
            op.label = InternLabel((*label_part)->label);
            if (step->kind == PathKind::kQualified) {
              op.qual = CompileQual(step->qualifier);
            }
            break;
          }
        }
        op.code = CompiledPlan::OpCode::kDescOrSelf;
        op.left = CompilePath(p->left);
        break;
      }
      case PathKind::kUnion:
        op.code = CompiledPlan::OpCode::kUnion;
        op.left = CompilePath(p->left);
        op.right = CompilePath(p->right);
        break;
      case PathKind::kQualified:
        op.code = CompiledPlan::OpCode::kQualified;
        op.left = CompilePath(p->left);
        op.qual = CompileQual(p->qualifier);
        break;
    }
    plan_.ops.push_back(op);
    return static_cast<int32_t>(plan_.ops.size()) - 1;
  }

  int32_t CompileQual(const QualPtr& q) {
    CompiledPlan::Qual qual;
    qual.kind = q->kind;
    qual.ast = q.get();
    switch (q->kind) {
      case QualKind::kTrue:
      case QualKind::kFalse:
        break;
      case QualKind::kPath:
        qual.path = CompilePath(q->path);
        break;
      case QualKind::kPathEqConst:
        qual.path = CompilePath(q->path);
        qual.constant = InternConst(q->constant, q->is_param);
        break;
      case QualKind::kAttrEq:
        qual.attr = InternAttr(q->attr);
        qual.constant = InternConst(q->constant, /*is_param=*/false);
        break;
      case QualKind::kAttrExists:
        qual.attr = InternAttr(q->attr);
        break;
      case QualKind::kAnd:
      case QualKind::kOr:
        qual.left = CompileQual(q->left);
        qual.right = CompileQual(q->right);
        break;
      case QualKind::kNot:
        qual.left = CompileQual(q->left);
        break;
    }
    plan_.quals.push_back(qual);
    return static_cast<int32_t>(plan_.quals.size()) - 1;
  }

  CompiledPlan Take() { return std::move(plan_); }

 private:
  int32_t InternLabel(const std::string& label) {
    auto [it, inserted] =
        label_ids_.emplace(label, static_cast<int32_t>(plan_.labels.size()));
    if (inserted) plan_.labels.push_back(label);
    return it->second;
  }

  int32_t InternConst(const std::string& value, bool is_param) {
    plan_.consts.push_back({value, is_param});
    return static_cast<int32_t>(plan_.consts.size()) - 1;
  }

  int32_t InternAttr(const std::string& attr) {
    plan_.attrs.push_back(attr);
    return static_cast<int32_t>(plan_.attrs.size()) - 1;
  }

  bool use_index_;
  CompiledPlan plan_;
  std::unordered_map<std::string, int32_t> label_ids_;
};

size_t StringBytes(const std::string& s) {
  // Heap payload only when the string outgrew the small-string buffer.
  return s.capacity() > sizeof(std::string) ? s.capacity() : 0;
}

size_t PlanBytes(const CompiledPlan& plan) {
  size_t bytes = sizeof(CompiledPlan);
  bytes += plan.ops.capacity() * sizeof(CompiledPlan::Op);
  bytes += plan.quals.capacity() * sizeof(CompiledPlan::Qual);
  bytes += plan.labels.capacity() * sizeof(std::string);
  bytes += plan.consts.capacity() * sizeof(CompiledPlan::Const);
  bytes += plan.attrs.capacity() * sizeof(std::string);
  for (const std::string& s : plan.labels) bytes += StringBytes(s);
  for (const CompiledPlan::Const& c : plan.consts) bytes += StringBytes(c.value);
  for (const std::string& s : plan.attrs) bytes += StringBytes(s);
  return bytes;
}

}  // namespace

std::shared_ptr<const CompiledPlan> CompilePlan(
    const PathPtr& p, const PlanCompileOptions& options) {
  if (!p) return nullptr;
  PlanBuilder builder(options.use_index);
  int32_t root = builder.CompilePath(p);
  auto plan = std::make_shared<CompiledPlan>(builder.Take());
  plan->root = root;
  plan->source = p;
  plan->ops.shrink_to_fit();
  plan->quals.shrink_to_fit();
  plan->labels.shrink_to_fit();
  plan->consts.shrink_to_fit();
  plan->attrs.shrink_to_fit();
  plan->byte_size_ = PlanBytes(*plan);
  return plan;
}

EvalScratch& EvalScratch::ThreadLocal() {
  static thread_local EvalScratch scratch;
  return scratch;
}

namespace {

/// Registry of live scratch arenas, so the memory ledger can sum every
/// thread's pooled capacity. Leaked: thread_local scratches unregister
/// during static/thread destruction and must find the registry alive.
struct ScratchRegistry {
  std::mutex mu;
  std::vector<const EvalScratch*> scratches;
};

ScratchRegistry& TheScratchRegistry() {
  static ScratchRegistry* registry = new ScratchRegistry();
  return *registry;
}

}  // namespace

EvalScratch::EvalScratch() {
  ScratchRegistry& registry = TheScratchRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.scratches.push_back(this);
}

EvalScratch::~EvalScratch() {
  ScratchRegistry& registry = TheScratchRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.scratches.erase(std::remove(registry.scratches.begin(),
                                       registry.scratches.end(), this),
                           registry.scratches.end());
}

size_t EvalScratch::FootprintBytes() const {
  size_t total =
      owned_.capacity() * sizeof(std::unique_ptr<std::vector<NodeId>>) +
      free_.capacity() * sizeof(std::vector<NodeId>*) +
      label_slots_.capacity() * sizeof(int) +
      const_slots_.capacity() * sizeof(const std::string*);
  for (const auto& set : owned_) {
    total += sizeof(std::vector<NodeId>) + set->capacity() * sizeof(NodeId);
  }
  return total;
}

size_t EvalScratch::TotalPublishedBytes() {
  ScratchRegistry& registry = TheScratchRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  size_t total = 0;
  for (const EvalScratch* scratch : registry.scratches) {
    total += scratch->published_bytes_.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace secview
