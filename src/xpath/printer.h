#ifndef SECVIEW_XPATH_PRINTER_H_
#define SECVIEW_XPATH_PRINTER_H_

#include <string>

#include "xpath/ast.h"

namespace secview {

/// Renders a path expression in the concrete syntax accepted by
/// ParseXPath. Parentheses are inserted exactly where precedence demands
/// (union under slash, composite steps under qualifiers), so
/// ParseXPath(ToXPathString(p)) accepts every printable expression and
/// yields a semantically equivalent one.
std::string ToXPathString(const PathPtr& p);

/// Renders a qualifier (without the surrounding brackets).
std::string ToXPathString(const QualPtr& q);

}  // namespace secview

#endif  // SECVIEW_XPATH_PRINTER_H_
