#include "xpath/ast.h"

namespace secview {

namespace {

PathPtr NewPath(PathKind kind) {
  auto p = std::make_shared<PathExpr>();
  p->kind = kind;
  return p;
}

QualPtr NewQual(QualKind kind) {
  auto q = std::make_shared<Qualifier>();
  q->kind = kind;
  return q;
}

}  // namespace

PathPtr MakeEmptySet() {
  // Shared singletons: the algebraic simplifications below test kinds, not
  // identity, but sharing avoids churning tiny allocations.
  static const auto& kInstance = *new PathPtr(NewPath(PathKind::kEmptySet));
  return kInstance;
}

PathPtr MakeEpsilon() {
  static const auto& kInstance = *new PathPtr(NewPath(PathKind::kEpsilon));
  return kInstance;
}

PathPtr MakeLabel(std::string label) {
  auto p = std::make_shared<PathExpr>();
  p->kind = PathKind::kLabel;
  p->label = std::move(label);
  return p;
}

PathPtr MakeWildcard() {
  static const auto& kInstance = *new PathPtr(NewPath(PathKind::kWildcard));
  return kInstance;
}

PathPtr MakeSlash(PathPtr p1, PathPtr p2) {
  if (p1->kind == PathKind::kEmptySet || p2->kind == PathKind::kEmptySet) {
    return MakeEmptySet();
  }
  if (p1->kind == PathKind::kEpsilon) return p2;
  if (p2->kind == PathKind::kEpsilon) return p1;
  auto p = NewPath(PathKind::kSlash);
  auto* mutable_p = const_cast<PathExpr*>(p.get());
  mutable_p->left = std::move(p1);
  mutable_p->right = std::move(p2);
  return p;
}

PathPtr MakeDescOrSelf(PathPtr inner) {
  if (inner->kind == PathKind::kEmptySet) return MakeEmptySet();
  // //(//p) == //p
  if (inner->kind == PathKind::kDescOrSelf) return inner;
  auto p = NewPath(PathKind::kDescOrSelf);
  const_cast<PathExpr*>(p.get())->left = std::move(inner);
  return p;
}

PathPtr MakeUnion(PathPtr p1, PathPtr p2) {
  if (p1->kind == PathKind::kEmptySet) return p2;
  if (p2->kind == PathKind::kEmptySet) return p1;
  if (p1 == p2 || PathEquals(p1, p2)) return p1;
  // Distributivity: factoring common prefixes/suffixes keeps the
  // recrw(A, B) expressions of the rewriting algorithm linear in |Dv|
  // (the paper's symbolic-variable argument) and avoids re-evaluating
  // shared branches.
  if (p1->kind == PathKind::kSlash && p2->kind == PathKind::kSlash) {
    if (p1->right == p2->right || PathEquals(p1->right, p2->right)) {
      // x/c U y/c == (x U y)/c
      return MakeSlash(MakeUnion(p1->left, p2->left), p1->right);
    }
    if (p1->left == p2->left || PathEquals(p1->left, p2->left)) {
      // x/c U x/d == x/(c U d)
      return MakeSlash(p1->left, MakeUnion(p1->right, p2->right));
    }
  }
  auto p = NewPath(PathKind::kUnion);
  auto* mutable_p = const_cast<PathExpr*>(p.get());
  mutable_p->left = std::move(p1);
  mutable_p->right = std::move(p2);
  return p;
}

PathPtr MakeUnionAll(std::vector<PathPtr> paths) {
  PathPtr out = MakeEmptySet();
  for (PathPtr& p : paths) out = MakeUnion(std::move(out), std::move(p));
  return out;
}

PathPtr MakeQualified(PathPtr p, QualPtr q) {
  if (p->kind == PathKind::kEmptySet) return MakeEmptySet();
  if (q->kind == QualKind::kTrue) return p;
  if (q->kind == QualKind::kFalse) return MakeEmptySet();
  auto out = NewPath(PathKind::kQualified);
  auto* mutable_p = const_cast<PathExpr*>(out.get());
  mutable_p->left = std::move(p);
  mutable_p->qualifier = std::move(q);
  return out;
}

PathPtr MakeDescendantStep(PathPtr p1, PathPtr p2) {
  return MakeSlash(std::move(p1), MakeDescOrSelf(std::move(p2)));
}

QualPtr MakeQualPath(PathPtr p) {
  if (p->kind == PathKind::kEmptySet) return MakeQualFalse();
  if (p->kind == PathKind::kEpsilon) return MakeQualTrue();
  auto q = NewQual(QualKind::kPath);
  const_cast<Qualifier*>(q.get())->path = std::move(p);
  return q;
}

QualPtr MakeQualEq(PathPtr p, std::string constant, bool is_param) {
  if (p->kind == PathKind::kEmptySet) return MakeQualFalse();
  auto q = NewQual(QualKind::kPathEqConst);
  auto* mutable_q = const_cast<Qualifier*>(q.get());
  mutable_q->path = std::move(p);
  mutable_q->constant = std::move(constant);
  mutable_q->is_param = is_param;
  return q;
}

QualPtr MakeQualAttrEq(std::string attr, std::string value) {
  auto q = NewQual(QualKind::kAttrEq);
  auto* mutable_q = const_cast<Qualifier*>(q.get());
  mutable_q->attr = std::move(attr);
  mutable_q->constant = std::move(value);
  return q;
}

QualPtr MakeQualAttrExists(std::string attr) {
  auto q = NewQual(QualKind::kAttrExists);
  const_cast<Qualifier*>(q.get())->attr = std::move(attr);
  return q;
}

QualPtr MakeQualAnd(QualPtr a, QualPtr b) {
  if (a->kind == QualKind::kFalse || b->kind == QualKind::kFalse) {
    return MakeQualFalse();
  }
  if (a->kind == QualKind::kTrue) return b;
  if (b->kind == QualKind::kTrue) return a;
  auto q = NewQual(QualKind::kAnd);
  auto* mutable_q = const_cast<Qualifier*>(q.get());
  mutable_q->left = std::move(a);
  mutable_q->right = std::move(b);
  return q;
}

QualPtr MakeQualOr(QualPtr a, QualPtr b) {
  if (a->kind == QualKind::kTrue || b->kind == QualKind::kTrue) {
    return MakeQualTrue();
  }
  if (a->kind == QualKind::kFalse) return b;
  if (b->kind == QualKind::kFalse) return a;
  auto q = NewQual(QualKind::kOr);
  auto* mutable_q = const_cast<Qualifier*>(q.get());
  mutable_q->left = std::move(a);
  mutable_q->right = std::move(b);
  return q;
}

QualPtr MakeQualNot(QualPtr inner) {
  if (inner->kind == QualKind::kTrue) return MakeQualFalse();
  if (inner->kind == QualKind::kFalse) return MakeQualTrue();
  if (inner->kind == QualKind::kNot) return inner->left;  // not(not(q)) == q
  auto q = NewQual(QualKind::kNot);
  const_cast<Qualifier*>(q.get())->left = std::move(inner);
  return q;
}

QualPtr MakeQualTrue() {
  static const auto& kInstance = *new QualPtr(NewQual(QualKind::kTrue));
  return kInstance;
}

QualPtr MakeQualFalse() {
  static const auto& kInstance = *new QualPtr(NewQual(QualKind::kFalse));
  return kInstance;
}

bool PathEquals(const PathPtr& a, const PathPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case PathKind::kEmptySet:
    case PathKind::kEpsilon:
    case PathKind::kWildcard:
      return true;
    case PathKind::kLabel:
      return a->label == b->label;
    case PathKind::kSlash:
    case PathKind::kUnion:
      return PathEquals(a->left, b->left) && PathEquals(a->right, b->right);
    case PathKind::kDescOrSelf:
      return PathEquals(a->left, b->left);
    case PathKind::kQualified:
      return PathEquals(a->left, b->left) &&
             QualEquals(a->qualifier, b->qualifier);
  }
  return false;
}

bool QualEquals(const QualPtr& a, const QualPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case QualKind::kTrue:
    case QualKind::kFalse:
      return true;
    case QualKind::kPath:
      return PathEquals(a->path, b->path);
    case QualKind::kPathEqConst:
      return a->constant == b->constant && a->is_param == b->is_param &&
             PathEquals(a->path, b->path);
    case QualKind::kAttrEq:
      return a->attr == b->attr && a->constant == b->constant;
    case QualKind::kAttrExists:
      return a->attr == b->attr;
    case QualKind::kAnd:
    case QualKind::kOr:
      return QualEquals(a->left, b->left) && QualEquals(a->right, b->right);
    case QualKind::kNot:
      return QualEquals(a->left, b->left);
  }
  return false;
}

int PathSize(const PathPtr& p) {
  if (!p) return 0;
  switch (p->kind) {
    case PathKind::kEmptySet:
    case PathKind::kEpsilon:
    case PathKind::kWildcard:
    case PathKind::kLabel:
      return 1;
    case PathKind::kSlash:
    case PathKind::kUnion:
      return 1 + PathSize(p->left) + PathSize(p->right);
    case PathKind::kDescOrSelf:
      return 1 + PathSize(p->left);
    case PathKind::kQualified:
      return 1 + PathSize(p->left) + QualSize(p->qualifier);
  }
  return 1;
}

int QualSize(const QualPtr& q) {
  if (!q) return 0;
  switch (q->kind) {
    case QualKind::kTrue:
    case QualKind::kFalse:
      return 1;
    case QualKind::kPath:
      return 1 + PathSize(q->path);
    case QualKind::kPathEqConst:
      return 2 + PathSize(q->path);
    case QualKind::kAttrEq:
      return 2;
    case QualKind::kAttrExists:
      return 1;
    case QualKind::kAnd:
    case QualKind::kOr:
      return 1 + QualSize(q->left) + QualSize(q->right);
    case QualKind::kNot:
      return 1 + QualSize(q->left);
  }
  return 1;
}

namespace {

bool QualHasUnboundParams(const QualPtr& q) {
  if (!q) return false;
  switch (q->kind) {
    case QualKind::kPathEqConst:
      return q->is_param || HasUnboundParams(q->path);
    case QualKind::kPath:
      return HasUnboundParams(q->path);
    case QualKind::kAnd:
    case QualKind::kOr:
      return QualHasUnboundParams(q->left) || QualHasUnboundParams(q->right);
    case QualKind::kNot:
      return QualHasUnboundParams(q->left);
    default:
      return false;
  }
}

QualPtr BindQualParams(
    const QualPtr& q,
    const std::vector<std::pair<std::string, std::string>>& bindings);

PathPtr BindPathParams(
    const PathPtr& p,
    const std::vector<std::pair<std::string, std::string>>& bindings) {
  if (!p) return p;
  switch (p->kind) {
    case PathKind::kEmptySet:
    case PathKind::kEpsilon:
    case PathKind::kWildcard:
    case PathKind::kLabel:
      return p;
    case PathKind::kSlash:
      return MakeSlash(BindPathParams(p->left, bindings),
                       BindPathParams(p->right, bindings));
    case PathKind::kUnion:
      return MakeUnion(BindPathParams(p->left, bindings),
                       BindPathParams(p->right, bindings));
    case PathKind::kDescOrSelf:
      return MakeDescOrSelf(BindPathParams(p->left, bindings));
    case PathKind::kQualified:
      return MakeQualified(BindPathParams(p->left, bindings),
                           BindQualParams(p->qualifier, bindings));
  }
  return p;
}

QualPtr BindQualParams(
    const QualPtr& q,
    const std::vector<std::pair<std::string, std::string>>& bindings) {
  if (!q) return q;
  switch (q->kind) {
    case QualKind::kTrue:
    case QualKind::kFalse:
    case QualKind::kAttrEq:
    case QualKind::kAttrExists:
      return q;
    case QualKind::kPath:
      return MakeQualPath(BindPathParams(q->path, bindings));
    case QualKind::kPathEqConst: {
      std::string constant = q->constant;
      bool is_param = q->is_param;
      if (is_param) {
        for (const auto& [name, value] : bindings) {
          if (name == q->constant) {
            constant = value;
            is_param = false;
            break;
          }
        }
      }
      return MakeQualEq(BindPathParams(q->path, bindings), std::move(constant),
                        is_param);
    }
    case QualKind::kAnd:
      return MakeQualAnd(BindQualParams(q->left, bindings),
                         BindQualParams(q->right, bindings));
    case QualKind::kOr:
      return MakeQualOr(BindQualParams(q->left, bindings),
                        BindQualParams(q->right, bindings));
    case QualKind::kNot:
      return MakeQualNot(BindQualParams(q->left, bindings));
  }
  return q;
}

}  // namespace

bool HasUnboundParams(const PathPtr& p) {
  if (!p) return false;
  switch (p->kind) {
    case PathKind::kEmptySet:
    case PathKind::kEpsilon:
    case PathKind::kWildcard:
    case PathKind::kLabel:
      return false;
    case PathKind::kSlash:
    case PathKind::kUnion:
      return HasUnboundParams(p->left) || HasUnboundParams(p->right);
    case PathKind::kDescOrSelf:
      return HasUnboundParams(p->left);
    case PathKind::kQualified:
      return HasUnboundParams(p->left) || QualHasUnboundParams(p->qualifier);
  }
  return false;
}

namespace {

QualPtr NormalizeQual(const QualPtr& q);

PathPtr NormalizePathImpl(const PathPtr& p) {
  switch (p->kind) {
    case PathKind::kEmptySet:
    case PathKind::kEpsilon:
    case PathKind::kLabel:
    case PathKind::kWildcard:
      return p;
    case PathKind::kSlash:
      return MakeSlash(NormalizePathImpl(p->left), NormalizePathImpl(p->right));
    case PathKind::kDescOrSelf:
      return MakeDescOrSelf(NormalizePathImpl(p->left));
    case PathKind::kUnion:
      return MakeUnion(NormalizePathImpl(p->left), NormalizePathImpl(p->right));
    case PathKind::kQualified: {
      QualPtr q = NormalizeQual(p->qualifier);
      if (p->left->kind == PathKind::kEpsilon) {
        return MakeQualified(MakeEpsilon(), std::move(q));
      }
      return MakeSlash(NormalizePathImpl(p->left),
                       MakeQualified(MakeEpsilon(), std::move(q)));
    }
  }
  return p;
}

QualPtr NormalizeQual(const QualPtr& q) {
  switch (q->kind) {
    case QualKind::kTrue:
    case QualKind::kFalse:
    case QualKind::kAttrEq:
    case QualKind::kAttrExists:
      return q;
    case QualKind::kPath:
      return MakeQualPath(NormalizePathImpl(q->path));
    case QualKind::kPathEqConst:
      return MakeQualEq(NormalizePathImpl(q->path), q->constant, q->is_param);
    case QualKind::kAnd:
      return MakeQualAnd(NormalizeQual(q->left), NormalizeQual(q->right));
    case QualKind::kOr:
      return MakeQualOr(NormalizeQual(q->left), NormalizeQual(q->right));
    case QualKind::kNot:
      return MakeQualNot(NormalizeQual(q->left));
  }
  return q;
}


}  // namespace

PathPtr NormalizeQualifierSteps(const PathPtr& p) {
  return NormalizePathImpl(p);
}

bool HasUnboundParams(const QualPtr& q) { return QualHasUnboundParams(q); }

PathPtr BindParams(
    const PathPtr& p,
    const std::vector<std::pair<std::string, std::string>>& bindings) {
  return BindPathParams(p, bindings);
}

}  // namespace secview
