#ifndef SECVIEW_XPATH_EVALUATOR_H_
#define SECVIEW_XPATH_EVALUATOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/budget.h"
#include "common/result.h"
#include "obs/metrics.h"
#include "xml/tree.h"
#include "xpath/ast.h"

namespace secview {

/// A set of element nodes, sorted by NodeId (== document order), no
/// duplicates.
using NodeSet = std::vector<NodeId>;

/// Set-at-a-time evaluator for the paper's XPath fragment over one
/// XmlTree. The result of evaluating p at context v is v[[p]]: the set of
/// element nodes reachable via p from v (Section 2). Node sets contain
/// element nodes; `[p = c]` compares the concatenated text content of the
/// reached elements with c, which coincides with the paper's text-node
/// formulation because PCDATA only occurs under str-typed elements.
///
/// The evaluator is stateless between calls apart from its cost counters
/// (below), which benchmarks use as machine-independent cost measures.
class LabelIndex;
class PlanProfiler;
struct CompiledPlan;
class EvalScratch;

/// Machine-independent evaluation costs, accumulated across calls until
/// ResetWork(). `nodes_touched` is the paper's node-visit count; the
/// others break the same work down for observability.
struct EvalCounters {
  uint64_t nodes_touched = 0;    ///< tree nodes inspected
  uint64_t predicate_evals = 0;  ///< qualifier evaluations at a node
  uint64_t index_scans = 0;      ///< '//label' steps answered by the index
  uint64_t sort_skips = 0;       ///< child steps that skipped SortUnique
  uint64_t budget_checks = 0;    ///< strided QueryBudget charge points
};

class XPathEvaluator {
 public:
  explicit XPathEvaluator(const XmlTree& tree) : tree_(&tree) {}

  /// With a label index attached, '//label' steps are answered from the
  /// index in O(log N + matches) instead of scanning subtrees (the index
  /// must be built over the same tree).
  XPathEvaluator(const XmlTree& tree, const LabelIndex* index)
      : tree_(&tree), index_(index) {}

  /// Evaluates `p` at a single context node. Fails if `p` still contains
  /// unbound $parameters.
  Result<NodeSet> Evaluate(const PathPtr& p, NodeId context);

  /// Evaluates `p` at a set of context nodes (must be sorted, duplicate
  /// free).
  Result<NodeSet> Evaluate(const PathPtr& p, const NodeSet& context);

  /// Evaluates a qualifier at one node.
  Result<bool> EvaluateQualifier(const QualPtr& q, NodeId node);

  /// Executes a compiled plan (xpath/plan.h) — semantically identical
  /// to Evaluate on the plan's source AST, including every counter,
  /// budget checkpoint, and profiler frame, but runs the flat bytecode
  /// over pooled NodeSet buffers from `scratch` instead of re-walking
  /// the AST and allocating a fresh set per step. `bindings` resolve
  /// the plan's $parameter constants per call (the plan itself stays
  /// unbound, so cached plans serve every binding set). `scratch`
  /// defaults to the calling thread's EvalScratch::ThreadLocal().
  /// Fails with FailedPrecondition when a $parameter is unbound, and
  /// when the plan was compiled with PlanCompileOptions::use_index but
  /// no LabelIndex is attached. Implemented in xpath/vm.cc.
  Result<NodeSet> EvaluateCompiled(
      const CompiledPlan& plan, NodeId context,
      const std::vector<std::pair<std::string, std::string>>& bindings = {},
      EvalScratch* scratch = nullptr);
  Result<NodeSet> EvaluateCompiled(
      const CompiledPlan& plan, const NodeSet& context,
      const std::vector<std::pair<std::string, std::string>>& bindings = {},
      EvalScratch* scratch = nullptr);

  /// Attaches a metrics registry: every public Evaluate/EvaluateQualifier
  /// call flushes the counters it accumulated into `eval.nodes_touched`,
  /// `eval.predicate_evals`, `eval.index_scans`, and `eval.sort_skips`.
  /// The hot loops only bump plain fields; the atomic adds happen once
  /// per call.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Attaches a cooperative budget: evaluation charges node visits to it
  /// every QueryBudget::kNodeStride touches and unwinds with the budget's
  /// error (DeadlineExceeded / ResourceExhausted / Cancelled) once it
  /// trips. The budget must outlive the evaluator's use of it; pass
  /// nullptr to detach. The unbudgeted fast path costs one pointer
  /// compare per checkpoint.
  void set_budget(QueryBudget* budget) {
    budget_ = budget;
    budget_charged_ = counters_.nodes_touched;
    budget_stop_ = false;
    budget_status_ = Status::OK();
  }

  /// Attaches a per-step plan profiler (xpath/profiler.h): every plan
  /// node and qualifier evaluation opens a profile frame, producing an
  /// EXPLAIN ANALYZE-style StepProfile tree. Pass nullptr to detach.
  /// The unprofiled fast path costs one pointer compare per plan-node
  /// invocation; results are identical with and without a profiler.
  void set_profiler(PlanProfiler* profiler) { profiler_ = profiler; }

  /// Costs accumulated since construction or ResetWork().
  const EvalCounters& counters() const { return counters_; }

  /// Nodes touched since construction or ResetWork() (backward-compatible
  /// alias for counters().nodes_touched).
  uint64_t work() const { return counters_.nodes_touched; }
  void ResetWork() { counters_ = {}; }

 private:
  /// Dispatcher: the unprofiled path falls straight through to EvalStep;
  /// with a profiler attached it brackets EvalStep in a profile frame.
  NodeSet Eval(const PathPtr& p, const NodeSet& ctx);
  NodeSet EvalStep(const PathPtr& p, const NodeSet& ctx);
  NodeSet EvalLabel(int label_id, const NodeSet& ctx);
  NodeSet EvalDescLabelIndexed(int label_id, const NodeSet& ctx);
  NodeSet EvalWildcard(const NodeSet& ctx);
  NodeSet EvalDescOrSelf(const NodeSet& ctx);
  /// Dispatcher/body split, same shape as Eval/EvalStep.
  bool EvalQual(const QualPtr& q, NodeId node);
  bool EvalQualStep(const QualPtr& q, NodeId node);

  /// Compiled-plan VM (xpath/vm.cc): mirrors the Eval/EvalStep and
  /// EvalQual/EvalQualStep pairs op for op, writing into pooled buffers
  /// instead of returning sets by value. Indices address the plan bound
  /// in plan_ for the duration of one EvaluateCompiled call.
  void RunOp(int32_t op, const NodeSet& ctx, NodeSet& out);
  void RunOpStep(int32_t op, const NodeSet& ctx, NodeSet& out);
  void RunLabel(int label_id, const NodeSet& ctx, NodeSet& out);
  void RunWildcard(const NodeSet& ctx, NodeSet& out);
  void RunDescOrSelf(const NodeSet& ctx, NodeSet& out);
  void RunDescLabelIndexed(int label_id, const NodeSet& ctx, NodeSet& out);
  bool RunQual(int32_t q, NodeId node);
  bool RunQualStep(int32_t q, NodeId node);

  static void SortUnique(NodeSet& set);

  /// Adds the counter deltas since `before` to the attached registry.
  void FlushDelta(const EvalCounters& before);

  /// Charges uncharged node visits to the budget once kNodeStride have
  /// accumulated. Returns true when evaluation must stop; the verdict is
  /// sticky so deep recursion unwinds without re-checking the clock.
  bool BudgetTripped() {
    if (budget_ == nullptr || budget_stop_) return budget_stop_;
    uint64_t delta = counters_.nodes_touched - budget_charged_;
    if (delta < QueryBudget::kNodeStride) return false;
    ChargeBudget(delta);
    return budget_stop_;
  }

  void ChargeBudget(uint64_t delta);

  /// Charges the final sub-stride remainder and returns the budget's
  /// verdict for this evaluation (OK when nothing tripped).
  Status FinishBudget();

  const XmlTree* tree_;
  const LabelIndex* index_ = nullptr;
  EvalCounters counters_;
  obs::MetricsRegistry* metrics_ = nullptr;
  PlanProfiler* profiler_ = nullptr;
  QueryBudget* budget_ = nullptr;
  uint64_t budget_charged_ = 0;
  bool budget_stop_ = false;
  Status budget_status_;

  /// Execution state of the compiled-plan VM, valid only during an
  /// EvaluateCompiled call: the plan being run, the scratch arena, and
  /// the per-call label/constant resolutions (slot arrays owned by the
  /// scratch, exposed here as raw pointers for the hot loops).
  const CompiledPlan* plan_ = nullptr;
  EvalScratch* scratch_ = nullptr;
  const int* plan_labels_ = nullptr;
  const std::string* const* plan_consts_ = nullptr;
};

/// Convenience wrapper: evaluates `p` at the tree root.
Result<NodeSet> EvaluateAtRoot(const XmlTree& tree, const PathPtr& p);

}  // namespace secview

#endif  // SECVIEW_XPATH_EVALUATOR_H_
