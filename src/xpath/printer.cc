#include "xpath/printer.h"

namespace secview {

namespace {

void PrintPath(const PathPtr& p, std::string& out);
void PrintQual(const QualPtr& q, std::string& out);

/// True iff `p` can stand as a single step (no parens needed before '['
/// or inside a '/' chain).
bool IsStepLike(const PathPtr& p) {
  switch (p->kind) {
    case PathKind::kLabel:
    case PathKind::kWildcard:
    case PathKind::kEpsilon:
    case PathKind::kQualified:
    case PathKind::kEmptySet:
      return true;
    default:
      return false;
  }
}

void PrintParenthesized(const PathPtr& p, std::string& out) {
  if (IsStepLike(p)) {
    PrintPath(p, out);
  } else {
    out += '(';
    PrintPath(p, out);
    out += ')';
  }
}

/// Prints an operand of '/' — anything but a union can appear bare.
void PrintSlashOperand(const PathPtr& p, std::string& out) {
  if (p->kind == PathKind::kUnion) {
    out += '(';
    PrintPath(p, out);
    out += ')';
  } else {
    PrintPath(p, out);
  }
}

void PrintPath(const PathPtr& p, std::string& out) {
  switch (p->kind) {
    case PathKind::kEmptySet:
      // No concrete-syntax literal exists; '.[false()]' simplifies back to
      // the empty set when re-parsed.
      out += ".[false()]";
      return;
    case PathKind::kEpsilon:
      out += '.';
      return;
    case PathKind::kLabel:
      out += p->label;
      return;
    case PathKind::kWildcard:
      out += '*';
      return;
    case PathKind::kSlash:
      PrintSlashOperand(p->left, out);
      if (p->right->kind == PathKind::kDescOrSelf) {
        // p1/(//p2) prints as p1//p2.
        out += "//";
        PrintParenthesized(p->right->left, out);
      } else {
        out += '/';
        PrintSlashOperand(p->right, out);
      }
      return;
    case PathKind::kDescOrSelf:
      out += "//";
      PrintParenthesized(p->left, out);
      return;
    case PathKind::kUnion:
      PrintPath(p->left, out);
      out += " | ";
      PrintPath(p->right, out);
      return;
    case PathKind::kQualified:
      PrintParenthesized(p->left, out);
      out += '[';
      PrintQual(p->qualifier, out);
      out += ']';
      return;
  }
}

/// True iff `q` binds at least as tightly as 'and' (no parens needed as an
/// 'and' operand).
bool IsAtomicQual(const QualPtr& q) {
  switch (q->kind) {
    case QualKind::kAnd:
    case QualKind::kOr:
      return false;
    default:
      return true;
  }
}

void PrintQualAndOperand(const QualPtr& q, std::string& out) {
  if (IsAtomicQual(q) || q->kind == QualKind::kAnd) {
    PrintQual(q, out);
  } else {
    out += '(';
    PrintQual(q, out);
    out += ')';
  }
}

void PrintQual(const QualPtr& q, std::string& out) {
  switch (q->kind) {
    case QualKind::kTrue:
      out += "true()";
      return;
    case QualKind::kFalse:
      out += "false()";
      return;
    case QualKind::kPath:
      PrintPath(q->path, out);
      return;
    case QualKind::kPathEqConst:
      PrintSlashOperand(q->path, out);
      out += " = ";
      if (q->is_param) {
        out += '$';
        out += q->constant;
      } else {
        out += '"';
        out += q->constant;
        out += '"';
      }
      return;
    case QualKind::kAttrExists:
      out += '@';
      out += q->attr;
      return;
    case QualKind::kAttrEq:
      out += '@';
      out += q->attr;
      out += " = \"";
      out += q->constant;
      out += '"';
      return;
    case QualKind::kAnd:
      PrintQualAndOperand(q->left, out);
      out += " and ";
      PrintQualAndOperand(q->right, out);
      return;
    case QualKind::kOr:
      PrintQual(q->left, out);
      out += " or ";
      PrintQual(q->right, out);
      return;
    case QualKind::kNot:
      out += "not(";
      PrintQual(q->left, out);
      out += ')';
      return;
  }
}

}  // namespace

std::string ToXPathString(const PathPtr& p) {
  std::string out;
  if (p) PrintPath(p, out);
  return out;
}

std::string ToXPathString(const QualPtr& q) {
  std::string out;
  if (q) PrintQual(q, out);
  return out;
}

}  // namespace secview
