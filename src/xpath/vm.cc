// Compiled-plan executor (the VM half of xpath/plan.h): runs the flat
// step bytecode produced by CompilePlan over pooled NodeSet buffers.
//
// Parity contract: every op here reproduces its xpath/evaluator.cc
// counterpart *exactly* — the same counter increments in the same
// order, the same BudgetTripped checkpoints, the same SortUnique-skip
// condition, and the same profiler frame structure (an op whose context
// is empty opens no frame, like Eval's early return). The differential
// harness (tests/plan_test.cc, fuzz/fuzz_plan_diff.cc) holds both
// implementations to identical NodeSets, statuses, and EvalCounters;
// any change to one side must land on both.

#include <algorithm>

#include "xml/label_index.h"
#include "xpath/evaluator.h"
#include "xpath/plan.h"
#include "xpath/profiler.h"

namespace secview {

namespace {

/// RAII borrow of a pooled NodeSet: acquired cleared, released with its
/// capacity intact for the next step.
class BorrowedSet {
 public:
  explicit BorrowedSet(EvalScratch& scratch)
      : scratch_(scratch), set_(scratch.AcquireSet()) {}
  ~BorrowedSet() { scratch_.ReleaseSet(set_); }
  BorrowedSet(const BorrowedSet&) = delete;
  BorrowedSet& operator=(const BorrowedSet&) = delete;

  NodeSet& operator*() { return *set_; }
  NodeSet* operator->() { return set_; }

 private:
  EvalScratch& scratch_;
  NodeSet* set_;
};

}  // namespace

Result<NodeSet> XPathEvaluator::EvaluateCompiled(
    const CompiledPlan& plan, NodeId context,
    const std::vector<std::pair<std::string, std::string>>& bindings,
    EvalScratch* scratch) {
  if (scratch == nullptr) scratch = &EvalScratch::ThreadLocal();
  BorrowedSet ctx(*scratch);
  ctx->push_back(context);
  return EvaluateCompiled(plan, *ctx, bindings, scratch);
}

Result<NodeSet> XPathEvaluator::EvaluateCompiled(
    const CompiledPlan& plan, const NodeSet& context,
    const std::vector<std::pair<std::string, std::string>>& bindings,
    EvalScratch* scratch) {
  if (plan.root < 0 || plan.ops.empty()) {
    return Status::InvalidArgument("empty compiled plan");
  }
  if (plan.uses_index && index_ == nullptr) {
    return Status::FailedPrecondition(
        "plan was compiled for a label index (use_index) but the "
        "evaluator has none attached");
  }
  if (scratch == nullptr) scratch = &EvalScratch::ThreadLocal();

  // Publish the arena's retained footprint on every exit path so the
  // memory ledger's eval-scratch provider reads a current number; the
  // walk is bounded by the pool depth (deepest plan on this thread).
  struct PublishOnExit {
    EvalScratch* scratch;
    ~PublishOnExit() { scratch->PublishFootprint(); }
  } publish{scratch};

  // Per-call resolution: plan label strings -> this tree's interned
  // ids (one hash lookup per distinct label, not per step invocation),
  // plan constants -> bound strings. Same first-match-wins rule as
  // BindParams, so both paths read identical comparison values.
  std::vector<int>& labels = scratch->label_slots();
  labels.clear();
  for (const std::string& label : plan.labels) {
    labels.push_back(tree_->FindLabelId(label));
  }
  std::vector<const std::string*>& consts = scratch->const_slots();
  consts.clear();
  for (const CompiledPlan::Const& c : plan.consts) {
    if (!c.is_param) {
      consts.push_back(&c.value);
      continue;
    }
    const std::string* bound = nullptr;
    for (const auto& [name, value] : bindings) {
      if (name == c.value) {
        bound = &value;
        break;
      }
    }
    if (bound == nullptr) {
      // Message parity with Evaluate() on an unbound AST, so the
      // differential harness can compare statuses verbatim.
      return Status::FailedPrecondition(
          "query contains unbound $parameters; call BindParams first");
    }
    consts.push_back(bound);
  }

  plan_ = &plan;
  scratch_ = scratch;
  plan_labels_ = labels.data();
  plan_consts_ = consts.data();

  EvalCounters before = counters_;
  NodeSet result;
  {
    BorrowedSet out(*scratch);
    RunOp(plan.root, context, *out);
    result = std::move(*out);
  }

  plan_ = nullptr;
  scratch_ = nullptr;
  plan_labels_ = nullptr;
  plan_consts_ = nullptr;

  FlushDelta(before);
  if (metrics_ != nullptr) {
    metrics_->GetCounter("eval.compiled_queries").Add();
  }
  if (budget_ != nullptr) {
    SECVIEW_RETURN_IF_ERROR(FinishBudget());
  }
  return result;
}

// Mirrors Eval(): an empty context short-circuits before the budget
// checkpoint and opens no profiler frame.
void XPathEvaluator::RunOp(int32_t op_idx, const NodeSet& ctx, NodeSet& out) {
  out.clear();
  if (ctx.empty()) return;
  if (BudgetTripped()) return;
  if (profiler_ == nullptr) {
    RunOpStep(op_idx, ctx, out);
    return;
  }
  profiler_->EnterPath(plan_->ops[op_idx].ast, counters_, ctx.size());
  RunOpStep(op_idx, ctx, out);
  profiler_->Exit(counters_, out.size());
}

void XPathEvaluator::RunOpStep(int32_t op_idx, const NodeSet& ctx,
                               NodeSet& out) {
  const CompiledPlan::Op& op = plan_->ops[op_idx];
  switch (op.code) {
    case CompiledPlan::OpCode::kEmptySet:
      return;
    case CompiledPlan::OpCode::kEpsilon:
      out.assign(ctx.begin(), ctx.end());
      return;
    case CompiledPlan::OpCode::kLabel: {
      const int label_id = plan_labels_[op.label];
      if (label_id < 0) return;  // label absent from the document
      RunLabel(label_id, ctx, out);
      return;
    }
    case CompiledPlan::OpCode::kWildcard:
      RunWildcard(ctx, out);
      return;
    case CompiledPlan::OpCode::kSlash: {
      BorrowedSet mid(*scratch_);
      RunOp(op.left, ctx, *mid);
      RunOp(op.right, *mid, out);
      return;
    }
    case CompiledPlan::OpCode::kDescOrSelf: {
      BorrowedSet closure(*scratch_);
      RunDescOrSelf(ctx, *closure);
      RunOp(op.left, *closure, out);
      return;
    }
    case CompiledPlan::OpCode::kDescLabelIndexed: {
      const int label_id = plan_labels_[op.label];
      if (label_id < 0) return;
      if (op.qual < 0) {
        RunDescLabelIndexed(label_id, ctx, out);
        return;
      }
      BorrowedSet matches(*scratch_);
      RunDescLabelIndexed(label_id, ctx, *matches);
      for (NodeId v : *matches) {
        if (RunQual(op.qual, v)) out.push_back(v);
      }
      return;
    }
    case CompiledPlan::OpCode::kUnion: {
      BorrowedSet a(*scratch_);
      BorrowedSet b(*scratch_);
      RunOp(op.left, ctx, *a);
      RunOp(op.right, ctx, *b);
      std::set_union(a->begin(), a->end(), b->begin(), b->end(),
                     std::back_inserter(out));
      return;
    }
    case CompiledPlan::OpCode::kQualified: {
      BorrowedSet candidates(*scratch_);
      RunOp(op.left, ctx, *candidates);
      for (NodeId v : *candidates) {
        if (RunQual(op.qual, v)) out.push_back(v);
      }
      return;
    }
  }
}

void XPathEvaluator::RunLabel(int label_id, const NodeSet& ctx, NodeSet& out) {
  for (NodeId v : ctx) {
    if (BudgetTripped()) break;
    if (!tree_->IsElement(v)) continue;
    for (NodeId c = tree_->first_child(v); c != kNullNode;
         c = tree_->next_sibling(c)) {
      ++counters_.nodes_touched;
      if (tree_->IsElement(c) && tree_->label_id(c) == label_id) {
        out.push_back(c);
      }
    }
  }
  if (ctx.size() == 1) {
    ++counters_.sort_skips;
  } else {
    SortUnique(out);
  }
}

void XPathEvaluator::RunWildcard(const NodeSet& ctx, NodeSet& out) {
  for (NodeId v : ctx) {
    if (BudgetTripped()) break;
    if (!tree_->IsElement(v)) continue;
    for (NodeId c = tree_->first_child(v); c != kNullNode;
         c = tree_->next_sibling(c)) {
      ++counters_.nodes_touched;
      if (tree_->IsElement(c)) out.push_back(c);
    }
  }
  if (ctx.size() == 1) {
    ++counters_.sort_skips;
  } else {
    SortUnique(out);
  }
}

void XPathEvaluator::RunDescOrSelf(const NodeSet& ctx, NodeSet& out) {
  NodeId covered_until = kNullNode;
  for (NodeId v : ctx) {
    if (v < covered_until) continue;  // already inside an emitted subtree
    NodeId end = tree_->SubtreeEnd(v);
    for (NodeId i = v; i < end; ++i) {
      ++counters_.nodes_touched;
      if ((counters_.nodes_touched & (QueryBudget::kNodeStride - 1)) == 0 &&
          BudgetTripped()) {
        return;
      }
      if (tree_->IsElement(i)) out.push_back(i);
    }
    covered_until = end;
  }
}

void XPathEvaluator::RunDescLabelIndexed(int label_id, const NodeSet& ctx,
                                         NodeSet& out) {
  ++counters_.index_scans;
  NodeId covered_until = kNullNode;
  for (NodeId v : ctx) {
    if (BudgetTripped()) break;
    if (v < covered_until) continue;
    NodeId end = tree_->SubtreeEnd(v);
    auto [first, last] = index_->Range(label_id, v, end);
    for (const NodeId* it = first; it != last; ++it) {
      ++counters_.nodes_touched;
      if (*it == v) continue;  // the subtree root is not its own child
      out.push_back(*it);
    }
    covered_until = end;
  }
}

bool XPathEvaluator::RunQual(int32_t q_idx, NodeId node) {
  if (BudgetTripped()) return false;
  if (profiler_ == nullptr) return RunQualStep(q_idx, node);
  profiler_->EnterQual(plan_->quals[q_idx].ast, counters_);
  bool result = RunQualStep(q_idx, node);
  profiler_->Exit(counters_, result ? 1 : 0);
  return result;
}

bool XPathEvaluator::RunQualStep(int32_t q_idx, NodeId node) {
  ++counters_.predicate_evals;
  const CompiledPlan::Qual& q = plan_->quals[q_idx];
  switch (q.kind) {
    case QualKind::kTrue:
      return true;
    case QualKind::kFalse:
      return false;
    case QualKind::kPath: {
      BorrowedSet ctx(*scratch_);
      BorrowedSet reached(*scratch_);
      ctx->push_back(node);
      RunOp(q.path, *ctx, *reached);
      return !reached->empty();
    }
    case QualKind::kPathEqConst: {
      BorrowedSet ctx(*scratch_);
      BorrowedSet reached(*scratch_);
      ctx->push_back(node);
      RunOp(q.path, *ctx, *reached);
      const std::string& want = *plan_consts_[q.constant];
      for (NodeId v : *reached) {
        ++counters_.nodes_touched;
        if (tree_->TextEquals(v, want)) return true;
      }
      return false;
    }
    case QualKind::kAttrEq: {
      auto value = tree_->GetAttribute(node, plan_->attrs[q.attr]);
      return value.has_value() && *value == *plan_consts_[q.constant];
    }
    case QualKind::kAttrExists:
      return tree_->GetAttribute(node, plan_->attrs[q.attr]).has_value();
    case QualKind::kAnd:
      return RunQual(q.left, node) && RunQual(q.right, node);
    case QualKind::kOr:
      return RunQual(q.left, node) || RunQual(q.right, node);
    case QualKind::kNot:
      return !RunQual(q.left, node);
  }
  return false;
}

}  // namespace secview
