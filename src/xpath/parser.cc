#include "xpath/parser.h"

#include <cctype>

#include "common/string_util.h"

namespace secview {

namespace {

/// Recursive-descent parser over the grammar in the header. Precedence,
/// loosest first: union < slash < qualifier application.
class Parser {
 public:
  Parser(std::string_view input, const XPathParseLimits& limits)
      : input_(input), limits_(limits) {}

  Result<PathPtr> ParsePath() {
    SECVIEW_RETURN_IF_ERROR(CheckInputSize());
    SECVIEW_ASSIGN_OR_RETURN(PathPtr p, ParseUnion());
    SkipWs();
    if (!AtEnd()) {
      return Error("unexpected trailing input");
    }
    return p;
  }

  Result<QualPtr> ParseQualifierOnly() {
    SECVIEW_RETURN_IF_ERROR(CheckInputSize());
    SECVIEW_ASSIGN_OR_RETURN(QualPtr q, ParseQual());
    SkipWs();
    if (!AtEnd()) {
      return Error("unexpected trailing input in qualifier");
    }
    return q;
  }

 private:
  /// Balances depth_ across every exit path of a recursive production.
  struct DepthGuard {
    explicit DepthGuard(Parser* p) : p_(p) { ++p_->depth_; }
    ~DepthGuard() { --p_->depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser* p_;
  };

  Status CheckInputSize() const {
    if (limits_.max_input_bytes != 0 &&
        input_.size() > limits_.max_input_bytes) {
      return Status::OutOfRange(
          "XPath input of " + std::to_string(input_.size()) +
          " bytes exceeds limit of " + std::to_string(limits_.max_input_bytes));
    }
    return Status::OK();
  }

  Status CheckDepth() const {
    if (limits_.max_depth != 0 && depth_ > limits_.max_depth) {
      return Status::OutOfRange(
          "XPath nesting depth exceeds limit of " +
          std::to_string(limits_.max_depth));
    }
    return Status::OK();
  }

  /// Counts one parsed token (step, literal, qualifier atom). Backtracked
  /// tokens stay counted, which only makes the bound more conservative.
  Status CountToken() {
    ++tokens_;
    if (limits_.max_tokens != 0 && tokens_ > limits_.max_tokens) {
      return Status::OutOfRange(
          "XPath token count exceeds limit of " +
          std::to_string(limits_.max_tokens));
    }
    return Status::OK();
  }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return AtEnd() ? '\0' : input_[pos_]; }
  char PeekAt(size_t k) const {
    return pos_ + k < input_.size() ? input_[pos_ + k] : '\0';
  }
  void SkipWs() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }
  bool Consume(std::string_view token) {
    SkipWs();
    if (input_.substr(pos_).substr(0, token.size()) != token) return false;
    pos_ += token.size();
    return true;
  }
  /// Consumes `word` only when it is followed by a non-name character, so
  /// that a step named "android" is not cut at "and".
  bool ConsumeWord(std::string_view word) {
    SkipWs();
    if (input_.substr(pos_).substr(0, word.size()) != word) return false;
    size_t after = pos_ + word.size();
    if (after < input_.size() && IsNameChar(input_[after])) return false;
    pos_ = after;
    return true;
  }
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        "XPath parse error at offset " + std::to_string(pos_) + ": " + what +
        " (input: '" + std::string(input_) + "')");
  }

  Result<std::string> ParseName() {
    SkipWs();
    if (AtEnd() || !IsNameStartChar(Peek())) return Error("expected a name");
    size_t begin = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return std::string(input_.substr(begin, pos_ - begin));
  }

  /// union := seq ('|' seq)*
  Result<PathPtr> ParseUnion() {
    DepthGuard depth(this);
    SECVIEW_RETURN_IF_ERROR(CheckDepth());
    SECVIEW_ASSIGN_OR_RETURN(PathPtr p, ParseSeq());
    while (Consume("|")) {
      SECVIEW_ASSIGN_OR_RETURN(PathPtr rhs, ParseSeq());
      p = MakeUnion(std::move(p), std::move(rhs));
    }
    return p;
  }

  /// seq := ('//')? step (('//' | '/') step)*
  Result<PathPtr> ParseSeq() {
    SkipWs();
    PathPtr p;
    if (Consume("//")) {
      SECVIEW_ASSIGN_OR_RETURN(PathPtr step, ParseStep());
      p = MakeDescOrSelf(std::move(step));
    } else if (Peek() == '/') {
      return Error("absolute paths are not supported; queries are relative "
                   "to the context node (use '//' or drop the leading '/')");
    } else {
      SECVIEW_ASSIGN_OR_RETURN(p, ParseStep());
    }
    while (true) {
      SkipWs();
      if (Consume("//")) {
        SECVIEW_ASSIGN_OR_RETURN(PathPtr step, ParseStep());
        p = MakeSlash(std::move(p), MakeDescOrSelf(std::move(step)));
      } else if (Peek() == '/') {
        ++pos_;
        SECVIEW_ASSIGN_OR_RETURN(PathPtr step, ParseStep());
        p = MakeSlash(std::move(p), std::move(step));
      } else {
        return p;
      }
    }
  }

  /// step := primary ('[' qual ']')*
  Result<PathPtr> ParseStep() {
    SECVIEW_ASSIGN_OR_RETURN(PathPtr p, ParsePrimary());
    while (Consume("[")) {
      SECVIEW_ASSIGN_OR_RETURN(QualPtr q, ParseQual());
      if (!Consume("]")) return Error("expected ']'");
      p = MakeQualified(std::move(p), std::move(q));
    }
    return p;
  }

  /// primary := '.' | '*' | '(' union ')' | name
  Result<PathPtr> ParsePrimary() {
    SECVIEW_RETURN_IF_ERROR(CountToken());
    SkipWs();
    if (Consume("(")) {
      SECVIEW_ASSIGN_OR_RETURN(PathPtr p, ParseUnion());
      if (!Consume(")")) return Error("expected ')'");
      return p;
    }
    if (Consume("*")) return MakeWildcard();
    if (Peek() == '.') {
      ++pos_;
      return MakeEpsilon();
    }
    SECVIEW_ASSIGN_OR_RETURN(std::string name, ParseName());
    return MakeLabel(std::move(name));
  }

  /// qual := and_expr ('or' and_expr)*
  Result<QualPtr> ParseQual() {
    DepthGuard depth(this);
    SECVIEW_RETURN_IF_ERROR(CheckDepth());
    SECVIEW_ASSIGN_OR_RETURN(QualPtr q, ParseQualAnd());
    while (ConsumeWord("or")) {
      SECVIEW_ASSIGN_OR_RETURN(QualPtr rhs, ParseQualAnd());
      q = MakeQualOr(std::move(q), std::move(rhs));
    }
    return q;
  }

  /// and_expr := unary ('and' unary)*
  Result<QualPtr> ParseQualAnd() {
    SECVIEW_ASSIGN_OR_RETURN(QualPtr q, ParseQualUnary());
    while (ConsumeWord("and")) {
      SECVIEW_ASSIGN_OR_RETURN(QualPtr rhs, ParseQualUnary());
      q = MakeQualAnd(std::move(q), std::move(rhs));
    }
    return q;
  }

  /// unary := 'not(' qual ')' | 'true()' | 'false()' | '(' qual ')'
  ///        | '@'name '=' literal | path ('=' literal)?
  Result<QualPtr> ParseQualUnary() {
    SECVIEW_RETURN_IF_ERROR(CountToken());
    SkipWs();
    if (ConsumeWord("not")) {
      if (!Consume("(")) return Error("expected '(' after not");
      SECVIEW_ASSIGN_OR_RETURN(QualPtr inner, ParseQual());
      if (!Consume(")")) return Error("expected ')' after not(...)");
      return MakeQualNot(std::move(inner));
    }
    if (ConsumeWord("true")) {
      if (!Consume("(") || !Consume(")")) {
        return Error("expected '()' after true");
      }
      return MakeQualTrue();
    }
    if (ConsumeWord("false")) {
      if (!Consume("(") || !Consume(")")) {
        return Error("expected '()' after false");
      }
      return MakeQualFalse();
    }
    if (Peek() == '(') {
      // Could be a parenthesized boolean or a parenthesized path; decide by
      // trying the boolean reading first and backtracking on failure.
      size_t saved = pos_;
      ++pos_;
      Result<QualPtr> inner = ParseQual();
      if (inner.ok() && Consume(")")) {
        // A boolean connective must follow or the whole thing must end;
        // otherwise this was a path prefix like (a | b)/c.
        SkipWs();
        if (AtEnd() || Peek() == ']' || Peek() == ')' ||
            input_.substr(pos_).substr(0, 3) == "and" ||
            input_.substr(pos_).substr(0, 2) == "or") {
          return std::move(inner).value();
        }
      }
      pos_ = saved;
    }
    if (Peek() == '@') {
      ++pos_;
      SECVIEW_ASSIGN_OR_RETURN(std::string attr, ParseName());
      if (!Consume("=")) {
        // Bare @name: attribute-presence test.
        return MakeQualAttrExists(std::move(attr));
      }
      SECVIEW_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
      if (lit.is_param) {
        return Error("attribute comparisons do not take $parameters");
      }
      return MakeQualAttrEq(std::move(attr), std::move(lit.text));
    }
    SECVIEW_ASSIGN_OR_RETURN(PathPtr p, ParseUnion());
    SkipWs();
    if (Consume("=")) {
      SECVIEW_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
      return MakeQualEq(std::move(p), std::move(lit.text), lit.is_param);
    }
    return MakeQualPath(std::move(p));
  }

  struct Literal {
    std::string text;
    bool is_param = false;
  };

  Result<Literal> ParseLiteral() {
    SECVIEW_RETURN_IF_ERROR(CountToken());
    SkipWs();
    if (Peek() == '$') {
      ++pos_;
      SECVIEW_ASSIGN_OR_RETURN(std::string name, ParseName());
      return Literal{std::move(name), /*is_param=*/true};
    }
    char quote = Peek();
    if (quote != '"' && quote != '\'') {
      return Error("expected a quoted string or $parameter");
    }
    ++pos_;
    size_t begin = pos_;
    while (!AtEnd() && Peek() != quote) ++pos_;
    if (AtEnd()) return Error("unterminated string literal");
    std::string text(input_.substr(begin, pos_ - begin));
    ++pos_;
    return Literal{std::move(text), /*is_param=*/false};
  }

  std::string_view input_;
  XPathParseLimits limits_;
  size_t pos_ = 0;
  size_t depth_ = 0;
  size_t tokens_ = 0;
};

}  // namespace

Result<PathPtr> ParseXPath(std::string_view input) {
  return Parser(input, XPathParseLimits{}).ParsePath();
}

Result<PathPtr> ParseXPath(std::string_view input,
                           const XPathParseLimits& limits) {
  return Parser(input, limits).ParsePath();
}

Result<QualPtr> ParseXPathQualifier(std::string_view input) {
  return Parser(input, XPathParseLimits{}).ParseQualifierOnly();
}

Result<QualPtr> ParseXPathQualifier(std::string_view input,
                                    const XPathParseLimits& limits) {
  return Parser(input, limits).ParseQualifierOnly();
}

}  // namespace secview
