#include "xpath/profiler.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

#include "xpath/ast.h"

namespace secview {

namespace {

/// The label part of a '//p' step: p itself, or p's base when the step
/// is qualified — mirroring the evaluator's indexed-path peeling.
const PathExpr* DescendantInner(const PathExpr* p) {
  const PathExpr* step = p->left.get();
  if (step != nullptr && step->kind == PathKind::kQualified) {
    step = step->left.get();
  }
  return step;
}

}  // namespace

std::string StepSignature(const PathExpr* p) {
  switch (p->kind) {
    case PathKind::kEmptySet:
      return "empty";
    case PathKind::kEpsilon:
      return "self::.";
    case PathKind::kLabel:
      return "child::" + p->label;
    case PathKind::kWildcard:
      return "child::*";
    case PathKind::kSlash:
      return "compose";
    case PathKind::kDescOrSelf: {
      const PathExpr* inner = DescendantInner(p);
      if (inner != nullptr && inner->kind == PathKind::kLabel) {
        return "descendant::" + inner->label;
      }
      if (inner != nullptr && inner->kind == PathKind::kWildcard) {
        return "descendant::*";
      }
      return "descendant::(path)";
    }
    case PathKind::kUnion:
      return "union";
    case PathKind::kQualified:
      return "filter";
  }
  return "unknown";
}

std::string StepAxis(const PathExpr* p) {
  switch (p->kind) {
    case PathKind::kEmptySet:
      return "empty";
    case PathKind::kEpsilon:
      return "self";
    case PathKind::kLabel:
    case PathKind::kWildcard:
      return "child";
    case PathKind::kSlash:
      return "compose";
    case PathKind::kDescOrSelf:
      return "descendant";
    case PathKind::kUnion:
      return "union";
    case PathKind::kQualified:
      return "filter";
  }
  return "unknown";
}

std::string StepSignature(const Qualifier* q) {
  switch (q->kind) {
    case QualKind::kPath:
      return "pred::path";
    case QualKind::kPathEqConst:
      return "pred::eq";
    case QualKind::kAnd:
      return "pred::and";
    case QualKind::kOr:
      return "pred::or";
    case QualKind::kNot:
      return "pred::not";
    case QualKind::kTrue:
      return "pred::true";
    case QualKind::kFalse:
      return "pred::false";
    case QualKind::kAttrEq:
      return "pred::attr-eq";
    case QualKind::kAttrExists:
      return "pred::attr-exists";
  }
  return "pred::unknown";
}

PlanProfiler::PlanProfiler()
    : root_(std::make_unique<StepProfile>()),
      track_alloc_(AllocTrackingAvailable()) {
  root_->signature = "query";
  root_->axis = "query";
  stack_.reserve(16);
}

PlanProfiler::~PlanProfiler() = default;

StepProfile* PlanProfiler::ChildFor(const void* ast, std::string signature,
                                    std::string axis) {
  StepProfile* parent = stack_.empty() ? root_.get() : stack_.back().node;
  for (const auto& child : parent->children) {
    if (child->ast == ast) return child.get();
  }
  auto child = std::make_unique<StepProfile>();
  child->ast = ast;
  child->signature = std::move(signature);
  child->axis = std::move(axis);
  parent->children.push_back(std::move(child));
  return parent->children.back().get();
}

void PlanProfiler::Enter(StepProfile* node, const EvalCounters& counters,
                         size_t context_size) {
  Frame frame;
  frame.node = node;
  frame.enter = counters;
  frame.start = std::chrono::steady_clock::now();
  if (track_alloc_) frame.alloc_enter = ThreadAllocCounts();
  stack_.push_back(std::move(frame));
  node->invocations += 1;
  node->in_cardinality += static_cast<uint64_t>(context_size);
}

void PlanProfiler::EnterPath(const PathExpr* p, const EvalCounters& counters,
                             size_t context_size) {
  // The mirror lookup is positional (parent-scoped, keyed by AST node
  // identity), so the signature is only derived when the position is
  // first visited.
  StepProfile* parent = stack_.empty() ? root_.get() : stack_.back().node;
  StepProfile* node = nullptr;
  for (const auto& child : parent->children) {
    if (child->ast == p) {
      node = child.get();
      break;
    }
  }
  if (node == nullptr) node = ChildFor(p, StepSignature(p), StepAxis(p));
  Enter(node, counters, context_size);
}

void PlanProfiler::EnterQual(const Qualifier* q, const EvalCounters& counters) {
  StepProfile* parent = stack_.empty() ? root_.get() : stack_.back().node;
  StepProfile* node = nullptr;
  for (const auto& child : parent->children) {
    if (child->ast == q) {
      node = child.get();
      break;
    }
  }
  if (node == nullptr) node = ChildFor(q, StepSignature(q), "predicate");
  Enter(node, counters, /*context_size=*/1);
}

void PlanProfiler::Exit(const EvalCounters& counters, size_t out_size) {
  if (stack_.empty()) return;  // unbalanced Exit: drop rather than crash
  Frame frame = std::move(stack_.back());
  stack_.pop_back();

  const auto now = std::chrono::steady_clock::now();
  const uint64_t incl_nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - frame.start)
          .count());
  uint64_t incl_alloc_bytes = 0;
  uint64_t incl_alloc_count = 0;
  if (track_alloc_) {
    const AllocCounts alloc = ThreadAllocCounts();
    incl_alloc_bytes = alloc.bytes - frame.alloc_enter.bytes;
    incl_alloc_count = alloc.count - frame.alloc_enter.count;
  }

  // Inclusive deltas over this frame's lifetime; exclusive = inclusive
  // minus the closed child frames' inclusive totals. The counters are
  // monotone and child frames nest strictly inside this one, so the
  // subtraction never underflows — and the telescoping sum is what makes
  // tree-wide self totals reproduce the evaluator's aggregates exactly.
  const uint64_t nodes = counters.nodes_touched - frame.enter.nodes_touched;
  const uint64_t preds = counters.predicate_evals - frame.enter.predicate_evals;
  const uint64_t scans = counters.index_scans - frame.enter.index_scans;
  const uint64_t skips = counters.sort_skips - frame.enter.sort_skips;

  StepProfile* node = frame.node;
  node->out_cardinality += static_cast<uint64_t>(out_size);
  node->nodes_touched += nodes - frame.child.nodes_touched;
  node->predicate_evals += preds - frame.child.predicate_evals;
  node->index_scans += scans - frame.child.index_scans;
  node->sort_skips += skips - frame.child.sort_skips;
  node->total_nanos += incl_nanos;
  node->self_nanos += incl_nanos - std::min(incl_nanos, frame.child_nanos);
  node->alloc_bytes +=
      incl_alloc_bytes - std::min(incl_alloc_bytes, frame.child_alloc_bytes);
  node->alloc_count +=
      incl_alloc_count - std::min(incl_alloc_count, frame.child_alloc_count);

  if (!stack_.empty()) {
    Frame& parent = stack_.back();
    parent.child.nodes_touched += nodes;
    parent.child.predicate_evals += preds;
    parent.child.index_scans += scans;
    parent.child.sort_skips += skips;
    parent.child_nanos += incl_nanos;
    parent.child_alloc_bytes += incl_alloc_bytes;
    parent.child_alloc_count += incl_alloc_count;
  }
}

std::unique_ptr<StepProfile> PlanProfiler::TakeRoot() {
  auto taken = std::move(root_);
  Reset();
  return taken;
}

void PlanProfiler::Reset() {
  root_ = std::make_unique<StepProfile>();
  root_->signature = "query";
  root_->axis = "query";
  stack_.clear();
}

namespace {

void SumTotals(const StepProfile& step, EvalCounters* totals) {
  totals->nodes_touched += step.nodes_touched;
  totals->predicate_evals += step.predicate_evals;
  totals->index_scans += step.index_scans;
  totals->sort_skips += step.sort_skips;
  for (const auto& child : step.children) SumTotals(*child, totals);
}

void FindHottest(const StepProfile& step, const StepProfile** best) {
  if (*best == nullptr || step.nodes_touched > (*best)->nodes_touched ||
      (step.nodes_touched == (*best)->nodes_touched &&
       step.self_nanos > (*best)->self_nanos)) {
    *best = &step;
  }
  for (const auto& child : step.children) FindHottest(*child, best);
}

}  // namespace

EvalCounters ProfileTotals(const StepProfile& root) {
  EvalCounters totals;
  SumTotals(root, &totals);
  return totals;
}

const StepProfile* HottestStep(const StepProfile& root) {
  const StepProfile* best = nullptr;
  for (const auto& child : root.children) FindHottest(*child, &best);
  return best;
}

std::string HotStepLine(const StepProfile& root) {
  const StepProfile* hot = HottestStep(root);
  if (hot == nullptr) return "";
  return hot->signature + " nodes=" + std::to_string(hot->nodes_touched);
}

namespace {

void AppendStepRow(const StepProfile& step, int depth, std::string& out) {
  std::string name(static_cast<size_t>(depth) * 2, ' ');
  name += step.signature;
  if (name.size() < 28) name.resize(28, ' ');
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s inv=%" PRIu64 " in=%" PRIu64 " out=%" PRIu64
                " nodes=%" PRIu64 " preds=%" PRIu64 " iscans=%" PRIu64
                " skips=%" PRIu64 " self_us=%.1f total_us=%.1f",
                name.c_str(), step.invocations, step.in_cardinality,
                step.out_cardinality, step.nodes_touched, step.predicate_evals,
                step.index_scans, step.sort_skips,
                static_cast<double>(step.self_nanos) / 1e3,
                static_cast<double>(step.total_nanos) / 1e3);
  out += buf;
  if (step.alloc_bytes > 0 || step.alloc_count > 0) {
    std::snprintf(buf, sizeof(buf), " alloc=%" PRIu64 "B/%" PRIu64,
                  step.alloc_bytes, step.alloc_count);
    out += buf;
  }
  out += "\n";
  for (const auto& child : step.children) {
    AppendStepRow(*child, depth + 1, out);
  }
}

}  // namespace

std::string StepProfileText(const StepProfile& root) {
  const EvalCounters totals = ProfileTotals(root);
  std::string out = "plan profile (exclusive per-step costs; totals: nodes=" +
                    std::to_string(totals.nodes_touched) +
                    " preds=" + std::to_string(totals.predicate_evals) +
                    " iscans=" + std::to_string(totals.index_scans) + ")\n";
  std::string hot = HotStepLine(root);
  if (!hot.empty()) out += "hot step: " + hot + "\n";
  for (const auto& child : root.children) {
    AppendStepRow(*child, 1, out);
  }
  return out;
}

obs::Json StepProfileJson(const StepProfile& step) {
  obs::Json j = obs::Json::Object();
  j.Set("step", obs::Json(step.signature));
  j.Set("axis", obs::Json(step.axis));
  j.Set("invocations", obs::Json(step.invocations));
  j.Set("in", obs::Json(step.in_cardinality));
  j.Set("out", obs::Json(step.out_cardinality));
  j.Set("nodes", obs::Json(step.nodes_touched));
  j.Set("preds", obs::Json(step.predicate_evals));
  j.Set("index_scans", obs::Json(step.index_scans));
  j.Set("sort_skips", obs::Json(step.sort_skips));
  j.Set("self_nanos", obs::Json(step.self_nanos));
  j.Set("total_nanos", obs::Json(step.total_nanos));
  j.Set("alloc_bytes", obs::Json(step.alloc_bytes));
  j.Set("alloc_count", obs::Json(step.alloc_count));
  obs::Json children = obs::Json::Array();
  for (const auto& child : step.children) {
    children.Append(StepProfileJson(*child));
  }
  j.Set("children", std::move(children));
  return j;
}

obs::Json ProfileLineJson(const StepProfile& root, std::string_view policy,
                          std::string_view query, int64_t unix_micros) {
  const EvalCounters totals = ProfileTotals(root);
  obs::Json doc = obs::Json::Object();
  doc.Set("schema", obs::Json("secview.profile.v1"));
  doc.Set("unix_micros", obs::Json(static_cast<int64_t>(unix_micros)));
  doc.Set("policy", obs::Json(std::string(policy)));
  doc.Set("query", obs::Json(std::string(query)));
  doc.Set("hot_step", obs::Json(HotStepLine(root)));
  obs::Json counters = obs::Json::Object();
  counters.Set("nodes_touched", obs::Json(totals.nodes_touched));
  counters.Set("predicate_evals", obs::Json(totals.predicate_evals));
  counters.Set("index_scans", obs::Json(totals.index_scans));
  counters.Set("sort_skips", obs::Json(totals.sort_skips));
  doc.Set("counters", std::move(counters));
  obs::Json plan = obs::Json::Array();
  for (const auto& child : root.children) {
    plan.Append(StepProfileJson(*child));
  }
  doc.Set("plan", std::move(plan));
  return doc;
}

namespace {

void FlattenInto(const StepProfile& step,
                 std::map<std::string, obs::PlanStepRecord>& by_signature) {
  obs::PlanStepRecord& rec = by_signature[step.signature];
  if (rec.signature.empty()) {
    rec.signature = step.signature;
    rec.axis = step.axis;
  }
  rec.invocations += step.invocations;
  rec.in_cardinality += step.in_cardinality;
  rec.out_cardinality += step.out_cardinality;
  rec.nodes_touched += step.nodes_touched;
  rec.predicate_evals += step.predicate_evals;
  rec.index_scans += step.index_scans;
  rec.sort_skips += step.sort_skips;
  rec.self_nanos += step.self_nanos;
  rec.total_nanos += step.total_nanos;
  rec.alloc_bytes += step.alloc_bytes;
  rec.alloc_count += step.alloc_count;
  for (const auto& child : step.children) FlattenInto(*child, by_signature);
}

}  // namespace

std::vector<obs::PlanStepRecord> FlattenStepProfile(const StepProfile& root) {
  std::map<std::string, obs::PlanStepRecord> by_signature;
  for (const auto& child : root.children) FlattenInto(*child, by_signature);
  std::vector<obs::PlanStepRecord> out;
  out.reserve(by_signature.size());
  for (auto& [signature, rec] : by_signature) {
    (void)signature;
    rec.queries = 1;
    out.push_back(std::move(rec));
  }
  return out;
}

namespace {

struct AxisTotals {
  uint64_t nodes = 0;
  uint64_t nanos = 0;
};

void CollectAxis(const StepProfile& step,
                 std::map<std::string, AxisTotals>& by_axis,
                 obs::MetricsRegistry& metrics) {
  AxisTotals& totals = by_axis[step.axis];
  totals.nodes += step.nodes_touched;
  totals.nanos += step.self_nanos;
  metrics.GetHistogram("eval.axis." + step.axis + ".step_micros")
      .Observe(step.self_nanos / 1000);
  for (const auto& child : step.children) {
    CollectAxis(*child, by_axis, metrics);
  }
}

}  // namespace

void FlushStepProfileMetrics(const StepProfile& root,
                             obs::MetricsRegistry& metrics) {
  std::map<std::string, AxisTotals> by_axis;
  for (const auto& child : root.children) {
    CollectAxis(*child, by_axis, metrics);
  }
  for (const auto& [axis, totals] : by_axis) {
    metrics.GetCounter("eval.axis." + axis + ".nodes").Add(totals.nodes);
    metrics.GetCounter("eval.axis." + axis + ".micros")
        .Add(totals.nanos / 1000);
  }
}

}  // namespace secview
