#include "xpath/evaluator.h"

#include <algorithm>

#include "xml/label_index.h"
#include "xpath/profiler.h"

namespace secview {

Result<NodeSet> XPathEvaluator::Evaluate(const PathPtr& p, NodeId context) {
  NodeSet ctx{context};
  return Evaluate(p, ctx);
}

Result<NodeSet> XPathEvaluator::Evaluate(const PathPtr& p,
                                         const NodeSet& context) {
  if (!p) return Status::InvalidArgument("null query");
  if (HasUnboundParams(p)) {
    return Status::FailedPrecondition(
        "query contains unbound $parameters; call BindParams first");
  }
  EvalCounters before = counters_;
  NodeSet result = Eval(p, context);
  FlushDelta(before);
  if (budget_ != nullptr) {
    SECVIEW_RETURN_IF_ERROR(FinishBudget());
  }
  return result;
}

Result<bool> XPathEvaluator::EvaluateQualifier(const QualPtr& q, NodeId node) {
  if (!q) return Status::InvalidArgument("null qualifier");
  if (HasUnboundParams(q)) {
    return Status::FailedPrecondition(
        "qualifier contains unbound $parameters; call BindParams first");
  }
  EvalCounters before = counters_;
  bool result = EvalQual(q, node);
  FlushDelta(before);
  if (budget_ != nullptr) {
    SECVIEW_RETURN_IF_ERROR(FinishBudget());
  }
  return result;
}

void XPathEvaluator::ChargeBudget(uint64_t delta) {
  budget_charged_ = counters_.nodes_touched;
  ++counters_.budget_checks;
  Status st = budget_->ChargeNodes(delta);
  if (!st.ok()) {
    budget_stop_ = true;
    budget_status_ = std::move(st);
  }
}

Status XPathEvaluator::FinishBudget() {
  // Charge the sub-stride tail so small budgets trip deterministically
  // even on queries that never cross a stride boundary.
  if (!budget_stop_) {
    ChargeBudget(counters_.nodes_touched - budget_charged_);
  }
  return budget_status_;
}

void XPathEvaluator::FlushDelta(const EvalCounters& before) {
  if (metrics_ == nullptr) return;
  if (uint64_t d = counters_.nodes_touched - before.nodes_touched; d > 0) {
    metrics_->GetCounter("eval.nodes_touched").Add(d);
  }
  if (uint64_t d = counters_.predicate_evals - before.predicate_evals; d > 0) {
    metrics_->GetCounter("eval.predicate_evals").Add(d);
  }
  if (uint64_t d = counters_.index_scans - before.index_scans; d > 0) {
    metrics_->GetCounter("eval.index_scans").Add(d);
  }
  if (uint64_t d = counters_.sort_skips - before.sort_skips; d > 0) {
    metrics_->GetCounter("eval.sort_skips").Add(d);
  }
  if (uint64_t d = counters_.budget_checks - before.budget_checks; d > 0) {
    metrics_->GetCounter("xpath.budget_checks").Add(d);
  }
}

void XPathEvaluator::SortUnique(NodeSet& set) {
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
}

NodeSet XPathEvaluator::Eval(const PathPtr& p, const NodeSet& ctx) {
  if (ctx.empty()) return {};
  if (BudgetTripped()) return {};
  // Unprofiled fast path: one predictable branch, nothing else — the
  // profiler's clocks and bookkeeping only exist behind it.
  if (profiler_ == nullptr) return EvalStep(p, ctx);
  profiler_->EnterPath(p.get(), counters_, ctx.size());
  NodeSet out = EvalStep(p, ctx);
  profiler_->Exit(counters_, out.size());
  return out;
}

NodeSet XPathEvaluator::EvalStep(const PathPtr& p, const NodeSet& ctx) {
  switch (p->kind) {
    case PathKind::kEmptySet:
      return {};
    case PathKind::kEpsilon:
      return ctx;
    case PathKind::kLabel: {
      int label_id = tree_->FindLabelId(p->label);
      if (label_id < 0) return {};  // label absent from the document
      return EvalLabel(label_id, ctx);
    }
    case PathKind::kWildcard:
      return EvalWildcard(ctx);
    case PathKind::kSlash: {
      NodeSet mid = Eval(p->left, ctx);
      return Eval(p->right, mid);
    }
    case PathKind::kDescOrSelf: {
      // Indexed fast path for '//label' (with or without a qualifier):
      // the descendants of each context subtree carrying the label are a
      // binary-searchable slice of the index's posting list.
      if (index_ != nullptr) {
        const PathPtr& step = p->left;
        const PathPtr* label_part = &step;
        if (step->kind == PathKind::kQualified) label_part = &step->left;
        if ((*label_part)->kind == PathKind::kLabel) {
          int label_id = tree_->FindLabelId((*label_part)->label);
          if (label_id < 0) return {};
          NodeSet matches = EvalDescLabelIndexed(label_id, ctx);
          if (step->kind != PathKind::kQualified) return matches;
          NodeSet out;
          out.reserve(matches.size());
          for (NodeId v : matches) {
            if (EvalQual(step->qualifier, v)) out.push_back(v);
          }
          return out;
        }
      }
      NodeSet closure = EvalDescOrSelf(ctx);
      return Eval(p->left, closure);
    }
    case PathKind::kUnion: {
      NodeSet a = Eval(p->left, ctx);
      NodeSet b = Eval(p->right, ctx);
      NodeSet out;
      out.reserve(a.size() + b.size());
      std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                     std::back_inserter(out));
      return out;
    }
    case PathKind::kQualified: {
      NodeSet candidates = Eval(p->left, ctx);
      NodeSet out;
      out.reserve(candidates.size());
      for (NodeId v : candidates) {
        if (EvalQual(p->qualifier, v)) out.push_back(v);
      }
      return out;
    }
  }
  return {};
}

NodeSet XPathEvaluator::EvalLabel(int label_id, const NodeSet& ctx) {
  NodeSet out;
  for (NodeId v : ctx) {
    if (BudgetTripped()) break;
    if (!tree_->IsElement(v)) continue;
    for (NodeId c = tree_->first_child(v); c != kNullNode;
         c = tree_->next_sibling(c)) {
      ++counters_.nodes_touched;
      if (tree_->IsElement(c) && tree_->label_id(c) == label_id) {
        out.push_back(c);
      }
    }
  }
  // Context nodes may be nested within each other, in which case the
  // concatenated child lists are not globally sorted. A single context
  // node's child list is already in document order and duplicate-free.
  if (ctx.size() == 1) {
    ++counters_.sort_skips;
  } else {
    SortUnique(out);
  }
  return out;
}

NodeSet XPathEvaluator::EvalWildcard(const NodeSet& ctx) {
  NodeSet out;
  for (NodeId v : ctx) {
    if (BudgetTripped()) break;
    if (!tree_->IsElement(v)) continue;
    for (NodeId c = tree_->first_child(v); c != kNullNode;
         c = tree_->next_sibling(c)) {
      ++counters_.nodes_touched;
      if (tree_->IsElement(c)) out.push_back(c);
    }
  }
  if (ctx.size() == 1) {
    ++counters_.sort_skips;
  } else {
    SortUnique(out);
  }
  return out;
}

NodeSet XPathEvaluator::EvalDescLabelIndexed(int label_id,
                                             const NodeSet& ctx) {
  ++counters_.index_scans;
  // '//l' selects l-children of the descendant-or-self closure — i.e.,
  // l-labeled strict descendants of ctx nodes, plus l-labeled ctx
  // children of... precisely: nodes labeled l whose parent is in the
  // closure, which is every l node inside a ctx subtree except a ctx
  // node that is itself the subtree root. Since the root of the range is
  // never a child of a closure member unless nested in another ctx
  // subtree (ranges below handle that by skipping covered ranges), drop
  // the range's own first element when it equals the subtree root.
  NodeSet out;
  NodeId covered_until = kNullNode;
  for (NodeId v : ctx) {
    if (BudgetTripped()) break;
    if (v < covered_until) continue;
    NodeId end = tree_->SubtreeEnd(v);
    auto [first, last] = index_->Range(label_id, v, end);
    for (const NodeId* it = first; it != last; ++it) {
      ++counters_.nodes_touched;
      if (*it == v) continue;  // the subtree root is not its own child
      out.push_back(*it);
    }
    covered_until = end;
  }
  return out;
}

NodeSet XPathEvaluator::EvalDescOrSelf(const NodeSet& ctx) {
  // ctx is sorted; overlapping subtree ranges are skipped by tracking the
  // end of the last emitted range. Output is sorted by construction.
  NodeSet out;
  NodeId covered_until = kNullNode;
  for (NodeId v : ctx) {
    if (v < covered_until) continue;  // already inside an emitted subtree
    NodeId end = tree_->SubtreeEnd(v);
    for (NodeId i = v; i < end; ++i) {
      ++counters_.nodes_touched;
      if ((counters_.nodes_touched & (QueryBudget::kNodeStride - 1)) == 0 &&
          BudgetTripped()) {
        return out;
      }
      if (tree_->IsElement(i)) out.push_back(i);
    }
    covered_until = end;
  }
  return out;
}

bool XPathEvaluator::EvalQual(const QualPtr& q, NodeId node) {
  if (BudgetTripped()) return false;
  if (profiler_ == nullptr) return EvalQualStep(q, node);
  profiler_->EnterQual(q.get(), counters_);
  bool result = EvalQualStep(q, node);
  profiler_->Exit(counters_, result ? 1 : 0);
  return result;
}

bool XPathEvaluator::EvalQualStep(const QualPtr& q, NodeId node) {
  ++counters_.predicate_evals;
  switch (q->kind) {
    case QualKind::kTrue:
      return true;
    case QualKind::kFalse:
      return false;
    case QualKind::kPath: {
      NodeSet ctx{node};
      return !Eval(q->path, ctx).empty();
    }
    case QualKind::kPathEqConst: {
      NodeSet ctx{node};
      NodeSet reached = Eval(q->path, ctx);
      for (NodeId v : reached) {
        ++counters_.nodes_touched;
        if (tree_->CollectText(v) == q->constant) return true;
      }
      return false;
    }
    case QualKind::kAttrEq: {
      auto value = tree_->GetAttribute(node, q->attr);
      return value.has_value() && *value == q->constant;
    }
    case QualKind::kAttrExists:
      return tree_->GetAttribute(node, q->attr).has_value();
    case QualKind::kAnd:
      return EvalQual(q->left, node) && EvalQual(q->right, node);
    case QualKind::kOr:
      return EvalQual(q->left, node) || EvalQual(q->right, node);
    case QualKind::kNot:
      return !EvalQual(q->left, node);
  }
  return false;
}

Result<NodeSet> EvaluateAtRoot(const XmlTree& tree, const PathPtr& p) {
  if (tree.empty()) return Status::InvalidArgument("empty document");
  XPathEvaluator evaluator(tree);
  return evaluator.Evaluate(p, tree.root());
}

}  // namespace secview
