#ifndef SECVIEW_XPATH_PROFILER_H_
#define SECVIEW_XPATH_PROFILER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/alloc_tracker.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/plan_profile.h"
#include "xpath/evaluator.h"

namespace secview {

struct PathExpr;
struct Qualifier;

/// One node of an EXPLAIN ANALYZE-style cost tree mirroring the shape of
/// the evaluated plan (the rewritten+optimized AST). Counters are
/// *exclusive* (self) costs — work charged to this step and not to any
/// nested step — so summing a field over the whole tree reproduces the
/// evaluator's aggregate EvalCounters exactly; `total_nanos` is the only
/// inclusive field (children included), mirroring EXPLAIN ANALYZE's
/// "actual time". A step invoked from several places in the plan (the
/// AST is a shared-subexpression DAG) is profiled per *position*: the
/// mirror keys children by AST identity within their parent, so shared
/// subtrees get one StepProfile per occurrence path, not a merged one.
struct StepProfile {
  /// Canonical step signature, e.g. "child::patient", "descendant::*",
  /// "pred::eq". Stable across runs; PlanProfileTable aggregates by it.
  std::string signature;
  /// Coarse step class: child | descendant | self | empty | compose |
  /// union | filter | predicate. Per-axis metrics aggregate by this.
  std::string axis;
  /// AST node identity (position key inside the parent; not exported).
  const void* ast = nullptr;

  uint64_t invocations = 0;      ///< times this step ran
  uint64_t in_cardinality = 0;   ///< sum of context-set sizes
  uint64_t out_cardinality = 0;  ///< sum of result-set sizes (preds: hits)
  uint64_t nodes_touched = 0;    ///< self tree-node inspections
  uint64_t predicate_evals = 0;  ///< self qualifier evaluations
  uint64_t index_scans = 0;      ///< self indexed '//label' answers
  uint64_t sort_skips = 0;       ///< self skipped SortUnique passes
  uint64_t self_nanos = 0;       ///< wall time minus nested steps
  uint64_t total_nanos = 0;      ///< wall time including nested steps
  uint64_t alloc_bytes = 0;      ///< self heap churn (0 w/o alloc tracker)
  uint64_t alloc_count = 0;      ///< self operator-new calls

  std::vector<std::unique_ptr<StepProfile>> children;
};

/// Records per-step costs while an XPathEvaluator runs. Attach with
/// XPathEvaluator::set_profiler before Evaluate; afterwards TakeRoot()
/// yields the profile tree (root is a synthetic "query" container whose
/// children are the top-level steps — several public Evaluate calls on
/// the same profiler accumulate under one root).
///
/// The evaluator pays one pointer-null compare per plan-node invocation
/// when no profiler is attached; all clock/alloc reads below only happen
/// in profiled runs. Not thread-safe: one profiler per evaluator per
/// thread, like the evaluator itself.
class PlanProfiler {
 public:
  PlanProfiler();
  ~PlanProfiler();
  PlanProfiler(const PlanProfiler&) = delete;
  PlanProfiler& operator=(const PlanProfiler&) = delete;

  /// Opens a frame for a path step (counters = the evaluator's counters
  /// at entry, context_size = |ctx|). Frames nest with recursion.
  void EnterPath(const PathExpr* p, const EvalCounters& counters,
                 size_t context_size);
  /// Opens a frame for a qualifier evaluation at one node.
  void EnterQual(const Qualifier* q, const EvalCounters& counters);
  /// Closes the innermost frame; out_size is the step's result-set size
  /// (for qualifiers: 1 if the predicate held, else 0).
  void Exit(const EvalCounters& counters, size_t out_size);

  /// The profile collected so far (valid until TakeRoot/Reset).
  const StepProfile& root() const { return *root_; }

  /// Moves the collected profile out and resets to an empty root. All
  /// open frames must be closed (the evaluator guarantees this).
  std::unique_ptr<StepProfile> TakeRoot();

  void Reset();

 private:
  struct Frame {
    StepProfile* node = nullptr;
    EvalCounters enter;
    std::chrono::steady_clock::time_point start;
    AllocCounts alloc_enter;
    // Inclusive totals of already-closed child frames, subtracted from
    // this frame's inclusive delta to get exclusive (self) costs.
    EvalCounters child;
    uint64_t child_nanos = 0;
    uint64_t child_alloc_bytes = 0;
    uint64_t child_alloc_count = 0;
  };

  /// The mirror-tree node for `ast` under the current frame's node (the
  /// synthetic root when the stack is empty), created on first visit.
  StepProfile* ChildFor(const void* ast, std::string signature,
                        std::string axis);
  void Enter(StepProfile* node, const EvalCounters& counters,
             size_t context_size);

  std::unique_ptr<StepProfile> root_;
  std::vector<Frame> stack_;
  bool track_alloc_;
};

/// Canonical signature/axis of a plan step (exposed for tests; the
/// profiler derives them lazily on first visit).
std::string StepSignature(const PathExpr* p);
std::string StepSignature(const Qualifier* q);
std::string StepAxis(const PathExpr* p);

/// Aggregate exclusive costs over a profile tree. By construction these
/// equal the evaluator's EvalCounters deltas for the profiled calls
/// (minus budget_checks, which the profiler does not attribute).
EvalCounters ProfileTotals(const StepProfile& root);

/// The step with the largest exclusive nodes_touched (ties: largest
/// self_nanos), skipping the synthetic root; nullptr for an empty
/// profile.
const StepProfile* HottestStep(const StepProfile& root);

/// One-line hot-step summary for slow-query-log entries and request
/// traces: "child::patient nodes=123". Empty for an empty profile.
std::string HotStepLine(const StepProfile& root);

/// Indented per-step cost table (the CLI `--profile` rendering).
std::string StepProfileText(const StepProfile& root);

/// Recursive plan object of the secview.profile.v1 schema.
obs::Json StepProfileJson(const StepProfile& step);

/// One secview.profile.v1 JSONL line: schema tag, policy, query,
/// unix_micros, hot_step, aggregate counters, and the plan tree.
/// docs/observability.md documents the schema;
/// obs::ValidateProfileLine checks it.
obs::Json ProfileLineJson(const StepProfile& root, std::string_view policy,
                          std::string_view query, int64_t unix_micros);

/// Flattens a profile tree into per-signature records (same-signature
/// steps merged, synthetic root skipped) for PlanProfileTable::Record.
std::vector<obs::PlanStepRecord> FlattenStepProfile(const StepProfile& root);

/// Adds the tree's exclusive costs to per-axis instruments:
/// `eval.axis.<axis>.nodes` / `eval.axis.<axis>.micros` counters plus an
/// `eval.axis.<axis>.step_micros` histogram observing each step's self
/// time. Called once per profiled query.
void FlushStepProfileMetrics(const StepProfile& root,
                             obs::MetricsRegistry& metrics);

}  // namespace secview

#endif  // SECVIEW_XPATH_PROFILER_H_
