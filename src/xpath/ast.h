#ifndef SECVIEW_XPATH_AST_H_
#define SECVIEW_XPATH_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace secview {

struct PathExpr;
struct Qualifier;

/// XPath ASTs are immutable and shared: the rewriting and optimization
/// algorithms build large unions that reuse subexpressions, so nodes are
/// handed around as shared_ptr<const>.
using PathPtr = std::shared_ptr<const PathExpr>;
using QualPtr = std::shared_ptr<const Qualifier>;

/// Node kinds of the paper's XPath fragment C (Section 2):
///
///   p ::= empty | epsilon | l | * | p/p | //p | p U p | p[q]
///
/// `kDescOrSelf` is the unary '//p' form: descendant-or-self, then p.
enum class PathKind {
  kEmptySet,   ///< the special query returning the empty set over all trees
  kEpsilon,    ///< the empty path (context node itself)
  kLabel,      ///< child step by element-type name
  kWildcard,   ///< child step matching any element
  kSlash,      ///< composition p1/p2
  kDescOrSelf, ///< //p1
  kUnion,      ///< p1 U p2
  kQualified,  ///< p1[q]
};

/// Qualifier kinds:
///
///   q ::= p | p = 'c' | q and q | q or q | not(q)
///
/// plus the constant qualifiers (used by the optimizer when a DTD
/// constraint fixes a truth value) and an attribute-equality extension
/// used by the paper's "naive" baseline ([@accessibility="1"]).
enum class QualKind {
  kPath,        ///< [p]      — existence
  kPathEqConst, ///< [p = c]  — some reached node has string value c
  kAnd,
  kOr,
  kNot,
  kTrue,        ///< always holds (optimizer result)
  kFalse,       ///< never holds (optimizer result)
  kAttrEq,      ///< [@name = "value"] — attribute extension
  kAttrExists,  ///< [@name] — attribute presence
};

/// An XPath path expression. Construct via the Make* factories below,
/// which apply the paper's algebraic identities (e.g. `empty/p == empty`,
/// `empty U p == p`) so that generated queries stay small.
struct PathExpr {
  PathKind kind;
  std::string label;  // kLabel only
  PathPtr left;       // kSlash/kUnion: lhs; kDescOrSelf/kQualified: operand
  PathPtr right;      // kSlash/kUnion: rhs
  QualPtr qualifier;  // kQualified only
};

/// An XPath qualifier.
struct Qualifier {
  QualKind kind;
  PathPtr path;          // kPath, kPathEqConst
  std::string constant;  // kPathEqConst / kAttrEq: comparison value
  bool is_param = false; // kPathEqConst: constant is a $parameter name
  std::string attr;      // kAttrEq: attribute name
  QualPtr left;          // kAnd/kOr: lhs; kNot: operand
  QualPtr right;         // kAnd/kOr: rhs
};

// -- Path factories ---------------------------------------------------------

PathPtr MakeEmptySet();
PathPtr MakeEpsilon();
PathPtr MakeLabel(std::string label);
PathPtr MakeWildcard();

/// p1/p2 with simplifications: empty absorbs, epsilon is the identity.
PathPtr MakeSlash(PathPtr p1, PathPtr p2);

/// //p with simplification //empty == empty.
PathPtr MakeDescOrSelf(PathPtr p);

/// p1 U p2 with simplifications: empty is the identity; p U p == p when
/// the operands are the same object.
PathPtr MakeUnion(PathPtr p1, PathPtr p2);

/// Folds MakeUnion over the list; empty set for an empty list.
PathPtr MakeUnionAll(std::vector<PathPtr> paths);

/// p[q] with simplifications: p[true] == p, p[false] == empty,
/// empty[q] == empty.
PathPtr MakeQualified(PathPtr p, QualPtr q);

/// Convenience: p1//p2 == p1 / (//p2).
PathPtr MakeDescendantStep(PathPtr p1, PathPtr p2);

// -- Qualifier factories ------------------------------------------------------

QualPtr MakeQualPath(PathPtr p);
QualPtr MakeQualEq(PathPtr p, std::string constant, bool is_param = false);
QualPtr MakeQualAttrEq(std::string attr, std::string value);
QualPtr MakeQualAttrExists(std::string attr);
QualPtr MakeQualAnd(QualPtr a, QualPtr b);
QualPtr MakeQualOr(QualPtr a, QualPtr b);
QualPtr MakeQualNot(QualPtr q);
QualPtr MakeQualTrue();
QualPtr MakeQualFalse();

// -- Inspection ---------------------------------------------------------------

/// Structural equality.
bool PathEquals(const PathPtr& a, const PathPtr& b);
bool QualEquals(const QualPtr& a, const QualPtr& b);

/// |p|: number of AST nodes (paths + qualifiers), the size measure in the
/// paper's complexity bounds.
int PathSize(const PathPtr& p);
int QualSize(const QualPtr& q);

/// True iff the expression contains a $parameter that must be bound
/// before evaluation.
bool HasUnboundParams(const PathPtr& p);
bool HasUnboundParams(const QualPtr& q);

/// Replaces every [p = $name] whose parameter appears in `bindings`
/// (name -> value) by [p = value]. Unknown parameters are left in place.
PathPtr BindParams(
    const PathPtr& p,
    const std::vector<std::pair<std::string, std::string>>& bindings);

/// Normalizes p[q] (p != epsilon) into p/.[q], recursively (also inside
/// qualifiers), so that algorithms that rewrite or optimize qualifiers
/// always see them attached to a definite context (the paper's case
/// epsilon[q]). Semantics-preserving.
PathPtr NormalizeQualifierSteps(const PathPtr& p);

}  // namespace secview

#endif  // SECVIEW_XPATH_AST_H_
