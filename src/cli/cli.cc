#include "cli/cli.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <thread>

#include "common/budget.h"
#include "common/crash_reporter.h"
#include "common/failpoint.h"

#include "engine/worker_pool.h"

#include "common/result.h"
#include "dtd/generic_validator.h"
#include "dtd/instance_normalizer.h"
#include "dtd/normalizer.h"
#include "dtd/validator.h"
#include "engine/engine.h"
#include "engine/explain.h"
#include "net/http_client.h"
#include "net/telemetry_server.h"
#include "obs/audit.h"
#include "obs/export.h"
#include "obs/heap_export.h"
#include "obs/heap_profile.h"
#include "obs/mem_ledger.h"
#include "obs/metrics.h"
#include "obs/plan_profile.h"
#include "obs/serving_stats.h"
#include "obs/policy_stats.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "obs/trace_store.h"
#include "security/derive.h"
#include "security/materializer.h"
#include "security/spec_parser.h"
#include "security/analysis.h"
#include "security/view_io.h"
#include "workload/generator.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "optimize/optimizer.h"
#include "rewrite/rewriter.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/plan.h"
#include "xpath/printer.h"
#include "xpath/profiler.h"

namespace secview {

namespace {

constexpr char kUsage[] = R"(secview — secure XML querying with security views

usage:
  secview validate    --dtd FILE --xml FILE
  secview derive      --dtd FILE --spec FILE [--show-sigma] [--out FILE]
  secview rewrite     --dtd FILE (--spec FILE | --view FILE) --query XPATH
                      [--no-optimize]
  secview query       --dtd FILE (--spec FILE | --view FILE) --xml FILE
                      --query XPATH [--bind NAME=VALUE]... [--no-optimize]
                      [--no-compiled] [--extract] [--stats] [--trace-json FILE]
                      [--profile] [--profile-json FILE]
                      [--audit-log FILE [--audit-max-bytes N]]
                      [--metrics-prom FILE] [--metrics-snapshot-dir DIR]
                      [--deadline-ms N] [--max-nodes N] [--max-parse-depth N]
  secview explain     --dtd FILE (--spec FILE | --view FILE) --query XPATH
                      [--no-optimize] [--height N] [--json]
  secview audit-verify --log FILE
  secview bench-serve  --dtd FILE --spec FILE --xml FILE --queries FILE
                      [--threads N] [--repeat N] [--bind NAME=VALUE]...
                      [--no-optimize] [--no-compiled] [--metrics-prom FILE]
                      [--deadline-ms N] [--max-nodes N] [--queue-cap N]
                      [--telemetry-addr HOST:PORT] [--port-file FILE]
                      [--slow-query-micros N] [--trace-sample N] [--profile]
                      [--heap-sample BYTES]
  secview serve       --dtd FILE --spec FILE --xml FILE
                      [--telemetry-addr HOST:PORT] [--port-file FILE]
                      [--queries FILE [--replay-delay-ms N]]
                      [--threads N] [--queue-cap N] [--slow-query-micros N]
                      [--trace-sample N] [--trace-capacity N]
                      [--max-seconds N] [--bind NAME=VALUE]...
                      [--no-optimize] [--no-compiled]
                      [--audit-log FILE [--audit-max-bytes N]]
                      [--deadline-ms N] [--max-nodes N] [--profile]
                      [--heap-sample BYTES]
  secview scrape      (--addr HOST:PORT | --port N) [--path TARGET]
                      [--validate-prom] [--timeout-ms N] [--retries N]
  secview trace-export --in FILE [--chrome] [--out FILE] [--validate]
  secview profile-top --in FILE [--k N]
  secview heap-export --in FILE [--k N] [--collapsed | --json] [--out FILE]
  secview materialize --dtd FILE --spec FILE --xml FILE [--bind NAME=VALUE]...
  secview generate    --dtd FILE [--bytes N] [--seed N] [--branch N]
  secview help

DTD files use <!ELEMENT>/<!ATTLIST> syntax (normalized on load); spec
files use the paper's annotation syntax: one
`ann(parent, child) = Y|N|[qualifier]` per line, `#` comments, `str` as
the child name for text-content annotations, `@name` for attributes.
`derive --out` saves the derived view definition (including the hidden
sigma annotations); `--view` loads one instead of re-deriving from a
specification.

Observability (docs/observability.md): `query --stats` appends the
engine's metrics summary (per-phase latencies, rewrite/optimize DP and
prune counters, evaluator node touches); `query --trace-json FILE`
writes the per-query phase-span tree (parse/unfold/rewrite/optimize/
bind/evaluate) as JSON to FILE ('-' for stdout).

`query --audit-log FILE` appends one secview.audit.v1 JSONL record per
execution — successes and denials alike — with size-based rotation at
--audit-max-bytes (engine path only); `audit-verify` checks such a log
line by line. `query --metrics-prom FILE` dumps the metrics in the
Prometheus text format ('-' for stdout); `--metrics-snapshot-dir DIR`
writes atomic metrics.prom/metrics.json snapshots into DIR. `explain`
renders the rewrite decision trail — σ annotations fired, subqueries
pruned and why, DP cells, optimizer actions — without touching any
document (--json for the secview.explain.v1 document; --height sets the
unfolding depth for recursive views).

`bench-serve` measures concurrent serving throughput (docs/
concurrency.md): it loads the policy, seals the engine, fans the
queries file (one XPath per line, `#` comments) out over a
QueryWorkerPool of --threads workers (default: hardware concurrency),
repeating the whole batch --repeat times (default 10), and reports
queries/sec and the rewrite-cache hit rate.

Defensive serving (docs/robustness.md): `--deadline-ms N` bounds each
execution's wall clock, `--max-nodes N` its evaluator node-visit
budget, and `--max-parse-depth N` the XML/XPath parser nesting depth;
0 (the default) means unlimited for the first two and the built-in
generous default for the third. `bench-serve --queue-cap N` bounds
the pool's submission queue — overflow tasks are shed with
ResourceExhausted instead of queued. Exit codes: 0 ok, 1 failure,
2 usage, 4 deadline exceeded, 5 budget/queue exhausted, 6 cancelled.

Fault injection (docs/robustness.md): every command accepts
`--failpoints SPEC` (or the SECVIEW_FAILPOINTS environment variable;
the flag is applied second and wins per point) to arm named fault
injection points. SPEC is a comma-separated list of
NAME=off|once|every:N|prob:P[:SEED] entries, e.g.
`--failpoints audit.write=every:3,net.send=prob:0.05:7`. Points:
audit.write net.accept net.recv net.send net.connect alloc.evaluate
plan.compile cache.insert pool.submit. Injected faults degrade instead
of crash: audit writes retry then drop-and-count (audit-verify reports
the seq gaps), plan compile/cache failures fall back to AST
evaluation, socket faults answer 500 or shed the connection, pool
faults shed the query. `serve` reflects sustained degradation on
/healthz ("degraded") and /statusz, and arms a crash reporter that
prints build info, active query count, and the last slow query to
stderr on SIGSEGV/SIGABRT.

Telemetry (docs/observability.md): `serve` runs a long-lived engine
behind an embedded HTTP server (localhost by default; port 0 picks an
ephemeral port, discoverable via --port-file) exposing /metrics
(Prometheus text), /varz (secview.metrics.v1 JSON), /healthz
(readiness = engine sealed), and /statusz (build info, uptime,
windowed QPS/error/shed rates, rewrite-cache occupancy, pool queue
depth, slowest recent queries; --slow-query-micros sets the slow-query
threshold, 0 logs every execution). With --queries it replays the file
through the worker pool every --replay-delay-ms (default 100) until
SIGINT/SIGTERM (or --max-seconds). `bench-serve --telemetry-addr`
serves the same endpoints live during a bench run. `scrape` is a
minimal built-in HTTP client for those endpoints; --validate-prom
additionally checks the fetched body against the Prometheus text
grammar.

Request tracing and cost profiling (docs/observability.md): `serve
--trace-sample N` keeps every Nth request's phase-span tree — plus
every slow (>= --slow-query-micros) and every denied/timeout/shed
request — in a bounded ring (--trace-capacity, default 64) served at
/tracez (text) and /tracez?format=json (secview.trace.v1 JSONL); 0
(the default) disables tracing. Per-policy rollups (queries, outcome
mix, nodes touched, allocation, latency percentiles) are always kept
and exposed as labeled series on /metrics, a policy_stats section on
/varz, and a per-policy block on /statusz. `trace-export` validates a
trace.v1 JSONL file (--validate alone checks and reports); with
--chrome it converts the traces to Chrome trace-event JSON (--out,
default stdout) loadable in Perfetto or chrome://tracing.

Plan profiling (docs/observability.md): `query --profile` appends an
EXPLAIN ANALYZE-style per-step cost table to the output — every plan
step's invocations, in/out cardinality, exclusive node touches and
predicate evaluations, and self/total wall time — and `query
--profile-json FILE` writes the same tree as one secview.profile.v1
JSONL line ('-' for stdout). `serve --profile` and `bench-serve
--profile` keep a cross-query rollup of the hottest steps, served live
at /profilez (text; ?k=N bounds the rows) and /profilez?format=json;
bench-serve prints the top steps after the run. `profile-top --in
FILE` validates a profile JSONL file and renders the aggregated
hottest steps (--k sets the row count, default 10). Profiled slow-log
and /tracez entries carry a `hot_step` one-liner naming the costliest
step.

Memory observatory (docs/observability.md): every process exports its
live-heap counters (live/peak bytes and objects from the allocation
hooks, RSS from /proc) on /metrics, /statusz, and /memz, which also
renders the subsystem memory ledger — exact per-subsystem byte
attribution for the loaded document, the rewrite cache, the per-thread
eval-scratch arenas, and the trace/slow-query rings. `serve
--heap-sample BYTES` (also on bench-serve) additionally starts the
sampled allocation-site profiler at one sample per BYTES allocated
(65536 is a good default), served at /heapz (text; ?k=N bounds the
table), /heapz?format=json (secview.heap.v1), and
/heapz?format=collapsed (folded stacks for flamegraph.pl/speedscope).
Sampling refuses to start under sanitizer builds (a skip notice is
printed; serving continues). `heap-export --in FILE` validates a
secview.heap.v1 file and re-renders it offline: the top-K text table
by default (--k, default 20), folded stacks with --collapsed, or
normalized JSON with --json.
)";

/// Parsed command line: flags with values, boolean switches, repeated
/// --bind pairs.
struct Args {
  std::string command;
  std::map<std::string, std::string> values;
  std::map<std::string, bool> switches;
  std::vector<std::pair<std::string, std::string>> bindings;
};

Result<Args> ParseArgs(const std::vector<std::string>& argv) {
  Args args;
  if (argv.empty()) return Status::InvalidArgument("missing command");
  args.command = argv[0];
  for (size_t i = 1; i < argv.size(); ++i) {
    const std::string& arg = argv[i];
    if (arg == "--show-sigma" || arg == "--no-optimize" ||
        arg == "--extract" || arg == "--stats" || arg == "--json" ||
        arg == "--validate-prom" || arg == "--chrome" ||
        arg == "--validate" || arg == "--profile" ||
        arg == "--no-compiled" || arg == "--collapsed") {
      args.switches[arg] = true;
      continue;
    }
    if (arg == "--bind") {
      if (i + 1 >= argv.size()) {
        return Status::InvalidArgument("--bind needs NAME=VALUE");
      }
      const std::string& pair = argv[++i];
      size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("--bind needs NAME=VALUE, got '" +
                                       pair + "'");
      }
      args.bindings.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      if (i + 1 >= argv.size()) {
        return Status::InvalidArgument(arg + " needs a value");
      }
      args.values[arg] = argv[++i];
      continue;
    }
    return Status::InvalidArgument("unexpected argument '" + arg + "'");
  }
  return args;
}

/// Parses a flag value as a non-negative integer. Flags never reach
/// std::stoll (which throws on garbage); malformed or out-of-range
/// values become usage errors instead.
Result<uint64_t> ParseCount(const std::string& flag, const std::string& text) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument(flag + " needs a non-negative integer, " +
                                   "got '" + text + "'");
  }
  errno = 0;
  uint64_t value = std::strtoull(text.c_str(), nullptr, 10);
  if (errno == ERANGE) {
    return Status::InvalidArgument(flag + " is out of range: " + text);
  }
  return value;
}

/// The value of a numeric flag, or `fallback` when absent.
Result<uint64_t> CountFlag(const Args& args, const std::string& flag,
                           uint64_t fallback) {
  auto it = args.values.find(flag);
  if (it == args.values.end()) return fallback;
  return ParseCount(flag, it->second);
}

Result<std::string> Required(const Args& args, const std::string& flag) {
  auto it = args.values.find(flag);
  if (it == args.values.end()) {
    return Status::InvalidArgument("missing required flag " + flag);
  }
  return it->second;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A loaded DTD: the original declarations plus the normalized form and
/// the instance rewriter between them.
struct DtdBundle {
  GenericDtd generic;
  NormalizeResult normalized;
};

Result<DtdBundle> LoadDtdBundle(const Args& args) {
  SECVIEW_ASSIGN_OR_RETURN(std::string path, Required(args, "--dtd"));
  SECVIEW_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  DtdBundle bundle;
  SECVIEW_ASSIGN_OR_RETURN(bundle.generic, ParseDtdText(text));
  SECVIEW_ASSIGN_OR_RETURN(bundle.normalized, NormalizeDtd(bundle.generic));
  return bundle;
}

Result<Dtd> LoadDtd(const Args& args) {
  SECVIEW_ASSIGN_OR_RETURN(DtdBundle bundle, LoadDtdBundle(args));
  return std::move(bundle.normalized.dtd);
}

/// Defensive-serving limits shared by `query` and `bench-serve`
/// (docs/robustness.md). 0 keeps a budget unlimited; --max-parse-depth 0
/// keeps the parsers' built-in generous defaults.
struct ServeLimits {
  BudgetLimits budget;
  XPathParseLimits xpath;
  XmlParseOptions xml;
};

Result<ServeLimits> LoadServeLimits(const Args& args) {
  ServeLimits limits;
  SECVIEW_ASSIGN_OR_RETURN(limits.budget.deadline_ms,
                           CountFlag(args, "--deadline-ms", 0));
  SECVIEW_ASSIGN_OR_RETURN(limits.budget.max_nodes,
                           CountFlag(args, "--max-nodes", 0));
  SECVIEW_ASSIGN_OR_RETURN(uint64_t depth,
                           CountFlag(args, "--max-parse-depth", 0));
  if (depth > 0) {
    limits.xpath.max_depth = static_cast<size_t>(depth);
    limits.xml.max_depth = static_cast<size_t>(depth);
  }
  return limits;
}

/// Loads the document and, when the DTD needed auxiliary types, rewrites
/// it into an instance of the normalized DTD (aux wrappers inserted).
Result<XmlTree> LoadXml(const Args& args, const DtdBundle& bundle,
                        const XmlParseOptions& xml_options = {}) {
  SECVIEW_ASSIGN_OR_RETURN(std::string path, Required(args, "--xml"));
  SECVIEW_ASSIGN_OR_RETURN(XmlTree doc, ParseXmlFile(path, xml_options));
  InstanceNormalizer normalizer = InstanceNormalizer::For(bundle.normalized);
  if (normalizer.IsIdentity()) return doc;
  return normalizer.Normalize(doc);
}

Result<std::unique_ptr<SecureQueryEngine>> LoadEngine(const Args& args) {
  SECVIEW_ASSIGN_OR_RETURN(Dtd dtd, LoadDtd(args));
  SECVIEW_ASSIGN_OR_RETURN(std::unique_ptr<SecureQueryEngine> engine,
                           SecureQueryEngine::Create(std::move(dtd)));
  SECVIEW_ASSIGN_OR_RETURN(std::string spec_path, Required(args, "--spec"));
  SECVIEW_ASSIGN_OR_RETURN(std::string spec_text, ReadFile(spec_path));
  SECVIEW_RETURN_IF_ERROR(engine->RegisterPolicy("policy", spec_text));
  return engine;
}

/// Loads the policy's security view: from a serialized definition
/// (--view) or by deriving from a specification (--spec).
Result<SecurityView> LoadView(const Args& args, const Dtd& dtd) {
  auto view_file = args.values.find("--view");
  if (view_file != args.values.end()) {
    SECVIEW_ASSIGN_OR_RETURN(std::string text, ReadFile(view_file->second));
    return ParseView(dtd, text);
  }
  SECVIEW_ASSIGN_OR_RETURN(std::string spec_path, Required(args, "--spec"));
  SECVIEW_ASSIGN_OR_RETURN(std::string spec_text, ReadFile(spec_path));
  SECVIEW_ASSIGN_OR_RETURN(AccessSpec spec, ParseAccessSpec(dtd, spec_text));
  return DeriveSecurityView(spec);
}

Status CmdValidate(const Args& args, std::ostream& out) {
  SECVIEW_ASSIGN_OR_RETURN(DtdBundle bundle, LoadDtdBundle(args));
  SECVIEW_ASSIGN_OR_RETURN(std::string path, Required(args, "--xml"));
  SECVIEW_ASSIGN_OR_RETURN(XmlTree doc, ParseXmlFile(path));
  // Validate against the original declarations, then cross-check that the
  // normalized instance conforms to the normalized DTD.
  SECVIEW_RETURN_IF_ERROR(ValidateGenericInstance(doc, bundle.generic));
  InstanceNormalizer normalizer = InstanceNormalizer::For(bundle.normalized);
  SECVIEW_ASSIGN_OR_RETURN(XmlTree normalized, normalizer.Normalize(doc));
  SECVIEW_RETURN_IF_ERROR(ValidateInstance(normalized, bundle.normalized.dtd));
  out << "valid: " << doc.node_count() << " nodes conform to the DTD";
  if (!normalizer.IsIdentity()) {
    out << " (" << bundle.normalized.aux_types.size()
        << " auxiliary types in the normalized form)";
  }
  out << "\n";
  return Status::OK();
}

Status CmdDerive(const Args& args, std::ostream& out) {
  SECVIEW_ASSIGN_OR_RETURN(std::unique_ptr<SecureQueryEngine> engine,
                           LoadEngine(args));
  SECVIEW_ASSIGN_OR_RETURN(const SecurityView* view,
                           engine->View("policy"));
  auto out_file = args.values.find("--out");
  if (out_file != args.values.end()) {
    std::ofstream file(out_file->second, std::ios::binary);
    if (!file) {
      return Status::NotFound("cannot open for writing: " +
                              out_file->second);
    }
    file << SerializeView(*view);
    out << "wrote view definition to " << out_file->second << "\n";
  }
  if (args.switches.count("--show-sigma")) {
    out << view->DebugString();
  } else {
    out << view->ViewDtdString();
  }
  for (const CompletenessWarning& warning :
       AnalyzeViewCompleteness(*view)) {
    out << "warning: " << warning.ToString() << "\n";
  }
  return Status::OK();
}

Status CmdRewrite(const Args& args, std::ostream& out) {
  SECVIEW_ASSIGN_OR_RETURN(Dtd dtd, LoadDtd(args));
  SECVIEW_ASSIGN_OR_RETURN(SecurityView view, LoadView(args, dtd));
  SECVIEW_ASSIGN_OR_RETURN(std::string query_text, Required(args, "--query"));
  if (view.IsRecursive()) {
    return Status::FailedPrecondition(
        "the view is recursive; `secview rewrite` needs a concrete "
        "document height — use `secview query` instead");
  }
  SECVIEW_ASSIGN_OR_RETURN(QueryRewriter rewriter,
                           QueryRewriter::Create(view));
  SECVIEW_ASSIGN_OR_RETURN(PathPtr query, ParseXPath(query_text));
  SECVIEW_ASSIGN_OR_RETURN(PathPtr rewritten, rewriter.Rewrite(query));
  if (!args.switches.count("--no-optimize")) {
    rewritten = OptimizeOrPassThrough(dtd, rewritten);
  }
  out << ToXPathString(rewritten) << "\n";
  return Status::OK();
}

/// Writes the trace span tree to the --trace-json target ('-' = `out`).
Status DumpTraceJson(const Args& args, const obs::Trace& trace,
                     std::ostream& out) {
  auto it = args.values.find("--trace-json");
  if (it == args.values.end()) return Status::OK();
  if (it->second == "-") {
    out << trace.ToJsonString(/*pretty=*/true) << "\n";
    return Status::OK();
  }
  std::ofstream file(it->second, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open for writing: " + it->second);
  }
  file << trace.ToJsonString(/*pretty=*/true) << "\n";
  return Status::OK();
}

/// Writes the metrics in Prometheus text format to the --metrics-prom
/// target ('-' = `out`).
Status DumpPrometheus(const Args& args, const obs::MetricsRegistry& metrics,
                      std::ostream& out) {
  auto it = args.values.find("--metrics-prom");
  if (it == args.values.end()) return Status::OK();
  std::string text = obs::RenderPrometheusText(metrics.Collect());
  if (it->second == "-") {
    out << text;
    return Status::OK();
  }
  std::ofstream file(it->second, std::ios::binary);
  if (!file) return Status::NotFound("cannot open for writing: " + it->second);
  file << text;
  return Status::OK();
}

/// Writes the secview.profile.v1 JSONL line to the --profile-json
/// target ('-' = `out`).
Status DumpProfileJson(const Args& args, const StepProfile& profile,
                       const std::string& policy,
                       const std::string& query_text, std::ostream& out) {
  auto it = args.values.find("--profile-json");
  if (it == args.values.end()) return Status::OK();
  std::string body =
      ProfileLineJson(profile, policy, query_text,
                      obs::AuditEvent::NowUnixMicros())
          .Dump(/*pretty=*/false);
  body += "\n";
  if (it->second == "-") {
    out << body;
    return Status::OK();
  }
  std::ofstream file(it->second, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open for writing: " + it->second);
  }
  file << body;
  if (!file.good()) return Status::Internal("failed writing " + it->second);
  return Status::OK();
}

Status CmdQuery(const Args& args, std::ostream& out) {
  SECVIEW_ASSIGN_OR_RETURN(ServeLimits limits, LoadServeLimits(args));
  SECVIEW_ASSIGN_OR_RETURN(DtdBundle bundle, LoadDtdBundle(args));
  SECVIEW_ASSIGN_OR_RETURN(XmlTree doc, LoadXml(args, bundle, limits.xml));
  SECVIEW_ASSIGN_OR_RETURN(std::string query_text,
                           Required(args, "--query"));
  const bool use_view_file = args.values.count("--view") > 0;
  const bool optimize = !args.switches.count("--no-optimize");
  const bool want_stats = args.switches.count("--stats") > 0;
  const bool want_profile = args.switches.count("--profile") > 0 ||
                            args.values.count("--profile-json") > 0;
  obs::Trace trace("secview.query");

  if (use_view_file && args.values.count("--audit-log")) {
    return Status::InvalidArgument(
        "--audit-log needs the audited engine path; use --spec instead of "
        "--view");
  }

  if (!use_view_file) {
    SECVIEW_ASSIGN_OR_RETURN(std::unique_ptr<SecureQueryEngine> engine,
                             LoadEngine(args));

    std::unique_ptr<obs::JsonlAuditLog> audit_log;
    auto audit_path = args.values.find("--audit-log");
    if (audit_path != args.values.end()) {
      obs::JsonlAuditLog::Options audit_options;
      SECVIEW_ASSIGN_OR_RETURN(
          audit_options.max_bytes,
          CountFlag(args, "--audit-max-bytes", audit_options.max_bytes));
      SECVIEW_ASSIGN_OR_RETURN(
          audit_log, obs::JsonlAuditLog::Open(audit_path->second,
                                              audit_options));
    }
    std::unique_ptr<obs::MetricsSnapshotWriter> snapshots;
    auto snapshot_dir = args.values.find("--metrics-snapshot-dir");
    if (snapshot_dir != args.values.end()) {
      snapshots = std::make_unique<obs::MetricsSnapshotWriter>(
          &engine->metrics(), snapshot_dir->second);
      snapshots->Start();
    }

    ExecuteOptions options;
    options.bindings = args.bindings;
    options.optimize = optimize;
    options.use_compiled = !args.switches.count("--no-compiled");
    options.trace = &trace;
    options.audit = audit_log.get();
    options.limits = limits.budget;
    options.parse_limits = limits.xpath;
    options.profile = want_profile;
    Result<ExecuteResult> executed =
        engine->Execute("policy", doc, query_text, options);
    // The final snapshot and the audit record must land even when the
    // query is denied — that is the point of an audit trail.
    if (snapshots != nullptr) snapshots->Stop();
    if (!executed.ok()) {
      SECVIEW_RETURN_IF_ERROR(DumpPrometheus(args, engine->metrics(), out));
      return executed.status();
    }
    ExecuteResult result = std::move(executed).value();
    out << "# rewritten: " << ToXPathString(result.rewritten) << "\n";
    out << "# evaluated: " << ToXPathString(result.evaluated) << "\n";
    out << "# results: " << result.nodes.size() << "\n";
    if (args.switches.count("--extract")) {
      SECVIEW_ASSIGN_OR_RETURN(
          XmlTree answer,
          engine->ExtractResults("policy", doc, result.nodes,
                                 args.bindings));
      XmlWriteOptions pretty;
      pretty.indent = true;
      WriteXml(answer, answer.root(), out, pretty);
    } else {
      for (NodeId n : result.nodes) {
        out << "<" << doc.label(n) << "> node #" << n;
        std::string text = doc.CollectText(n);
        if (!text.empty()) out << " text=\"" << text << "\"";
        out << "\n";
      }
    }
    if (want_stats) {
      const ExecuteStats& s = result.stats;
      out << "# stats: cache=" << (s.cache_hit ? "hit" : "miss")
          << " nodes_touched=" << s.nodes_touched
          << " predicate_evals=" << s.predicate_evals
          << " ast_rewritten=" << s.ast_size_rewritten
          << " ast_evaluated=" << s.ast_size_evaluated << "\n";
      out << engine->metrics().ToText();
    }
    if (result.profile != nullptr) {
      if (args.switches.count("--profile")) {
        out << StepProfileText(*result.profile);
      }
      SECVIEW_RETURN_IF_ERROR(
          DumpProfileJson(args, *result.profile, "policy", query_text, out));
    }
    if (audit_log != nullptr) {
      out << "# audit: " << audit_log->events() << " event(s) appended to "
          << audit_log->path() << "\n";
    }
    if (snapshots != nullptr) {
      out << "# metrics snapshot: " << snapshots->dir() << "\n";
    }
    SECVIEW_RETURN_IF_ERROR(DumpPrometheus(args, engine->metrics(), out));
    return DumpTraceJson(args, trace, out);
  }

  // Saved-view path: rewrite against the loaded definition directly (no
  // specification needed). Instrumented with a local registry so --stats
  // and --trace-json behave the same as the engine path.
  obs::MetricsRegistry metrics;
  const Dtd& dtd = bundle.normalized.dtd;
  SECVIEW_ASSIGN_OR_RETURN(SecurityView view, LoadView(args, dtd));
  PathPtr query;
  {
    obs::ScopedSpan span(&trace, "parse");
    obs::ScopedTimer timer(&metrics.GetHistogram("phase.parse.micros"));
    SECVIEW_ASSIGN_OR_RETURN(query, ParseXPath(query_text, limits.xpath));
  }
  PathPtr rewritten;
  {
    obs::ScopedSpan span(&trace, "rewrite");
    obs::ScopedTimer timer(&metrics.GetHistogram("phase.rewrite.micros"));
    SECVIEW_ASSIGN_OR_RETURN(rewritten,
                             RewriteForDocument(view, query, doc.Height()));
    span.SetAttr("ast_size", PathSize(rewritten));
    metrics.GetCounter("rewrite.queries").Add();
  }
  out << "# rewritten: " << ToXPathString(rewritten) << "\n";
  if (optimize) {
    obs::ScopedSpan span(&trace, "optimize");
    obs::ScopedTimer timer(&metrics.GetHistogram("phase.optimize.micros"));
    span.SetAttr("ast_before", PathSize(rewritten));
    rewritten = OptimizeOrPassThrough(dtd, rewritten);
    span.SetAttr("ast_after", PathSize(rewritten));
    metrics.GetCounter("optimize.queries").Add();
  }
  PathPtr bound;
  {
    obs::ScopedSpan span(&trace, "bind");
    bound = BindParams(rewritten, args.bindings);
  }
  out << "# evaluated: " << ToXPathString(bound) << "\n";
  NodeSet nodes;
  std::unique_ptr<StepProfile> profile;
  {
    obs::ScopedSpan span(&trace, "evaluate");
    obs::ScopedTimer timer(&metrics.GetHistogram("phase.evaluate.micros"));
    XPathEvaluator evaluator(doc);
    evaluator.set_metrics(&metrics);
    std::optional<PlanProfiler> profiler;
    if (want_profile) {
      profiler.emplace();
      evaluator.set_profiler(&*profiler);
    }
    SECVIEW_ASSIGN_OR_RETURN(nodes, evaluator.Evaluate(bound, doc.root()));
    span.SetAttr("nodes_touched", evaluator.counters().nodes_touched);
    span.SetAttr("results", static_cast<uint64_t>(nodes.size()));
    if (want_profile) {
      profile = profiler->TakeRoot();
      FlushStepProfileMetrics(*profile, metrics);
    }
  }
  out << "# results: " << nodes.size() << "\n";
  for (NodeId n : nodes) {
    out << "<" << doc.label(n) << "> node #" << n;
    std::string text = doc.CollectText(n);
    if (!text.empty()) out << " text=\"" << text << "\"";
    out << "\n";
  }
  if (want_stats) out << metrics.ToText();
  if (profile != nullptr) {
    if (args.switches.count("--profile")) out << StepProfileText(*profile);
    SECVIEW_RETURN_IF_ERROR(
        DumpProfileJson(args, *profile, "view", query_text, out));
  }
  SECVIEW_RETURN_IF_ERROR(DumpPrometheus(args, metrics, out));
  return DumpTraceJson(args, trace, out);
}

Status CmdExplain(const Args& args, std::ostream& out) {
  SECVIEW_ASSIGN_OR_RETURN(Dtd dtd, LoadDtd(args));
  SECVIEW_ASSIGN_OR_RETURN(SecurityView view, LoadView(args, dtd));
  SECVIEW_ASSIGN_OR_RETURN(std::string query_text, Required(args, "--query"));
  ExplainOptions options;
  options.optimize = !args.switches.count("--no-optimize");
  auto height = args.values.find("--height");
  if (height != args.values.end()) {
    SECVIEW_ASSIGN_OR_RETURN(uint64_t h,
                             ParseCount("--height", height->second));
    options.doc_height = static_cast<int>(h);
  }
  SECVIEW_ASSIGN_OR_RETURN(QueryExplain explain,
                           ExplainQuery(dtd, view, query_text, options));
  explain.policy = "policy";
  if (args.switches.count("--json")) {
    out << explain.ToJson().Dump(/*pretty=*/true) << "\n";
  } else {
    out << explain.ToText();
  }
  return Status::OK();
}

Status CmdAuditVerify(const Args& args, std::ostream& out) {
  SECVIEW_ASSIGN_OR_RETURN(std::string path, Required(args, "--log"));
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open audit log: " + path);
  std::string line;
  size_t line_no = 0;
  size_t events = 0;
  // The sink consumes a sequence number before attempting the write, so
  // an event dropped under write failure leaves a hole in the seq chain.
  // A seq at or below its predecessor is a restart (seqs begin at 1 in
  // every process) or a rotation boundary, not a gap.
  uint64_t prev_seq = 0;
  uint64_t gap_events = 0;
  size_t gaps = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    Status status = obs::ValidateAuditLine(line);
    if (!status.ok()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + status.message());
    }
    SECVIEW_ASSIGN_OR_RETURN(obs::Json record, obs::Json::Parse(line));
    uint64_t seq = static_cast<uint64_t>(record.Find("seq")->AsNumber());
    if (prev_seq > 0 && seq > prev_seq + 1) {
      ++gaps;
      gap_events += seq - prev_seq - 1;
      out << "warning: " << path << ":" << line_no << ": seq jumps "
          << prev_seq << " -> " << seq << " (" << (seq - prev_seq - 1)
          << " dropped event(s))\n";
    }
    prev_seq = seq;
    ++events;
  }
  out << "ok: " << events << " audit events validated";
  if (gap_events > 0) {
    out << " (" << gap_events << " dropped across " << gaps
        << " seq gap(s))";
  }
  out << "\n";
  return Status::OK();
}

/// Loads a queries file: one XPath expression per line, blank lines and
/// `#` comment lines skipped.
Result<std::vector<std::string>> LoadQueriesFile(const std::string& path) {
  SECVIEW_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  std::vector<std::string> queries;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    // Trim leading/trailing whitespace so indented entries work.
    size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    size_t end = line.find_last_not_of(" \t\r");
    line = line.substr(begin, end - begin + 1);
    if (line.empty() || line[0] == '#') continue;
    queries.push_back(line);
  }
  if (queries.empty()) {
    return Status::InvalidArgument("queries file has no queries: " + path);
  }
  return queries;
}

/// "HOST:PORT" (or ":PORT" / bare "PORT" with host 127.0.0.1).
Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& flag, const std::string& text) {
  std::string host = "127.0.0.1";
  std::string port_text = text;
  size_t colon = text.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) host = text.substr(0, colon);
    port_text = text.substr(colon + 1);
  }
  SECVIEW_ASSIGN_OR_RETURN(uint64_t port, ParseCount(flag, port_text));
  if (port > 65535) {
    return Status::InvalidArgument(flag + " port out of range: " + port_text);
  }
  return std::make_pair(host, static_cast<uint16_t>(port));
}

/// Publishes the bound telemetry port for scripts and tests: written to
/// a temp file then renamed, so a reader polling the path never sees a
/// partial write.
Status WritePortFile(const std::string& path, uint16_t port) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) return Status::NotFound("cannot open for writing: " + tmp);
    file << port << "\n";
    if (!file.flush()) return Status::Internal("cannot write " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("cannot rename " + tmp + " -> " + path);
  }
  return Status::OK();
}

/// The serving observers plus the telemetry HTTP server that exposes
/// them, owned together so their lifetimes cannot diverge from the
/// engine they observe.
struct TelemetryBundle {
  obs::SlidingWindowStats window;
  obs::SlowQueryLog slow_log;
  obs::PolicyStatsTable policy_stats;
  obs::RequestTraceStore traces;
  obs::PlanProfileTable plan_profiles;
  obs::HealthTracker health;
  std::unique_ptr<net::TelemetryServer> server;
  /// Memory-ledger registrations (the rings, the rewrite cache, the
  /// eval-scratch arenas). Declared last so they unregister first, while
  /// the stores they capture are still alive; a scrape racing the
  /// teardown either sees the provider row or doesn't — never a dangling
  /// callback (MemLedger::Snapshot copies the callbacks under its lock).
  std::vector<std::unique_ptr<obs::ScopedLedgerProvider>> ledger_providers;

  TelemetryBundle(obs::SlowQueryLog::Options slow_options,
                  obs::RequestTraceStore::Options trace_options)
      : slow_log(slow_options), traces(trace_options) {}
};

/// Builds, attaches, and starts the telemetry stack for `engine` when
/// --telemetry-addr is present (or `require` forces it on, as `serve`
/// does, defaulting to an ephemeral localhost port). Returns null when
/// telemetry was not requested.
Result<std::unique_ptr<TelemetryBundle>> StartTelemetry(
    const Args& args, SecureQueryEngine& engine, bool require,
    std::ostream& out) {
  auto addr_flag = args.values.find("--telemetry-addr");
  if (addr_flag == args.values.end() && !require) return {nullptr};
  std::string addr_text =
      addr_flag != args.values.end() ? addr_flag->second : "127.0.0.1:0";
  SECVIEW_ASSIGN_OR_RETURN(auto addr,
                           ParseHostPort("--telemetry-addr", addr_text));

  obs::SlowQueryLog::Options slow_options;
  SECVIEW_ASSIGN_OR_RETURN(
      slow_options.threshold_micros,
      CountFlag(args, "--slow-query-micros", slow_options.threshold_micros));
  obs::RequestTraceStore::Options trace_options;
  SECVIEW_ASSIGN_OR_RETURN(trace_options.sample_every,
                           CountFlag(args, "--trace-sample", 0));
  SECVIEW_ASSIGN_OR_RETURN(
      uint64_t trace_capacity,
      CountFlag(args, "--trace-capacity", trace_options.capacity));
  trace_options.capacity = static_cast<size_t>(trace_capacity);
  // The trace store's always-keep-slow threshold follows the slow-query
  // log's: one knob decides what "slow" means on this process.
  trace_options.slow_micros = slow_options.threshold_micros;
  auto bundle = std::make_unique<TelemetryBundle>(slow_options, trace_options);
  // Attach during setup: the engine reads these pointers unsynchronized
  // on the serve path.
  engine.AttachServingObservers(&bundle->window, &bundle->slow_log);
  engine.AttachPolicyStats(&bundle->policy_stats);
  engine.AttachTraceStore(&bundle->traces);
  engine.AttachHealth(&bundle->health);
  if (args.switches.count("--profile")) {
    engine.AttachPlanProfiles(&bundle->plan_profiles);
  }

  net::TelemetryServer::Options server_options;
  server_options.http.bind_address = addr.first;
  server_options.http.port = addr.second;
  server_options.ready = [&engine] { return engine.sealed(); };
  server_options.window = &bundle->window;
  server_options.slow_log = &bundle->slow_log;
  server_options.policy_stats = &bundle->policy_stats;
  server_options.traces = &bundle->traces;
  // Only exposed when profiling is on, so /profilez distinguishes "not
  // profiling" from "profiling but nothing recorded yet".
  if (args.switches.count("--profile")) {
    server_options.plan_profiles = &bundle->plan_profiles;
  }
  server_options.health = &bundle->health;

  // Memory-ledger charge points: each subsystem that already tracks its
  // own footprint reports it live, so /memz and the secview_mem_* gauges
  // stay exact without a second bookkeeping path.
  obs::RequestTraceStore* traces = &bundle->traces;
  bundle->ledger_providers.push_back(
      std::make_unique<obs::ScopedLedgerProvider>(
          "obs.trace_ring",
          [traces] { return static_cast<int64_t>(traces->ApproxBytes()); }));
  obs::SlowQueryLog* slow_log = &bundle->slow_log;
  bundle->ledger_providers.push_back(
      std::make_unique<obs::ScopedLedgerProvider>(
          "obs.slow_query_ring",
          [slow_log] { return static_cast<int64_t>(slow_log->ApproxBytes()); }));
  bundle->ledger_providers.push_back(
      std::make_unique<obs::ScopedLedgerProvider>("xpath.eval_scratch", [] {
        return static_cast<int64_t>(EvalScratch::TotalPublishedBytes());
      }));
  obs::MetricsRegistry* metrics = &engine.metrics();
  bundle->ledger_providers.push_back(
      std::make_unique<obs::ScopedLedgerProvider>(
          "engine.rewrite_cache", [metrics] {
            return metrics->GetGauge("engine.cache.bytes").value() +
                   metrics->GetGauge("engine.plan.cache_bytes").value();
          }));

  bundle->server = std::make_unique<net::TelemetryServer>(&engine.metrics(),
                                                          server_options);
  SECVIEW_RETURN_IF_ERROR(bundle->server->Start());
  out << "# telemetry: http://" << addr.first << ":" << bundle->server->port()
      << " (/metrics /varz /healthz /statusz /tracez /profilez /heapz "
         "/memz)\n";
  auto port_file = args.values.find("--port-file");
  if (port_file != args.values.end()) {
    SECVIEW_RETURN_IF_ERROR(
        WritePortFile(port_file->second, bundle->server->port()));
  }
  return bundle;
}

/// Stops the process-wide heap profiler when the command that started
/// it ends, so in-process callers (tests) never leak sampling into the
/// next command.
struct HeapProfileGuard {
  bool active = false;
  HeapProfileGuard() = default;
  HeapProfileGuard(const HeapProfileGuard&) = delete;
  HeapProfileGuard& operator=(const HeapProfileGuard&) = delete;
  ~HeapProfileGuard() {
    if (active) obs::HeapProfiler::Instance().Stop();
  }
};

/// Starts the sampled allocation-site profiler when --heap-sample BYTES
/// is present. A refusal to start under a sanitizer build is a skip
/// notice, not an error — the command keeps serving without sampling.
Status MaybeStartHeapProfiler(const Args& args, std::ostream& out,
                              HeapProfileGuard* guard) {
  auto it = args.values.find("--heap-sample");
  if (it == args.values.end()) return Status::OK();
  SECVIEW_ASSIGN_OR_RETURN(uint64_t interval,
                           ParseCount("--heap-sample", it->second));
  if (interval == 0) {
    return Status::InvalidArgument("--heap-sample must be >= 1 byte");
  }
  obs::HeapProfileOptions options;
  options.sample_interval_bytes = interval;
  Status started = obs::HeapProfiler::Instance().Start(options);
  if (!started.ok()) {
    if (started.code() == StatusCode::kFailedPrecondition) {
      out << "# heap profiler skipped: " << started.message() << "\n";
      return Status::OK();
    }
    return started;
  }
  guard->active = true;
  out << "# heap profiler: sampling 1/" << interval << "B (see /heapz)\n";
  return Status::OK();
}

/// SIGINT/SIGTERM latch for `serve` — a plain flag is all a signal
/// handler may touch.
std::atomic<bool> g_serve_stop{false};

void HandleServeSignal(int) { g_serve_stop.store(true); }

/// Mirrors failpoint fires into the engine registry's
/// `engine.failpoint.<name>` counters for this scope; detaches on exit so
/// the process-lifetime registry never outlives the engine's counters.
struct ScopedFailpointMetrics {
  explicit ScopedFailpointMetrics(obs::MetricsRegistry* metrics) {
    FailPointRegistry::Instance().AttachMetrics(metrics);
  }
  ~ScopedFailpointMetrics() {
    FailPointRegistry::Instance().AttachMetrics(nullptr);
  }
  ScopedFailpointMetrics(const ScopedFailpointMetrics&) = delete;
  ScopedFailpointMetrics& operator=(const ScopedFailpointMetrics&) = delete;
};

/// Deletes the --port-file on graceful shutdown so restarting scripts
/// never scrape a dead process's port. Best-effort: a failed remove only
/// leaves the file a restarted server will overwrite (WritePortFile
/// truncates via rename).
void RemovePortFile(const Args& args) {
  auto port_file = args.values.find("--port-file");
  if (port_file == args.values.end()) return;
  std::remove(port_file->second.c_str());
}

Status CmdServe(const Args& args, std::ostream& out) {
  InstallCrashReporter();
  SECVIEW_ASSIGN_OR_RETURN(ServeLimits limits, LoadServeLimits(args));
  SECVIEW_ASSIGN_OR_RETURN(DtdBundle bundle, LoadDtdBundle(args));
  SECVIEW_ASSIGN_OR_RETURN(XmlTree doc, LoadXml(args, bundle, limits.xml));
  // The served document's footprint is fixed for the command's
  // lifetime: one exact ledger charge covers it.
  obs::ScopedLedgerCharge doc_charge(
      "xml.doc", static_cast<int64_t>(doc.MemoryFootprintBytes()));
  SECVIEW_ASSIGN_OR_RETURN(std::unique_ptr<SecureQueryEngine> engine,
                           LoadEngine(args));
  ScopedFailpointMetrics failpoint_metrics(&engine->metrics());
  HeapProfileGuard heap_guard;
  SECVIEW_RETURN_IF_ERROR(MaybeStartHeapProfiler(args, out, &heap_guard));

  std::vector<std::string> queries;
  if (args.values.count("--queries")) {
    SECVIEW_ASSIGN_OR_RETURN(queries,
                             LoadQueriesFile(args.values.at("--queries")));
  }
  SECVIEW_ASSIGN_OR_RETURN(uint64_t threads_n, CountFlag(args, "--threads", 0));
  SECVIEW_ASSIGN_OR_RETURN(uint64_t queue_cap,
                           CountFlag(args, "--queue-cap", 0));
  SECVIEW_ASSIGN_OR_RETURN(uint64_t replay_delay_ms,
                           CountFlag(args, "--replay-delay-ms", 100));
  SECVIEW_ASSIGN_OR_RETURN(uint64_t max_seconds,
                           CountFlag(args, "--max-seconds", 0));

  SECVIEW_ASSIGN_OR_RETURN(
      std::unique_ptr<TelemetryBundle> telemetry,
      StartTelemetry(args, *engine, /*require=*/true, out));

  std::unique_ptr<obs::JsonlAuditLog> audit_log;
  auto audit_path = args.values.find("--audit-log");
  if (audit_path != args.values.end()) {
    obs::JsonlAuditLog::Options audit_options;
    SECVIEW_ASSIGN_OR_RETURN(
        audit_options.max_bytes,
        CountFlag(args, "--audit-max-bytes", audit_options.max_bytes));
    SECVIEW_ASSIGN_OR_RETURN(
        audit_log, obs::JsonlAuditLog::Open(audit_path->second,
                                            audit_options));
    // Drops feed the registry (for /statusz and scrapes) and the health
    // tracker (so a dying audit disk flips /healthz to "degraded").
    audit_log->AttachDropCounter(
        &engine->metrics().GetCounter("audit.dropped"));
    audit_log->AttachHealth(&telemetry->health);
  }

  QueryWorkerPool::Options pool_options;
  pool_options.threads = static_cast<size_t>(threads_n);
  pool_options.queue_cap = static_cast<size_t>(queue_cap);
  QueryWorkerPool pool(*engine, pool_options);  // seals the engine

  ExecuteOptions options;
  options.bindings = args.bindings;
  options.optimize = !args.switches.count("--no-optimize");
  options.use_compiled = !args.switches.count("--no-compiled");
  options.audit = audit_log.get();
  options.limits = limits.budget;
  options.parse_limits = limits.xpath;

  g_serve_stop.store(false);
  auto old_int = std::signal(SIGINT, HandleServeSignal);
  auto old_term = std::signal(SIGTERM, HandleServeSignal);
  out << "# serving; stop with SIGINT/SIGTERM"
      << (max_seconds > 0
              ? " (or after " + std::to_string(max_seconds) + "s)"
              : std::string())
      << "\n";
  out.flush();

  const auto start = std::chrono::steady_clock::now();
  uint64_t rounds = 0;
  while (!g_serve_stop.load()) {
    if (max_seconds > 0 &&
        std::chrono::steady_clock::now() - start >=
            std::chrono::seconds(max_seconds)) {
      break;
    }
    if (!queries.empty()) {
      pool.ExecuteBatch("policy", doc, queries, options);
      ++rounds;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(
        queries.empty() ? 50 : replay_delay_ms));
  }
  std::signal(SIGINT, old_int);
  std::signal(SIGTERM, old_term);

  telemetry->server->Stop();
  RemovePortFile(args);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out << "# served " << seconds << " s, " << rounds << " replay round(s), "
      << telemetry->window.total() << " queries observed, "
      << telemetry->server->http().requests_handled()
      << " telemetry request(s)\n";
  if (audit_log != nullptr) {
    out << "# audit: " << audit_log->events() << " event(s) written, "
        << audit_log->dropped() << " dropped, to " << audit_log->path()
        << "\n";
  }
  return Status::OK();
}

Status CmdScrape(const Args& args, std::ostream& out) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  auto addr_flag = args.values.find("--addr");
  if (addr_flag != args.values.end()) {
    SECVIEW_ASSIGN_OR_RETURN(auto addr,
                             ParseHostPort("--addr", addr_flag->second));
    host = addr.first;
    port = addr.second;
  } else {
    SECVIEW_ASSIGN_OR_RETURN(uint64_t p, CountFlag(args, "--port", 0));
    if (p == 0 || p > 65535) {
      return Status::InvalidArgument("scrape needs --addr HOST:PORT or --port N");
    }
    port = static_cast<uint16_t>(p);
  }
  std::string path = "/metrics";
  auto path_flag = args.values.find("--path");
  if (path_flag != args.values.end()) path = path_flag->second;
  SECVIEW_ASSIGN_OR_RETURN(uint64_t timeout_ms,
                           CountFlag(args, "--timeout-ms", 5000));
  SECVIEW_ASSIGN_OR_RETURN(uint64_t retries, CountFlag(args, "--retries", 0));

  net::HttpGetOptions get_options;
  get_options.timeout_ms = static_cast<int>(timeout_ms);
  get_options.retries = static_cast<int>(retries);
  SECVIEW_ASSIGN_OR_RETURN(net::FetchedResponse response,
                           net::HttpGet(host, port, path, get_options));
  if (response.status != 200) {
    return Status::Internal("HTTP " + std::to_string(response.status) +
                            " from " + path + ": " + response.body);
  }
  if (args.switches.count("--validate-prom")) {
    Status valid = obs::ValidatePrometheusText(response.body);
    if (!valid.ok()) {
      return Status::InvalidArgument("fetched body fails Prometheus text "
                                     "validation: " +
                                     valid.message());
    }
  }
  out << response.body;
  return Status::OK();
}

Status CmdBenchServe(const Args& args, std::ostream& out) {
  SECVIEW_ASSIGN_OR_RETURN(ServeLimits limits, LoadServeLimits(args));
  SECVIEW_ASSIGN_OR_RETURN(DtdBundle bundle, LoadDtdBundle(args));
  SECVIEW_ASSIGN_OR_RETURN(XmlTree doc, LoadXml(args, bundle, limits.xml));
  SECVIEW_ASSIGN_OR_RETURN(std::string queries_path,
                           Required(args, "--queries"));
  SECVIEW_ASSIGN_OR_RETURN(std::vector<std::string> queries,
                           LoadQueriesFile(queries_path));
  SECVIEW_ASSIGN_OR_RETURN(std::unique_ptr<SecureQueryEngine> engine,
                           LoadEngine(args));
  ScopedFailpointMetrics failpoint_metrics(&engine->metrics());
  obs::ScopedLedgerCharge doc_charge(
      "xml.doc", static_cast<int64_t>(doc.MemoryFootprintBytes()));
  HeapProfileGuard heap_guard;
  SECVIEW_RETURN_IF_ERROR(MaybeStartHeapProfiler(args, out, &heap_guard));

  SECVIEW_ASSIGN_OR_RETURN(uint64_t threads_n, CountFlag(args, "--threads", 0));
  if (args.values.count("--threads") && threads_n < 1) {
    return Status::InvalidArgument("--threads must be >= 1");
  }
  SECVIEW_ASSIGN_OR_RETURN(uint64_t repeat_n, CountFlag(args, "--repeat", 10));
  if (repeat_n < 1) return Status::InvalidArgument("--repeat must be >= 1");
  size_t threads = static_cast<size_t>(threads_n);
  size_t repeat = static_cast<size_t>(repeat_n);
  SECVIEW_ASSIGN_OR_RETURN(uint64_t queue_cap, CountFlag(args, "--queue-cap", 0));

  ExecuteOptions options;
  options.bindings = args.bindings;
  options.optimize = !args.switches.count("--no-optimize");
  options.use_compiled = !args.switches.count("--no-compiled");
  options.limits = limits.budget;
  options.parse_limits = limits.xpath;

  // With --telemetry-addr the endpoints stay live for the whole run, so
  // an external scraper (or the run's own scripts) can watch the bench.
  SECVIEW_ASSIGN_OR_RETURN(
      std::unique_ptr<TelemetryBundle> telemetry,
      StartTelemetry(args, *engine, /*require=*/false, out));

  // With --profile every execution feeds a cross-query hot-step table;
  // StartTelemetry already attached the bundle's table when telemetry is
  // live, otherwise a run-local table collects for the end-of-run print.
  obs::PlanProfileTable local_profiles;
  const obs::PlanProfileTable* profiles = nullptr;
  if (args.switches.count("--profile")) {
    if (telemetry != nullptr) {
      profiles = &telemetry->plan_profiles;
    } else {
      engine->AttachPlanProfiles(&local_profiles);
      profiles = &local_profiles;
    }
  }

  QueryWorkerPool::Options pool_options;
  pool_options.threads = threads;
  pool_options.queue_cap = static_cast<size_t>(queue_cap);
  QueryWorkerPool pool(*engine, pool_options);

  // One untimed warm-up pass populates the rewrite cache and surfaces
  // per-query failures before the measured runs.
  size_t ok = 0;
  size_t failed = 0;
  for (const Result<ExecuteResult>& r :
       pool.ExecuteBatch("policy", doc, queries, options)) {
    if (r.ok()) {
      ++ok;
    } else {
      if (failed == 0) {
        out << "# warning: some queries fail (first: "
            << r.status().ToString() << ")\n";
      }
      ++failed;
    }
  }

  auto start = std::chrono::steady_clock::now();
  for (size_t round = 0; round < repeat; ++round) {
    pool.ExecuteBatch("policy", doc, queries, options);
  }
  auto stop = std::chrono::steady_clock::now();
  double seconds = std::chrono::duration<double>(stop - start).count();
  size_t executed = queries.size() * repeat;
  double qps = seconds > 0 ? static_cast<double>(executed) / seconds : 0.0;

  obs::MetricsRegistry& metrics = engine->metrics();
  uint64_t hits = metrics.GetCounter("engine.cache.hits").value();
  uint64_t misses = metrics.GetCounter("engine.cache.misses").value();
  double hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;

  out << "threads: " << pool.threads() << "\n";
  out << "queries: " << queries.size() << " (" << ok << " ok, " << failed
      << " failing), repeated " << repeat << "x\n";
  out << "executed: " << executed << " in " << seconds << " s\n";
  out << "throughput: " << qps << " queries/sec\n";
  out << "cache: " << hits << " hits, " << misses << " misses ("
      << hit_rate * 100.0 << "% hit rate), size "
      << metrics.GetGauge("engine.cache.size").value() << ", evictions "
      << metrics.GetCounter("engine.cache.evictions").value() << "\n";
  uint64_t shed = metrics.GetCounter("engine.pool.shed").value();
  uint64_t deadline_rejects =
      metrics.GetCounter("engine.rejected.deadline").value();
  uint64_t budget_rejects =
      metrics.GetCounter("engine.rejected.budget").value();
  if (shed + deadline_rejects + budget_rejects > 0) {
    out << "rejected: " << shed << " shed, " << deadline_rejects
        << " deadline, " << budget_rejects << " budget\n";
  }
  if (telemetry != nullptr) {
    obs::SlidingWindowStats::Window window = telemetry->window.Snapshot(60);
    out << "telemetry: " << telemetry->server->http().requests_handled()
        << " request(s) served, window(60s) " << window.count
        << " queries at " << window.qps << " qps\n";
    telemetry->server->Stop();
    // Unlike `serve`, bench-serve keeps its --port-file: the run is a
    // batch and the file is its discoverable output, not a liveness
    // signal a restarting supervisor could trip over.
  }
  if (profiles != nullptr) {
    out << "\n"
        << obs::RenderPlanProfileText(profiles->Snapshot(), /*top_k=*/10,
                                      profiles->queries());
  }
  return DumpPrometheus(args, metrics, out);
}

Status CmdTraceExport(const Args& args, std::ostream& out) {
  SECVIEW_ASSIGN_OR_RETURN(std::string in_path, Required(args, "--in"));
  SECVIEW_ASSIGN_OR_RETURN(std::string text, ReadFile(in_path));
  // Every run validates; --validate alone just reports instead of
  // converting.
  SECVIEW_ASSIGN_OR_RETURN(std::vector<obs::Json> traces,
                           obs::ParseTraceJsonl(text));
  if (!args.switches.count("--chrome")) {
    if (!args.switches.count("--validate")) {
      return Status::InvalidArgument(
          "trace-export needs --chrome (convert) and/or --validate (check)");
    }
    out << "ok: " << traces.size() << " trace(s) validated\n";
    return Status::OK();
  }
  SECVIEW_ASSIGN_OR_RETURN(obs::Json chrome, obs::ChromeTraceJson(traces));
  std::string body = chrome.Dump(true);
  body += "\n";
  auto out_flag = args.values.find("--out");
  if (out_flag == args.values.end() || out_flag->second == "-") {
    out << body;
  } else {
    std::ofstream file(out_flag->second, std::ios::binary);
    if (!file) {
      return Status::Internal("cannot open " + out_flag->second);
    }
    file << body;
    if (!file.good()) {
      return Status::Internal("failed writing " + out_flag->second);
    }
  }
  if (args.switches.count("--validate")) {
    out << "ok: " << traces.size() << " trace(s) validated\n";
  }
  return Status::OK();
}

Status CmdHeapExport(const Args& args, std::ostream& out) {
  SECVIEW_ASSIGN_OR_RETURN(std::string in_path, Required(args, "--in"));
  SECVIEW_ASSIGN_OR_RETURN(std::string text, ReadFile(in_path));
  // Every run validates: parsing rejects anything that is not a
  // well-formed secview.heap.v1 document.
  SECVIEW_ASSIGN_OR_RETURN(obs::HeapProfileSnapshot snapshot,
                           obs::ParseHeapProfileJson(text));
  if (args.switches.count("--collapsed") && args.switches.count("--json")) {
    return Status::InvalidArgument(
        "heap-export takes --collapsed or --json, not both");
  }
  SECVIEW_ASSIGN_OR_RETURN(uint64_t k, CountFlag(args, "--k", 20));
  std::string body;
  if (args.switches.count("--collapsed")) {
    body = obs::RenderHeapProfileCollapsed(snapshot);
  } else if (args.switches.count("--json")) {
    body = obs::HeapProfileJson(snapshot).Dump(true);
    body += "\n";
  } else {
    body = obs::RenderHeapProfileText(snapshot, static_cast<size_t>(k));
  }
  auto out_flag = args.values.find("--out");
  if (out_flag == args.values.end() || out_flag->second == "-") {
    out << body;
    return Status::OK();
  }
  std::ofstream file(out_flag->second, std::ios::binary);
  if (!file) return Status::Internal("cannot open " + out_flag->second);
  file << body;
  if (!file.good()) {
    return Status::Internal("failed writing " + out_flag->second);
  }
  return Status::OK();
}

Status CmdProfileTop(const Args& args, std::ostream& out) {
  SECVIEW_ASSIGN_OR_RETURN(std::string in_path, Required(args, "--in"));
  SECVIEW_ASSIGN_OR_RETURN(std::string text, ReadFile(in_path));
  // Parsing validates every line (schema tag, plan-tree shape, and the
  // exclusive-nodes-sum invariant) before anything is aggregated.
  SECVIEW_ASSIGN_OR_RETURN(std::vector<obs::Json> lines,
                           obs::ParseProfileJsonl(text));
  SECVIEW_ASSIGN_OR_RETURN(uint64_t k, CountFlag(args, "--k", 10));
  if (k == 0) k = 1;
  std::vector<obs::PlanStepRecord> rows;
  for (const obs::Json& line : lines) {
    const obs::Json* plan = line.Find("plan");
    if (plan == nullptr) continue;  // unreachable: validation requires it
    SECVIEW_RETURN_IF_ERROR(obs::FlattenProfilePlanJson(*plan, &rows));
  }
  std::sort(rows.begin(), rows.end(),
            [](const obs::PlanStepRecord& a, const obs::PlanStepRecord& b) {
              if (a.nodes_touched != b.nodes_touched) {
                return a.nodes_touched > b.nodes_touched;
              }
              return a.signature < b.signature;
            });
  out << obs::RenderPlanProfileText(rows, static_cast<size_t>(k),
                                    lines.size());
  return Status::OK();
}

Status CmdMaterialize(const Args& args, std::ostream& out) {
  SECVIEW_ASSIGN_OR_RETURN(DtdBundle bundle, LoadDtdBundle(args));
  const Dtd& dtd = bundle.normalized.dtd;
  SECVIEW_ASSIGN_OR_RETURN(std::string spec_path, Required(args, "--spec"));
  SECVIEW_ASSIGN_OR_RETURN(std::string spec_text, ReadFile(spec_path));
  SECVIEW_ASSIGN_OR_RETURN(AccessSpec spec, ParseAccessSpec(dtd, spec_text));
  SECVIEW_ASSIGN_OR_RETURN(SecurityView view, DeriveSecurityView(spec));
  SECVIEW_ASSIGN_OR_RETURN(XmlTree doc, LoadXml(args, bundle));

  MaterializeOptions options;
  options.bindings = args.bindings;
  SECVIEW_ASSIGN_OR_RETURN(XmlTree tv,
                           MaterializeView(doc, view, spec, options));
  XmlWriteOptions pretty;
  pretty.indent = true;
  WriteXml(tv, tv.root(), out, pretty);
  return Status::OK();
}

Status CmdGenerate(const Args& args, std::ostream& out) {
  SECVIEW_ASSIGN_OR_RETURN(Dtd dtd, LoadDtd(args));
  GeneratorOptions options;
  SECVIEW_ASSIGN_OR_RETURN(uint64_t bytes, CountFlag(args, "--bytes", 0));
  SECVIEW_ASSIGN_OR_RETURN(uint64_t seed, CountFlag(args, "--seed", 42));
  SECVIEW_ASSIGN_OR_RETURN(uint64_t branch, CountFlag(args, "--branch", 3));
  options.target_bytes = static_cast<size_t>(bytes);
  options.seed = seed;
  options.max_branching = static_cast<int>(branch);
  options.min_branching = options.max_branching > 0 ? 1 : 0;
  SECVIEW_ASSIGN_OR_RETURN(XmlTree doc, GenerateDocument(dtd, options));
  WriteXml(doc, doc.root(), out);
  out << "\n";
  return Status::OK();
}

/// Arms the failpoint registry from SECVIEW_FAILPOINTS and then the
/// --failpoints flag (so the flag wins for a point named in both). Any
/// command can run with faults armed — chaos testing must reach the
/// whole CLI surface, not just `serve`.
Status ArmFailpoints(const Args& args) {
  const char* env = std::getenv("SECVIEW_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') {
    Status status = FailPointRegistry::Instance().ArmFromSpec(env);
    if (!status.ok()) {
      return Status::InvalidArgument("SECVIEW_FAILPOINTS: " +
                                     status.message());
    }
  }
  auto it = args.values.find("--failpoints");
  if (it != args.values.end()) {
    Status status = FailPointRegistry::Instance().ArmFromSpec(it->second);
    if (!status.ok()) {
      return Status::InvalidArgument("--failpoints: " + status.message());
    }
  }
  return Status::OK();
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  Result<Args> parsed = ParseArgs(args);
  if (!parsed.ok()) {
    err << "error: " << parsed.status().message() << "\n" << kUsage;
    return 2;
  }
  Status armed = ArmFailpoints(*parsed);
  if (!armed.ok()) {
    err << "error: " << armed.message() << "\n" << kUsage;
    return 2;
  }
  // The registry is process-lifetime but the arming belongs to this
  // invocation: disarm on the way out so in-process callers (tests)
  // running several commands do not leak faults between them.
  const bool disarm_on_exit =
      parsed->values.count("--failpoints") > 0 ||
      (std::getenv("SECVIEW_FAILPOINTS") != nullptr &&
       std::getenv("SECVIEW_FAILPOINTS")[0] != '\0');
  struct DisarmGuard {
    bool active;
    ~DisarmGuard() {
      if (active) FailPointRegistry::Instance().DisarmAll();
    }
  } disarm_guard{disarm_on_exit};
  Status status = Status::OK();
  if (parsed->command == "help" || parsed->command == "--help") {
    out << kUsage;
    return 0;
  } else if (parsed->command == "validate") {
    status = CmdValidate(*parsed, out);
  } else if (parsed->command == "derive") {
    status = CmdDerive(*parsed, out);
  } else if (parsed->command == "rewrite") {
    status = CmdRewrite(*parsed, out);
  } else if (parsed->command == "query") {
    status = CmdQuery(*parsed, out);
  } else if (parsed->command == "explain") {
    status = CmdExplain(*parsed, out);
  } else if (parsed->command == "audit-verify") {
    status = CmdAuditVerify(*parsed, out);
  } else if (parsed->command == "bench-serve") {
    status = CmdBenchServe(*parsed, out);
  } else if (parsed->command == "serve") {
    status = CmdServe(*parsed, out);
  } else if (parsed->command == "scrape") {
    status = CmdScrape(*parsed, out);
  } else if (parsed->command == "trace-export") {
    status = CmdTraceExport(*parsed, out);
  } else if (parsed->command == "profile-top") {
    status = CmdProfileTop(*parsed, out);
  } else if (parsed->command == "heap-export") {
    status = CmdHeapExport(*parsed, out);
  } else if (parsed->command == "materialize") {
    status = CmdMaterialize(*parsed, out);
  } else if (parsed->command == "generate") {
    status = CmdGenerate(*parsed, out);
  } else {
    err << "error: unknown command '" << parsed->command << "'\n" << kUsage;
    return 2;
  }
  if (!status.ok()) {
    err << "error: " << status.ToString() << "\n";
    // Distinct exit codes let serving wrappers tell resource pressure
    // (retryable) from denials (not): see docs/robustness.md.
    if (status.IsDeadlineExceeded()) return 4;
    if (status.IsResourceExhausted()) return 5;
    if (status.IsCancelled()) return 6;
    return status.code() == StatusCode::kInvalidArgument &&
                   status.message().rfind("missing required", 0) == 0
               ? 2
               : 1;
  }
  return 0;
}

}  // namespace secview
