#ifndef SECVIEW_CLI_CLI_H_
#define SECVIEW_CLI_CLI_H_

#include <ostream>
#include <string>
#include <vector>

namespace secview {

/// The `secview` command-line tool (tools/secview.cc), factored into the
/// library so tests can drive it directly. Commands:
///
///   secview validate    --dtd F --xml F
///   secview derive      --dtd F --spec F [--show-sigma]
///   secview rewrite     --dtd F --spec F --query Q [--no-optimize]
///   secview query       --dtd F --spec F --xml F --query Q
///                       [--bind NAME=VALUE]... [--no-optimize] [--extract]
///                       [--stats] [--trace-json FILE]
///   secview bench-serve --dtd F --spec F --xml F --queries F
///                       [--threads N] [--repeat N]
///   secview materialize --dtd F --spec F --xml F [--bind NAME=VALUE]...
///   secview generate    --dtd F [--bytes N] [--seed N] [--branch N]
///   secview help
///
/// DTD files use standard <!ELEMENT> syntax and are normalized into the
/// paper's productions on load; specs use the ann(A,B) = Y|N|[q] syntax.
///
/// Returns a process exit code (0 success, 1 runtime error, 2 usage).
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace secview

#endif  // SECVIEW_CLI_CLI_H_
