#ifndef SECVIEW_NET_HTTP_H_
#define SECVIEW_NET_HTTP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace secview::net {

/// Hard caps applied while reading and parsing one HTTP request, in the
/// same spirit as the XPath parser's hostile-input limits: a telemetry
/// port exposed on a host must not be a memory or CPU amplifier. A
/// request that exceeds a cap is answered with a 4xx and the connection
/// is closed — nothing is ever buffered past `max_request_bytes`.
struct HttpLimits {
  /// Total bytes of request head (request line + headers) accepted.
  size_t max_request_bytes = 8192;
  /// Maximum number of header lines.
  size_t max_headers = 64;
  /// Maximum request-target (path) length.
  size_t max_target_bytes = 1024;
};

/// A parsed HTTP/1.x request head. Telemetry serving never needs request
/// bodies, so requests carrying Content-Length / Transfer-Encoding are
/// rejected outright instead of being read.
struct HttpRequest {
  std::string method;   ///< "GET" or "HEAD" (anything else is rejected)
  std::string target;   ///< origin-form target, e.g. "/metrics"
  std::string version;  ///< "HTTP/1.0" or "HTTP/1.1"
  /// Header name/value pairs in order of appearance; names lowercased.
  std::vector<std::pair<std::string, std::string>> headers;

  /// First value of a (lowercase) header name, or "" when absent.
  std::string_view Header(std::string_view name) const;
};

/// An HTTP response about to be serialized. The server always adds
/// Content-Length and Connection: close.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  static HttpResponse Text(int status, std::string body);
};

/// The canonical reason phrase for the status codes the telemetry server
/// emits (200, 400, 404, 405, 408, 431, 500, 503, ...).
const char* HttpStatusReason(int status);

/// Parses a full request head (everything up to and including the blank
/// line, CRLF or bare-LF line endings). Enforces `limits` and the
/// GET/HEAD-only, no-body discipline; violations come back as
/// InvalidArgument (malformed / too large) or Unimplemented (method not
/// allowed), with messages that name the violated cap.
Result<HttpRequest> ParseHttpRequest(std::string_view head,
                                     const HttpLimits& limits = {});

/// Serializes status line + headers + body. `head_only` elides the body
/// (HEAD responses) while keeping the true Content-Length.
std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool head_only = false);

}  // namespace secview::net

#endif  // SECVIEW_NET_HTTP_H_
