#include "net/http.h"

#include <algorithm>
#include <cctype>

namespace secview::net {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view TrimSpace(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Splits off the next line (CRLF or LF terminated). Returns false when
/// no full line remains.
bool NextLine(std::string_view& rest, std::string_view& line) {
  size_t nl = rest.find('\n');
  if (nl == std::string_view::npos) return false;
  line = rest.substr(0, nl);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  rest.remove_prefix(nl + 1);
  return true;
}

bool ValidTargetByte(unsigned char c) {
  // Printable ASCII excluding space; control bytes and 8-bit bytes in a
  // request target are a malformed (or hostile) client.
  return c > 0x20 && c < 0x7f;
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return {};
}

HttpResponse HttpResponse::Text(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 414: return "URI Too Long";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

Result<HttpRequest> ParseHttpRequest(std::string_view head,
                                     const HttpLimits& limits) {
  if (head.size() > limits.max_request_bytes) {
    return Status::OutOfRange("request head exceeds max_request_bytes (" +
                              std::to_string(limits.max_request_bytes) + ")");
  }
  std::string_view rest = head;
  std::string_view line;
  if (!NextLine(rest, line) || line.empty()) {
    return Status::InvalidArgument("missing request line");
  }
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                             : line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Status::InvalidArgument(
        "malformed request line (want 'METHOD target HTTP/1.x')");
  }
  HttpRequest request;
  request.method = std::string(line.substr(0, sp1));
  request.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  request.version = std::string(line.substr(sp2 + 1));
  if (request.method != "GET" && request.method != "HEAD") {
    return Status::Unimplemented("method '" + request.method +
                                 "' not allowed (GET/HEAD only)");
  }
  if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
    return Status::InvalidArgument("unsupported HTTP version '" +
                                   request.version + "'");
  }
  if (request.target.empty() || request.target.front() != '/') {
    return Status::InvalidArgument("request target must be origin-form");
  }
  if (request.target.size() > limits.max_target_bytes) {
    return Status::OutOfRange("request target exceeds max_target_bytes (" +
                              std::to_string(limits.max_target_bytes) + ")");
  }
  for (char c : request.target) {
    if (!ValidTargetByte(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument("request target contains invalid byte");
    }
  }

  bool terminated = false;
  while (NextLine(rest, line)) {
    if (line.empty()) {
      terminated = true;
      break;
    }
    if (request.headers.size() >= limits.max_headers) {
      return Status::OutOfRange("request exceeds max_headers (" +
                                std::to_string(limits.max_headers) + ")");
    }
    size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::InvalidArgument("malformed header line");
    }
    std::string name = ToLower(TrimSpace(line.substr(0, colon)));
    if (name.find(' ') != std::string::npos ||
        name.find('\t') != std::string::npos) {
      return Status::InvalidArgument("whitespace inside header name");
    }
    request.headers.emplace_back(std::move(name),
                                 std::string(TrimSpace(line.substr(colon + 1))));
  }
  if (!terminated) {
    return Status::InvalidArgument("request head not terminated by blank line");
  }
  if (!request.Header("content-length").empty() ||
      !request.Header("transfer-encoding").empty()) {
    return Status::InvalidArgument(
        "request bodies are not accepted on the telemetry port");
  }
  return request;
}

std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool head_only) {
  std::string out;
  out.reserve(128 + (head_only ? 0 : response.body.size()));
  out += "HTTP/1.1 " + std::to_string(response.status) + " " +
         HttpStatusReason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  if (!head_only) out += response.body;
  return out;
}

}  // namespace secview::net
