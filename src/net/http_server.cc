#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>
#include <thread>

#include "common/failpoint.h"

namespace secview::net {

namespace {

/// Writes the whole buffer, tolerating short writes and EINTR. Returns
/// false on any hard error (the peer is gone; nothing to do about it)
/// or an injected `net.send` fault.
bool WriteAll(int fd, std::string_view data) {
  static FailPoint& send_fault =
      FailPointRegistry::Instance().Get(failpoints::kNetSend);
  if (send_fault.Fire()) return false;  // simulated EPIPE mid-response
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

/// Closes after a response was sent. A plain close() with unread bytes
/// still queued (e.g. we replied 431 without consuming the oversized
/// head) makes the kernel send RST, which can destroy the in-flight
/// response before the client reads it. Signal end-of-response with a
/// FIN first, then drain what the peer already sent — bounded, so a
/// hostile sender can't pin the worker — and only then close.
void LingeringClose(int fd) {
  ::shutdown(fd, SHUT_WR);
  char sink[1024];
  size_t drained = 0;
  while (drained < 256 * 1024) {
    ssize_t n = ::recv(fd, sink, sizeof(sink), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // peer closed, or SO_RCVTIMEO expired
    }
    drained += static_cast<size_t>(n);
  }
  ::close(fd);
}

void SendError(int fd, int status, const std::string& detail) {
  HttpResponse response = HttpResponse::Text(status, detail + "\n");
  WriteAll(fd, SerializeHttpResponse(response));
}

int HttpStatusForParseError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnimplemented: return 405;
    case StatusCode::kOutOfRange: return 431;
    default: return 400;
  }
}

}  // namespace

HttpServer::HttpServer(Handler handler, Options options)
    : handler_(std::move(handler)), options_(std::move(options)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (running()) return Status::FailedPrecondition("server already running");
  stopping_.store(false, std::memory_order_release);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("invalid bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Internal("bind " + options_.bind_address + ":" +
                                     std::to_string(options_.port) + ": " +
                                     std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, options_.backlog) != 0) {
    Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    Status status =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;

  running_.store(true, std::memory_order_release);
  size_t n = std::max<size_t>(1, options_.workers);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  // Any connection still pending was accepted but never served; close it
  // so the peer sees a reset instead of a hang.
  std::lock_guard<std::mutex> lock(mu_);
  for (int fd : pending_) ::close(fd);
  pending_.clear();
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    if (ready == 0) continue;  // timeout tick; re-check stopping_
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // Transient accept failures (EMFILE/ENFILE/ENOBUFS/...) must not
      // kill the accept thread — that silently turns a resource blip
      // into a dead server. Count, back off briefly, keep accepting.
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    static FailPoint& accept_fault =
        FailPointRegistry::Instance().Get(failpoints::kNetAccept);
    if (accept_fault.Fire()) {
      // Simulated post-accept failure (e.g. EMFILE while setting up the
      // connection): drop this connection, keep the loop alive.
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    timeval tv{};
    tv.tv_sec = options_.recv_timeout_ms / 1000;
    tv.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.size() >= options_.pending_cap) {
        shed = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (shed) {
      connections_shed_.fetch_add(1, std::memory_order_relaxed);
      SendError(fd, 503, "telemetry server overloaded; connection shed");
      LingeringClose(fd);
    } else {
      work_available_.notify_one();
    }
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (!pending_.empty()) {
        fd = pending_.front();
        pending_.pop_front();
      } else if (stopping_.load(std::memory_order_acquire)) {
        return;  // stopping and drained
      }
    }
    if (fd >= 0) HandleConnection(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  static FailPoint& recv_fault =
      FailPointRegistry::Instance().Get(failpoints::kNetRecv);
  std::string head;
  head.reserve(512);
  char buf[1024];
  bool complete = false;
  bool timed_out = false;
  bool overflow = false;
  bool io_error = false;
  while (!complete) {
    if (recv_fault.Fire()) {
      // Simulated ECONNRESET mid-head: degrade to a 500-with-close for
      // this connection only.
      io_error = true;
      break;
    }
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      timed_out = (errno == EAGAIN || errno == EWOULDBLOCK);
      io_error = !timed_out;
      break;
    }
    if (n == 0) break;  // peer closed before a full head
    head.append(buf, static_cast<size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      complete = true;
    } else if (head.size() > options_.limits.max_request_bytes) {
      overflow = true;
      break;
    }
  }

  if (!complete) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (io_error) {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(fd, 500, "connection error while reading request");
    } else if (timed_out) {
      SendError(fd, 408, "timed out waiting for request head");
    } else if (overflow) {
      SendError(fd, 431,
                "request head exceeds " +
                    std::to_string(options_.limits.max_request_bytes) +
                    " bytes");
    } else {
      SendError(fd, 400, "connection closed before a complete request head");
    }
    LingeringClose(fd);
    return;
  }

  Result<HttpRequest> parsed = ParseHttpRequest(head, options_.limits);
  if (!parsed.ok()) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    SendError(fd, HttpStatusForParseError(parsed.status()),
              parsed.status().message());
    LingeringClose(fd);
    return;
  }

  const HttpRequest& request = *parsed;
  HttpResponse response;
  try {
    response = handler_(request);
  } catch (const std::exception& e) {
    // A throwing handler degrades this one connection to a 500-with-
    // close; it must never take down the worker thread.
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    SendError(fd, 500, std::string("internal error: ") + e.what());
    LingeringClose(fd);
    return;
  } catch (...) {
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    SendError(fd, 500, "internal error");
    LingeringClose(fd);
    return;
  }
  requests_handled_.fetch_add(1, std::memory_order_relaxed);
  if (!WriteAll(fd, SerializeHttpResponse(
                        response,
                        /*head_only=*/request.method == "HEAD"))) {
    // The response was lost mid-send (peer gone or injected fault); all
    // we can do is count it and clean the connection up.
    io_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  LingeringClose(fd);
}

}  // namespace secview::net
