#ifndef SECVIEW_NET_HTTP_SERVER_H_
#define SECVIEW_NET_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "net/http.h"

namespace secview::net {

/// A deliberately small embedded HTTP/1.1 server for telemetry traffic:
/// one accept thread plus a bounded pool of connection workers, GET/HEAD
/// only, one request per connection ("Connection: close"), no TLS, no
/// keep-alive, no bodies. It binds to localhost by default — exposing a
/// metrics port beyond the host is a conscious operator decision
/// (Options::bind_address), not a default.
///
/// Defensive posture (mirrors the query pipeline's hostile-input
/// hardening): request heads are read under a receive timeout and a byte
/// cap, parsed under HttpLimits, and every violation is answered with a
/// specific 4xx before the connection is dropped. When all workers are
/// busy and the pending-connection queue is full, new connections get an
/// immediate 503 from the accept thread instead of queueing without
/// bound — the same shed-don't-collapse discipline as the query worker
/// pool.
class HttpServer {
 public:
  /// Handles one parsed request; runs on a worker thread, so it must be
  /// thread-safe. HEAD is handled by the server (the handler builds the
  /// full response; the body is elided on the wire).
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    /// Bind address. Keep "127.0.0.1" unless the port must be scraped
    /// from another host.
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (see port()).
    uint16_t port = 0;
    /// listen(2) backlog.
    int backlog = 16;
    /// Connection worker threads.
    size_t workers = 2;
    /// Accepted connections waiting for a worker before new ones are
    /// shed with 503.
    size_t pending_cap = 16;
    /// Per-read timeout while receiving the request head; a client that
    /// stalls longer gets 408 (anti-slowloris).
    int recv_timeout_ms = 2000;
    HttpLimits limits;
  };

  HttpServer(Handler handler, Options options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the accept/worker threads. Fails (and
  /// leaves the server stopped) when the address cannot be bound.
  Status Start();

  /// Stops accepting, drains in-flight connections, joins all threads.
  /// Idempotent; also run by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound TCP port (resolves ephemeral port 0); 0 before Start().
  uint16_t port() const { return port_; }

  /// Served-request counters, for tests and /statusz.
  uint64_t requests_handled() const {
    return requests_handled_.load(std::memory_order_relaxed);
  }
  uint64_t requests_rejected() const {
    return requests_rejected_.load(std::memory_order_relaxed);
  }
  uint64_t connections_shed() const {
    return connections_shed_.load(std::memory_order_relaxed);
  }
  /// Socket-level failures survived (failed accepts, recv/send errors,
  /// handler exceptions answered with 500) — the server degrades and
  /// keeps serving; this counter is how /statusz shows the scar tissue.
  uint64_t io_errors() const {
    return io_errors_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);

  Handler handler_;
  Options options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<int> pending_;  ///< accepted fds awaiting a worker

  std::atomic<uint64_t> requests_handled_{0};
  std::atomic<uint64_t> requests_rejected_{0};
  std::atomic<uint64_t> connections_shed_{0};
  std::atomic<uint64_t> io_errors_{0};
};

}  // namespace secview::net

#endif  // SECVIEW_NET_HTTP_SERVER_H_
