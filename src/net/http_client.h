#ifndef SECVIEW_NET_HTTP_CLIENT_H_
#define SECVIEW_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace secview::net {

/// A fetched HTTP response, as far as the minimal client parses it.
struct FetchedResponse {
  int status = 0;
  std::string body;
};

/// Fetch parameters, including the bounded-retry policy. Retries cover
/// transport failures (connect refused/reset, read timeout, injected
/// `net.connect` faults) with capped exponential backoff plus a seeded
/// deterministic jitter; InvalidArgument failures (bad host, malformed
/// response) are not retried — repeating those cannot help.
struct HttpGetOptions {
  /// Bounds connect and each read, per attempt.
  int timeout_ms = 5000;
  /// Additional attempts after the first failure.
  int retries = 0;
  /// First retry backoff; doubled per retry up to the cap, with a
  /// random jitter in [0, backoff/2] added to each sleep.
  uint64_t backoff_initial_ms = 50;
  uint64_t backoff_cap_ms = 1000;
  uint64_t jitter_seed = 42;
};

/// Minimal blocking HTTP/1.x GET against an IPv4 address — just enough
/// client to scrape the telemetry server from tests, the bench harness,
/// and `secview scrape` without any external tooling (the CI image has
/// no curl guarantee). One request, Connection: close, response read to
/// EOF; headers are skipped except the status line. `timeout_ms` bounds
/// connect and each read.
Result<FetchedResponse> HttpGet(const std::string& host, uint16_t port,
                                const std::string& target,
                                int timeout_ms = 5000);

/// As above, with the full options (bounded retry with backoff).
Result<FetchedResponse> HttpGet(const std::string& host, uint16_t port,
                                const std::string& target,
                                const HttpGetOptions& options);

}  // namespace secview::net

#endif  // SECVIEW_NET_HTTP_CLIENT_H_
