#ifndef SECVIEW_NET_HTTP_CLIENT_H_
#define SECVIEW_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace secview::net {

/// A fetched HTTP response, as far as the minimal client parses it.
struct FetchedResponse {
  int status = 0;
  std::string body;
};

/// Minimal blocking HTTP/1.x GET against an IPv4 address — just enough
/// client to scrape the telemetry server from tests, the bench harness,
/// and `secview scrape` without any external tooling (the CI image has
/// no curl guarantee). One request, Connection: close, response read to
/// EOF; headers are skipped except the status line. `timeout_ms` bounds
/// connect and each read.
Result<FetchedResponse> HttpGet(const std::string& host, uint16_t port,
                                const std::string& target,
                                int timeout_ms = 5000);

}  // namespace secview::net

#endif  // SECVIEW_NET_HTTP_CLIENT_H_
