#include "net/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <thread>

#include "common/failpoint.h"
#include "common/rng.h"

namespace secview::net {

namespace {

/// Single-shot fetch; the retrying HttpGet overload wraps this.
Result<FetchedResponse> HttpGetOnce(const std::string& host, uint16_t port,
                                    const std::string& target,
                                    int timeout_ms) {
  static FailPoint& connect_fault =
      FailPointRegistry::Instance().Get(failpoints::kNetConnect);
  if (connect_fault.Fire()) {
    return Status::Internal("connect " + host + ":" + std::to_string(port) +
                            ": injected connect failure");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("invalid IPv4 address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Internal("connect " + host + ":" +
                                     std::to_string(port) + ": " +
                                     std::strerror(errno));
    ::close(fd);
    return status;
  }

  std::string request = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\n\r\n";
  std::string_view out = request;
  while (!out.empty()) {
    ssize_t n = ::send(fd, out.data(), out.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status =
          Status::Internal(std::string("send: ") + std::strerror(errno));
      ::close(fd);
      return status;
    }
    out.remove_prefix(static_cast<size_t>(n));
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = (errno == EAGAIN || errno == EWOULDBLOCK)
                          ? Status::DeadlineExceeded("read timed out")
                          : Status::Internal(std::string("recv: ") +
                                             std::strerror(errno));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  // Status line: "HTTP/1.1 NNN Reason".
  size_t sp = raw.find(' ');
  if (raw.compare(0, 5, "HTTP/") != 0 || sp == std::string::npos ||
      sp + 4 > raw.size()) {
    return Status::InvalidArgument("malformed HTTP response");
  }
  FetchedResponse response;
  response.status = std::atoi(raw.c_str() + sp + 1);
  if (response.status < 100 || response.status > 599) {
    return Status::InvalidArgument("malformed HTTP status code");
  }
  size_t body = raw.find("\r\n\r\n");
  size_t skip = 4;
  if (body == std::string::npos) {
    body = raw.find("\n\n");
    skip = 2;
  }
  if (body != std::string::npos) {
    response.body = raw.substr(body + skip);
  }
  return response;
}

}  // namespace

Result<FetchedResponse> HttpGet(const std::string& host, uint16_t port,
                                const std::string& target, int timeout_ms) {
  return HttpGetOnce(host, port, target, timeout_ms);
}

Result<FetchedResponse> HttpGet(const std::string& host, uint16_t port,
                                const std::string& target,
                                const HttpGetOptions& options) {
  Rng jitter(options.jitter_seed);
  uint64_t backoff = options.backoff_initial_ms;
  for (int attempt = 0;; ++attempt) {
    Result<FetchedResponse> fetched =
        HttpGetOnce(host, port, target, options.timeout_ms);
    if (fetched.ok() || attempt >= options.retries ||
        fetched.status().code() == StatusCode::kInvalidArgument) {
      return fetched;
    }
    uint64_t sleep_ms =
        backoff + (backoff > 1 ? jitter.Below(backoff / 2 + 1) : 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff = std::min(backoff * 2, options.backoff_cap_ms);
  }
}

}  // namespace secview::net
