#include "net/telemetry_server.h"

#include <cstdio>
#include <sstream>
#include <string_view>

#include "common/alloc_tracker.h"
#include "common/build_info.h"
#include "common/failpoint.h"
#include "obs/export.h"
#include "obs/heap_export.h"
#include "obs/heap_profile.h"
#include "obs/mem_ledger.h"

namespace secview::net {

namespace {

std::string FormatRate(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// "1h 02m 03s" from milliseconds; hours unbounded.
std::string FormatUptime(uint64_t ms) {
  uint64_t s = ms / 1000;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lluh %02llum %02llus",
                static_cast<unsigned long long>(s / 3600),
                static_cast<unsigned long long>((s / 60) % 60),
                static_cast<unsigned long long>(s % 60));
  return buf;
}

void AppendWindow(std::ostringstream& out,
                  const obs::SlidingWindowStats::Window& w) {
  out << "  last " << w.seconds << "s: " << w.count << " queries, "
      << FormatRate(w.qps) << " qps, error rate " << FormatRate(w.error_rate)
      << ", shed rate " << FormatRate(w.shed_rate);
  if (w.count > 0) {
    out << ", p50 " << w.p50_micros << "us, p95 " << w.p95_micros
        << "us, p99 " << (w.p99_overflow ? ">" : "") << w.p99_micros << "us";
  }
  out << "\n";
}

}  // namespace

TelemetryServer::TelemetryServer(const obs::MetricsRegistry* registry,
                                 Options options)
    : registry_(registry), options_(std::move(options)) {
  http_ = std::make_unique<HttpServer>(
      [this](const HttpRequest& request) { return Handle(request); },
      options_.http);
}

TelemetryServer::~TelemetryServer() { Stop(); }

Status TelemetryServer::Start() { return http_->Start(); }

void TelemetryServer::Stop() { http_->Stop(); }

HttpResponse TelemetryServer::Handle(const HttpRequest& request) const {
  const std::string& target = request.target;
  if (target == "/metrics") {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body =
        obs::RenderPrometheusText(registry_->Collect(), options_.ns);
    if (options_.policy_stats != nullptr) {
      response.body += obs::RenderPolicyStatsText(
          options_.policy_stats->Snapshot(), options_.ns);
    }
    response.body +=
        obs::RenderMemLedgerPrometheus(obs::MemLedger::Instance(), options_.ns);
    return response;
  }
  if (target == "/varz") {
    HttpResponse response;
    response.content_type = "application/json";
    obs::Json doc = obs::MetricsV1Document(registry_->Collect());
    if (options_.policy_stats != nullptr) {
      doc.Set("policy_stats",
              obs::PolicyStatsJson(options_.policy_stats->Snapshot()));
    }
    response.body = doc.Dump(true);
    response.body += "\n";
    return response;
  }
  if (target == "/tracez" || target.rfind("/tracez?", 0) == 0) {
    if (options_.traces == nullptr) {
      return HttpResponse::Text(200, "no request-trace store attached\n");
    }
    if (target == "/tracez?format=json") {
      HttpResponse response;
      response.content_type = "application/x-ndjson";
      response.body = options_.traces->SnapshotJsonl();
      return response;
    }
    if (target != "/tracez") {
      return HttpResponse::Text(400, "unknown /tracez parameter (try "
                                     "/tracez or /tracez?format=json)\n");
    }
    return HttpResponse::Text(200, options_.traces->SnapshotText());
  }
  if (target == "/profilez" || target.rfind("/profilez?", 0) == 0) {
    if (options_.plan_profiles == nullptr) {
      return HttpResponse::Text(200, "no plan-profile table attached\n");
    }
    if (target == "/profilez?format=json") {
      HttpResponse response;
      response.content_type = "application/json";
      response.body =
          obs::PlanProfileJson(options_.plan_profiles->Snapshot(),
                               options_.plan_profiles->queries())
              .Dump(true);
      response.body += "\n";
      return response;
    }
    size_t top_k = 20;
    if (target != "/profilez") {
      constexpr std::string_view kTopK = "/profilez?k=";
      if (target.rfind(kTopK, 0) != 0) {
        return HttpResponse::Text(400,
                                  "unknown /profilez parameter (try "
                                  "/profilez, /profilez?k=N, or "
                                  "/profilez?format=json)\n");
      }
      top_k = 0;
      for (char c : std::string_view(target).substr(kTopK.size())) {
        if (c < '0' || c > '9') {
          return HttpResponse::Text(400, "bad /profilez?k= value\n");
        }
        top_k = top_k * 10 + static_cast<size_t>(c - '0');
      }
      if (top_k == 0) top_k = 1;
    }
    return HttpResponse::Text(
        200, obs::RenderPlanProfileText(options_.plan_profiles->Snapshot(),
                                        top_k,
                                        options_.plan_profiles->queries()));
  }
  if (target == "/heapz" || target.rfind("/heapz?", 0) == 0) {
    // A scrape is read-only: Snapshot() copies the site table but never
    // starts or stops the sampler.
    const obs::HeapProfileSnapshot snapshot =
        obs::HeapProfiler::Instance().Snapshot();
    if (target == "/heapz?format=json") {
      HttpResponse response;
      response.content_type = "application/json";
      response.body = obs::HeapProfileJson(snapshot).Dump(true);
      response.body += "\n";
      return response;
    }
    if (target == "/heapz?format=collapsed") {
      return HttpResponse::Text(200,
                                obs::RenderHeapProfileCollapsed(snapshot));
    }
    size_t top_k = 20;
    if (target != "/heapz") {
      constexpr std::string_view kTopK = "/heapz?k=";
      if (target.rfind(kTopK, 0) != 0) {
        return HttpResponse::Text(400,
                                  "unknown /heapz parameter (try /heapz, "
                                  "/heapz?k=N, /heapz?format=json, or "
                                  "/heapz?format=collapsed)\n");
      }
      top_k = 0;
      for (char c : std::string_view(target).substr(kTopK.size())) {
        if (c < '0' || c > '9') {
          return HttpResponse::Text(400, "bad /heapz?k= value\n");
        }
        top_k = top_k * 10 + static_cast<size_t>(c - '0');
      }
      if (top_k == 0) top_k = 1;
    }
    return HttpResponse::Text(200,
                              obs::RenderHeapProfileText(snapshot, top_k));
  }
  if (target == "/memz" || target.rfind("/memz?", 0) == 0) {
    const obs::MemLedger& ledger = obs::MemLedger::Instance();
    if (target == "/memz?format=json") {
      const HeapStats stats = ProcessHeapStats();
      obs::Json process = obs::Json::Object();
      process.Set("live_bytes", stats.live_bytes);
      process.Set("live_objects", stats.live_objects);
      process.Set("peak_bytes", stats.peak_bytes);
      process.Set("resident_bytes", ProcessResidentBytes());
      process.Set("live_tracking", LiveHeapTrackingAvailable());
      obs::Json accounts = obs::Json::Array();
      for (const obs::MemLedger::Row& row : ledger.Snapshot()) {
        obs::Json entry = obs::Json::Object();
        entry.Set("name", row.name);
        entry.Set("bytes", row.bytes);
        entry.Set("charges", row.charges);
        entry.Set("live", row.live);
        accounts.Append(std::move(entry));
      }
      obs::Json doc = obs::Json::Object();
      doc.Set("schema", "secview.mem.v1");
      doc.Set("process", std::move(process));
      doc.Set("accounts", std::move(accounts));
      doc.Set("ledger_total_bytes", ledger.TotalBytes());
      HttpResponse response;
      response.content_type = "application/json";
      response.body = doc.Dump(true);
      response.body += "\n";
      return response;
    }
    if (target != "/memz") {
      return HttpResponse::Text(
          400, "unknown /memz parameter (try /memz or /memz?format=json)\n");
    }
    const HeapStats stats = ProcessHeapStats();
    std::ostringstream out;
    out << "process: live " << stats.live_bytes << "B in "
        << stats.live_objects << " objects, peak " << stats.peak_bytes
        << "B, rss " << ProcessResidentBytes() << "B"
        << (LiveHeapTrackingAvailable() ? "" : " (live tracking compiled out)")
        << "\n";
    out << obs::RenderMemLedgerText(ledger);
    return HttpResponse::Text(200, out.str());
  }
  if (target == "/healthz") {
    bool ready = !options_.ready || options_.ready();
    if (!ready) return HttpResponse::Text(503, "starting\n");
    // Degraded is still 200: the process is serving, just shedding or
    // dropping more than the health tracker's threshold. Load balancers
    // that eject on non-200 would turn a partial brownout into a full
    // outage.
    if (options_.health != nullptr &&
        options_.health->state() == obs::HealthState::kDegraded) {
      return HttpResponse::Text(200, "degraded\n");
    }
    return HttpResponse::Text(200, "ok\n");
  }
  if (target == "/statusz") {
    return HttpResponse::Text(200, RenderStatusz());
  }
  if (target == "/") {
    return HttpResponse::Text(200,
                              "secview telemetry: /metrics /varz /healthz "
                              "/statusz /tracez /profilez /heapz /memz\n");
  }
  return HttpResponse::Text(404, "no such endpoint: " + target + "\n");
}

std::string TelemetryServer::RenderStatusz() const {
  const BuildInfo& build = GetBuildInfo();
  std::ostringstream out;
  out << "secview " << build.version << " (" << build.compiler << ", "
      << build.cxx_standard << ")\n";
  out << "uptime: " << FormatUptime(ProcessUptimeMillis())
      << "   start_unix: " << ProcessStartUnixSeconds() << "\n";
  bool ready = !options_.ready || options_.ready();
  out << "ready: " << (ready ? "yes" : "no") << "\n";
  if (options_.health != nullptr) {
    obs::HealthState state = options_.health->state();
    obs::HealthTracker::Window w = options_.health->Snapshot();
    out << "health: " << obs::HealthStateName(state) << " (window: " << w.ok
        << " ok, " << w.failed << " failed, " << w.drops
        << " drops, failure rate " << FormatRate(w.failure_rate) << ")\n";
  }
  out << "telemetry: " << http_->requests_handled() << " handled, "
      << http_->requests_rejected() << " rejected, "
      << http_->connections_shed() << " shed, " << http_->io_errors()
      << " io errors\n";

  out << "\nserving\n";
  if (options_.window != nullptr) {
    AppendWindow(out, options_.window->Snapshot(10));
    AppendWindow(out, options_.window->Snapshot(60));
    out << "  lifetime: " << options_.window->total() << " queries\n";
  } else {
    out << "  no serving stats attached\n";
  }

  // Cache occupancy and pool depth read off the shared registry, so
  // /statusz needs no reference to the engine itself.
  obs::MetricsSnapshot snapshot = registry_->Collect();
  out << "\nrewrite cache\n";
  bool any_cache = false;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t plan_compiles = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "engine.cache.hits") cache_hits = value;
    if (name == "engine.cache.misses") cache_misses = value;
    if (name == "engine.plan.compiles") plan_compiles = value;
  }
  if (cache_hits + cache_misses > 0) {
    out << "  hit rate: "
        << FormatRate(static_cast<double>(cache_hits) /
                      static_cast<double>(cache_hits + cache_misses))
        << " (" << cache_hits << " hits, " << cache_misses << " misses)\n";
    any_cache = true;
  }
  int64_t cache_bytes = 0;
  int64_t plan_cached = 0;
  int64_t plan_bytes = 0;
  bool have_plan_gauges = false;
  for (const auto& [name, value] : snapshot.gauges) {
    std::string_view n = name;
    if (n == "engine.cache.bytes") cache_bytes = value;
    if (n == "engine.plan.cached") {
      plan_cached = value;
      have_plan_gauges = true;
    }
    if (n == "engine.plan.cache_bytes") plan_bytes = value;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string_view n = name;
    if (n == "engine.cache.size") {
      out << "  total entries: " << value << " (" << cache_bytes
          << " bytes)\n";
      any_cache = true;
    } else if (n.size() > 18 && n.substr(0, 18) == "engine.cache.shard") {
      out << "  " << n << " = " << value << "\n";
      any_cache = true;
    }
  }
  if (have_plan_gauges) {
    out << "  plans: " << plan_cached << " compiled (" << plan_bytes
        << " bytes, " << plan_compiles << " compiles)\n";
    any_cache = true;
  }
  if (!any_cache) out << "  no cache gauges registered\n";

  out << "\nworker pool\n";
  bool any_pool = false;
  for (const auto& [name, value] : snapshot.gauges) {
    if (std::string_view(name).substr(0, 12) == "engine.pool.") {
      out << "  " << name << " = " << value << "\n";
      any_pool = true;
    }
  }
  for (const auto& [name, value] : snapshot.counters) {
    if (std::string_view(name).substr(0, 12) == "engine.pool.") {
      out << "  " << name << " = " << value << "\n";
      any_pool = true;
    }
  }
  if (!any_pool) out << "  no pool attached\n";

  // Audit delivery: the sink degrades by dropping events (after retry)
  // rather than stalling queries, so dropped > 0 is the signal that the
  // trail has gaps (audit-verify reports the exact sequence holes).
  uint64_t audit_events = 0;
  uint64_t audit_dropped = 0;
  uint64_t plan_fallbacks = 0;
  bool have_audit = false;
  for (const auto& [name, value] : snapshot.counters) {
    std::string_view n = name;
    if (n == "audit.events") {
      audit_events = value;
      have_audit = true;
    }
    if (n == "audit.dropped") {
      audit_dropped = value;
      have_audit = true;
    }
    if (n == "engine.plan.fallbacks") plan_fallbacks = value;
  }
  if (have_audit || audit_dropped > 0) {
    out << "\naudit\n";
    out << "  " << audit_events << " events written, " << audit_dropped
        << " dropped";
    if (audit_dropped > 0) out << "  ** DEGRADED: audit trail has gaps **";
    out << "\n";
  }
  if (plan_fallbacks > 0) {
    out << "\nplan fallbacks\n";
    out << "  " << plan_fallbacks
        << " executions fell back from compiled plan to AST walk\n";
  }

  // Failpoints only appear once something is armed or has fired, so a
  // production /statusz stays clean.
  std::vector<FailPointRegistry::PointInfo> points =
      FailPointRegistry::Instance().List();
  bool any_failpoint = false;
  for (const auto& p : points) {
    if (p.policy == "off" && p.fires == 0) continue;
    if (!any_failpoint) {
      out << "\nfailpoints\n";
      any_failpoint = true;
    }
    out << "  " << p.name << " policy=" << p.policy << " fires=" << p.fires
        << "\n";
  }

  out << "\nallocation\n";
  bool any_alloc = false;
  for (const auto& h : snapshot.histograms) {
    if (h.name == "engine.alloc.bytes" && h.count > 0) {
      out << "  per-query alloc: " << h.sum << "B over " << h.count
          << " queries (avg " << h.sum / h.count << "B/query)\n";
      any_alloc = true;
    }
  }
  for (const auto& [name, value] : snapshot.counters) {
    std::string_view n = name;
    if (n.size() > 6 && n.substr(0, 6) == "alloc." && value > 0) {
      out << "  " << n << " = " << value << "\n";
      any_alloc = true;
    }
  }
  if (!any_alloc) {
    out << "  no allocations recorded"
        << (secview::AllocTrackingAvailable() ? "" : " (tracker compiled out)")
        << "\n";
  }

  out << "\nmemory\n";
  const HeapStats heap = ProcessHeapStats();
  if (LiveHeapTrackingAvailable()) {
    out << "  live: " << heap.live_bytes << "B in " << heap.live_objects
        << " objects (peak " << heap.peak_bytes << "B)\n";
  } else {
    out << "  live-heap tracking compiled out\n";
  }
  out << "  rss: " << ProcessResidentBytes() << "B\n";
  {
    const obs::MemLedger& ledger = obs::MemLedger::Instance();
    out << "  ledger: " << ledger.TotalBytes() << "B across "
        << ledger.Snapshot().size() << " accounts (see /memz)\n";
  }
  if (obs::HeapProfiler::Instance().running()) {
    out << "  heap profiler: sampling 1/"
        << obs::HeapProfiler::Instance().options().sample_interval_bytes
        << "B (see /heapz)\n";
  } else {
    out << "  heap profiler: off (serve --heap-sample BYTES)\n";
  }

  out << "\nper-policy\n";
  if (options_.policy_stats != nullptr) {
    std::vector<obs::PolicyStatsTable::PolicySnapshot> rows =
        options_.policy_stats->Snapshot();
    if (rows.empty()) out << "  no queries yet\n";
    for (const auto& row : rows) {
      out << "  " << row.policy << ": " << row.queries << " queries (ok "
          << row.ok << ", denied " << row.denied << ", timeout " << row.timeout
          << ", shed " << row.shed << "), nodes " << row.nodes_touched
          << ", alloc " << row.alloc_bytes << "B, p50 " << row.p50_micros
          << "us, p95 " << row.p95_micros << "us, p99 "
          << (row.p99_overflow ? ">" : "") << row.p99_micros << "us\n";
    }
  } else {
    out << "  no policy stats attached\n";
  }

  out << "\nrequest traces\n";
  if (options_.traces != nullptr) {
    out << "  sample 1/" << options_.traces->options().sample_every
        << ", slow >= " << options_.traces->options().slow_micros << "us, "
        << options_.traces->retained() << " retained of "
        << options_.traces->offered() << " offered (see /tracez)\n";
  } else {
    out << "  no request-trace store attached\n";
  }

  out << "\nslow queries";
  if (options_.slow_log != nullptr) {
    out << " (threshold " << options_.slow_log->threshold_micros()
        << "us, " << options_.slow_log->recorded() << " recorded, newest "
        << "first)\n";
    std::vector<obs::SlowQueryLog::Entry> entries =
        options_.slow_log->Snapshot();
    if (entries.empty()) out << "  none\n";
    for (const obs::SlowQueryLog::Entry& e : entries) {
      out << "  [" << obs::ServeOutcomeName(e.outcome) << "] "
          << e.latency_micros << "us policy=" << e.policy
          << " cache=" << (e.cache_hit ? "hit" : "miss")
          << " nodes=" << e.nodes_touched << " preds=" << e.predicate_evals
          << " results=" << e.results << " alloc=" << e.alloc_bytes << "B";
      if (!e.hot_step.empty()) out << " hot=" << e.hot_step;
      out << " query=" << e.query << "\n";
    }
  } else {
    out << "\n  no slow-query log attached\n";
  }
  return out.str();
}

}  // namespace secview::net
