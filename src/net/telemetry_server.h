#ifndef SECVIEW_NET_TELEMETRY_SERVER_H_
#define SECVIEW_NET_TELEMETRY_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "net/http_server.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/plan_profile.h"
#include "obs/policy_stats.h"
#include "obs/serving_stats.h"
#include "obs/slow_query_log.h"
#include "obs/trace_store.h"

namespace secview::net {

/// The secview telemetry endpoint set, served over an embedded
/// HttpServer:
///
///   /metrics  - live Prometheus text exposition (RenderPrometheusText
///               over a fresh registry Collect(), process info included)
///   /varz     - the same snapshot as secview.metrics.v1 JSON
///   /healthz  - liveness + readiness: "ok\n" (200) once the ready
///               predicate holds (engine sealed), 503 "starting\n" before
///   /statusz  - human-oriented status page: build info, uptime,
///               windowed QPS / error / shed rates and latency
///               percentiles, per-shard rewrite-cache occupancy, worker
///               pool queue depth, per-policy rollups, request-trace
///               sampling counters, and the slowest recent queries
///   /tracez   - sampled request traces (obs/trace_store.h), newest
///               first; "?format=json" returns secview.trace.v1 JSONL
///               ready for `secview trace-export`
///   /profilez - hottest plan steps across profiled queries
///               (obs/plan_profile.h), exclusive nodes-touched order;
///               "?format=json" returns the table as JSON and "?k=N"
///               bounds the text table's row count
///   /heapz    - sampled allocation-site heap profile (obs/heap_profile.h)
///               over the process live-heap counters; "?k=N" bounds the
///               text table, "?format=json" returns secview.heap.v1
///               (heap-export's input), "?format=collapsed" returns
///               folded stacks for flamegraph.pl / speedscope
///   /memz     - subsystem memory ledger (obs/mem_ledger.h): per-account
///               attributed bytes plus the process live/peak/RSS line;
///               "?format=json" for the machine form
///
/// The server only *reads* observability state — a scrape can never
/// mutate engine behavior — and depends on obs/common alone, so it can
/// front any registry-bearing process, not just the query engine.
class TelemetryServer {
 public:
  struct Options {
    HttpServer::Options http;
    /// Prometheus namespace prefix for /metrics.
    std::string ns = "secview";
    /// Readiness predicate for /healthz (e.g. engine sealed). Null means
    /// always ready.
    std::function<bool()> ready;
    /// Optional serving-window aggregator feeding /statusz rates; may be
    /// null (rates section reports "no serving stats attached").
    const obs::SlidingWindowStats* window = nullptr;
    /// Optional slow-query ring feeding /statusz; may be null.
    const obs::SlowQueryLog* slow_log = nullptr;
    /// Optional per-policy rollup table: adds labeled policy series to
    /// /metrics, a "policy_stats" section to /varz, and a per-policy
    /// block to /statusz. May be null.
    const obs::PolicyStatsTable* policy_stats = nullptr;
    /// Optional request-trace ring backing /tracez; may be null (the
    /// endpoint then reports that tracing is not attached).
    const obs::RequestTraceStore* traces = nullptr;
    /// Optional cross-query hot-step table backing /profilez; may be
    /// null (the endpoint then reports that profiling is not attached).
    const obs::PlanProfileTable* plan_profiles = nullptr;
    /// Optional serving-health state machine (obs/health.h). With it
    /// attached, a ready /healthz answers 200 "ok\n" or 200 "degraded\n"
    /// from the tracker's hysteresis verdict (degraded is still serving
    /// — load balancers should deprioritize, not eject), and /statusz
    /// gains a health section. Non-const: reading the verdict advances
    /// the state machine.
    obs::HealthTracker* health = nullptr;
  };

  /// `registry` must outlive the server.
  TelemetryServer(const obs::MetricsRegistry* registry, Options options);
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  Status Start();
  void Stop();

  uint16_t port() const { return http_->port(); }
  bool running() const { return http_->running(); }
  const HttpServer& http() const { return *http_; }

  /// The routing logic behind the socket server, exposed for tests:
  /// handles one parsed request without any networking.
  HttpResponse Handle(const HttpRequest& request) const;

 private:
  std::string RenderStatusz() const;

  const obs::MetricsRegistry* registry_;
  Options options_;
  std::unique_ptr<HttpServer> http_;
};

}  // namespace secview::net

#endif  // SECVIEW_NET_TELEMETRY_SERVER_H_
