#include "common/budget.h"

#include <string>

namespace secview {

QueryBudget::QueryBudget(const BudgetLimits& limits, CancelToken cancel)
    : limits_(limits), cancel_(cancel) {
  if (limits_.deadline_ms > 0) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(limits_.deadline_ms);
    has_deadline_ = true;
  }
  active_ = limits_.any() || cancel_.valid();
}

QueryBudget::QueryBudget(const BudgetLimits& limits,
                         std::chrono::steady_clock::time_point deadline,
                         CancelToken cancel)
    : limits_(limits), cancel_(cancel) {
  if (limits_.deadline_ms > 0) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  active_ = limits_.any() || cancel_.valid();
}

Status QueryBudget::CheckClockAndCancel() {
  if (cancel_.cancelled()) {
    tripped_ = Status::Cancelled("execution cancelled (CancelAll)");
    return tripped_;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    tripped_ = Status::DeadlineExceeded(
        "deadline of " + std::to_string(limits_.deadline_ms) +
        " ms exceeded");
    return tripped_;
  }
  return Status::OK();
}

Status QueryBudget::ChargeNodes(uint64_t n) {
  if (!active_) return Status::OK();
  if (!tripped_.ok()) return tripped_;
  ++checks_;
  nodes_used_ += n;
  if (limits_.max_nodes != 0 && nodes_used_ > limits_.max_nodes) {
    tripped_ = Status::ResourceExhausted(
        "node-visit budget exhausted: " + std::to_string(nodes_used_) +
        " visits > limit of " + std::to_string(limits_.max_nodes));
    return tripped_;
  }
  return CheckClockAndCancel();
}

Status QueryBudget::ChargeMemory(uint64_t units) {
  if (!active_) return Status::OK();
  if (!tripped_.ok()) return tripped_;
  ++checks_;
  memory_used_ += units;
  if (limits_.max_memory != 0 && memory_used_ > limits_.max_memory) {
    tripped_ = Status::ResourceExhausted(
        "allocation budget exhausted: " + std::to_string(memory_used_) +
        " units > limit of " + std::to_string(limits_.max_memory));
    return tripped_;
  }
  return CheckClockAndCancel();
}

Status QueryBudget::Check() {
  if (!active_) return Status::OK();
  if (!tripped_.ok()) return tripped_;
  ++checks_;
  return CheckClockAndCancel();
}

}  // namespace secview
