#ifndef SECVIEW_COMMON_STATUS_H_
#define SECVIEW_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace secview {

/// Error categories used across the library. Mirrors the coarse-grained
/// code sets of Arrow/RocksDB-style status objects.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (bad query text, bad DTD, ...).
  kNotFound,          ///< A referenced entity (element type, file) is absent.
  kFailedPrecondition,///< Operation not valid in the current state.
  kOutOfRange,        ///< A numeric limit (depth, size) was exceeded.
  kInternal,          ///< Invariant violation inside the library.
  kUnimplemented,     ///< Feature intentionally not supported.
  kAborted,           ///< View materialization aborted (paper Section 3.3).
  kDeadlineExceeded,  ///< A wall-clock deadline expired before completion.
  kResourceExhausted, ///< A resource budget (nodes, memory, queue) ran out.
  kCancelled,         ///< The caller cancelled the work (e.g. CancelAll).
};

/// Returns a stable human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value. All fallible public entry
/// points in secview return Status (or Result<T>, which wraps one).
///
/// The OK status carries no allocation; error statuses carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }

  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status from an expression to the caller.
#define SECVIEW_RETURN_IF_ERROR(expr)              \
  do {                                             \
    ::secview::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (false)

}  // namespace secview

#endif  // SECVIEW_COMMON_STATUS_H_
