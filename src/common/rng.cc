#include "common/rng.h"

namespace secview {

namespace {
// splitmix64, used to expand the single seed into two state words.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  s0_ = SplitMix64(x);
  s1_ = SplitMix64(x);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // xorshift state must be non-zero
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::Below(uint64_t n) {
  // Modulo bias is negligible for the small ranges we draw from.
  return Next() % n;
}

int Rng::RangeInclusive(int lo, int hi) {
  return lo + static_cast<int>(Below(static_cast<uint64_t>(hi - lo + 1)));
}

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return (Next() >> 11) * 0x1.0p-53 < p;
}

std::string Rng::AlphaString(size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out += static_cast<char>('a' + Below(26));
  }
  return out;
}

}  // namespace secview
