#include "common/build_info.h"

#include <chrono>

namespace secview {

namespace {

constexpr char kVersion[] = "0.5.0";

std::string CompilerString() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

/// Both clocks are captured together, once, so the wall-clock start and
/// the steady uptime baseline describe the same instant.
struct ProcessClock {
  int64_t start_unix_seconds;
  std::chrono::steady_clock::time_point start_steady;

  ProcessClock()
      : start_unix_seconds(std::chrono::duration_cast<std::chrono::seconds>(
                               std::chrono::system_clock::now()
                                   .time_since_epoch())
                               .count()),
        start_steady(std::chrono::steady_clock::now()) {}
};

const ProcessClock& GetProcessClock() {
  static const ProcessClock clock;
  return clock;
}

}  // namespace

namespace {

std::string BuildTypeString() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

std::string SanitizerString() {
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
  return "address";
#elif __has_feature(thread_sanitizer)
  return "thread";
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
  return "address";
#elif defined(__SANITIZE_THREAD__)
  return "thread";
#else
  return "none";
#endif
}

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info{kVersion, CompilerString(),
                              "c++" + std::to_string(__cplusplus / 100 % 100),
                              BuildTypeString(), SanitizerString()};
  return info;
}

int64_t ProcessStartUnixSeconds() {
  return GetProcessClock().start_unix_seconds;
}

uint64_t ProcessUptimeMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - GetProcessClock().start_steady)
          .count());
}

}  // namespace secview
