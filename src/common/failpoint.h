#ifndef SECVIEW_COMMON_FAILPOINT_H_
#define SECVIEW_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace secview {

namespace obs {
class Counter;
class MetricsRegistry;
}  // namespace obs

/// A named fault-injection point. Production call sites ask `Fire()`
/// at the spot where an environmental failure (ENOSPC, EMFILE, bad
/// alloc, ...) would surface; when the point is armed and its trigger
/// policy matches, the call site simulates that failure and exercises
/// its degradation path instead of the happy path.
///
/// The disarmed cost is one relaxed atomic load — no lock, no branch
/// into policy code — so failpoints stay compiled into production
/// binaries. Policies (docs/robustness.md "Fault injection"):
///
///   off        never fires (the default)
///   once       fires on the next call, then disarms itself
///   every:N    fires on every Nth call (N >= 1)
///   prob:P     fires with probability P per call, driven by a seeded
///              deterministic Rng (optional `:S` seed suffix, default
///              42) so a chaos schedule replays exactly
///
/// Thread safety: Fire() may be called concurrently with Arm/Disarm
/// from any thread. Armed-policy state is guarded by a mutex on the
/// slow path; `fires()` is a relaxed atomic read.
class FailPoint {
 public:
  /// True when the point is armed and its policy triggers this call.
  /// Disarmed fast path: a single relaxed atomic load.
  bool Fire() {
    if (mode_.load(std::memory_order_relaxed) == kOff) return false;
    return FireSlow();
  }

  const std::string& name() const { return name_; }

  /// Lifetime count of calls where Fire() returned true.
  uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }

  /// Human-readable policy ("off", "once", "every:3", "prob:0.25:7").
  std::string policy() const;

 private:
  friend class FailPointRegistry;

  enum Mode : int { kOff = 0, kOnce = 1, kEveryN = 2, kProbability = 3 };

  explicit FailPoint(std::string name) : name_(std::move(name)) {}

  bool FireSlow();
  void ArmLocked(Mode mode, uint64_t every_n, double probability,
                 uint64_t seed);

  const std::string name_;

  std::atomic<int> mode_{kOff};
  std::atomic<uint64_t> fires_{0};
  /// Per-point counter "engine.failpoint.<name>" in the registry last
  /// passed to FailPointRegistry::AttachMetrics; null when detached.
  std::atomic<obs::Counter*> counter_{nullptr};

  mutable std::mutex mu_;
  uint64_t every_n_ = 0;      ///< kEveryN period
  uint64_t calls_ = 0;        ///< kEveryN call counter
  double probability_ = 0.0;  ///< kProbability chance per call
  uint64_t seed_ = 0;
  std::unique_ptr<Rng> rng_;  ///< kProbability source, seeded on arm
};

/// Well-known failpoint names. Arbitrary names are allowed — a point
/// registers itself on first Get() — but these are the sites wired
/// through the serving stack (site inventory: docs/robustness.md).
namespace failpoints {
inline constexpr char kAuditWrite[] = "audit.write";
inline constexpr char kNetAccept[] = "net.accept";
inline constexpr char kNetRecv[] = "net.recv";
inline constexpr char kNetSend[] = "net.send";
inline constexpr char kNetConnect[] = "net.connect";
inline constexpr char kAllocEvaluate[] = "alloc.evaluate";
inline constexpr char kPlanCompile[] = "plan.compile";
inline constexpr char kCacheInsert[] = "cache.insert";
inline constexpr char kPoolSubmit[] = "pool.submit";
}  // namespace failpoints

/// Process-wide registry of failpoints, armed from a spec string (the
/// SECVIEW_FAILPOINTS env var or the --failpoints CLI flag):
///
///   spec   := entry (',' entry)*
///   entry  := name '=' policy
///   policy := 'off' | 'once' | 'every:' N | 'prob:' P [':' SEED]
///
/// e.g. "audit.write=prob:0.3:7,pool.submit=every:5,net.send=once".
/// Unknown names are legal and create the point — call sites resolve
/// lazily, and a chaos schedule may arm a point before the subsystem
/// that fires it has started.
class FailPointRegistry {
 public:
  static FailPointRegistry& Instance();

  /// Returns the point with this name, creating it disarmed if absent.
  /// The reference stays valid for the life of the process.
  FailPoint& Get(std::string_view name);

  /// Parses and applies a spec (grammar above). Invalid entries leave
  /// already-applied entries armed and return InvalidArgument naming
  /// the offending entry. An empty spec is a no-op.
  Status ArmFromSpec(std::string_view spec);

  /// Arms one point. `policy` is a single policy token from the grammar.
  Status Arm(std::string_view name, std::string_view policy);

  void Disarm(std::string_view name);
  void DisarmAll();

  struct PointInfo {
    std::string name;
    std::string policy;  ///< "off" when disarmed
    uint64_t fires = 0;
  };
  /// All registered points, name-sorted.
  std::vector<PointInfo> List() const;

  /// Sum of fires() across all registered points.
  uint64_t TotalFires() const;

  /// Mirrors every fire into `metrics` counter "engine.failpoint.<name>"
  /// (existing and future points). Pass nullptr to detach — required
  /// before the registry outlives `metrics` (the failpoint registry is
  /// a process singleton; a metrics registry usually is not).
  void AttachMetrics(obs::MetricsRegistry* metrics);

 private:
  FailPointRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<FailPoint>, std::less<>> points_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace secview

#endif  // SECVIEW_COMMON_FAILPOINT_H_
