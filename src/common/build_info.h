#ifndef SECVIEW_COMMON_BUILD_INFO_H_
#define SECVIEW_COMMON_BUILD_INFO_H_

#include <cstdint>
#include <string>

namespace secview {

/// Static facts about this build, exported so scrapes and status pages
/// can tell which binary is answering (e.g. after a rolling restart).
struct BuildInfo {
  /// Library version, bumped per release line.
  std::string version;
  /// Compiler identification (e.g. "gcc 13.2.0").
  std::string compiler;
  /// Language standard the library was built against (e.g. "c++20").
  std::string cxx_standard;
  /// "release" (NDEBUG) or "debug" — a flat scaling curve from a debug
  /// binary means nothing, so bench artifacts must carry this.
  std::string build_type;
  /// Sanitizer runtime compiled in: "address", "thread", or "none".
  std::string sanitizer;
};

/// The process-wide build description (computed once).
const BuildInfo& GetBuildInfo();

/// Wall-clock seconds since the Unix epoch at process start (captured
/// the first time any process-info accessor runs; stable afterwards, so
/// a scraper sees the same start time on every scrape and can detect
/// restarts as a change in this value).
int64_t ProcessStartUnixSeconds();

/// Milliseconds of steady-clock time since the start captured above.
/// Monotone: never affected by wall-clock adjustments.
uint64_t ProcessUptimeMillis();

}  // namespace secview

#endif  // SECVIEW_COMMON_BUILD_INFO_H_
