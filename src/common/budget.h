#ifndef SECVIEW_COMMON_BUDGET_H_
#define SECVIEW_COMMON_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace secview {

/// Cooperative cancellation, RocksDB/gRPC style: a long-lived
/// CancelSource owned by whoever can abort work (a worker pool, a
/// server), and cheap CancelToken snapshots handed to each execution.
///
/// The source counts *generations* rather than holding a single flag:
/// CancelAll() bumps the generation, which cancels every token
/// snapshotted before the bump while tokens taken afterwards start
/// clean. That is exactly the worker-pool semantic — "abort everything
/// in flight, keep serving new batches" — without any reset handshake.
class CancelSource {
 public:
  CancelSource() = default;
  CancelSource(const CancelSource&) = delete;
  CancelSource& operator=(const CancelSource&) = delete;

  /// Cancels every token snapshotted before this call. Thread-safe.
  void CancelAll() { generation_.fetch_add(1, std::memory_order_release); }

  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<uint64_t> generation_{0};
};

/// A copyable snapshot of a CancelSource. Default-constructed tokens are
/// never cancelled. The source must outlive every token taken from it.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(const CancelSource& source)
      : source_(&source), snapshot_(source.generation()) {}

  /// True iff this token is attached to a source at all.
  bool valid() const { return source_ != nullptr; }

  bool cancelled() const {
    return source_ != nullptr && source_->generation() != snapshot_;
  }

 private:
  const CancelSource* source_ = nullptr;
  uint64_t snapshot_ = 0;
};

/// Per-query resource limits. Zero means unlimited for every field, so a
/// default-constructed BudgetLimits preserves the historical
/// "run to completion" behavior exactly.
struct BudgetLimits {
  /// Wall-clock deadline, relative to budget construction.
  uint64_t deadline_ms = 0;
  /// Evaluator node-visit budget (the paper's machine-independent cost
  /// unit; ExecuteStats::nodes_touched counts the same thing).
  uint64_t max_nodes = 0;
  /// Allocation budget in abstract units: rewriter/optimizer DP cells
  /// and other per-query allocations charge against it. Bounds the
  /// memory a hostile query can pin, machine-independently.
  uint64_t max_memory = 0;

  bool any() const {
    return deadline_ms != 0 || max_nodes != 0 || max_memory != 0;
  }
};

/// The defensive-serving companion of one query execution: a wall-clock
/// deadline, a node-visit budget, an allocation budget, and a
/// cancellation token, checked *cooperatively* at coarse granularity by
/// the XPath evaluator (every ~kNodeStride node visits), the rewriter
/// and optimizer (every DP cell), and the engine (between phases).
///
/// A budget is owned by exactly one execution on one thread; the only
/// cross-thread signal is the CancelToken's atomic generation read.
/// Errors are sticky: once a limit trips, every later Charge/Check
/// returns the same Status without consulting the clock again, so
/// callers deep in a recursion unwind quickly.
///
/// An inactive budget (no limits, no token) makes every call a no-op
/// returning OK; the engine skips installing such budgets entirely so
/// the hot path stays hot.
class QueryBudget {
 public:
  /// Node visits between two deadline checks in the evaluator. Coarse
  /// enough that the per-node cost is one compare; fine enough that a
  /// 50 ms deadline is honored within a small multiple.
  static constexpr uint64_t kNodeStride = 1024;

  /// Unlimited budget (active() == false).
  QueryBudget() = default;

  /// Limits are relative to "now" at construction.
  explicit QueryBudget(const BudgetLimits& limits,
                       CancelToken cancel = CancelToken());

  /// Queued-work form: the deadline was fixed when the work was
  /// *submitted*, not when it started running (time spent waiting in a
  /// queue counts against the caller's deadline).
  QueryBudget(const BudgetLimits& limits,
              std::chrono::steady_clock::time_point deadline,
              CancelToken cancel);

  QueryBudget(const QueryBudget&) = delete;
  QueryBudget& operator=(const QueryBudget&) = delete;

  /// True iff any limit or a cancellation token is attached.
  bool active() const { return active_; }

  /// Charges `n` evaluator node visits. Checks the node budget on every
  /// call and the clock/cancellation lazily (callers already stride).
  Status ChargeNodes(uint64_t n);

  /// Charges `units` allocation units (one rewriter/optimizer DP cell =
  /// one unit). Checks the memory budget, the clock, and cancellation.
  Status ChargeMemory(uint64_t units);

  /// Checks deadline and cancellation only; used between engine phases.
  Status Check();

  uint64_t nodes_used() const { return nodes_used_; }
  uint64_t memory_used() const { return memory_used_; }
  /// Number of limit consultations (exported as xpath.budget_checks for
  /// the evaluator's share).
  uint64_t checks() const { return checks_; }

  bool has_deadline() const { return has_deadline_; }
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

 private:
  Status CheckClockAndCancel();

  BudgetLimits limits_;
  CancelToken cancel_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  bool active_ = false;

  uint64_t nodes_used_ = 0;
  uint64_t memory_used_ = 0;
  uint64_t checks_ = 0;
  Status tripped_;  ///< sticky first failure
};

}  // namespace secview

#endif  // SECVIEW_COMMON_BUDGET_H_
