#include "common/alloc_tracker.h"

#include <cstdlib>
#include <new>

namespace secview {
namespace {

// Zero-initialized POD, so TLS access needs no guard variable and is
// safe from the very first allocation a thread makes (including during
// static initialization, before main).
thread_local AllocCounts tls_counts;

}  // namespace

namespace alloc_internal {
void Charge(std::size_t bytes) {
  tls_counts.bytes += bytes;
  ++tls_counts.count;
}
}  // namespace alloc_internal

AllocCounts ThreadAllocCounts() { return tls_counts; }

bool AllocTrackingAvailable() {
#ifdef SECVIEW_ALLOC_TRACKER
  return true;
#else
  return false;
#endif
}

}  // namespace secview

#ifdef SECVIEW_ALLOC_TRACKER

// Global operator new/delete replacement ([replacement.functions]).
// These definitions live in the same translation unit as the always-used
// accessor functions above: any binary calling ThreadAllocCounts() (the
// engine does, unconditionally) pulls this archive member into the link,
// which is what makes a static-library replacement of a global operator
// reliable.
//
// The wrappers forward to std::malloc / std::free so that sanitizer
// malloc interceptors still see every allocation. Alignment above
// __STDCPP_DEFAULT_NEW_ALIGNMENT__ goes through posix_memalign, whose
// result is legal to pass to free().

namespace {

void* TrackedAlloc(std::size_t size) {
  secview::alloc_internal::Charge(size);
  return std::malloc(size == 0 ? 1 : size);
}

void* TrackedAllocAligned(std::size_t size, std::size_t align) {
  secview::alloc_internal::Charge(size);
  if (align < alignof(void*)) align = alignof(void*);
  void* ptr = nullptr;
  if (posix_memalign(&ptr, align, size == 0 ? 1 : size) != 0) return nullptr;
  return ptr;
}

}  // namespace

void* operator new(std::size_t size) {
  void* ptr = TrackedAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size) {
  void* ptr = TrackedAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return TrackedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return TrackedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* ptr = TrackedAllocAligned(size, static_cast<std::size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* ptr = TrackedAllocAligned(size, static_cast<std::size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return TrackedAllocAligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return TrackedAllocAligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(ptr);
}

#endif  // SECVIEW_ALLOC_TRACKER
