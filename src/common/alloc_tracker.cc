#include "common/alloc_tracker.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <new>

// Free-side sizing mechanism selection. Header mode (the cmake option
// SECVIEW_HEAP_HEADER) wins when requested; otherwise size-class mode
// via malloc_usable_size where <malloc.h> provides it (glibc, musl).
#if !defined(SECVIEW_HEAP_HEADER) && defined(__has_include)
#if __has_include(<malloc.h>)
#include <malloc.h>
#define SECVIEW_HEAP_USABLE_SIZE 1
#endif
#endif

namespace secview {
namespace {

// Zero-initialized POD, so TLS access needs no guard variable and is
// safe from the very first allocation a thread makes (including during
// static initialization, before main).
thread_local AllocCounts tls_counts;

// Process-wide live-heap ledger. Constant-initialized atomics so the
// hooks can charge them before any static constructor runs. All
// operations are relaxed: the counters are statistics, not
// synchronization, and a scrape tolerates per-field blur.
std::atomic<uint64_t> g_live_bytes{0};
std::atomic<uint64_t> g_live_objects{0};
std::atomic<uint64_t> g_peak_bytes{0};
std::atomic<uint64_t> g_total_alloc_bytes{0};
std::atomic<uint64_t> g_total_allocs{0};
std::atomic<uint64_t> g_total_frees{0};

// Observer hooks (sampled heap profiler). Two independent atomics —
// see SetHeapHooks in the header for the swap semantics.
std::atomic<alloc_internal::AllocHook> g_alloc_hook{nullptr};
std::atomic<alloc_internal::FreeHook> g_free_hook{nullptr};

// Page size cache for the async-signal-safe RSS reader. Warmed by
// ProcessResidentBytes(); the 4096 fallback only matters if a crash
// happens before anything ever read the RSS.
std::atomic<uint64_t> g_page_size{0};

inline void NoteLiveAlloc(std::size_t charged) {
  g_total_alloc_bytes.fetch_add(charged, std::memory_order_relaxed);
  g_total_allocs.fetch_add(1, std::memory_order_relaxed);
  g_live_objects.fetch_add(1, std::memory_order_relaxed);
  const uint64_t live =
      g_live_bytes.fetch_add(charged, std::memory_order_relaxed) + charged;
  // Monotone high-water mark; the CAS loop only runs while this thread's
  // reading is still above the published peak.
  uint64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak_bytes.compare_exchange_weak(peak, live,
                                             std::memory_order_relaxed)) {
  }
}

inline void NoteLiveFree(std::size_t charged) {
  g_live_bytes.fetch_sub(charged, std::memory_order_relaxed);
  g_live_objects.fetch_sub(1, std::memory_order_relaxed);
  g_total_frees.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

namespace alloc_internal {

void Charge(std::size_t bytes) {
  tls_counts.bytes += bytes;
  ++tls_counts.count;
}

uint64_t LiveBytesRaw() {
  return g_live_bytes.load(std::memory_order_relaxed);
}
uint64_t LiveObjectsRaw() {
  return g_live_objects.load(std::memory_order_relaxed);
}
uint64_t PeakBytesRaw() {
  return g_peak_bytes.load(std::memory_order_relaxed);
}

uint64_t ResidentBytesRaw() {
  int fd = ::open("/proc/self/statm", O_RDONLY);
  if (fd < 0) return 0;
  char buf[128];
  ssize_t n = ::read(fd, buf, sizeof(buf) - 1);
  ::close(fd);
  if (n <= 0) return 0;
  // statm: "<total> <resident> ..." in pages; parse the second field.
  ssize_t i = 0;
  while (i < n && buf[i] != ' ') ++i;
  while (i < n && buf[i] == ' ') ++i;
  uint64_t pages = 0;
  while (i < n && buf[i] >= '0' && buf[i] <= '9') {
    pages = pages * 10 + static_cast<uint64_t>(buf[i++] - '0');
  }
  uint64_t page = g_page_size.load(std::memory_order_relaxed);
  return pages * (page != 0 ? page : 4096);
}

void SetHeapHooks(AllocHook on_alloc, FreeHook on_free) {
  g_alloc_hook.store(on_alloc, std::memory_order_relaxed);
  g_free_hook.store(on_free, std::memory_order_relaxed);
}

}  // namespace alloc_internal

AllocCounts ThreadAllocCounts() { return tls_counts; }

HeapStats ProcessHeapStats() {
  HeapStats s;
  s.live_bytes = g_live_bytes.load(std::memory_order_relaxed);
  s.live_objects = g_live_objects.load(std::memory_order_relaxed);
  s.peak_bytes = g_peak_bytes.load(std::memory_order_relaxed);
  s.total_alloc_bytes = g_total_alloc_bytes.load(std::memory_order_relaxed);
  s.total_allocs = g_total_allocs.load(std::memory_order_relaxed);
  s.total_frees = g_total_frees.load(std::memory_order_relaxed);
  return s;
}

uint64_t ProcessResidentBytes() {
  if (g_page_size.load(std::memory_order_relaxed) == 0) {
    long page = ::sysconf(_SC_PAGESIZE);
    if (page > 0) {
      g_page_size.store(static_cast<uint64_t>(page),
                        std::memory_order_relaxed);
    }
  }
  return alloc_internal::ResidentBytesRaw();
}

bool AllocTrackingAvailable() {
#ifdef SECVIEW_ALLOC_TRACKER
  return true;
#else
  return false;
#endif
}

bool LiveHeapTrackingAvailable() {
#if defined(SECVIEW_ALLOC_TRACKER) && \
    (defined(SECVIEW_HEAP_USABLE_SIZE) || defined(SECVIEW_HEAP_HEADER))
  return true;
#else
  return false;
#endif
}

}  // namespace secview

#ifdef SECVIEW_ALLOC_TRACKER

// Global operator new/delete replacement ([replacement.functions]).
// These definitions live in the same translation unit as the always-used
// accessor functions above: any binary calling ThreadAllocCounts() (the
// engine does, unconditionally) pulls this archive member into the link,
// which is what makes a static-library replacement of a global operator
// reliable.
//
// The wrappers forward to std::malloc / std::free so that sanitizer
// malloc interceptors still see every allocation. Alignment above
// __STDCPP_DEFAULT_NEW_ALIGNMENT__ goes through posix_memalign, whose
// result is legal to pass to free().

namespace {

using secview::alloc_internal::AllocHook;
using secview::alloc_internal::FreeHook;

#if defined(SECVIEW_HEAP_HEADER)

// Per-pointer header mode: every allocation is padded by (at least) one
// 16-byte header directly before the user pointer, recording the
// requested size and the distance back to the malloc'd base. Portable
// to any libc; costs 16 bytes (or the alignment, if larger) per
// allocation.
struct HeapHeader {
  uint64_t size;
  uint32_t offset;  // user pointer minus malloc'd base
  uint32_t magic;
};
static_assert(sizeof(HeapHeader) == 16, "header must preserve alignment");
constexpr uint32_t kHeapMagic = 0x53764845;  // "EHvS"

#endif  // SECVIEW_HEAP_HEADER

inline void NotifyAlloc(void* ptr, std::size_t size) {
  if (AllocHook hook = secview::g_alloc_hook.load(std::memory_order_relaxed)) {
    hook(ptr, size);
  }
}

void* TrackedAlloc(std::size_t size) {
  secview::alloc_internal::Charge(size);
#if defined(SECVIEW_HEAP_HEADER)
  void* base = std::malloc(size + sizeof(HeapHeader));
  if (base == nullptr) return nullptr;
  void* user = static_cast<char*>(base) + sizeof(HeapHeader);
  HeapHeader* header = static_cast<HeapHeader*>(user) - 1;
  header->size = size;
  header->offset = sizeof(HeapHeader);
  header->magic = kHeapMagic;
  secview::NoteLiveAlloc(size);
  return user;
#else
  void* ptr = std::malloc(size == 0 ? 1 : size);
#if defined(SECVIEW_HEAP_USABLE_SIZE)
  if (ptr != nullptr) secview::NoteLiveAlloc(malloc_usable_size(ptr));
#endif
  return ptr;
#endif
}

void* TrackedAllocAligned(std::size_t size, std::size_t align) {
  secview::alloc_internal::Charge(size);
  if (align < alignof(void*)) align = alignof(void*);
#if defined(SECVIEW_HEAP_HEADER)
  if (align < sizeof(HeapHeader)) align = sizeof(HeapHeader);
  // Pad by exactly `align`: base is align-aligned, so base + align stays
  // align-aligned and leaves >= 16 bytes for the header.
  void* base = nullptr;
  if (posix_memalign(&base, align, size + align) != 0) return nullptr;
  void* user = static_cast<char*>(base) + align;
  HeapHeader* header = static_cast<HeapHeader*>(user) - 1;
  header->size = size;
  header->offset = static_cast<uint32_t>(align);
  header->magic = kHeapMagic;
  secview::NoteLiveAlloc(size);
  return user;
#else
  void* ptr = nullptr;
  if (posix_memalign(&ptr, align, size == 0 ? 1 : size) != 0) return nullptr;
#if defined(SECVIEW_HEAP_USABLE_SIZE)
  secview::NoteLiveAlloc(malloc_usable_size(ptr));
#endif
  return ptr;
#endif
}

void TrackedFree(void* ptr) noexcept {
  if (ptr == nullptr) return;
  // Observe before releasing: the profiler hashes the pointer to find
  // its sample record, and the address must not be recycled (by a
  // concurrent malloc of the same block) until the record is gone.
  if (FreeHook hook = secview::g_free_hook.load(std::memory_order_relaxed)) {
    hook(ptr);
  }
#if defined(SECVIEW_HEAP_HEADER)
  HeapHeader* header = static_cast<HeapHeader*>(ptr) - 1;
  if (header->magic == kHeapMagic) {
    secview::NoteLiveFree(header->size);
    const uint32_t offset = header->offset;
    header->magic = 0;  // catch double frees of the same block
    std::free(static_cast<char*>(ptr) - offset);
  } else {
    // Not one of ours (allocated before the hooks were linked in, or a
    // foreign malloc freed via delete). Releasing it raw is the only
    // correct move; the live ledger never charged it.
    std::free(ptr);
  }
#else
#if defined(SECVIEW_HEAP_USABLE_SIZE)
  secview::NoteLiveFree(malloc_usable_size(ptr));
#endif
  std::free(ptr);
#endif
}

}  // namespace

void* operator new(std::size_t size) {
  void* ptr = TrackedAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  NotifyAlloc(ptr, size);
  return ptr;
}

void* operator new[](std::size_t size) {
  void* ptr = TrackedAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  NotifyAlloc(ptr, size);
  return ptr;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* ptr = TrackedAlloc(size);
  if (ptr != nullptr) NotifyAlloc(ptr, size);
  return ptr;
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  void* ptr = TrackedAlloc(size);
  if (ptr != nullptr) NotifyAlloc(ptr, size);
  return ptr;
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* ptr = TrackedAllocAligned(size, static_cast<std::size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();
  NotifyAlloc(ptr, size);
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* ptr = TrackedAllocAligned(size, static_cast<std::size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();
  NotifyAlloc(ptr, size);
  return ptr;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  void* ptr = TrackedAllocAligned(size, static_cast<std::size_t>(align));
  if (ptr != nullptr) NotifyAlloc(ptr, size);
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  void* ptr = TrackedAllocAligned(size, static_cast<std::size_t>(align));
  if (ptr != nullptr) NotifyAlloc(ptr, size);
  return ptr;
}

void operator delete(void* ptr) noexcept { TrackedFree(ptr); }
void operator delete[](void* ptr) noexcept { TrackedFree(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { TrackedFree(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { TrackedFree(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  TrackedFree(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  TrackedFree(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  TrackedFree(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  TrackedFree(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  TrackedFree(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  TrackedFree(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  TrackedFree(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  TrackedFree(ptr);
}

#endif  // SECVIEW_ALLOC_TRACKER
