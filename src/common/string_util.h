#ifndef SECVIEW_COMMON_STRING_UTIL_H_
#define SECVIEW_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace secview {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on the single character `sep`; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True iff `s` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Escapes the five predefined XML entities in `s` (& < > " ').
std::string XmlEscape(std::string_view s);

/// True iff `c` may start / continue an XML name. We accept the ASCII
/// subset of the XML 1.0 NameChar productions, which covers every DTD and
/// document this library generates or ships.
bool IsNameStartChar(char c);
bool IsNameChar(char c);

/// True iff `s` is a non-empty XML name over the accepted alphabet.
bool IsValidXmlName(std::string_view s);

}  // namespace secview

#endif  // SECVIEW_COMMON_STRING_UTIL_H_
