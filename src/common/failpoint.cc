#include "common/failpoint.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/metrics.h"

namespace secview {
namespace {

constexpr uint64_t kDefaultProbSeed = 42;

/// Parses a non-negative integer; rejects empty/overlong/non-digit input.
bool ParseUint(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 18) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseProbability(std::string_view text, double* out) {
  if (text.empty() || text.size() > 32) return false;
  // Accept "0", "1", "0.25", ".5" — digits with at most one dot.
  bool seen_dot = false;
  for (char c : text) {
    if (c == '.') {
      if (seen_dot) return false;
      seen_dot = true;
    } else if (c < '0' || c > '9') {
      return false;
    }
  }
  double value = std::strtod(std::string(text).c_str(), nullptr);
  if (value < 0.0 || value > 1.0) return false;
  *out = value;
  return true;
}

}  // namespace

std::string FailPoint::policy() const {
  std::lock_guard<std::mutex> lock(mu_);
  char buffer[64];
  switch (mode_.load(std::memory_order_relaxed)) {
    case kOnce:
      return "once";
    case kEveryN:
      std::snprintf(buffer, sizeof(buffer), "every:%llu",
                    static_cast<unsigned long long>(every_n_));
      return buffer;
    case kProbability:
      std::snprintf(buffer, sizeof(buffer), "prob:%g:%llu", probability_,
                    static_cast<unsigned long long>(seed_));
      return buffer;
    default:
      return "off";
  }
}

bool FailPoint::FireSlow() {
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (mode_.load(std::memory_order_relaxed)) {
      case kOff:
        return false;  // lost a race with Disarm
      case kOnce:
        fire = true;
        mode_.store(kOff, std::memory_order_relaxed);
        break;
      case kEveryN:
        fire = (++calls_ % every_n_) == 0;
        break;
      case kProbability:
        fire = rng_->Chance(probability_);
        break;
    }
  }
  if (fire) {
    fires_.fetch_add(1, std::memory_order_relaxed);
    obs::Counter* counter = counter_.load(std::memory_order_relaxed);
    if (counter != nullptr) counter->Add();
  }
  return fire;
}

void FailPoint::ArmLocked(Mode mode, uint64_t every_n, double probability,
                          uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  every_n_ = every_n;
  calls_ = 0;
  probability_ = probability;
  seed_ = seed;
  rng_ = mode == kProbability ? std::make_unique<Rng>(seed) : nullptr;
  // Publish the mode last so a concurrent Fire() that sees the new mode
  // also sees the new policy state (it re-acquires mu_ on the slow path).
  mode_.store(mode, std::memory_order_relaxed);
}

FailPointRegistry& FailPointRegistry::Instance() {
  static FailPointRegistry* instance = new FailPointRegistry();
  return *instance;
}

FailPoint& FailPointRegistry::Get(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    auto point =
        std::unique_ptr<FailPoint>(new FailPoint(std::string(name)));
    if (metrics_ != nullptr) {
      point->counter_.store(
          &metrics_->GetCounter("engine.failpoint." + point->name_),
          std::memory_order_relaxed);
    }
    it = points_.emplace(point->name_, std::move(point)).first;
  }
  return *it->second;
}

Status FailPointRegistry::ArmFromSpec(std::string_view spec) {
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;  // tolerate "a=once,,b=off" and ""
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("failpoint spec entry '" +
                                     std::string(entry) +
                                     "' is not name=policy");
    }
    Status armed = Arm(entry.substr(0, eq), entry.substr(eq + 1));
    if (!armed.ok()) return armed;
  }
  return Status::OK();
}

Status FailPointRegistry::Arm(std::string_view name, std::string_view policy) {
  FailPoint& point = Get(name);
  if (policy == "off") {
    point.ArmLocked(FailPoint::kOff, 0, 0.0, 0);
    return Status::OK();
  }
  if (policy == "once") {
    point.ArmLocked(FailPoint::kOnce, 0, 0.0, 0);
    return Status::OK();
  }
  if (policy.rfind("every:", 0) == 0) {
    uint64_t n = 0;
    if (!ParseUint(policy.substr(6), &n) || n == 0) {
      return Status::InvalidArgument("failpoint '" + std::string(name) +
                                     "': every:N needs an integer N >= 1");
    }
    point.ArmLocked(FailPoint::kEveryN, n, 0.0, 0);
    return Status::OK();
  }
  if (policy.rfind("prob:", 0) == 0) {
    std::string_view rest = policy.substr(5);
    uint64_t seed = kDefaultProbSeed;
    size_t colon = rest.find(':');
    if (colon != std::string_view::npos) {
      if (!ParseUint(rest.substr(colon + 1), &seed)) {
        return Status::InvalidArgument("failpoint '" + std::string(name) +
                                       "': prob:P:SEED needs an integer seed");
      }
      rest = rest.substr(0, colon);
    }
    double p = 0.0;
    if (!ParseProbability(rest, &p)) {
      return Status::InvalidArgument("failpoint '" + std::string(name) +
                                     "': prob:P needs P in [0,1]");
    }
    point.ArmLocked(FailPoint::kProbability, 0, p, seed);
    return Status::OK();
  }
  return Status::InvalidArgument(
      "failpoint '" + std::string(name) + "': unknown policy '" +
      std::string(policy) + "' (want off|once|every:N|prob:P[:SEED])");
}

void FailPointRegistry::Disarm(std::string_view name) {
  Get(name).ArmLocked(FailPoint::kOff, 0, 0.0, 0);
}

void FailPointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, point] : points_) {
    point->ArmLocked(FailPoint::kOff, 0, 0.0, 0);
  }
}

std::vector<FailPointRegistry::PointInfo> FailPointRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PointInfo> out;
  out.reserve(points_.size());
  for (const auto& [name, point] : points_) {
    out.push_back({name, point->policy(), point->fires()});
  }
  return out;
}

uint64_t FailPointRegistry::TotalFires() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, point] : points_) total += point->fires();
  return total;
}

void FailPointRegistry::AttachMetrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
  for (auto& [name, point] : points_) {
    point->counter_.store(
        metrics == nullptr
            ? nullptr
            : &metrics->GetCounter("engine.failpoint." + name),
        std::memory_order_relaxed);
  }
}

}  // namespace secview
