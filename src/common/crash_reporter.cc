#include "common/crash_reporter.h"

#include <csignal>
#include <cstring>
#include <unistd.h>

#include <atomic>
#include <string>

#include "common/alloc_tracker.h"
#include "common/build_info.h"

namespace secview {
namespace {

/// Header + build line, rendered once at install time so the handler
/// only has to write() it.
char g_banner[512];
size_t g_banner_len = 0;

std::atomic<int64_t> g_active_queries{0};

/// Last slow-query line, copied in whole by writers. Readers (the
/// signal handler) may observe a torn update; the buffer always stays
/// NUL-terminated because writers never touch the final byte.
constexpr size_t kSlowBufSize = 512;
char g_last_slow[kSlowBufSize] = {0};
std::atomic<bool> g_have_slow{false};
/// Single-writer gate for g_last_slow. Writers try-lock and skip on
/// contention: dropping one candidate line is fine, racing char writes
/// are not. The signal handler only reads and never takes the gate.
std::atomic<bool> g_slow_writer{false};

std::atomic<bool> g_installed{false};

/// write(2) a NUL-terminated string, ignoring short writes/errors — in
/// a crash handler there is nothing sensible to do about either.
void WriteRaw(const char* text, size_t length) {
  ssize_t ignored = ::write(STDERR_FILENO, text, length);
  (void)ignored;
}

void WriteCString(const char* text) { WriteRaw(text, std::strlen(text)); }

/// Async-signal-safe signed decimal conversion.
void WriteInt(int64_t value) {
  char digits[24];
  size_t n = 0;
  bool negative = value < 0;
  uint64_t magnitude =
      negative ? ~static_cast<uint64_t>(value) + 1 : static_cast<uint64_t>(value);
  do {
    digits[n++] = static_cast<char>('0' + magnitude % 10);
    magnitude /= 10;
  } while (magnitude != 0 && n < sizeof(digits));
  if (negative) digits[n++] = '-';
  char out[25];
  for (size_t i = 0; i < n; ++i) out[i] = digits[n - 1 - i];
  WriteRaw(out, n);
}

const char* SignalName(int sig) {
  switch (sig) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGABRT:
      return "SIGABRT";
    default:
      return "signal";
  }
}

void CrashHandler(int sig) {
  WriteCString("\n==== secview crash reporter ====\n");
  WriteCString(SignalName(sig));
  WriteCString(" received\n");
  WriteRaw(g_banner, g_banner_len);
  WriteCString("active queries: ");
  WriteInt(g_active_queries.load(std::memory_order_relaxed));
  WriteCString("\n");
  // Heap state at crash time, straight off the live-heap atomics (all
  // relaxed loads) and the cached-page-size /proc read — every piece is
  // async-signal-safe. A leak-driven OOM crash names its own cause.
  WriteCString("heap: live ");
  WriteInt(static_cast<int64_t>(alloc_internal::LiveBytesRaw()));
  WriteCString("B in ");
  WriteInt(static_cast<int64_t>(alloc_internal::LiveObjectsRaw()));
  WriteCString(" objects, peak ");
  WriteInt(static_cast<int64_t>(alloc_internal::PeakBytesRaw()));
  WriteCString("B, rss ");
  WriteInt(static_cast<int64_t>(alloc_internal::ResidentBytesRaw()));
  WriteCString("B\n");
  if (g_have_slow.load(std::memory_order_acquire)) {
    WriteCString("last slow query: ");
    WriteRaw(g_last_slow, ::strnlen(g_last_slow, kSlowBufSize));
    WriteCString("\n");
  } else {
    WriteCString("last slow query: (none recorded)\n");
  }
  WriteCString("================================\n");
  // SA_RESETHAND restored the default disposition on entry; re-raise so
  // the process still dies with the original signal (core dump intact).
  ::raise(sig);
}

}  // namespace

void InstallCrashReporter() {
  bool expected = false;
  if (!g_installed.compare_exchange_strong(expected, true)) return;

  // Warm the page-size cache so the handler's RSS read needs no sysconf
  // (not async-signal-safe) at crash time.
  ProcessResidentBytes();

  const BuildInfo& info = GetBuildInfo();
  std::string banner = "build: secview " + info.version + " (" +
                       info.compiler + ", " + info.cxx_standard + ", " +
                       info.build_type + ", sanitizer=" + info.sanitizer +
                       ")\n";
  g_banner_len = banner.size() < sizeof(g_banner) ? banner.size()
                                                  : sizeof(g_banner) - 1;
  std::memcpy(g_banner, banner.data(), g_banner_len);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = CrashHandler;
  sigemptyset(&action.sa_mask);
  // SA_RESETHAND: the default disposition is back in place before the
  // handler runs, so the trailing raise() terminates for real instead of
  // recursing. SA_NODEFER is implied by SA_RESETHAND on Linux.
  action.sa_flags = SA_RESETHAND;
  ::sigaction(SIGSEGV, &action, nullptr);
  ::sigaction(SIGABRT, &action, nullptr);
}

bool CrashReporterInstalled() {
  return g_installed.load(std::memory_order_relaxed);
}

void CrashReporterAddActiveQueries(int64_t delta) {
  g_active_queries.fetch_add(delta, std::memory_order_relaxed);
}

int64_t CrashReporterActiveQueries() {
  return g_active_queries.load(std::memory_order_relaxed);
}

void CrashReporterSetLastSlowQuery(const char* line, size_t length) {
  if (line == nullptr) return;
  bool expected = false;
  if (!g_slow_writer.compare_exchange_strong(expected, true,
                                             std::memory_order_acquire)) {
    return;  // another slow query is publishing right now; keep theirs
  }
  // Leave the final byte as a permanent NUL so a torn read can never run
  // off the end of the buffer.
  size_t n = length < kSlowBufSize - 1 ? length : kSlowBufSize - 1;
  for (size_t i = 0; i < n; ++i) {
    char c = line[i];
    // Keep the report single-line even if the caller's text is not.
    g_last_slow[i] = (c == '\n' || c == '\r') ? ' ' : c;
  }
  if (n < kSlowBufSize - 1) g_last_slow[n] = '\0';
  g_slow_writer.store(false, std::memory_order_release);
  g_have_slow.store(true, std::memory_order_release);
}

}  // namespace secview
