#ifndef SECVIEW_COMMON_RNG_H_
#define SECVIEW_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace secview {

/// Small deterministic PRNG (xorshift128+) used by the workload generator
/// and the property tests. Determinism across platforms matters more here
/// than statistical quality, so we avoid std::mt19937's distribution
/// objects (whose outputs are not portable across standard libraries).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform in [0, 2^64).
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t Below(uint64_t n);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int RangeInclusive(int lo, int hi);

  /// True with probability p (clamped to [0,1]).
  bool Chance(double p);

  /// Random lowercase ASCII string of the given length.
  std::string AlphaString(size_t length);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace secview

#endif  // SECVIEW_COMMON_RNG_H_
