#ifndef SECVIEW_COMMON_RESULT_H_
#define SECVIEW_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace secview {

/// Result<T> holds either a T or a non-OK Status, in the style of
/// arrow::Result / absl::StatusOr. Fallible functions that produce a value
/// return Result<T> instead of taking an output parameter.
///
/// Usage:
///   Result<Dtd> r = ParseDtd(text);
///   if (!r.ok()) return r.status();
///   Dtd dtd = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure). Constructing a
  /// Result from an OK status is a programming error.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok() &&
           "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The error status; OK() when this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Evaluates a Result expression; on error returns its status, otherwise
/// binds the unwrapped value to `lhs`.
#define SECVIEW_ASSIGN_OR_RETURN(lhs, expr)            \
  auto SECVIEW_CONCAT_(_res_, __LINE__) = (expr);      \
  if (!SECVIEW_CONCAT_(_res_, __LINE__).ok())          \
    return SECVIEW_CONCAT_(_res_, __LINE__).status();  \
  lhs = std::move(SECVIEW_CONCAT_(_res_, __LINE__)).value()

#define SECVIEW_CONCAT_IMPL_(a, b) a##b
#define SECVIEW_CONCAT_(a, b) SECVIEW_CONCAT_IMPL_(a, b)

}  // namespace secview

#endif  // SECVIEW_COMMON_RESULT_H_
