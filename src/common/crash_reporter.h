#ifndef SECVIEW_COMMON_CRASH_REPORTER_H_
#define SECVIEW_COMMON_CRASH_REPORTER_H_

#include <cstddef>
#include <cstdint>

namespace secview {

/// Installs SIGSEGV/SIGABRT handlers that write a short crash report to
/// stderr — build info, in-flight query count, and the most recent
/// slow-query line — then re-raise the signal so the default disposition
/// (core dump / abnormal exit) still happens and wrapping supervisors
/// see the real termination signal.
///
/// The handler is async-signal-safe: everything it emits is either
/// pre-rendered at install time or formatted with local integer
/// conversion, and the only syscall is write(2). The last-slow-query
/// buffer is published through a try-lock writers skip on contention;
/// the handler itself only reads, so a crash that interleaves with an
/// update may print a torn line — an accepted trade for never taking a
/// lock in a signal handler.
///
/// Idempotent; later installs keep the first registration. Used by
/// `secview serve` so field crashes are attributable.
void InstallCrashReporter();

/// True once InstallCrashReporter has run.
bool CrashReporterInstalled();

/// Adjusts the in-flight query count printed by the crash report.
/// The engine brackets each Execute with +1/-1 (ScopedActiveQuery).
void CrashReporterAddActiveQueries(int64_t delta);

/// Current in-flight query count.
int64_t CrashReporterActiveQueries();

/// Replaces the "last slow query" line in the crash report. Truncated
/// to an internal fixed buffer; `line` need not be NUL-terminated.
void CrashReporterSetLastSlowQuery(const char* line, size_t length);

/// RAII bracket for the active-query count.
class ScopedActiveQuery {
 public:
  ScopedActiveQuery() { CrashReporterAddActiveQueries(1); }
  ~ScopedActiveQuery() { CrashReporterAddActiveQueries(-1); }
  ScopedActiveQuery(const ScopedActiveQuery&) = delete;
  ScopedActiveQuery& operator=(const ScopedActiveQuery&) = delete;
};

}  // namespace secview

#endif  // SECVIEW_COMMON_CRASH_REPORTER_H_
