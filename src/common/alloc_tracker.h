#ifndef SECVIEW_COMMON_ALLOC_TRACKER_H_
#define SECVIEW_COMMON_ALLOC_TRACKER_H_

#include <cstddef>
#include <cstdint>

namespace secview {

/// Thread-local allocation accounting.
///
/// When the build enables SECVIEW_ALLOC_TRACKER (the cmake option of the
/// same name, ON by default), alloc_tracker.cc replaces the global
/// `operator new` / `operator delete` family with thin wrappers that
/// charge every allocation to a pair of thread-local counters before
/// forwarding to std::malloc / std::free. Forwarding to malloc (rather
/// than reimplementing allocation) keeps the hooks compatible with
/// sanitizer runtimes: ASan/TSan intercept malloc itself, so redzones,
/// leak checking, and race detection keep working underneath the hooks.
///
/// The counters measure allocation *churn* — bytes and calls requested
/// via operator new on this thread since thread start — not live heap
/// size; deallocations are deliberately not subtracted. The API below is
/// always available; with the option OFF the counters simply stay zero
/// and AllocTrackingAvailable() reports false, so callers never need
/// their own #ifdefs.

struct AllocCounts {
  uint64_t bytes = 0;
  uint64_t count = 0;
};

/// True when the operator new/delete hooks are compiled in (i.e. the
/// counters actually move). Callers use this to suppress all-zero
/// readings that would otherwise look like "this query allocated
/// nothing".
bool AllocTrackingAvailable();

/// This thread's cumulative allocation totals since thread start.
/// Monotone; all-zero when tracking is compiled out.
AllocCounts ThreadAllocCounts();

/// RAII delta counter: records the thread's allocation totals at
/// construction and on destruction adds the delta to the optional
/// outputs (+=, so repeated phases within one query sum up). Guards may
/// nest; an inner guard's allocations are charged to every enclosing
/// guard, mirroring how wall-clock phase timers overlap.
class ScopedAllocCounter {
 public:
  ScopedAllocCounter(uint64_t* bytes_out, uint64_t* count_out)
      : bytes_out_(bytes_out),
        count_out_(count_out),
        start_(ThreadAllocCounts()) {}
  ~ScopedAllocCounter() {
    const AllocCounts d = Delta();
    if (bytes_out_ != nullptr) *bytes_out_ += d.bytes;
    if (count_out_ != nullptr) *count_out_ += d.count;
  }
  ScopedAllocCounter(const ScopedAllocCounter&) = delete;
  ScopedAllocCounter& operator=(const ScopedAllocCounter&) = delete;

  /// The allocation charged on this thread since construction.
  AllocCounts Delta() const {
    const AllocCounts now = ThreadAllocCounts();
    return {now.bytes - start_.bytes, now.count - start_.count};
  }

 private:
  uint64_t* bytes_out_;
  uint64_t* count_out_;
  AllocCounts start_;
};

namespace alloc_internal {
/// Charges one allocation to the calling thread; called only by the
/// operator new replacements in alloc_tracker.cc.
void Charge(std::size_t bytes);
}  // namespace alloc_internal

}  // namespace secview

#endif  // SECVIEW_COMMON_ALLOC_TRACKER_H_
